// Quickstart: train a small pedestrian model on synthetic data, classify a
// single window, then run the multi-scale feature-pyramid detector on a
// street scene — the minimal end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// 1. Synthesize a labelled training set (the INRIA stand-in).
	gen := dataset.New(42)
	train, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train HOG + linear SVM (dual coordinate descent).
	cfg := core.DefaultConfig() // 64x128 window, 9-bin HOG, feature pyramid
	det, err := core.Train(train, cfg, core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model: %d weights, bias %.4f\n", len(det.Model().W), det.Model().B)

	// 3. Classify one window directly.
	window := gen.PositiveWindow()
	score, err := core.ClassifyImageScaled(det.Model(), window, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single positive window score: %.3f (positive means pedestrian)\n", score)

	// 4. Detect pedestrians in a full scene at multiple scales.
	scene, err := gen.MakeScene(dataset.SceneConfig{
		W: 640, H: 480, Pedestrians: 3, MinHeight: 130, MaxHeight: 190,
	})
	if err != nil {
		log.Fatal(err)
	}
	dets, err := det.Detect(scene.Frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene: %d ground-truth pedestrians, %d detections\n", len(scene.Truth), len(dets))
	for i, d := range dets {
		fmt.Printf("  detection %d: %v score %.3f\n", i, d.Box, d.Score)
	}

	// 5. Score against ground truth.
	res, err := det.EvaluateOnScene(scene, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched: TP=%d FP=%d FN=%d\n", res.TP, res.FP, res.FN)
}
