// Hwaccel: drives the cycle-level model of the paper's FPGA accelerator.
// Shows the Section 5 pipeline end to end — streaming HOG extraction at one
// pixel per cycle, the shift-and-add feature scaler chain, and the
// MACBAR-based SVM engine — with the cycle accounting that yields 60 fps
// HDTV, plus the Table 2 resource breakdown.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hw/accel"
	"repro/internal/hw/nhogmem"
	"repro/internal/hw/resource"
	"repro/internal/imgproc"
)

func main() {
	log.SetFlags(0)

	// Train a model for the hardware to use.
	gen := dataset.New(11)
	train, err := gen.RenderAt(gen.NewSpecSet(120, 360), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.Train(train, core.DefaultConfig(), core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// The paper's headline numbers, from the closed-form cycle model.
	cfg := accel.DefaultConfig()
	rep, err := accel.AnalyticReport(cfg, 1920, 1080)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== HDTV analytic report (paper Section 5) ===")
	fmt.Printf("extractor: %d cycles = %.2f ms (1 px/cycle at 125 MHz)\n",
		rep.ExtractorCycles, float64(rep.ExtractorCycles)/cfg.ClockHz*1e3)
	fmt.Printf("classifier (2 scales): %d cycles = %.2f ms  [paper: 1,200,420 < 10 ms]\n",
		rep.ClassifierSum, float64(rep.ClassifierSum)/cfg.ClockHz*1e3)
	fmt.Printf("frame rate: %.1f fps  [paper: 60 fps]\n\n", rep.Throughput.FPS())

	// The NHOGMem schedule: two block columns in 72 conflict-free cycles.
	sched, err := nhogmem.PairSchedule(0, 0, 16, 36)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NHOGMem pair schedule: %d accesses over %d cycles, conflict-free: %v\n\n",
		len(sched), nhogmem.ScheduleCycles(sched), nhogmem.CheckConflictFree(sched) == nil)

	// Full cycle-level simulation on a small frame with one pedestrian.
	frame := gen.Render(gen.NewSpec(false), 320, 256)
	ped := gen.Render(gen.NewSpec(true), 64, 128)
	imgproc.Paste(frame, ped, 128, 64, -1)

	simCfg := accel.DefaultConfig()
	simCfg.ScaleStep = 1.3
	a, err := accel.New(det.Model(), simCfg)
	if err != nil {
		log.Fatal(err)
	}
	dets, simRep, err := a.ProcessFrame(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== cycle-level simulation of a %dx%d frame ===\n", frame.W, frame.H)
	fmt.Printf("extractor: %d cycles, MAC ops: %d\n", simRep.ExtractorCycles, simRep.MACOps)
	for _, s := range simRep.Scales {
		fmt.Printf("scale %.2fx: %d windows scored in %d cycles\n",
			s.Scale, s.Windows, s.ClassifierCycles)
	}
	fmt.Printf("detections: %d (pedestrian pasted at 128,64)\n", len(dets))
	for _, d := range dets {
		fmt.Printf("  %v score %.3f\n", d.Box, d.Score)
	}

	// Resource model (Table 2).
	b, err := a.Resources(1920)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== resource model (paper Table 2) ===")
	fmt.Print(b.Render(resource.ZC7020))
}
