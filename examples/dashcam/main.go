// Dashcam: the paper's motivating workload — multi-scale pedestrian
// detection on driver-assistance frames. Runs the conventional image
// pyramid and the proposed HOG feature pyramid over the same frames,
// comparing wall-clock cost and detection agreement, then relates the frame
// rate to stopping distances (Section 1).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
)

func main() {
	log.SetFlags(0)

	gen := dataset.New(7)
	train, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	det, err := core.Train(train, cfg, core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A small burst of dashcam frames with pedestrians at mixed distances.
	const frames = 3
	var scenes []*dataset.Scene
	for i := 0; i < frames; i++ {
		s, err := gen.MakeScene(dataset.SceneConfig{
			W: 640, H: 480, Pedestrians: 4, MinHeight: 128, MaxHeight: 220,
		})
		if err != nil {
			log.Fatal(err)
		}
		scenes = append(scenes, s)
	}

	run := func(mode core.PyramidMode) (time.Duration, [][]eval.Detection) {
		c := cfg
		c.Mode = mode
		d, err := core.NewDetector(det.Model(), c)
		if err != nil {
			log.Fatal(err)
		}
		var all [][]eval.Detection
		start := time.Now()
		for _, s := range scenes {
			dets, err := d.Detect(s.Frame)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, dets)
		}
		return time.Since(start), all
	}

	tImg, detsImg := run(core.ImagePyramid)
	tFeat, detsFeat := run(core.FeaturePyramid)

	fmt.Printf("image pyramid:   %8.1f ms / frame\n", float64(tImg.Milliseconds())/frames)
	fmt.Printf("feature pyramid: %8.1f ms / frame  (%.2fx faster — the paper's motivation)\n",
		float64(tFeat.Milliseconds())/frames,
		float64(tImg.Milliseconds())/float64(tFeat.Milliseconds()))

	// Agreement between the two methods on the actual task.
	var truth [][]geom.Rect
	for _, s := range scenes {
		truth = append(truth, s.Truth)
	}
	sumMatch := func(dets [][]eval.Detection) (tp, fp, fn int) {
		for f := range dets {
			m := eval.MatchDetections(dets[f], truth[f], 0.4)
			tp += m.TP
			fp += m.FP
			fn += m.FN
		}
		return
	}
	it, ifp, ifn := sumMatch(detsImg)
	ft, ffp, ffn := sumMatch(detsFeat)
	fmt.Printf("image pyramid:   TP=%d FP=%d FN=%d over %d frames\n", it, ifp, ifn, frames)
	fmt.Printf("feature pyramid: TP=%d FP=%d FN=%d over %d frames\n", ft, ffp, ffn, frames)

	// What detection latency means on the road (Section 1 of the paper).
	fmt.Println()
	for _, kmh := range []float64{50, 70} {
		r := das.Analyze(das.Scenario{SpeedKmh: kmh})
		fmt.Println(r)
	}
	b := das.BudgetAt(50, 60)
	fmt.Printf("at 60 fps the vehicle moves %.2f m between frames at 50 km/h\n", b.MetresPerFrame)
	lat := das.MaxDetectorLatency(das.Scenario{SpeedKmh: 50}, 60)
	fmt.Printf("latency budget to keep the 60 m detection range at 50 km/h: %.2f s\n", lat)

	// Save one annotated frame for inspection.
	rgb := imgproc.FromGray(scenes[0].Frame)
	for _, d := range detsFeat[0] {
		rgb.DrawRect(d.Box, 255, 32, 32, 2)
	}
	for _, gt := range scenes[0].Truth {
		rgb.DrawRect(gt, 32, 255, 32, 1)
	}
	if err := imgproc.WritePPMFile("dashcam_annotated.ppm", rgb); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote dashcam_annotated.ppm (red = detections, green = ground truth)")
}
