// Dashcam: the paper's motivating workload — multi-scale pedestrian
// detection on driver-assistance frames. Runs the conventional image
// pyramid and the proposed HOG feature pyramid over the same frames,
// comparing wall-clock cost and detection agreement, relates the frame
// rate to stopping distances (Section 1), and finally replays the frames
// through the deadline-aware streaming runtime (internal/rt) to show
// graceful degradation under an injected slow scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
)

var (
	roiOn     = flag.Bool("roi", true, "track-guided ROI rung in the streaming demo's degradation ladder")
	roiEvery  = flag.Int("roi-full-every", roi.DefaultFullEvery, "ROI rung dense-scan cadence (full scan every K frames)")
	roiMargin = flag.Int("roi-margin", roi.DefaultMarginPx, "ROI rung dilation in pixels around tracked boxes")
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	gen := dataset.New(7)
	train, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	det, err := core.Train(train, cfg, core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A small burst of dashcam frames with pedestrians at mixed distances.
	const frames = 3
	var scenes []*dataset.Scene
	for i := 0; i < frames; i++ {
		s, err := gen.MakeScene(dataset.SceneConfig{
			W: 640, H: 480, Pedestrians: 4, MinHeight: 128, MaxHeight: 220,
		})
		if err != nil {
			log.Fatal(err)
		}
		scenes = append(scenes, s)
	}

	run := func(mode core.PyramidMode) (time.Duration, [][]eval.Detection) {
		c := cfg
		c.Mode = mode
		d, err := core.NewDetector(det.Model(), c)
		if err != nil {
			log.Fatal(err)
		}
		var all [][]eval.Detection
		start := time.Now()
		for _, s := range scenes {
			dets, err := d.Detect(s.Frame)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, dets)
		}
		return time.Since(start), all
	}

	tImg, detsImg := run(core.ImagePyramid)
	tFeat, detsFeat := run(core.FeaturePyramid)

	fmt.Printf("image pyramid:   %8.1f ms / frame\n", float64(tImg.Milliseconds())/frames)
	fmt.Printf("feature pyramid: %8.1f ms / frame  (%.2fx faster — the paper's motivation)\n",
		float64(tFeat.Milliseconds())/frames,
		float64(tImg.Milliseconds())/float64(tFeat.Milliseconds()))

	// Agreement between the two methods on the actual task.
	var truth [][]geom.Rect
	for _, s := range scenes {
		truth = append(truth, s.Truth)
	}
	sumMatch := func(dets [][]eval.Detection) (tp, fp, fn int) {
		for f := range dets {
			m := eval.MatchDetections(dets[f], truth[f], 0.4)
			tp += m.TP
			fp += m.FP
			fn += m.FN
		}
		return
	}
	it, ifp, ifn := sumMatch(detsImg)
	ft, ffp, ffn := sumMatch(detsFeat)
	fmt.Printf("image pyramid:   TP=%d FP=%d FN=%d over %d frames\n", it, ifp, ifn, frames)
	fmt.Printf("feature pyramid: TP=%d FP=%d FN=%d over %d frames\n", ft, ffp, ffn, frames)

	// What detection latency means on the road (Section 1 of the paper).
	fmt.Println()
	for _, kmh := range []float64{50, 70} {
		r := das.Analyze(das.Scenario{SpeedKmh: kmh})
		fmt.Println(r)
	}
	b, err := das.BudgetAt(50, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 60 fps the vehicle moves %.2f m between frames at 50 km/h\n", b.MetresPerFrame)
	lat := das.MaxDetectorLatency(das.Scenario{SpeedKmh: 50}, 60)
	fmt.Printf("latency budget to keep the 60 m detection range at 50 km/h: %.2f s\n", lat)

	// Save one annotated frame for inspection.
	rgb := imgproc.FromGray(scenes[0].Frame)
	for _, d := range detsFeat[0] {
		rgb.DrawRect(d.Box, 255, 32, 32, 2)
	}
	for _, gt := range scenes[0].Truth {
		rgb.DrawRect(gt, 32, 255, 32, 1)
	}
	if err := imgproc.WritePPMFile("dashcam_annotated.ppm", rgb); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote dashcam_annotated.ppm (red = detections, green = ground truth)")

	streamDemo(det, cfg, scenes)
}

// streamDemo replays the scenes through the streaming runtime with a fault
// injected into the finest pyramid scale: the runtime misses its deadline,
// sheds the slow scale, and keeps the stream inside the frame budget — the
// graceful-degradation behaviour a driver-assistance system needs when a
// processing stage misbehaves (Section 1's budget leaves no room to block).
func streamDemo(det *core.Detector, cfg core.Config, scenes []*dataset.Scene) {
	fmt.Println()
	faults := faultinject.New()
	c := cfg
	c.Mode = core.FeaturePyramid
	c.LevelProbe = faults.Probe
	d, err := core.NewDetector(det.Model(), c)
	if err != nil {
		log.Fatal(err)
	}
	// A generous software deadline (the pure-Go scan is far from the
	// paper's hardware speed); the injected stall blows through it.
	deadline := 250 * time.Millisecond
	m := obs.NewMetrics()
	// With -roi the ladder sheds to a track-guided restricted scan before it
	// sheds pyramid levels: cheaper frames with zero loss on tracked
	// pedestrians and a bounded (-roi-full-every) delay on new entrants.
	var roiCfg *roi.Config
	if *roiOn {
		roiCfg = &roi.Config{FullEvery: *roiEvery, MarginPx: *roiMargin}
	}
	p, err := rt.New(d, rt.Config{Deadline: deadline, DegradeAfter: 2, RecoverAfter: 2, ROI: roiCfg, Metrics: m})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("streaming with deadline %s, ladder %v\n", deadline, p.Ladder())
	faults.StallLevel(0, 2*deadline) // the finest scale turns pathological

	// A refused Submit (full intake queue or closed pipeline) is load
	// shedding, not a silent no-op: count it and move on to the next frame
	// rather than blocking on a result that will never come.
	shed := 0
	feed := func(n int, note string) {
		for i := 0; i < n; i++ {
			if !p.Submit(scenes[i%len(scenes)].Frame) {
				shed++
				fmt.Printf("  frame %2d [%s]: shed at intake (queue full)\n", i, note)
				continue
			}
			r := <-p.Results()
			status := "ok"
			switch {
			case r.Err != nil:
				status = "error: " + r.Err.Error()
			case r.Missed:
				status = "missed deadline"
			}
			if r.ROI {
				status += " (roi: scanned tracked regions only)"
			}
			fmt.Printf("  frame %2d [%s]: rung %d, latency %8s  %s\n",
				r.Seq, note, r.Rung, r.Latency.Round(time.Millisecond), status)
		}
	}
	feed(3, "stalled")
	faults.Reset()
	feed(3, "healthy")
	fmt.Printf("stream stats: %s (shed at intake: %d)\n", p.Stats(), shed)
	fmt.Printf("stage latencies:\n%s", m.Summary())
}
