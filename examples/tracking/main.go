// Tracking: runs the detector over a synthetic dashcam clip and feeds the
// per-frame detections into the IoU tracker — the temporal layer a real
// driver-assistance system adds on top of the paper's per-frame detector.
// Reports MOTA-style quality and confirmation latency, then converts that
// latency into metres of travel at highway speed (closing the loop with
// the paper's Section 1 reaction-time analysis).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/track"
)

func main() {
	log.SetFlags(0)

	// Train the per-frame detector.
	gen := dataset.New(33)
	trainSet, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Threshold = 0.35 // the tracker filters the residual false alarms
	cfg.NMSOverlap = 0.2
	opts := core.DefaultTrainOptions()
	// One round of hard-negative mining on pedestrian-free street scenes:
	// static-background clips otherwise grow persistent false tracks.
	opts.MineRounds = 1
	opts.MineMax = 200
	for i := 0; i < 3; i++ {
		s, err := gen.MakeScene(dataset.SceneConfig{W: 640, H: 480, Pedestrians: 0, ClutterDensity: 1})
		if err != nil {
			log.Fatal(err)
		}
		opts.MineScenes = append(opts.MineScenes, s.Frame)
	}
	det, err := core.Train(trainSet, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	// A 3-second clip at 10 fps with two approaching walkers.
	seqCfg := dataset.DefaultSequenceConfig()
	seqCfg.Frames = 30
	seq, err := gen.MakeSequence(seqCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip: %d frames, %d walkers, %.0f fps\n",
		len(seq.Frames), seqCfg.Pedestrians, seqCfg.FPS)

	// Detect per frame.
	var dets [][]eval.Detection
	for f, frame := range seq.Frames {
		d, err := det.Detect(frame)
		if err != nil {
			log.Fatal(err)
		}
		dets = append(dets, d)
		if f%10 == 0 {
			fmt.Printf("  frame %2d: %d detections\n", f, len(d))
		}
	}

	// Track and score.
	tc := track.DefaultConfig()
	tc.ConfirmHits = 2
	tc.MatchIoU = 0.25
	m, err := track.Evaluate(tc, dets, seq.Truth, seq.IDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntracking over %d frames:\n", m.Frames)
	fmt.Printf("  matches=%d misses=%d falseTracks=%d idSwitches=%d\n",
		m.Matches, m.Misses, m.FalseTracks, m.IDSwitches)
	fmt.Printf("  MOTA = %.3f\n", m.MOTA())
	fmt.Printf("  mean confirmation latency = %.1f frames\n", m.MeanConfirmLatency)

	// What that latency costs on the road.
	latencyS := (m.MeanConfirmLatency + 1) / seqCfg.FPS
	for _, kmh := range []float64{50, 70} {
		dist := das.KmhToMs(kmh) * latencyS
		fmt.Printf("  at %.0f km/h the vehicle covers %.2f m before a new pedestrian is confirmed\n",
			kmh, dist)
	}
	fmt.Println("\n(a 60 fps detector shrinks that distance by 6x versus 10 fps —")
	fmt.Println(" the real-time requirement the paper's accelerator exists to meet)")
}
