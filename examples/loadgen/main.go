// Loadgen drives the fault-tolerant detection service past its capacity on
// purpose and narrates how the protection layers respond: the bounded
// admission queue sheds with 429, the retrying client backs off and gets
// through, the circuit breaker trips on a detector fault burst, fails fast
// while open, and recovers through a half-open probe once the fault clears.
// The final phase steps up a layer: two replicas behind the multi-replica
// gateway, one replica killed mid-traffic — the gateway hedges around it,
// ejects it, keeps serving on the survivor, and readmits the dead replica
// through probation once it returns.
//
// Everything runs in-process against a real HTTP listener on a loopback
// port; faults are scripted with internal/rt/faultinject, so the run is
// self-contained and needs no trained model (an all-zero model is enough —
// the subject here is the serving layer, not detection accuracy).
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gateway"
	"repro/internal/imgproc"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
	"repro/internal/serve"
	"repro/internal/svm"
)

// killable wraps a gateway backend with a kill switch. A killed replica is
// a frozen process, not a crashed one: requests hang until their context
// is cancelled — the failure mode only hedging can route around — while
// probes fail fast so readmission waits for the revival.
type killable struct {
	inner gateway.Backend
	dead  atomic.Bool
}

func (k *killable) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	if k.dead.Load() {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return k.inner.Detect(ctx, stream, frame)
}

func (k *killable) Probe(ctx context.Context) error {
	if k.dead.Load() {
		return errors.New("replica killed")
	}
	return k.inner.Probe(ctx)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	// One supervised worker with a scripted fault probe: small queue and a
	// tight breaker so every protection mechanism is easy to trigger.
	faults := faultinject.New()
	factory := func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		cfg.LevelProbe = faults.Probe
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
		return core.NewDetector(model, cfg)
	}
	sup, err := serve.NewSupervisor(factory, serve.SupervisorConfig{
		Workers: 1,
		// The explicit HangTimeout arms the liveness watchdog well below
		// the relaxed demo deadline (phase 5 hard-stalls a scan in
		// non-cancellable code, which no deadline can cut short).
		Pipeline: rt.Config{Deadline: 5 * time.Second, HangTimeout: 400 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sup.Close()
	srv := serve.NewServer(sup, serve.ServerConfig{
		Queue:          2,
		DefaultTimeout: 5 * time.Second,
		RetryAfter:     50 * time.Millisecond,
		Breaker: serve.BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         300 * time.Millisecond,
			OnTransition: func(from, to serve.BreakerState) {
				fmt.Printf("  breaker: %s -> %s\n", from, to)
			},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service on %s: queue depth 2, breaker trips after 3 failures\n", base)

	frame := imgproc.NewGray(128, 256)
	var buf bytes.Buffer
	if err := imgproc.WritePGM(&buf, frame); err != nil {
		log.Fatal(err)
	}
	body := buf.Bytes()

	var retries atomic.Uint64
	newClient := func() *serve.Client {
		return serve.NewClient(base, serve.ClientConfig{
			MaxAttempts: 8,
			BackoffBase: 25 * time.Millisecond,
			BackoffMax:  400 * time.Millisecond,
			OnRetry: func(attempt int, wait time.Duration, cause error) {
				retries.Add(1)
				fmt.Printf("  client retry %d in %s: %v\n", attempt, wait.Round(time.Millisecond), cause)
			},
		})
	}
	ctx := context.Background()

	// Phase 1 — warmup: the healthy path.
	fmt.Println("\n== phase 1: warmup (healthy service) ==")
	c := newClient()
	for i := 0; i < 3; i++ {
		if _, err := c.Detect(ctx, i, frame); err != nil {
			log.Fatalf("warmup frame %d: %v", i, err)
		}
	}
	fmt.Printf("  3 frames served, 0 retries\n")

	// Phase 2 — overload: scans stall, a burst outruns the queue, raw
	// requests shed with 429 while retrying clients all get through.
	fmt.Println("\n== phase 2: overload (stalled scans, burst past capacity) ==")
	faults.StallLevel(0, 150*time.Millisecond)
	var raw429 atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/detect", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				raw429.Add(1)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("  raw burst of 6 against queue depth 2: %d shed with 429 + Retry-After\n", raw429.Load())
	before := retries.Load()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			if _, err := newClient().Detect(ctx, stream, frame); err != nil {
				fmt.Printf("  retrying client on stream %d still failed: %v\n", stream, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("  4 retrying clients under the same overload: all served after %d retries\n", retries.Load()-before)
	faults.Reset()

	// Phase 3 — detector fault burst: the breaker trips and fails fast.
	fmt.Println("\n== phase 3: detector fault burst (breaker trips) ==")
	faults.FailLevel(0, errors.New("injected detector fault"))
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/detect", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  faulting frame %d: HTTP %d\n", i, resp.StatusCode)
	}
	resp, err := http.Post(base+"/detect", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  next request fails fast: HTTP %d, Retry-After %ss (no scan attempted)\n",
		resp.StatusCode, resp.Header.Get("Retry-After"))
	if r, err := http.Get(base + "/readyz"); err == nil {
		r.Body.Close()
		fmt.Printf("  /readyz: HTTP %d (out of rotation while open)\n", r.StatusCode)
	}

	// Phase 4 — recovery: the fault clears, the cooldown elapses, and the
	// half-open probe restores service; the retrying client rides through.
	fmt.Println("\n== phase 4: recovery (fault cleared, probe closes the breaker) ==")
	faults.Reset()
	if _, err := newClient().Detect(ctx, 0, frame); err != nil {
		log.Fatalf("recovery frame: %v", err)
	}
	if r, err := http.Get(base + "/readyz"); err == nil {
		r.Body.Close()
		fmt.Printf("  /readyz: HTTP %d (back in rotation)\n", r.StatusCode)
	}

	// Phase 5 — hang: a scan stuck in ctx-ignoring code cannot be cut
	// short by any deadline. The pipeline's liveness watchdog abandons the
	// stuck goroutine, wedges the pipeline, and the supervisor escalates
	// the wedge to a worker restart — the caller gets a fast retryable 503
	// instead of hanging out its full request timeout.
	fmt.Println("\n== phase 5: hang (watchdog abandons the scan, supervisor restarts) ==")
	faults.HardStallLevel(0, 1500*time.Millisecond)
	hangStart := time.Now()
	resp, err = http.Post(base+"/detect", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  hung frame answered in %s (not the 1.5s hang): HTTP %d\n",
		time.Since(hangStart).Round(10*time.Millisecond), resp.StatusCode)
	faults.Reset()
	if _, err := newClient().Detect(ctx, 0, frame); err != nil {
		log.Fatalf("post-hang frame: %v", err)
	}
	hangStats := sup.Stats()
	fmt.Printf("  worker restarted and serving again: restarts=%d wedges=%d hung_frames=%d\n",
		hangStats.Restarts, hangStats.Wedges, hangStats.Aggregate.FramesHung)

	// Phase 6 — fleet: two replicas behind the multi-replica gateway. Kill
	// one mid-traffic (frozen, so pinned requests hang): the gateway hedges
	// around the outage, ejects the dead replica on the hedge-loss
	// failures, serves everything on the survivor, then probes the revived
	// replica back in through probation.
	fmt.Println("\n== phase 6: fleet (replica killed; gateway hedges, ejects, readmits) ==")
	cleanFactory := func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
		return core.NewDetector(model, cfg)
	}
	var fleetBackends []gateway.Backend
	var fleetSups []*serve.Supervisor
	var valve *killable
	for i := 0; i < 2; i++ {
		fsup, err := serve.NewSupervisor(cleanFactory, serve.SupervisorConfig{
			Workers:  1,
			Pipeline: rt.Config{Deadline: 5 * time.Second},
		})
		if err != nil {
			log.Fatal(err)
		}
		fleetSups = append(fleetSups, fsup)
		var b gateway.Backend = &gateway.LocalBackend{Sup: fsup, Srv: serve.NewServer(fsup, serve.ServerConfig{})}
		if i == 0 {
			valve = &killable{inner: b}
			b = valve
		}
		fleetBackends = append(fleetBackends, b)
	}
	gw, err := gateway.New(fleetBackends, gateway.Config{
		EjectAfter:         3,
		EjectBackoff:       200 * time.Millisecond,
		EjectBackoffMax:    800 * time.Millisecond,
		ProbationSuccesses: 2,
		ProbeInterval:      50 * time.Millisecond,
		HedgeWarmup:        4,
		HedgeFloor:         10 * time.Millisecond,
		HedgeCeil:          500 * time.Millisecond,
		Seed:               1,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	driveFleet := func(n int, label string) (ok int) {
		for i := 0; i < n; i++ {
			for s := 0; s < 2; s++ {
				if _, err := gw.Do(ctx, s, frame); err == nil {
					ok++
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		st := gw.Stats()
		fmt.Printf("  %s: %d/%d frames ok (hedges %d, ejections %d, rejoins %d)\n",
			label, ok, 2*n, st.HedgesFired, st.Ejections, st.Rejoins)
		return ok
	}
	driveFleet(5, "warmup, both replicas healthy")
	fmt.Printf("  hedge delay settled at %s — killing r0 (frozen: requests hang, only a hedge gets around it)\n",
		gw.Stats().HedgeDelay.Round(time.Millisecond))
	valve.dead.Store(true)
	driveFleet(5, "r0 dead")
	if st := gw.Stats(); st.Ejections == 0 || st.HedgesFired == 0 {
		log.Fatalf("fleet phase: killed replica should be hedged around and ejected (hedges %d, ejections %d)",
			st.HedgesFired, st.Ejections)
	}
	driveFleet(5, "r0 ejected, all traffic on r1")
	fmt.Println("  reviving r0")
	valve.dead.Store(false)
	rejoinBy := time.Now().Add(5 * time.Second)
	for gw.Stats().Rejoins == 0 {
		if time.Now().After(rejoinBy) {
			log.Fatal("fleet phase: revived replica was not readmitted within 5s")
		}
		for s := 0; s < 2; s++ {
			gw.Do(ctx, s, frame)
		}
		time.Sleep(20 * time.Millisecond)
	}
	driveFleet(3, "r0 readmitted")
	gwStats := gw.Stats()
	if gwStats.Answered != gwStats.Accepted {
		log.Fatalf("fleet phase: %d accepted but %d answered", gwStats.Accepted, gwStats.Answered)
	}
	fmt.Printf("  gateway: accepted=%d answered=%d (exactly one answer each), hedge wins=%d\n",
		gwStats.Accepted, gwStats.Answered, gwStats.HedgeWins)
	gw.Close()
	for _, fsup := range fleetSups {
		fsup.Close()
	}

	// Final accounting from the service's own counters.
	fmt.Println("\n== final stats ==")
	st := srv.Stats()
	bs := srv.Breaker().Stats()
	agg := sup.Stats().Aggregate
	fmt.Printf("  server:  accepted=%d shed=%d breaker_rejected=%d completed=%d failed=%d\n",
		st.Accepted, st.Shed, st.BreakerRejected, st.Completed, st.Failed)
	fmt.Printf("  breaker: state=%s trips=%d probes=%d recoveries=%d\n",
		bs.State, bs.Trips, bs.Probes, bs.Recoveries)
	fmt.Printf("  workers: frames=%d errors=%d panics=%d hung=%d\n", agg.FramesOut, agg.Errors, agg.Panics, agg.FramesHung)
	fmt.Printf("  client retries across all phases: %d\n", retries.Load())
}
