// Braking: the driver-assistance timing analysis that motivates the paper
// (Section 1). Computes perception-reaction and braking distances across
// speeds, derives the required detection range and latency budget, and maps
// the 20-60 m operating window onto the detector's multi-scale ladder.
package main

import (
	"fmt"
	"log"

	"repro/internal/das"
)

func main() {
	fmt.Println("=== stopping distances (a = 6.5 m/s^2, PRT = 1.5 s) ===")
	fmt.Printf("%8s %12s %12s %12s %10s\n", "km/h", "reaction m", "braking m", "stopping m", "stop s")
	for _, kmh := range []float64{30, 40, 50, 60, 70, 80, 90, 100} {
		r := das.Analyze(das.Scenario{SpeedKmh: kmh})
		fmt.Printf("%8.0f %12.2f %12.2f %12.2f %10.2f\n",
			kmh, r.ReactionDistance, r.BrakingDistance, r.StoppingDistance, r.TimeToStop)
	}
	fmt.Println("\npaper's worked examples:")
	for _, kmh := range []float64{50, 70} {
		fmt.Println("  " + das.Analyze(das.Scenario{SpeedKmh: kmh}).String())
	}

	fmt.Println("\n=== what the 60 fps requirement buys ===")
	for _, fps := range []float64{10, 30, 60} {
		b, err := das.BudgetAt(70, fps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f fps: %.1f ms/frame, %.2f m travelled per frame at 70 km/h\n",
			fps, b.FrameTime*1e3, b.MetresPerFrame)
	}

	fmt.Println("\n=== detection range and latency budgets ===")
	for _, kmh := range []float64{50, 70} {
		s := das.Scenario{SpeedKmh: kmh}
		need := das.RequiredDetectionRange(s, 2 /* m margin */, 1.0/60)
		budget := das.MaxDetectorLatency(s, 60)
		fmt.Printf("%3.0f km/h: need %.1f m of range with a 60 fps detector; "+
			"latency budget inside 60 m: %.2f s\n", kmh, need, budget)
	}

	fmt.Println("\n=== pixel scales across the 20-60 m window ===")
	const focal = 1500 // px, a typical dashcam
	for _, d := range []float64{20, 30, 40, 50, 60} {
		h := das.PixelHeightAtDistance(1.75, d, focal)
		s := das.ScaleForDistance(1.75, d, focal, 128)
		fmt.Printf("%5.0f m: pedestrian ~%3.0f px tall, detector scale %.2fx\n", d, h, s)
	}
	scales := das.ScalesForRange(1.75, 20, 60, focal, 128, 1.1)
	fmt.Printf("\n1.1-step ladder covering 20-60 m: %d scales:", len(scales))
	for _, s := range scales {
		fmt.Printf(" %.2f", s)
	}
	fmt.Println()
	fmt.Println("(the paper's hardware implements 2 of these; \"a larger device ... could be")
	fmt.Println(" easily extended to cover several scales\", Section 5)")
}
