// Multiclass: the paper points out that its parallel SVM instances enable
// "real-time multiple object detection" — the same HOG feature stream can
// feed one model per object class. This example trains a pedestrian model
// (64x128 window) and a vehicle model (64x64 window), then runs both over
// one street frame.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgproc"
)

func main() {
	log.SetFlags(0)
	gen := dataset.New(55)

	// Pedestrian class.
	pedSet, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	pedCfg := core.DefaultConfig()
	pedCfg.Threshold = 0.2
	pedDet, err := core.Train(pedSet, pedCfg, core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pedestrian model: %d weights (64x128 window)\n", len(pedDet.Model().W))

	// Vehicle class: square 64x64 window.
	vehSpecs := gen.NewVehicleSpecSet(150, 450)
	vehSet, err := gen.RenderVehicleAt(vehSpecs, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	vehCfg := core.DefaultConfig()
	vehCfg.WindowW = dataset.VehicleWindowW
	vehCfg.WindowH = dataset.VehicleWindowH
	vehCfg.Threshold = 0.2
	vehDet, err := core.Train(vehSet, vehCfg, core.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vehicle model:    %d weights (64x64 window)\n", len(vehDet.Model().W))

	multi, err := core.NewMultiDetector(
		core.Class{Name: "pedestrian", Detector: pedDet},
		core.Class{Name: "vehicle", Detector: vehDet},
	)
	if err != nil {
		log.Fatal(err)
	}

	// One frame with both object classes (a fresh generator so the demo
	// frame is stable regardless of how much data the training consumed).
	demo := dataset.New(77)
	frame := demo.Render(demo.NewSpec(false), 512, 384)
	pspec := demo.NewSpec(true)
	pspec.Pose.CenterXFrac = 0.5
	pspec.Pose.HeightFrac = 0.88
	pw := demo.Render(pspec, 64, 128)
	imgproc.Paste(frame, pw, 64, 128, -1)
	vspec := demo.NewSpec(false)
	vs := dataset.RandomVehicle(rand.New(rand.NewSource(9)))
	vspec.VehicleSpec = &vs
	vspec.Hard = nil
	vw := demo.Render(vspec, 96, 96)
	imgproc.Paste(frame, vw, 320, 192, -1)

	dets, err := multi.Detect(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d detections on the combined frame:\n", len(dets))
	for _, d := range dets {
		fmt.Printf("  %-10s %v score %.3f\n", d.Class, d.Box, d.Score)
	}

	// Annotated output: red pedestrians, blue vehicles.
	rgb := imgproc.FromGray(frame)
	for _, d := range dets {
		if d.Class == "pedestrian" {
			rgb.DrawRect(d.Box, 255, 40, 40, 2)
		} else {
			rgb.DrawRect(d.Box, 60, 60, 255, 2)
		}
	}
	if err := imgproc.WritePPMFile("multiclass_annotated.ppm", rgb); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote multiclass_annotated.ppm (red = pedestrian, blue = vehicle)")
	fmt.Println("(in hardware this is one shared HOG extractor feeding one SVM")
	fmt.Println(" instance per class — the paper's multi-object capability)")
}
