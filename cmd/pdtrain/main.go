// Command pdtrain trains the linear SVM pedestrian model on the synthetic
// dataset (HOG descriptors + dual coordinate descent, the LibLinear setup
// of the paper) and writes it to a model file for pddetect/pdhw.
//
// Usage:
//
//	pdtrain -out pedestrian.model -pos 1200 -neg 3600 -mine 1
package main

import (
	"flag"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdtrain: ")
	var (
		out   = flag.String("out", "pedestrian.model", "model output path")
		seed  = flag.Int64("seed", 2017, "dataset seed")
		nPos  = flag.Int("pos", 1200, "positive training windows")
		nNeg  = flag.Int("neg", 3600, "negative training windows")
		c     = flag.Float64("c", 0.01, "SVM penalty parameter C")
		loss  = flag.String("loss", "l2", "hinge loss: l1 or l2")
		mine  = flag.Int("mine", 0, "hard-negative mining rounds")
		check = flag.Int("check", 300, "held-out windows for the accuracy report (0 disables)")

		cascCal    = flag.Bool("cascade-calibrate", false, "fit soft-cascade per-stage rejection floors on the training positives and embed them in the model")
		cascMargin = flag.Float64("cascade-margin", 0.05, "safety margin subtracted from the fitted per-stage floors (larger = fewer early misses, less pruning)")
	)
	flag.Parse()

	g := dataset.New(*seed)
	set, err := g.RenderAt(g.NewSpecSet(*nPos, *nNeg), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	opts := core.DefaultTrainOptions()
	opts.SVM.C = *c
	switch *loss {
	case "l1":
		opts.SVM.Loss = svm.L1
	case "l2":
		opts.SVM.Loss = svm.L2
	default:
		log.Fatalf("unknown loss %q", *loss)
	}
	if *mine > 0 {
		opts.MineRounds = *mine
		for i := 0; i < 4; i++ {
			var frame *imgproc.Gray = g.Render(g.NewSpec(false), 512, 512)
			opts.MineScenes = append(opts.MineScenes, frame)
		}
	}
	log.Printf("training on %d windows (%d pos / %d neg), C=%g, loss=%s, mining=%d rounds",
		set.Len(), *nPos, *nNeg, *c, *loss, *mine)
	det, err := core.Train(set, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	model := det.Model()
	var casc *svm.Cascade
	if *cascCal {
		// Soft-cascade calibration (Bourdev & Brandt style): derive the
		// stage schedule from the trained weights, then set each stage's
		// rejection floor to the minimum partial score any training
		// positive reaches at that stage, minus the safety margin. By
		// construction no training positive is rejected early; the held-out
		// block below reports the early-miss rate on unseen positives.
		cx, cy := cfg.HOG.WindowCells(cfg.WindowW, cfg.WindowH)
		wbx, wby := cfg.HOG.WindowBlocks(cx, cy)
		casc, err = svm.NewCascade(model, wbx, wby, cfg.HOG.BlockLen())
		if err != nil {
			log.Fatal(err)
		}
		x, err := core.ExtractDescriptors(set, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var pos [][]float64
		for i, xi := range x {
			if set.Labels[i] == 1 {
				pos = append(pos, xi)
			}
		}
		floors, err := casc.Calibrate(model, pos, *cascMargin)
		if err != nil {
			log.Fatal(err)
		}
		model.Calib = &svm.CascadeCalib{Stages: wby, Margin: *cascMargin, Thresholds: floors}
		log.Printf("cascade calibrated: %d stages, margin %g, fitted on %d positives",
			wby, *cascMargin, len(pos))
	}
	if *check > 0 {
		test, err := g.RenderAt(g.NewSpecSet(*check/4, (*check*3)/4), 1.0)
		if err != nil {
			log.Fatal(err)
		}
		x, err := core.ExtractDescriptors(test, cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("held-out accuracy: %.4f on %d windows",
			svm.Accuracy(model, x, test.Labels), test.Len())
		if casc != nil {
			var pos [][]float64
			for i, xi := range x {
				if test.Labels[i] == 1 {
					pos = append(pos, xi)
				}
			}
			miss, err := casc.MissRate(model, pos)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("cascade held-out early-miss rate: %.4f on %d positives", miss, len(pos))
		}
	}
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("model (%d weights, bias %.4f) written to %s",
		len(model.W), model.B, *out)
}
