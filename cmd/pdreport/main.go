// Command pdreport runs the complete reproduction — Table 1, the crossover
// sweep, Figure 4, the throughput model, Table 2 and the robustness
// studies — and writes one self-contained markdown report, the automated
// equivalent of EXPERIMENTS.md.
//
// Usage:
//
//	pdreport -out report.md -quick     # small protocol, ~1 minute
//	pdreport -out report.md            # paper-sized protocol
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hw/accel"
	"repro/internal/hw/resource"
	"repro/internal/hw/timemux"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdreport: ")
	var (
		out   = flag.String("out", "report.md", "markdown output path")
		quick = flag.Bool("quick", false, "small protocol (fast)")
		seed  = flag.Int64("seed", 2017, "dataset seed")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	if *quick {
		o.Protocol = dataset.SmallProtocol()
	}
	o.Seed = *seed
	o.Scales = []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Fprintf(f, "# Reproduction report\n\n")
	fmt.Fprintf(f, "Protocol: train %d+%d, test %d+%d, seed %d.\n\n",
		o.Protocol.TrainPos, o.Protocol.TrainNeg, o.Protocol.TestPos, o.Protocol.TestNeg, o.Seed)

	log.Print("running Table 1 / Figure 4 study...")
	study, err := experiments.RunStudy(o, []float64{1.0, 1.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Table 1 — accuracy per scale\n\n```\n%s```\n\n", study.Table1.Render())
	if cross := study.Table1.CrossoverScale(); cross > 0 {
		fmt.Fprintf(f, "Proposed method stops winning at scale %.1f (paper: ~1.5).\n\n", cross)
	} else {
		fmt.Fprintf(f, "Proposed method within tolerance at every evaluated scale.\n\n")
	}
	fmt.Fprintf(f, "## Figure 4 — ROC statistics\n\n```\n%s```\n\n", experiments.RenderROC(study.ROC))

	log.Print("bootstrapping significance at 1.2...")
	iv, err := experiments.DiffCI(o, 1.2, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "Paired HOG-minus-image accuracy difference at 1.2: %v.\n\n", iv)

	log.Print("running robustness studies...")
	noise, err := experiments.NoiseStudy(o, 1.2, []float64{0, 6, 20, 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Robustness — sensor noise (scale 1.2)\n\n```\n%s```\n\n",
		experiments.RenderRobustness("sigma", noise))
	occ, err := experiments.OcclusionStudy(o, 1.2, []float64{0, 0.25, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Robustness — partial occlusion (scale 1.2)\n\n```\n%s```\n\n",
		experiments.RenderRobustness("occl", occ))
	fog, err := experiments.FogStudy(o, 1.1, []float64{0, 0.5, 1.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Robustness — fog (scale 1.1)\n\n```\n%s```\n\n",
		experiments.RenderRobustness("fog", fog))

	log.Print("hardware models...")
	cfg := accel.DefaultConfig()
	rep, err := accel.AnalyticReport(cfg, 1920, 1080)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Section 5 — throughput (HDTV, 125 MHz)\n\n")
	fmt.Fprintf(f, "- extractor: %d cycles (%.2f ms, 1 px/cycle)\n",
		rep.ExtractorCycles, float64(rep.ExtractorCycles)/cfg.ClockHz*1e3)
	fmt.Fprintf(f, "- classifier (2 scales): %d cycles (%.2f ms) — paper 1,200,420 (< 10 ms)\n",
		rep.ClassifierSum, float64(rep.ClassifierSum)/cfg.ClockHz*1e3)
	fmt.Fprintf(f, "- frame rate: %.1f fps — paper 60 fps\n\n", rep.Throughput.FPS())

	b, err := resource.Estimate(resource.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Table 2 — resources (model vs paper)\n\n```\n%s```\n", b.Render(resource.ZC7020))
	fmt.Fprintf(f, "\nPaper totals: LUT %.0f, FF %.0f, LUTRAM %.0f, BRAM %.1f, DSP %.0f, BUFG %.0f.\n\n",
		resource.Table2.LUT, resource.Table2.FF, resource.Table2.LUTRAM,
		resource.Table2.BRAM, resource.Table2.DSP, resource.Table2.BUFG)

	cmp, err := timemux.CompareWith(timemux.Hahnle2013(), rep.Throughput.FPS(),
		rep.ExtractorCycles, b.Total.LUT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(f, "## Related work — time-multiplexed image pyramid [9]\n\n")
	fmt.Fprintf(f, "- extraction cycles: %.2fx the feature-pyramid design\n", cmp.ExtractionRatio)
	fmt.Fprintf(f, "- fabric (LUT model): %.2fx\n", cmp.TimeMuxLUT/cmp.FeaturePyrLUT)
	fmt.Fprintf(f, "- frame rate: %.1f fps (6 instances) vs %.1f fps (this design)\n",
		cmp.TimeMuxFPS, cmp.FeaturePyrFPS)

	log.Printf("report written to %s", *out)
}
