// Command pdsoak runs the seeded chaos-soak harness (internal/chaos)
// against the full serving stack — supervisor, worker pipelines, liveness
// watchdogs — and reports whether the system self-healed: zero invariant
// violations means frame-count conservation held at every polled instant,
// cumulative counters stayed monotone across restarts, the stack recovered
// within the SLO once faults cleared, and every goroutine settled net of
// the watchdog's accounted leaks.
//
// Usage:
//
//	pdsoak -seed 7 -duration 5s -workers 2 -streams 3 -events 16
//
// With -replicas N (N > 1) the soak boots N full replica stacks behind the
// internal/gateway front end instead: the schedule gains replica-level
// kill/stall events and the gateway's invariants (exactly one answer per
// accepted request, budgeted hedge/retry spend, rejoins bounded by
// ejections) are polled alongside the per-replica ones.
//
// The same seed always replays the same fault schedule, so a CI soak
// failure reproduces exactly: rerun with the seed it printed. Exits 1 when
// any invariant was violated.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/roi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdsoak: ")
	var (
		seed     = flag.Int64("seed", 1, "fault-schedule seed (same seed replays the same schedule)")
		duration = flag.Duration("duration", 5*time.Second, "fault-schedule horizon")
		workers  = flag.Int("workers", 2, "supervised worker pipelines")
		streams  = flag.Int("streams", 3, "concurrent camera streams")
		replicas = flag.Int("replicas", 1, "replica stacks; above 1 they serve behind the gateway and the schedule gains replica kill/stall events")
		events   = flag.Int("events", 16, "scheduled faults")
		deadline = flag.Duration("deadline", 60*time.Millisecond, "per-frame budget")
		hang     = flag.Duration("hang-timeout", 150*time.Millisecond, "liveness watchdog bound (hard stalls are scheduled past it)")
		interval = flag.Duration("interval", 15*time.Millisecond, "per-stream frame cadence")
		slo      = flag.Duration("recovery-slo", 5*time.Second, "post-schedule recovery bound (ready + all streams serving)")
		quiet    = flag.Bool("quiet", false, "suppress per-event progress lines")

		roiOn     = flag.Bool("roi", false, "give every worker pipeline a track-guided ROI rung (degradation passes through restricted scans; sets DegradeAfter 1)")
		roiEvery  = flag.Int("roi-full-every", roi.DefaultFullEvery, "ROI rung dense-scan cadence (full scan every K frames)")
		roiMargin = flag.Int("roi-margin", roi.DefaultMarginPx, "ROI rung dilation in pixels around tracked boxes")
	)
	flag.Parse()

	cfg := chaos.Config{
		Seed:          *seed,
		Workers:       *workers,
		Streams:       *streams,
		Deadline:      *deadline,
		HangTimeout:   *hang,
		Horizon:       *duration,
		Events:        *events,
		FrameInterval: *interval,
		RecoverySLO:   *slo,
		Replicas:      *replicas,
	}
	if *roiOn {
		cfg.ROI = &roi.Config{FullEvery: *roiEvery, MarginPx: *roiMargin}
		cfg.DegradeAfter = 1
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	log.Printf("soak: seed %d, %s horizon, %d replicas, %d workers, %d streams, %d events, deadline %s, watchdog %s",
		*seed, *duration, *replicas, *workers, *streams, *events, *deadline, *hang)
	res, err := chaos.Soak(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("schedule:")
	for _, ev := range res.Schedule {
		log.Printf("  %s", ev)
	}
	log.Printf("frames %d (ok %d, rejected %d, failed %d); restarts %d, wedges %d, hung %d",
		res.Frames, res.OK, res.Rejected, res.Failed, res.Restarts, res.Wedges, res.FramesHung)
	if *replicas > 1 {
		log.Printf("gateway: %d hedges fired, %d ejections, %d rejoins",
			res.Hedges, res.Ejections, res.Rejoins)
	}
	if *roiOn {
		log.Printf("roi: %d restricted scans, %d full scans at ROI rungs",
			res.ROIScans, res.ROIFullScans)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		log.Printf("replay: pdsoak -seed %d -replicas %d -duration %s -workers %d -streams %d -events %d -deadline %s -hang-timeout %s",
			*seed, *replicas, *duration, *workers, *streams, *events, *deadline, *hang)
		os.Exit(1)
	}
	log.Printf("self-healed: zero invariant violations")
}
