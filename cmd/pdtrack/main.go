// Command pdtrack runs the full temporal pipeline on a synthetic dashcam
// clip: per-frame multi-scale detection followed by IoU tracking, reporting
// MOTA-style quality and the confirmation latency that connects detector
// frame rate to the paper's Section 1 reaction-time analysis.
//
// Usage:
//
//	pdtrack -frames 30 -fps 10 -peds 2
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/track"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdtrack: ")
	var (
		seed      = flag.Int64("seed", 33, "dataset seed")
		frames    = flag.Int("frames", 30, "clip length in frames")
		fps       = flag.Float64("fps", 10, "clip frame rate")
		peds      = flag.Int("peds", 2, "walkers in the clip")
		threshold = flag.Float64("threshold", 0.35, "detector threshold")
		confirm   = flag.Int("confirm", 2, "hits to confirm a track")
		trainPos  = flag.Int("pos", 150, "positive training windows")
		trainNeg  = flag.Int("neg", 450, "negative training windows")
	)
	flag.Parse()

	gen := dataset.New(*seed)
	trainSet, err := gen.RenderAt(gen.NewSpecSet(*trainPos, *trainNeg), 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Threshold = *threshold
	cfg.NMSOverlap = 0.2
	opts := core.DefaultTrainOptions()
	opts.MineRounds = 1
	opts.MineMax = 200
	for i := 0; i < 3; i++ {
		s, err := gen.MakeScene(dataset.SceneConfig{W: 640, H: 480, Pedestrians: 0, ClutterDensity: 1})
		if err != nil {
			log.Fatal(err)
		}
		opts.MineScenes = append(opts.MineScenes, s.Frame)
	}
	det, err := core.Train(trainSet, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}

	seqCfg := dataset.DefaultSequenceConfig()
	seqCfg.Frames = *frames
	seqCfg.FPS = *fps
	seqCfg.Pedestrians = *peds
	seq, err := gen.MakeSequence(seqCfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("clip: %d frames at %.0f fps with %d walkers", *frames, *fps, *peds)

	var dets [][]eval.Detection
	for _, frame := range seq.Frames {
		d, err := det.Detect(frame)
		if err != nil {
			log.Fatal(err)
		}
		dets = append(dets, d)
	}

	tc := track.DefaultConfig()
	tc.ConfirmHits = *confirm
	tc.MatchIoU = 0.25
	m, err := track.Evaluate(tc, dets, seq.Truth, seq.IDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frames=%d matches=%d misses=%d falseTracks=%d idSwitches=%d\n",
		m.Frames, m.Matches, m.Misses, m.FalseTracks, m.IDSwitches)
	fmt.Printf("MOTA=%.3f meanConfirmLatency=%.1f frames\n", m.MOTA(), m.MeanConfirmLatency)

	latencyS := (m.MeanConfirmLatency + 1) / *fps
	for _, kmh := range []float64{50, 70} {
		fmt.Printf("at %.0f km/h: %.2f m travelled before a new pedestrian is confirmed\n",
			kmh, das.KmhToMs(kmh)*latencyS)
	}
}
