// Command pdserve runs the fault-tolerant multi-stream detection service:
// a supervisor of worker pipelines behind the internal/serve HTTP layer
// (bounded admission queue, circuit breaker, health endpoints).
//
// Usage:
//
//	pdserve -model pedestrian.model -addr :8080 -workers 4 -queue 16
//
// POST a binary PGM frame to /detect (headers: X-Stream pins the camera
// stream to a worker, X-Deadline-Ms bounds the request); GET /healthz,
// /readyz and /statsz for liveness, readiness and stats; GET /metricsz
// for the Prometheus scrape and /tracez for the slowest-frame traces.
// -pprof mounts net/http/pprof under /debug/pprof/. SIGINT/SIGTERM
// drains in-flight requests under -drain before exiting.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers gated behind -pprof in main
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/serve"
	"repro/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdserve: ")
	var (
		modelPath = flag.String("model", "pedestrian.model", "trained model file")
		addr      = flag.String("addr", ":8080", "listen address")
		mode      = flag.String("mode", "feature", "pyramid mode: image, feature, chained, fixed")
		step      = flag.Float64("step", 1.1, "pyramid scale step")
		threshold = flag.Float64("threshold", 0, "SVM decision threshold")
		nms       = flag.Float64("nms", 0.3, "NMS IoU (<= 0 disables)")

		cascade    = flag.Bool("cascade", false, "staged early-rejection scoring, exact mode (bit-identical detections, faster)")
		cascadeCal = flag.Bool("cascade-calibrated", false, "staged scoring with calibrated per-stage floors (needs a model trained with pdtrain -cascade-calibrate)")

		workers = flag.Int("workers", 1, "supervised worker pipelines (streams pin by ID modulo this)")
		fps     = flag.Float64("fps", 30, "per-worker frame budget (sets the pipeline deadline)")
		queue   = flag.Int("queue", 16, "admission queue depth (beyond it requests shed with 429)")
		timeout = flag.Duration("timeout", 2*time.Second, "default per-request deadline (X-Deadline-Ms overrides)")
		hang    = flag.Duration("hang-timeout", 0, "liveness watchdog: abandon a scan stuck this long and restart the worker (0 derives 4x the frame deadline, negative disables)")

		roiOn     = flag.Bool("roi", false, "add a track-guided ROI rung to each worker's degradation ladder (restricted scans around live tracks when overloaded)")
		roiEvery  = flag.Int("roi-full-every", roi.DefaultFullEvery, "ROI rung dense-scan cadence: a full scan every K frames bounds new-entrant latency to K-1 frames")
		roiMargin = flag.Int("roi-margin", roi.DefaultMarginPx, "ROI rung dilation in pixels around each tracked box")

		breakerFailures = flag.Int("breaker-failures", 5, "consecutive detector failures that open the circuit breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open probe")

		restartBackoff    = flag.Duration("restart-backoff", 50*time.Millisecond, "initial worker restart backoff (doubles per consecutive restart)")
		restartBackoffMax = flag.Duration("restart-backoff-max", 5*time.Second, "worker restart backoff cap")
		restartAfter      = flag.Int("restart-after-errors", 16, "consecutive erroring frames that restart a worker (negative disables)")

		drain = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
		pprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	model, err := svm.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ScaleStep = *step
	cfg.Threshold = *threshold
	cfg.NMSOverlap = *nms
	switch {
	case *cascadeCal:
		cfg.Cascade = core.CascadeCalibrated
	case *cascade:
		cfg.Cascade = core.CascadeExact
	}
	switch *mode {
	case "image":
		cfg.Mode = core.ImagePyramid
	case "feature":
		cfg.Mode = core.FeaturePyramid
	case "chained":
		cfg.Mode = core.FeaturePyramidChained
	case "fixed":
		cfg.Mode = core.FeaturePyramidFixed
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	// One shared metrics registry: every worker pipeline records into it
	// (stage histograms and counters are atomic; each pipeline has its own
	// frame-scratch recorder lane) and /metricsz scrapes it.
	metrics := obs.NewMetrics()

	// Every worker gets its own detector so a panic in one cannot poison
	// shared state in another, and a restart rebuilds from scratch.
	factory := func(worker int) (*core.Detector, error) {
		return core.NewDetector(model, cfg)
	}
	var roiCfg *roi.Config
	if *roiOn {
		roiCfg = &roi.Config{FullEvery: *roiEvery, MarginPx: *roiMargin}
	}
	sup, err := serve.NewSupervisor(factory, serve.SupervisorConfig{
		Workers:            *workers,
		Pipeline:           rt.Config{FPS: *fps, HangTimeout: *hang, ROI: roiCfg, Metrics: metrics},
		RestartBackoff:     *restartBackoff,
		RestartBackoffMax:  *restartBackoffMax,
		RestartAfterErrors: *restartAfter,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(sup, serve.ServerConfig{
		Queue:          *queue,
		DefaultTimeout: *timeout,
		Metrics:        metrics,
		Breaker: serve.BreakerConfig{
			FailureThreshold: *breakerFailures,
			Cooldown:         *breakerCooldown,
			OnTransition: func(from, to serve.BreakerState) {
				log.Printf("circuit breaker: %s -> %s", from, to)
			},
		},
	})

	// The pprof import registers its handlers on http.DefaultServeMux;
	// they are only reachable when -pprof routes /debug/pprof/ there.
	handler := srv.Handler()
	if *pprof {
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %s (%s pyramid) on %s: %d workers at %.1f fps, queue %d, breaker %d/%s",
		*modelPath, *mode, *addr, *workers, *fps, *queue, *breakerFailures, *breakerCooldown)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (deadline %s)", sig, *drain)
	case err := <-errc:
		sup.Close()
		log.Fatal(err)
	}

	// Shutdown chain: stop accepting requests and drain the app layer,
	// then the HTTP layer, then tear down the workers.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	sup.Close()
	st := sup.Stats()
	log.Printf("final: %+v", srv.Stats())
	log.Printf("aggregate pipeline: %s", st.Aggregate)
	if s := metrics.Summary(); s != "" {
		log.Printf("stage latencies:\n%s", s)
	}
}
