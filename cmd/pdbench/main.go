// Command pdbench runs the repo's headline micro-benchmarks — the parallel
// detection hot path, the zero-copy window scorer, and the serving-layer
// round trip — and reports the results in machine-readable JSON so CI and
// PR logs can diff performance across revisions without scraping `go test
// -bench` text output.
//
// Usage:
//
//	pdbench                      # human-readable table on stdout
//	pdbench -json BENCH_PR4.json # also write the JSON report
//	pdbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The models are synthetic (random or all-zero weights): the quantities of
// interest are ns/op and allocs/op of the scanning and serving machinery,
// not detection accuracy.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/serve"
	"repro/internal/svm"
)

// benchResult is one benchmark in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// report is the full JSON document written by -json.
type report struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Timestamp  string        `json:"timestamp"`
	Results    []benchResult `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdbench: ")
	jsonPath := flag.String("json", "", "write the JSON report to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-32s %10d iters  %14.0f ns/op  %8d allocs/op  %10d B/op\n",
			res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	run("ComputeCells/reference", benchComputeCellsRef)
	run("ComputeCells/fused", benchComputeCellsFused(1))
	if n := runtime.GOMAXPROCS(0); n > 1 {
		run(fmt.Sprintf("ComputeCells/fused/workers=%d", n), benchComputeCellsFused(n))
	}
	run("Normalize/into", benchNormalizeInto)
	run("DetectParallel/workers=1", benchDetect(1, false))
	if n := runtime.GOMAXPROCS(0); n > 1 {
		run(fmt.Sprintf("DetectParallel/workers=%d", n), benchDetect(0, false))
	}
	run("ScoreWindow/zero-copy", benchScoreWindow)
	run("DetectCascade/dense", benchDetectCascade(core.CascadeOff))
	run("DetectCascade/exact", benchDetectCascade(core.CascadeExact))
	run("DetectCascade/calibrated", benchDetectCascade(core.CascadeCalibrated))
	run("DetectROI/dense", benchDetectROI(false))
	run("DetectROI/roi", benchDetectROI(true))
	run("ServeRoundTrip", benchServeRoundTrip)

	// Observability overhead: the same single-worker scan with the obs
	// recorder attached. The tentpole's contract is that instrumentation
	// stays in the noise (<2% on ns/op, zero extra allocs).
	run("DetectParallel/workers=1/metrics=on", benchDetect(1, true))
	var off, on *benchResult
	for i := range rep.Results {
		switch rep.Results[i].Name {
		case "DetectParallel/workers=1":
			off = &rep.Results[i]
		case "DetectParallel/workers=1/metrics=on":
			on = &rep.Results[i]
		}
	}
	if off != nil && on != nil && off.NsPerOp > 0 {
		pct := (on.NsPerOp - off.NsPerOp) / off.NsPerOp * 100
		fmt.Printf("%-32s %+.2f%% ns/op, %+d allocs/op\n",
			"obs overhead (metrics on-off)", pct, on.AllocsPerOp-off.AllocsPerOp)
	}

	// Cascade speedup on the clutter-negative workload (ISSUE 9 acceptance:
	// exact mode >= 1.5x over dense at workers=1).
	var cd, ce, cc *benchResult
	for i := range rep.Results {
		switch rep.Results[i].Name {
		case "DetectCascade/dense":
			cd = &rep.Results[i]
		case "DetectCascade/exact":
			ce = &rep.Results[i]
		case "DetectCascade/calibrated":
			cc = &rep.Results[i]
		}
	}
	if cd != nil && ce != nil && ce.NsPerOp > 0 {
		fmt.Printf("%-32s %.2fx ns/op over dense\n", "cascade speedup (exact)", cd.NsPerOp/ce.NsPerOp)
	}
	if cd != nil && cc != nil && cc.NsPerOp > 0 {
		fmt.Printf("%-32s %.2fx ns/op over dense\n", "cascade speedup (calibrated)", cd.NsPerOp/cc.NsPerOp)
	}

	// ROI-scheduled speedup on the tracked workload (ISSUE 10 acceptance:
	// >= 2x over dense at workers=1, full-scan cadence amortized in).
	var rd, rr *benchResult
	for i := range rep.Results {
		switch rep.Results[i].Name {
		case "DetectROI/dense":
			rd = &rep.Results[i]
		case "DetectROI/roi":
			rr = &rep.Results[i]
		}
	}
	if rd != nil && rr != nil && rr.NsPerOp > 0 {
		fmt.Printf("%-32s %.2fx ns/op over dense\n", "roi speedup (scheduled)", rd.NsPerOp/rr.NsPerOp)
	}

	if *jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *jsonPath)
	}
}

// randFrame fills a frame with deterministic noise so the scan does real
// gradient work instead of skating over flat zeros.
func randFrame(w, h int, seed int64) *imgproc.Gray {
	g := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

// benchComputeCellsRef benchmarks the retained reference cell histogrammer
// (per-pixel Atan2/Hypot) on a VGA frame — the front-end baseline the fused
// pass is measured against.
func benchComputeCellsRef(b *testing.B) {
	frame := randFrame(640, 480, 23)
	cfg := hog.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hog.ReferenceComputeCells(frame, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchComputeCellsFused benchmarks the fused tangent-threshold front end
// through a reusable scratch arena at the given band-worker count.
func benchComputeCellsFused(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		frame := randFrame(640, 480, 23)
		cfg := hog.DefaultConfig()
		s := hog.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := hog.ComputeCellsInto(frame, cfg, s, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchNormalizeInto benchmarks arena-backed block normalization of a VGA
// cell grid.
func benchNormalizeInto(b *testing.B) {
	cfg := hog.DefaultConfig()
	grid, err := hog.ComputeCells(randFrame(640, 480, 23), cfg)
	if err != nil {
		b.Fatal(err)
	}
	var fm hog.FeatureMap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hog.NormalizeInto(grid, cfg, &fm); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDetect benchmarks the full multi-scale scan of a VGA frame with the
// given worker count (0 = GOMAXPROCS) and a random-weight model. metrics
// attaches an obs recorder to measure the instrumentation overhead.
func benchDetect(workers int, metrics bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.Workers = workers
		if metrics {
			cfg.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
		}
		rng := rand.New(rand.NewSource(21))
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
		for i := range model.W {
			model.W[i] = rng.NormFloat64() * 0.01
		}
		det, err := core.NewDetector(model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		frame := randFrame(640, 480, 22)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(frame); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchScoreWindow benchmarks the zero-copy strided window scorer on one
// 4608-dim window (mirrors BenchmarkScoreWindow/zero-copy in bench_test.go).
func benchScoreWindow(b *testing.B) {
	fm, err := hog.Compute(randFrame(640, 480, 15), hog.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	w := make([]float64, 4608)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fm.ScoreWindow(w, i%(fm.BlocksX-8), i%(fm.BlocksY-16), 8, 16); !ok {
			b.Fatal("window rejected")
		}
	}
}

// benchDetectCascade benchmarks the single-worker multi-scale scan of a
// clutter-only VGA frame with the given cascade mode and a concentrated-mass
// model (per-row amplitude 0.02*0.55^r — the shape a soft-cascade-trained
// SVM has, and the shape the Cauchy-Schwarz bound prunes). Exact mode is
// bit-identical to dense (core's differential tests assert it); the report
// compares ns/op across the three modes.
func benchDetectCascade(mode core.CascadeMode) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.Workers = 1
		cfg.Threshold = 0.5
		cfg.Cascade = mode
		cx, cy := cfg.HOG.WindowCells(cfg.WindowW, cfg.WindowH)
		wbx, wby := cfg.HOG.WindowBlocks(cx, cy)
		bl := cfg.HOG.BlockLen()
		rowLen := wbx * bl
		rng := rand.New(rand.NewSource(47))
		model := &svm.Model{W: make([]float64, wby*rowLen)}
		for r := 0; r < wby; r++ {
			a := 0.02 * math.Pow(0.55, float64(r))
			for i := r * rowLen; i < (r+1)*rowLen; i++ {
				model.W[i] = a * rng.NormFloat64()
			}
		}
		if mode == core.CascadeCalibrated {
			// Floors fitted on one synthetic positive perfectly aligned with
			// the weights (per-block 0.95 * w_b/||w_b||).
			casc, err := svm.NewCascade(model, wbx, wby, bl)
			if err != nil {
				b.Fatal(err)
			}
			pos := make([]float64, len(model.W))
			for blk := 0; blk+bl <= len(model.W); blk += bl {
				var ss float64
				for _, v := range model.W[blk : blk+bl] {
					ss += v * v
				}
				if n := math.Sqrt(ss); n > 0 {
					for i := blk; i < blk+bl; i++ {
						pos[i] = 0.95 * model.W[i] / n
					}
				}
			}
			floors, err := casc.Calibrate(model, [][]float64{pos}, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			model.Calib = &svm.CascadeCalib{Stages: wby, Margin: 0.05, Thresholds: floors}
		}
		det, err := core.NewDetector(model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		frame := randFrame(640, 480, 48)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(frame); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchDetectROI benchmarks the single-worker scan of the paper's HDTV
// frame (1920x1080) under the temporal ROI scheduler against the same scan
// run dense. The track set is two pedestrian-sized boxes a tracker would
// carry between frames of a driving clip. One op is one FullEvery-frame
// cadence cycle — for roi that is one dense full scan plus FullEvery-1
// restricted scans — so the dense/roi ns/op ratio is exactly the
// steady-state per-frame speedup of a tracked scene with the cadence's
// full scans amortized in, independent of the iteration count the
// benchmark harness settles on.
func benchDetectROI(restricted bool) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.Workers = 1
		rs := core.NewRegionSet()
		if restricted {
			cfg.Regions = rs
		}
		rng := rand.New(rand.NewSource(21))
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
		for i := range model.W {
			model.W[i] = rng.NormFloat64() * 0.01
		}
		det, err := core.NewDetector(model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		frame := randFrame(1920, 1080, 22)
		tracks := []geom.Rect{
			geom.XYWH(420, 480, 64, 128),
			geom.XYWH(1380, 420, 80, 160),
		}
		sched, err := roi.New(roi.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycle := sched.Config().FullEvery
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for f := 0; f < cycle; f++ {
				if restricted {
					plan := sched.Plan(tracks, frame.W, frame.H)
					if plan.Full {
						rs.Clear()
					} else {
						rs.Set(plan.Regions)
					}
				}
				if _, err := det.Detect(frame); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchServeRoundTrip benchmarks one request through the whole serving
// stack: client HTTP round trip, admission, breaker, supervisor dispatch,
// pipeline scan with an all-zero model.
func benchServeRoundTrip(b *testing.B) {
	factory := func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		return core.NewDetector(&svm.Model{W: make([]float64, cfg.DescriptorLen())}, cfg)
	}
	sup, err := serve.NewSupervisor(factory, serve.SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sup.Close()
	ts := httptest.NewServer(serve.NewServer(sup, serve.ServerConfig{}).Handler())
	defer ts.Close()
	client := serve.NewClient(ts.URL, serve.ClientConfig{})
	frame := imgproc.NewGray(128, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Detect(ctx, i, frame); err != nil {
			b.Fatal(err)
		}
	}
}
