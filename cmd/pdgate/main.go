// Command pdgate runs the resilient multi-replica gateway
// (internal/gateway) in front of N detection replicas: power-of-two-choices
// least-in-flight balancing with stream affinity, latency-quantile hedged
// requests, token-bucket hedge/retry budgets, and health-aware outlier
// ejection with probed readmission.
//
// Two replica sources, combinable:
//
//	pdgate -backends http://a:8080,http://b:8080   # remote pdserve replicas
//	pdgate -replicas 3 -model pedestrian.model     # in-process replica stacks
//
// With -replicas and no -model the replicas run an all-zero synthetic model
// — useful for exercising the gateway layer itself. The gateway speaks the
// same wire protocol as pdserve (POST a PGM to /detect with X-Stream /
// X-Deadline-Ms; GET /healthz, /readyz, /statsz, /metricsz), so serve.Client
// and every existing tool point at it unchanged.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/serve"
	"repro/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdgate: ")
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		backs    = flag.String("backends", "", "comma-separated remote replica base URLs")
		replicas = flag.Int("replicas", 0, "in-process replica stacks to boot (added after -backends)")

		modelPath = flag.String("model", "", "trained model for in-process replicas (empty: all-zero synthetic model)")
		workers   = flag.Int("workers", 1, "worker pipelines per in-process replica")
		fps       = flag.Float64("fps", 30, "per-worker frame budget for in-process replicas")

		hedgeQuantile = flag.Float64("hedge-quantile", 0.95, "latency quantile that sets the hedge delay")
		hedgeFloor    = flag.Duration("hedge-floor", 5*time.Millisecond, "hedge delay floor")
		hedgeCeil     = flag.Duration("hedge-ceil", time.Second, "hedge delay ceiling (also the pre-warmup delay)")
		hedgeRatio    = flag.Float64("hedge-ratio", 0.1, "hedge tokens earned per successful request")
		hedgeBurst    = flag.Int("hedge-burst", 8, "hedge token bucket size")
		retryRatio    = flag.Float64("retry-ratio", 0.1, "retry tokens earned per successful request")
		retryBurst    = flag.Int("retry-burst", 8, "retry token bucket size")

		ejectAfter    = flag.Int("eject-after", 3, "consecutive failures that eject a replica")
		ejectBackoff  = flag.Duration("eject-backoff", time.Second, "first ejection backoff (doubles per episode)")
		ejectMax      = flag.Duration("eject-backoff-max", 30*time.Second, "ejection backoff cap")
		probation     = flag.Int("probation", 3, "clean results a probed replica needs to fully rejoin")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "active health probe cadence")

		timeout = flag.Duration("timeout", 2*time.Second, "default per-request deadline (X-Deadline-Ms overrides)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	)
	flag.Parse()

	var backends []gateway.Backend
	var names []string
	for _, base := range strings.Split(*backs, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		backends = append(backends, &gateway.HTTPBackend{Base: base})
		names = append(names, base)
	}

	// In-process replicas: each gets its own supervisor + server stack (own
	// detectors, own breaker) so one replica's faults stay its own; the
	// shared metrics registry only aggregates observability.
	var sups []*serve.Supervisor
	if *replicas > 0 {
		factory, desc, err := detectorFactory(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		metrics := obs.NewMetrics()
		for i := 0; i < *replicas; i++ {
			sup, err := serve.NewSupervisor(factory, serve.SupervisorConfig{
				Workers:  *workers,
				Pipeline: rt.Config{FPS: *fps, Metrics: metrics},
			})
			if err != nil {
				log.Fatal(err)
			}
			sups = append(sups, sup)
			srv := serve.NewServer(sup, serve.ServerConfig{Metrics: metrics})
			backends = append(backends, &gateway.LocalBackend{Sup: sup, Srv: srv})
			names = append(names, desc)
		}
	}
	if len(backends) == 0 {
		log.Fatal("no replicas: pass -backends URLs and/or -replicas N")
	}

	gw, err := gateway.New(backends, gateway.Config{
		EjectAfter:         *ejectAfter,
		EjectBackoff:       *ejectBackoff,
		EjectBackoffMax:    *ejectMax,
		ProbationSuccesses: *probation,
		ProbeInterval:      *probeInterval,
		HedgeQuantile:      *hedgeQuantile,
		HedgeFloor:         *hedgeFloor,
		HedgeCeil:          *hedgeCeil,
		HedgeRatio:         *hedgeRatio,
		HedgeBurst:         *hedgeBurst,
		RetryRatio:         *retryRatio,
		RetryBurst:         *retryBurst,
		Logf:               log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := gateway.NewServer(gw, gateway.ServerConfig{DefaultTimeout: *timeout})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	for i, n := range names {
		log.Printf("replica r%d: %s", i, n)
	}
	log.Printf("gateway on %s: %d replicas, hedge p%.0f in [%s, %s], eject after %d, budgets %d+%.2f/req",
		*addr, len(backends), *hedgeQuantile*100, *hedgeFloor, *hedgeCeil, *ejectAfter, *hedgeBurst, *hedgeRatio)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (deadline %s)", sig, *drain)
	case err := <-errc:
		teardown(gw, sups)
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	st := gw.Stats()
	teardown(gw, sups)
	log.Printf("final: accepted=%d answered=%d hedges=%d (wins %d) retries=%d ejections=%d rejoins=%d",
		st.Accepted, st.Answered, st.HedgesFired, st.HedgeWins, st.Retries, st.Ejections, st.Rejoins)
	for _, r := range st.Replicas {
		log.Printf("  %s [%s]: ok=%d fail=%d hedges=%d p50=%.1fms p99=%.1fms",
			r.Name, r.State, r.Successes, r.Failures, r.Hedges, r.P50*1e3, r.P99*1e3)
	}
}

// detectorFactory builds the per-worker detector constructor for
// in-process replicas: a trained model when given, otherwise the all-zero
// synthetic model (full scan path, no detections — the gateway is the
// subject, not accuracy).
func detectorFactory(modelPath string) (serve.DetectorFactory, string, error) {
	cfg := core.DefaultConfig()
	cfg.Mode = core.FeaturePyramid
	cfg.ScaleStep = 1.3
	cfg.Workers = 1
	var model *svm.Model
	desc := "in-process (synthetic model)"
	if modelPath != "" {
		m, err := svm.Load(modelPath)
		if err != nil {
			return nil, "", err
		}
		model = m
		desc = "in-process (" + modelPath + ")"
	} else {
		model = &svm.Model{W: make([]float64, cfg.DescriptorLen())}
	}
	return func(worker int) (*core.Detector, error) {
		return core.NewDetector(model, cfg)
	}, desc, nil
}

func teardown(gw *gateway.Gateway, sups []*serve.Supervisor) {
	gw.Close()
	for _, sup := range sups {
		sup.Close()
	}
}
