// Command pdvis renders the HOG-glyph visualization of a frame or window:
// one star of oriented strokes per cell, the standard way to inspect what
// the detector's feature extractor actually sees.
//
// Usage:
//
//	pdvis -in frame.pgm -out glyphs.pgm           # raw cell histograms
//	pdvis -in frame.pgm -out glyphs.pgm -norm     # normalized block features
//	pdvis -demo -out glyphs.pgm                   # generated pedestrian window
package main

import (
	"flag"
	"log"

	"repro/internal/dataset"
	"repro/internal/hog"
	"repro/internal/imgproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdvis: ")
	var (
		in    = flag.String("in", "", "input PGM (omit with -demo)")
		out   = flag.String("out", "glyphs.pgm", "output PGM")
		glyph = flag.Int("glyph", 16, "glyph size in pixels per cell")
		norm  = flag.Bool("norm", false, "visualize normalized block features instead of raw histograms")
		demo  = flag.Bool("demo", false, "visualize a generated pedestrian window")
		seed  = flag.Int64("seed", 1, "demo seed")
	)
	flag.Parse()

	var img *imgproc.Gray
	switch {
	case *demo:
		g := dataset.New(*seed)
		img = g.PositiveWindow()
	case *in != "":
		var err error
		img, err = imgproc.ReadPGMFile(*in)
		if err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		log.Fatal("need -in or -demo")
	}

	cfg := hog.DefaultConfig()
	var vis *imgproc.Gray
	if *norm {
		fm, err := hog.Compute(img, cfg)
		if err != nil {
			log.Fatal(err)
		}
		vis, err = hog.VisualizeMap(fm, *glyph)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		grid, err := hog.ComputeCells(img, cfg)
		if err != nil {
			log.Fatal(err)
		}
		vis, err = hog.VisualizeCells(grid, *glyph)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := imgproc.WritePGMFile(*out, vis); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%dx%d, %d px/cell)", *out, vis.W, vis.H, *glyph)
}
