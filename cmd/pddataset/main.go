// Command pddataset generates the synthetic pedestrian dataset to disk:
// labelled 64x128 training/test windows as PGM files, or full street scenes
// with ground-truth box lists, replacing the INRIA person dataset the paper
// used (see DESIGN.md for the substitution rationale).
//
// Usage:
//
//	pddataset -out data -pos 100 -neg 400            # windows
//	pddataset -out scenes -scenes 3 -w 1920 -h 1080  # street scenes + truth
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/imgproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pddataset: ")
	var (
		out    = flag.String("out", "data", "output directory")
		seed   = flag.Int64("seed", 2017, "generator seed")
		nPos   = flag.Int("pos", 0, "positive windows to generate")
		nNeg   = flag.Int("neg", 0, "negative windows to generate")
		scale  = flag.Float64("scale", 1.0, "window render scale (>= 1)")
		scenes = flag.Int("scenes", 0, "street scenes to generate")
		width  = flag.Int("w", 640, "scene width")
		height = flag.Int("h", 480, "scene height")
		peds   = flag.Int("peds", 3, "pedestrians per scene")
	)
	flag.Parse()
	if *nPos == 0 && *nNeg == 0 && *scenes == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	g := dataset.New(*seed)

	if *nPos > 0 || *nNeg > 0 {
		specs := g.NewSpecSet(*nPos, *nNeg)
		set, err := g.RenderAt(specs, *scale)
		if err != nil {
			log.Fatal(err)
		}
		for i, img := range set.Images {
			kind := "pos"
			if set.Labels[i] != 1 {
				kind = "neg"
			}
			path := filepath.Join(*out, fmt.Sprintf("%s_%05d.pgm", kind, i))
			if err := imgproc.WritePGMFile(path, img); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d windows (%d pos, %d neg) at scale %.2f to %s",
			set.Len(), *nPos, *nNeg, *scale, *out)
	}

	for s := 0; s < *scenes; s++ {
		scene, err := g.MakeScene(dataset.SceneConfig{
			W: *width, H: *height, Pedestrians: *peds, ClutterDensity: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		imgPath := filepath.Join(*out, fmt.Sprintf("scene_%03d.pgm", s))
		if err := imgproc.WritePGMFile(imgPath, scene.Frame); err != nil {
			log.Fatal(err)
		}
		gtPath := filepath.Join(*out, fmt.Sprintf("scene_%03d.txt", s))
		f, err := os.Create(gtPath)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range scene.Truth {
			fmt.Fprintf(f, "%d %d %d %d\n", b.Min.X, b.Min.Y, b.W(), b.H())
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d pedestrians)", imgPath, len(scene.Truth))
	}
}
