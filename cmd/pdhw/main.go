// Command pdhw exercises the cycle-level model of the paper's FPGA
// accelerator: the Section 5 throughput numbers (one pixel per cycle,
// 36 cycles per window, ~1.2M classifier cycles and 60 fps HDTV at
// 125 MHz), the Table 2 resource utilization, and full frame simulation
// with detections.
//
// Usage:
//
//	pdhw -frame                       # analytic HDTV cycle/fps report
//	pdhw -resources                   # Table 2 resource breakdown
//	pdhw -sim -model pedestrian.model # cycle-level simulation of a scene
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/hw/accel"
	"repro/internal/hw/resource"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdhw: ")
	var (
		frame     = flag.Bool("frame", false, "print the analytic HDTV frame report (E4)")
		resources = flag.Bool("resources", false, "print the Table 2 resource breakdown (E3)")
		sim       = flag.Bool("sim", false, "run the cycle-level simulator on a frame")
		modelPath = flag.String("model", "pedestrian.model", "trained model (for -sim)")
		in        = flag.String("in", "", "input PGM for -sim (default: generated scene)")
		width     = flag.Int("w", 1920, "frame width")
		height    = flag.Int("h", 1080, "frame height")
		scales    = flag.Int("scales", 2, "number of detection scales")
		step      = flag.Float64("step", 2.25, "scale step between detection scales")
		clock     = flag.Float64("clock", 125e6, "design clock in Hz")
		seq       = flag.Bool("sequential", false, "time-multiplex one classifier over all scales")
	)
	flag.Parse()
	if !*frame && !*resources && !*sim {
		flag.Usage()
		os.Exit(2)
	}

	cfg := accel.DefaultConfig()
	cfg.NumScales = *scales
	cfg.ScaleStep = *step
	cfg.ClockHz = *clock
	cfg.SequentialClassifiers = *seq

	if *frame {
		rep, err := accel.AnalyticReport(cfg, *width, *height)
		if err != nil {
			log.Fatal(err)
		}
		printReport(rep, cfg)
	}

	if *resources {
		p := resource.PaperParams()
		p.CellsX = *width / cfg.HOG.CellSize
		p.Scales = *scales
		p.ScaleStep = *step
		b, err := resource.Estimate(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== Table 2: resource utilization (model) ===")
		fmt.Print(b.Render(resource.ZC7020))
		fmt.Println("paper's published totals:")
		fmt.Printf("%-20s %8.0f %8.0f %8.0f %7.1f %6.0f %5.0f\n", "Table 2",
			resource.Table2.LUT, resource.Table2.FF, resource.Table2.LUTRAM,
			resource.Table2.BRAM, resource.Table2.DSP, resource.Table2.BUFG)
		for class, diff := range resource.CompareTable2(b.Total) {
			fmt.Printf("  %-6s model vs paper: %+.1f%%\n", class, diff*100)
		}
	}

	if *sim {
		model, err := svm.Load(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		var img *imgproc.Gray
		if *in != "" {
			img, err = imgproc.ReadPGMFile(*in)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			g := dataset.New(99)
			scene, err := g.MakeScene(dataset.SceneConfig{
				W: *width, H: *height, Pedestrians: 4, ClutterDensity: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			img = scene.Frame
			log.Printf("generated a %dx%d scene with %d pedestrians", *width, *height, len(scene.Truth))
		}
		a, err := accel.New(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("simulating %dx%d frame cycle by cycle...", img.W, img.H)
		dets, rep, err := a.ProcessFrame(img)
		if err != nil {
			log.Fatal(err)
		}
		printReport(rep, cfg)
		fmt.Printf("detections: %d\n", len(dets))
		for _, d := range dets {
			fmt.Printf("%d %d %d %d %.4f\n", d.Box.Min.X, d.Box.Min.Y, d.Box.W(), d.Box.H(), d.Score)
		}
	}
}

func printReport(rep *accel.FrameReport, cfg accel.Config) {
	fmt.Println("=== frame cycle report ===")
	fmt.Printf("extractor: %d cycles (%.3f ms @ %.0f MHz, 1 px/cycle)\n",
		rep.ExtractorCycles, float64(rep.ExtractorCycles)/cfg.ClockHz*1e3, cfg.ClockHz/1e6)
	for _, s := range rep.Scales {
		fmt.Printf("scale %.2fx: %dx%d blocks, %d windows, classifier %d cycles, scaler %d cycles\n",
			s.Scale, s.BlocksX, s.BlocksY, s.Windows, s.ClassifierCycles, s.ScalerCycles)
	}
	fmt.Printf("classifier total (sequential): %d cycles (%.3f ms) — paper: 1,200,420 (< 10 ms)\n",
		rep.ClassifierSum, float64(rep.ClassifierSum)/cfg.ClockHz*1e3)
	fmt.Printf("classifier max (parallel instances): %d cycles (%.3f ms)\n",
		rep.ClassifierMax, float64(rep.ClassifierMax)/cfg.ClockHz*1e3)
	fmt.Printf("frame interval: %s\n", rep.Throughput)
}
