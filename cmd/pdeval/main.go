// Command pdeval reproduces the paper's Section 4 analysis: Table 1
// (accuracy / true positives / true negatives per scale for image-scaling
// versus HOG-feature-scaling), Figure 4 (ROC curves with AUC and EER), and
// the extended crossover sweep to scale 2.0.
//
// Usage:
//
//	pdeval -table1                 # Table 1 at the paper's protocol sizes
//	pdeval -roc                    # Figure 4 statistics (and curve dump)
//	pdeval -sweep                  # scales 1.1..2.0 crossover study
//	pdeval -quick -table1          # small protocol for a fast look
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdeval: ")
	var (
		table1   = flag.Bool("table1", false, "reproduce Table 1")
		roc      = flag.Bool("roc", false, "reproduce Figure 4 (ROC/AUC/EER)")
		sweep    = flag.Bool("sweep", false, "scale sweep 1.1..2.0 (crossover study, E7)")
		quick    = flag.Bool("quick", false, "use the small protocol (fast)")
		seed     = flag.Int64("seed", 2017, "dataset seed")
		fixedPt  = flag.Bool("fixed", false, "also score through the fixed-point scaler")
		native   = flag.Bool("native", false, "render scaled test sets natively instead of upsampling")
		curveOut = flag.String("curves", "", "write ROC curve points to this file")
		ci       = flag.Float64("ci", 0, "bootstrap the HOG-vs-image accuracy difference at this scale")
		robust   = flag.Bool("robust", false, "run the noise/occlusion robustness studies")
	)
	flag.Parse()
	if !*table1 && !*roc && !*sweep && *ci == 0 && !*robust {
		flag.Usage()
		os.Exit(2)
	}

	o := experiments.DefaultOptions()
	if *quick {
		o.Protocol = dataset.SmallProtocol()
	}
	o.Seed = *seed
	o.FixedPoint = *fixedPt
	o.NativeRender = *native
	if *sweep {
		o.Scales = []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0}
	}

	var rocScales []float64
	if *roc {
		rocScales = []float64{1.0, 1.1}
	}

	log.Printf("protocol: train %d+%d, test %d+%d, seed %d",
		o.Protocol.TrainPos, o.Protocol.TrainNeg, o.Protocol.TestPos, o.Protocol.TestNeg, o.Seed)

	if *ci > 0 {
		iv, err := experiments.DiffCI(o, *ci, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HOG-minus-image accuracy difference at scale %.2f: %v\n", *ci, iv)
		if iv.Contains(0) {
			fmt.Println("  (interval contains 0: methods statistically indistinguishable here)")
		} else if iv.Point > 0 {
			fmt.Println("  (proposed method significantly better at this scale)")
		} else {
			fmt.Println("  (conventional method significantly better at this scale)")
		}
	}
	if *robust {
		noise, err := experiments.NoiseStudy(o, 1.2, []float64{0, 6, 20, 40})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== noise robustness at scale 1.2 ===")
		fmt.Print(experiments.RenderRobustness("sigma", noise))
		occ, err := experiments.OcclusionStudy(o, 1.2, []float64{0, 0.25, 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== occlusion robustness at scale 1.2 ===")
		fmt.Print(experiments.RenderRobustness("occl", occ))
	}
	if !*table1 && !*roc && !*sweep {
		return
	}

	study, err := experiments.RunStudy(o, rocScales)
	if err != nil {
		log.Fatal(err)
	}

	if *table1 || *sweep {
		fmt.Println("=== Table 1: detection accuracy, image-scaling vs HOG-feature-scaling ===")
		fmt.Print(study.Table1.Render())
		if cross := study.Table1.CrossoverScale(); cross > 0 {
			fmt.Printf("proposed method stops winning at scale %.1f (paper: ~1.5)\n", cross)
		} else {
			fmt.Println("proposed method within tolerance at every evaluated scale")
		}
		if *fixedPt {
			fmt.Println("fixed-point (shift-and-add) feature scaling accuracy:")
			for _, row := range study.Table1.Rows {
				fmt.Printf("  scale %.1f: float %.4f, fixed %.4f\n", row.Scale, row.HOGAcc, row.FixedAcc)
			}
		}
	}

	if *roc {
		fmt.Println("=== Figure 4: ROC statistics ===")
		fmt.Print(experiments.RenderROC(study.ROC))
		if *curveOut != "" {
			f, err := os.Create(*curveOut)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range study.ROC {
				for _, pt := range p.Image.Points {
					fmt.Fprintf(f, "image %.2f %.6f %.6f\n", p.Scale, pt.FPR, pt.TPR)
				}
				for _, pt := range p.HOG.Points {
					fmt.Fprintf(f, "hog %.2f %.6f %.6f\n", p.Scale, pt.FPR, pt.TPR)
				}
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("ROC curves written to %s", *curveOut)
		}
	}
}
