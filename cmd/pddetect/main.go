// Command pddetect runs the multi-scale pedestrian detector on a PGM frame
// using either the conventional image pyramid or the paper's HOG feature
// pyramid, printing detections and optionally writing an annotated PPM.
//
// Usage:
//
//	pddetect -model pedestrian.model -in frame.pgm -mode feature -annotate out.ppm
//
// With -stream N the frame is instead fed N times through the deadline-aware
// streaming runtime (internal/rt) at the -fps frame rate, exercising the
// degradation ladder and printing the runtime's Stats snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/svm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pddetect: ")
	var (
		modelPath  = flag.String("model", "pedestrian.model", "trained model file")
		in         = flag.String("in", "", "input PGM frame")
		mode       = flag.String("mode", "feature", "pyramid mode: image, feature, chained, fixed, octave")
		lambda     = flag.Float64("lambda", 0, "power-law channel correction (octave mode)")
		step       = flag.Float64("step", 1.1, "pyramid scale step")
		maxScales  = flag.Int("scales", 0, "max pyramid levels (0 = all that fit)")
		threshold  = flag.Float64("threshold", 0, "SVM decision threshold")
		nms        = flag.Float64("nms", 0.3, "NMS IoU (<= 0 disables)")
		workers    = flag.Int("workers", 0, "scan worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		cascade    = flag.Bool("cascade", false, "staged early-rejection scoring, exact mode (bit-identical detections, faster)")
		cascadeCal = flag.Bool("cascade-calibrated", false, "staged scoring with calibrated per-stage floors (needs a model trained with pdtrain -cascade-calibrate)")
		annotate   = flag.String("annotate", "", "write an annotated PPM here")
		stream     = flag.Int("stream", 0, "feed the frame N times through the streaming runtime")
		fps        = flag.Float64("fps", 60, "frame rate for -stream (sets the per-frame deadline)")
		hang       = flag.Duration("hang-timeout", 0, "liveness watchdog for -stream: abandon a scan stuck this long and wedge the pipeline (0 derives 4x the frame deadline, negative disables)")
		roiOn      = flag.Bool("roi", false, "add a track-guided ROI rung to the -stream degradation ladder (restricted scans around live tracks when overloaded)")
		roiEvery   = flag.Int("roi-full-every", roi.DefaultFullEvery, "ROI rung dense-scan cadence: a full scan every K frames bounds new-entrant latency to K-1 frames")
		roiMargin  = flag.Int("roi-margin", roi.DefaultMarginPx, "ROI rung dilation in pixels around each tracked box")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		log.Fatal("missing -in frame")
	}
	model, err := svm.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	frame, err := imgproc.ReadPGMFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ScaleStep = *step
	cfg.MaxScales = *maxScales
	cfg.Threshold = *threshold
	cfg.NMSOverlap = *nms
	cfg.Workers = *workers
	switch {
	case *cascadeCal:
		cfg.Cascade = core.CascadeCalibrated
	case *cascade:
		cfg.Cascade = core.CascadeExact
	}
	octave := false
	switch *mode {
	case "image":
		cfg.Mode = core.ImagePyramid
	case "feature":
		cfg.Mode = core.FeaturePyramid
	case "chained":
		cfg.Mode = core.FeaturePyramidChained
	case "fixed":
		cfg.Mode = core.FeaturePyramidFixed
	case "octave":
		octave = true
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	det, err := core.NewDetector(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *stream > 0 {
		if octave {
			log.Fatal("-stream does not support octave mode")
		}
		var roiCfg *roi.Config
		if *roiOn {
			roiCfg = &roi.Config{FullEvery: *roiEvery, MarginPx: *roiMargin}
		}
		runStream(det, frame, *stream, *fps, *hang, roiCfg)
		return
	}
	var dets []eval.Detection
	if octave {
		dets, err = det.DetectOctave(frame, core.OctavePyramidConfig{Lambda: *lambda})
	} else {
		dets, err = det.Detect(frame)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s %dx%d: %d detections (%s pyramid, step %.2f)",
		*in, frame.W, frame.H, len(dets), *mode, *step)
	for _, d := range dets {
		fmt.Printf("%d %d %d %d %.4f\n", d.Box.Min.X, d.Box.Min.Y, d.Box.W(), d.Box.H(), d.Score)
	}
	if *annotate != "" {
		rgb := imgproc.FromGray(frame)
		for _, d := range dets {
			rgb.DrawRect(d.Box, 255, 40, 40, 2)
		}
		if err := imgproc.WritePPMFile(*annotate, rgb); err != nil {
			log.Fatal(err)
		}
		log.Printf("annotated frame written to %s", *annotate)
	}
}

// runStream replays the frame n times through the streaming runtime at the
// given frame rate and reports the per-frame outcomes plus the final Stats
// snapshot — the software rendition of the paper's 60 fps budget analysis.
func runStream(det *core.Detector, frame *imgproc.Gray, n int, fps float64, hang time.Duration, roiCfg *roi.Config) {
	m := obs.NewMetrics()
	p, err := rt.New(det, rt.Config{FPS: fps, HangTimeout: hang, ROI: roiCfg, Metrics: m})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	interval := time.Duration(float64(time.Second) / fps)
	watchdog := "disabled"
	if h := p.HangTimeout(); h > 0 {
		watchdog = h.String()
	}
	log.Printf("streaming %d frames at %.1f fps (deadline %s, watchdog %s, ladder %v)",
		n, fps, p.Deadline().Round(time.Microsecond), watchdog, p.Ladder())

	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range p.Results() {
			status := "ok"
			switch {
			case r.Err != nil:
				status = "error: " + r.Err.Error()
			case r.Missed:
				status = "missed deadline"
			}
			if r.ROI {
				status += " (roi)"
			}
			log.Printf("frame %3d: rung %d, %3d detections, latency %8s  %s",
				r.Seq, r.Rung, len(r.Detections), r.Latency.Round(time.Microsecond), status)
		}
	}()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < n; i++ {
		if !p.Submit(frame) {
			if p.Wedged() {
				log.Printf("pipeline wedged at frame %d: a scan hung past the watchdog; stopping the stream", i)
				break
			}
			log.Printf("frame %d rejected", i)
		}
		if i < n-1 {
			<-tick.C
		}
	}
	p.Flush()
	log.Printf("stats: %s", p.Stats())
	p.Close()
	<-done
	log.Printf("stage latencies:\n%s", m.Summary())
}
