// Package repro is a from-scratch Go reproduction of Hemmati, Biglari-
// Abhari, Niar and Berber, "Real-Time Multi-Scale Pedestrian Detection for
// Driver Assistance Systems" (DAC 2017): HOG + linear-SVM pedestrian
// detection where the multi-scale pyramid is built by down-sampling the
// normalized HOG feature map instead of the input image, together with a
// cycle-level model of the paper's FPGA accelerator (streaming HOG
// extractor, banked NHOGMem, shift-and-add scaler chain, MACBAR SVM
// engine) and its resource model.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the command-line tools, examples/ the runnable
// walkthroughs, and bench_test.go in this package regenerates every table
// and figure of the paper's evaluation (results recorded in
// EXPERIMENTS.md).
package repro
