package repro_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus the ablations listed in DESIGN.md §5. Each experiment
// bench reports its headline quantities through b.ReportMetric so that
// `go test -bench=. -benchmem` doubles as the reproduction log (recorded in
// EXPERIMENTS.md). Heavy protocol benches use reduced set sizes so a full
// run stays in minutes; cmd/pdeval runs the paper-sized protocol.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/featpyr"
	"repro/internal/fixed"
	"repro/internal/hog"
	"repro/internal/hw/accel"
	"repro/internal/hw/hogpipe"
	"repro/internal/hw/nhogmem"
	"repro/internal/hw/resource"
	"repro/internal/hw/svmpipe"
	"repro/internal/hw/timemux"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/serve"
	"repro/internal/svm"
)

// benchOptions is the reduced protocol used by the experiment benches.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Protocol = dataset.Protocol{TrainPos: 80, TrainNeg: 240, TestPos: 60, TestNeg: 240}
	return o
}

// BenchmarkTable1ScaleSweep regenerates Table 1 (E1): accuracy and TP/TN
// for image-scaling vs HOG-feature-scaling at scales 1.1-1.5.
func BenchmarkTable1ScaleSweep(b *testing.B) {
	o := benchOptions()
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.BaseAcc*100, "acc1.0_%")
	b.ReportMetric(last.Rows[0].ImageAcc*100, "accImg1.1_%")
	b.ReportMetric(last.Rows[0].HOGAcc*100, "accHOG1.1_%")
	b.ReportMetric(last.Rows[len(last.Rows)-1].HOGAcc*100, "accHOG1.5_%")
}

// BenchmarkFigure4ROC regenerates Figure 4 (E2): ROC AUC and EER at scales
// 1.0 and 1.1 for both methods.
func BenchmarkFigure4ROC(b *testing.B) {
	o := benchOptions()
	o.Scales = nil // ROC only
	var pairs []experiments.ROCPair
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunStudy(o, []float64{1.0, 1.1})
		if err != nil {
			b.Fatal(err)
		}
		pairs = s.ROC
	}
	b.ReportMetric(pairs[0].ImageAUC, "AUC1.0")
	b.ReportMetric(pairs[1].ImageAUC, "AUCimg1.1")
	b.ReportMetric(pairs[1].HOGAUC, "AUChog1.1")
	b.ReportMetric(pairs[1].HOGEER, "EERhog1.1")
}

// BenchmarkTable2Resources regenerates Table 2 (E3): the resource rollup of
// the two-scale HDTV accelerator on the ZC7020.
func BenchmarkTable2Resources(b *testing.B) {
	var total resource.Usage
	for i := 0; i < b.N; i++ {
		br, err := resource.Estimate(resource.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		total = br.Total
	}
	b.ReportMetric(total.LUT, "LUT")
	b.ReportMetric(total.FF, "FF")
	b.ReportMetric(total.BRAM, "BRAM36")
	b.ReportMetric(total.DSP, "DSP48")
}

// BenchmarkThroughputHDTV regenerates the Section 5 throughput claims (E4):
// cycles per HDTV frame, classifier cycles, and frames per second at
// 125 MHz, from the closed-form cycle model.
func BenchmarkThroughputHDTV(b *testing.B) {
	cfg := accel.DefaultConfig()
	var rep *accel.FrameReport
	for i := 0; i < b.N; i++ {
		r, err := accel.AnalyticReport(cfg, 1920, 1080)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(float64(rep.ExtractorCycles), "extractCyc")
	b.ReportMetric(float64(rep.ClassifierSum), "classifyCyc")
	b.ReportMetric(rep.Throughput.FPS(), "fps")
	b.ReportMetric(float64(rep.ClassifierSum)/cfg.ClockHz*1e3, "classifyMs")
}

// BenchmarkHDTVExtractorSim runs the full pixel-per-cycle extractor
// simulation on a real HDTV frame (the slow, high-fidelity version of E4).
func BenchmarkHDTVExtractorSim(b *testing.B) {
	g := dataset.New(3)
	scene, err := g.MakeScene(dataset.HDTVSceneConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep hogpipe.Report
	for i := 0; i < b.N; i++ {
		_, r, err := hogpipe.RunFrame(scene.Frame, hogpipe.DefaultConfig(), 125e6)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(float64(rep.Cycles), "cycles")
	b.ReportMetric(rep.Throughput.FPS(), "fps@125MHz")
}

// BenchmarkStoppingDistance regenerates the Section 1 worked numbers (E5).
func BenchmarkStoppingDistance(b *testing.B) {
	var r50, r70 das.Report
	for i := 0; i < b.N; i++ {
		r50 = das.Analyze(das.Scenario{SpeedKmh: 50})
		r70 = das.Analyze(das.Scenario{SpeedKmh: 70})
	}
	b.ReportMetric(r50.BrakingDistance, "brake50_m")
	b.ReportMetric(r50.StoppingDistance, "stop50_m")
	b.ReportMetric(r70.BrakingDistance, "brake70_m")
	b.ReportMetric(r70.StoppingDistance, "stop70_m")
}

// BenchmarkScaleCrossover extends Table 1 to scales up to 2.0 (E7): where
// the proposed method stops winning.
func BenchmarkScaleCrossover(b *testing.B) {
	o := benchOptions()
	o.Scales = []float64{1.1, 1.3, 1.5, 1.7, 2.0}
	var cross float64
	var gap float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		cross = r.CrossoverScale()
		last := r.Rows[len(r.Rows)-1]
		gap = (last.ImageAcc - last.HOGAcc) * 100
	}
	b.ReportMetric(cross, "crossoverScale")
	b.ReportMetric(gap, "gapAt2.0_%")
}

// BenchmarkNHOGMemSchedule verifies and times the 72-cycle two-column read
// schedule (E8).
func BenchmarkNHOGMemSchedule(b *testing.B) {
	var cycles int
	for i := 0; i < b.N; i++ {
		sched, err := nhogmem.PairSchedule(i%100, i%50, 16, 36)
		if err != nil {
			b.Fatal(err)
		}
		if err := nhogmem.CheckConflictFree(sched); err != nil {
			b.Fatal(err)
		}
		cycles = nhogmem.ScheduleCycles(sched)
	}
	b.ReportMetric(float64(cycles), "cycles/2cols")
}

// --- Ablation benches (DESIGN.md §5) ---

func benchFeatureMap(b *testing.B, w, h int) *hog.FeatureMap {
	b.Helper()
	img := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(5))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	fm, err := hog.Compute(imgproc.BoxBlur(img, 1), hog.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return fm
}

// BenchmarkAblationScalerKind compares the float bilinear feature scaler
// against the hardware shift-and-add fixed-point scaler: speed here,
// accuracy in TestTable1FixedPoint.
func BenchmarkAblationScalerKind(b *testing.B) {
	fm := benchFeatureMap(b, 640, 480)
	b.Run("float", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := featpyr.ScaleMapBy(fm, 1.2, featpyr.ScaleConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixed-shift-add", func(b *testing.B) {
		fs := featpyr.NewFixedScaler()
		for i := 0; i < b.N; i++ {
			if _, _, err := fs.ScaleMapBy(fm, 1.2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlockLayout compares the hardware per-cell block layout
// (4608-dim window) against the Dalal-Triggs overlap layout (3780-dim).
func BenchmarkAblationBlockLayout(b *testing.B) {
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(6))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	for _, layout := range []hog.Layout{hog.LayoutPerCell, hog.LayoutOverlap} {
		b.Run(layout.String(), func(b *testing.B) {
			cfg := hog.DefaultConfig()
			cfg.Layout = layout
			var dim int
			for i := 0; i < b.N; i++ {
				fm, err := hog.Compute(img, cfg)
				if err != nil {
					b.Fatal(err)
				}
				dim = fm.BlocksX * fm.BlocksY * fm.BlockLen
			}
			b.ReportMetric(float64(dim), "mapDim")
		})
	}
}

// BenchmarkAblationNorm compares the block normalization schemes.
func BenchmarkAblationNorm(b *testing.B) {
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(7))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	for _, n := range []hog.Norm{hog.L2Hys, hog.L2, hog.L1Sqrt} {
		b.Run(n.String(), func(b *testing.B) {
			cfg := hog.DefaultConfig()
			cfg.Norm = n
			for i := 0; i < b.N; i++ {
				if _, err := hog.Compute(img, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSVMLoss compares L1 vs L2 hinge training on the same
// problem: epochs to converge and training accuracy.
func BenchmarkAblationSVMLoss(b *testing.B) {
	g := dataset.New(8)
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	x, err := core.ExtractDescriptors(set, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, loss := range []svm.Loss{svm.L1, svm.L2} {
		b.Run(loss.String(), func(b *testing.B) {
			cfg := svm.DefaultTrainConfig()
			cfg.Loss = loss
			cfg.C = 0.01
			var acc float64
			var epochs int
			for i := 0; i < b.N; i++ {
				res, err := svm.Train(x, set.Labels, cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc = svm.Accuracy(res.Model, x, set.Labels)
				epochs = res.Epochs
			}
			b.ReportMetric(acc*100, "trainAcc_%")
			b.ReportMetric(float64(epochs), "epochs")
		})
	}
}

// BenchmarkAblationMACBAR sweeps the MACBAR pipeline depth: classifier
// cycles per HDTV frame and LUT cost.
func BenchmarkAblationMACBAR(b *testing.B) {
	for _, bars := range []int{2, 4, 8} {
		b.Run(map[int]string{2: "2bars", 4: "4bars", 8: "8bars"}[bars], func(b *testing.B) {
			// Fewer MACBARs -> more passes per window: cycles scale by 8/bars.
			cfg := svmpipe.DefaultConfig()
			var cyc int64
			for i := 0; i < b.N; i++ {
				cyc = cfg.FrameCycles(240, 135) * int64(8/bars)
			}
			p := resource.PaperParams()
			p.MACBARs = bars
			br, err := resource.Estimate(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cyc), "cycles")
			b.ReportMetric(br.Total.LUT, "LUT")
		})
	}
}

// BenchmarkAblationMemDepth compares the 18-row NHOGMem of this paper with
// the 135-row memory of [DSD'14]: BRAM cost.
func BenchmarkAblationMemDepth(b *testing.B) {
	for _, rows := range []int{18, 135} {
		b.Run(map[int]string{18: "18rows", 135: "135rows"}[rows], func(b *testing.B) {
			var bram float64
			for i := 0; i < b.N; i++ {
				p := resource.PaperParams()
				p.MemRows = rows
				br, err := resource.Estimate(p)
				if err != nil {
					b.Fatal(err)
				}
				bram = br.Total.BRAM
			}
			b.ReportMetric(bram, "BRAM36")
			b.ReportMetric(bram/1.4, "ZC7020_%")
		})
	}
}

// --- Component micro-benchmarks ---

// BenchmarkHOGComputeVGA times dense HOG extraction on a 640x480 frame (the
// stage the paper accelerates).
func BenchmarkHOGComputeVGA(b *testing.B) {
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(9))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hog.Compute(img, hog.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeCells compares the retained reference cell histogrammer
// (per-pixel Atan2/Hypot behind a clamping accessor) against the fused
// tangent-threshold fast path, allocating and arena-backed, across an
// interior-dominated VGA frame and a border-heavy strip, plus the banded
// parallel path at several worker counts. The fused/reference ratio on
// vga/serial is the PR's headline front-end speedup.
func BenchmarkComputeCells(b *testing.B) {
	cfg := hog.DefaultConfig()
	rng := rand.New(rand.NewSource(21))
	mk := func(w, h int) *imgproc.Gray {
		img := imgproc.NewGray(w, h)
		for i := range img.Pix {
			img.Pix[i] = uint8(rng.Intn(256))
		}
		return img
	}
	for _, sz := range []struct {
		name string
		img  *imgproc.Gray
	}{
		// 58 of 60 cell rows are interior on VGA; the 2-cell-tall strip
		// keeps the replicate-clamp border path on half its rows.
		{"vga", mk(640, 480)},
		{"border-strip", mk(640, 16)},
	} {
		b.Run(sz.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hog.ReferenceComputeCells(sz.img, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sz.name+"/fused", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hog.ComputeCells(sz.img, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/fused-into/workers%d", sz.name, workers), func(b *testing.B) {
				s := hog.NewScratch()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := hog.ComputeCellsInto(sz.img, cfg, s, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNormalize compares allocating block normalization against the
// arena-backed NormalizeInto on a VGA cell grid.
func BenchmarkNormalize(b *testing.B) {
	cfg := hog.DefaultConfig()
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(22))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	grid, err := hog.ComputeCells(img, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hog.Normalize(grid, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		var fm hog.FeatureMap
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hog.NormalizeInto(grid, cfg, &fm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSVMScoreWindow times one 4608-dim window classification.
func BenchmarkSVMScoreWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := &svm.Model{W: make([]float64, 4608)}
	x := make([]float64, 4608)
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Score(x)
	}
}

// BenchmarkImagePyramidVsFeaturePyramid times full-frame detection in both
// modes — the speedup that motivates the paper's contribution.
func BenchmarkImagePyramidVsFeaturePyramid(b *testing.B) {
	g := dataset.New(11)
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.Train(set, core.DefaultConfig(), core.DefaultTrainOptions())
	if err != nil {
		b.Fatal(err)
	}
	scene, err := g.MakeScene(dataset.DefaultSceneConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.PyramidMode{core.ImagePyramid, core.FeaturePyramid} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := det.Config()
			cfg.Mode = mode
			d, err := core.NewDetector(det.Model(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(scene.Frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectParallel times the full multi-scale detection hot path at
// several worker counts: zero-copy window scoring (no per-window copy or
// allocation — check allocs/op with -benchmem) with levels sharded across
// window rows, the software analogue of the paper's 8 parallel MACBARs.
// Workers=1 is the serial baseline; the speedup at higher counts needs a
// multi-core runner, but detections are identical at every count.
func BenchmarkDetectParallel(b *testing.B) {
	g := dataset.New(14)
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.Train(set, core.DefaultConfig(), core.DefaultTrainOptions())
	if err != nil {
		b.Fatal(err)
	}
	scene, err := g.MakeScene(dataset.DefaultSceneConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []core.PyramidMode{core.FeaturePyramid, core.ImagePyramid} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", mode, workers), func(b *testing.B) {
				cfg := det.Config()
				cfg.Mode = mode
				cfg.Workers = workers
				d, err := core.NewDetector(det.Model(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var n int
				for i := 0; i < b.N; i++ {
					dets, err := d.Detect(scene.Frame)
					if err != nil {
						b.Fatal(err)
					}
					n = len(dets)
				}
				b.ReportMetric(float64(n), "detections")
			})
		}
	}
}

// BenchmarkDetectROI measures the steady-state cost of the temporal ROI
// schedule on a tracked HDTV driving scene (the paper's 1920x1080 frame,
// two mid-distance pedestrians) with a trained model. The tracks are
// pinned to the scene's ground truth (what a settled tracker carries), so
// each pedestrian stays covered. One op is one FullEvery-frame cadence
// cycle — for roi, one dense full scan plus FullEvery-1 restricted scans —
// so the dense/roi ns/op ratio is exactly the amortized per-frame speedup
// ISSUE 10 claims, independent of the harness's iteration count.
func BenchmarkDetectROI(b *testing.B) {
	g := dataset.New(14)
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.Train(set, core.DefaultConfig(), core.DefaultTrainOptions())
	if err != nil {
		b.Fatal(err)
	}
	scene, err := g.MakeScene(dataset.SceneConfig{
		W: 1920, H: 1080, Pedestrians: 2,
		MinHeight: 120, MaxHeight: 220, ClutterDensity: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name       string
		restricted bool
	}{
		{"dense", false},
		{"roi", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := det.Config()
			cfg.Mode = core.FeaturePyramid
			cfg.Workers = 1
			rs := core.NewRegionSet()
			if bc.restricted {
				cfg.Regions = rs
			}
			d, err := core.NewDetector(det.Model(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			sched, err := roi.New(roi.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			cycle := sched.Config().FullEvery
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				for f := 0; f < cycle; f++ {
					if bc.restricted {
						plan := sched.Plan(scene.Truth, scene.Frame.W, scene.Frame.H)
						if plan.Full {
							rs.Clear()
						} else {
							rs.Set(plan.Regions)
						}
					}
					dets, err := d.Detect(scene.Frame)
					if err != nil {
						b.Fatal(err)
					}
					n = len(dets)
				}
			}
			b.ReportMetric(float64(n), "detections")
		})
	}
}

// BenchmarkScoreWindow compares the zero-copy strided window scorer against
// the copy-then-dot path it replaced on one 4608-dim window.
func BenchmarkScoreWindow(b *testing.B) {
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(15))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	fm, err := hog.Compute(img, hog.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := &svm.Model{W: make([]float64, 4608)}
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	b.Run("zero-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := fm.ScoreWindow(m.W, i%(fm.BlocksX-8), i%(fm.BlocksY-16), 8, 16); !ok {
				b.Fatal("window rejected")
			}
		}
	})
	b.Run("copy-dot", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]float64, 4608)
		for i := 0; i < b.N; i++ {
			if !fm.WindowInto(buf, i%(fm.BlocksX-8), i%(fm.BlocksY-16), 8, 16) {
				b.Fatal("window rejected")
			}
			_ = m.Score(buf)
		}
	})
}

// BenchmarkCORDIC times the magnitude/orientation unit of the HW extractor.
func BenchmarkCORDIC(b *testing.B) {
	var mag, ang int64
	for i := 0; i < b.N; i++ {
		mag, ang = hogpipe.CORDICVector(int64(i%511)-255, int64((i*7)%511)-255)
	}
	_ = mag
	_ = ang
}

// BenchmarkModelQuantization times fixed-point conversion of a full model.
func BenchmarkModelQuantization(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	m := &svm.Model{W: make([]float64, 4608)}
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	f := fixed.Q(3, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Quantize(m, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeMuxComparison regenerates the related-work comparison: the
// Hahnle et al. [9] time-multiplexed image-pyramid architecture versus this
// paper's feature-pyramid accelerator, on extraction cycles and fabric.
func BenchmarkTimeMuxComparison(b *testing.B) {
	var cmp *timemux.Compare
	for i := 0; i < b.N; i++ {
		featRep, err := accel.AnalyticReport(accel.DefaultConfig(), 1920, 1080)
		if err != nil {
			b.Fatal(err)
		}
		dac, err := resource.Estimate(resource.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		cmp, err = timemux.CompareWith(timemux.Hahnle2013(), featRep.Throughput.FPS(),
			featRep.ExtractorCycles, dac.Total.LUT)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.ExtractionRatio, "extractRatio")
	b.ReportMetric(cmp.TimeMuxLUT/cmp.FeaturePyrLUT, "LUTratio")
	b.ReportMetric(cmp.TimeMuxFPS, "timemuxFPS")
}

// BenchmarkAblationOctaveLambda compares detection with the Dollar-style
// octave pyramid at different power-law corrections against the paper's
// single-base feature pyramid.
func BenchmarkAblationOctaveLambda(b *testing.B) {
	g := dataset.New(13)
	set, err := g.RenderAt(g.NewSpecSet(60, 180), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.Train(set, core.DefaultConfig(), core.DefaultTrainOptions())
	if err != nil {
		b.Fatal(err)
	}
	scene, err := g.MakeScene(dataset.DefaultSceneConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, lambda := range []float64{0, 0.11, 0.3} {
		b.Run(map[float64]string{0: "lambda0", 0.11: "lambda0.11", 0.3: "lambda0.3"}[lambda], func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				dets, err := det.DetectOctave(scene.Frame, core.OctavePyramidConfig{Lambda: lambda})
				if err != nil {
					b.Fatal(err)
				}
				n = len(dets)
			}
			b.ReportMetric(float64(n), "detections")
		})
	}
}

// BenchmarkRobustnessNoise regenerates the noise robustness study (an
// extension beyond the paper's tables; see EXPERIMENTS.md).
func BenchmarkRobustnessNoise(b *testing.B) {
	o := benchOptions()
	var pts []experiments.RobustnessPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.NoiseStudy(o, 1.2, []float64{6, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].HOGAcc*100, "HOGacc@6_%")
	b.ReportMetric(pts[1].HOGAcc*100, "HOGacc@20_%")
	b.ReportMetric(pts[1].ImageAcc*100, "Imgacc@20_%")
}

// BenchmarkServeRoundTrip measures one full request through the serving
// stack — client HTTP round trip, admission queue, circuit breaker,
// supervisor dispatch, rt pipeline scan — with an all-zero model so the
// number isolates the serving overhead on top of the detector itself.
func BenchmarkServeRoundTrip(b *testing.B) {
	factory := func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		return core.NewDetector(&svm.Model{W: make([]float64, cfg.DescriptorLen())}, cfg)
	}
	sup, err := serve.NewSupervisor(factory, serve.SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sup.Close()
	ts := httptest.NewServer(serve.NewServer(sup, serve.ServerConfig{}).Handler())
	defer ts.Close()
	client := serve.NewClient(ts.URL, serve.ClientConfig{})
	frame := imgproc.NewGray(128, 256)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Detect(ctx, i, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// cascadeBenchModel builds the concentrated-mass synthetic model the
// cascade benches scan with: per-row amplitude A*rho^r, so the few
// heaviest block rows carry most of the weight mass — the shape a trained
// soft-cascade SVM has, and the shape that lets the Cauchy-Schwarz bound
// bite early. Random i.i.d. weights are a worst case on purpose kept in
// BenchmarkDetectParallel; this model is the best-case counterpart.
func cascadeBenchModel(cfg core.Config, seed int64) *svm.Model {
	cx, cy := cfg.HOG.WindowCells(cfg.WindowW, cfg.WindowH)
	wbx, wby := cfg.HOG.WindowBlocks(cx, cy)
	rowLen := wbx * cfg.HOG.BlockLen()
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, wby*rowLen)
	for r := 0; r < wby; r++ {
		a := 0.02 * math.Pow(0.55, float64(r))
		for i := r * rowLen; i < (r+1)*rowLen; i++ {
			w[i] = a * rng.NormFloat64()
		}
	}
	return &svm.Model{W: w}
}

// calibrateCascadeModel embeds soft-cascade floors in the model, fitted on
// a synthetic positive aligned with the weight vector (per-block x_b =
// 0.95 * w_b/||w_b||, the strongest response a unit-norm block can give).
func calibrateCascadeModel(model *svm.Model, cfg core.Config) error {
	cx, cy := cfg.HOG.WindowCells(cfg.WindowW, cfg.WindowH)
	wbx, wby := cfg.HOG.WindowBlocks(cx, cy)
	bl := cfg.HOG.BlockLen()
	casc, err := svm.NewCascade(model, wbx, wby, bl)
	if err != nil {
		return err
	}
	pos := make([]float64, len(model.W))
	for b := 0; b+bl <= len(model.W); b += bl {
		var ss float64
		for _, v := range model.W[b : b+bl] {
			ss += v * v
		}
		if n := math.Sqrt(ss); n > 0 {
			for i := b; i < b+bl; i++ {
				pos[i] = 0.95 * model.W[i] / n
			}
		}
	}
	const margin = 0.05
	floors, err := casc.Calibrate(model, [][]float64{pos}, margin)
	if err != nil {
		return err
	}
	model.Calib = &svm.CascadeCalib{Stages: wby, Margin: margin, Thresholds: floors}
	return nil
}

// BenchmarkDetectCascade measures the tentpole of ISSUE 9 on the workload
// it targets: full multi-scale scans of clutter-only (negative) VGA frames
// at workers=1, dense versus exact cascade versus calibrated cascade, with
// a concentrated-mass model and a positive decision threshold. The exact
// mode must return bit-identical detections (asserted in core's tests);
// here the quantity of interest is ns/op and the mean blocks evaluated per
// window.
func BenchmarkDetectCascade(b *testing.B) {
	base := core.DefaultConfig()
	base.Mode = core.FeaturePyramid
	base.Workers = 1
	base.Threshold = 0.5
	model := cascadeBenchModel(base, 47)
	if err := calibrateCascadeModel(model, base); err != nil {
		b.Fatal(err)
	}
	frame := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(48))
	for i := range frame.Pix {
		frame.Pix[i] = uint8(rng.Intn(256))
	}
	for _, bc := range []struct {
		name string
		mode core.CascadeMode
	}{
		{"dense", core.CascadeOff},
		{"exact", core.CascadeExact},
		{"calibrated", core.CascadeCalibrated},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := base
			cfg.Cascade = bc.mode
			reg := obs.NewMetrics()
			cfg.Metrics = obs.NewDetectRecorder(reg)
			d, err := core.NewDetector(model, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Detect(frame); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cs := reg.CascadeSnapshot(); cs.Windows > 0 {
				b.ReportMetric(cs.MeanBlocks, "blocks/window")
			}
		})
	}
}

// BenchmarkScoreWindowStaged isolates the staged kernel against the dense
// scorer on single windows of a real feature map with the concentrated
// model, at a threshold that lets the bound reject early.
func BenchmarkScoreWindowStaged(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Threshold = 0.5
	model := cascadeBenchModel(cfg, 49)
	img := imgproc.NewGray(640, 480)
	rng := rand.New(rand.NewSource(50))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	fm, err := hog.Compute(img, cfg.HOG)
	if err != nil {
		b.Fatal(err)
	}
	cx, cy := cfg.HOG.WindowCells(cfg.WindowW, cfg.WindowH)
	wbx, wby := cfg.HOG.WindowBlocks(cx, cy)
	casc, err := svm.NewCascade(model, wbx, wby, cfg.HOG.BlockLen())
	if err != nil {
		b.Fatal(err)
	}
	plan := &hog.StagePlan{Order: casc.Order, Suffix: casc.Suffix, Slack: casc.Slack}
	thr := cfg.Threshold - model.B
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := fm.ScoreWindow(model.W, i%(fm.BlocksX-wbx), i%(fm.BlocksY-wby), wbx, wby); !ok {
				b.Fatal("window rejected")
			}
		}
	})
	b.Run("staged-exact", func(b *testing.B) {
		rowDots := make([]float64, wby)
		b.ReportAllocs()
		var rows int
		for i := 0; i < b.N; i++ {
			_, rowsEval, _, ok := fm.ScoreWindowStaged(model.W,
				i%(fm.BlocksX-wbx), i%(fm.BlocksY-wby), wbx, wby, plan, thr, 1, rowDots)
			if !ok {
				b.Fatal("window rejected")
			}
			rows += rowsEval
		}
		b.ReportMetric(float64(rows)/float64(b.N), "rows/window")
	})
}
