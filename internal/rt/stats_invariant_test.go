package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsInvariantMidFlight hammers Stats() while frames are being
// submitted, dropped, and scanned concurrently, asserting the accounting
// identity FramesIn == FramesOut + FramesDropped + InFlight at every
// observed instant — not just at idle. Before PR 6 Submit incremented
// FramesIn only after the channel send, so a fast scan loop could emit a
// result (FramesOut++) before intake was counted and a concurrent snapshot
// saw FramesOut + FramesDropped > FramesIn. Run under -race in tier-1.
func TestStatsInvariantMidFlight(t *testing.T) {
	det, frame := testDetector(t, nil)
	m := obs.NewMetrics()
	p, err := New(det, Config{Deadline: time.Second, Queue: 2, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var torn atomic.Uint64
	var hammer, drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for range p.Results() {
		}
	}()
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Stats()
			if s.FramesIn != s.FramesOut+s.FramesDropped+s.InFlight {
				if torn.Add(1) == 1 {
					t.Errorf("torn snapshot: in %d != out %d + dropped %d + inflight %d",
						s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight)
				}
				return
			}
			runtime.Gosched()
		}
	}()

	// Several submitters flood the 2-deep queue: most frames are evicted by
	// drop-oldest while the scan loop races them, exercising every counter
	// transition concurrently with the snapshots.
	var subs sync.WaitGroup
	for g := 0; g < 4; g++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < 200; i++ {
				p.Submit(frame)
			}
		}()
	}
	subs.Wait()
	p.Flush()

	s := p.Stats()
	if s.InFlight != 0 {
		t.Errorf("InFlight %d after Flush, want 0", s.InFlight)
	}
	if s.FramesIn != s.FramesOut+s.FramesDropped {
		t.Errorf("post-flush: in %d != out %d + dropped %d", s.FramesIn, s.FramesOut, s.FramesDropped)
	}
	if s.FramesIn == 0 || s.FramesOut == 0 {
		t.Errorf("degenerate run: in %d out %d — test exercised nothing", s.FramesIn, s.FramesOut)
	}

	close(stop)
	hammer.Wait()
	p.Close()
	drain.Wait()
	if n := torn.Load(); n > 0 {
		t.Errorf("%d torn snapshots observed", n)
	}

	// The obs mirror must agree with the authoritative stats after close.
	fs := p.Stats()
	if got := m.FramesIn.Load(); got != fs.FramesIn {
		t.Errorf("obs FramesIn %d, stats %d", got, fs.FramesIn)
	}
	if got := m.FramesOut.Load(); got != fs.FramesOut {
		t.Errorf("obs FramesOut %d, stats %d", got, fs.FramesOut)
	}
	if got := m.FramesDropped.Load(); got != fs.FramesDropped {
		t.Errorf("obs FramesDropped %d, stats %d", got, fs.FramesDropped)
	}
	if fs.FramesOut > 0 && m.Traces.Len() == 0 {
		t.Error("frames were scanned but the trace ring is empty")
	}
	if fs.FramesOut > 0 && m.Frame.Snapshot().Count != fs.FramesOut {
		t.Errorf("frame histogram count %d, want %d", m.Frame.Snapshot().Count, fs.FramesOut)
	}
}
