package rt

import (
	"errors"
	"testing"
	"time"
)

const ctlDeadline = 100 * time.Millisecond

// miss, comfortable, band and neutral frame outcomes for feeding the
// controller directly.
func missFrame() FrameResult {
	return FrameResult{Missed: true, Latency: ctlDeadline + time.Millisecond}
}
func comfortableFrame() FrameResult {
	return FrameResult{Latency: ctlDeadline / 10}
}
func bandFrame() FrameResult {
	// Inside the hysteresis band: on time, but above the recovery margin.
	return FrameResult{Latency: 90 * time.Millisecond}
}
func neutralFrame() FrameResult {
	return FrameResult{Err: errors.New("poison"), Latency: time.Millisecond}
}

func feed(c *controller, n int, f func() FrameResult) {
	for i := 0; i < n; i++ {
		c.observe(f(), ctlDeadline)
	}
}

func TestControllerDegradesOnlyAfterConsecutiveMisses(t *testing.T) {
	c := newController(4, 3, 8, 0.7)
	feed(c, 2, missFrame)
	feed(c, 1, comfortableFrame)
	feed(c, 2, missFrame)
	if got := c.current(); got != 0 {
		t.Fatalf("rung %d after broken miss streaks, want 0", got)
	}
	feed(c, 1, missFrame) // third consecutive miss
	if got := c.current(); got != 1 {
		t.Fatalf("rung %d after 3 consecutive misses, want 1", got)
	}
	if _, deg, _ := c.state(); deg != 1 {
		t.Fatalf("degrade events %d, want 1", deg)
	}
}

func TestControllerClampsAtBottomRung(t *testing.T) {
	c := newController(3, 2, 8, 0.7)
	feed(c, 20, missFrame)
	cur, deg, _ := c.state()
	if cur != 2 {
		t.Fatalf("rung %d under sustained misses, want bottom rung 2", cur)
	}
	if deg != 2 {
		t.Fatalf("degrade events %d, want exactly 2 (one per real transition)", deg)
	}
}

func TestControllerRecoversWithHysteresis(t *testing.T) {
	c := newController(4, 2, 4, 0.7)
	feed(c, 4, missFrame) // two degrade steps
	if got := c.current(); got != 2 {
		t.Fatalf("rung %d, want 2", got)
	}
	// Band frames are on time but must NOT count toward recovery.
	feed(c, 3, comfortableFrame)
	feed(c, 1, bandFrame)
	feed(c, 3, comfortableFrame)
	if got := c.current(); got != 2 {
		t.Fatalf("rung %d: band frame should have reset the recovery streak", got)
	}
	feed(c, 1, comfortableFrame) // fourth consecutive comfortable frame
	if got := c.current(); got != 1 {
		t.Fatalf("rung %d after recovery streak, want 1", got)
	}
	feed(c, 4, comfortableFrame)
	if got := c.current(); got != 0 {
		t.Fatalf("rung %d after second recovery streak, want 0", got)
	}
	if _, _, rec := c.state(); rec != 2 {
		t.Fatalf("recover events %d, want 2", rec)
	}
	// Fully recovered: more comfortable frames change nothing.
	feed(c, 10, comfortableFrame)
	if got := c.current(); got != 0 {
		t.Fatalf("rung %d, want to stay at 0", got)
	}
}

func TestControllerNeutralFramesDoNotSteer(t *testing.T) {
	c := newController(4, 3, 4, 0.7)
	// A poison frame fails fast for reasons unrelated to load: it must
	// neither degrade the pipeline nor break an ongoing recovery streak.
	feed(c, 20, neutralFrame)
	if got := c.current(); got != 0 {
		t.Fatalf("rung %d after neutral frames, want 0", got)
	}
	feed(c, 3, missFrame)
	if got := c.current(); got != 1 {
		t.Fatalf("rung %d, want 1", got)
	}
	feed(c, 3, comfortableFrame)
	feed(c, 1, neutralFrame)
	feed(c, 1, comfortableFrame) // fourth comfortable, streak intact
	if got := c.current(); got != 0 {
		t.Fatalf("rung %d: neutral frame should not reset the recovery streak", got)
	}
}
