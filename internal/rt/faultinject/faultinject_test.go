package faultinject

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/imgproc"
)

func TestProbeInjectsConfiguredFaults(t *testing.T) {
	f := New()
	ctx := context.Background()
	if err := f.Probe(ctx, 0); err != nil {
		t.Fatalf("empty fault set: %v", err)
	}
	sentinel := errors.New("scaler fault")
	f.FailLevel(1, sentinel)
	if err := f.Probe(ctx, 1); !errors.Is(err, sentinel) {
		t.Fatalf("level 1: got %v, want injected error", err)
	}
	if err := f.Probe(ctx, 0); err != nil {
		t.Fatalf("level 0 must stay clean: %v", err)
	}
	f.Clear(1)
	if err := f.Probe(ctx, 1); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
	f.PanicLevel(2, "poison scale")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PanicLevel probe should panic")
			}
		}()
		f.Probe(ctx, 2)
	}()
	f.Reset()
	if err := f.Probe(ctx, 2); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

func TestProbeStallRespectsContext(t *testing.T) {
	f := New()
	f.StallLevel(0, time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := f.Probe(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored the context: took %v", elapsed)
	}
}

// TestHardStallIgnoresContext pins the contract split between the two stall
// variants: a hard stall sleeps out its full duration even under an already-
// expired context (it is the watchdog's test vector and must not be
// cancellable), while the soft stall above stays promptly cancellable — the
// regression this test exists to catch is someone "fixing" HardStallLevel
// to observe ctx, which would silently turn every watchdog test into a
// no-op.
func TestHardStallIgnoresContext(t *testing.T) {
	f := New()
	const d = 80 * time.Millisecond
	f.HardStallLevel(0, d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the probe even starts
	start := time.Now()
	if err := f.Probe(ctx, 0); err != nil {
		t.Fatalf("hard stall returned %v, want nil (it must not observe ctx)", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("hard stall returned after %v, want the full %v wall-clock sleep", elapsed, d)
	}

	// The soft variant on the same fault set still cancels promptly.
	f.Reset()
	f.StallLevel(0, time.Minute)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if err := f.Probe(ctx2, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("soft stall: got %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("soft stall ignored the context: took %v", elapsed)
	}
}

func TestTruncatePixKeepsHeaderLiesAboutBuffer(t *testing.T) {
	g := imgproc.NewGray(8, 8)
	p := TruncatePix(g, 10)
	if p.W != 8 || p.H != 8 {
		t.Fatalf("poison frame header %dx%d, want 8x8", p.W, p.H)
	}
	if len(p.Pix) != 10 {
		t.Fatalf("poison frame buffer %d bytes, want 10", len(p.Pix))
	}
	if q := TruncatePix(g, 1000); len(q.Pix) != len(g.Pix) {
		t.Fatalf("over-long truncation should clamp to %d, got %d", len(g.Pix), len(q.Pix))
	}
	// The original is untouched.
	if len(g.Pix) != 64 {
		t.Fatalf("original mutated: %d bytes", len(g.Pix))
	}
}

func TestTruncateAndFlipByte(t *testing.T) {
	data := []byte("P5\n4 4\n255\n0123456789abcdef")
	cut := Truncate(data, 8)
	if !bytes.Equal(cut, data[:8]) {
		t.Fatalf("Truncate = %q", cut)
	}
	cut[0] = 'X' // must not alias the original
	if data[0] != 'P' {
		t.Fatal("Truncate aliases its input")
	}
	flipped := FlipByte(data, 0, 0xFF)
	if flipped[0] == data[0] || !bytes.Equal(flipped[1:], data[1:]) {
		t.Fatalf("FlipByte changed the wrong bytes")
	}
	if out := FlipByte(data, -1, 0xFF); !bytes.Equal(out, data) {
		t.Fatal("out-of-range flip should be a plain copy")
	}
}
