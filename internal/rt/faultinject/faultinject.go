// Package faultinject synthesizes the failure modes the streaming runtime
// (internal/rt) must survive, so its degradation and recovery behaviour can
// be tested deterministically instead of waiting for real hardware to
// misbehave:
//
//   - per-level stalls and failures, injected into the detection hot path
//     through core.Config.LevelProbe — an artificially slow or broken
//     pyramid scale, the fault the degradation ladder sheds around. Stalls
//     come in two grades: StallLevel observes the frame context (a slow but
//     well-behaved scale, cancelled at the deadline) and HardStallLevel
//     ignores it (a hang in non-cancellable code, detectable only by the
//     rt liveness watchdog);
//   - poison frames, whose pixel buffer is shorter than the header claims
//     and which therefore panic inside the feature extractor — the fault
//     per-goroutine panic recovery converts into a per-frame error;
//   - corrupt encoded images (truncated or bit-flipped PGM/PPM bytes) for
//     exercising the codec hardening in internal/imgproc.
//
// All injectors are safe for concurrent use: tests flip faults on and off
// while the pipeline is running.
package faultinject

import (
	"context"
	"sync"
	"time"

	"repro/internal/imgproc"
)

// levelFault is the injected behaviour of one pyramid level.
type levelFault struct {
	stall     time.Duration
	hardStall time.Duration
	err       error
	panicVal  any
}

// Faults injects per-level faults into a detector via its Probe method.
// The zero value is ready to use and injects nothing.
type Faults struct {
	mu     sync.Mutex
	levels map[int]levelFault
}

// New returns an empty fault set.
func New() *Faults { return &Faults{} }

func (f *Faults) set(level int, mod func(*levelFault)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.levels == nil {
		f.levels = make(map[int]levelFault)
	}
	lf := f.levels[level]
	mod(&lf)
	f.levels[level] = lf
}

// StallLevel makes every scan of the given pyramid level sleep for d — an
// artificially slow scale. The sleep observes the frame's context, so a
// deadline cuts it short (the frame then reports the context error).
func (f *Faults) StallLevel(level int, d time.Duration) {
	f.set(level, func(lf *levelFault) { lf.stall = d })
}

// HardStallLevel makes every scan of the given pyramid level sleep for d
// while IGNORING the frame's context — modelling a hang in non-cancellable
// code (a blocking syscall, a driver call, a tight loop that never checks
// ctx). A deadline cannot cut it short; only the rt liveness watchdog can
// detect it, abandon the stuck goroutine, and wedge the pipeline. This is
// the watchdog's canonical test vector; keep d bounded in tests so the
// abandoned goroutine eventually unsticks and exits.
func (f *Faults) HardStallLevel(level int, d time.Duration) {
	f.set(level, func(lf *levelFault) { lf.hardStall = d })
}

// FailLevel makes every scan of the given pyramid level abort the frame
// with err.
func (f *Faults) FailLevel(level int, err error) {
	f.set(level, func(lf *levelFault) { lf.err = err })
}

// PanicLevel makes every scan of the given pyramid level panic with v — a
// poison scale, exercising the runtime's per-goroutine panic recovery.
func (f *Faults) PanicLevel(level int, v any) {
	f.set(level, func(lf *levelFault) { lf.panicVal = v })
}

// Clear removes all faults of one level.
func (f *Faults) Clear(level int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.levels, level)
}

// Reset removes every fault.
func (f *Faults) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.levels = nil
}

// Probe is a core.Config.LevelProbe: install it on the detector handed to
// rt.New and the faults configured here fire for every frame scanned at a
// rung that still covers the faulted level. Levels shed by the degradation
// ladder are not probed — which is exactly how the runtime steps around a
// faulted scale.
func (f *Faults) Probe(ctx context.Context, level int) error {
	f.mu.Lock()
	lf := f.levels[level]
	f.mu.Unlock()
	if lf.panicVal != nil {
		panic(lf.panicVal)
	}
	if lf.err != nil {
		return lf.err
	}
	if lf.hardStall > 0 {
		// Deliberately ctx-blind: this is the hang the watchdog exists for.
		time.Sleep(lf.hardStall)
	}
	if lf.stall > 0 {
		t := time.NewTimer(lf.stall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// TruncatePix returns a poison frame: a copy of g whose pixel buffer is cut
// to n bytes while the header still claims the full W x H size. Feature
// extraction indexes past the buffer and panics — the canonical corrupt
// frame the runtime must survive. n is clamped to [0, len(g.Pix)].
func TruncatePix(g *imgproc.Gray, n int) *imgproc.Gray {
	if n < 0 {
		n = 0
	}
	if n > len(g.Pix) {
		n = len(g.Pix)
	}
	pix := make([]uint8, n)
	copy(pix, g.Pix[:n])
	return &imgproc.Gray{W: g.W, H: g.H, Pix: pix}
}

// Truncate returns the first n bytes of an encoded image, simulating a
// stream cut mid-frame. n is clamped to [0, len(data)].
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}

// FlipByte returns a copy of data with the byte at index i XOR'd by mask,
// simulating single-byte corruption in transit. Out-of-range indices return
// an unmodified copy.
func FlipByte(data []byte, i int, mask byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if i >= 0 && i < len(out) {
		out[i] ^= mask
	}
	return out
}
