package rt

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/imgproc"
	"repro/internal/rt/faultinject"
	"repro/internal/svm"
)

// testDetector builds a detector with a synthetic all-zero model: every
// window scores exactly the bias (0), below the default threshold, so scans
// are fast and produce no detections — the runtime behaviour under test is
// scheduling, not accuracy. The 128x256 frame yields a 3-level feature
// pyramid at step 1.3 (absolute levels 0, 1, 2).
func testDetector(t *testing.T, faults *faultinject.Faults) (*core.Detector, *imgproc.Gray) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Mode = core.FeaturePyramid
	cfg.ScaleStep = 1.3
	cfg.Workers = 1
	if faults != nil {
		cfg.LevelProbe = faults.Probe
	}
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
	det, err := core.NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, imgproc.NewGray(128, 256)
}

// step submits one frame and waits for its result — lock-step feeding, so
// the queue never drops and the controller sees a deterministic sequence.
func step(t *testing.T, p *Pipeline, frame *imgproc.Gray) FrameResult {
	t.Helper()
	if !p.Submit(frame) {
		t.Fatal("Submit rejected a frame on an idle pipeline")
	}
	select {
	case r, ok := <-p.Results():
		if !ok {
			t.Fatal("Results closed mid-stream")
		}
		return r
	case <-time.After(30 * time.Second):
		t.Fatal("no result within 30s — pipeline deadlocked")
		panic("unreachable")
	}
}

// TestShedUnderStallAndRecover is the acceptance scenario of the streaming
// runtime: under an injected stall on the finest pyramid level the pipeline
// keeps emitting frames by shedding that level, reports the misses in
// Stats, and restores full scale coverage after the fault clears.
func TestShedUnderStallAndRecover(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	// The deadline is generous relative to an unstalled scan (~ms): the
	// recovery streak needs frames comfortably inside RecoverMargin even
	// when the race detector and parallel package binaries slow things
	// down several-fold, or the streak resets and the rung never recovers.
	p, err := New(det, Config{
		Deadline:     time.Second,
		MaxShed:      2,
		DegradeAfter: 2,
		RecoverAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	wantLadder := []Rung{{SkipFinest: 0, Workers: 1}, {SkipFinest: 1, Workers: 1}, {SkipFinest: 2, Workers: 1}}
	if got := p.Ladder(); len(got) != len(wantLadder) || got[0] != wantLadder[0] ||
		got[1] != wantLadder[1] || got[2] != wantLadder[2] {
		t.Fatalf("ladder %+v, want %+v", got, wantLadder)
	}

	// The finest level stalls far past the deadline.
	faults.StallLevel(0, 4*time.Second)

	// Frames 1-2: scanned at full quality, cut off at the deadline.
	for i := 0; i < 2; i++ {
		r := step(t, p, frame)
		if r.Rung != 0 {
			t.Fatalf("frame %d: rung %d, want 0", i, r.Rung)
		}
		if !r.Missed || !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("frame %d under stall: missed=%v err=%v, want deadline miss", i, r.Missed, r.Err)
		}
	}

	// Frames 3-4: the controller shed the stalled level; the stream is back
	// inside the budget while the fault is still active.
	for i := 2; i < 4; i++ {
		r := step(t, p, frame)
		if r.Rung != 1 {
			t.Fatalf("frame %d: rung %d, want 1 (finest level shed)", i, r.Rung)
		}
		if r.Missed || r.Err != nil {
			t.Fatalf("frame %d at rung 1: missed=%v err=%v, want clean in-budget frame", i, r.Missed, r.Err)
		}
		if r.Latency > p.Deadline() {
			t.Fatalf("frame %d latency %v exceeds deadline %v", i, r.Latency, p.Deadline())
		}
	}

	// Fault clears; the third comfortable frame completes the recovery
	// streak and the controller restores the shed level.
	faults.Reset()
	if r := step(t, p, frame); r.Rung != 1 || r.Err != nil {
		t.Fatalf("frame 4: rung %d err %v, want final rung-1 frame", r.Rung, r.Err)
	}
	for i := 5; i < 7; i++ {
		r := step(t, p, frame)
		if r.Rung != 0 {
			t.Fatalf("frame %d: rung %d, want 0 (full coverage restored)", i, r.Rung)
		}
		if r.Missed || r.Err != nil {
			t.Fatalf("frame %d after recovery: missed=%v err=%v", i, r.Missed, r.Err)
		}
	}

	s := p.Stats()
	if s.FramesIn != 7 || s.FramesOut != 7 || s.FramesDropped != 0 {
		t.Errorf("frames in/out/dropped = %d/%d/%d, want 7/7/0", s.FramesIn, s.FramesOut, s.FramesDropped)
	}
	if s.DeadlineMisses != 2 {
		t.Errorf("deadline misses %d, want 2", s.DeadlineMisses)
	}
	if s.DegradeEvents != 1 || s.RecoverEvents != 1 {
		t.Errorf("degrade/recover events %d/%d, want 1/1", s.DegradeEvents, s.RecoverEvents)
	}
	if s.Rung != 0 || s.SkipFinest != 0 {
		t.Errorf("final rung %d (skip %d), want full quality", s.Rung, s.SkipFinest)
	}
	if s.Panics != 0 {
		t.Errorf("panics %d, want 0", s.Panics)
	}
}

// TestPoisonFrameDoesNotKillStream: a frame whose pixel buffer is shorter
// than its header claims panics inside feature extraction; the runtime
// converts it to a per-frame error and keeps scanning.
func TestPoisonFrameDoesNotKillStream(t *testing.T) {
	det, frame := testDetector(t, nil)
	p, err := New(det, Config{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("clean frame: %v", r.Err)
	}
	poison := faultinject.TruncatePix(frame, len(frame.Pix)/2)
	r := step(t, p, poison)
	if r.Err == nil {
		t.Fatal("poison frame produced no error")
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("poison frame error %v, want *PanicError", r.Err)
	}
	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("stream did not continue after poison frame: %v", r.Err)
	}
	s := p.Stats()
	if s.Panics != 1 || s.Errors != 1 {
		t.Errorf("panics/errors = %d/%d, want 1/1", s.Panics, s.Errors)
	}
	if s.FramesOut != 3 {
		t.Errorf("frames out %d, want 3", s.FramesOut)
	}
	if s.Rung != 0 {
		t.Errorf("rung %d: poison frames must not trigger degradation", s.Rung)
	}
}

// TestPoisonScalePanicIsRecovered: a panic injected at a specific pyramid
// level (rather than a corrupt buffer) is also confined to its frame.
func TestPoisonScalePanicIsRecovered(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	faults.PanicLevel(1, "injected poison scale")
	r := step(t, p, frame)
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("got %v, want *PanicError", r.Err)
	}
	faults.Reset()
	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("stream dead after poison scale: %v", r.Err)
	}
}

// TestDropOldestUnderBackpressure: when frames arrive faster than the
// scanner drains them, the bounded queue evicts the oldest frames and the
// newest survive.
func TestDropOldestUnderBackpressure(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 10 * time.Second, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Occupy the scanner: the first frame stalls well past the burst below.
	faults.StallLevel(0, 500*time.Millisecond)
	if !p.Submit(frame) {
		t.Fatal("first submit rejected")
	}
	time.Sleep(100 * time.Millisecond) // scanner is now inside the stall
	for i := 0; i < 4; i++ {
		if !p.Submit(frame) {
			t.Fatalf("burst submit %d rejected (drop-oldest should make room)", i)
		}
	}
	faults.Reset()
	p.Flush()
	s := p.Stats()
	if s.FramesIn != 5 {
		t.Fatalf("frames in %d, want 5", s.FramesIn)
	}
	if s.FramesOut+s.FramesDropped != s.FramesIn {
		t.Fatalf("out %d + dropped %d != in %d", s.FramesOut, s.FramesDropped, s.FramesIn)
	}
	if s.FramesDropped != 2 {
		t.Errorf("dropped %d, want 2 (queue of 2 under a 4-frame burst)", s.FramesDropped)
	}
	// The newest frame always survives a drop-oldest queue.
	var last FrameResult
	for i := uint64(0); i < s.FramesOut; i++ {
		last = <-p.Results()
	}
	if want := uint64(4); last.Seq != want {
		t.Errorf("last scanned frame seq %d, want %d", last.Seq, want)
	}
}

func TestCloseIsIdempotentAndStopsIntake(t *testing.T) {
	det, frame := testDetector(t, nil)
	p, err := New(det, Config{FPS: 60})
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Second / 60; p.Deadline() < want-time.Millisecond || p.Deadline() > want+time.Millisecond {
		t.Errorf("deadline %v, want ~%v from 60 fps", p.Deadline(), want)
	}
	p.Close()
	p.Close()
	if p.Submit(frame) {
		t.Error("Submit accepted a frame after Close")
	}
	if _, ok := <-p.Results(); ok {
		t.Error("Results still open after Close")
	}
}

func TestCloseCancelsInflightStall(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	faults.StallLevel(0, 10*time.Minute)
	p.Submit(frame)
	time.Sleep(50 * time.Millisecond) // let the scanner enter the stall
	start := time.Now()
	p.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v: in-flight frame was not cancelled", elapsed)
	}
}

// TestLifecycleAfterClose is the regression suite for the supervisor
// restart path (internal/serve): double Close from concurrent goroutines,
// Submit after Close, and Flush after Close must all be safe no-ops, and
// the frame accounting must still balance afterwards.
func TestLifecycleAfterClose(t *testing.T) {
	det, frame := testDetector(t, nil)
	p, err := New(det, Config{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if p.Closed() {
		t.Fatal("pipeline reports closed before Close")
	}
	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("clean frame: %v", r.Err)
	}

	// Concurrent double Close: both calls must return, exactly once each.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Close calls did not return")
	}

	if !p.Closed() {
		t.Error("Closed() false after Close")
	}
	if p.Submit(frame) {
		t.Error("Submit accepted a frame after Close")
	}
	flushed := make(chan struct{})
	go func() { p.Flush(); close(flushed) }()
	select {
	case <-flushed:
	case <-time.After(5 * time.Second):
		t.Fatal("Flush hung on a closed pipeline")
	}
	s := p.Stats()
	if s.FramesIn != s.FramesOut+s.FramesDropped {
		t.Errorf("after Close: in %d != out %d + dropped %d",
			s.FramesIn, s.FramesOut, s.FramesDropped)
	}
}

// TestCloseCountsQueuedFramesDropped: frames sitting in the queue when Close
// fires are accounted as dropped, not leaked from the stats.
func TestCloseCountsQueuedFramesDropped(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 10 * time.Second, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Park the scanner inside a stall, then queue frames behind it.
	faults.StallLevel(0, 10*time.Second)
	if !p.Submit(frame) {
		t.Fatal("first submit rejected")
	}
	time.Sleep(50 * time.Millisecond) // scanner enters the stall
	for i := 0; i < 3; i++ {
		if !p.Submit(frame) {
			t.Fatalf("queued submit %d rejected", i)
		}
	}
	p.Close()
	s := p.Stats()
	if s.FramesIn != 4 {
		t.Fatalf("frames in %d, want 4", s.FramesIn)
	}
	if s.FramesIn != s.FramesOut+s.FramesDropped {
		t.Errorf("in %d != out %d + dropped %d after Close drained the queue",
			s.FramesIn, s.FramesOut, s.FramesDropped)
	}
	if s.FramesDropped < 2 {
		t.Errorf("dropped %d, want >= 2 (queued frames behind the stall)", s.FramesDropped)
	}
}

// TestConcurrentSubmitClose races many Submit calls against Close under the
// race detector: no panic, no lost frames in the accounting.
func TestConcurrentSubmitClose(t *testing.T) {
	det, frame := testDetector(t, nil)
	p, err := New(det, Config{Deadline: 10 * time.Second, Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.Submit(frame)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	p.Close()
	wg.Wait()
	for range p.Results() {
		// drain whatever was emitted before Close landed
	}
	s := p.Stats()
	if s.FramesIn != s.FramesOut+s.FramesDropped {
		t.Errorf("in %d != out %d + dropped %d under Submit/Close race",
			s.FramesIn, s.FramesOut, s.FramesDropped)
	}
}

func TestNewRejectsMissingBudget(t *testing.T) {
	det, _ := testDetector(t, nil)
	if _, err := New(det, Config{}); err == nil {
		t.Fatal("config without FPS or Deadline must be rejected")
	}
}
