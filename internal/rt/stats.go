package rt

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of the pipeline counters.
type Stats struct {
	// FramesIn counts frames accepted into the queue (including frames
	// later evicted by drop-oldest). FramesOut counts scanned frames whose
	// result was emitted; FramesDropped counts evictions. When the
	// pipeline is idle, FramesIn == FramesOut + FramesDropped.
	FramesIn, FramesOut, FramesDropped uint64
	// DeadlineMisses counts frames that exceeded the per-frame budget.
	DeadlineMisses uint64
	// Errors counts frames that failed for any reason (deadline cutoff,
	// detection error, recovered panic); Panics counts the recovered
	// panics among them.
	Errors, Panics uint64
	// DegradeEvents and RecoverEvents count controller rung transitions.
	DegradeEvents, RecoverEvents uint64
	// Rung is the current degradation rung (0 = full quality) of Rungs
	// total; SkipFinest and Workers describe its operating point.
	Rung, Rungs         int
	SkipFinest, Workers int
	// Deadline is the enforced per-frame budget.
	Deadline time.Duration
	// Queue wait and detection latency, cumulative mean and worst case.
	AvgWait, MaxWait       time.Duration
	AvgLatency, MaxLatency time.Duration
}

// String renders the snapshot as a one-line operator summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"in %d out %d dropped %d | misses %d errors %d (panics %d) | rung %d/%d (skip %d, workers %d) | lat avg %s max %s / budget %s",
		s.FramesIn, s.FramesOut, s.FramesDropped,
		s.DeadlineMisses, s.Errors, s.Panics,
		s.Rung, s.Rungs-1, s.SkipFinest, s.Workers,
		s.AvgLatency.Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond),
		s.Deadline.Round(time.Microsecond))
}

// stats accumulates pipeline counters behind one mutex; the scan loop is a
// single goroutine, so contention is only with snapshot readers.
type stats struct {
	mu sync.Mutex

	in, out, dropped uint64
	misses           uint64
	errs, panics     uint64

	waitSum, latSum time.Duration
	maxWait, maxLat time.Duration
}

func newStats() *stats { return &stats{} }

func (s *stats) frameIn() {
	s.mu.Lock()
	s.in++
	s.mu.Unlock()
}

func (s *stats) frameDropped() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// observe folds one frame outcome into the counters.
func (s *stats) observe(r FrameResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out++
	if r.Missed {
		s.misses++
	}
	if r.Err != nil {
		s.errs++
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			s.panics++
		}
	}
	s.waitSum += r.Wait
	s.latSum += r.Latency
	if r.Wait > s.maxWait {
		s.maxWait = r.Wait
	}
	if r.Latency > s.maxLat {
		s.maxLat = r.Latency
	}
}

// snapshot assembles the exported Stats, pulling the controller state and
// ladder geometry from the pipeline.
func (s *stats) snapshot(p *Pipeline) Stats {
	cur, deg, rec := p.ctrl.state()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		FramesIn:       s.in,
		FramesOut:      s.out,
		FramesDropped:  s.dropped,
		DeadlineMisses: s.misses,
		Errors:         s.errs,
		Panics:         s.panics,
		DegradeEvents:  deg,
		RecoverEvents:  rec,
		Rung:           cur,
		Rungs:          len(p.rungs),
		SkipFinest:     p.rungs[cur].SkipFinest,
		Workers:        p.rungs[cur].Workers,
		Deadline:       p.deadline,
		MaxWait:        s.maxWait,
		MaxLatency:     s.maxLat,
	}
	if s.out > 0 {
		out.AvgWait = s.waitSum / time.Duration(s.out)
		out.AvgLatency = s.latSum / time.Duration(s.out)
	}
	return out
}
