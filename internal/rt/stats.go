package rt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/roi"
)

// Stats is a point-in-time snapshot of the pipeline counters.
type Stats struct {
	// FramesIn counts frames accepted into the queue (including frames
	// later evicted by drop-oldest). FramesOut counts scanned frames whose
	// result was emitted; FramesDropped counts evictions. InFlight counts
	// accepted frames not yet scanned or dropped (queued or being scanned).
	//
	// FramesIn == FramesOut + FramesDropped + InFlight holds at EVERY
	// observable instant, not just at idle: the counter updates and the
	// queue operations they describe commit atomically under one lock
	// (stats.tryEnqueue / stats.tryEvict / stats.observe), so a snapshot
	// can never catch a frame half-accounted. When the pipeline is idle or
	// flushed, InFlight is 0 and the three-way identity of earlier releases
	// holds unchanged.
	FramesIn, FramesOut, FramesDropped uint64
	InFlight                           uint64
	// DeadlineMisses counts frames that exceeded the per-frame budget.
	DeadlineMisses uint64
	// Errors counts frames that failed for any reason (deadline cutoff,
	// detection error, recovered panic, watchdog abandonment); Panics
	// counts the recovered panics among them and FramesHung the frames the
	// liveness watchdog abandoned. Each hung frame counts in FramesOut too
	// (its ErrHung result was emitted), so conservation holds through a
	// wedge; it also left one abandoned goroutine behind, making
	// FramesHung the accounted-leak ledger for goroutine-settling checks.
	Errors, Panics uint64
	FramesHung     uint64
	// Wedged reports the terminal hung state: the watchdog abandoned a
	// scan and the pipeline refuses further intake. A wedged pipeline can
	// only be Closed and replaced.
	Wedged bool
	// DegradeEvents and RecoverEvents count controller rung transitions.
	DegradeEvents, RecoverEvents uint64
	// Rung is the current degradation rung (0 = full quality) of Rungs
	// total; SkipFinest, Workers, and ROIRung describe its operating point.
	Rung, Rungs         int
	SkipFinest, Workers int
	ROIRung             bool
	// ROIScans counts frames scanned under a track-guided region
	// restriction, ROIFullScans the scheduler's dense cadence frames (both
	// zero without Config.ROI — dense-rung frames are neither). ROIRegions
	// accumulates the region count of every restricted frame, so
	// ROIRegions/ROIScans is the mean regions per restricted scan.
	ROIScans, ROIFullScans, ROIRegions uint64
	// Deadline is the enforced per-frame budget.
	Deadline time.Duration
	// Queue wait and detection latency, cumulative mean and worst case.
	AvgWait, MaxWait       time.Duration
	AvgLatency, MaxLatency time.Duration
}

// String renders the snapshot as a one-line operator summary.
func (s Stats) String() string {
	wedged := ""
	if s.Wedged {
		wedged = " WEDGED"
	}
	roiRung := ""
	if s.ROIRung {
		roiRung = ", roi"
	}
	roiStats := ""
	if s.ROIScans+s.ROIFullScans > 0 {
		roiStats = fmt.Sprintf(" | roi %d restricted / %d full", s.ROIScans, s.ROIFullScans)
	}
	return fmt.Sprintf(
		"in %d out %d dropped %d inflight %d | misses %d errors %d (panics %d, hung %d)%s | rung %d/%d (skip %d, workers %d%s)%s | lat avg %s max %s / budget %s",
		s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight,
		s.DeadlineMisses, s.Errors, s.Panics, s.FramesHung, wedged,
		s.Rung, s.Rungs-1, s.SkipFinest, s.Workers, roiRung, roiStats,
		s.AvgLatency.Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond),
		s.Deadline.Round(time.Microsecond))
}

// stats accumulates pipeline counters behind one mutex. The queue channel
// operations that move frames between the accounted states run inside the
// same critical section as the counters they update: a non-blocking send
// plus in++ (tryEnqueue), a non-blocking receive plus dropped++ (tryEvict).
// Without that pairing a snapshot could observe the channel state and the
// counters mid-transition — the pre-PR-6 Submit incremented FramesIn after
// the send, so a fast scan loop could emit the result (out++) before the
// intake was counted and a concurrent Stats() read saw
// FramesOut + FramesDropped > FramesIn.
type stats struct {
	mu sync.Mutex

	in, out, dropped uint64
	inflight         uint64
	misses           uint64
	errs, panics     uint64
	hung             uint64

	roiScans, roiFull, roiRegions uint64

	waitSum, latSum time.Duration
	maxWait, maxLat time.Duration
}

func newStats() *stats { return &stats{} }

// tryEnqueue atomically (w.r.t. snapshots) offers the frame to the queue
// and, on success, counts it as accepted and in flight.
func (s *stats) tryEnqueue(ch chan frameItem, it frameItem) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- it:
		s.in++
		s.inflight++
		return true
	default:
		return false
	}
}

// tryEvict atomically removes one queued frame and counts it as dropped.
// It reports false when the queue was empty (nothing changed) — benign when
// racing the scan loop's own dequeue.
func (s *stats) tryEvict(ch chan frameItem) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ch:
		s.dropped++
		s.inflight--
		return true
	default:
		return false
	}
}

// dropDequeued counts a frame the scan loop already removed from the queue
// as dropped (it observed Close between the dequeue and the scan). The
// frame stays in the in-flight count from dequeue until here, so the
// accounting identity never wavers.
func (s *stats) dropDequeued() {
	s.mu.Lock()
	s.dropped++
	s.inflight--
	s.mu.Unlock()
}

// observe folds one frame outcome into the counters, retiring it from the
// in-flight count in the same critical section.
func (s *stats) observe(r FrameResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out++
	s.inflight--
	if r.Missed {
		s.misses++
	}
	if r.Err != nil {
		s.errs++
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			s.panics++
		}
	}
	s.waitSum += r.Wait
	s.latSum += r.Latency
	if r.Wait > s.maxWait {
		s.maxWait = r.Wait
	}
	if r.Latency > s.maxLat {
		s.maxLat = r.Latency
	}
}

// observeHung folds a watchdog-abandoned frame into the counters in one
// critical section: it is emitted (out), retired from in-flight, and
// tallied as a missed, erroring, hung frame — so the conservation identity
// holds at every instant through a wedge, and FramesHung tracks exactly
// the abandoned goroutines a settling check must tolerate.
func (s *stats) observeHung(r FrameResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out++
	s.inflight--
	s.misses++
	s.errs++
	s.hung++
	s.waitSum += r.Wait
	s.latSum += r.Latency
	if r.Wait > s.maxWait {
		s.maxWait = r.Wait
	}
	if r.Latency > s.maxLat {
		s.maxLat = r.Latency
	}
}

// observeROIPlan counts one scheduler decision: a restricted frame with its
// region count, or a dense cadence frame. Runs on the scanner goroutine
// before the scan, so a snapshot taken mid-frame already sees the plan.
func (s *stats) observeROIPlan(p roi.Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.Full {
		s.roiFull++
	} else {
		s.roiScans++
		s.roiRegions += uint64(len(p.Regions))
	}
}

// snapshot assembles the exported Stats, pulling the controller state and
// ladder geometry from the pipeline.
func (s *stats) snapshot(p *Pipeline) Stats {
	cur, deg, rec := p.ctrl.state()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		FramesIn:       s.in,
		FramesOut:      s.out,
		FramesDropped:  s.dropped,
		InFlight:       s.inflight,
		DeadlineMisses: s.misses,
		Errors:         s.errs,
		Panics:         s.panics,
		FramesHung:     s.hung,
		Wedged:         p.wedged.Load(),
		DegradeEvents:  deg,
		RecoverEvents:  rec,
		Rung:           cur,
		Rungs:          len(p.rungs),
		SkipFinest:     p.rungs[cur].SkipFinest,
		Workers:        p.rungs[cur].Workers,
		ROIRung:        p.rungs[cur].ROI,
		ROIScans:       s.roiScans,
		ROIFullScans:   s.roiFull,
		ROIRegions:     s.roiRegions,
		Deadline:       p.deadline,
		MaxWait:        s.maxWait,
		MaxLatency:     s.maxLat,
	}
	if s.out > 0 {
		out.AvgWait = s.waitSum / time.Duration(s.out)
		out.AvgLatency = s.latSum / time.Duration(s.out)
	}
	return out
}
