// Package rt is the deadline-aware streaming runtime around core.Detector.
//
// The paper's premise is a hard real-time budget: at 60 fps HDTV the
// detector gets 16.6 ms per frame (Section 1), and internal/das computes
// exactly that budget (das.BudgetAt, das.MaxDetectorLatency). This package
// enforces it. A Pipeline wraps a detector for a continuous frame feed and
// guarantees forward progress under overload, poison input, and injected
// faults:
//
//   - every frame runs under a context deadline derived from the frame
//     budget, so a stalled scale cannot block the stream;
//   - a degradation controller sheds work in a principled order when the
//     deadline is missed repeatedly — finest pyramid levels first (the
//     paper's memory-limited hardware runs the same trade at 2 scales),
//     then scan workers — and restores it with hysteresis once latency
//     recovers;
//   - the input queue is bounded and drops the oldest frame under
//     backpressure (a stale frame is worthless to a driver-assistance
//     system);
//   - each frame is scanned under per-goroutine panic recovery, so a
//     poison frame yields a FrameResult with Err set instead of killing
//     the stream;
//   - a liveness watchdog (Config.HangTimeout) bounds how long a scan may
//     run in non-cancellable code: a frame whose scan ignores its context
//     past the hang timeout is declared hung (FrameResult{Err: ErrHung}),
//     its goroutine is abandoned under leak accounting, and the pipeline
//     transitions to the terminal Wedged state — a stuck goroutine cannot
//     be killed, only detached, so the only safe recovery is a fresh
//     pipeline (internal/serve's supervisor treats Wedged like a crash).
//
// Stats() exposes a snapshot of the runtime counters for dashboards and
// the cmd/pddetect -stream mode; internal/rt/faultinject drives the
// deterministic degradation tests.
package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/track"
)

// Config tunes the streaming runtime. The zero value is not usable: either
// FPS or Deadline must be set. All other fields have working defaults.
type Config struct {
	// FPS is the target frame rate; the per-frame deadline defaults to the
	// das frame budget at this rate (das.BudgetAt: 1/FPS seconds).
	FPS float64
	// Deadline overrides FPS with an explicit per-frame latency budget.
	Deadline time.Duration
	// Queue bounds the input queue. When full, the oldest queued frame is
	// dropped to make room (drop-oldest). Default 4.
	Queue int
	// MaxShed caps how many finest pyramid levels the controller may shed
	// below the detector's own configuration. Default 2 (the paper's
	// hardware operating point keeps 2 of the finest scales' worth of
	// memory; shedding the two finest levels of a 1.1-step pyramid is the
	// software analogue).
	MaxShed int
	// MinWorkers floors the worker-reduction rungs of the ladder.
	// Default 1.
	MinWorkers int
	// DegradeAfter is how many consecutive deadline misses trigger a step
	// down the ladder. Default 3.
	DegradeAfter int
	// RecoverAfter is how many consecutive comfortable frames (latency at
	// most RecoverMargin of the deadline) trigger a step back up.
	// Default 8.
	RecoverAfter int
	// RecoverMargin is the fraction of the deadline a frame must finish
	// within to count toward recovery; the gap between it and 1.0 is the
	// hysteresis band that prevents oscillation. Default 0.7.
	RecoverMargin float64
	// HangTimeout arms the liveness watchdog: a frame whose scan runs this
	// long past dispatch without returning is declared hung. Well-behaved
	// slow code is cancelled by the per-frame context at the deadline and
	// never comes near this bound — only a scan stuck in non-cancellable
	// code (ignoring its context) can trip it. On expiry the frame is
	// emitted as FrameResult{Err: ErrHung}, the stuck goroutine is
	// abandoned (leak-accounted in Stats and the obs registry), and the
	// pipeline wedges terminally. 0 defaults to 4x the frame deadline;
	// negative disables the watchdog (restoring the old block-forever
	// semantics, where only Close's context cancellation can unwind a
	// cooperative stall and a true hang blocks the pipeline for good).
	HangTimeout time.Duration
	// ROI, if non-nil, enables the temporal scan scheduler (internal/roi)
	// and adds an ROI rung to the degradation ladder: under deadline
	// pressure the pipeline first switches to track-guided region scanning
	// (dense only every ROI.FullEvery-th frame — cheap, and lossless for
	// tracked pedestrians with new entrants bounded by the cadence) before
	// it starts shedding finest pyramid levels; recovery re-engages full
	// dense scanning every frame. The pipeline feeds an internal tracker
	// from every successful frame at every rung, so the track state is warm
	// the moment the ROI rung engages; if ROI scanning re-engages after
	// frames at another rung, the scheduler restarts with a full scan.
	ROI *roi.Config
	// Metrics, if non-nil, receives the pipeline's observability stream:
	// per-stage latency histograms (via a core detect recorder shared by
	// every rung), frame/wait histograms, intake/drop/miss/degrade
	// counters, arena hit/miss counters, and a per-frame trace ring
	// retaining the slowest frames. Recording is allocation-free; nil (the
	// default) disables everything. A *obs.Metrics registry may be shared
	// across pipelines (internal/serve shares one across its workers) —
	// each pipeline gets its own frame-stage recorder lane internally.
	Metrics *obs.Metrics
	// MetricsID labels this pipeline's entries in the trace ring (the
	// FrameTrace.Worker field); internal/serve sets it to the worker index.
	MetricsID int
}

// deadline resolves the per-frame budget.
func (c Config) deadline() (time.Duration, error) {
	if c.Deadline > 0 {
		return c.Deadline, nil
	}
	if c.FPS > 0 {
		b, err := das.BudgetAt(0, c.FPS)
		if err != nil {
			return 0, fmt.Errorf("rt: %w", err)
		}
		return time.Duration(b.FrameTime * float64(time.Second)), nil
	}
	return 0, errors.New("rt: config needs FPS or Deadline")
}

// withDefaults fills the zero-valued tuning knobs.
func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 4
	}
	if c.MaxShed < 0 {
		c.MaxShed = 0
	} else if c.MaxShed == 0 {
		c.MaxShed = 2
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 8
	}
	if c.RecoverMargin <= 0 || c.RecoverMargin >= 1 {
		c.RecoverMargin = 0.7
	}
	return c
}

// Rung is one operating point of the degradation ladder.
type Rung struct {
	// SkipFinest is the number of finest pyramid levels shed at this rung
	// (core.Config.SkipFinest).
	SkipFinest int
	// Workers is the scan worker count at this rung.
	Workers int
	// ROI marks a rung that scans under the temporal ROI scheduler instead
	// of dense every frame. Only present when Config.ROI is set.
	ROI bool
}

// ladder builds the degradation ladder from the detector's own operating
// point: rung 0 is the configured detector; with ROI enabled, rung 1 keeps
// the full pyramid but scans track-guided regions (ROI scanning loses no
// tracked pedestrian and bounds entrant latency by the cadence, so it is
// the cheapest-to-recover shed and comes first); the next MaxShed rungs
// shed one more finest pyramid level each (the biggest win per step — the
// finest level carries the most windows); the remaining rungs halve the
// scan workers down to minWorkers at maximum shed. Every rung below the
// ROI rung keeps ROI scanning: level shedding under pressure composes with
// region restriction. Frame dropping is not a rung: the bounded queue
// drops stale frames at every rung.
func ladder(baseSkip, baseWorkers, maxShed, minWorkers int, roiEnabled bool) []Rung {
	rungs := []Rung{{SkipFinest: baseSkip, Workers: baseWorkers}}
	if roiEnabled {
		rungs = append(rungs, Rung{SkipFinest: baseSkip, Workers: baseWorkers, ROI: true})
	}
	for s := 1; s <= maxShed; s++ {
		rungs = append(rungs, Rung{SkipFinest: baseSkip + s, Workers: baseWorkers, ROI: roiEnabled})
	}
	for w := baseWorkers / 2; w >= minWorkers && w < rungs[len(rungs)-1].Workers; w /= 2 {
		rungs = append(rungs, Rung{SkipFinest: baseSkip + maxShed, Workers: w, ROI: roiEnabled})
	}
	return rungs
}

// PanicError wraps a panic recovered while scanning a frame. The stream
// continues; the poison frame's FrameResult carries this error.
type PanicError struct {
	Value any
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("rt: panic while scanning frame: %v", e.Value)
}

// ErrHung is the per-frame error of a scan abandoned by the liveness
// watchdog: it ran HangTimeout past dispatch without returning, so it is
// stuck in code that ignores its context. The carrying FrameResult is the
// pipeline's last — the pipeline is Wedged after emitting it, and the
// stream needs a fresh pipeline (internal/serve restarts the worker).
var ErrHung = errors.New("rt: frame scan hung; pipeline wedged")

// FrameResult is the outcome of one submitted frame.
type FrameResult struct {
	// Seq is the frame's submission sequence number (0-based).
	Seq uint64
	// Detections is the detector output; nil when Err is set.
	Detections []eval.Detection
	// Err is the per-frame failure, if any: a detection error, the
	// context error of a frame cut off at its deadline, or a *PanicError
	// for a recovered poison frame. The stream continues either way.
	Err error
	// Wait is how long the frame sat in the input queue.
	Wait time.Duration
	// Latency is the detection wall time (excluding Wait).
	Latency time.Duration
	// Missed reports that the frame exceeded its deadline.
	Missed bool
	// Rung is the degradation rung the frame was scanned at.
	Rung int
	// ROI reports that the frame was scanned under a track-guided region
	// restriction (an ROI rung's non-cadence frame). Cadence frames at an
	// ROI rung and every frame at a dense rung report false.
	ROI bool
}

// frameItem is one queued frame.
type frameItem struct {
	seq   uint64
	frame *imgproc.Gray
	at    time.Time
}

// Claim states of the frame in flight (Pipeline.claim).
const (
	claimNone     uint32 = iota // scan in progress, nobody has accounted it
	claimScanner                // scanner finished in time; result is authoritative
	claimWatchdog               // watchdog fired first; frame is hung, scanner abandoned
)

// Pipeline is a running streaming detection runtime. Create it with New,
// feed it with Submit, consume Results, and Close it when done. The
// consumer must drain Results; the pipeline applies backpressure (and
// eventually drops frames) when it does not.
type Pipeline struct {
	cfg         Config
	deadline    time.Duration
	hangTimeout time.Duration // resolved; 0 = watchdog disabled
	rungs       []Rung
	dets        []*core.Detector

	in      chan frameItem
	results chan FrameResult

	// The scan runs on a dedicated scanner goroutine so the run loop can
	// keep a watchdog on it: scanIn hands one frame over, scanOut (buffered
	// 1) returns its result. claim arbitrates the hang race — exactly one
	// of {scanner, watchdog} accounts each frame: the scanner claims on
	// completion before sending the result; the watchdog claims on timeout
	// before wedging. A scanner that loses the claim was abandoned — it
	// discards its late result and exits once scanIn closes.
	scanIn  chan frameItem
	scanOut chan FrameResult
	claim   atomic.Uint32

	// wedged flips once, when the watchdog abandons a scan: the pipeline is
	// terminally broken (its scanner goroutine is stuck), intake is closed,
	// and only teardown remains. wedgeRetire makes the obs wedged-gauge
	// decrement in Close idempotent.
	wedged      atomic.Bool
	wedgeRetire sync.Once

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once

	// closeMu gates intake against Close and the wedge path: Submit holds
	// the read side while it enqueues; Close and wedge take the write side
	// to flip closed. This makes the pair safe to race — once the lock is
	// held, no Submit is mid-enqueue, so the run loop's shutdown drain
	// observes every accepted frame and the
	// FramesIn == FramesOut + FramesDropped invariant survives both Close
	// and a wedge.
	closeMu sync.RWMutex
	closed  bool

	seq   atomic.Uint64
	ctrl  *controller
	stats *stats

	// Temporal ROI state (all nil/zero when Config.ROI is nil). The
	// scheduler, tracker, region set, and track-box scratch are owned by
	// the scanner goroutine — it plans regions, scans, and feeds the
	// tracker strictly in sequence, which is exactly the one-frame-at-a-
	// time contract core.RegionSet demands. roiPrev remembers whether the
	// previous frame was planned at an ROI rung (a re-engage resets the
	// scheduler so the first frame back is a full scan — the track state
	// may be stale). roiEngaged mirrors "this pipeline is at an ROI rung"
	// for the obs gauge, atomically so Close can retire it.
	sched      *roi.Scheduler
	tracker    *track.Tracker
	regions    *core.RegionSet
	trackBoxes []geom.Rect
	roiPrev    bool
	roiEngaged atomic.Bool

	// Observability (all nil/zero when Config.Metrics is nil). rec is this
	// pipeline's frame-stage recorder lane: the scanner goroutine runs one
	// frame at a time, so every rung detector can share it. prevDeg/prevRec
	// are the controller transition counts already flushed into the obs
	// counters; only the scanner goroutine's recordFrame touches them (the
	// wedge path's recordHung deliberately does not).
	metrics          *obs.Metrics
	rec              *obs.DetectRecorder
	arena            *core.Arena
	prevDeg, prevRec uint64
}

// New builds the degradation ladder for the detector and starts the
// pipeline's scan loop. The detector's configuration (mode, scales,
// workers, probes) is rung 0 of the ladder.
func New(det *core.Detector, cfg Config) (*Pipeline, error) {
	deadline, err := cfg.deadline()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	base := det.Config()
	baseWorkers := base.Workers
	if baseWorkers <= 0 {
		baseWorkers = runtime.GOMAXPROCS(0)
	}
	rungs := ladder(base.SkipFinest, baseWorkers, cfg.MaxShed, cfg.MinWorkers, cfg.ROI != nil)
	// All rungs share one frame arena: the scan loop runs one frame at a
	// time, and a rung switch should reuse the already-grown scratch
	// buffers rather than warm up private ones.
	if base.Arena == nil {
		base.Arena = core.NewArena()
	}
	// With ROI enabled, all rungs also share one region set (the mutable
	// restriction the scan loop plans into before each frame) and one
	// tracker feeding the scheduler.
	var sched *roi.Scheduler
	var tracker *track.Tracker
	var regions *core.RegionSet
	if cfg.ROI != nil {
		var err error
		if sched, err = roi.New(*cfg.ROI); err != nil {
			return nil, err
		}
		regions = core.NewRegionSet()
		base.Regions = regions
		tracker = track.New(track.DefaultConfig())
	}
	var rec *obs.DetectRecorder
	if cfg.Metrics != nil {
		rec = obs.NewDetectRecorder(cfg.Metrics)
		base.Metrics = rec
	}
	dets := make([]*core.Detector, len(rungs))
	for i, r := range rungs {
		c := base
		c.SkipFinest = r.SkipFinest
		c.Workers = r.Workers
		d, err := core.NewDetector(det.Model(), c)
		if err != nil {
			return nil, fmt.Errorf("rt: rung %d (%+v): %w", i, r, err)
		}
		dets[i] = d
	}
	hang := cfg.HangTimeout
	switch {
	case hang < 0:
		hang = 0 // watchdog disabled
	case hang == 0:
		hang = 4 * deadline
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	p := &Pipeline{
		cfg:         cfg,
		deadline:    deadline,
		hangTimeout: hang,
		rungs:       rungs,
		dets:        dets,
		in:          make(chan frameItem, cfg.Queue),
		results:     make(chan FrameResult, cfg.Queue+1),
		scanIn:      make(chan frameItem),
		scanOut:     make(chan FrameResult, 1),
		baseCtx:     baseCtx,
		baseCancel:  baseCancel,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		ctrl: newController(len(rungs), cfg.DegradeAfter, cfg.RecoverAfter,
			cfg.RecoverMargin),
		stats:   newStats(),
		metrics: cfg.Metrics,
		rec:     rec,
		arena:   base.Arena,
		sched:   sched,
		tracker: tracker,
		regions: regions,
	}
	go p.scanLoop()
	go p.run()
	return p, nil
}

// Deadline returns the per-frame latency budget the pipeline enforces.
func (p *Pipeline) Deadline() time.Duration { return p.deadline }

// HangTimeout returns the resolved liveness watchdog bound (0 when the
// watchdog is disabled).
func (p *Pipeline) HangTimeout() time.Duration { return p.hangTimeout }

// Wedged reports whether the watchdog has abandoned a hung scan and moved
// the pipeline to its terminal state: Submit refuses intake, Results is (or
// is about to be) closed after the final ErrHung result, and the only
// remaining transition is Close. The stuck scanner goroutine is leak-
// accounted in Stats().FramesHung and, when metrics are wired, the
// obs.AbandonedScanners gauge (decremented if it ever unsticks and exits).
func (p *Pipeline) Wedged() bool { return p.wedged.Load() }

// Ladder returns the degradation ladder, rung 0 first.
func (p *Pipeline) Ladder() []Rung {
	out := make([]Rung, len(p.rungs))
	copy(out, p.rungs)
	return out
}

// Results is the stream of per-frame outcomes, in scan order. It is closed
// by Close.
func (p *Pipeline) Results() <-chan FrameResult { return p.results }

// Submit offers a frame to the pipeline without blocking. When the queue is
// full the oldest queued frame is dropped to make room (a newer frame is
// always worth more to a driver-assistance system than a stale one). It
// returns false if the frame could not be accepted — the pipeline is
// closed or wedged, or the queue stayed full even after the eviction
// attempt.
func (p *Pipeline) Submit(frame *imgproc.Gray) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false
	}
	it := frameItem{seq: p.seq.Add(1) - 1, frame: frame, at: time.Now()}
	if p.stats.tryEnqueue(p.in, it) {
		p.countIn()
		return true
	}
	// Queue full: evict the oldest queued frame, then retry once. The
	// eviction and the retry race the scan loop benignly — at worst the
	// scan loop dequeued a frame in between and no eviction was needed.
	// Both the eviction and the enqueue commit their channel operation and
	// their counter update under the stats lock, so a concurrent Stats()
	// snapshot can never catch the queue and the counters disagreeing.
	if p.stats.tryEvict(p.in) {
		p.countDropped()
	}
	if p.stats.tryEnqueue(p.in, it) {
		p.countIn()
		return true
	}
	return false
}

// countIn / countDropped mirror intake accounting into the optional obs
// registry (the authoritative counters live in stats).
func (p *Pipeline) countIn() {
	if p.metrics != nil {
		p.metrics.FramesIn.Inc()
	}
}

func (p *Pipeline) countDropped() {
	if p.metrics != nil {
		p.metrics.FramesDropped.Inc()
	}
}

// Flush blocks until every accepted frame has been scanned or dropped. It
// does not stop the pipeline; use it before reading a final Stats snapshot
// or before Close when every submitted frame matters. On a closed pipeline
// it is a no-op that returns immediately.
func (p *Pipeline) Flush() {
	for {
		select {
		case <-p.done:
			return
		default:
		}
		if p.stats.snapshot(p).InFlight == 0 {
			return
		}
		select {
		case <-p.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops the pipeline: in-flight work is cancelled, queued frames are
// discarded (counted as dropped), and Results is closed. It is idempotent —
// every call blocks until shutdown is complete — and safe to call
// concurrently with Submit, Flush, and other Close calls; the supervisor
// restart path in internal/serve relies on all three properties.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.closeMu.Lock()
		p.closed = true
		p.closeMu.Unlock()
		close(p.stop)
		p.baseCancel()
	})
	<-p.done
	// Retiring a wedged pipeline takes it off the obs wedged-pipelines
	// gauge (the abandoned-scanner gauge stays up until the stuck
	// goroutine itself unsticks and exits — that is the actual leak).
	if p.wedged.Load() && p.metrics != nil {
		p.wedgeRetire.Do(func() { p.metrics.WedgedPipelines.Add(-1) })
	}
	// Likewise a pipeline that closed while at an ROI rung leaves the
	// ROI-active gauge. The run loop has exited here, so the scanner is
	// idle (or abandoned and past its gauge updates) and the swap cannot
	// race a transition.
	if p.metrics != nil && p.roiEngaged.Swap(false) {
		p.metrics.ROIActivePipelines.Add(-1)
	}
}

// Closed reports whether Close has been called. Submit returns false and
// Flush returns immediately once it does.
func (p *Pipeline) Closed() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// Stats returns a snapshot of the runtime counters.
func (p *Pipeline) Stats() Stats { return p.stats.snapshot(p) }

// run is the frame loop: it pulls frames off the bounded queue, hands each
// to the scanner goroutine, watches the scan with the hang watchdog, feeds
// the outcome back to the controller, and emits the result. On a hang it
// wedges the pipeline and exits.
func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.results)
	// Frames still queued when Close (or a wedge) fires were accepted but
	// will never be scanned; count them as dropped so the stats invariant
	// FramesIn == FramesOut + FramesDropped + InFlight holds after
	// shutdown with InFlight 0. Both Close and the wedge path flip the
	// intake gate before this drain runs, so no Submit can add to the
	// queue afterwards.
	defer func() {
		for p.stats.tryEvict(p.in) {
			p.countDropped()
		}
	}()
	// Closing scanIn lets the scanner goroutine exit: immediately when it
	// is idle, or whenever it unsticks if it was abandoned mid-hang.
	defer close(p.scanIn)
	for {
		select {
		case <-p.stop:
			return
		case it := <-p.in:
			// Close may have fired while this loop slept on the queue; with
			// both channels ready the select above picks randomly, so
			// re-check stop before scanning. Without this, frames queued at
			// Close time were nondeterministically scanned instead of
			// discarded, contradicting Close's documented drop semantics
			// (and flaking TestCloseCountsQueuedFramesDropped).
			select {
			case <-p.stop:
				p.stats.dropDequeued()
				p.countDropped()
				return
			default:
			}
			r, hung := p.dispatch(it)
			if hung {
				p.wedge(r)
				return
			}
			p.ctrl.observe(r, p.deadline)
			p.stats.observe(r)
			select {
			case p.results <- r:
			case <-p.stop:
				return
			}
		}
	}
}

// dispatch hands one frame to the scanner goroutine and waits for its
// result under the hang watchdog. It returns hung=true when the watchdog
// claimed the frame: the returned FrameResult is the synthesized ErrHung
// outcome and the scanner goroutine has been abandoned mid-scan.
func (p *Pipeline) dispatch(it frameItem) (r FrameResult, hung bool) {
	p.claim.Store(claimNone)
	p.scanIn <- it
	if p.hangTimeout <= 0 {
		return <-p.scanOut, false
	}
	t := time.NewTimer(p.hangTimeout)
	defer t.Stop()
	select {
	case r = <-p.scanOut:
		return r, false
	case <-t.C:
		if !p.claim.CompareAndSwap(claimNone, claimWatchdog) {
			// The scanner finished in the same instant the timer fired and
			// won the claim; its result is in (or about to hit) scanOut.
			return <-p.scanOut, false
		}
		wait := time.Since(it.at) - p.hangTimeout
		if wait < 0 {
			wait = 0
		}
		return FrameResult{
			Seq:     it.seq,
			Err:     ErrHung,
			Wait:    wait,
			Latency: p.hangTimeout,
			Missed:  true,
			Rung:    p.ctrl.current(),
		}, true
	}
}

// wedge moves the pipeline to its terminal state after the watchdog
// abandoned a hung scan: intake closes, the hung frame is accounted (it
// left the queue but will never be scanned to completion by anyone we can
// wait for), the abandoned goroutine is leak-accounted, and the final
// ErrHung result is emitted. The caller (run) returns immediately after,
// draining the queue as dropped and closing Results.
func (p *Pipeline) wedge(r FrameResult) {
	p.closeMu.Lock()
	p.closed = true
	p.closeMu.Unlock()
	p.wedged.Store(true)
	// Politeness: if the stuck code ever starts observing its context
	// again, let it unwind promptly rather than running to completion.
	p.baseCancel()
	p.stats.observeHung(r)
	p.recordHung(r)
	select {
	case p.results <- r:
	case <-p.stop:
	}
}

// scanLoop is the dedicated scanner goroutine: it scans one frame at a
// time on behalf of the run loop. Splitting the scan onto its own
// goroutine is what makes the hang watchdog possible — the run loop can
// abandon a scan stuck in non-cancellable code, which an in-line call
// never could. A scanner that loses the completion claim discards its
// late result (the watchdog already emitted ErrHung for that frame) and
// retires the abandoned-goroutine ledger entry on its way out.
func (p *Pipeline) scanLoop() {
	for it := range p.scanIn {
		rung := p.ctrl.current()
		restricted := p.planROI(rung, it.frame)
		wait := time.Since(it.at)
		var arenaGets0, arenaMisses0 uint64
		if p.metrics != nil {
			arenaGets0, arenaMisses0 = p.arena.Counters()
		}
		ctx, cancel := context.WithTimeout(p.baseCtx, p.deadline)
		start := time.Now()
		dets, err := detectFrame(ctx, p.dets[rung], it.frame)
		cancel()
		lat := time.Since(start)
		if p.tracker != nil && err == nil {
			// Feed the tracker at every rung, not just ROI rungs: warm
			// track state is what makes engaging the ROI rung safe, and it
			// costs nothing compared to the scan. Failed frames are skipped
			// (no detections to associate; tracks coast on misses instead).
			p.tracker.Update(dets)
		}
		r := FrameResult{
			Seq:        it.seq,
			Detections: dets,
			Err:        err,
			Wait:       wait,
			Latency:    lat,
			Missed:     lat > p.deadline || errors.Is(err, context.DeadlineExceeded),
			Rung:       rung,
			ROI:        restricted,
		}
		if p.claim.CompareAndSwap(claimNone, claimScanner) {
			p.recordFrame(r, arenaGets0, arenaMisses0)
			p.scanOut <- r
			continue
		}
		// Abandoned: the watchdog gave up on this frame long ago and the
		// pipeline is wedged. The late result is discarded (the frame was
		// already accounted as hung); this goroutine's only remaining job
		// is to check out of the leak ledger and exit via the closed
		// scanIn.
		if p.metrics != nil {
			p.metrics.AbandonedScanners.Add(-1)
		}
	}
}

// planROI prepares the shared region set for one frame: at an ROI rung it
// asks the scheduler for a plan built from the live track boxes and
// installs it (dense cadence frames clear the restriction); at a dense
// rung it clears the restriction and forgets the schedule, so a later
// re-engage starts with a full scan. It returns whether the frame will be
// scanned restricted, and keeps the stats and obs mirrors of the schedule.
// Runs on the scanner goroutine only; no-op without a scheduler.
func (p *Pipeline) planROI(rung int, frame *imgproc.Gray) bool {
	if p.sched == nil {
		return false
	}
	atROI := p.rungs[rung].ROI
	if p.metrics != nil && p.roiEngaged.Swap(atROI) != atROI {
		if atROI {
			p.metrics.ROIActivePipelines.Add(1)
		} else {
			p.metrics.ROIActivePipelines.Add(-1)
		}
	}
	if !atROI {
		p.roiPrev = false
		p.regions.Clear()
		return false
	}
	if !p.roiPrev {
		// Re-engaging after dense frames: the scheduler's clock restarts so
		// the first ROI-rung frame is a full scan, re-anchoring the track
		// state before any restricted frame trusts it.
		p.sched.Reset()
		p.roiPrev = true
	}
	p.trackBoxes = p.tracker.AppendLiveBoxes(p.trackBoxes[:0])
	plan := p.sched.Plan(p.trackBoxes, frame.W, frame.H)
	if plan.Full {
		p.regions.Clear()
	} else {
		p.regions.Set(plan.Regions)
	}
	p.stats.observeROIPlan(plan)
	if p.metrics != nil {
		if plan.Full {
			p.metrics.ROIFullScans.Inc()
		} else {
			p.metrics.ROIScans.Inc()
			p.metrics.ROIRegions.Add(uint64(len(plan.Regions)))
		}
	}
	return !plan.Full
}

// recordFrame mirrors one frame outcome into the obs registry: outcome
// counters, frame/wait histograms, arena hit/miss deltas, controller
// transition deltas, and a trace-ring entry carrying the per-stage
// breakdown the rung detector accumulated for this frame. Runs on the scan
// loop only; no-op when metrics are disabled.
func (p *Pipeline) recordFrame(r FrameResult, arenaGets0, arenaMisses0 uint64) {
	m := p.metrics
	if m == nil {
		return
	}
	m.FramesOut.Inc()
	m.Frame.Observe(r.Latency)
	m.Wait.Observe(r.Wait)
	if r.Missed {
		m.DeadlineMisses.Inc()
	}
	if r.Err != nil {
		m.Errors.Inc()
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			m.Panics.Inc()
		}
	}
	// Frame-local deltas keep the obs counters additive when several
	// pipelines share one registry (and possibly one arena); a shared
	// arena's concurrent checkouts may be attributed to whichever frame
	// observed them, but the totals stay exact.
	gets, misses := p.arena.Counters()
	frameGets, frameMisses := gets-arenaGets0, misses-arenaMisses0
	m.ArenaMisses.Add(frameMisses)
	if frameGets > frameMisses {
		m.ArenaHits.Add(frameGets - frameMisses)
	}
	_, deg, rec := p.ctrl.state()
	m.Degrades.Add(deg - p.prevDeg)
	m.Recovers.Add(rec - p.prevRec)
	p.prevDeg, p.prevRec = deg, rec
	tr := obs.FrameTrace{
		Seq:       r.Seq,
		Worker:    p.cfg.MetricsID,
		Rung:      r.Rung,
		Wait:      r.Wait,
		Total:     r.Latency,
		Deadline:  p.deadline,
		Margin:    p.deadline - r.Latency,
		Stages:    p.rec.FrameStages(),
		ArenaMiss: frameMisses > 0,
		Missed:    r.Missed,
		Failed:    r.Err != nil,
	}
	m.Traces.Record(&tr)
}

// recordHung mirrors a watchdog-abandoned frame into the obs registry. The
// hung frame counts as emitted (its ErrHung result is the pipeline's last),
// its trace carries the Hung flag with a zero stage breakdown (a stuck scan
// never reports where it is), and the wedge/abandonment gauges go up. The
// scanner's own recordFrame never runs for this frame — the claim CAS
// guarantees exactly one of the two accounts it — so the registry mirrors
// stay additive. Runs on the run loop; no-op when metrics are disabled.
func (p *Pipeline) recordHung(r FrameResult) {
	m := p.metrics
	if m == nil {
		return
	}
	m.FramesOut.Inc()
	m.Errors.Inc()
	m.DeadlineMisses.Inc()
	m.FramesHung.Inc()
	m.WedgedPipelines.Add(1)
	m.AbandonedScanners.Add(1)
	m.Frame.Observe(r.Latency)
	m.Wait.Observe(r.Wait)
	tr := obs.FrameTrace{
		Seq:      r.Seq,
		Worker:   p.cfg.MetricsID,
		Rung:     r.Rung,
		Wait:     r.Wait,
		Total:    r.Latency,
		Deadline: p.deadline,
		Margin:   p.deadline - r.Latency,
		Missed:   true,
		Failed:   true,
		Hung:     true,
	}
	m.Traces.Record(&tr)
}

// detectFrame runs one detection under panic recovery: a poison frame (for
// example a frame whose pixel buffer is shorter than its header claims)
// panics somewhere in the feature extractor and is returned as a
// *PanicError instead of killing the stream. Worker-pool goroutines inside
// core recover their own panics; this guards the scan goroutine itself.
func detectFrame(ctx context.Context, det *core.Detector, frame *imgproc.Gray) (dets []eval.Detection, err error) {
	defer func() {
		if r := recover(); r != nil {
			dets, err = nil, &PanicError{Value: r}
		}
	}()
	return det.DetectCtx(ctx, frame)
}
