// Package rt is the deadline-aware streaming runtime around core.Detector.
//
// The paper's premise is a hard real-time budget: at 60 fps HDTV the
// detector gets 16.6 ms per frame (Section 1), and internal/das computes
// exactly that budget (das.BudgetAt, das.MaxDetectorLatency). This package
// enforces it. A Pipeline wraps a detector for a continuous frame feed and
// guarantees forward progress under overload, poison input, and injected
// faults:
//
//   - every frame runs under a context deadline derived from the frame
//     budget, so a stalled scale cannot block the stream;
//   - a degradation controller sheds work in a principled order when the
//     deadline is missed repeatedly — finest pyramid levels first (the
//     paper's memory-limited hardware runs the same trade at 2 scales),
//     then scan workers — and restores it with hysteresis once latency
//     recovers;
//   - the input queue is bounded and drops the oldest frame under
//     backpressure (a stale frame is worthless to a driver-assistance
//     system);
//   - each frame is scanned under per-goroutine panic recovery, so a
//     poison frame yields a FrameResult with Err set instead of killing
//     the stream.
//
// Stats() exposes a snapshot of the runtime counters for dashboards and
// the cmd/pddetect -stream mode; internal/rt/faultinject drives the
// deterministic degradation tests.
package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/das"
	"repro/internal/eval"
	"repro/internal/imgproc"
	"repro/internal/obs"
)

// Config tunes the streaming runtime. The zero value is not usable: either
// FPS or Deadline must be set. All other fields have working defaults.
type Config struct {
	// FPS is the target frame rate; the per-frame deadline defaults to the
	// das frame budget at this rate (das.BudgetAt: 1/FPS seconds).
	FPS float64
	// Deadline overrides FPS with an explicit per-frame latency budget.
	Deadline time.Duration
	// Queue bounds the input queue. When full, the oldest queued frame is
	// dropped to make room (drop-oldest). Default 4.
	Queue int
	// MaxShed caps how many finest pyramid levels the controller may shed
	// below the detector's own configuration. Default 2 (the paper's
	// hardware operating point keeps 2 of the finest scales' worth of
	// memory; shedding the two finest levels of a 1.1-step pyramid is the
	// software analogue).
	MaxShed int
	// MinWorkers floors the worker-reduction rungs of the ladder.
	// Default 1.
	MinWorkers int
	// DegradeAfter is how many consecutive deadline misses trigger a step
	// down the ladder. Default 3.
	DegradeAfter int
	// RecoverAfter is how many consecutive comfortable frames (latency at
	// most RecoverMargin of the deadline) trigger a step back up.
	// Default 8.
	RecoverAfter int
	// RecoverMargin is the fraction of the deadline a frame must finish
	// within to count toward recovery; the gap between it and 1.0 is the
	// hysteresis band that prevents oscillation. Default 0.7.
	RecoverMargin float64
	// Metrics, if non-nil, receives the pipeline's observability stream:
	// per-stage latency histograms (via a core detect recorder shared by
	// every rung), frame/wait histograms, intake/drop/miss/degrade
	// counters, arena hit/miss counters, and a per-frame trace ring
	// retaining the slowest frames. Recording is allocation-free; nil (the
	// default) disables everything. A *obs.Metrics registry may be shared
	// across pipelines (internal/serve shares one across its workers) —
	// each pipeline gets its own frame-stage recorder lane internally.
	Metrics *obs.Metrics
	// MetricsID labels this pipeline's entries in the trace ring (the
	// FrameTrace.Worker field); internal/serve sets it to the worker index.
	MetricsID int
}

// deadline resolves the per-frame budget.
func (c Config) deadline() (time.Duration, error) {
	if c.Deadline > 0 {
		return c.Deadline, nil
	}
	if c.FPS > 0 {
		b, err := das.BudgetAt(0, c.FPS)
		if err != nil {
			return 0, fmt.Errorf("rt: %w", err)
		}
		return time.Duration(b.FrameTime * float64(time.Second)), nil
	}
	return 0, errors.New("rt: config needs FPS or Deadline")
}

// withDefaults fills the zero-valued tuning knobs.
func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 4
	}
	if c.MaxShed < 0 {
		c.MaxShed = 0
	} else if c.MaxShed == 0 {
		c.MaxShed = 2
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 8
	}
	if c.RecoverMargin <= 0 || c.RecoverMargin >= 1 {
		c.RecoverMargin = 0.7
	}
	return c
}

// Rung is one operating point of the degradation ladder.
type Rung struct {
	// SkipFinest is the number of finest pyramid levels shed at this rung
	// (core.Config.SkipFinest).
	SkipFinest int
	// Workers is the scan worker count at this rung.
	Workers int
}

// ladder builds the degradation ladder from the detector's own operating
// point: rung 0 is the configured detector; the next MaxShed rungs shed one
// more finest pyramid level each (the biggest win per step — the finest
// level carries the most windows); the remaining rungs halve the scan
// workers down to minWorkers at maximum shed. Frame dropping is not a rung:
// the bounded queue drops stale frames at every rung.
func ladder(baseSkip, baseWorkers, maxShed, minWorkers int) []Rung {
	rungs := []Rung{{SkipFinest: baseSkip, Workers: baseWorkers}}
	for s := 1; s <= maxShed; s++ {
		rungs = append(rungs, Rung{SkipFinest: baseSkip + s, Workers: baseWorkers})
	}
	for w := baseWorkers / 2; w >= minWorkers && w < rungs[len(rungs)-1].Workers; w /= 2 {
		rungs = append(rungs, Rung{SkipFinest: baseSkip + maxShed, Workers: w})
	}
	return rungs
}

// PanicError wraps a panic recovered while scanning a frame. The stream
// continues; the poison frame's FrameResult carries this error.
type PanicError struct {
	Value any
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("rt: panic while scanning frame: %v", e.Value)
}

// FrameResult is the outcome of one submitted frame.
type FrameResult struct {
	// Seq is the frame's submission sequence number (0-based).
	Seq uint64
	// Detections is the detector output; nil when Err is set.
	Detections []eval.Detection
	// Err is the per-frame failure, if any: a detection error, the
	// context error of a frame cut off at its deadline, or a *PanicError
	// for a recovered poison frame. The stream continues either way.
	Err error
	// Wait is how long the frame sat in the input queue.
	Wait time.Duration
	// Latency is the detection wall time (excluding Wait).
	Latency time.Duration
	// Missed reports that the frame exceeded its deadline.
	Missed bool
	// Rung is the degradation rung the frame was scanned at.
	Rung int
}

// frameItem is one queued frame.
type frameItem struct {
	seq   uint64
	frame *imgproc.Gray
	at    time.Time
}

// Pipeline is a running streaming detection runtime. Create it with New,
// feed it with Submit, consume Results, and Close it when done. The
// consumer must drain Results; the pipeline applies backpressure (and
// eventually drops frames) when it does not.
type Pipeline struct {
	cfg      Config
	deadline time.Duration
	rungs    []Rung
	dets     []*core.Detector

	in      chan frameItem
	results chan FrameResult

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stop       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once

	// closeMu gates intake against Close: Submit holds the read side while
	// it enqueues, Close takes the write side to flip closed. This makes the
	// pair safe to race — once Close has the lock, no Submit is mid-enqueue,
	// so the scan loop's shutdown drain observes every accepted frame and
	// the FramesIn == FramesOut + FramesDropped invariant survives Close.
	closeMu sync.RWMutex
	closed  bool

	seq   atomic.Uint64
	ctrl  *controller
	stats *stats

	// Observability (all nil/zero when Config.Metrics is nil). rec is this
	// pipeline's frame-stage recorder lane: the scan loop runs one frame at
	// a time, so every rung detector can share it. prevDeg/prevRec are the
	// controller transition counts already flushed into the obs counters;
	// only the scan loop touches them.
	metrics          *obs.Metrics
	rec              *obs.DetectRecorder
	arena            *core.Arena
	prevDeg, prevRec uint64
}

// New builds the degradation ladder for the detector and starts the
// pipeline's scan loop. The detector's configuration (mode, scales,
// workers, probes) is rung 0 of the ladder.
func New(det *core.Detector, cfg Config) (*Pipeline, error) {
	deadline, err := cfg.deadline()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	base := det.Config()
	baseWorkers := base.Workers
	if baseWorkers <= 0 {
		baseWorkers = runtime.GOMAXPROCS(0)
	}
	rungs := ladder(base.SkipFinest, baseWorkers, cfg.MaxShed, cfg.MinWorkers)
	// All rungs share one frame arena: the scan loop runs one frame at a
	// time, and a rung switch should reuse the already-grown scratch
	// buffers rather than warm up private ones.
	if base.Arena == nil {
		base.Arena = core.NewArena()
	}
	var rec *obs.DetectRecorder
	if cfg.Metrics != nil {
		rec = obs.NewDetectRecorder(cfg.Metrics)
		base.Metrics = rec
	}
	dets := make([]*core.Detector, len(rungs))
	for i, r := range rungs {
		c := base
		c.SkipFinest = r.SkipFinest
		c.Workers = r.Workers
		d, err := core.NewDetector(det.Model(), c)
		if err != nil {
			return nil, fmt.Errorf("rt: rung %d (%+v): %w", i, r, err)
		}
		dets[i] = d
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	p := &Pipeline{
		cfg:        cfg,
		deadline:   deadline,
		rungs:      rungs,
		dets:       dets,
		in:         make(chan frameItem, cfg.Queue),
		results:    make(chan FrameResult, cfg.Queue+1),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		ctrl: newController(len(rungs), cfg.DegradeAfter, cfg.RecoverAfter,
			cfg.RecoverMargin),
		stats:   newStats(),
		metrics: cfg.Metrics,
		rec:     rec,
		arena:   base.Arena,
	}
	go p.run()
	return p, nil
}

// Deadline returns the per-frame latency budget the pipeline enforces.
func (p *Pipeline) Deadline() time.Duration { return p.deadline }

// Ladder returns the degradation ladder, rung 0 first.
func (p *Pipeline) Ladder() []Rung {
	out := make([]Rung, len(p.rungs))
	copy(out, p.rungs)
	return out
}

// Results is the stream of per-frame outcomes, in scan order. It is closed
// by Close.
func (p *Pipeline) Results() <-chan FrameResult { return p.results }

// Submit offers a frame to the pipeline without blocking. When the queue is
// full the oldest queued frame is dropped to make room (a newer frame is
// always worth more to a driver-assistance system than a stale one). It
// returns false if the frame could not be accepted — the pipeline is
// closed, or the queue stayed full even after the eviction attempt.
func (p *Pipeline) Submit(frame *imgproc.Gray) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return false
	}
	it := frameItem{seq: p.seq.Add(1) - 1, frame: frame, at: time.Now()}
	if p.stats.tryEnqueue(p.in, it) {
		p.countIn()
		return true
	}
	// Queue full: evict the oldest queued frame, then retry once. The
	// eviction and the retry race the scan loop benignly — at worst the
	// scan loop dequeued a frame in between and no eviction was needed.
	// Both the eviction and the enqueue commit their channel operation and
	// their counter update under the stats lock, so a concurrent Stats()
	// snapshot can never catch the queue and the counters disagreeing.
	if p.stats.tryEvict(p.in) {
		p.countDropped()
	}
	if p.stats.tryEnqueue(p.in, it) {
		p.countIn()
		return true
	}
	return false
}

// countIn / countDropped mirror intake accounting into the optional obs
// registry (the authoritative counters live in stats).
func (p *Pipeline) countIn() {
	if p.metrics != nil {
		p.metrics.FramesIn.Inc()
	}
}

func (p *Pipeline) countDropped() {
	if p.metrics != nil {
		p.metrics.FramesDropped.Inc()
	}
}

// Flush blocks until every accepted frame has been scanned or dropped. It
// does not stop the pipeline; use it before reading a final Stats snapshot
// or before Close when every submitted frame matters. On a closed pipeline
// it is a no-op that returns immediately.
func (p *Pipeline) Flush() {
	for {
		select {
		case <-p.done:
			return
		default:
		}
		if p.stats.snapshot(p).InFlight == 0 {
			return
		}
		select {
		case <-p.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops the pipeline: in-flight work is cancelled, queued frames are
// discarded (counted as dropped), and Results is closed. It is idempotent —
// every call blocks until shutdown is complete — and safe to call
// concurrently with Submit, Flush, and other Close calls; the supervisor
// restart path in internal/serve relies on all three properties.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		p.closeMu.Lock()
		p.closed = true
		p.closeMu.Unlock()
		close(p.stop)
		p.baseCancel()
	})
	<-p.done
}

// Closed reports whether Close has been called. Submit returns false and
// Flush returns immediately once it does.
func (p *Pipeline) Closed() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// Stats returns a snapshot of the runtime counters.
func (p *Pipeline) Stats() Stats { return p.stats.snapshot(p) }

// run is the scan loop: one goroutine pulls frames off the bounded queue,
// scans them under the deadline at the controller's current rung, feeds the
// outcome back to the controller, and emits the result.
func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.results)
	// Frames still queued when Close fires were accepted but will never be
	// scanned; count them as dropped so the stats invariant
	// FramesIn == FramesOut + FramesDropped + InFlight holds after
	// shutdown with InFlight 0. Close flips the intake gate before
	// signalling stop, so no Submit can add to the queue after this drain
	// runs.
	defer func() {
		for p.stats.tryEvict(p.in) {
			p.countDropped()
		}
	}()
	for {
		select {
		case <-p.stop:
			return
		case it := <-p.in:
			// Close may have fired while this loop slept on the queue; with
			// both channels ready the select above picks randomly, so
			// re-check stop before scanning. Without this, frames queued at
			// Close time were nondeterministically scanned instead of
			// discarded, contradicting Close's documented drop semantics
			// (and flaking TestCloseCountsQueuedFramesDropped).
			select {
			case <-p.stop:
				p.stats.dropDequeued()
				p.countDropped()
				return
			default:
			}
			r := p.process(it)
			p.ctrl.observe(r, p.deadline)
			p.stats.observe(r)
			select {
			case p.results <- r:
			case <-p.stop:
				return
			}
		}
	}
}

// process scans one frame under the per-frame deadline at the current rung.
func (p *Pipeline) process(it frameItem) FrameResult {
	rung := p.ctrl.current()
	wait := time.Since(it.at)
	var arenaGets0, arenaMisses0 uint64
	if p.metrics != nil {
		arenaGets0, arenaMisses0 = p.arena.Counters()
	}
	ctx, cancel := context.WithTimeout(p.baseCtx, p.deadline)
	start := time.Now()
	dets, err := detectFrame(ctx, p.dets[rung], it.frame)
	cancel()
	lat := time.Since(start)
	r := FrameResult{
		Seq:        it.seq,
		Detections: dets,
		Err:        err,
		Wait:       wait,
		Latency:    lat,
		Missed:     lat > p.deadline || errors.Is(err, context.DeadlineExceeded),
		Rung:       rung,
	}
	p.recordFrame(r, arenaGets0, arenaMisses0)
	return r
}

// recordFrame mirrors one frame outcome into the obs registry: outcome
// counters, frame/wait histograms, arena hit/miss deltas, controller
// transition deltas, and a trace-ring entry carrying the per-stage
// breakdown the rung detector accumulated for this frame. Runs on the scan
// loop only; no-op when metrics are disabled.
func (p *Pipeline) recordFrame(r FrameResult, arenaGets0, arenaMisses0 uint64) {
	m := p.metrics
	if m == nil {
		return
	}
	m.FramesOut.Inc()
	m.Frame.Observe(r.Latency)
	m.Wait.Observe(r.Wait)
	if r.Missed {
		m.DeadlineMisses.Inc()
	}
	if r.Err != nil {
		m.Errors.Inc()
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			m.Panics.Inc()
		}
	}
	// Frame-local deltas keep the obs counters additive when several
	// pipelines share one registry (and possibly one arena); a shared
	// arena's concurrent checkouts may be attributed to whichever frame
	// observed them, but the totals stay exact.
	gets, misses := p.arena.Counters()
	frameGets, frameMisses := gets-arenaGets0, misses-arenaMisses0
	m.ArenaMisses.Add(frameMisses)
	if frameGets > frameMisses {
		m.ArenaHits.Add(frameGets - frameMisses)
	}
	_, deg, rec := p.ctrl.state()
	m.Degrades.Add(deg - p.prevDeg)
	m.Recovers.Add(rec - p.prevRec)
	p.prevDeg, p.prevRec = deg, rec
	tr := obs.FrameTrace{
		Seq:       r.Seq,
		Worker:    p.cfg.MetricsID,
		Rung:      r.Rung,
		Wait:      r.Wait,
		Total:     r.Latency,
		Deadline:  p.deadline,
		Margin:    p.deadline - r.Latency,
		Stages:    p.rec.FrameStages(),
		ArenaMiss: frameMisses > 0,
		Missed:    r.Missed,
		Failed:    r.Err != nil,
	}
	m.Traces.Record(&tr)
}

// detectFrame runs one detection under panic recovery: a poison frame (for
// example a frame whose pixel buffer is shorter than its header claims)
// panics somewhere in the feature extractor and is returned as a
// *PanicError instead of killing the stream. Worker-pool goroutines inside
// core recover their own panics; this guards the scan goroutine itself.
func detectFrame(ctx context.Context, det *core.Detector, frame *imgproc.Gray) (dets []eval.Detection, err error) {
	defer func() {
		if r := recover(); r != nil {
			dets, err = nil, &PanicError{Value: r}
		}
	}()
	return det.DetectCtx(ctx, frame)
}
