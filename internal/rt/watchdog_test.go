package rt

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rt/faultinject"
)

// waitResult reads one result with a test-level timeout.
func waitResult(t *testing.T, p *Pipeline, within time.Duration) (FrameResult, bool) {
	t.Helper()
	select {
	case r, ok := <-p.Results():
		return r, ok
	case <-time.After(within):
		t.Fatalf("no result within %v", within)
		panic("unreachable")
	}
}

// TestHangWatchdogWedgesPipeline is the core liveness scenario: a scan
// stuck in ctx-ignoring code is detected within HangTimeout, reported as
// ErrHung, and the pipeline moves to the terminal Wedged state with the
// abandoned goroutine leak-accounted — and the frame-conservation
// invariant holds through all of it.
func TestHangWatchdogWedgesPipeline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := obs.NewMetrics()
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	// Generous absolute values (the suite shares one CPU with three other
	// race-instrumented packages); only the ordering deadline < hang <
	// stall matters to the scenario.
	const (
		deadline = 1 * time.Second
		hang     = 600 * time.Millisecond
		stall    = 3 * time.Second
	)
	p, err := New(det, Config{Deadline: deadline, HangTimeout: hang, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if p.HangTimeout() != hang {
		t.Fatalf("HangTimeout() = %v, want %v", p.HangTimeout(), hang)
	}

	// A healthy frame first: the watchdog must not disturb normal scans.
	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("healthy frame: %v", r.Err)
	}

	faults.HardStallLevel(0, stall)
	start := time.Now()
	if !p.Submit(frame) {
		t.Fatal("Submit rejected on a healthy pipeline")
	}
	r, ok := waitResult(t, p, 10*time.Second)
	if !ok {
		t.Fatal("Results closed before the hung frame's result")
	}
	detected := time.Since(start)
	if !errors.Is(r.Err, ErrHung) {
		t.Fatalf("hung frame returned %v, want ErrHung", r.Err)
	}
	if !r.Missed {
		t.Error("hung frame not flagged Missed")
	}
	// Detection latency: at least the hang timeout (the watchdog cannot
	// fire early), and well before the stall would have ended on its own.
	if detected < hang {
		t.Errorf("hang detected after %v, before the %v watchdog bound", detected, hang)
	}
	if detected >= stall {
		t.Errorf("hang detected after %v — the watchdog waited out the %v stall instead of abandoning it", detected, stall)
	}

	// Terminal state: Results closes, Submit refuses, Wedged reports.
	if _, ok := waitResult(t, p, 10*time.Second); ok {
		t.Fatal("Results still open after the wedge")
	}
	if !p.Wedged() {
		t.Error("Wedged() = false after watchdog abandonment")
	}
	if p.Submit(frame) {
		t.Error("Submit accepted a frame on a wedged pipeline")
	}

	s := p.Stats()
	if !s.Wedged {
		t.Error("Stats().Wedged = false")
	}
	if s.FramesHung != 1 {
		t.Errorf("FramesHung = %d, want 1", s.FramesHung)
	}
	if s.FramesIn != s.FramesOut+s.FramesDropped+s.InFlight {
		t.Errorf("conservation broken after wedge: in %d != out %d + dropped %d + inflight %d",
			s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight)
	}
	if s.InFlight != 0 {
		t.Errorf("InFlight = %d after wedge, want 0 (hung frame counts out)", s.InFlight)
	}
	if s.Errors != 1 || s.Panics != 0 {
		t.Errorf("errors/panics = %d/%d, want 1/0", s.Errors, s.Panics)
	}

	// Obs mirrors: hung counter, wedged + abandoned gauges, trace flag.
	if got := m.FramesHung.Load(); got != 1 {
		t.Errorf("obs FramesHung = %d, want 1", got)
	}
	if got := m.WedgedPipelines.Load(); got != 1 {
		t.Errorf("obs WedgedPipelines = %d, want 1 before Close", got)
	}
	if got := m.AbandonedScanners.Load(); got != 1 {
		t.Errorf("obs AbandonedScanners = %d, want 1 while the scanner is stuck", got)
	}
	hungTraces := 0
	for _, tr := range m.Traces.Snapshot() {
		if tr.Hung {
			hungTraces++
			if tr.Stages != ([obs.NumStages]int64{}) {
				t.Error("hung trace carries a stage breakdown; a stuck scan cannot report one")
			}
		}
	}
	if hungTraces != 1 {
		t.Errorf("hung traces = %d, want 1", hungTraces)
	}

	// Close is prompt (the run loop already exited) and idempotent, and
	// retires the wedged pipeline from the gauge.
	closeStart := time.Now()
	p.Close()
	p.Close()
	if elapsed := time.Since(closeStart); elapsed > 5*time.Second {
		t.Fatalf("Close on a wedged pipeline took %v", elapsed)
	}
	if got := m.WedgedPipelines.Load(); got != 0 {
		t.Errorf("obs WedgedPipelines = %d after Close, want 0", got)
	}

	// The abandoned goroutine unsticks when its wall-clock sleep ends,
	// checks out of the leak ledger, and exits: full settle, gauge to 0.
	settleDeadline := time.Now().Add(10 * time.Second)
	for m.AbandonedScanners.Load() != 0 || runtime.NumGoroutine() > baseline {
		if time.Now().After(settleDeadline) {
			t.Fatalf("abandoned scanner did not settle: gauge %d, goroutines %d (baseline %d)",
				m.AbandonedScanners.Load(), runtime.NumGoroutine(), baseline)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWedgeCountsQueuedFramesDropped: frames queued behind the hung scan
// are drained as dropped when the pipeline wedges, so conservation holds
// with InFlight 0 even though they were never scanned.
func TestWedgeCountsQueuedFramesDropped(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 1 * time.Second, HangTimeout: 500 * time.Millisecond, Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	faults.HardStallLevel(0, 2*time.Second)
	if !p.Submit(frame) {
		t.Fatal("first submit rejected")
	}
	time.Sleep(100 * time.Millisecond) // scanner enters the hard stall
	queued := 0
	for i := 0; i < 3; i++ {
		if p.Submit(frame) {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("no frames queued behind the hung scan")
	}
	// Drain results until the channel closes (wedge).
	sawHung := false
	for r := range p.Results() {
		if errors.Is(r.Err, ErrHung) {
			sawHung = true
		}
	}
	if !sawHung {
		t.Fatal("no ErrHung result before Results closed")
	}
	s := p.Stats()
	if s.FramesIn != s.FramesOut+s.FramesDropped+s.InFlight || s.InFlight != 0 {
		t.Errorf("conservation broken: in %d, out %d, dropped %d, inflight %d",
			s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight)
	}
	if s.FramesDropped != uint64(queued) {
		t.Errorf("dropped %d, want %d (the frames queued behind the hang)", s.FramesDropped, queued)
	}
}

// TestSoftStallDoesNotWedge: a stall that observes its context is cut off
// by the per-frame deadline — the well-behaved slow path must never trip
// the watchdog, or every overload would wedge pipelines instead of
// engaging the degradation ladder.
func TestSoftStallDoesNotWedge(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{Deadline: 1 * time.Second, HangTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	faults.StallLevel(0, 10*time.Second)
	r := step(t, p, frame)
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("soft stall returned %v, want deadline exceeded", r.Err)
	}
	if p.Wedged() {
		t.Fatal("soft stall wedged the pipeline")
	}
	faults.Reset()
	if r := step(t, p, frame); r.Err != nil {
		t.Fatalf("stream dead after soft stall: %v", r.Err)
	}
	if s := p.Stats(); s.FramesHung != 0 || s.Wedged {
		t.Errorf("hung/wedged = %d/%v after soft stall, want 0/false", s.FramesHung, s.Wedged)
	}
}

// TestHangTimeoutResolution pins the Config.HangTimeout contract: zero
// defaults to 4x the frame deadline, negative disables.
func TestHangTimeoutResolution(t *testing.T) {
	det, _ := testDetector(t, nil)
	p, err := New(det, Config{Deadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if want := 400 * time.Millisecond; p.HangTimeout() != want {
		t.Errorf("default HangTimeout = %v, want %v (4x deadline)", p.HangTimeout(), want)
	}
	p.Close()

	det2, _ := testDetector(t, nil)
	p2, err := New(det2, Config{Deadline: 100 * time.Millisecond, HangTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p2.HangTimeout() != 0 {
		t.Errorf("disabled HangTimeout = %v, want 0", p2.HangTimeout())
	}
	p2.Close()
}
