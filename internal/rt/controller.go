package rt

import (
	"sync"
	"time"
)

// controller is the degradation controller: a small hysteresis state
// machine over the rung ladder. It degrades after DegradeAfter consecutive
// deadline misses and recovers after RecoverAfter consecutive frames that
// finish within RecoverMargin of the deadline. Frames that land between
// the margin and the deadline hold the current rung (the hysteresis band),
// and frames that fail for reasons other than the deadline (poison input)
// are neutral — shedding scales cannot fix a corrupt frame, so they must
// not drag the operating point down.
type controller struct {
	mu           sync.Mutex
	nRungs       int
	degradeAfter int
	recoverAfter int
	margin       float64

	cur        int
	missStreak int
	okStreak   int

	degradeEvents uint64
	recoverEvents uint64
}

func newController(nRungs, degradeAfter, recoverAfter int, margin float64) *controller {
	return &controller{
		nRungs:       nRungs,
		degradeAfter: degradeAfter,
		recoverAfter: recoverAfter,
		margin:       margin,
	}
}

// current returns the rung the next frame should be scanned at.
func (c *controller) current() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// observe feeds one frame outcome into the state machine.
func (c *controller) observe(r FrameResult, deadline time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case r.Missed:
		c.okStreak = 0
		c.missStreak++
		if c.missStreak >= c.degradeAfter {
			if c.cur < c.nRungs-1 {
				c.cur++
				c.degradeEvents++
			}
			// At the bottom rung there is nothing left to shed; restart
			// the streak so a later recovery is judged fresh.
			c.missStreak = 0
		}
	case r.Err != nil:
		// Neutral: a non-deadline failure says nothing about load.
	case float64(r.Latency) <= c.margin*float64(deadline):
		c.missStreak = 0
		c.okStreak++
		if c.okStreak >= c.recoverAfter {
			if c.cur > 0 {
				c.cur--
				c.recoverEvents++
			}
			c.okStreak = 0
		}
	default:
		// Inside the hysteresis band: on time but not comfortably so.
		// Hold the rung and both streaks start over.
		c.missStreak = 0
		c.okStreak = 0
	}
}

// state returns the controller counters for a stats snapshot.
func (c *controller) state() (cur int, degradeEvents, recoverEvents uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur, c.degradeEvents, c.recoverEvents
}
