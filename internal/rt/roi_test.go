package rt

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt/faultinject"
	"repro/internal/svm"
)

func TestLadderROI(t *testing.T) {
	got := ladder(0, 4, 2, 1, true)
	want := []Rung{
		{SkipFinest: 0, Workers: 4},
		{SkipFinest: 0, Workers: 4, ROI: true},
		{SkipFinest: 1, Workers: 4, ROI: true},
		{SkipFinest: 2, Workers: 4, ROI: true},
		{SkipFinest: 2, Workers: 2, ROI: true},
		{SkipFinest: 2, Workers: 1, ROI: true},
	}
	if len(got) != len(want) {
		t.Fatalf("ROI ladder %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ROI ladder rung %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for i, r := range ladder(0, 4, 2, 1, false) {
		if r.ROI {
			t.Fatalf("ROI-disabled ladder rung %d carries ROI: %+v", i, r)
		}
	}
}

func TestNewRejectsInvalidROI(t *testing.T) {
	det, _ := testDetector(t, nil)
	if _, err := New(det, Config{FPS: 30, ROI: &roi.Config{MarginPx: -1}}); err == nil {
		t.Fatal("New accepted a negative ROI margin")
	}
}

// TestROIShedAndRecover walks the full ROI degradation story in lock step:
// under a stall the pipeline sheds to the ROI rung before it sheds finest
// levels; at ROI rungs the scheduler alternates cadence full scans with
// track-guided restricted scans whose regions come from live tracks; and
// recovery climbs back through the ROI rung to dense-every-frame scanning.
// The bias-positive model makes every scanned window a detection, so
// detections (and therefore tracks and regions) appear exactly when the
// scan actually covers something — which is what each step asserts.
func TestROIShedAndRecover(t *testing.T) {
	faults := faultinject.New()
	cfg := core.DefaultConfig()
	cfg.Mode = core.FeaturePyramid
	cfg.ScaleStep = 1.3
	cfg.Workers = 1
	cfg.LevelProbe = faults.Probe
	// Every window scores the bias, above the zero threshold: a scan's
	// detection count reveals how much of the frame it covered.
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: 0.5}
	det, err := core.NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := imgproc.NewGray(128, 256)

	metrics := obs.NewMetrics()
	p, err := New(det, Config{
		Deadline:     time.Second,
		MaxShed:      2,
		DegradeAfter: 1,
		RecoverAfter: 3,
		ROI:          &roi.Config{FullEvery: 3, MarginPx: 32},
		Metrics:      metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Ladder: rung 0 dense, rung 1 ROI full-pyramid, rungs 2-3 ROI + shed.
	if l := p.Ladder(); len(l) != 4 || l[0].ROI || !l[1].ROI || l[1].SkipFinest != 0 || !l[2].ROI || l[2].SkipFinest != 1 {
		t.Fatalf("ladder %+v, want dense rung 0 then ROI rung at full pyramid then ROI shed rungs", l)
	}

	faults.StallLevel(0, 4*time.Second)

	// Frame 0 at the dense rung: the stall cuts it off at the deadline.
	r := step(t, p, frame)
	if r.Rung != 0 || !r.Missed || r.ROI {
		t.Fatalf("frame 0 = %+v, want missed dense-rung frame", r)
	}
	// Frame 1: degraded to the ROI rung before any level shedding. The
	// scheduler starts with a cadence full scan, which still probes the
	// stalled finest level and misses.
	r = step(t, p, frame)
	if r.Rung != 1 || !r.Missed || r.ROI {
		t.Fatalf("frame 1 = %+v, want missed full-cadence frame at ROI rung 1", r)
	}
	// Frames 2-3: degraded one more rung — finest level shed, stall dodged.
	// Restricted frames with no live tracks scan nothing and detect
	// nothing; the stream is back inside the budget.
	for i := 2; i <= 3; i++ {
		r = step(t, p, frame)
		if r.Rung != 2 || r.Missed || !r.ROI || len(r.Detections) != 0 {
			t.Fatalf("frame %d = %+v, want clean empty restricted frame at rung 2", i, r)
		}
		if i == 2 {
			faults.Clear(0) // the stall ends while degraded
		}
	}
	// Frame 4: the cadence demands a full scan; with the finest level still
	// shed it completes and finally produces detections, warming the
	// tracker. Its ok-streak completes recovery to rung 1.
	r = step(t, p, frame)
	if r.Rung != 2 || r.Missed || r.ROI || len(r.Detections) == 0 {
		t.Fatalf("frame 4 = %+v, want detecting full-cadence frame at rung 2", r)
	}
	// Frames 5-6: rung 1 scans the full pyramid restricted to the tracked
	// regions — and finds the pedestrians it is tracking.
	for i := 5; i <= 6; i++ {
		r = step(t, p, frame)
		if r.Rung != 1 || r.Missed || !r.ROI || len(r.Detections) == 0 {
			t.Fatalf("frame %d = %+v, want detecting restricted frame at rung 1", i, r)
		}
	}
	// Frame 7: cadence full scan at rung 1; its ok-streak completes
	// recovery to the dense rung.
	r = step(t, p, frame)
	if r.Rung != 1 || r.Missed || r.ROI || len(r.Detections) == 0 {
		t.Fatalf("frame 7 = %+v, want detecting full-cadence frame at rung 1", r)
	}
	// Frame 8: fully recovered — dense scanning every frame, no schedule.
	r = step(t, p, frame)
	if r.Rung != 0 || r.Missed || r.ROI || len(r.Detections) == 0 {
		t.Fatalf("frame 8 = %+v, want detecting dense frame at rung 0", r)
	}

	st := p.Stats()
	if st.ROIRung {
		t.Errorf("recovered pipeline still reports an ROI rung: %+v", st)
	}
	if st.ROIScans != 4 || st.ROIFullScans != 3 {
		t.Errorf("roi scans %d full %d, want 4 restricted (frames 2,3,5,6) and 3 full (frames 1,4,7)", st.ROIScans, st.ROIFullScans)
	}
	if st.ROIRegions == 0 {
		t.Error("restricted frames with live tracks recorded zero regions")
	}
	if got := st.String(); got == "" {
		t.Error("Stats.String empty")
	}

	// The obs mirrors agree with the authoritative stats, and the gauge
	// dropped back to zero when the ROI rung disengaged.
	rs := metrics.ROISnapshot()
	if rs.Scans != st.ROIScans || rs.FullScans != st.ROIFullScans || rs.Regions != st.ROIRegions {
		t.Errorf("obs ROI snapshot %+v disagrees with stats %+v", rs, st)
	}
	if rs.ActivePipelines != 0 {
		t.Errorf("ROI-active gauge %d after recovery to the dense rung, want 0", rs.ActivePipelines)
	}
	if rs.MeanRegions <= 0 {
		t.Errorf("mean regions %v, want positive", rs.MeanRegions)
	}
}

// TestROIReengageForcesFullScan pins the staleness guard: when the ROI rung
// disengages (recovery to dense) and later re-engages, the scheduler
// restarts with a full scan rather than trusting a schedule anchored by
// old frames.
func TestROIReengageForcesFullScan(t *testing.T) {
	faults := faultinject.New()
	det, frame := testDetector(t, faults)
	p, err := New(det, Config{
		Deadline:     time.Second,
		MaxShed:      -1, // no level shedding: the ROI rung is the only fallback
		MinWorkers:   1,
		DegradeAfter: 1,
		RecoverAfter: 2,
		ROI:          &roi.Config{FullEvery: 100, MarginPx: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// MaxShed 0 leaves a two-rung ladder: dense, ROI.
	if l := p.Ladder(); len(l) != 2 || !l[1].ROI {
		t.Fatalf("ladder %+v, want [dense, ROI]", l)
	}

	engage := func(tag string) {
		t.Helper()
		faults.StallLevel(0, 4*time.Second)
		if r := step(t, p, frame); r.Rung != 0 || !r.Missed {
			t.Fatalf("%s: expected a missed dense frame, got %+v", tag, r)
		}
		faults.Clear(0)
		// First frame at the ROI rung: must be a cadence full scan (the
		// schedule restarted), not a restricted frame.
		if r := step(t, p, frame); r.Rung != 1 || r.ROI {
			t.Fatalf("%s: first ROI-rung frame = %+v, want full scan", tag, r)
		}
		// Second frame: restricted (FullEvery is far away).
		if r := step(t, p, frame); r.Rung != 1 || !r.ROI {
			t.Fatalf("%s: second ROI-rung frame = %+v, want restricted", tag, r)
		}
	}

	engage("first engage")
	// Two clean frames recover to dense (RecoverAfter=2); the schedule is
	// forgotten.
	if r := step(t, p, frame); r.Rung != 0 {
		t.Fatalf("expected recovery to dense rung, got %+v", r)
	}
	// Re-engaging must start over with a full scan even though the
	// scheduler's clock was mid-cadence when it disengaged.
	engage("re-engage")
}
