package das

import (
	"math"
	"testing"
	"testing/quick"
)

// almost reports approximate equality to the given tolerance.
func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestPaperWorkedNumbers reproduces the Section 1 worked example exactly:
// braking distance 14.84 m at 50 km/h and 29.16 m at 70 km/h with
// a = 6.5 m/s^2, and total stopping distances 35.68 m and 58.23 m with a
// 1.5 s perception-brake reaction time.
func TestPaperWorkedNumbers(t *testing.T) {
	r50 := Analyze(Scenario{SpeedKmh: 50})
	if !almost(r50.BrakingDistance, 14.84, 0.01) {
		t.Errorf("50 km/h braking distance = %.4f, want 14.84", r50.BrakingDistance)
	}
	if !almost(r50.StoppingDistance, 35.68, 0.02) {
		t.Errorf("50 km/h stopping distance = %.4f, want 35.68", r50.StoppingDistance)
	}

	// The paper quotes 29.16 m / 58.23 m at 70 km/h; the exact values with
	// its own formula and parameters are 29.08 m / 58.25 m (the paper
	// appears to carry a small rounding slip). We verify against the exact
	// arithmetic with a tolerance wide enough to cover the paper's figures.
	r70 := Analyze(Scenario{SpeedKmh: 70})
	if !almost(r70.BrakingDistance, 29.16, 0.1) {
		t.Errorf("70 km/h braking distance = %.4f, want ~29.16", r70.BrakingDistance)
	}
	if !almost(r70.StoppingDistance, 58.23, 0.1) {
		t.Errorf("70 km/h stopping distance = %.4f, want ~58.23", r70.StoppingDistance)
	}
}

// TestDetectionRangeCoversPaperWindow checks the paper's conclusion that the
// DAS must see pedestrians within roughly 20-60 m: the 50 and 70 km/h
// stopping distances must fall inside that window.
func TestDetectionRangeCoversPaperWindow(t *testing.T) {
	for _, kmh := range []float64{50, 70} {
		r := Analyze(Scenario{SpeedKmh: kmh})
		if r.StoppingDistance < 20 || r.StoppingDistance > 60 {
			t.Errorf("%v km/h stopping distance %.2f m outside the paper's 20-60 m window",
				kmh, r.StoppingDistance)
		}
	}
}

func TestSpeedConversions(t *testing.T) {
	if got := KmhToMs(36); got != 10 {
		t.Errorf("KmhToMs(36) = %v, want 10", got)
	}
	if got := MsToKmh(10); got != 36 {
		t.Errorf("MsToKmh(10) = %v, want 36", got)
	}
}

func TestAnalyzeDefaults(t *testing.T) {
	r := Analyze(Scenario{SpeedKmh: 50})
	if r.PRT != NominalPRT || r.Deceleration != NominalDeceleration {
		t.Errorf("defaults not applied: %+v", r.Scenario)
	}
	// Explicit values are respected.
	r2 := Analyze(Scenario{SpeedKmh: 50, PRT: 0.7, Deceleration: 8})
	if r2.PRT != 0.7 || r2.Deceleration != 8 {
		t.Errorf("explicit values overridden: %+v", r2.Scenario)
	}
	if r2.StoppingDistance >= r.StoppingDistance {
		t.Error("faster driver with better brakes should stop shorter")
	}
}

func TestBrakingDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive deceleration")
		}
	}()
	BrakingDistance(10, 0)
}

func TestRequiredDetectionRange(t *testing.T) {
	s := Scenario{SpeedKmh: 50}
	base := Analyze(s).StoppingDistance
	// Zero margin, zero latency: exactly the stopping distance.
	if got := RequiredDetectionRange(s, 0, 0); !almost(got, base, 1e-9) {
		t.Errorf("zero-margin range = %v, want %v", got, base)
	}
	// A 16.6 ms detector at 50 km/h adds ~0.23 m.
	got := RequiredDetectionRange(s, 0, 0.0166)
	if !almost(got-base, KmhToMs(50)*0.0166, 1e-9) {
		t.Errorf("latency distance = %v", got-base)
	}
}

func TestMaxDetectorLatency(t *testing.T) {
	s := Scenario{SpeedKmh: 50}
	// At the 60 m edge of the paper's window there is real slack.
	lat := MaxDetectorLatency(s, 60)
	if lat <= 0 {
		t.Fatalf("latency budget at 60 m should be positive, got %v", lat)
	}
	// The 60 fps detector (16.6 ms) must fit comfortably.
	if lat < 1.0/60 {
		t.Errorf("60 fps detector does not fit: budget %v s", lat)
	}
	// An unreachable range yields zero.
	if got := MaxDetectorLatency(s, 10); got != 0 {
		t.Errorf("impossible range: got %v, want 0", got)
	}
}

func TestBudgetAt(t *testing.T) {
	b, err := BudgetAt(50, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b.FrameTime, 1.0/60, 1e-12) {
		t.Errorf("frame time = %v", b.FrameTime)
	}
	// ~23 cm per frame at 50 km/h and 60 fps.
	if !almost(b.MetresPerFrame, KmhToMs(50)/60, 1e-12) {
		t.Errorf("metres per frame = %v", b.MetresPerFrame)
	}
	// A stationary vehicle is a legitimate scenario (rt derives pure frame
	// deadlines with speed 0).
	if b, err := BudgetAt(0, 60); err != nil || b.MetresPerFrame != 0 {
		t.Errorf("BudgetAt(0, 60) = %+v, %v; want zero metres per frame, no error", b, err)
	}
}

// TestBudgetAtRejectsDegenerateInputs pins the edge-case contract: a NaN
// frame rate used to slip through the old fps <= 0 panic guard (every NaN
// comparison is false) and ±Inf produced a zero FrameTime, either of which
// poisons the deadline arithmetic downstream (a zero rt deadline cancels
// every frame immediately; a NaN one is undefined). All degenerate inputs
// must come back as errors, never as panics or silent garbage budgets.
func TestBudgetAtRejectsDegenerateInputs(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	for _, tc := range []struct {
		name          string
		speedKmh, fps float64
	}{
		{"zero fps", 50, 0},
		{"negative fps", 50, -30},
		{"NaN fps", 50, nan},
		{"+Inf fps", 50, inf},
		{"-Inf fps", 50, -inf},
		{"negative speed", -10, 60},
		{"NaN speed", nan, 60},
		{"+Inf speed", inf, 60},
		{"-Inf speed", -inf, 60},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, err := BudgetAt(tc.speedKmh, tc.fps)
			if err == nil {
				t.Fatalf("BudgetAt(%g, %g) = %+v, want error", tc.speedKmh, tc.fps, b)
			}
			if b != (FrameBudget{}) {
				t.Errorf("error return carried a non-zero budget %+v", b)
			}
		})
	}
}

func TestPixelHeightAtDistance(t *testing.T) {
	// A 1.8 m pedestrian at 20 m with a 1000 px focal length: 90 px.
	if got := PixelHeightAtDistance(1.8, 20, 1000); !almost(got, 90, 1e-9) {
		t.Errorf("pixel height = %v, want 90", got)
	}
	// Farther means smaller.
	if PixelHeightAtDistance(1.8, 60, 1000) >= PixelHeightAtDistance(1.8, 20, 1000) {
		t.Error("pixel height should shrink with distance")
	}
}

func TestScalesForRangeCoversBothEnds(t *testing.T) {
	// Focal length chosen so a 1.8m person at 20m is ~2x the 128px window
	// and at 60m is just under 1x -> need scales from 1.0 up to ~2.
	scales := ScalesForRange(1.8, 20, 60, 2850, 128, 1.1)
	if len(scales) == 0 {
		t.Fatal("no scales returned")
	}
	if scales[0] != 1.0 && scales[0] >= 1.1 {
		t.Errorf("first scale = %v, want near-native", scales[0])
	}
	last := scales[len(scales)-1]
	want := ScaleForDistance(1.8, 20, 2850, 128)
	if last < want/1.1 {
		t.Errorf("ladder tops out at %v, need about %v", last, want)
	}
	// Ascending order.
	for i := 1; i < len(scales); i++ {
		if scales[i] <= scales[i-1] {
			t.Fatalf("scales not ascending: %v", scales)
		}
	}
}

// Property: stopping distance is monotone increasing in speed, PRT and
// decreasing in deceleration.
func TestStoppingDistanceMonotone(t *testing.T) {
	f := func(v8, d8 uint8) bool {
		v := 10 + float64(v8%120) // 10..130 km/h
		dv := KmhToMs(v)
		base := StoppingDistance(dv, 1.5, 6.5)
		return StoppingDistance(dv+1, 1.5, 6.5) > base &&
			StoppingDistance(dv, 1.6, 6.5) > base &&
			StoppingDistance(dv, 1.5, 7.0) < base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReportString(t *testing.T) {
	s := Analyze(Scenario{SpeedKmh: 50}).String()
	if s == "" {
		t.Fatal("empty report string")
	}
}
