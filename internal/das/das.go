// Package das models the driver-assistance-system timing requirements that
// motivate the paper (Section 1): perception-brake reaction time, braking
// distance, total stopping distance, and the detection range / frame budget
// a real-time pedestrian detector must satisfy.
package das

import (
	"fmt"
	"math"
)

// NominalPRT is the nominal perception-brake reaction time in seconds used
// by the paper (after Green, 2000). Individual drivers range roughly from
// 0.7 s to 1.5 s or more.
const NominalPRT = 1.5

// NominalDeceleration is the vehicle deceleration in m/s^2 assumed by the
// paper for the braking-distance analysis.
const NominalDeceleration = 6.5

// KmhToMs converts a speed from km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts a speed from m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// BrakingDistance returns the distance in metres needed to stop from the
// given speed (m/s) under constant deceleration a (m/s^2): v^2 / (2a).
// It panics if a is not positive.
func BrakingDistance(speedMs, a float64) float64 {
	if a <= 0 {
		panic("das: deceleration must be positive")
	}
	return speedMs * speedMs / (2 * a)
}

// ReactionDistance returns the distance in metres travelled during the
// perception-brake reaction time prt (seconds) at the given speed (m/s).
func ReactionDistance(speedMs, prt float64) float64 { return speedMs * prt }

// StoppingDistance returns the total stopping distance: reaction distance
// plus braking distance.
func StoppingDistance(speedMs, prt, a float64) float64 {
	return ReactionDistance(speedMs, prt) + BrakingDistance(speedMs, a)
}

// Scenario bundles the parameters of one stopping-distance analysis.
type Scenario struct {
	SpeedKmh     float64 // vehicle speed in km/h
	PRT          float64 // perception-brake reaction time in seconds
	Deceleration float64 // braking deceleration in m/s^2
}

// Report is the computed outcome of a Scenario.
type Report struct {
	Scenario
	SpeedMs          float64 // speed in m/s
	BrakingDistance  float64 // metres
	ReactionDistance float64 // metres
	StoppingDistance float64 // metres
	TimeToStop       float64 // seconds from hazard onset to standstill
}

// Analyze computes the stopping-distance report for s. Zero-valued PRT or
// Deceleration fall back to the paper's nominal values.
func Analyze(s Scenario) Report {
	if s.PRT == 0 {
		s.PRT = NominalPRT
	}
	if s.Deceleration == 0 {
		s.Deceleration = NominalDeceleration
	}
	v := KmhToMs(s.SpeedKmh)
	bd := BrakingDistance(v, s.Deceleration)
	rd := ReactionDistance(v, s.PRT)
	return Report{
		Scenario:         s,
		SpeedMs:          v,
		BrakingDistance:  bd,
		ReactionDistance: rd,
		StoppingDistance: bd + rd,
		TimeToStop:       s.PRT + v/s.Deceleration,
	}
}

// String renders the report in the style of the paper's worked example.
func (r Report) String() string {
	return fmt.Sprintf("%.0f km/h: braking %.2f m, reaction %.2f m, stopping %.2f m (%.2f s)",
		r.SpeedKmh, r.BrakingDistance, r.ReactionDistance, r.StoppingDistance, r.TimeToStop)
}

// RequiredDetectionRange returns the detection range in metres a DAS needs
// so that a pedestrian first seen at that range can still be avoided: the
// stopping distance plus a safety margin (metres) plus the distance covered
// during the detector's own latency (seconds).
func RequiredDetectionRange(s Scenario, marginM, detectorLatencyS float64) float64 {
	r := Analyze(s)
	return r.StoppingDistance + marginM + r.SpeedMs*detectorLatencyS
}

// MaxDetectorLatency returns the largest detector latency (seconds) that
// keeps the required detection range within rangeM metres for scenario s,
// or 0 if even a zero-latency detector cannot satisfy it.
func MaxDetectorLatency(s Scenario, rangeM float64) float64 {
	r := Analyze(s)
	slack := rangeM - r.StoppingDistance
	if slack <= 0 || r.SpeedMs == 0 {
		return 0
	}
	return slack / r.SpeedMs
}

// FrameBudget describes what a given detector frame rate means in terms of
// distance travelled between consecutive frames.
type FrameBudget struct {
	FPS            float64 // detector frame rate
	FrameTime      float64 // seconds per frame
	MetresPerFrame float64 // distance the vehicle covers between frames
}

// BudgetAt returns the frame budget at the given vehicle speed (km/h) and
// detector frame rate. The frame rate must be positive and finite and the
// speed non-negative and finite; anything else — including NaN and ±Inf,
// which slip through ordinary <= comparisons — is rejected with an error
// rather than propagating a zero, negative, or NaN frame budget into
// deadline arithmetic (rt.Config derives context timeouts from FrameTime).
func BudgetAt(speedKmh, fps float64) (FrameBudget, error) {
	if math.IsNaN(fps) || math.IsInf(fps, 0) || fps <= 0 {
		return FrameBudget{}, fmt.Errorf("das: frame rate %g must be positive and finite", fps)
	}
	if math.IsNaN(speedKmh) || math.IsInf(speedKmh, 0) || speedKmh < 0 {
		return FrameBudget{}, fmt.Errorf("das: speed %g km/h must be non-negative and finite", speedKmh)
	}
	ft := 1 / fps
	return FrameBudget{FPS: fps, FrameTime: ft, MetresPerFrame: KmhToMs(speedKmh) * ft}, nil
}

// PixelHeightAtDistance returns the approximate pixel height of a pedestrian
// of the given physical height (metres) at the given distance (metres) for a
// pinhole camera with the given focal length in pixels. This links the
// paper's 20-60 m operating range to the multi-scale detection requirement:
// nearer pedestrians are taller than the 128-pixel training window and need
// coarser scales.
func PixelHeightAtDistance(personHeightM, distanceM, focalPx float64) float64 {
	if distanceM <= 0 {
		panic("das: distance must be positive")
	}
	return focalPx * personHeightM / distanceM
}

// ScaleForDistance returns the detector scale factor (relative to the 128 px
// training height) needed to detect a pedestrian of the given height at the
// given distance, i.e. pixelHeight / windowHeight. Values above 1 require
// down-scaling (image or feature pyramid).
func ScaleForDistance(personHeightM, distanceM, focalPx float64, windowHeightPx int) float64 {
	if windowHeightPx <= 0 {
		panic("das: window height must be positive")
	}
	return PixelHeightAtDistance(personHeightM, distanceM, focalPx) / float64(windowHeightPx)
}

// ScalesForRange returns the geometric ladder of scale factors (step apart,
// e.g. 1.1) needed to cover pedestrians of the given height between nearM
// and farM. The returned slice is sorted ascending and always includes the
// scale for farM (clamped to a minimum of 1.0, the native training scale).
func ScalesForRange(personHeightM, nearM, farM, focalPx float64, windowHeightPx int, step float64) []float64 {
	if step <= 1 {
		panic("das: scale step must exceed 1")
	}
	if nearM > farM {
		nearM, farM = farM, nearM
	}
	sNear := ScaleForDistance(personHeightM, nearM, focalPx, windowHeightPx)
	sFar := ScaleForDistance(personHeightM, farM, focalPx, windowHeightPx)
	if sFar < 1 {
		sFar = 1
	}
	if sNear < sFar {
		sNear = sFar
	}
	var scales []float64
	for s := sFar; s < sNear*math.Sqrt(step); s *= step {
		scales = append(scales, s)
	}
	return scales
}
