package featpyr

import (
	"testing"

	"repro/internal/hog"
)

func TestPyramidReleaseAndRebuild(t *testing.T) {
	base := randomMap(t, 320, 400, 31)
	p1, err := Build(base, 1.1, 8, 16, 4, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the level contents, then recycle the storage and rebuild:
	// pooled slabs must not change the numerical result.
	snap := make([][]float64, len(p1.Levels))
	for i, l := range p1.Levels {
		snap[i] = append([]float64(nil), l.Map.Feat...)
	}
	p1.Release()
	for i, l := range p1.Levels {
		if l.Map.Feat != nil {
			t.Fatalf("level %d still attached after Release", i)
		}
	}
	p2, err := Build(base, 1.1, 8, 16, 4, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Levels) != len(snap) {
		t.Fatalf("rebuild has %d levels, want %d", len(p2.Levels), len(snap))
	}
	for i, l := range p2.Levels {
		if len(l.Map.Feat) != len(snap[i]) {
			t.Fatalf("level %d length %d, want %d", i, len(l.Map.Feat), len(snap[i]))
		}
		for k, v := range l.Map.Feat {
			if v != snap[i][k] {
				t.Fatalf("level %d feature %d changed after pool reuse: %v != %v", i, k, v, snap[i][k])
			}
		}
	}
	p2.Release()
}

func TestReleaseMapNilSafe(t *testing.T) {
	ReleaseMap(nil)
	fm := &hog.FeatureMap{}
	ReleaseMap(fm) // already detached
	m := randomMap(t, 64, 128, 32)
	ReleaseMap(m)
	ReleaseMap(m) // double release is a no-op
}

func TestFixedScalerPooledScratch(t *testing.T) {
	base := randomMap(t, 256, 320, 33)
	s := NewFixedScaler()
	a, _, err := s.ScaleMapBy(base, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]float64(nil), a.Feat...)
	ReleaseMap(a)
	b, _, err := s.ScaleMapBy(base, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range b.Feat {
		if v != snap[k] {
			t.Fatalf("feature %d changed after pool reuse: %v != %v", k, v, snap[k])
		}
	}
}
