package featpyr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
)

func randomMap(t *testing.T, w, h int, seed int64) *hog.FeatureMap {
	t.Helper()
	img := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	fm, err := hog.Compute(img, hog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestScaleMapIdentity(t *testing.T) {
	fm := randomMap(t, 128, 128, 1)
	out, err := ScaleMap(fm, fm.BlocksX, fm.BlocksY, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fm.Feat {
		if math.Abs(out.Feat[i]-fm.Feat[i]) > 1e-12 {
			t.Fatalf("identity scale changed feature %d", i)
		}
	}
}

func TestScaleMapDims(t *testing.T) {
	fm := randomMap(t, 160, 320, 2) // 20x40 blocks
	out, err := ScaleMapBy(fm, 2, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out.BlocksX != 10 || out.BlocksY != 20 {
		t.Errorf("2x down: %dx%d, want 10x20", out.BlocksX, out.BlocksY)
	}
	if out.BlockLen != fm.BlockLen {
		t.Error("block length changed")
	}
	// 1.1 factor like the paper.
	out11, err := ScaleMapBy(fm, 1.1, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out11.BlocksX != 18 || out11.BlocksY != 36 {
		t.Errorf("1.1x down: %dx%d, want 18x36", out11.BlocksX, out11.BlocksY)
	}
}

func TestScaleMapErrors(t *testing.T) {
	fm := randomMap(t, 64, 128, 3)
	if _, err := ScaleMap(fm, 0, 5, ScaleConfig{}); err == nil {
		t.Error("zero target should error")
	}
	if _, err := ScaleMapBy(fm, -1, ScaleConfig{}); err == nil {
		t.Error("negative factor should error")
	}
	if _, err := ScaleMapBy(fm, 1000, ScaleConfig{}); err == nil {
		t.Error("factor that eliminates the map should error")
	}
}

func TestScaleMapValuesConvex(t *testing.T) {
	// Bilinear interpolation is a convex combination: outputs stay within
	// the input value range per channel.
	fm := randomMap(t, 128, 256, 4)
	out, err := ScaleMapBy(fm, 1.3, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range fm.Feat {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for i, v := range out.Feat {
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("output %d = %v outside input range [%v,%v]", i, v, lo, hi)
		}
	}
}

func TestNearestMatchesSourceBlocks(t *testing.T) {
	fm := randomMap(t, 128, 128, 5)
	out, err := ScaleMapBy(fm, 2, ScaleConfig{Nearest: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every output block must be an exact copy of some input block.
	for oy := 0; oy < out.BlocksY; oy++ {
		for ox := 0; ox < out.BlocksX; ox++ {
			b := out.Block(ox, oy)
			found := false
		search:
			for iy := 0; iy < fm.BlocksY; iy++ {
				for ix := 0; ix < fm.BlocksX; ix++ {
					src := fm.Block(ix, iy)
					same := true
					for k := range b {
						if b[k] != src[k] {
							same = false
							break
						}
					}
					if same {
						found = true
						break search
					}
				}
			}
			if !found {
				t.Fatalf("output block (%d,%d) is not a copy of any input block", ox, oy)
			}
		}
	}
}

func TestRenormalizeRestoresUnitNorm(t *testing.T) {
	fm := randomMap(t, 128, 256, 6)
	out, err := ScaleMapBy(fm, 1.4, ScaleConfig{Renormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	for by := 0; by < out.BlocksY; by++ {
		for bx := 0; bx < out.BlocksX; bx++ {
			var ss float64
			for _, v := range out.Block(bx, by) {
				ss += v * v
			}
			n := math.Sqrt(ss)
			if n > 1.0+1e-9 {
				t.Fatalf("renormalized block (%d,%d) norm %v > 1", bx, by, n)
			}
		}
	}
}

func TestLambdaGain(t *testing.T) {
	fm := randomMap(t, 128, 256, 7)
	plain, err := ScaleMapBy(fm, 2, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := ScaleMapBy(fm, 2, ScaleConfig{Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Down-sampling by 2 with lambda 1 multiplies features by 2^-(-1)?
	// gain = s^-lambda where s = in/out = 2 -> gain = 0.5.
	for i := range plain.Feat {
		if plain.Feat[i] == 0 {
			continue
		}
		ratio := boosted.Feat[i] / plain.Feat[i]
		if math.Abs(ratio-0.5) > 1e-9 {
			t.Fatalf("lambda gain = %v, want 0.5", ratio)
		}
	}
}

// TestFeatureScalingApproximatesImageScaling is the core premise of the
// paper: HOG(downscale(image)) ~= downscale(HOG(image)). The two are not
// identical (that is the approximation being traded), but for modest
// factors the cosine similarity of window descriptors must be high.
func TestFeatureScalingApproximatesImageScaling(t *testing.T) {
	cfg := hog.DefaultConfig()
	// A structured image (not noise): blurred random blobs.
	img := imgproc.NewGray(128, 256)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		x, y := rng.Intn(128), rng.Intn(256)
		w, h := rng.Intn(30)+10, rng.Intn(60)+10
		imgproc.FillEllipse(img, geom.XYWH(x, y, w, h), uint8(rng.Intn(200)+55))
	}
	img = imgproc.GaussianBlur(img, 1.5)

	// Thresholds taper with scale: the approximation degrades as the factor
	// grows, which is exactly the paper's observation that feature scaling
	// stops winning beyond ~1.5.
	thresholds := map[float64]float64{1.1: 0.83, 1.2: 0.81, 1.3: 0.78, 1.5: 0.70}
	for _, factor := range []float64{1.1, 1.2, 1.3, 1.5} {
		// Path A: downscale the image, then extract features.
		small := imgproc.Resize(img, int(math.Round(128/factor)), int(math.Round(256/factor)), imgproc.Bilinear)
		fmA, err := hog.Compute(small, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Path B: extract features, then downscale the feature map to the
		// same block grid.
		fmFull, err := hog.Compute(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmB, err := ScaleMap(fmFull, fmA.BlocksX, fmA.BlocksY, ScaleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		cos := cosine(fmA.Feat, fmB.Feat)
		if cos < thresholds[factor] {
			t.Errorf("factor %v: cosine(HOG(img down), HOG down) = %.4f, want >= %.2f",
				factor, cos, thresholds[factor])
		}
	}
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func TestBuildPyramidLevels(t *testing.T) {
	fm := randomMap(t, 512, 512, 9) // 64x64 blocks
	p, err := Build(fm, 1.1, 8, 16, 0, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Levels) < 10 {
		t.Fatalf("only %d levels from 64x64 down to 8x16", len(p.Levels))
	}
	if p.Levels[0].Scale != 1 {
		t.Error("level 0 must be native scale")
	}
	for i := 1; i < len(p.Levels); i++ {
		l, prev := p.Levels[i], p.Levels[i-1]
		if l.Scale <= prev.Scale {
			t.Fatal("scales must increase")
		}
		if l.Map.BlocksX > prev.Map.BlocksX || l.Map.BlocksY > prev.Map.BlocksY {
			t.Fatal("maps must shrink")
		}
		if l.Map.BlocksX < 8 || l.Map.BlocksY < 16 {
			t.Fatal("level smaller than the window was kept")
		}
	}
	// maxLevels cap works.
	p2, err := Build(fm, 1.1, 8, 16, 2, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Levels) != 2 {
		t.Errorf("maxLevels=2 gave %d levels", len(p2.Levels))
	}
	// Base smaller than window errors.
	small := randomMap(t, 64, 64, 10) // 8x8 blocks < 8x16 window
	if _, err := Build(small, 1.1, 8, 16, 0, ScaleConfig{}); err == nil {
		t.Error("under-window base should error")
	}
	if _, err := Build(fm, 1.0, 8, 16, 0, ScaleConfig{}); err == nil {
		t.Error("step 1.0 should error")
	}
}

func TestBuildChainedMatchesDirectApproximately(t *testing.T) {
	fm := randomMap(t, 256, 512, 11)
	direct, err := Build(fm, 1.2, 8, 16, 4, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	chained, err := BuildChained(fm, 1.2, 8, 16, 4, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Levels) != len(chained.Levels) {
		t.Fatalf("level count differs: %d vs %d", len(direct.Levels), len(chained.Levels))
	}
	// Level 1 should agree closely (one interpolation in both cases);
	// later levels drift but remain correlated.
	for i := 1; i < len(direct.Levels); i++ {
		d, c := direct.Levels[i].Map, chained.Levels[i].Map
		if d.BlocksX != c.BlocksX || d.BlocksY != c.BlocksY {
			// Chained rounding can differ by one block; tolerate but note.
			t.Logf("level %d size: direct %dx%d vs chained %dx%d",
				i, d.BlocksX, d.BlocksY, c.BlocksX, c.BlocksY)
			continue
		}
		cos := cosine(d.Feat, c.Feat)
		if cos < 0.95 {
			t.Errorf("level %d chained/direct cosine %.4f < 0.95", i, cos)
		}
	}
}

func TestFixedScalerMatchesFloat(t *testing.T) {
	fm := randomMap(t, 128, 256, 12)
	fs := NewFixedScaler()
	for _, factor := range []float64{1.1, 1.5, 2.0} {
		qout, stats, err := fs.ScaleMapBy(fm, factor)
		if err != nil {
			t.Fatal(err)
		}
		fout, err := ScaleMapBy(fm, factor, ScaleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if qout.BlocksX != fout.BlocksX || qout.BlocksY != fout.BlocksY {
			t.Fatalf("factor %v: dims differ", factor)
		}
		var maxErr float64
		for i := range qout.Feat {
			if e := math.Abs(qout.Feat[i] - fout.Feat[i]); e > maxErr {
				maxErr = e
			}
		}
		// 8-bit weights + 16-bit features: error bounded by a few weight LSBs
		// times the feature magnitude (features <= ~0.4).
		if maxErr > 0.02 {
			t.Errorf("factor %v: max fixed/float error %v > 0.02", factor, maxErr)
		}
		if stats.OutputBlocks != qout.BlocksX*qout.BlocksY {
			t.Error("stats block count wrong")
		}
		if stats.MaxAdders <= 0 || stats.Phases <= 0 {
			t.Errorf("implausible stats %+v", stats)
		}
	}
}

func TestFixedScalerErrors(t *testing.T) {
	fm := randomMap(t, 64, 128, 13)
	fs := NewFixedScaler()
	if _, _, err := fs.ScaleMap(fm, 0, 1); err == nil {
		t.Error("zero target should error")
	}
	if _, _, err := fs.ScaleMapBy(fm, 0); err == nil {
		t.Error("zero factor should error")
	}
	bad := &FixedScaler{FeatFmt: NewFixedScaler().FeatFmt, WeightFrac: 0}
	if _, _, err := bad.ScaleMap(fm, 4, 8); err == nil {
		t.Error("invalid weight frac should error")
	}
}

func TestFixedScalerIdentityIsLossless(t *testing.T) {
	// At identity scale every phase weight is exactly 1: the only error is
	// the initial feature quantization.
	fm := randomMap(t, 64, 128, 14)
	fs := NewFixedScaler()
	out, _, err := fs.ScaleMap(fm, fm.BlocksX, fm.BlocksY)
	if err != nil {
		t.Fatal(err)
	}
	eps := fs.FeatFmt.Eps()
	for i := range fm.Feat {
		if math.Abs(out.Feat[i]-fm.Feat[i]) > eps {
			t.Fatalf("identity fixed scale error %v > one LSB %v", math.Abs(out.Feat[i]-fm.Feat[i]), eps)
		}
	}
}

// Property: bilinear feature scaling is linear — scaling a feature map
// multiplied by a constant equals the scaled map multiplied by the same
// constant.
func TestScaleMapLinearityProperty(t *testing.T) {
	fm := randomMap(t, 128, 128, 40)
	f := func(gain8 uint8) bool {
		gain := 0.1 + float64(gain8%40)/10
		scaled := fm.Clone()
		for i := range scaled.Feat {
			scaled.Feat[i] *= gain
		}
		a, err := ScaleMapBy(scaled, 1.3, ScaleConfig{})
		if err != nil {
			return false
		}
		b, err := ScaleMapBy(fm, 1.3, ScaleConfig{})
		if err != nil {
			return false
		}
		for i := range a.Feat {
			if math.Abs(a.Feat[i]-gain*b.Feat[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: resampling preserves the mean feature value approximately (the
// kernel is a partition of unity away from borders).
func TestScaleMapMeanPreserved(t *testing.T) {
	fm := randomMap(t, 256, 256, 41)
	out, err := ScaleMapBy(fm, 1.25, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	mi, mo := mean(fm.Feat), mean(out.Feat)
	if math.Abs(mi-mo) > 0.05*mi {
		t.Errorf("mean drifted: %v -> %v", mi, mo)
	}
}

func TestScaleMapRatioRejectsBadRatios(t *testing.T) {
	fm := randomMap(t, 64, 128, 42)
	if _, err := ScaleMapRatio(fm, 8, 16, 0, 1, ScaleConfig{}); err == nil {
		t.Error("zero ratio should error")
	}
	if _, _, err := NewFixedScaler().ScaleMapRatio(fm, 8, 16, -1, 1); err == nil {
		t.Error("negative ratio should error in the fixed scaler too")
	}
}

// TestBlockNormCapBoundsChainedScaling validates the cascade's per-level
// norm bound empirically: chaining the fixed scaler on a real normalized
// HOG map never produces a block whose L2 norm exceeds BlockNormCap for
// that chain depth. The cap's structure is also pinned: exactly 1 at level
// zero (the exact-mode base case) and monotonically non-decreasing with
// depth (the recurrence only ever adds excess).
func TestBlockNormCapBoundsChainedScaling(t *testing.T) {
	fm := randomMap(t, 160, 320, 77)
	fs := NewFixedScaler()
	bl := fm.BlockLen
	if cap0 := fs.BlockNormCap(0, bl); cap0 != 1 {
		t.Fatalf("level-0 cap %v, want exactly 1", cap0)
	}
	if cap := fs.BlockNormCap(-3, bl); cap != 1 {
		t.Errorf("negative level cap %v, want 1", cap)
	}
	if cap := fs.BlockNormCap(2, 0); cap != 1 {
		t.Errorf("degenerate blockLen cap %v, want 1", cap)
	}
	prev := 1.0
	cur := fm
	for level := 1; level <= 4; level++ {
		out, _, err := fs.ScaleMapBy(cur, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		cur = out
		cap := fs.BlockNormCap(level, bl)
		if cap < prev {
			t.Fatalf("cap decreased: level %d cap %v < level %d cap %v", level, cap, level-1, prev)
		}
		prev = cap
		var maxNorm float64
		for b := 0; b+bl <= len(cur.Feat); b += bl {
			var ss float64
			for _, v := range cur.Feat[b : b+bl] {
				ss += v * v
			}
			if n := math.Sqrt(ss); n > maxNorm {
				maxNorm = n
			}
		}
		if maxNorm > cap {
			t.Fatalf("level %d: measured block norm %v exceeds cap %v", level, maxNorm, cap)
		}
		// The cap is an error model, not a giveaway: for the default 8-bit
		// weights it stays within a few percent of 1.
		if cap > 1.1 {
			t.Errorf("level %d cap %v implausibly loose for the default formats", level, cap)
		}
	}
}
