package featpyr

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fixed"
	"repro/internal/hog"
)

// qfPool recycles the quantized-input scratch of ScaleMapRatio; the slice is
// only live for the duration of one call.
var qfPool sync.Pool // holds *[]int64

func getQF(n int) []int64 {
	if p, ok := qfPool.Get().(*[]int64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int64, n)
}

// FixedScaler is a bit-accurate software model of the hardware's
// shift-and-add feature down-scaling module. Features are stored in the
// configured fixed-point format; each output block is a bilinear
// combination of four input blocks whose weights are quantized to WeightFrac
// fractional bits and applied through canonical-signed-digit shift-and-add
// networks — no multipliers, exactly as in the FPGA implementation
// ("Scaling modules are implemented by shift-and-add instead of multiplier",
// Section 5).
type FixedScaler struct {
	// FeatFmt is the storage format of feature words (default Q0.15, a
	// 16-bit word for features in [0, 1)).
	FeatFmt fixed.Format
	// WeightFrac is the fractional precision of the interpolation
	// coefficients (default 8 bits).
	WeightFrac int
}

// NewFixedScaler returns a scaler with the paper-plausible default widths:
// 16-bit features and 8-bit interpolation coefficients.
func NewFixedScaler() *FixedScaler {
	return &FixedScaler{FeatFmt: fixed.Q(0, 15), WeightFrac: 8}
}

// adderEstimate reports how many hardware adders one output sample costs:
// the shift-add networks for the four coefficients plus the 3-adder
// combination tree.
func adderEstimate(w00, w10, w01, w11 *fixed.ShiftAdd) int {
	return w00.Adders() + w10.Adders() + w01.Adders() + w11.Adders() + 3
}

// ScaleStats reports resource/accuracy bookkeeping for one ScaleMap call.
type ScaleStats struct {
	OutputBlocks int // number of blocks produced
	MaxAdders    int // widest shift-add network cost over all phases
	Phases       int // distinct interpolation phases encountered
}

// ScaleMap resamples fm to outBX x outBY using the fixed-point datapath.
// The returned map contains the dequantized fixed-point results, so it can
// be compared directly against the float scaler; stats describe the
// hardware cost.
func (s *FixedScaler) ScaleMap(fm *hog.FeatureMap, outBX, outBY int) (*hog.FeatureMap, *ScaleStats, error) {
	if outBX < 1 || outBY < 1 {
		return nil, nil, fmt.Errorf("featpyr: invalid target grid %dx%d", outBX, outBY)
	}
	return s.ScaleMapRatio(fm, outBX, outBY,
		float64(fm.BlocksX)/float64(outBX), float64(fm.BlocksY)/float64(outBY))
}

// ScaleMapRatio is ScaleMap with explicit source-per-target sampling ratios
// (see featpyr.ScaleMapRatio for when the grid ratio is not the content
// ratio).
func (s *FixedScaler) ScaleMapRatio(fm *hog.FeatureMap, outBX, outBY int, rx, ry float64) (*hog.FeatureMap, *ScaleStats, error) {
	if outBX < 1 || outBY < 1 {
		return nil, nil, fmt.Errorf("featpyr: invalid target grid %dx%d", outBX, outBY)
	}
	if rx <= 0 || ry <= 0 {
		return nil, nil, fmt.Errorf("featpyr: non-positive sampling ratios %g, %g", rx, ry)
	}
	if err := s.FeatFmt.Validate(); err != nil {
		return nil, nil, err
	}
	if s.WeightFrac < 1 || s.WeightFrac > 30 {
		return nil, nil, fmt.Errorf("featpyr: weight frac %d out of range", s.WeightFrac)
	}
	// Quantize the whole input map once (in hardware the features already
	// arrive in this format from the HOG normalizer).
	qf := getQF(len(fm.Feat))
	defer func() {
		buf := qf[:0]
		qfPool.Put(&buf)
	}()
	for i, v := range fm.Feat {
		qf[i] = s.FeatFmt.FromFloat(v)
	}
	// Every element of the pooled output is assigned below.
	out := newPooledMap(outBX, outBY, fm)
	stats := &ScaleStats{OutputBlocks: outBX * outBY}

	sx := rx
	sy := ry
	n := fm.BlockLen
	// Cache shift-add networks per quantized phase pair: the hardware has
	// one network per phase, reused across the row/column.
	type phaseKey struct{ ax, ay int64 }
	cache := map[phaseKey][4]*fixed.ShiftAdd{}
	one := int64(1) << uint(s.WeightFrac)

	block := func(bx, by int) []int64 {
		bx = clampi(bx, 0, fm.BlocksX-1)
		by = clampi(by, 0, fm.BlocksY-1)
		i := (by*fm.BlocksX + bx) * n
		return qf[i : i+n]
	}

	for oy := 0; oy < outBY; oy++ {
		fy := (float64(oy)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		qay := int64(math.Floor((fy-float64(y0))*float64(one) + 0.5))
		for ox := 0; ox < outBX; ox++ {
			fx := (float64(ox)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			qax := int64(math.Floor((fx-float64(x0))*float64(one) + 0.5))

			key := phaseKey{qax, qay}
			nets, ok := cache[key]
			if !ok {
				toF := func(q int64) float64 { return float64(q) / float64(one) }
				ax, ay := toF(qax), toF(qay)
				nets = [4]*fixed.ShiftAdd{
					fixed.NewShiftAdd((1-ax)*(1-ay), s.WeightFrac),
					fixed.NewShiftAdd(ax*(1-ay), s.WeightFrac),
					fixed.NewShiftAdd((1-ax)*ay, s.WeightFrac),
					fixed.NewShiftAdd(ax*ay, s.WeightFrac),
				}
				cache[key] = nets
				if a := adderEstimate(nets[0], nets[1], nets[2], nets[3]); a > stats.MaxAdders {
					stats.MaxAdders = a
				}
			}

			c00 := block(x0, y0)
			c10 := block(x0+1, y0)
			c01 := block(x0, y0+1)
			c11 := block(x0+1, y0+1)
			dst := out.Block(ox, oy)
			for k := 0; k < n; k++ {
				acc := nets[0].Apply(c00[k]) + nets[1].Apply(c10[k]) +
					nets[2].Apply(c01[k]) + nets[3].Apply(c11[k])
				dst[k] = s.FeatFmt.ToFloat(s.FeatFmt.Sat(acc))
			}
		}
	}
	stats.Phases = len(cache)
	return out, stats, nil
}

// BlockNormCap bounds the L2 norm of any block vector of a map produced by
// `level` chained applications of this scaler to a base map whose blocks
// have L2 norm <= 1 (the HOG normalizer's guarantee). The cascade's exact
// rejection test needs this: its Cauchy-Schwarz bound assumes unit block
// norms, and the fixed-point datapath can push a block slightly past 1 —
// the four quantized bilinear weights sum to at most 1 + 2^-(WeightFrac-1),
// and each output component absorbs input quantization plus four
// round-shifts (< 3 feature ulps combined). Per level the norm recurrence
// is therefore cap' = (1+wq)*cap + 3*sqrt(blockLen)*ulp; saturation clamps
// every component to the format range, so sqrt(blockLen)*max is a hard
// ceiling. level 0 (an unscaled map) returns exactly 1.
func (s *FixedScaler) BlockNormCap(level, blockLen int) float64 {
	if level <= 0 || blockLen < 1 {
		return 1
	}
	wq := math.Ldexp(1, -(s.WeightFrac - 1))
	add := 3 * math.Sqrt(float64(blockLen)) * s.FeatFmt.Eps()
	cap := 1.0
	for i := 0; i < level; i++ {
		cap = (1+wq)*cap + add
	}
	if hard := math.Sqrt(float64(blockLen)) * s.FeatFmt.ToFloat(s.FeatFmt.Max()); cap > hard {
		cap = hard
	}
	return cap
}

// ScaleMapBy is the factor-based variant of ScaleMap.
func (s *FixedScaler) ScaleMapBy(fm *hog.FeatureMap, factor float64) (*hog.FeatureMap, *ScaleStats, error) {
	if factor <= 0 {
		return nil, nil, fmt.Errorf("featpyr: non-positive scale factor %g", factor)
	}
	outBX := int(math.Round(float64(fm.BlocksX) / factor))
	outBY := int(math.Round(float64(fm.BlocksY) / factor))
	if outBX < 1 || outBY < 1 {
		return nil, nil, fmt.Errorf("featpyr: factor %g shrinks %dx%d map away", factor, fm.BlocksX, fm.BlocksY)
	}
	return s.ScaleMap(fm, outBX, outBY)
}
