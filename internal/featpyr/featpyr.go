// Package featpyr implements the paper's central contribution: multi-scale
// detection by down-sampling the *normalized HOG feature map* instead of
// the input image. Re-running gradient and histogram extraction per scale
// (the conventional image pyramid) is the most expensive stage of the
// detection chain; resampling the feature map moves pyramid construction
// after feature extraction, where it costs a small fraction as much
// (Section 4 of the paper).
//
// Two scaler implementations are provided:
//
//   - the float bilinear scaler, used for the algorithmic analysis
//     (Table 1, Figure 4), and
//   - FixedScaler, a bit-accurate model of the hardware's shift-and-add
//     scaling modules (Section 5, Figure 6), which quantizes features and
//     interpolation coefficients to fixed point and multiplies using CSD
//     shift-add networks only.
package featpyr

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/hog"
	"repro/internal/obs"
)

// featPool recycles the per-level feature slabs of pyramid construction.
// Every level of every frame allocates one large float64 slice; at video
// rate that is the dominant steady-state garbage of the detector, so levels
// released via Pyramid.Release or ReleaseMap are reused for the next frame.
var featPool sync.Pool // holds *[]float64

// getFeat returns an n-element slice, recycled when the pool has one large
// enough. Callers must overwrite every element; recycled contents are stale.
func getFeat(n int) []float64 {
	if p, ok := featPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

// newPooledMap returns a feature map shaped like the given grid whose storage
// comes from the scratch pool.
func newPooledMap(bx, by int, src *hog.FeatureMap) *hog.FeatureMap {
	return &hog.FeatureMap{
		BlocksX:  bx,
		BlocksY:  by,
		BlockLen: src.BlockLen,
		Feat:     getFeat(bx * by * src.BlockLen),
		Cfg:      src.Cfg,
	}
}

// ReleaseMap returns fm's feature storage to the construction scratch pool
// and detaches it from fm. Call it only when nothing aliases the map any
// more (slices returned by Block and Window alias it). Releasing nil or an
// already-released map is a no-op.
func ReleaseMap(fm *hog.FeatureMap) {
	if fm == nil || fm.Feat == nil {
		return
	}
	buf := fm.Feat[:0]
	fm.Feat = nil
	featPool.Put(&buf)
}

// clonePooled is hog.FeatureMap.Clone with pool-backed storage.
func clonePooled(fm *hog.FeatureMap) *hog.FeatureMap {
	c := *fm
	c.Feat = getFeat(len(fm.Feat))
	copy(c.Feat, fm.Feat)
	return &c
}

// ScaleConfig controls feature-map resampling.
type ScaleConfig struct {
	// Nearest selects nearest-neighbour resampling instead of bilinear.
	Nearest bool
	// Renormalize re-applies the block normalization of the map's HOG
	// config after resampling. Interpolation of unit-norm blocks yields
	// slightly sub-unit norms; renormalization restores the invariant.
	// The paper's hardware does not renormalize (it would need another
	// divider stage), so the default is off.
	Renormalize bool
	// Lambda applies the Dollar et al. power-law channel correction: when
	// down-sampling by factor s, features are multiplied by s^-Lambda.
	// Zero (the paper's choice) disables the correction.
	Lambda float64
	// LevelTimer, if non-nil, receives the wall time of every resample
	// (one observation per pyramid level built through ScaleMapRatio).
	// Recording is lock-free and allocation-free; nil disables it.
	LevelTimer *obs.Histogram
}

// ScaleMap resamples fm to an outBX x outBY block grid. Factors are implied
// by the dimension ratio; use ScaleMapBy for an explicit scale factor or
// ScaleMapRatio when the true content ratio differs from the integer grid
// ratio. The feature channel count and HOG configuration carry over
// unchanged.
func ScaleMap(fm *hog.FeatureMap, outBX, outBY int, cfg ScaleConfig) (*hog.FeatureMap, error) {
	if outBX < 1 || outBY < 1 {
		return nil, fmt.Errorf("featpyr: invalid target grid %dx%d", outBX, outBY)
	}
	return ScaleMapRatio(fm, outBX, outBY,
		float64(fm.BlocksX)/float64(outBX), float64(fm.BlocksY)/float64(outBY), cfg)
}

// ScaleMapRatio resamples fm to an outBX x outBY grid with explicit
// source-per-target sampling ratios. This matters when the source content
// extends past the integer cell grid: a 70-pixel-wide window has 8 whole
// cells but 70/8 = 8.75 cells of content, so mapping it onto an 8-block
// target needs rx = 8.75/8, not the identity the grid dimensions imply.
// Source samples beyond the grid clamp to the border (those pixels were
// dropped during cell binning).
func ScaleMapRatio(fm *hog.FeatureMap, outBX, outBY int, rx, ry float64, cfg ScaleConfig) (*hog.FeatureMap, error) {
	if outBX < 1 || outBY < 1 {
		return nil, fmt.Errorf("featpyr: invalid target grid %dx%d", outBX, outBY)
	}
	if rx <= 0 || ry <= 0 {
		return nil, fmt.Errorf("featpyr: non-positive sampling ratios %g, %g", rx, ry)
	}
	t0 := time.Now()
	// Every element of the pooled slab is overwritten below (each output
	// block is fully assigned), so no zeroing pass is needed.
	out := newPooledMap(outBX, outBY, fm)
	sx := rx
	sy := ry
	n := fm.BlockLen
	for oy := 0; oy < outBY; oy++ {
		fy := (float64(oy)+0.5)*sy - 0.5
		for ox := 0; ox < outBX; ox++ {
			fx := (float64(ox)+0.5)*sx - 0.5
			dst := out.Block(ox, oy)
			if cfg.Nearest {
				bx := clampi(int(math.Round(fx)), 0, fm.BlocksX-1)
				by := clampi(int(math.Round(fy)), 0, fm.BlocksY-1)
				copy(dst, fm.Block(bx, by))
				continue
			}
			x0 := int(math.Floor(fx))
			y0 := int(math.Floor(fy))
			ax := fx - float64(x0)
			ay := fy - float64(y0)
			c00 := fm.Block(clampi(x0, 0, fm.BlocksX-1), clampi(y0, 0, fm.BlocksY-1))
			c10 := fm.Block(clampi(x0+1, 0, fm.BlocksX-1), clampi(y0, 0, fm.BlocksY-1))
			c01 := fm.Block(clampi(x0, 0, fm.BlocksX-1), clampi(y0+1, 0, fm.BlocksY-1))
			c11 := fm.Block(clampi(x0+1, 0, fm.BlocksX-1), clampi(y0+1, 0, fm.BlocksY-1))
			w00 := (1 - ax) * (1 - ay)
			w10 := ax * (1 - ay)
			w01 := (1 - ax) * ay
			w11 := ax * ay
			for k := 0; k < n; k++ {
				dst[k] = w00*c00[k] + w10*c10[k] + w01*c01[k] + w11*c11[k]
			}
		}
	}
	applyLambda(out, sx, sy, cfg.Lambda)
	if cfg.Renormalize {
		renormalize(out)
	}
	cfg.LevelTimer.Observe(time.Since(t0))
	return out, nil
}

// ScaleMapBy resamples fm by the given scale factor: factor > 1 shrinks the
// map by that factor (detecting objects factor times larger than the
// training window), mirroring image down-sampling by the same factor.
func ScaleMapBy(fm *hog.FeatureMap, factor float64, cfg ScaleConfig) (*hog.FeatureMap, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("featpyr: non-positive scale factor %g", factor)
	}
	outBX := int(math.Round(float64(fm.BlocksX) / factor))
	outBY := int(math.Round(float64(fm.BlocksY) / factor))
	if outBX < 1 || outBY < 1 {
		return nil, fmt.Errorf("featpyr: factor %g shrinks %dx%d map away", factor, fm.BlocksX, fm.BlocksY)
	}
	return ScaleMap(fm, outBX, outBY, cfg)
}

func applyLambda(fm *hog.FeatureMap, sx, sy, lambda float64) {
	if lambda == 0 {
		return
	}
	s := math.Sqrt(sx * sy)
	gain := math.Pow(s, -lambda)
	for i := range fm.Feat {
		fm.Feat[i] *= gain
	}
}

// renormalize re-applies L2 normalization to every block of fm in place
// (the Renormalize option; uses the map's configured epsilon).
func renormalize(fm *hog.FeatureMap) {
	eps := fm.Cfg.Epsilon
	if eps <= 0 {
		eps = 1e-3
	}
	for by := 0; by < fm.BlocksY; by++ {
		for bx := 0; bx < fm.BlocksX; bx++ {
			b := fm.Block(bx, by)
			var ss float64
			for _, v := range b {
				ss += v * v
			}
			inv := 1 / math.Sqrt(ss+eps*eps)
			for i := range b {
				b[i] *= inv
			}
		}
	}
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Level is one scale of a feature pyramid.
type Level struct {
	// Scale is the detection scale of this level relative to the base map:
	// a window matched at Scale s corresponds to an object s times larger
	// than the training window in the original image.
	Scale float64
	Map   *hog.FeatureMap
}

// Pyramid is a HOG feature pyramid: level 0 is the base feature map at the
// native scale, later levels are progressively down-sampled feature maps.
type Pyramid struct {
	Levels []Level
}

// Release returns every level's feature storage to the construction scratch
// pool so the next pyramid build can reuse it. Call it once scanning is done
// and nothing aliases the level maps; the pyramid must not be used after.
func (p *Pyramid) Release() {
	for i := range p.Levels {
		ReleaseMap(p.Levels[i].Map)
	}
}

// Build constructs a feature pyramid from the base map. Each level i holds
// the base map down-sampled by step^i. Construction stops when a level
// would be smaller than minBX x minBY blocks (the window size) or after
// maxLevels levels (0 means unlimited). Every level is resampled directly
// from the base map to avoid compounding interpolation error; the
// hardware's chained scaler (Figure 6) is modelled separately in
// BuildChained and in package hw/scaler.
func Build(base *hog.FeatureMap, step float64, minBX, minBY, maxLevels int, cfg ScaleConfig) (*Pyramid, error) {
	return BuildCtx(context.Background(), base, step, minBX, minBY, maxLevels, cfg)
}

// BuildCtx is Build with cooperative cancellation: construction checks ctx
// between levels and returns ctx.Err() once it is cancelled, releasing any
// levels already built back to the scratch pool.
func BuildCtx(ctx context.Context, base *hog.FeatureMap, step float64, minBX, minBY, maxLevels int, cfg ScaleConfig) (*Pyramid, error) {
	if step <= 1 {
		return nil, fmt.Errorf("featpyr: pyramid step %g must exceed 1", step)
	}
	if maxLevels <= 0 {
		maxLevels = math.MaxInt32
	}
	p := &Pyramid{}
	for i := 0; i < maxLevels; i++ {
		if err := ctx.Err(); err != nil {
			p.Release()
			return nil, err
		}
		s := math.Pow(step, float64(i))
		outBX := int(math.Round(float64(base.BlocksX) / s))
		outBY := int(math.Round(float64(base.BlocksY) / s))
		if outBX < minBX || outBY < minBY {
			break
		}
		var m *hog.FeatureMap
		var err error
		if i == 0 {
			m = clonePooled(base)
		} else {
			m, err = ScaleMap(base, outBX, outBY, cfg)
			if err != nil {
				return nil, err
			}
		}
		p.Levels = append(p.Levels, Level{Scale: s, Map: m})
	}
	if len(p.Levels) == 0 {
		return nil, fmt.Errorf("featpyr: base map %dx%d smaller than window %dx%d",
			base.BlocksX, base.BlocksY, minBX, minBY)
	}
	return p, nil
}

// BuildChained constructs the pyramid the way the hardware does (Figure 6):
// each level is resampled from the *previous* level rather than from the
// base, so interpolation error compounds down the chain but each scaler
// only ever handles the fixed step ratio — which is what makes the
// shift-and-add implementation cheap.
func BuildChained(base *hog.FeatureMap, step float64, minBX, minBY, maxLevels int, cfg ScaleConfig) (*Pyramid, error) {
	return BuildChainedCtx(context.Background(), base, step, minBX, minBY, maxLevels, cfg)
}

// BuildChainedCtx is BuildChained with cooperative cancellation (see
// BuildCtx).
func BuildChainedCtx(ctx context.Context, base *hog.FeatureMap, step float64, minBX, minBY, maxLevels int, cfg ScaleConfig) (*Pyramid, error) {
	if step <= 1 {
		return nil, fmt.Errorf("featpyr: pyramid step %g must exceed 1", step)
	}
	if maxLevels <= 0 {
		maxLevels = math.MaxInt32
	}
	p := &Pyramid{Levels: []Level{{Scale: 1, Map: clonePooled(base)}}}
	prev := base
	for i := 1; i < maxLevels; i++ {
		if err := ctx.Err(); err != nil {
			p.Release()
			return nil, err
		}
		outBX := int(math.Round(float64(prev.BlocksX) / step))
		outBY := int(math.Round(float64(prev.BlocksY) / step))
		if outBX < minBX || outBY < minBY {
			break
		}
		m, err := ScaleMap(prev, outBX, outBY, cfg)
		if err != nil {
			return nil, err
		}
		p.Levels = append(p.Levels, Level{Scale: math.Pow(step, float64(i)), Map: m})
		prev = m
	}
	if base.BlocksX < minBX || base.BlocksY < minBY {
		return nil, fmt.Errorf("featpyr: base map %dx%d smaller than window %dx%d",
			base.BlocksX, base.BlocksY, minBX, minBY)
	}
	return p, nil
}
