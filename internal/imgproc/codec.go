package imgproc

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// This file implements the netpbm codecs (PGM for grayscale frames, PPM for
// annotated color output). Binary (P5/P6) and ASCII (P2/P3) variants are
// both readable; writers emit the binary forms.

// WritePGM writes g to w in binary PGM (P5) format.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePGMFile writes g to the named file in binary PGM format.
func WritePGMFile(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePGM(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePPM writes c to w in binary PPM (P6) format.
func WritePPM(w io.Writer, c *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", c.W, c.H); err != nil {
		return err
	}
	if _, err := bw.Write(c.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePPMFile writes c to the named file in binary PPM format.
func WritePPMFile(path string, c *RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePPM(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPGM reads a PGM image (P2 or P5) from r. Images with maxval > 255 are
// rejected.
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgproc: reading PGM magic: %w", err)
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("imgproc: not a PGM file (magic %q)", magic)
	}
	w, h, maxv, err := pnmHeader(br)
	if err != nil {
		return nil, err
	}
	g := NewGray(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, g.Pix); err != nil {
			return nil, fmt.Errorf("imgproc: short PGM pixel data: %w", err)
		}
		if err := rescaleSamples(g.Pix, maxv); err != nil {
			return nil, fmt.Errorf("imgproc: PGM pixel data: %w", err)
		}
	} else {
		for i := range g.Pix {
			v, err := pnmInt(br)
			if err != nil {
				return nil, fmt.Errorf("imgproc: PGM pixel %d: %w", i, err)
			}
			if v > maxv {
				return nil, fmt.Errorf("imgproc: PGM pixel %d: sample %d exceeds maxval %d", i, v, maxv)
			}
			g.Pix[i] = uint8(v * 255 / maxv)
		}
	}
	return g, nil
}

// ReadPGMFile reads the named PGM file.
func ReadPGMFile(path string) (*Gray, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPGM(f)
}

// ReadPPM reads a PPM image (P3 or P6) from r. Images with maxval > 255 are
// rejected.
func ReadPPM(r io.Reader) (*RGB, error) {
	br := bufio.NewReader(r)
	magic, err := pnmToken(br)
	if err != nil {
		return nil, fmt.Errorf("imgproc: reading PPM magic: %w", err)
	}
	if magic != "P6" && magic != "P3" {
		return nil, fmt.Errorf("imgproc: not a PPM file (magic %q)", magic)
	}
	w, h, maxv, err := pnmHeader(br)
	if err != nil {
		return nil, err
	}
	c := NewRGB(w, h)
	if magic == "P6" {
		if _, err := io.ReadFull(br, c.Pix); err != nil {
			return nil, fmt.Errorf("imgproc: short PPM pixel data: %w", err)
		}
		if err := rescaleSamples(c.Pix, maxv); err != nil {
			return nil, fmt.Errorf("imgproc: PPM pixel data: %w", err)
		}
	} else {
		for i := range c.Pix {
			v, err := pnmInt(br)
			if err != nil {
				return nil, fmt.Errorf("imgproc: PPM sample %d: %w", i, err)
			}
			if v > maxv {
				return nil, fmt.Errorf("imgproc: PPM sample %d: value %d exceeds maxval %d", i, v, maxv)
			}
			c.Pix[i] = uint8(v * 255 / maxv)
		}
	}
	return c, nil
}

// rescaleSamples maps binary samples from [0, maxv] onto [0, 255] in place.
// Binary bodies with samples above the declared maxval are corrupt per the
// netpbm spec and rejected — silently keeping them would brighten or wrap
// the frame and skew every gradient downstream.
func rescaleSamples(pix []uint8, maxv int) error {
	if maxv == 255 {
		return nil
	}
	for i, v := range pix {
		if int(v) > maxv {
			return fmt.Errorf("sample %d: value %d exceeds maxval %d", i, v, maxv)
		}
		pix[i] = uint8(int(v) * 255 / maxv)
	}
	return nil
}

// pnmHeader parses the width, height and maxval triple common to PGM/PPM.
func pnmHeader(br *bufio.Reader) (w, h, maxv int, err error) {
	if w, err = pnmInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgproc: PNM width: %w", err)
	}
	if h, err = pnmInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgproc: PNM height: %w", err)
	}
	if maxv, err = pnmInt(br); err != nil {
		return 0, 0, 0, fmt.Errorf("imgproc: PNM maxval: %w", err)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, 0, fmt.Errorf("imgproc: invalid PNM size %dx%d", w, h)
	}
	if w > 1<<16 || h > 1<<16 {
		return 0, 0, 0, fmt.Errorf("imgproc: PNM size %dx%d too large", w, h)
	}
	// Cap the total pixel count as well: the per-dimension limit alone still
	// admits a 4 GiB allocation from a 12-byte header (65536 x 65536), which
	// a corrupt or hostile stream could use to take the process down before
	// a single pixel is read.
	if w*h > maxPNMPixels {
		return 0, 0, 0, fmt.Errorf("imgproc: PNM size %dx%d exceeds %d-pixel limit", w, h, maxPNMPixels)
	}
	if maxv <= 0 || maxv > 255 {
		return 0, 0, 0, fmt.Errorf("imgproc: unsupported PNM maxval %d", maxv)
	}
	return w, h, maxv, nil
}

// maxPNMPixels bounds decoder allocations (64 Mpx ≈ 8K video); headers
// claiming more are rejected as corrupt.
const maxPNMPixels = 1 << 26

// pnmToken reads the next whitespace-delimited token, skipping '#' comments.
// It consumes exactly one byte of whitespace after the token, which is the
// netpbm rule separating the header from binary pixel data.
func pnmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

// pnmInt reads the next token and parses it as a non-negative integer.
func pnmInt(br *bufio.Reader) (int, error) {
	tok, err := pnmToken(br)
	if err != nil {
		return 0, err
	}
	v := 0
	if len(tok) == 0 {
		return 0, fmt.Errorf("empty token")
	}
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer %q", tok)
		}
		v = v*10 + int(c-'0')
		if v > 1<<30 {
			return 0, fmt.Errorf("integer %q overflows", tok)
		}
	}
	return v, nil
}
