package imgproc

import (
	"fmt"
	"math"
)

// Interp selects the resampling kernel used by Resize.
type Interp int

const (
	// Nearest uses nearest-neighbour sampling (the cheapest, blockiest).
	Nearest Interp = iota
	// Bilinear uses 2x2 linear interpolation, the kernel the paper's
	// scaling hardware approximates with shift-and-add networks.
	Bilinear
	// Bicubic uses a 4x4 Catmull-Rom kernel (a = -0.5).
	Bicubic
)

// String implements fmt.Stringer.
func (ip Interp) String() string {
	switch ip {
	case Nearest:
		return "nearest"
	case Bilinear:
		return "bilinear"
	case Bicubic:
		return "bicubic"
	}
	return fmt.Sprintf("Interp(%d)", int(ip))
}

// Resize resamples g to w x h using the given kernel. Sampling uses
// pixel-center alignment (the same convention as OpenCV's resize), so
// Resize(g, g.W, g.H, k) is the identity for every kernel.
func Resize(g *Gray, w, h int, ip Interp) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid resize target %dx%d", w, h))
	}
	if w == g.W && h == g.H {
		return g.Clone()
	}
	out := NewGray(w, h)
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			var v float64
			switch ip {
			case Nearest:
				v = float64(g.At(int(math.Round(fx)), int(math.Round(fy))))
			case Bilinear:
				v = sampleBilinear(g, fx, fy)
			case Bicubic:
				v = sampleBicubic(g, fx, fy)
			default:
				panic(fmt.Sprintf("imgproc: unknown interpolation %d", ip))
			}
			out.Pix[y*w+x] = clamp8(v)
		}
	}
	return out
}

// ResizeFloat resamples a floating-point image to w x h with the given
// kernel, using the same pixel-center convention as Resize.
func ResizeFloat(f *Float, w, h int, ip Interp) *Float {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid resize target %dx%d", w, h))
	}
	if w == f.W && h == f.H {
		return f.Clone()
	}
	out := NewFloat(w, h)
	sx := float64(f.W) / float64(w)
	sy := float64(f.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			var v float64
			switch ip {
			case Nearest:
				v = f.At(int(math.Round(fx)), int(math.Round(fy)))
			case Bilinear:
				v = sampleBilinearFloat(f, fx, fy)
			case Bicubic:
				v = sampleBicubicFloat(f, fx, fy)
			default:
				panic(fmt.Sprintf("imgproc: unknown interpolation %d", ip))
			}
			out.Pix[y*w+x] = v
		}
	}
	return out
}

// Scale resizes g by the given factor (> 1 enlarges). The output dimensions
// are rounded to the nearest integer and floored at 1 pixel.
func Scale(g *Gray, factor float64, ip Interp) *Gray {
	if factor <= 0 {
		panic("imgproc: scale factor must be positive")
	}
	w := int(math.Round(float64(g.W) * factor))
	h := int(math.Round(float64(g.H) * factor))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Resize(g, w, h, ip)
}

func sampleBilinear(g *Gray, fx, fy float64) float64 {
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	ax := fx - float64(x0)
	ay := fy - float64(y0)
	v00 := float64(g.At(x0, y0))
	v10 := float64(g.At(x0+1, y0))
	v01 := float64(g.At(x0, y0+1))
	v11 := float64(g.At(x0+1, y0+1))
	top := v00 + ax*(v10-v00)
	bot := v01 + ax*(v11-v01)
	return top + ay*(bot-top)
}

func sampleBilinearFloat(f *Float, fx, fy float64) float64 {
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	ax := fx - float64(x0)
	ay := fy - float64(y0)
	v00 := f.At(x0, y0)
	v10 := f.At(x0+1, y0)
	v01 := f.At(x0, y0+1)
	v11 := f.At(x0+1, y0+1)
	top := v00 + ax*(v10-v00)
	bot := v01 + ax*(v11-v01)
	return top + ay*(bot-top)
}

// cubicWeight is the Catmull-Rom kernel (Keys, a = -0.5).
func cubicWeight(t float64) float64 {
	t = math.Abs(t)
	const a = -0.5
	switch {
	case t <= 1:
		return (a+2)*t*t*t - (a+3)*t*t + 1
	case t < 2:
		return a*t*t*t - 5*a*t*t + 8*a*t - 4*a
	}
	return 0
}

func sampleBicubic(g *Gray, fx, fy float64) float64 {
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	var sum, wsum float64
	for j := -1; j <= 2; j++ {
		wy := cubicWeight(fy - float64(y0+j))
		if wy == 0 {
			continue
		}
		for i := -1; i <= 2; i++ {
			wx := cubicWeight(fx - float64(x0+i))
			if wx == 0 {
				continue
			}
			w := wx * wy
			sum += w * float64(g.At(x0+i, y0+j))
			wsum += w
		}
	}
	if wsum == 0 {
		return float64(g.At(x0, y0))
	}
	return sum / wsum
}

func sampleBicubicFloat(f *Float, fx, fy float64) float64 {
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	var sum, wsum float64
	for j := -1; j <= 2; j++ {
		wy := cubicWeight(fy - float64(y0+j))
		if wy == 0 {
			continue
		}
		for i := -1; i <= 2; i++ {
			wx := cubicWeight(fx - float64(x0+i))
			if wx == 0 {
				continue
			}
			w := wx * wy
			sum += w * f.At(x0+i, y0+j)
			wsum += w
		}
	}
	if wsum == 0 {
		return f.At(x0, y0)
	}
	return sum / wsum
}

// Pyramid builds an image pyramid: level i is g scaled by 1/step^i, stopping
// when either dimension would drop below minW x minH or after maxLevels
// levels (whichever comes first). Level 0 is a copy of g itself. This is the
// conventional multi-scale baseline the paper improves upon.
func Pyramid(g *Gray, step float64, minW, minH, maxLevels int, ip Interp) []*Gray {
	if step <= 1 {
		panic("imgproc: pyramid step must exceed 1")
	}
	if maxLevels <= 0 {
		maxLevels = math.MaxInt32
	}
	var levels []*Gray
	for i := 0; i < maxLevels; i++ {
		f := math.Pow(step, float64(i))
		w := int(math.Round(float64(g.W) / f))
		h := int(math.Round(float64(g.H) / f))
		if w < minW || h < minH {
			break
		}
		levels = append(levels, Resize(g, w, h, ip))
	}
	return levels
}
