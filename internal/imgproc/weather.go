package imgproc

import (
	"math"
	"math/rand"
)

// Weather degradations for the DAS robustness studies: fog (atmospheric
// scattering) and rain streaks. Both are the conditions the paper's
// introduction lists among the factors stretching driver reaction time —
// the regime where detector robustness matters most.

// Fog applies the standard atmospheric scattering model
// I' = I*t + A*(1-t) with a depth-dependent transmission t: pixels lower
// in the frame (nearer the camera on a ground plane) keep more contrast,
// the top of the frame fades towards the airlight A. density controls the
// extinction (0 = clear, ~1 = heavy fog); airlight is the haze tone.
func Fog(g *Gray, density float64, airlight uint8) *Gray {
	if density <= 0 {
		return g.Clone()
	}
	out := NewGray(g.W, g.H)
	a := float64(airlight)
	for y := 0; y < g.H; y++ {
		// Depth proxy: the horizon (far) is at the top; transmission
		// decays exponentially with distance.
		depth := 1 - float64(y)/float64(g.H-1) // 1 at top, 0 at bottom
		t := math.Exp(-density * (0.4 + 2.6*depth))
		for x := 0; x < g.W; x++ {
			v := float64(g.Pix[y*g.W+x])
			out.Pix[y*g.W+x] = clamp8(v*t + a*(1-t))
		}
	}
	return out
}

// Rain overlays nStreaks motion-blurred rain streaks of the given length
// (pixels) at a near-vertical angle. The rng must not be nil.
func Rain(g *Gray, nStreaks, length int, rng *rand.Rand) *Gray {
	out := g.Clone()
	if nStreaks <= 0 || length <= 0 {
		return out
	}
	for i := 0; i < nStreaks; i++ {
		x := rng.Intn(g.W)
		y := rng.Intn(g.H)
		angle := math.Pi/2 + (rng.Float64()-0.5)*0.3 // near vertical
		dx := math.Cos(angle)
		dy := math.Sin(angle)
		tone := uint8(190 + rng.Intn(60))
		for s := 0; s < length; s++ {
			px := x + int(float64(s)*dx)
			py := y + int(float64(s)*dy)
			if px < 0 || py < 0 || px >= g.W || py >= g.H {
				break
			}
			// Streaks are translucent: blend toward the streak tone.
			old := float64(out.Pix[py*g.W+px])
			out.Pix[py*g.W+px] = clamp8(0.6*old + 0.4*float64(tone))
		}
	}
	return out
}
