package imgproc

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestNewGray(t *testing.T) {
	g := NewGray(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("unexpected image: %dx%d, %d pixels", g.W, g.H, len(g.Pix))
	}
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("new image not zeroed")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewGray(0, 1) should panic")
		}
	}()
	NewGray(0, 1)
}

func TestGrayAtClampsBorders(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(0, 0, 10)
	g.Set(2, 2, 20)
	if g.At(-5, -5) != 10 {
		t.Errorf("top-left clamp: got %d", g.At(-5, -5))
	}
	if g.At(100, 100) != 20 {
		t.Errorf("bottom-right clamp: got %d", g.At(100, 100))
	}
}

func TestGraySetIgnoresOutside(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(-1, 0, 9)
	g.Set(0, 5, 9)
	for _, v := range g.Pix {
		if v != 0 {
			t.Fatal("out-of-bounds Set modified the image")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGray(2, 2)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) != 0 {
		t.Error("Clone shares pixels with the original")
	}
}

func TestSubImage(t *testing.T) {
	g := NewGray(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, uint8(y*10+x))
		}
	}
	s := g.SubImage(geom.R(2, 3, 5, 7))
	if s.W != 3 || s.H != 4 {
		t.Fatalf("sub size %dx%d, want 3x4", s.W, s.H)
	}
	if s.At(0, 0) != 32 || s.At(2, 3) != 64 {
		t.Errorf("sub pixels wrong: %d, %d", s.At(0, 0), s.At(2, 3))
	}
	// Clipping.
	if s := g.SubImage(geom.R(8, 8, 20, 20)); s.W != 2 || s.H != 2 {
		t.Errorf("clipped sub size %dx%d, want 2x2", s.W, s.H)
	}
	if s := g.SubImage(geom.R(20, 20, 30, 30)); s != nil {
		t.Error("fully outside sub image should be nil")
	}
}

func TestFloatGrayRoundTrip(t *testing.T) {
	g := NewGray(16, 16)
	rng := rand.New(rand.NewSource(3))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	back := ToGray(ToFloat(g))
	if !bytes.Equal(back.Pix, g.Pix) {
		t.Error("Gray -> Float -> Gray is not the identity")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := NewGray(7, 5)
	rng := rand.New(rand.NewSource(4))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != g.W || got.H != g.H || !bytes.Equal(got.Pix, g.Pix) {
		t.Error("PGM round trip mismatch")
	}
}

func TestPGMASCII(t *testing.T) {
	src := "P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n"
	g, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 128, 255, 10, 20, 30}
	if !bytes.Equal(g.Pix, want) {
		t.Errorf("P2 pixels = %v, want %v", g.Pix, want)
	}
}

func TestPGMErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"P6\n1 1\n255\nx",        // wrong magic for PGM
		"P5\n0 5\n255\n",         // zero width
		"P5\n2 2\n70000\n",       // maxval too large
		"P5\n2 2\n255\n\x00",     // short pixel data
		"P2\n2 1\n255\n12 bad\n", // non-numeric ASCII sample
	}
	for _, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPGM(%q) succeeded, want error", src)
		}
	}
}

func TestPPMRoundTrip(t *testing.T) {
	c := NewRGB(4, 3)
	rng := rand.New(rand.NewSource(5))
	for i := range c.Pix {
		c.Pix[i] = uint8(rng.Intn(256))
	}
	var buf bytes.Buffer
	if err := WritePPM(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != c.W || got.H != c.H || !bytes.Equal(got.Pix, c.Pix) {
		t.Error("PPM round trip mismatch")
	}
}

func TestRGBDrawRect(t *testing.T) {
	c := NewRGB(10, 10)
	c.DrawRect(geom.R(2, 2, 8, 8), 255, 0, 0, 1)
	if r, _, _ := c.At(2, 2); r != 255 {
		t.Error("corner not drawn")
	}
	if r, _, _ := c.At(4, 4); r != 0 {
		t.Error("interior should not be filled")
	}
	if r, _, _ := c.At(7, 2); r != 255 {
		t.Error("top edge not drawn to the far corner")
	}
}

func TestFromGray(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 7)
	g.Set(1, 0, 250)
	c := FromGray(g)
	if r, gg, b := c.At(0, 0); r != 7 || gg != 7 || b != 7 {
		t.Errorf("FromGray pixel = %d,%d,%d", r, gg, b)
	}
}

// Property: PGM round trip is exact for arbitrary images.
func TestPGMRoundTripProperty(t *testing.T) {
	f := func(seed int64, w8, h8 uint8) bool {
		w, h := int(w8%32)+1, int(h8%32)+1
		g := NewGray(w, h)
		rng := rand.New(rand.NewSource(seed))
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		var buf bytes.Buffer
		if err := WritePGM(&buf, g); err != nil {
			return false
		}
		got, err := ReadPGM(&buf)
		return err == nil && got.W == w && got.H == h && bytes.Equal(got.Pix, g.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPPMASCII(t *testing.T) {
	src := "P3\n# comment\n2 1\n255\n255 0 0  0 255 0\n"
	c, err := ReadPPM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if r, g, b := c.At(0, 0); r != 255 || g != 0 || b != 0 {
		t.Errorf("pixel 0 = %d,%d,%d", r, g, b)
	}
	if r, g, b := c.At(1, 0); r != 0 || g != 255 || b != 0 {
		t.Errorf("pixel 1 = %d,%d,%d", r, g, b)
	}
}

func TestPPMErrors(t *testing.T) {
	cases := []string{
		"",
		"P5\n1 1\n255\nx",     // PGM magic for PPM reader
		"P6\n0 1\n255\n",      // zero width
		"P6\n1 1\n999\n",      // maxval too large
		"P6\n2 2\n255\n\x00",  // short data
		"P3\n1 1\n255\nbad\n", // non-numeric sample
	}
	for _, src := range cases {
		if _, err := ReadPPM(strings.NewReader(src)); err == nil {
			t.Errorf("ReadPPM(%q) succeeded, want error", src)
		}
	}
}

func TestPGMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/img.pgm"
	g := randomGray(9, 7, 77)
	if err := WritePGMFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, g.Pix) {
		t.Error("file round trip mismatch")
	}
	if _, err := ReadPGMFile(dir + "/missing.pgm"); err == nil {
		t.Error("missing file should error")
	}
}

func TestPPMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/img.ppm"
	c := NewRGB(3, 2)
	for i := range c.Pix {
		c.Pix[i] = uint8(i * 11)
	}
	if err := WritePPMFile(path, c); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadPPM(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pix, c.Pix) {
		t.Error("PPM file round trip mismatch")
	}
}
