package imgproc

import (
	"math"
	"math/rand"
)

// BoxBlur applies an iterated box filter of the given radius (r passes of a
// (2r+1)-wide box would approximate a Gaussian; a single pass is a plain
// moving average). radius 0 returns a copy.
func BoxBlur(g *Gray, radius int) *Gray {
	if radius <= 0 {
		return g.Clone()
	}
	f := ToFloat(g)
	return ToGray(boxBlurFloat(f, radius))
}

// boxBlurFloat runs one separable box-average pass of the given radius.
func boxBlurFloat(f *Float, radius int) *Float {
	w, h := f.W, f.H
	tmp := NewFloat(w, h)
	n := float64(2*radius + 1)
	// Horizontal pass with a running sum.
	for y := 0; y < h; y++ {
		var sum float64
		for x := -radius; x <= radius; x++ {
			sum += f.At(x, y)
		}
		for x := 0; x < w; x++ {
			tmp.Pix[y*w+x] = sum / n
			sum += f.At(x+radius+1, y) - f.At(x-radius, y)
		}
	}
	out := NewFloat(w, h)
	// Vertical pass.
	for x := 0; x < w; x++ {
		var sum float64
		for y := -radius; y <= radius; y++ {
			sum += tmp.At(x, y)
		}
		for y := 0; y < h; y++ {
			out.Pix[y*w+x] = sum / n
			sum += tmp.At(x, y+radius+1) - tmp.At(x, y-radius)
		}
	}
	return out
}

// GaussianBlur approximates a Gaussian blur of the given sigma with three
// iterated box filters (Wells' method). sigma <= 0 returns a copy.
func GaussianBlur(g *Gray, sigma float64) *Gray {
	if sigma <= 0 {
		return g.Clone()
	}
	// Ideal box width for 3 passes: w = sqrt(12 sigma^2 / 3 + 1).
	wIdeal := math.Sqrt(4*sigma*sigma + 1)
	radius := int((wIdeal - 1) / 2)
	if radius < 1 {
		radius = 1
	}
	f := ToFloat(g)
	for i := 0; i < 3; i++ {
		f = boxBlurFloat(f, radius)
	}
	return ToGray(f)
}

// AddGaussianNoise adds zero-mean Gaussian noise with the given standard
// deviation (in 8-bit counts) to every pixel, clamping to [0, 255]. The rng
// must not be nil.
func AddGaussianNoise(g *Gray, stddev float64, rng *rand.Rand) *Gray {
	out := g.Clone()
	if stddev <= 0 {
		return out
	}
	for i, v := range out.Pix {
		out.Pix[i] = clamp8(float64(v) + rng.NormFloat64()*stddev)
	}
	return out
}

// AddSaltPepper flips each pixel to 0 or 255 with probability p/2 each,
// modelling dead/hot sensor pixels. The rng must not be nil.
func AddSaltPepper(g *Gray, p float64, rng *rand.Rand) *Gray {
	out := g.Clone()
	if p <= 0 {
		return out
	}
	for i := range out.Pix {
		r := rng.Float64()
		switch {
		case r < p/2:
			out.Pix[i] = 0
		case r < p:
			out.Pix[i] = 255
		}
	}
	return out
}

// AdjustContrast scales pixel values around 128 by the given gain and adds
// the bias, clamping: out = (in-128)*gain + 128 + bias.
func AdjustContrast(g *Gray, gain, bias float64) *Gray {
	out := NewGray(g.W, g.H)
	for i, v := range g.Pix {
		out.Pix[i] = clamp8((float64(v)-128)*gain + 128 + bias)
	}
	return out
}

// Gamma applies the power-law mapping out = 255*(in/255)^gamma. It panics
// for non-positive gamma.
func Gamma(g *Gray, gamma float64) *Gray {
	if gamma <= 0 {
		panic("imgproc: gamma must be positive")
	}
	var lut [256]uint8
	for i := range lut {
		lut[i] = clamp8(255 * math.Pow(float64(i)/255, gamma))
	}
	out := NewGray(g.W, g.H)
	for i, v := range g.Pix {
		out.Pix[i] = lut[v]
	}
	return out
}

// LightingGradient multiplies the image by a linear illumination ramp that
// varies from gainLeft at x=0 to gainRight at x=W-1 and from gainTop at y=0
// to gainBottom at y=H-1 (the two ramps multiply). Gains of 1 leave the
// image unchanged. This models the uneven street lighting the synthetic
// scenes use to stress block normalization.
func LightingGradient(g *Gray, gainLeft, gainRight, gainTop, gainBottom float64) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		ty := 0.0
		if g.H > 1 {
			ty = float64(y) / float64(g.H-1)
		}
		gy := gainTop + ty*(gainBottom-gainTop)
		for x := 0; x < g.W; x++ {
			tx := 0.0
			if g.W > 1 {
				tx = float64(x) / float64(g.W-1)
			}
			gx := gainLeft + tx*(gainRight-gainLeft)
			out.Pix[y*g.W+x] = clamp8(float64(g.Pix[y*g.W+x]) * gx * gy)
		}
	}
	return out
}

// FlipH returns g mirrored left-to-right. Used for dataset augmentation
// (pedestrians are approximately bilaterally symmetric).
func FlipH(g *Gray) *Gray {
	out := NewGray(g.W, g.H)
	for y := 0; y < g.H; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		orow := out.Pix[y*g.W : (y+1)*g.W]
		for x := 0; x < g.W; x++ {
			orow[g.W-1-x] = row[x]
		}
	}
	return out
}

// Integral computes the summed-area table of g: ii[y][x] is the sum of all
// pixels strictly above and to the left of (x, y), so the returned table is
// (W+1) x (H+1) and BoxSum can evaluate any rectangle sum in O(1).
type Integral struct {
	W, H int
	sums []uint64
}

// NewIntegral builds the summed-area table for g.
func NewIntegral(g *Gray) *Integral {
	ii := &Integral{W: g.W, H: g.H, sums: make([]uint64, (g.W+1)*(g.H+1))}
	stride := g.W + 1
	for y := 1; y <= g.H; y++ {
		var rowSum uint64
		for x := 1; x <= g.W; x++ {
			rowSum += uint64(g.Pix[(y-1)*g.W+(x-1)])
			ii.sums[y*stride+x] = ii.sums[(y-1)*stride+x] + rowSum
		}
	}
	return ii
}

// BoxSum returns the sum of pixels in the half-open rectangle
// [x0,x1) x [y0,y1), clipped to the image.
func (ii *Integral) BoxSum(x0, y0, x1, y1 int) uint64 {
	x0, y0 = clampInt(x0, 0, ii.W), clampInt(y0, 0, ii.H)
	x1, y1 = clampInt(x1, 0, ii.W), clampInt(y1, 0, ii.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	stride := ii.W + 1
	return ii.sums[y1*stride+x1] - ii.sums[y0*stride+x1] -
		ii.sums[y1*stride+x0] + ii.sums[y0*stride+x0]
}

// Mean returns the mean pixel value of g (0 for an empty pixel slice).
func Mean(g *Gray) float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range g.Pix {
		sum += uint64(v)
	}
	return float64(sum) / float64(len(g.Pix))
}
