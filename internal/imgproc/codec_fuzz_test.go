package imgproc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary bytes at both netpbm decoders. The decoders
// feed frames straight into the detection pipeline, so the invariant under
// fuzzing is total: any input either decodes into a self-consistent image
// (header matches buffer, bounded size) or returns an error — it must never
// panic or hand back an image whose header lies about its pixel buffer.
//
// The seed corpus doubles as the regression suite for the codec hardening:
// `go test` runs every f.Add case even without -fuzz.
func FuzzDecode(f *testing.F) {
	// Valid minimal images, both binary and ASCII.
	f.Add([]byte("P5\n2 2\n255\n\x00\x7f\x80\xff"))
	f.Add([]byte("P2\n# comment\n3 1\n255\n0 128 255\n"))
	f.Add([]byte("P6\n1 2\n255\n\x01\x02\x03\x04\x05\x06"))
	f.Add([]byte("P3\n2 1\n255\n255 0 0  0 255 0\n"))
	// Sub-255 maxval: binary samples must be rescaled, not passed through.
	f.Add([]byte("P5\n2 1\n15\n\x00\x0f"))
	f.Add([]byte("P2\n2 1\n15\n0 15\n"))
	// Truncated mid-header and mid-body (stream cut during a frame).
	f.Add([]byte("P5\n128 "))
	f.Add([]byte("P5\n4 4\n255\nshort"))
	f.Add([]byte("P6\n2 2\n255\n\x01\x02\x03"))
	// Header lies: dimensions that pass per-axis checks but multiply into a
	// multi-gigabyte allocation.
	f.Add([]byte("P5\n65535 65535\n255\n"))
	f.Add([]byte("P6\n65535 65535\n255\n"))
	// Samples above the declared maxval, ASCII and binary.
	f.Add([]byte("P2\n2 1\n15\n3 16\n"))
	f.Add([]byte("P5\n2 1\n15\n\x03\x10"))
	// Corrupted magic / maxval / negative-looking tokens.
	f.Add([]byte("P7\n2 2\n255\n\x00\x00\x00\x00"))
	f.Add([]byte("P5\n2 2\n0\n\x00\x00\x00\x00"))
	f.Add([]byte("P5\n-2 2\n255\n\x00\x00\x00\x00"))
	f.Add([]byte("P5\n2 2\n70000\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		if g, err := ReadPGM(bytes.NewReader(data)); err == nil {
			checkGray(t, g)
		}
		if c, err := ReadPPM(bytes.NewReader(data)); err == nil {
			checkRGB(t, c)
		}
	})
}

func checkGray(t *testing.T, g *Gray) {
	t.Helper()
	if g.W <= 0 || g.H <= 0 || g.W*g.H > maxPNMPixels {
		t.Fatalf("decoded Gray has out-of-bounds size %dx%d", g.W, g.H)
	}
	if len(g.Pix) != g.W*g.H {
		t.Fatalf("decoded Gray %dx%d carries %d pixels", g.W, g.H, len(g.Pix))
	}
}

func checkRGB(t *testing.T, c *RGB) {
	t.Helper()
	if c.W <= 0 || c.H <= 0 || c.W*c.H > maxPNMPixels {
		t.Fatalf("decoded RGB has out-of-bounds size %dx%d", c.W, c.H)
	}
	if len(c.Pix) != 3*c.W*c.H {
		t.Fatalf("decoded RGB %dx%d carries %d samples", c.W, c.H, len(c.Pix))
	}
}

// TestDecodeRejectsHugeAllocation pins the total-pixel cap: both dimensions
// pass the per-axis limit, but decoding must fail before attempting the
// 4 GiB allocation the header asks for.
func TestDecodeRejectsHugeAllocation(t *testing.T) {
	huge := "65535 65535\n255\n"
	if _, err := ReadPGM(strings.NewReader("P5\n" + huge)); err == nil {
		t.Error("ReadPGM accepted a 4 GiB header")
	}
	if _, err := ReadPPM(strings.NewReader("P6\n" + huge)); err == nil {
		t.Error("ReadPPM accepted a 12 GiB header")
	}
}

// TestDecodeRejectsSamplesAboveMaxval: samples above the declared maxval are
// corrupt and must error out instead of silently wrapping modulo 256.
func TestDecodeRejectsSamplesAboveMaxval(t *testing.T) {
	cases := []struct {
		name, src string
		pgm       bool
	}{
		{"ascii PGM", "P2\n2 1\n15\n3 16\n", true},
		{"binary PGM", "P5\n2 1\n15\n\x03\x10", true},
		{"ascii PPM", "P3\n1 1\n15\n3 16 2\n", false},
		{"binary PPM", "P6\n1 1\n15\n\x03\x10\x02", false},
	}
	for _, c := range cases {
		var err error
		if c.pgm {
			_, err = ReadPGM(strings.NewReader(c.src))
		} else {
			_, err = ReadPPM(strings.NewReader(c.src))
		}
		if err == nil {
			t.Errorf("%s: sample above maxval decoded without error", c.name)
		}
	}
}

// TestDecodeRescalesBinaryMaxval: binary bodies with maxv < 255 carry
// samples in [0, maxv] and must be stretched to full range, matching the
// ASCII path (previously the binary path ignored maxval entirely, leaving
// dark frames that depressed every gradient magnitude downstream).
func TestDecodeRescalesBinaryMaxval(t *testing.T) {
	g, err := ReadPGM(strings.NewReader("P5\n3 1\n15\n\x00\x08\x0f"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint8{0, 8 * 255 / 15, 255}; !bytes.Equal(g.Pix, want) {
		t.Errorf("rescaled binary PGM pixels = %v, want %v", g.Pix, want)
	}
	c, err := ReadPPM(strings.NewReader("P6\n1 1\n3\n\x00\x01\x03"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint8{0, 85, 255}; !bytes.Equal(c.Pix, want) {
		t.Errorf("rescaled binary PPM samples = %v, want %v", c.Pix, want)
	}
}
