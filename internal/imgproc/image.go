// Package imgproc provides the image substrate for the pedestrian detector:
// 8-bit and floating-point grayscale images, PGM/PPM codecs, geometric
// resampling (the image-pyramid baseline of the paper), filtering, noise
// injection, and the drawing primitives used by the synthetic scene
// generator.
//
// All images use the conventional raster layout: row-major, origin at the
// top-left, X rightwards, Y downwards.
package imgproc

import (
	"fmt"

	"repro/internal/geom"
)

// Gray is an 8-bit grayscale image. Pix holds W*H samples in row-major
// order; pixel (x, y) is Pix[y*W+x].
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a zeroed (black) W x H image. It panics on non-positive
// dimensions.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Bounds returns the image rectangle anchored at the origin.
func (g *Gray) Bounds() geom.Rect { return geom.R(0, 0, g.W, g.H) }

// At returns the pixel at (x, y). Out-of-range coordinates are clamped to
// the nearest edge pixel (replicate border), which is the border mode used
// throughout the detector.
func (g *Gray) At(x, y int) uint8 {
	x, y = clampInt(x, 0, g.W-1), clampInt(y, 0, g.H-1)
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); writes outside the image are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	c := NewGray(g.W, g.H)
	copy(c.Pix, g.Pix)
	return c
}

// SubImage copies the pixels of r (clipped to the image) into a new image.
// It returns nil if the clipped rectangle is empty.
func (g *Gray) SubImage(r geom.Rect) *Gray {
	r = r.Intersect(g.Bounds())
	if r.Empty() {
		return nil
	}
	out := NewGray(r.W(), r.H())
	for y := 0; y < r.H(); y++ {
		src := g.Pix[(r.Min.Y+y)*g.W+r.Min.X:]
		copy(out.Pix[y*out.W:(y+1)*out.W], src[:r.W()])
	}
	return out
}

// Float is a floating-point grayscale image used for intermediate
// processing. Values are nominally in [0, 1] but are not clamped.
type Float struct {
	W, H int
	Pix  []float64
}

// NewFloat allocates a zeroed W x H floating-point image. It panics on
// non-positive dimensions.
func NewFloat(w, h int) *Float {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &Float{W: w, H: h, Pix: make([]float64, w*h)}
}

// Bounds returns the image rectangle anchored at the origin.
func (f *Float) Bounds() geom.Rect { return geom.R(0, 0, f.W, f.H) }

// At returns the pixel at (x, y) with replicate-border clamping.
func (f *Float) At(x, y int) float64 {
	x, y = clampInt(x, 0, f.W-1), clampInt(y, 0, f.H-1)
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at (x, y); writes outside the image are ignored.
func (f *Float) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Clone returns a deep copy of f.
func (f *Float) Clone() *Float {
	c := NewFloat(f.W, f.H)
	copy(c.Pix, f.Pix)
	return c
}

// ToFloat converts an 8-bit image to floating point in [0, 1].
func ToFloat(g *Gray) *Float {
	f := NewFloat(g.W, g.H)
	for i, v := range g.Pix {
		f.Pix[i] = float64(v) / 255
	}
	return f
}

// ToGray converts a floating-point image to 8 bits, clamping to [0, 1] and
// rounding to nearest.
func ToGray(f *Float) *Gray {
	g := NewGray(f.W, f.H)
	for i, v := range f.Pix {
		g.Pix[i] = clamp8(v * 255)
	}
	return g
}

// clamp8 rounds v to the nearest integer and clamps it to [0, 255].
func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RGB is a small 24-bit color image used only for annotated detector output
// (drawing detection boxes over a grayscale frame).
type RGB struct {
	W, H int
	Pix  []uint8 // 3 bytes per pixel, R G B interleaved
}

// NewRGB allocates a zeroed (black) color image. It panics on non-positive
// dimensions.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgproc: invalid image size %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// FromGray returns a color copy of a grayscale image.
func FromGray(g *Gray) *RGB {
	c := NewRGB(g.W, g.H)
	for i, v := range g.Pix {
		c.Pix[3*i], c.Pix[3*i+1], c.Pix[3*i+2] = v, v, v
	}
	return c
}

// Set writes an RGB pixel; writes outside the image are ignored.
func (c *RGB) Set(x, y int, r, g, b uint8) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	i := 3 * (y*c.W + x)
	c.Pix[i], c.Pix[i+1], c.Pix[i+2] = r, g, b
}

// At returns the RGB pixel at (x, y) with replicate-border clamping.
func (c *RGB) At(x, y int) (r, g, b uint8) {
	x, y = clampInt(x, 0, c.W-1), clampInt(y, 0, c.H-1)
	i := 3 * (y*c.W + x)
	return c.Pix[i], c.Pix[i+1], c.Pix[i+2]
}

// DrawRect outlines rectangle r with the given color and stroke thickness.
func (c *RGB) DrawRect(rect geom.Rect, r, g, b uint8, thickness int) {
	if thickness < 1 {
		thickness = 1
	}
	for t := 0; t < thickness; t++ {
		x0, y0 := rect.Min.X+t, rect.Min.Y+t
		x1, y1 := rect.Max.X-1-t, rect.Max.Y-1-t
		if x0 > x1 || y0 > y1 {
			return
		}
		for x := x0; x <= x1; x++ {
			c.Set(x, y0, r, g, b)
			c.Set(x, y1, r, g, b)
		}
		for y := y0; y <= y1; y++ {
			c.Set(x0, y, r, g, b)
			c.Set(x1, y, r, g, b)
		}
	}
}
