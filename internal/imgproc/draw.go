package imgproc

import (
	"math"

	"repro/internal/geom"
)

// This file holds the raster drawing primitives used by the synthetic
// street-scene generator: filled rectangles, ellipses, convex quads, lines
// and vertical gradients, all on 8-bit grayscale images.

// FillRect fills rectangle r (clipped to the image) with value v.
func FillRect(g *Gray, r geom.Rect, v uint8) {
	r = r.Intersect(g.Bounds())
	for y := r.Min.Y; y < r.Max.Y; y++ {
		row := g.Pix[y*g.W : (y+1)*g.W]
		for x := r.Min.X; x < r.Max.X; x++ {
			row[x] = v
		}
	}
}

// FillEllipse fills the axis-aligned ellipse inscribed in r with value v.
func FillEllipse(g *Gray, r geom.Rect, v uint8) {
	if r.Empty() {
		return
	}
	cx := float64(r.Min.X+r.Max.X-1) / 2
	cy := float64(r.Min.Y+r.Max.Y-1) / 2
	rx := float64(r.W()) / 2
	ry := float64(r.H()) / 2
	if rx <= 0 || ry <= 0 {
		return
	}
	clip := r.Intersect(g.Bounds())
	for y := clip.Min.Y; y < clip.Max.Y; y++ {
		dy := (float64(y) - cy) / ry
		for x := clip.Min.X; x < clip.Max.X; x++ {
			dx := (float64(x) - cx) / rx
			if dx*dx+dy*dy <= 1 {
				g.Pix[y*g.W+x] = v
			}
		}
	}
}

// FillQuad fills the convex quadrilateral with corners p0..p3 (given in
// order around the perimeter) with value v, using scanline edge crossings.
// It also handles degenerate (triangle/line) quads gracefully.
func FillQuad(g *Gray, p0, p1, p2, p3 geom.Pt, v uint8) {
	pts := [4]geom.Pt{p0, p1, p2, p3}
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	minY = clampInt(minY, 0, g.H-1)
	maxY = clampInt(maxY, 0, g.H-1)
	for y := minY; y <= maxY; y++ {
		fy := float64(y) + 0.5
		var xs []float64
		for i := 0; i < 4; i++ {
			a, b := pts[i], pts[(i+1)%4]
			ay, by := float64(a.Y), float64(b.Y)
			if ay == by {
				continue
			}
			if (fy >= ay && fy < by) || (fy >= by && fy < ay) {
				t := (fy - ay) / (by - ay)
				xs = append(xs, float64(a.X)+t*float64(b.X-a.X))
			}
		}
		if len(xs) < 2 {
			continue
		}
		// Sort the few crossings (at most 4) by insertion.
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			x0 := clampInt(int(math.Ceil(xs[i]-0.5)), 0, g.W-1)
			x1 := clampInt(int(math.Floor(xs[i+1]-0.5)), 0, g.W-1)
			for x := x0; x <= x1; x++ {
				g.Pix[y*g.W+x] = v
			}
		}
	}
}

// ThickLine draws a line of the given width from a to b by filling the
// quadrilateral formed by offsetting the segment perpendicular to its
// direction. Degenerate zero-length lines paint a small square.
func ThickLine(g *Gray, a, b geom.Pt, width int, v uint8) {
	if width < 1 {
		width = 1
	}
	dx := float64(b.X - a.X)
	dy := float64(b.Y - a.Y)
	length := math.Hypot(dx, dy)
	if length == 0 {
		half := width / 2
		FillRect(g, geom.R(a.X-half, a.Y-half, a.X+half+1, a.Y+half+1), v)
		return
	}
	// Unit perpendicular scaled to half the width.
	px := -dy / length * float64(width) / 2
	py := dx / length * float64(width) / 2
	rnd := func(f float64) int { return int(math.Round(f)) }
	FillQuad(g,
		geom.Pt{X: rnd(float64(a.X) + px), Y: rnd(float64(a.Y) + py)},
		geom.Pt{X: rnd(float64(b.X) + px), Y: rnd(float64(b.Y) + py)},
		geom.Pt{X: rnd(float64(b.X) - px), Y: rnd(float64(b.Y) - py)},
		geom.Pt{X: rnd(float64(a.X) - px), Y: rnd(float64(a.Y) - py)},
		v)
}

// VerticalGradient fills rectangle r with values interpolated linearly from
// top at r.Min.Y to bottom at r.Max.Y-1.
func VerticalGradient(g *Gray, r geom.Rect, top, bottom uint8) {
	r = r.Intersect(g.Bounds())
	if r.Empty() {
		return
	}
	h := r.H()
	for y := r.Min.Y; y < r.Max.Y; y++ {
		t := 0.0
		if h > 1 {
			t = float64(y-r.Min.Y) / float64(h-1)
		}
		v := clamp8(float64(top) + t*(float64(bottom)-float64(top)))
		row := g.Pix[y*g.W : (y+1)*g.W]
		for x := r.Min.X; x < r.Max.X; x++ {
			row[x] = v
		}
	}
}

// Paste copies src into dst with its top-left corner at (x, y), clipping to
// dst. Pixels of src equal to the transparent value are skipped when
// transparent is non-negative (use -1 to paste everything).
func Paste(dst, src *Gray, x, y int, transparent int) {
	for sy := 0; sy < src.H; sy++ {
		dy := y + sy
		if dy < 0 || dy >= dst.H {
			continue
		}
		for sx := 0; sx < src.W; sx++ {
			dx := x + sx
			if dx < 0 || dx >= dst.W {
				continue
			}
			v := src.Pix[sy*src.W+sx]
			if transparent >= 0 && int(v) == transparent {
				continue
			}
			dst.Pix[dy*dst.W+dx] = v
		}
	}
}
