package imgproc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomGray(w, h int, seed int64) *Gray {
	g := NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func TestResizeIdentity(t *testing.T) {
	g := randomGray(17, 23, 1)
	for _, ip := range []Interp{Nearest, Bilinear, Bicubic} {
		got := Resize(g, g.W, g.H, ip)
		for i := range got.Pix {
			if got.Pix[i] != g.Pix[i] {
				t.Fatalf("%v identity resize changed pixel %d", ip, i)
			}
		}
	}
}

func TestResizeConstantImage(t *testing.T) {
	g := NewGray(20, 20)
	g.Fill(137)
	for _, ip := range []Interp{Nearest, Bilinear, Bicubic} {
		for _, dim := range [][2]int{{10, 10}, {37, 41}, {5, 31}} {
			out := Resize(g, dim[0], dim[1], ip)
			for i, v := range out.Pix {
				// Bicubic can ring by a count near borders; allow 1.
				if int(v) < 136 || int(v) > 138 {
					t.Fatalf("%v resize of constant image: pixel %d = %d", ip, i, v)
				}
			}
		}
	}
}

func TestResizeDimensions(t *testing.T) {
	g := randomGray(64, 128, 2)
	out := Resize(g, 32, 64, Bilinear)
	if out.W != 32 || out.H != 64 {
		t.Fatalf("size %dx%d, want 32x64", out.W, out.H)
	}
	defer func() {
		if recover() == nil {
			t.Error("Resize to 0x0 should panic")
		}
	}()
	Resize(g, 0, 0, Bilinear)
}

func TestScaleRounding(t *testing.T) {
	g := randomGray(64, 128, 3)
	up := Scale(g, 1.1, Bilinear)
	if up.W != 70 || up.H != 141 {
		t.Errorf("1.1x of 64x128 = %dx%d, want 70x141", up.W, up.H)
	}
	down := Scale(g, 0.5, Bilinear)
	if down.W != 32 || down.H != 64 {
		t.Errorf("0.5x of 64x128 = %dx%d, want 32x64", down.W, down.H)
	}
	tiny := Scale(NewGray(2, 2), 0.1, Nearest)
	if tiny.W != 1 || tiny.H != 1 {
		t.Errorf("minimum size not enforced: %dx%d", tiny.W, tiny.H)
	}
}

func TestBilinearInterpolatesMidpoint(t *testing.T) {
	// A 2x1 image upsampled to 3x1 must place the average in the middle.
	g := NewGray(2, 1)
	g.Set(0, 0, 0)
	g.Set(1, 0, 200)
	out := Resize(g, 3, 1, Bilinear)
	mid := out.At(1, 0)
	if mid < 95 || mid > 105 {
		t.Errorf("midpoint = %d, want ~100", mid)
	}
}

func TestDownUpRoundTripLowError(t *testing.T) {
	// A smooth image should survive 2x down + 2x up with small error.
	g := NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			g.Set(x, y, uint8(128+100*math.Sin(float64(x)/10)*math.Cos(float64(y)/10)))
		}
	}
	down := Resize(g, 32, 32, Bilinear)
	up := Resize(down, 64, 64, Bilinear)
	var mae float64
	for i := range g.Pix {
		mae += math.Abs(float64(g.Pix[i]) - float64(up.Pix[i]))
	}
	mae /= float64(len(g.Pix))
	if mae > 6 {
		t.Errorf("mean absolute error %.2f after 2x round trip, want <= 6", mae)
	}
}

func TestResizeFloatMatchesGray(t *testing.T) {
	g := randomGray(31, 17, 6)
	fg := ResizeFloat(ToFloat(g), 20, 11, Bilinear)
	gg := Resize(g, 20, 11, Bilinear)
	for i := range gg.Pix {
		diff := math.Abs(fg.Pix[i]*255 - float64(gg.Pix[i]))
		if diff > 1 {
			t.Fatalf("float/gray resize disagree at %d by %.2f", i, diff)
		}
	}
}

func TestPyramid(t *testing.T) {
	g := randomGray(128, 256, 7)
	levels := Pyramid(g, 2.0, 16, 16, 0, Bilinear)
	if len(levels) != 4 { // 128, 64, 32, 16
		t.Fatalf("got %d levels, want 4", len(levels))
	}
	if levels[0].W != 128 || levels[3].W != 16 {
		t.Errorf("level sizes wrong: %d .. %d", levels[0].W, levels[3].W)
	}
	// maxLevels cap.
	if got := Pyramid(g, 2.0, 1, 1, 2, Nearest); len(got) != 2 {
		t.Errorf("maxLevels ignored: %d levels", len(got))
	}
	// The paper's 1.1 ladder for the INRIA protocol: 64x128 to 128x256 has
	// log(2)/log(1.1) ~ 7.3 levels above the base.
	big := NewGray(128, 256)
	l11 := Pyramid(big, 1.1, 64, 128, 0, Nearest)
	if len(l11) < 7 || len(l11) > 9 {
		t.Errorf("1.1 pyramid has %d levels, want 7..9", len(l11))
	}
}

func TestCubicWeightPartitionOfUnity(t *testing.T) {
	// Catmull-Rom weights at any phase sum to 1.
	for phase := 0.0; phase < 1.0; phase += 0.093 {
		sum := 0.0
		for i := -1; i <= 2; i++ {
			sum += cubicWeight(phase - float64(i))
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("weights at phase %.3f sum to %v", phase, sum)
		}
	}
}

func TestInterpString(t *testing.T) {
	if Nearest.String() != "nearest" || Bilinear.String() != "bilinear" || Bicubic.String() != "bicubic" {
		t.Error("Interp.String names wrong")
	}
	if Interp(42).String() == "" {
		t.Error("unknown Interp should still stringify")
	}
}

func TestFillAndDrawPrimitives(t *testing.T) {
	g := NewGray(20, 20)
	FillRect(g, geom.R(5, 5, 10, 10), 200)
	if g.At(5, 5) != 200 || g.At(9, 9) != 200 || g.At(10, 10) == 200 {
		t.Error("FillRect wrong extent")
	}
	FillEllipse(g, geom.R(0, 0, 10, 10), 50)
	if g.At(5, 5) != 50 {
		t.Error("ellipse center not filled")
	}
	if g.At(0, 0) == 50 {
		t.Error("ellipse corner should stay outside")
	}
}

func TestFillQuadTriangle(t *testing.T) {
	g := NewGray(20, 20)
	// A degenerate quad forming a triangle.
	FillQuad(g, geom.Pt{X: 10, Y: 2}, geom.Pt{X: 18, Y: 18}, geom.Pt{X: 2, Y: 18}, geom.Pt{X: 2, Y: 18}, 99)
	if g.At(10, 12) != 99 {
		t.Error("triangle interior not filled")
	}
	if g.At(1, 1) == 99 || g.At(19, 1) == 99 {
		t.Error("triangle exterior filled")
	}
}

func TestThickLine(t *testing.T) {
	g := NewGray(30, 30)
	ThickLine(g, geom.Pt{X: 5, Y: 5}, geom.Pt{X: 25, Y: 25}, 3, 255)
	if g.At(15, 15) != 255 {
		t.Error("line midpoint not drawn")
	}
	if g.At(25, 5) == 255 {
		t.Error("far off-line pixel drawn")
	}
	// Zero-length line still paints something.
	g2 := NewGray(10, 10)
	ThickLine(g2, geom.Pt{X: 5, Y: 5}, geom.Pt{X: 5, Y: 5}, 3, 255)
	if g2.At(5, 5) != 255 {
		t.Error("degenerate line painted nothing")
	}
}

func TestVerticalGradient(t *testing.T) {
	g := NewGray(4, 11)
	VerticalGradient(g, g.Bounds(), 0, 250)
	if g.At(0, 0) != 0 || g.At(0, 10) != 250 {
		t.Errorf("gradient endpoints: %d, %d", g.At(0, 0), g.At(0, 10))
	}
	mid := g.At(0, 5)
	if mid < 120 || mid > 130 {
		t.Errorf("gradient midpoint = %d, want ~125", mid)
	}
}

func TestPaste(t *testing.T) {
	dst := NewGray(10, 10)
	src := NewGray(3, 3)
	src.Fill(100)
	src.Set(1, 1, 0) // transparent hole
	Paste(dst, src, 4, 4, 0)
	if dst.At(4, 4) != 100 {
		t.Error("paste did not copy")
	}
	if dst.At(5, 5) != 0 {
		t.Error("transparent pixel copied")
	}
	// Clipped paste must not panic.
	Paste(dst, src, -2, -2, -1)
	Paste(dst, src, 9, 9, -1)
	if dst.At(9, 9) != 100 {
		t.Error("clipped paste missing visible corner")
	}
}
