package imgproc

import (
	"math/rand"
	"testing"
)

func TestFogReducesContrastMoreAtTop(t *testing.T) {
	g := randomGray(64, 64, 20)
	foggy := Fog(g, 0.8, 200)
	contrast := func(img *Gray, y0, y1 int) float64 {
		var sum, sum2, n float64
		for y := y0; y < y1; y++ {
			for x := 0; x < img.W; x++ {
				v := float64(img.At(x, y))
				sum += v
				sum2 += v * v
				n++
			}
		}
		m := sum / n
		return sum2/n - m*m
	}
	topBefore := contrast(g, 0, 16)
	topAfter := contrast(foggy, 0, 16)
	botBefore := contrast(g, 48, 64)
	botAfter := contrast(foggy, 48, 64)
	if topAfter >= topBefore {
		t.Error("fog did not reduce contrast at the top (far field)")
	}
	// The far field must lose proportionally more contrast than the near field.
	if topAfter/topBefore >= botAfter/botBefore {
		t.Errorf("fog not depth dependent: top ratio %.3f vs bottom %.3f",
			topAfter/topBefore, botAfter/botBefore)
	}
}

func TestFogZeroDensityIsCopy(t *testing.T) {
	g := randomGray(16, 16, 21)
	out := Fog(g, 0, 200)
	for i := range g.Pix {
		if out.Pix[i] != g.Pix[i] {
			t.Fatal("zero-density fog changed pixels")
		}
	}
}

func TestFogConvergesToAirlight(t *testing.T) {
	g := NewGray(32, 32) // black frame
	heavy := Fog(g, 10, 180)
	// The far field should approach the airlight tone.
	if v := heavy.At(16, 0); v < 160 {
		t.Errorf("top pixel %d, want near airlight 180", v)
	}
}

func TestRainAddsBrightStreaks(t *testing.T) {
	g := NewGray(64, 64)
	g.Fill(60)
	rng := rand.New(rand.NewSource(22))
	rainy := Rain(g, 30, 12, rng)
	brighter := 0
	for i := range rainy.Pix {
		if rainy.Pix[i] > 60 {
			brighter++
		}
	}
	if brighter < 100 {
		t.Errorf("only %d brightened pixels after 30 streaks", brighter)
	}
	// Zero streaks is a copy.
	same := Rain(g, 0, 12, rng)
	for i := range g.Pix {
		if same.Pix[i] != g.Pix[i] {
			t.Fatal("no-streak rain changed pixels")
		}
	}
}

func TestRainDeterministicWithSeed(t *testing.T) {
	g := randomGray(32, 32, 23)
	a := Rain(g, 10, 8, rand.New(rand.NewSource(5)))
	b := Rain(g, 10, 8, rand.New(rand.NewSource(5)))
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("rain not deterministic for a fixed rng")
		}
	}
}
