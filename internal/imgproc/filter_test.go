package imgproc

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxBlurPreservesConstant(t *testing.T) {
	g := NewGray(16, 16)
	g.Fill(99)
	out := BoxBlur(g, 2)
	for i, v := range out.Pix {
		if v != 99 {
			t.Fatalf("pixel %d = %d after blurring constant image", i, v)
		}
	}
}

func TestBoxBlurZeroRadiusIsCopy(t *testing.T) {
	g := randomGray(8, 8, 1)
	out := BoxBlur(g, 0)
	for i := range g.Pix {
		if out.Pix[i] != g.Pix[i] {
			t.Fatal("radius-0 blur changed pixels")
		}
	}
	out.Set(0, 0, ^g.At(0, 0))
	if g.At(0, 0) == out.At(0, 0) {
		t.Fatal("radius-0 blur returned an alias")
	}
}

func TestBoxBlurSmooths(t *testing.T) {
	// An impulse spreads into a (2r+1)^2 plateau.
	g := NewGray(11, 11)
	g.Set(5, 5, 255)
	out := BoxBlur(g, 1)
	center := out.At(5, 5)
	if center == 255 || center == 0 {
		t.Errorf("impulse center = %d after blur", center)
	}
	if out.At(4, 4) != center {
		t.Errorf("box blur of impulse not flat: %d vs %d", out.At(4, 4), center)
	}
	if out.At(8, 8) != 0 {
		t.Error("blur leaked beyond its support")
	}
}

func TestGaussianBlurReducesVariance(t *testing.T) {
	g := randomGray(32, 32, 2)
	out := GaussianBlur(g, 1.5)
	varOf := func(img *Gray) float64 {
		m := Mean(img)
		var s float64
		for _, v := range img.Pix {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(img.Pix))
	}
	if varOf(out) >= varOf(g) {
		t.Error("Gaussian blur did not reduce variance of noise")
	}
	// sigma <= 0 is a copy.
	same := GaussianBlur(g, 0)
	for i := range g.Pix {
		if same.Pix[i] != g.Pix[i] {
			t.Fatal("sigma-0 blur changed pixels")
		}
	}
}

func TestAddGaussianNoiseStats(t *testing.T) {
	g := NewGray(64, 64)
	g.Fill(128)
	rng := rand.New(rand.NewSource(9))
	out := AddGaussianNoise(g, 10, rng)
	m := Mean(out)
	if math.Abs(m-128) > 1.5 {
		t.Errorf("noisy mean = %.2f, want ~128", m)
	}
	var s float64
	for _, v := range out.Pix {
		d := float64(v) - m
		s += d * d
	}
	sd := math.Sqrt(s / float64(len(out.Pix)))
	if sd < 8 || sd > 12 {
		t.Errorf("noisy stddev = %.2f, want ~10", sd)
	}
}

func TestAddSaltPepper(t *testing.T) {
	g := NewGray(100, 100)
	g.Fill(128)
	rng := rand.New(rand.NewSource(10))
	out := AddSaltPepper(g, 0.1, rng)
	var flipped int
	for _, v := range out.Pix {
		if v == 0 || v == 255 {
			flipped++
		}
	}
	frac := float64(flipped) / float64(len(out.Pix))
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("flipped fraction %.3f, want ~0.1", frac)
	}
}

func TestAdjustContrast(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 100)
	g.Set(1, 0, 200)
	out := AdjustContrast(g, 2, 0)
	// (100-128)*2+128 = 72; (200-128)*2+128 = 255 (clamped from 272).
	if out.At(0, 0) != 72 || out.At(1, 0) != 255 {
		t.Errorf("contrast pixels = %d, %d", out.At(0, 0), out.At(1, 0))
	}
	// Bias only.
	out2 := AdjustContrast(g, 1, 10)
	if out2.At(0, 0) != 110 {
		t.Errorf("bias pixel = %d", out2.At(0, 0))
	}
}

func TestGamma(t *testing.T) {
	g := NewGray(3, 1)
	g.Set(0, 0, 0)
	g.Set(1, 0, 128)
	g.Set(2, 0, 255)
	out := Gamma(g, 2.0)
	if out.At(0, 0) != 0 || out.At(2, 0) != 255 {
		t.Error("gamma must fix black and white points")
	}
	if out.At(1, 0) >= 128 {
		t.Error("gamma > 1 must darken midtones")
	}
	defer func() {
		if recover() == nil {
			t.Error("Gamma(0) should panic")
		}
	}()
	Gamma(g, 0)
}

func TestLightingGradient(t *testing.T) {
	g := NewGray(11, 1)
	g.Fill(100)
	out := LightingGradient(g, 0.5, 1.5, 1, 1)
	if out.At(0, 0) != 50 {
		t.Errorf("left gain: %d, want 50", out.At(0, 0))
	}
	if out.At(10, 0) != 150 {
		t.Errorf("right gain: %d, want 150", out.At(10, 0))
	}
	// Unity gains preserve the image.
	same := LightingGradient(g, 1, 1, 1, 1)
	for i := range g.Pix {
		if same.Pix[i] != g.Pix[i] {
			t.Fatal("unity lighting changed pixels")
		}
	}
}

func TestFlipH(t *testing.T) {
	g := NewGray(3, 2)
	g.Set(0, 0, 1)
	g.Set(2, 0, 3)
	out := FlipH(g)
	if out.At(0, 0) != 3 || out.At(2, 0) != 1 {
		t.Error("FlipH wrong")
	}
	// Involution.
	back := FlipH(out)
	for i := range g.Pix {
		if back.Pix[i] != g.Pix[i] {
			t.Fatal("FlipH twice is not the identity")
		}
	}
}

func TestIntegralBoxSum(t *testing.T) {
	g := randomGray(17, 13, 11)
	ii := NewIntegral(g)
	// Compare a set of boxes against brute force.
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		x0, y0 := rng.Intn(17), rng.Intn(13)
		x1, y1 := x0+rng.Intn(17-x0)+1, y0+rng.Intn(13-y0)+1
		var want uint64
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				want += uint64(g.At(x, y))
			}
		}
		if got := ii.BoxSum(x0, y0, x1, y1); got != want {
			t.Fatalf("BoxSum(%d,%d,%d,%d) = %d, want %d", x0, y0, x1, y1, got, want)
		}
	}
	// Degenerate and clipped boxes.
	if ii.BoxSum(5, 5, 5, 9) != 0 {
		t.Error("empty box should sum to 0")
	}
	if ii.BoxSum(-5, -5, 100, 100) != ii.BoxSum(0, 0, 17, 13) {
		t.Error("clipped full box mismatch")
	}
}

func TestMean(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{0, 100, 100, 200}
	if got := Mean(g); got != 100 {
		t.Errorf("Mean = %v, want 100", got)
	}
}
