package roi

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{MarginPx: -1}).Validate(); err == nil {
		t.Error("negative margin should fail validation")
	}
	if err := (Config{FullEvery: -1}).Validate(); err == nil {
		t.Error("negative cadence should fail validation")
	}
	if _, err := New(Config{MarginPx: -1}); err == nil {
		t.Error("New should reject an invalid config")
	}
}

func TestPlanCadence(t *testing.T) {
	s, err := New(Config{FullEvery: 4, MarginPx: 8})
	if err != nil {
		t.Fatal(err)
	}
	tracks := []geom.Rect{geom.XYWH(100, 100, 64, 128)}
	for f := 0; f < 20; f++ {
		p := s.Plan(tracks, 640, 480)
		if p.Frame != f {
			t.Fatalf("frame %d: plan frame %d", f, p.Frame)
		}
		wantFull := f%4 == 0
		if p.Full != wantFull {
			t.Errorf("frame %d: full=%v, want %v", f, p.Full, wantFull)
		}
		if p.Full && p.Regions != nil {
			t.Errorf("frame %d: full plan carries regions", f)
		}
		if !p.Full && len(p.Regions) != 1 {
			t.Errorf("frame %d: %d regions, want 1", f, len(p.Regions))
		}
	}
}

// TestBoundedMissArithmetic is the proof sketch as a property: whatever
// frame an entrant appears on, the next full scan is at most FullEvery-1
// frames later.
func TestBoundedMissArithmetic(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 10} {
		s, err := New(Config{FullEvery: k})
		if err != nil {
			t.Fatal(err)
		}
		lastFull := -1
		for f := 0; f < 5*k; f++ {
			p := s.Plan(nil, 320, 240)
			if p.Full {
				lastFull = f
			}
			// An entrant visible since any frame e <= f has waited
			// f - lastFull <= K-1 frames at every instant.
			if lastFull < 0 || f-lastFull >= k {
				t.Fatalf("K=%d: frame %d is %d frames past the last full scan", k, f, f-lastFull)
			}
		}
	}
}

func TestPlanFullEveryOneIsAlwaysDense(t *testing.T) {
	s, err := New(Config{FullEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 5; f++ {
		if p := s.Plan([]geom.Rect{geom.XYWH(0, 0, 64, 128)}, 320, 240); !p.Full {
			t.Fatalf("frame %d: FullEvery=1 must scan dense", f)
		}
	}
}

func TestPlanDilatesAndClips(t *testing.T) {
	s, err := New(Config{FullEvery: 8, MarginPx: 16})
	if err != nil {
		t.Fatal(err)
	}
	s.Plan(nil, 320, 240) // frame 0: full
	// A track touching the frame corner: dilation must clip to the frame.
	p := s.Plan([]geom.Rect{geom.XYWH(0, 0, 64, 128)}, 320, 240)
	if p.Full {
		t.Fatal("frame 1 should be restricted")
	}
	want := geom.R(0, 0, 64+16, 128+16)
	if len(p.Regions) != 1 || p.Regions[0] != want {
		t.Fatalf("regions %v, want [%v]", p.Regions, want)
	}
	// A track fully outside the frame contributes nothing.
	p = s.Plan([]geom.Rect{geom.XYWH(1000, 1000, 64, 128)}, 320, 240)
	if p.Full || len(p.Regions) != 0 {
		t.Fatalf("off-frame track: plan %+v, want empty restricted", p)
	}
}

func TestPlanNoTracksScansNothingUntilCadence(t *testing.T) {
	s, err := New(Config{FullEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	fulls := 0
	for f := 0; f < 9; f++ {
		p := s.Plan(nil, 320, 240)
		if p.Full {
			fulls++
		} else if len(p.Regions) != 0 {
			t.Fatalf("frame %d: empty track set produced regions %v", f, p.Regions)
		}
	}
	if fulls != 3 {
		t.Fatalf("%d full scans over 9 frames at K=3, want 3", fulls)
	}
}

func TestReset(t *testing.T) {
	s, err := New(Config{FullEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Plan(nil, 320, 240)
	s.Plan(nil, 320, 240)
	s.Reset()
	if p := s.Plan(nil, 320, 240); !p.Full || p.Frame != 0 {
		t.Fatalf("post-Reset plan %+v, want full frame 0", p)
	}
}

func TestMergeRects(t *testing.T) {
	got := MergeRects([]geom.Rect{
		geom.R(0, 0, 10, 10),
		geom.R(5, 5, 15, 15), // overlaps the first
		geom.R(100, 0, 110, 10),
	})
	want := []geom.Rect{geom.R(0, 0, 15, 15), geom.R(100, 0, 110, 10)}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
}

// TestMergeRectsProperty: for random inputs the output is pairwise
// non-overlapping, sorted, and covers every input rectangle.
func TestMergeRectsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		in := make([]geom.Rect, 0, n)
		for i := 0; i < n; i++ {
			x, y := rng.Intn(200), rng.Intn(200)
			in = append(in, geom.XYWH(x, y, 1+rng.Intn(80), 1+rng.Intn(80)))
		}
		orig := append([]geom.Rect(nil), in...)
		out := MergeRects(in)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if !out[i].Intersect(out[j]).Empty() {
					t.Fatalf("trial %d: outputs %v and %v overlap", trial, out[i], out[j])
				}
			}
			if i > 0 && lessRect(out[i], out[i-1]) {
				t.Fatalf("trial %d: output unsorted: %v", trial, out)
			}
		}
		for _, r := range orig {
			covered := false
			for _, o := range out {
				if o.ContainsRect(r) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: input %v not covered by output %v", trial, r, out)
			}
		}
	}
}
