// Package roi is the temporal scan scheduler of the detection stack: given
// the tracked pedestrians of the previous frame, it decides which parts of
// the next frame the multi-scale detector must actually scan.
//
// The paper's real-time claim rests on a driving video being temporally
// coherent — a pedestrian visible in frame t is, with overwhelming
// probability, within a small motion envelope of its frame-t box in frame
// t+1. The scheduler exploits exactly that and nothing more:
//
//   - on most frames it emits the union of the live track boxes, each
//     dilated by a motion margin and merged when overlapping (a restricted
//     scan — core.RegionSet maps the rectangles through the pyramid
//     geometry into per-level window-anchor spans);
//   - every FullEvery-th scheduled frame it demands a dense full scan.
//
// The cadence is what turns the heuristic into a guarantee: a pedestrian
// entering the scene is missed by restricted scans only until the next
// full scan, which is at most FullEvery-1 frames away — the bounded-miss
// property. Restricted frames can never lose an existing track either,
// because every live track's dilated box is always scanned. There is no
// randomness and no wall-clock input anywhere in the schedule: the same
// track history produces the same plan, frame for frame, which is what
// lets the differential tests pin ROI detections against dense scans.
package roi

import (
	"fmt"

	"repro/internal/geom"
)

// Config tunes the scheduler.
type Config struct {
	// FullEvery is the dense-scan cadence K: scheduled frame f is a full
	// scan when f % K == 0, so a new entrant waits at most K-1 frames for
	// a dense scan. 1 (or less, via DefaultFullEvery) degenerates to a
	// full scan every frame. Default 6.
	FullEvery int
	// MarginPx dilates each track box on all four sides before merging,
	// in frame pixels. It must cover the inter-frame motion of a tracked
	// pedestrian plus the spatial spread of the detector's above-threshold
	// windows around it; the defaults assume the dataset generator's walk
	// and approach rates at typical frame rates. Default 32.
	MarginPx int
}

// DefaultFullEvery and DefaultMarginPx are the zero-value substitutes.
const (
	DefaultFullEvery = 6
	DefaultMarginPx  = 32
)

// DefaultConfig returns the default cadence and margin.
func DefaultConfig() Config {
	return Config{FullEvery: DefaultFullEvery, MarginPx: DefaultMarginPx}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.FullEvery <= 0 {
		c.FullEvery = DefaultFullEvery
	}
	if c.MarginPx == 0 {
		c.MarginPx = DefaultMarginPx
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MarginPx < 0 {
		return fmt.Errorf("roi: negative margin %d", c.MarginPx)
	}
	if c.FullEvery < 0 {
		return fmt.Errorf("roi: negative full-scan cadence %d", c.FullEvery)
	}
	return nil
}

// Plan is the scheduler's decision for one frame.
type Plan struct {
	// Frame is the 0-based index of the frame in the scheduler's clock
	// (counting only frames the scheduler planned).
	Frame int
	// Full demands a dense scan of the whole frame. Regions is nil.
	Full bool
	// Regions are the merged, frame-clipped scan rectangles of a
	// restricted frame. They are pairwise non-overlapping and sorted by
	// (Min.Y, Min.X). An empty (but planned) region set is legitimate: no
	// live tracks means nothing needs scanning until the next full scan.
	// The slice is owned by the scheduler and valid until the next Plan
	// call.
	Regions []geom.Rect
}

// Scheduler emits scan plans. It is not safe for concurrent use; the
// streaming runtime drives it from its single scan loop.
type Scheduler struct {
	cfg   Config
	frame int
	rects []geom.Rect // reused Plan.Regions backing store
}

// New returns a scheduler positioned before frame 0 (the first plan is a
// full scan, so a cold start never trusts an empty track set).
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg.withDefaults()}, nil
}

// Config returns the resolved configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Frame returns the number of frames planned so far.
func (s *Scheduler) Frame() int { return s.frame }

// Reset rewinds the scheduler's clock to frame 0, forcing the next plan to
// be a full scan. The runtime calls it when ROI scanning re-engages after
// an interruption long enough for the track state to have gone stale.
func (s *Scheduler) Reset() { s.frame = 0 }

// Plan advances the scheduler's clock one frame and returns the scan plan:
// a dense full scan on the cadence (or when tracking cannot help), else
// the live track boxes dilated by the motion margin, clipped to the
// frame, and merged to a non-overlapping set.
func (s *Scheduler) Plan(tracks []geom.Rect, frameW, frameH int) Plan {
	f := s.frame
	s.frame++
	if s.cfg.FullEvery <= 1 || f%s.cfg.FullEvery == 0 {
		return Plan{Frame: f, Full: true}
	}
	bounds := geom.R(0, 0, frameW, frameH)
	m := s.cfg.MarginPx
	out := s.rects[:0]
	for _, b := range tracks {
		r := geom.R(b.Min.X-m, b.Min.Y-m, b.Max.X+m, b.Max.Y+m).Intersect(bounds)
		if !r.Empty() {
			out = append(out, r)
		}
	}
	out = MergeRects(out)
	s.rects = out
	return Plan{Frame: f, Regions: out}
}

// MergeRects merges overlapping rectangles in place until no two overlap,
// replacing each overlapping pair with its bounding union, and returns the
// surviving set sorted by (Min.Y, Min.X). Unions may cover ground neither
// input covered — for a scan schedule a superset is always safe. The
// fixpoint loop is quadratic; region counts are track counts, which are
// small.
func MergeRects(rects []geom.Rect) []geom.Rect {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(rects); i++ {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].Intersect(rects[j]).Empty() {
					continue
				}
				rects[i] = rects[i].Union(rects[j])
				rects[j] = rects[len(rects)-1]
				rects = rects[:len(rects)-1]
				j--
				changed = true
			}
		}
	}
	// Insertion sort: region counts are tiny and this avoids the
	// sort.Slice closure allocation on the per-frame path.
	for i := 1; i < len(rects); i++ {
		for j := i; j > 0 && lessRect(rects[j], rects[j-1]); j-- {
			rects[j], rects[j-1] = rects[j-1], rects[j]
		}
	}
	return rects
}

// lessRect orders rectangles by (Min.Y, Min.X).
func lessRect(a, b geom.Rect) bool {
	if a.Min.Y != b.Min.Y {
		return a.Min.Y < b.Min.Y
	}
	return a.Min.X < b.Min.X
}
