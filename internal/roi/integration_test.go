package roi_test

// Differential and property tests for ROI-scheduled detection against the
// trained end-to-end stack: scheduler (internal/roi) + tracker
// (internal/track) + region-restricted scans (internal/core). These pin
// the two guarantees the design claims:
//
//   - on a static scene the ROI loop's detections are IDENTICAL to dense
//     scanning, every frame, at any worker count;
//   - on moving scenes no confirmed track is ever lost relative to dense
//     scanning, and a pedestrian entering mid-clip is detected within
//     FullEvery frames of the first frame dense scanning can see it.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/roi"
	"repro/internal/track"
)

var (
	integOnce sync.Once
	integDet  *core.Detector
	integErr  error
)

// integDetector trains one shared model for this package's tests.
func integDetector(t *testing.T) *core.Detector {
	t.Helper()
	integOnce.Do(func() {
		gen := dataset.New(1001)
		cfg := core.DefaultConfig()
		rendered, err := gen.RenderAt(gen.NewSpecSet(150, 450), 1.0)
		if err != nil {
			integErr = err
			return
		}
		integDet, integErr = core.Train(rendered, cfg, core.DefaultTrainOptions())
	})
	if integErr != nil {
		t.Fatal(integErr)
	}
	return integDet
}

// roiLoop replays frames through the full ROI stack — scheduler plans from
// last frame's tracks, the region set restricts the scan, the tracker
// consumes the detections — and returns per-frame detections plus which
// frames were restricted scans.
func roiLoop(t *testing.T, model *core.Detector, frames []*imgproc.Gray, workers int, rcfg roi.Config) (dets [][]eval.Detection, restricted []bool) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = workers
	rs := core.NewRegionSet()
	cfg.Regions = rs
	d, err := core.NewDetector(model.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := roi.New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := track.New(track.DefaultConfig())
	var boxes []geom.Rect
	for _, frame := range frames {
		boxes = tk.AppendLiveBoxes(boxes[:0])
		plan := sched.Plan(boxes, frame.W, frame.H)
		if plan.Full {
			rs.Clear()
		} else {
			rs.Set(plan.Regions)
		}
		out, err := d.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		tk.Update(out)
		dets = append(dets, out)
		restricted = append(restricted, !plan.Full)
	}
	return dets, restricted
}

// denseDets runs plain dense detection (no regions) on every frame.
func denseDets(t *testing.T, model *core.Detector, frames []*imgproc.Gray) [][]eval.Detection {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	d, err := core.NewDetector(model.Model(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]eval.Detection, len(frames))
	for f, frame := range frames {
		dets, err := d.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		out[f] = dets
	}
	return out
}

func sameDets(a, b []eval.Detection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestROIStaticSceneMatchesDense: on a static scene the tracks sit exactly
// on the dense detections, so every restricted scan must reproduce the
// dense result bit for bit — the ROI schedule costs nothing in output.
func TestROIStaticSceneMatchesDense(t *testing.T) {
	det := integDetector(t)
	gen := dataset.New(2002)
	scene, err := gen.MakeScene(dataset.SceneConfig{
		W: 320, H: 240, Pedestrians: 2, MinHeight: 140, MaxHeight: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 9 // three FullEvery=3 cadence cycles
	frames := make([]*imgproc.Gray, n)
	for i := range frames {
		frames[i] = scene.Frame
	}
	dense := denseDets(t, det, frames)
	if len(dense[0]) == 0 {
		t.Fatal("dense scan found nothing on the static scene; the differential would be vacuous")
	}
	for _, workers := range []int{1, 4} {
		dets, restr := roiLoop(t, det, frames, workers, roi.Config{FullEvery: 3, MarginPx: 32})
		sawRestricted := false
		for f := range frames {
			if !sameDets(dets[f], dense[f]) {
				t.Errorf("workers=%d frame %d (restricted=%v): ROI loop diverged from dense\n got: %v\nwant: %v",
					workers, f, restr[f], dets[f], dense[f])
			}
			sawRestricted = sawRestricted || restr[f]
		}
		if !sawRestricted {
			t.Errorf("workers=%d: no restricted frames in %d-frame loop with FullEvery=3", workers, n)
		}
	}
}

// TestROIMovingSequenceProperties replays a seeded moving clip and checks
// the scheduler's contract frame by frame:
//
//   - worker counts do not change results (byte-identical sharding);
//   - full-cadence frames are bit-identical to dense scanning;
//   - zero confirmed-track misses: any dense detection overlapping a live
//     track's predicted box also appears in the restricted scan.
func TestROIMovingSequenceProperties(t *testing.T) {
	det := integDetector(t)
	for _, seed := range []int64{301, 302} {
		seq, err := dataset.New(seed).MakeSequence(dataset.SequenceConfig{
			W: 320, H: 240, Frames: 8, Pedestrians: 2, FPS: 10,
			ApproachRate: 0.05, WalkSpeedPx: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		rcfg := roi.Config{FullEvery: 4, MarginPx: 48}
		dense := denseDets(t, det, seq.Frames)
		dets1, restr := roiLoop(t, det, seq.Frames, 1, rcfg)
		dets4, _ := roiLoop(t, det, seq.Frames, 4, rcfg)

		// Replay the loop once more to reconstruct the per-frame track
		// boxes the scheduler planned from (roiLoop owns its tracker).
		tk := track.New(track.DefaultConfig())
		for f := range seq.Frames {
			if !sameDets(dets1[f], dets4[f]) {
				t.Errorf("seed %d frame %d: workers=4 diverged from workers=1\n got: %v\nwant: %v",
					seed, f, dets4[f], dets1[f])
			}
			if !restr[f] && !sameDets(dets1[f], dense[f]) {
				t.Errorf("seed %d frame %d: full-cadence scan diverged from dense\n got: %v\nwant: %v",
					seed, f, dets1[f], dense[f])
			}
			if restr[f] {
				// Zero confirmed-track misses: every dense detection that
				// overlaps a live track box must survive the restriction.
				boxes := tk.AppendLiveBoxes(nil)
				for _, dd := range dense[f] {
					covered := false
					for _, b := range boxes {
						if geom.IoU(dd.Box, b) >= 0.5 {
							covered = true
							break
						}
					}
					if !covered {
						continue // an entrant; the cadence bound covers it
					}
					found := false
					for _, rd := range dets1[f] {
						if geom.IoU(rd.Box, dd.Box) >= 0.5 {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("seed %d frame %d: dense detection %v covers live track but is missing from the restricted scan %v",
							seed, f, dd, dets1[f])
					}
				}
			}
			tk.Update(dets1[f])
		}
	}
}

// TestROIEntrantDetectedWithinFullEvery pins the bounded-miss guarantee
// end to end: a pedestrian drawn into the clip mid-stream (far from every
// track, so no restricted scan covers it) must be detected no later than
// the first full-cadence scan after dense scanning first sees it — at most
// FullEvery-1 frames of latency.
func TestROIEntrantDetectedWithinFullEvery(t *testing.T) {
	det := integDetector(t)
	gen := dataset.New(2003)
	scene, err := gen.MakeScene(dataset.SceneConfig{
		W: 400, H: 240, Pedestrians: 1, MinHeight: 150, MaxHeight: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scene.Truth) != 1 {
		t.Fatalf("scene has %d pedestrians, want 1", len(scene.Truth))
	}
	// Place the entrant in whichever frame half the resident pedestrian
	// does not occupy.
	entrantBox := geom.XYWH(280, 60, 80, 160)
	if scene.Truth[0].Min.X > scene.Frame.W/2 {
		entrantBox = geom.XYWH(40, 60, 80, 160)
	}
	pose := dataset.RandomPose(rand.New(rand.NewSource(99)))

	const n, appearAt = 10, 4
	const fullEvery = 4
	frames := make([]*imgproc.Gray, n)
	for i := range frames {
		if i < appearAt {
			frames[i] = scene.Frame
			continue
		}
		f := scene.Frame.Clone()
		dataset.DrawPedestrian(f, entrantBox, pose)
		frames[i] = f
	}
	entrantTruth := dataset.FigureBounds(entrantBox, pose)

	seesEntrant := func(dets []eval.Detection) bool {
		for _, d := range dets {
			if geom.IoU(d.Box, entrantTruth) >= 0.5 {
				return true
			}
		}
		return false
	}
	dense := denseDets(t, det, frames)
	firstDense := -1
	for f, dd := range dense {
		if seesEntrant(dd) {
			firstDense = f
			break
		}
	}
	if firstDense != appearAt {
		t.Fatalf("dense scanning first sees the entrant at frame %d, want %d — retune the fixture", firstDense, appearAt)
	}

	for _, workers := range []int{1, 4} {
		dets, restr := roiLoop(t, det, frames, workers, roi.Config{FullEvery: fullEvery, MarginPx: 32})
		firstROI := -1
		for f := range dets {
			if seesEntrant(dets[f]) {
				firstROI = f
				break
			}
		}
		if firstROI < 0 {
			t.Fatalf("workers=%d: ROI loop never detected the entrant (restricted schedule: %v)", workers, restr)
		}
		if lat := firstROI - firstDense; lat >= fullEvery {
			t.Errorf("workers=%d: entrant latency %d frames breaks the FullEvery=%d bound (dense %d, roi %d)",
				workers, lat, fullEvery, firstDense, firstROI)
		}
	}
}
