package hog

import (
	"math"
	"testing"

	"repro/internal/imgproc"
)

// FuzzComputeCells differentially fuzzes the fused fast path against
// ReferenceComputeCells: arbitrary pixel payloads, dimensions, and the
// Config bits that reach the front end. Any histogram divergence beyond
// float rounding is a bug in the fused pass.
func FuzzComputeCells(f *testing.F) {
	// Seed corpus: the adversarial shapes of the differential sweep.
	f.Add([]byte{0}, uint8(16), uint8(16), uint8(0))
	f.Add([]byte{255, 0, 255, 0, 128}, uint8(40), uint8(8), uint8(1))       // one cell tall, gamma
	f.Add([]byte{1, 2, 3, 250, 4, 200}, uint8(8), uint8(40), uint8(2))      // one cell wide, interp
	f.Add([]byte{9, 99, 199, 29, 129, 229}, uint8(21), uint8(19), uint8(3)) // partial cells, gamma+interp
	f.Add([]byte{128, 127, 126, 129}, uint8(33), uint8(17), uint8(4))       // small-bins axis
	f.Add([]byte{0, 255}, uint8(64), uint8(48), uint8(7))

	f.Fuzz(func(t *testing.T, pix []byte, w8, h8, bits uint8) {
		cfg := DefaultConfig()
		cfg.SqrtGamma = bits&1 != 0
		cfg.InterpolateCells = bits&2 != 0
		if bits&4 != 0 {
			cfg.Bins = 7
			cfg.CellSize = 6
		}
		// Clamp dimensions to at least one cell and a bounded work size.
		w := int(w8)%96 + cfg.CellSize
		h := int(h8)%96 + cfg.CellSize
		img := imgproc.NewGray(w, h)
		if len(pix) > 0 {
			for i := range img.Pix {
				img.Pix[i] = pix[i%len(pix)]
			}
		}
		ref, err := ReferenceComputeCells(img, cfg)
		if err != nil {
			t.Fatalf("reference rejected %dx%d: %v", w, h, err)
		}
		got, err := ComputeCells(img, cfg)
		if err != nil {
			t.Fatalf("fast path rejected %dx%d: %v", w, h, err)
		}
		if got.CellsX != ref.CellsX || got.CellsY != ref.CellsY || got.Bins != ref.Bins {
			t.Fatalf("grid shape %dx%dx%d, reference %dx%dx%d",
				got.CellsX, got.CellsY, got.Bins, ref.CellsX, ref.CellsY, ref.Bins)
		}
		for i := range ref.Hist {
			d := math.Abs(ref.Hist[i] - got.Hist[i])
			if d > equivTol*math.Max(1, math.Abs(ref.Hist[i])) {
				t.Fatalf("hist[%d] = %.17g, reference %.17g (diff %g, %dx%d gamma=%v interp=%v bins=%d)",
					i, got.Hist[i], ref.Hist[i], d, w, h, cfg.SqrtGamma, cfg.InterpolateCells, cfg.Bins)
			}
		}
		// The banded parallel path must be byte-identical to serial.
		s := NewScratch()
		gw, err := ComputeCellsInto(img, cfg, s, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Hist {
			if math.Float64bits(got.Hist[i]) != math.Float64bits(gw.Hist[i]) {
				t.Fatalf("workers=4 hist[%d] = %.17g, serial %.17g", i, gw.Hist[i], got.Hist[i])
			}
		}
	})
}
