package hog

import (
	"testing"

	"repro/internal/imgproc"
)

func TestVisualizeCellsDimsAndContent(t *testing.T) {
	img := randomImage(64, 128, 30)
	grid := mustCells(t, img, DefaultConfig())
	vis, err := VisualizeCells(grid, 16)
	if err != nil {
		t.Fatal(err)
	}
	if vis.W != 16*8 || vis.H != 16*16 {
		t.Fatalf("glyph image %dx%d, want 128x256", vis.W, vis.H)
	}
	// A textured image must produce visible strokes.
	if imgproc.Mean(vis) == 0 {
		t.Error("visualization is all black for a textured image")
	}
}

func TestVisualizeCellsConstantImageBlack(t *testing.T) {
	img := imgproc.NewGray(64, 64)
	img.Fill(99)
	grid := mustCells(t, img, DefaultConfig())
	vis, err := VisualizeCells(grid, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vis.Pix {
		if v != 0 {
			t.Fatal("constant image should visualize as black")
		}
	}
}

func TestVisualizeMapDims(t *testing.T) {
	img := randomImage(64, 128, 31)
	fm := mustCompute(t, img, DefaultConfig())
	vis, err := VisualizeMap(fm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if vis.W != 10*fm.BlocksX || vis.H != 10*fm.BlocksY {
		t.Fatalf("glyph image %dx%d", vis.W, vis.H)
	}
	if imgproc.Mean(vis) == 0 {
		t.Error("normalized map visualization is all black")
	}
}

func TestVisualizeErrors(t *testing.T) {
	img := randomImage(64, 64, 32)
	grid := mustCells(t, img, DefaultConfig())
	if _, err := VisualizeCells(grid, 2); err == nil {
		t.Error("tiny glyph should error")
	}
	fm := mustCompute(t, img, DefaultConfig())
	if _, err := VisualizeMap(fm, 1); err == nil {
		t.Error("tiny glyph should error")
	}
}

// TestVerticalEdgeGlyphIsVertical: a vertical edge (horizontal gradient)
// must draw near-vertical strokes (edge direction), concentrated in the
// cells containing the edge.
func TestVerticalEdgeGlyphIsVertical(t *testing.T) {
	img := imgproc.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 32; x < 64; x++ {
			img.Set(x, y, 255)
		}
	}
	grid := mustCells(t, img, DefaultConfig())
	const glyph = 17
	vis, err := VisualizeCells(grid, glyph)
	if err != nil {
		t.Fatal(err)
	}
	// Cell (3,2) contains the edge at x=32: cx = 32/8 = 4, but the
	// centered gradient spreads into cells 3 and 4. Look at cell (4,2)'s
	// glyph: the bright column must be the center column.
	gx0, gy0 := 4*glyph, 2*glyph
	colSum := make([]int, glyph)
	for dy := 0; dy < glyph; dy++ {
		for dx := 0; dx < glyph; dx++ {
			colSum[dx] += int(vis.At(gx0+dx, gy0+dy))
		}
	}
	center := colSum[glyph/2]
	for dx, s := range colSum {
		if dx >= glyph/2-1 && dx <= glyph/2+1 {
			continue
		}
		if s > center {
			t.Fatalf("off-center column %d brighter than center (%d > %d): stroke not vertical",
				dx, s, center)
		}
	}
}
