package hog

// StagePlan is the kernel-side stage schedule of the early-rejection
// cascade: which window block row each stage evaluates, the precomputed
// Cauchy-Schwarz suffix bounds of the not-yet-evaluated remainder, and the
// optional calibrated per-stage floors. Plans are built by the detector
// layer from svm.Cascade tables (hog cannot import svm) and are immutable
// once constructed, so one plan is shared by every scan worker.
type StagePlan struct {
	// Order[k] is the window block row stage k evaluates; a permutation of
	// 0..rows-1 ranked by descending per-row weight mass.
	Order []int32
	// Suffix[k] bounds |sum of the unevaluated rows' dot products| at unit
	// block norm: the sum of the per-row bounds of stages k.. (Suffix[len]
	// = 0). Scaled by the caller's per-level norm cap at test time.
	Suffix []float64
	// Calib, when non-nil, holds per-stage partial-score floors (soft
	// cascade): a window whose stage-order partial falls below Calib[k]
	// after stage k is rejected. len(Calib) == len(Order).
	Calib []float64
	// Slack is the absolute float-safety margin folded into the exact
	// rejection test so that staged rounding can never reject a window the
	// dense raster-order scan would keep.
	Slack float64
}

// Valid reports whether the plan matches a window of wBlocksY block rows.
func (p *StagePlan) Valid(wBlocksY int) bool {
	return p != nil && len(p.Order) == wBlocksY && len(p.Suffix) == wBlocksY+1 &&
		(p.Calib == nil || len(p.Calib) == wBlocksY)
}

// ScoreWindowStaged is the cascade variant of ScoreWindow: it evaluates the
// window's block rows in plan order, after each stage testing whether the
// window can still beat thr (the bias-adjusted decision threshold).
//
// Exact rejection fires when partial + normCap*Suffix[k+1] + Slack <= thr:
// normCap is the caller's upper bound on the L2 norm of any block vector of
// this feature map (1 for directly-normalized maps; pyramid levels pass
// their interpolation-aware cap), so by Cauchy-Schwarz the unevaluated rows
// cannot add more than normCap*Suffix[k+1], and the slack absorbs the
// rounding differences versus the dense scan — a rejected window is one the
// dense scan provably rejects too. normCap <= 0 disables the exact test
// (callers without a norm bound scan dense instead; see core).
//
// Calibrated rejection (plan.Calib != nil) additionally fires when the
// stage-order partial drops below the stage's fitted floor.
//
// Each stage's row dot product is the same dotRow call the dense scan
// makes, stored into rowDots (caller scratch, len >= wBlocksY, indexed by
// raster row). On full evaluation the score is re-reduced from rowDots in
// raster order — the identical float addition sequence as ScoreWindow — so
// accepted windows score bit-identically to the dense scan.
//
// Returns:
//   - score: the exact window score if accepted; an upper bound on it if
//     rejected (what a score map records for pruned anchors).
//   - rowsEval: block rows actually evaluated (1..wBlocksY).
//   - accepted: every stage was evaluated; score is exact and the caller
//     applies its usual threshold test.
//   - ok: geometry and plan matched (as ScoreWindow's bool).
func (fm *FeatureMap) ScoreWindowStaged(w []float64, bx, by, wBlocksX, wBlocksY int,
	plan *StagePlan, thr, normCap float64, rowDots []float64) (score float64, rowsEval int, accepted, ok bool) {
	if bx < 0 || by < 0 || wBlocksX < 1 || wBlocksY < 1 ||
		bx+wBlocksX > fm.BlocksX || by+wBlocksY > fm.BlocksY {
		return 0, 0, false, false
	}
	rowLen := wBlocksX * fm.BlockLen
	if len(w) != wBlocksY*rowLen || !plan.Valid(wBlocksY) || len(rowDots) < wBlocksY {
		return 0, 0, false, false
	}
	exact := normCap > 0
	last := wBlocksY - 1
	var partial float64
	for k := 0; k <= last; k++ {
		r := int(plan.Order[k])
		row := fm.Feat[((by+r)*fm.BlocksX+bx)*fm.BlockLen:]
		d := dotRow(w[r*rowLen:(r+1)*rowLen], row[:rowLen])
		rowDots[r] = d
		partial += d
		if plan.Calib != nil && partial < plan.Calib[k] {
			ub := partial
			if exact {
				ub += normCap * plan.Suffix[k+1]
			}
			return ub, k + 1, false, true
		}
		// No exact test after the last stage: all rows are already paid
		// for, and the raster re-reduction below is the authoritative
		// score (the stage-order partial differs by ulps).
		if exact && k < last {
			if ub := partial + normCap*plan.Suffix[k+1]; ub+plan.Slack <= thr {
				return ub, k + 1, false, true
			}
		}
	}
	var s float64
	for y := 0; y < wBlocksY; y++ {
		s += rowDots[y]
	}
	return s, wBlocksY, true, true
}
