package hog

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imgproc"
	"repro/internal/svm"
)

// stagedSetup builds a real normalized feature map, a random weight vector,
// and the stage plan the detector layer would derive for it (svm ranks the
// rows; hog only consumes the tables).
func stagedSetup(t *testing.T, seed int64) (fm *FeatureMap, w []float64, plan *StagePlan, wbx, wby int) {
	t.Helper()
	cfg := DefaultConfig()
	img := imgproc.NewGray(200, 240)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	var err error
	fm, err = Compute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wbx, wby = cfg.WindowBlocks(cfg.WindowCells(64, 128))
	w = make([]float64, wbx*wby*fm.BlockLen)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	casc, err := svm.NewCascade(&svm.Model{W: w}, wbx, wby, fm.BlockLen)
	if err != nil {
		t.Fatal(err)
	}
	plan = &StagePlan{Order: casc.Order, Suffix: casc.Suffix, Slack: casc.Slack}
	return fm, w, plan, wbx, wby
}

// TestScoreWindowStagedLossless is the kernel-level exactness contract:
// at every anchor and every threshold, an accepted window scores
// bit-identically to the dense scan, and a rejected window is one the dense
// scan would reject too (its true score is at or below the threshold), with
// the returned upper bound actually bounding it.
func TestScoreWindowStagedLossless(t *testing.T) {
	fm, w, plan, wbx, wby := stagedSetup(t, 31)

	// Collect the dense scores first to pick thresholds that exercise both
	// the all-accepted and the heavily-pruned regimes.
	var dense []float64
	for by := 0; by+wby <= fm.BlocksY; by++ {
		for bx := 0; bx+wbx <= fm.BlocksX; bx++ {
			s, ok := fm.ScoreWindow(w, bx, by, wbx, wby)
			if !ok {
				t.Fatalf("dense score at (%d,%d) rejected", bx, by)
			}
			dense = append(dense, s)
		}
	}
	lo, hi := dense[0], dense[0]
	for _, s := range dense {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}

	// Above everyBound even a single evaluated stage proves rejection:
	// ub after stage 1 is at most RowBound[Order[0]] + Suffix[1] = Suffix[0].
	everyBound := plan.Suffix[0] + plan.Slack + 1
	rowDots := make([]float64, wby)
	for _, thr := range []float64{lo - 1, (lo + hi) / 2, hi - 1e-9, everyBound} {
		accepts, rejects := 0, 0
		i := 0
		for by := 0; by+wby <= fm.BlocksY; by++ {
			for bx := 0; bx+wbx <= fm.BlocksX; bx++ {
				score, rowsEval, accepted, ok := fm.ScoreWindowStaged(
					w, bx, by, wbx, wby, plan, thr, 1, rowDots)
				if !ok {
					t.Fatalf("staged score at (%d,%d) rejected the geometry", bx, by)
				}
				if rowsEval < 1 || rowsEval > wby {
					t.Fatalf("rowsEval %d outside 1..%d", rowsEval, wby)
				}
				if accepted {
					accepts++
					if math.Float64bits(score) != math.Float64bits(dense[i]) {
						t.Fatalf("anchor (%d,%d) thr %g: staged %v != dense %v (bits differ)",
							bx, by, thr, score, dense[i])
					}
					if rowsEval != wby {
						t.Fatalf("accepted window evaluated %d of %d rows", rowsEval, wby)
					}
				} else {
					rejects++
					// Lossless: the dense scan rejects this window too.
					if dense[i] > thr {
						t.Fatalf("anchor (%d,%d) thr %g: pruned a window the dense scan keeps (score %v)",
							bx, by, thr, dense[i])
					}
					// The returned value is a genuine upper bound (up to slack).
					if score+plan.Slack < dense[i] {
						t.Fatalf("anchor (%d,%d): returned bound %v below dense score %v",
							bx, by, score, dense[i])
					}
					// Exact-mode rejection never fires after the last stage.
					if rowsEval == wby {
						t.Fatalf("anchor (%d,%d): exact rejection at the final stage", bx, by)
					}
				}
				i++
			}
		}
		if thr < lo && rejects != 0 {
			t.Fatalf("thr %g below every score rejected %d windows", thr, rejects)
		}
		if thr >= everyBound && accepts != 0 {
			t.Fatalf("thr %g above the global bound still accepted %d windows", thr, accepts)
		}
	}
}

// TestScoreWindowStagedNormCapDisables checks that normCap <= 0 switches the
// exact test off: with no calibration every window is fully evaluated and
// bit-identical to the dense scan regardless of the threshold.
func TestScoreWindowStagedNormCapDisables(t *testing.T) {
	fm, w, plan, wbx, wby := stagedSetup(t, 32)
	rowDots := make([]float64, wby)
	for _, anchor := range [][2]int{{0, 0}, {2, 3}, {fm.BlocksX - wbx, fm.BlocksY - wby}} {
		bx, by := anchor[0], anchor[1]
		dense, _ := fm.ScoreWindow(w, bx, by, wbx, wby)
		score, rowsEval, accepted, ok := fm.ScoreWindowStaged(
			w, bx, by, wbx, wby, plan, 1e300, 0, rowDots)
		if !ok || !accepted || rowsEval != wby {
			t.Fatalf("anchor (%d,%d): ok=%v accepted=%v rowsEval=%d", bx, by, ok, accepted, rowsEval)
		}
		if math.Float64bits(score) != math.Float64bits(dense) {
			t.Fatalf("anchor (%d,%d): %v != dense %v", bx, by, score, dense)
		}
	}
}

// TestScoreWindowStagedCalibrated checks the soft-cascade floors: an
// unreachable stage-one floor rejects every window after a single row, a
// bottomless floor never fires, and the floors work with the exact test
// disabled (octave fallback still honors calibration).
func TestScoreWindowStagedCalibrated(t *testing.T) {
	fm, w, plan, wbx, wby := stagedSetup(t, 33)
	rowDots := make([]float64, wby)

	high := make([]float64, wby)
	for i := range high {
		high[i] = math.MaxFloat64
	}
	plan.Calib = high
	_, rowsEval, accepted, ok := fm.ScoreWindowStaged(w, 1, 1, wbx, wby, plan, -1e300, 0, rowDots)
	if !ok || accepted || rowsEval != 1 {
		t.Fatalf("unreachable floor: ok=%v accepted=%v rowsEval=%d", ok, accepted, rowsEval)
	}

	low := make([]float64, wby)
	for i := range low {
		low[i] = -math.MaxFloat64
	}
	plan.Calib = low
	dense, _ := fm.ScoreWindow(w, 1, 1, wbx, wby)
	score, rowsEval, accepted, ok := fm.ScoreWindowStaged(w, 1, 1, wbx, wby, plan, -1e300, 1, rowDots)
	if !ok || !accepted || rowsEval != wby {
		t.Fatalf("bottomless floor: ok=%v accepted=%v rowsEval=%d", ok, accepted, rowsEval)
	}
	if math.Float64bits(score) != math.Float64bits(dense) {
		t.Fatalf("calibrated accept not bit-identical: %v vs %v", score, dense)
	}
}

// TestScoreWindowStagedRejectsBadInput mirrors TestScoreWindowRejectsBadInput
// for the staged kernel: bad geometry, malformed plans, and short scratch all
// return ok=false without touching the map.
func TestScoreWindowStagedRejectsBadInput(t *testing.T) {
	fm, w, plan, wbx, wby := stagedSetup(t, 34)
	rowDots := make([]float64, wby)
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, plan, 0, 1, rowDots); !ok {
		t.Fatal("valid staged call rejected")
	}
	for _, bad := range [][4]int{
		{-1, 0, wbx, wby},
		{0, -1, wbx, wby},
		{fm.BlocksX - wbx + 1, 0, wbx, wby},
		{0, fm.BlocksY - wby + 1, wbx, wby},
		{0, 0, 0, wby},
		{0, 0, wbx, 0},
	} {
		if _, _, _, ok := fm.ScoreWindowStaged(w, bad[0], bad[1], bad[2], bad[3], plan, 0, 1, rowDots); ok {
			t.Errorf("geometry %v accepted", bad)
		}
	}
	if _, _, _, ok := fm.ScoreWindowStaged(w[:10], 0, 0, wbx, wby, plan, 0, 1, rowDots); ok {
		t.Error("short weight vector accepted")
	}
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, nil, 0, 1, rowDots); ok {
		t.Error("nil plan accepted")
	}
	badPlan := &StagePlan{Order: plan.Order[:wby-1], Suffix: plan.Suffix, Slack: plan.Slack}
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, badPlan, 0, 1, rowDots); ok {
		t.Error("short stage order accepted")
	}
	badPlan = &StagePlan{Order: plan.Order, Suffix: plan.Suffix[:wby], Slack: plan.Slack}
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, badPlan, 0, 1, rowDots); ok {
		t.Error("short suffix table accepted")
	}
	badPlan = &StagePlan{Order: plan.Order, Suffix: plan.Suffix, Calib: make([]float64, wby-1), Slack: plan.Slack}
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, badPlan, 0, 1, rowDots); ok {
		t.Error("short calibration accepted")
	}
	if _, _, _, ok := fm.ScoreWindowStaged(w, 0, 0, wbx, wby, plan, 0, 1, rowDots[:wby-1]); ok {
		t.Error("short rowDots scratch accepted")
	}
}
