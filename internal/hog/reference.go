package hog

import (
	"fmt"
	"math"

	"repro/internal/imgproc"
)

// ReferenceComputeCells is the retained straight-line reference
// implementation of dense cell histogramming: per-pixel math.Atan2 +
// math.Hypot through a bounds-clamping accessor, exactly as the package
// computed cells before the fused front-end. It defines the numerical
// contract the fast path is tested against (TestFastPathEquivalence,
// FuzzComputeCells): identical bin pairs and vote weights up to float
// rounding, histograms within 1e-12.
//
// It is deliberately unoptimized and allocates its luminance plane and grid
// per call. Production code should use ComputeCells or ComputeCellsInto.
func ReferenceComputeCells(img *imgproc.Gray, cfg Config) (*CellGrid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cellsX := img.W / cfg.CellSize
	cellsY := img.H / cfg.CellSize
	if cellsX < 1 || cellsY < 1 {
		return nil, fmt.Errorf("hog: image %dx%d smaller than one %dpx cell", img.W, img.H, cfg.CellSize)
	}
	grid := &CellGrid{
		CellsX: cellsX,
		CellsY: cellsY,
		Bins:   cfg.Bins,
		Hist:   make([]float64, cellsX*cellsY*cfg.Bins),
	}
	// Luminance in [0, 1] (so Epsilon has a scale-free meaning), with
	// optional sqrt gamma compression.
	pix := img.Pix
	w, h := img.W, img.H
	lum := make([]float64, len(pix))
	for i, v := range pix {
		if cfg.SqrtGamma {
			lum[i] = math.Sqrt(float64(v) / 255)
		} else {
			lum[i] = float64(v) / 255
		}
	}
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		return lum[y*w+x]
	}

	binWidth := math.Pi / float64(cfg.Bins)
	maxY := cellsY * cfg.CellSize
	maxX := cellsX * cfg.CellSize
	for y := 0; y < maxY; y++ {
		for x := 0; x < maxX; x++ {
			gx := at(x+1, y) - at(x-1, y)
			gy := at(x, y+1) - at(x, y-1)
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			// Unsigned orientation in [0, pi).
			theta := math.Atan2(gy, gx)
			if theta < 0 {
				theta += math.Pi
			}
			if theta >= math.Pi {
				theta -= math.Pi
			}
			// Two-nearest-bin vote: bins are centered at (b+0.5)*binWidth.
			fb := theta/binWidth - 0.5
			b0 := int(math.Floor(fb))
			alpha := fb - float64(b0)
			b1 := b0 + 1
			// Wrap around the unsigned orientation circle.
			if b0 < 0 {
				b0 += cfg.Bins
			}
			if b1 >= cfg.Bins {
				b1 -= cfg.Bins
			}
			v0 := mag * (1 - alpha)
			v1 := mag * alpha

			if !cfg.InterpolateCells {
				cell := grid.At(x/cfg.CellSize, y/cfg.CellSize)
				cell[b0] += v0
				cell[b1] += v1
				continue
			}
			// Bilinear spatial split across the four nearest cells.
			fx := (float64(x)+0.5)/float64(cfg.CellSize) - 0.5
			fy := (float64(y)+0.5)/float64(cfg.CellSize) - 0.5
			cx0 := int(math.Floor(fx))
			cy0 := int(math.Floor(fy))
			ax := fx - float64(cx0)
			ay := fy - float64(cy0)
			for _, cc := range [4]struct {
				cx, cy int
				w      float64
			}{
				{cx0, cy0, (1 - ax) * (1 - ay)},
				{cx0 + 1, cy0, ax * (1 - ay)},
				{cx0, cy0 + 1, (1 - ax) * ay},
				{cx0 + 1, cy0 + 1, ax * ay},
			} {
				if cc.cx < 0 || cc.cy < 0 || cc.cx >= cellsX || cc.cy >= cellsY || cc.w == 0 {
					continue
				}
				cell := grid.At(cc.cx, cc.cy)
				cell[b0] += v0 * cc.w
				cell[b1] += v1 * cc.w
			}
		}
	}
	return grid, nil
}
