package hog

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/imgproc"
)

// This file holds the fused cell-histogramming fast path: the software
// analogue of the paper's streaming extractor. Where ReferenceComputeCells
// spends an Atan2 + Hypot per pixel behind a clamping accessor, the fused
// pass
//
//   - converts pixels to luminance through a 256-entry lookup table
//     (bit-identical to the reference's division, gamma hoisted out of the
//     loop entirely),
//   - selects the orientation bin by tangent-threshold comparison against
//     the bin-center angles (b+0.5)*pi/Bins — the hardware's comparator
//     tree — and recovers the interpolation weight from one small-argument
//     math.Atan of the gradient rotated into the selected bin's frame,
//   - takes the magnitude as Sqrt(gx^2+gy^2) (luminance is in [0,1], so
//     Hypot's overflow guards buy nothing),
//   - walks interior rows through bounds-check-free slice windows, leaving
//     the replicate-clamp border semantics to a thin border pass, and
//   - histograms cell-row bands in parallel with a worker-count-independent
//     band partition, so any worker count produces byte-identical grids.
//
// Votes land in the same bins with the same weights as the reference up to
// float rounding; TestFastPathEquivalence and FuzzComputeCells pin the
// histograms to within 1e-12.

// lumLUT and lumLUTGamma map 8-bit pixel values to [0,1] luminance, plain
// and sqrt-gamma-compressed. Table entries are computed with the exact
// expressions of the reference implementation, so the lookup is
// bit-identical to converting in the loop.
var lumLUT, lumLUTGamma [256]float64

func init() {
	for v := 0; v < 256; v++ {
		lumLUT[v] = float64(v) / 255
		lumLUTGamma[v] = math.Sqrt(float64(v) / 255)
	}
}

// bandCellRows is the height of one histogramming band in cell rows. The
// partition depends only on the grid height — never on the worker count —
// which is what makes banded results byte-identical at any parallelism:
// bands are merely distributed over workers, and the halo merge below
// always runs in ascending band order.
const bandCellRows = 4

// binTable holds the per-Bins orientation constants of the tangent-threshold
// binner. The threshold angles are the bin centers (b+0.5)*pi/Bins — the
// two-nearest-bin vote switches its lower bin exactly when the gradient
// angle crosses a bin center, so the hardware comparator thresholds
// tan((b+0.5)*pi/Bins) are also the software selector's decision boundaries.
// Comparisons use the (cos, sin) normal form of each threshold,
// gy*cos - gx*sin >= 0, which is the same predicate as gy/gx >= tan but is
// exact in every quadrant and needs no division.
type binTable struct {
	bins int
	invW float64 // Bins/pi, i.e. 1/binWidth
	// tan[b] = tan((b+0.5)*pi/Bins): the paper-style comparator constants,
	// kept for documentation and the threshold-tie tests.
	tan []float64
	// cos[b], sin[b] of the threshold angles (b+0.5)*pi/Bins: the
	// comparator predicate gy/gx >= tan in normal form.
	cos, sin []float64
	// cosE[k], sinE[k] of the bin-edge angles k*pi/Bins, k = 0..Bins: the
	// rotation frames the interpolation weight is recovered in.
	cosE, sinE []float64
	// poly selects the in-line Taylor arctangent: valid whenever the
	// rotated tangent stays within tan(pi/12) (Bins >= 6), where the
	// series truncation is below 5e-14. Smaller bin counts fall back to
	// math.Atan.
	poly bool
}

func (t *binTable) init(bins int) {
	t.bins = bins
	w := math.Pi / float64(bins)
	t.invW = float64(bins) / math.Pi
	if cap(t.tan) < bins {
		t.tan = make([]float64, bins)
		t.cos = make([]float64, bins)
		t.sin = make([]float64, bins)
		t.cosE = make([]float64, bins+1)
		t.sinE = make([]float64, bins+1)
	}
	t.tan = t.tan[:bins]
	t.cos = t.cos[:bins]
	t.sin = t.sin[:bins]
	t.cosE = t.cosE[:bins+1]
	t.sinE = t.sinE[:bins+1]
	for b := 0; b < bins; b++ {
		a := (float64(b) + 0.5) * w
		t.tan[b] = math.Tan(a)
		t.cos[b] = math.Cos(a)
		t.sin[b] = math.Sin(a)
	}
	for k := 0; k <= bins; k++ {
		a := float64(k) * w
		t.cosE[k] = math.Cos(a)
		t.sinE[k] = math.Sin(a)
	}
	t.poly = bins >= 6
}

// atanSmall is an odd Taylor arctangent for |x| <= tan(pi/12): terms
// through x^23, evaluated Estrin-style so the ~25 flops pipeline instead of
// forming a Horner dependency chain. Truncation (first dropped term
// x^25/25) is below 4e-16 at the domain edge — invisible against the front
// end's 1e-12 equivalence bound — and it costs no division and no call.
func atanSmall(x float64) float64 {
	const (
		c1  = -1.0 / 3
		c2  = 1.0 / 5
		c3  = -1.0 / 7
		c4  = 1.0 / 9
		c5  = -1.0 / 11
		c6  = 1.0 / 13
		c7  = -1.0 / 15
		c8  = 1.0 / 17
		c9  = -1.0 / 19
		c10 = 1.0 / 21
		c11 = -1.0 / 23
	)
	z := x * x
	z2 := z * z
	z4 := z2 * z2
	p01 := 1 + c1*z
	p23 := c2 + c3*z
	p45 := c4 + c5*z
	p67 := c6 + c7*z
	p89 := c8 + c9*z
	pAB := c10 + c11*z
	q0 := p01 + p23*z2
	q1 := p45 + p67*z2
	q2 := p89 + pAB*z2
	return x * (q0 + (q1+q2*z4)*z4)
}

// bin selects the two-nearest-bin vote for a non-zero gradient (gx, gy):
// the lower bin b0, the upper bin b1 (cyclic neighbour), and the fraction
// alpha of the magnitude voted to b1.
//
// Selection is the hardware comparator tree: count how many tangent
// thresholds the gradient direction has passed. Each test gy*cos[b] -
// gx*sin[b] >= 0 is the threshold predicate in normal form, and the count
// is accumulated branchlessly from the difference sign bits — gradient
// directions are data-random, so a compare-and-branch walk would mispredict
// heavily.
//
// The interpolation weight is recovered by rotating the gradient into the
// frame of the *edge* between the two selected bins (angle k*pi/Bins): the
// rotated tangent v/u is then confined to [-tan(pi/2B), +tan(pi/2B)], a
// tiny arctangent argument handled by the in-line series (math.Atan for
// Bins < 6), and alpha = 0.5 + atan(v/u)/binWidth. The tangent's pi-
// periodicity makes the k = 0 and k = Bins frames equivalent, which is
// exactly the wrap of the unsigned orientation circle.
//
// Tie semantics, pinned by TestBinThresholdTies: a gradient lying exactly
// on threshold b (gy*cos[b] == gx*sin[b]) selects the bin pair (b, b+1)
// with alpha ~ 0 (the vote goes to bin b up to float rounding).
func (t *binTable) bin(gx, gy float64) (b0, b1 int, alpha float64) {
	// Fold to the upper half-plane: orientation is unsigned (mod pi). The
	// fold is branchless — both components flip by gy's sign bit — because
	// gradient angles are data-random and a compare-and-branch would
	// mispredict half the time. (gy is never -0 here: luminances are
	// non-negative and IEEE subtraction of equal values rounds to +0, so
	// the sign-bit test agrees exactly with gy < 0.)
	sgn := math.Float64bits(gy) & (1 << 63)
	gx = math.Float64frombits(math.Float64bits(gx) ^ sgn)
	gy = math.Float64frombits(math.Float64bits(gy) ^ sgn)
	// The thresholds are sorted in (0, pi) and the folded angle is in
	// [0, pi), so the cross products gy*cos[b] - gx*sin[b] (= |g| *
	// sin(theta - threshold_b)) are non-negative up to the last threshold
	// below theta and negative after it: count the negatives.
	cosT := t.cos
	sinT := t.sin[:len(cosT)]
	neg := 0
	for b := range cosT {
		cross := gy*cosT[b] - gx*sinT[b]
		neg += int(math.Float64bits(cross) >> 63)
	}
	k := t.bins - neg
	b0 = k - 1
	if b0 < 0 {
		b0 = t.bins - 1
	}
	b1 = k
	if b1 >= t.bins {
		b1 = 0
	}
	ce, se := t.cosE[k], t.sinE[k]
	v := gy*ce - gx*se
	u := gx*ce + gy*se
	x := v / u
	var a float64
	if t.poly {
		a = atanSmall(x)
	} else {
		a = math.Atan(x)
	}
	alpha = 0.5 + a*t.invW
	// The comparator and the float arctangent can disagree by an ulp at
	// the bin edges; clamp so the vote split stays a convex pair.
	if alpha > 1 {
		alpha = 1
	} else if alpha < 0 {
		alpha = 0
	}
	return b0, b1, alpha
}

// fusedCtx is the shared read-only state of one fused histogramming pass.
type fusedCtx struct {
	lum            []float64
	w, h           int
	cell           int
	invCell        float64 // 1/CellSize, hoisted out of the interpolation loop
	cellsX, cellsY int
	bins           int
	maxX, maxY     int // whole-cell pixel extent
	interp         bool
	bt             *binTable
	hist           []float64 // dst.Hist
	halo           []float64 // numBands * 2 * cellsX * bins, interp only
	numBands       int
}

// computeCellsImpl runs the fused pass over img into dst, using s for
// luminance/halo/threshold scratch. dst.Hist must already have the right
// length; its contents are overwritten. workers bounds the band-level
// parallelism; every worker count yields byte-identical histograms.
func computeCellsImpl(img *imgproc.Gray, cfg Config, dst *CellGrid, s *Scratch, workers int) error {
	w, h := img.W, img.H
	cellsX, cellsY := dst.CellsX, dst.CellsY
	if s.bt.bins != cfg.Bins {
		s.bt.init(cfg.Bins)
	}

	// Luminance plane, table-driven, gamma branch hoisted to table choice.
	if cap(s.lum) < w*h {
		s.lum = make([]float64, w*h)
	}
	lum := s.lum[:w*h]
	lut := &lumLUT
	if cfg.SqrtGamma {
		lut = &lumLUTGamma
	}
	// Index by the claimed dimensions, not len(Pix): a pixel buffer shorter
	// than its header must panic here (the streaming runtime converts that
	// to a per-frame PanicError), exactly like the reference's accessor.
	pix := img.Pix[:w*h]
	for i, v := range pix {
		lum[i] = lut[v]
	}

	for i := range dst.Hist {
		dst.Hist[i] = 0
	}

	fc := &s.fc
	*fc = fusedCtx{
		lum:     lum,
		w:       w,
		h:       h,
		cell:    cfg.CellSize,
		invCell: 1 / float64(cfg.CellSize),
		cellsX:  cellsX,
		cellsY:  cellsY,
		bins:    cfg.Bins,
		maxX:    cellsX * cfg.CellSize,
		maxY:    cellsY * cfg.CellSize,
		interp:  cfg.InterpolateCells,
		bt:      &s.bt,
		hist:    dst.Hist,
	}
	fc.numBands = (cellsY + bandCellRows - 1) / bandCellRows
	if fc.interp {
		n := fc.numBands * 2 * cellsX * cfg.Bins
		if cap(s.halo) < n {
			s.halo = make([]float64, n)
		}
		fc.halo = s.halo[:n]
		for i := range fc.halo {
			fc.halo[i] = 0
		}
	}

	if workers > fc.numBands {
		workers = fc.numBands
	}
	if workers <= 1 {
		for b := 0; b < fc.numBands; b++ {
			fc.band(b)
		}
	} else {
		var next int32
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						errs[i] = fmt.Errorf("hog: band worker panic: %v", r)
					}
				}()
				for {
					b := int(atomic.AddInt32(&next, 1)) - 1
					if b >= fc.numBands || errs[i] != nil {
						return
					}
					fc.band(b)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Deterministic halo merge: ascending band order, top halo before
	// bottom, matching what a serial band sweep produces.
	if fc.interp {
		rowLen := cellsX * cfg.Bins
		for b := 0; b < fc.numBands; b++ {
			top := fc.halo[b*2*rowLen : b*2*rowLen+rowLen]
			bot := fc.halo[b*2*rowLen+rowLen : (b+1)*2*rowLen]
			if r := b*bandCellRows - 1; r >= 0 {
				addRow(dst.Hist[r*rowLen:(r+1)*rowLen], top)
			}
			if r := (b + 1) * bandCellRows; r < cellsY {
				addRow(dst.Hist[r*rowLen:(r+1)*rowLen], bot)
			}
		}
	}
	return nil
}

func addRow(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// band histograms the pixel rows of cell-row band b.
func (fc *fusedCtx) band(b int) {
	r0 := b * bandCellRows
	r1 := r0 + bandCellRows
	if r1 > fc.cellsY {
		r1 = fc.cellsY
	}
	y0, y1 := r0*fc.cell, r1*fc.cell
	if fc.interp {
		rowLen := fc.cellsX * fc.bins
		top := fc.halo[b*2*rowLen : b*2*rowLen+rowLen]
		bot := fc.halo[b*2*rowLen+rowLen : (b+1)*2*rowLen]
		for y := y0; y < y1; y++ {
			fc.rowInterp(y, r0, r1, top, bot)
		}
		return
	}
	for y := y0; y < y1; y++ {
		histRow := fc.hist[(y/fc.cell)*fc.cellsX*fc.bins:]
		if y == 0 || y+1 >= fc.h {
			fc.rowBorder(y, histRow)
		} else {
			fc.rowInterior(y, histRow)
		}
	}
}

// vote accumulates one gradient into a cell histogram slice. It is a
// hand-merged copy of binTable.bin + atanSmall + the two accumulates: the
// three nested calls each cost a register spill of the live row state under
// Go's caller-saved float ABI, and none of them fits the inlining budget.
// The float expression sequence is verbatim identical to bin() (the
// specification copy, exercised by TestBinThresholdTies and the
// interpolation path); any edit here must be mirrored there.
func (fc *fusedCtx) vote(h []float64, gx, gy, m2 float64) {
	mag := math.Sqrt(m2)
	t := fc.bt
	// Branchless half-plane fold: flip both components by gy's sign bit.
	// Gradient angles are data-random, so a compare-and-branch fold would
	// mispredict half the time. (gy is never -0 here: luminances are
	// non-negative and IEEE subtraction of equal values rounds to +0, so
	// the sign-bit test agrees exactly with gy < 0.)
	sgn := math.Float64bits(gy) & (1 << 63)
	gx = math.Float64frombits(math.Float64bits(gx) ^ sgn)
	gy = math.Float64frombits(math.Float64bits(gy) ^ sgn)
	cosT := t.cos
	sinT := t.sin[:len(cosT)]
	neg := 0
	for b := range cosT {
		cross := gy*cosT[b] - gx*sinT[b]
		neg += int(math.Float64bits(cross) >> 63)
	}
	k := t.bins - neg
	b0 := k - 1
	if b0 < 0 {
		b0 = t.bins - 1
	}
	b1 := k
	if b1 >= t.bins {
		b1 = 0
	}
	ce, se := t.cosE[k], t.sinE[k]
	v := gy*ce - gx*se
	u := gx*ce + gy*se
	x := v / u
	var a float64
	if t.poly {
		const (
			c1  = -1.0 / 3
			c2  = 1.0 / 5
			c3  = -1.0 / 7
			c4  = 1.0 / 9
			c5  = -1.0 / 11
			c6  = 1.0 / 13
			c7  = -1.0 / 15
			c8  = 1.0 / 17
			c9  = -1.0 / 19
			c10 = 1.0 / 21
			c11 = -1.0 / 23
		)
		z := x * x
		z2 := z * z
		z4 := z2 * z2
		p01 := 1 + c1*z
		p23 := c2 + c3*z
		p45 := c4 + c5*z
		p67 := c6 + c7*z
		p89 := c8 + c9*z
		pAB := c10 + c11*z
		q0 := p01 + p23*z2
		q1 := p45 + p67*z2
		q2 := p89 + pAB*z2
		a = x * (q0 + (q1+q2*z4)*z4)
	} else {
		a = math.Atan(x)
	}
	alpha := 0.5 + a*t.invW
	if alpha > 1 {
		alpha = 1
	} else if alpha < 0 {
		alpha = 0
	}
	h[b0] += mag * (1 - alpha)
	h[b1] += mag * alpha
}

// rowInterior processes one pixel row with both vertical neighbours in
// range: gradients read three raw row slices directly, and each cell span
// runs through equal-length slice windows so the inner loop carries no
// bounds checks and no clamping.
func (fc *fusedCtx) rowInterior(y int, histRow []float64) {
	w := fc.w
	base := y * w
	here := fc.lum[base : base+w]
	above := fc.lum[base-w : base]
	below := fc.lum[base+w : base+2*w]

	// x = 0 is the only left-border pixel; x = w-1 the only right-border
	// one, and it is in play only when the cell grid reaches the last
	// column.
	{
		gx := here[1] - here[0]
		gy := below[0] - above[0]
		if m2 := gx*gx + gy*gy; m2 != 0 {
			fc.vote(histRow[:fc.bins], gx, gy, m2)
		}
	}
	xEnd := fc.maxX
	clampRight := fc.maxX == w
	if clampRight {
		xEnd = w - 1
	}
	for cx := 0; cx < fc.cellsX; cx++ {
		x0 := cx * fc.cell
		if x0 == 0 {
			x0 = 1
		}
		x1 := (cx + 1) * fc.cell
		if x1 > xEnd {
			x1 = xEnd
		}
		if x1 <= x0 {
			continue
		}
		h := histRow[cx*fc.bins : cx*fc.bins+fc.bins]
		a := above[x0:x1]
		bl := below[x0:x1]
		l := here[x0-1 : x1-1]
		r := here[x0+1 : x1+1]
		for i := range a {
			gx := r[i] - l[i]
			gy := bl[i] - a[i]
			m2 := gx*gx + gy*gy
			if m2 == 0 {
				continue
			}
			fc.vote(h, gx, gy, m2)
		}
	}
	if clampRight {
		x := w - 1
		gx := here[x] - here[x-1]
		gy := below[x] - above[x]
		if m2 := gx*gx + gy*gy; m2 != 0 {
			fc.vote(histRow[(fc.cellsX-1)*fc.bins:fc.cellsX*fc.bins], gx, gy, m2)
		}
	}
}

// rowBorder processes a top or bottom pixel row with replicate-clamp
// vertical neighbours (and clamped horizontal neighbours at the two ends),
// preserving the reference's border semantics.
func (fc *fusedCtx) rowBorder(y int, histRow []float64) {
	w := fc.w
	ym, yp := y-1, y+1
	if ym < 0 {
		ym = 0
	}
	if yp >= fc.h {
		yp = fc.h - 1
	}
	here := fc.lum[y*w : y*w+w]
	above := fc.lum[ym*w : ym*w+w]
	below := fc.lum[yp*w : yp*w+w]
	for x := 0; x < fc.maxX; x++ {
		xm, xp := x-1, x+1
		if xm < 0 {
			xm = 0
		}
		if xp >= w {
			xp = w - 1
		}
		gx := here[xp] - here[xm]
		gy := below[x] - above[x]
		m2 := gx*gx + gy*gy
		if m2 == 0 {
			continue
		}
		fc.vote(histRow[(x/fc.cell)*fc.bins:], gx, gy, m2)
	}
}

// rowInterp processes one pixel row with bilinear cell interpolation.
// Contributions to cell rows owned by the band go straight into the grid;
// the one possible row above (top) and below (bot) the band go into the
// band's private halo rows, merged deterministically afterwards.
func (fc *fusedCtx) rowInterp(y, r0, r1 int, top, bot []float64) {
	w := fc.w
	here := fc.lum[y*w : y*w+w]
	ym, yp := y-1, y+1
	if ym < 0 {
		ym = 0
	}
	if yp >= fc.h {
		yp = fc.h - 1
	}
	above := fc.lum[ym*w : ym*w+w]
	below := fc.lum[yp*w : yp*w+w]

	fy := (float64(y)+0.5)*fc.invCell - 0.5
	cy0 := int(math.Floor(fy))
	ay := fy - float64(cy0)
	rowLen := fc.cellsX * fc.bins
	// Resolve the two destination rows once per pixel row.
	dest := func(cy int) []float64 {
		switch {
		case cy < 0 || cy >= fc.cellsY:
			return nil
		case cy >= r0 && cy < r1:
			return fc.hist[cy*rowLen : (cy+1)*rowLen]
		case cy == r0-1:
			return top
		default: // cy == r1, the only other reachable row
			return bot
		}
	}
	d0 := dest(cy0)
	d1 := dest(cy0 + 1)
	w0 := 1 - ay
	w1 := ay

	for x := 0; x < fc.maxX; x++ {
		xm, xp := x-1, x+1
		if xm < 0 {
			xm = 0
		}
		if xp >= w {
			xp = w - 1
		}
		gx := here[xp] - here[xm]
		gy := below[x] - above[x]
		m2 := gx*gx + gy*gy
		if m2 == 0 {
			continue
		}
		mag := math.Sqrt(m2)
		b0, b1, alpha := fc.bt.bin(gx, gy)
		v0 := mag * (1 - alpha)
		v1 := mag * alpha

		fx := (float64(x)+0.5)*fc.invCell - 0.5
		cx0 := int(math.Floor(fx))
		ax := fx - float64(cx0)

		if d0 != nil {
			if cx0 >= 0 {
				h := d0[cx0*fc.bins:]
				wc := w0 * (1 - ax)
				h[b0] += v0 * wc
				h[b1] += v1 * wc
			}
			if cx0+1 < fc.cellsX {
				h := d0[(cx0+1)*fc.bins:]
				wc := w0 * ax
				h[b0] += v0 * wc
				h[b1] += v1 * wc
			}
		}
		if d1 != nil {
			if cx0 >= 0 {
				h := d1[cx0*fc.bins:]
				wc := w1 * (1 - ax)
				h[b0] += v0 * wc
				h[b1] += v1 * wc
			}
			if cx0+1 < fc.cellsX {
				h := d1[(cx0+1)*fc.bins:]
				wc := w1 * ax
				h[b0] += v0 * wc
				h[b1] += v1 * wc
			}
		}
	}
}
