package hog

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/imgproc"
)

// equivTol is the histogram agreement bound between the fused fast path and
// ReferenceComputeCells: both accumulate the same votes up to float
// rounding (Sqrt vs Hypot, threshold comparator + rotated Atan vs Atan2),
// so per-bin differences stay many orders below any signal.
const equivTol = 1e-12

// equivImages builds the adversarial image set of the differential sweep:
// random noise, constant (zero-gradient), single vertical and horizontal
// edges (all votes on one threshold), a checkerboard (diagonal gradients),
// and degenerate one-cell-tall/wide strips, over sizes that exercise both
// whole-cell and partial-cell right/bottom edges.
func equivImages(cell int) map[string]*imgproc.Gray {
	rng := rand.New(rand.NewSource(7))
	noise := func(w, h int) *imgproc.Gray {
		g := imgproc.NewGray(w, h)
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		return g
	}
	vedge := imgproc.NewGray(8*cell+3, 4*cell)
	for y := 0; y < vedge.H; y++ {
		for x := vedge.W / 2; x < vedge.W; x++ {
			vedge.Set(x, y, 230)
		}
	}
	hedge := imgproc.NewGray(4*cell, 8*cell+5)
	for y := hedge.H / 2; y < hedge.H; y++ {
		for x := 0; x < hedge.W; x++ {
			hedge.Set(x, y, 230)
		}
	}
	checker := imgproc.NewGray(5*cell+1, 5*cell+2)
	for y := 0; y < checker.H; y++ {
		for x := 0; x < checker.W; x++ {
			if (x+y)%2 == 0 {
				checker.Set(x, y, 255)
			}
		}
	}
	constant := imgproc.NewGray(4*cell, 3*cell)
	constant.Fill(128)
	return map[string]*imgproc.Gray{
		"noise-exact":   noise(8*cell, 6*cell),
		"noise-partial": noise(8*cell+cell/2+1, 6*cell+cell-1),
		"constant":      constant,
		"vertical-edge": vedge,
		"horiz-edge":    hedge,
		"checkerboard":  checker,
		"one-cell-tall": noise(9*cell+2, cell),
		"one-cell-wide": noise(cell, 9*cell+3),
	}
}

// equivConfigs sweeps every Config axis that reaches the front end.
func equivConfigs(cell int) []Config {
	var out []Config
	for _, gamma := range []bool{false, true} {
		for _, interp := range []bool{false, true} {
			for _, layout := range []Layout{LayoutPerCell, LayoutOverlap} {
				for _, norm := range []Norm{L2Hys, L2, L1Sqrt} {
					cfg := DefaultConfig()
					cfg.CellSize = cell
					cfg.SqrtGamma = gamma
					cfg.InterpolateCells = interp
					cfg.Layout = layout
					cfg.Norm = norm
					out = append(out, cfg)
				}
			}
		}
	}
	// Off-default bins and block geometry.
	odd := DefaultConfig()
	odd.CellSize = cell
	odd.Bins = 6
	odd.BlockCells = 3
	odd.InterpolateCells = true
	out = append(out, odd)
	return out
}

func diffGrids(t *testing.T, label string, ref, got *CellGrid) {
	t.Helper()
	if ref.CellsX != got.CellsX || ref.CellsY != got.CellsY || ref.Bins != got.Bins {
		t.Fatalf("%s: grid shape %dx%dx%d, reference %dx%dx%d",
			label, got.CellsX, got.CellsY, got.Bins, ref.CellsX, ref.CellsY, ref.Bins)
	}
	for i := range ref.Hist {
		d := math.Abs(ref.Hist[i] - got.Hist[i])
		if d > equivTol*math.Max(1, math.Abs(ref.Hist[i])) {
			t.Fatalf("%s: hist[%d] = %.17g, reference %.17g (diff %g)",
				label, i, got.Hist[i], ref.Hist[i], d)
		}
	}
}

// TestFastPathEquivalence is the differential sweep: for every Config
// combination and adversarial image, the fused fast path must match
// ReferenceComputeCells within equivTol, the scratch variant must be
// byte-identical to the allocating one, and any worker count must be
// byte-identical to workers=1. The normalized feature maps must agree to
// the same tolerance.
func TestFastPathEquivalence(t *testing.T) {
	for _, cell := range []int{8, 5} {
		images := equivImages(cell)
		for _, cfg := range equivConfigs(cell) {
			for name, img := range images {
				label := fmt.Sprintf("cell=%d gamma=%v interp=%v layout=%v norm=%v bins=%d img=%s",
					cfg.CellSize, cfg.SqrtGamma, cfg.InterpolateCells, cfg.Layout, cfg.Norm, cfg.Bins, name)
				ref, err := ReferenceComputeCells(img, cfg)
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				got, err := ComputeCells(img, cfg)
				if err != nil {
					t.Fatalf("%s: fast: %v", label, err)
				}
				diffGrids(t, label, ref, got)

				s := NewScratch()
				g1, err := ComputeCellsInto(img, cfg, s, 1)
				if err != nil {
					t.Fatalf("%s: into: %v", label, err)
				}
				for i := range got.Hist {
					if math.Float64bits(got.Hist[i]) != math.Float64bits(g1.Hist[i]) {
						t.Fatalf("%s: scratch hist[%d] = %.17g, serial %.17g (must be byte-identical)",
							label, i, g1.Hist[i], got.Hist[i])
					}
				}
				for _, workers := range []int{2, 5} {
					sw := NewScratch()
					gw, err := ComputeCellsInto(img, cfg, sw, workers)
					if err != nil {
						t.Fatalf("%s: workers=%d: %v", label, workers, err)
					}
					for i := range g1.Hist {
						if math.Float64bits(g1.Hist[i]) != math.Float64bits(gw.Hist[i]) {
							t.Fatalf("%s: workers=%d hist[%d] = %.17g, workers=1 %.17g (must be byte-identical)",
								label, workers, i, gw.Hist[i], g1.Hist[i])
						}
					}
				}

				// Normalized features carry the same bound: same math on
				// near-identical inputs.
				refFM, refErr := Normalize(ref, cfg)
				gotFM, err := ComputeInto(img, cfg, s, 1)
				if refErr != nil {
					// e.g. a one-cell-tall grid cannot form an overlap
					// block; the fast path must refuse identically.
					if err == nil {
						t.Fatalf("%s: reference normalize failed (%v) but fast path succeeded", label, refErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: compute into: %v", label, err)
				}
				if refFM.BlocksX != gotFM.BlocksX || refFM.BlocksY != gotFM.BlocksY {
					t.Fatalf("%s: map %dx%d, reference %dx%d", label,
						gotFM.BlocksX, gotFM.BlocksY, refFM.BlocksX, refFM.BlocksY)
				}
				for i := range refFM.Feat {
					a, b := refFM.Feat[i], gotFM.Feat[i]
					d := math.Abs(a - b)
					if cfg.Norm == L1Sqrt {
						// The element-wise square root amplifies the
						// ~1e-16 histogram rounding differences near
						// zero; compare the squares instead, which carry
						// the histogram-level bound.
						d = math.Abs(a*a - b*b)
					}
					if d > 1e-10 {
						t.Fatalf("%s: feat[%d] = %.17g, reference %.17g (diff %g)",
							label, i, gotFM.Feat[i], refFM.Feat[i], d)
					}
				}
			}
		}
	}
}

// TestBinThresholdTies pins the defined tie semantics of the tangent-
// threshold comparator: a gradient lying exactly on threshold b — built as
// (cos_b, sin_b), whose cross product cancels exactly in floats — selects
// the bin pair (b, b+1) deterministically, with alpha at zero up to float
// rounding (the bin choice is exact; alpha is a continuous weight recovered
// through the rotated arctangent, so it carries a couple of ulps).
const tieTol = 1e-15

func TestBinThresholdTies(t *testing.T) {
	for _, bins := range []int{9, 6, 2} {
		var bt binTable
		bt.init(bins)
		for b := 0; b < bins; b++ {
			b0, b1, alpha := bt.bin(bt.cos[b], bt.sin[b])
			if b0 != b || alpha > tieTol {
				t.Errorf("bins=%d threshold %d: got b0=%d alpha=%g, want b0=%d alpha~0", bins, b, b0, alpha, b)
			}
			wantB1 := (b + 1) % bins
			if b1 != wantB1 {
				t.Errorf("bins=%d threshold %d: b1=%d, want %d", bins, b, b1, wantB1)
			}
			// The same direction scaled by a power of two (an exact float
			// multiply) keeps the tie exact.
			if b0s, _, alphaS := bt.bin(4*bt.cos[b], 4*bt.sin[b]); b0s != b || alphaS > tieTol {
				t.Errorf("bins=%d scaled threshold %d: got b0=%d alpha=%g", bins, b, b0s, alphaS)
			}
			// The negated direction is the same unsigned orientation.
			if b0n, _, alphaN := bt.bin(-bt.cos[b], -bt.sin[b]); b0n != b || alphaN > tieTol {
				t.Errorf("bins=%d negated threshold %d: got b0=%d alpha=%g", bins, b, b0n, alphaN)
			}
		}
		// A horizontal gradient sits exactly between the last and first
		// bins: alpha = 0.5 within float rounding, wrapping lower bin.
		for _, gx := range []float64{1, -1} {
			b0, b1, alpha := bt.bin(gx, 0)
			if b0 != bins-1 || b1 != 0 {
				t.Errorf("bins=%d gx=%g: bin pair (%d,%d), want (%d,0)", bins, gx, b0, b1, bins-1)
			}
			if math.Abs(alpha-0.5) > 1e-15 {
				t.Errorf("bins=%d gx=%g: alpha=%g, want 0.5", bins, gx, alpha)
			}
		}
	}
}

// TestComputeCellsIntoReuse checks that a Scratch survives shape changes:
// growing, shrinking, and switching configs between frames.
func TestComputeCellsIntoReuse(t *testing.T) {
	s := NewScratch()
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.InterpolateCells = true
	cfgB.Bins = 6
	rng := rand.New(rand.NewSource(11))
	for i, dims := range [][2]int{{64, 128}, {320, 240}, {16, 16}, {129, 65}, {320, 240}} {
		img := imgproc.NewGray(dims[0], dims[1])
		for j := range img.Pix {
			img.Pix[j] = uint8(rng.Intn(256))
		}
		for _, cfg := range []Config{cfgA, cfgB} {
			ref, err := ReferenceComputeCells(img, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ComputeCellsInto(img, cfg, s, 3)
			if err != nil {
				t.Fatal(err)
			}
			diffGrids(t, fmt.Sprintf("frame %d %dx%d bins=%d", i, dims[0], dims[1], cfg.Bins), ref, got)
		}
	}
}
