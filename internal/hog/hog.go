// Package hog implements the Dalal-Triggs histogram-of-oriented-gradients
// descriptor used by the paper: centered [-1,0,1] gradients, 9 unsigned
// orientation bins with two-nearest-bin magnitude voting, 8x8-pixel cells,
// 2x2-cell blocks, and L2-Hys block normalization.
//
// Two block layouts are supported, because the paper's software analysis and
// its hardware use slightly different ones:
//
//   - LayoutOverlap: the original Dalal-Triggs dense overlapping layout.
//     A frame of cx x cy cells has (cx-1) x (cy-1) blocks, and a 64x128
//     window (8x16 cells) contains 7x15 = 105 blocks = 3780 features.
//
//   - LayoutPerCell: the hardware layout of Hemmati et al. [DSD'14], where
//     every cell owns the normalized block anchored at it (its right/bottom
//     neighbours complete the block, clamped at the frame edge). A frame of
//     cx x cy cells has cx x cy blocks and a 64x128 window contains
//     8x16 = 128 blocks = 4608 features — matching the paper's "each
//     detection window is consisted of 16x8 blocks" and the NHOGMem banking.
//
// The dense FeatureMap form is what the paper's contribution operates on:
// package featpyr down-samples FeatureMaps to form the HOG feature pyramid.
package hog

import (
	"fmt"

	"repro/internal/imgproc"
)

// Layout selects how blocks tile the cell grid.
type Layout int

const (
	// LayoutOverlap is the Dalal-Triggs layout: blocks at every interior
	// cell corner, (cx-1) x (cy-1) blocks for a cx x cy cell grid.
	LayoutOverlap Layout = iota
	// LayoutPerCell is the hardware layout: one block anchored at every
	// cell, neighbours clamped at the frame edge, cx x cy blocks.
	LayoutPerCell
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutOverlap:
		return "overlap"
	case LayoutPerCell:
		return "percell"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Norm selects the block normalization scheme.
type Norm int

const (
	// L2Hys is L2 normalization, clipping at HysClip, then renormalizing
	// (the Dalal-Triggs default).
	L2Hys Norm = iota
	// L2 is plain L2 normalization.
	L2
	// L1Sqrt is L1 normalization followed by element-wise square root.
	L1Sqrt
)

// String implements fmt.Stringer.
func (n Norm) String() string {
	switch n {
	case L2Hys:
		return "l2hys"
	case L2:
		return "l2"
	case L1Sqrt:
		return "l1sqrt"
	}
	return fmt.Sprintf("Norm(%d)", int(n))
}

// Config holds the HOG parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	CellSize   int     // cell side in pixels (8)
	BlockCells int     // block side in cells (2)
	Bins       int     // orientation bins over [0, pi) (9)
	Norm       Norm    // block normalization scheme
	HysClip    float64 // L2-Hys clipping threshold (0.2)
	Epsilon    float64 // normalization regularizer (1e-3 in [0,1] pixel units)
	Layout     Layout  // block tiling
	// InterpolateCells additionally splits each pixel's vote bilinearly
	// across the four nearest cells (full Dalal-Triggs trilinear voting).
	// The paper's hardware bins pixels into their own cell only, so the
	// default is false.
	InterpolateCells bool
	// SqrtGamma applies sqrt gamma compression to pixel values before
	// gradient computation (a Dalal-Triggs option; off by default to match
	// the hardware).
	SqrtGamma bool
}

// DefaultConfig returns the configuration used throughout the paper:
// 8x8 cells, 2x2-cell blocks, 9 bins, L2-Hys, hardware block layout.
func DefaultConfig() Config {
	return Config{
		CellSize:   8,
		BlockCells: 2,
		Bins:       9,
		Norm:       L2Hys,
		HysClip:    0.2,
		Epsilon:    1e-3,
		Layout:     LayoutPerCell,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CellSize < 2 {
		return fmt.Errorf("hog: cell size %d too small", c.CellSize)
	}
	if c.BlockCells < 1 {
		return fmt.Errorf("hog: block size %d cells too small", c.BlockCells)
	}
	if c.Bins < 2 {
		return fmt.Errorf("hog: %d bins too few", c.Bins)
	}
	if c.HysClip <= 0 {
		return fmt.Errorf("hog: non-positive hys clip %g", c.HysClip)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("hog: non-positive epsilon %g", c.Epsilon)
	}
	return nil
}

// BlockLen returns the length of one normalized block vector
// (BlockCells^2 * Bins; 36 for the paper's parameters).
func (c Config) BlockLen() int { return c.BlockCells * c.BlockCells * c.Bins }

// WindowCells returns the window size in cells for a pixel window of
// w x h pixels (truncating partial cells).
func (c Config) WindowCells(w, h int) (cx, cy int) {
	return w / c.CellSize, h / c.CellSize
}

// WindowBlocks returns the number of blocks spanned by a window of
// wCellsX x wCellsY cells under the configured layout.
func (c Config) WindowBlocks(wCellsX, wCellsY int) (bx, by int) {
	switch c.Layout {
	case LayoutOverlap:
		bx = wCellsX - c.BlockCells + 1
		by = wCellsY - c.BlockCells + 1
	case LayoutPerCell:
		bx, by = wCellsX, wCellsY
	}
	if bx < 0 {
		bx = 0
	}
	if by < 0 {
		by = 0
	}
	return bx, by
}

// DescriptorLen returns the length of the descriptor for a w x h pixel
// window (3780 for 64x128 overlap layout, 4608 for per-cell layout).
func (c Config) DescriptorLen(w, h int) int {
	cx, cy := c.WindowCells(w, h)
	bx, by := c.WindowBlocks(cx, cy)
	return bx * by * c.BlockLen()
}

// CellGrid holds the raw (un-normalized) per-cell orientation histograms of
// a frame: CellsX x CellsY cells, Bins values per cell, row-major.
type CellGrid struct {
	CellsX, CellsY int
	Bins           int
	Hist           []float64
}

// At returns the histogram slice of cell (cx, cy). The returned slice
// aliases the grid.
func (g *CellGrid) At(cx, cy int) []float64 {
	i := (cy*g.CellsX + cx) * g.Bins
	return g.Hist[i : i+g.Bins]
}

// ComputeCells computes the dense per-cell gradient orientation histograms
// of img. Pixels in partial cells at the right/bottom edges are ignored,
// matching the streaming hardware. The image must be at least one cell in
// each dimension.
//
// This entry point runs the fused tangent-threshold fast path (see fast.go)
// serially and returns a freshly allocated, caller-owned grid; temporaries
// are recycled through an internal pool. For an allocation-free steady
// state or banded parallelism use ComputeCellsInto with a Scratch.
// ReferenceComputeCells retains the original Atan2/Hypot implementation as
// the numerical reference.
func ComputeCells(img *imgproc.Gray, cfg Config) (*CellGrid, error) {
	cellsX, cellsY, err := checkCells(img, cfg)
	if err != nil {
		return nil, err
	}
	grid := &CellGrid{
		CellsX: cellsX,
		CellsY: cellsY,
		Bins:   cfg.Bins,
		Hist:   make([]float64, cellsX*cellsY*cfg.Bins),
	}
	s := scratchPool.Get().(*Scratch)
	err = computeCellsImpl(img, cfg, grid, s, 1)
	scratchPool.Put(s)
	if err != nil {
		return nil, err
	}
	return grid, nil
}
