package hog

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

func mustCells(t *testing.T, img *imgproc.Gray, cfg Config) *CellGrid {
	t.Helper()
	g, err := ComputeCells(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustCompute(t *testing.T, img *imgproc.Gray, cfg Config) *FeatureMap {
	t.Helper()
	fm, err := Compute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fm
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CellSize: 1, BlockCells: 2, Bins: 9, HysClip: 0.2, Epsilon: 1e-3},
		{CellSize: 8, BlockCells: 0, Bins: 9, HysClip: 0.2, Epsilon: 1e-3},
		{CellSize: 8, BlockCells: 2, Bins: 1, HysClip: 0.2, Epsilon: 1e-3},
		{CellSize: 8, BlockCells: 2, Bins: 9, HysClip: 0, Epsilon: 1e-3},
		{CellSize: 8, BlockCells: 2, Bins: 9, HysClip: 0.2, Epsilon: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestDescriptorLengths(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.BlockLen(); got != 36 {
		t.Errorf("BlockLen = %d, want 36 (paper: 36 elements per block)", got)
	}
	// Hardware layout: 8x16 blocks x 36 = 4608 (paper: 16x8 blocks).
	if got := cfg.DescriptorLen(64, 128); got != 4608 {
		t.Errorf("per-cell descriptor = %d, want 4608", got)
	}
	cfg.Layout = LayoutOverlap
	// Dalal-Triggs: 7x15 blocks x 36 = 3780.
	if got := cfg.DescriptorLen(64, 128); got != 3780 {
		t.Errorf("overlap descriptor = %d, want 3780", got)
	}
}

func TestComputeCellsConstantImageIsZero(t *testing.T) {
	img := imgproc.NewGray(64, 64)
	img.Fill(123)
	grid := mustCells(t, img, DefaultConfig())
	for _, v := range grid.Hist {
		if v != 0 {
			t.Fatal("constant image should produce zero histograms")
		}
	}
}

func TestComputeCellsGridDimensions(t *testing.T) {
	cfg := DefaultConfig()
	img := imgproc.NewGray(65, 71) // partial cells at the edges are dropped
	grid := mustCells(t, img, cfg)
	if grid.CellsX != 8 || grid.CellsY != 8 {
		t.Errorf("grid %dx%d, want 8x8", grid.CellsX, grid.CellsY)
	}
	// Too-small image errors.
	if _, err := ComputeCells(imgproc.NewGray(4, 4), cfg); err == nil {
		t.Error("sub-cell image should error")
	}
}

// TestVerticalEdgeBinsHorizontalGradient: a vertical edge produces a purely
// horizontal gradient, i.e. orientation 0 which lands in the bins nearest
// theta=0 (bin 0, and by the centered-bin convention partially the last bin).
func TestVerticalEdgeBinsHorizontalGradient(t *testing.T) {
	cfg := DefaultConfig()
	img := imgproc.NewGray(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			img.Set(x, y, 255)
		}
	}
	grid := mustCells(t, img, cfg)
	// The edge runs through cells (1,*) and (2,*). Sum all cells.
	sums := make([]float64, cfg.Bins)
	for i, v := range grid.Hist {
		sums[i%cfg.Bins] += v
	}
	// theta=0 is half way between bin 8 and bin 0 centers (centered bins),
	// so those two bins share the mass; every other bin stays empty.
	var other float64
	for b := 1; b < 8; b++ {
		other += sums[b]
	}
	if sums[0] == 0 || sums[8] == 0 {
		t.Errorf("horizontal gradient mass: bin0=%v bin8=%v", sums[0], sums[8])
	}
	if other > 1e-9 {
		t.Errorf("unexpected mass %v in middle bins: %v", other, sums)
	}
	if math.Abs(sums[0]-sums[8]) > 1e-9 {
		t.Errorf("theta=0 should split evenly: bin0=%v bin8=%v", sums[0], sums[8])
	}
}

// TestHorizontalEdge: a horizontal edge gives a vertical gradient
// (theta = pi/2), the center of bin 4 for 9 bins.
func TestHorizontalEdge(t *testing.T) {
	cfg := DefaultConfig()
	img := imgproc.NewGray(32, 32)
	for y := 16; y < 32; y++ {
		for x := 0; x < 32; x++ {
			img.Set(x, y, 255)
		}
	}
	grid := mustCells(t, img, cfg)
	sums := make([]float64, cfg.Bins)
	for i, v := range grid.Hist {
		sums[i%cfg.Bins] += v
	}
	for b := range sums {
		if b == 4 {
			if sums[b] == 0 {
				t.Error("bin 4 (vertical gradient) empty")
			}
			continue
		}
		if sums[b] > 1e-9 {
			t.Errorf("bin %d has unexpected mass %v", b, sums[b])
		}
	}
}

// TestDiagonalEdgeSplitsBins: a 45-degree gradient falls between bins and
// must be split across the two nearest.
func TestDiagonalEdgeSplitsBins(t *testing.T) {
	cfg := DefaultConfig()
	img := imgproc.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x+y > 64 {
				img.Set(x, y, 255)
			}
		}
	}
	grid := mustCells(t, img, cfg)
	sums := make([]float64, cfg.Bins)
	var total float64
	for i, v := range grid.Hist {
		sums[i%cfg.Bins] += v
		total += v
	}
	// The edge x+y=64 has gradient direction (1,1): theta = pi/4 = 45 deg
	// -> fb = 45/20 - 0.5 = 1.75: bins 1 and 2, bin 2 taking alpha = 0.75.
	if (sums[1]+sums[2])/total < 0.95 {
		t.Errorf("diagonal mass not in bins 1/2: %v", sums)
	}
	if sums[2] < sums[1] {
		t.Errorf("bin 2 should dominate (alpha=0.75): %v vs %v", sums[1], sums[2])
	}
}

// TestVoteConservation: total histogram mass equals the sum of gradient
// magnitudes over counted pixels (votes are split, never lost), without
// spatial interpolation.
func TestVoteConservation(t *testing.T) {
	cfg := DefaultConfig()
	img := randomImage(64, 64, 5)
	grid := mustCells(t, img, cfg)
	var got float64
	for _, v := range grid.Hist {
		got += v
	}
	var want float64
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x > 63 {
			x = 63
		}
		if y < 0 {
			y = 0
		}
		if y > 63 {
			y = 63
		}
		return float64(img.Pix[y*64+x]) / 255
	}
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			gx := at(x+1, y) - at(x-1, y)
			gy := at(x, y+1) - at(x, y-1)
			want += math.Hypot(gx, gy)
		}
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("vote mass %v, gradient mass %v", got, want)
	}
}

func randomImage(w, h int, seed int64) *imgproc.Gray {
	img := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	return img
}

func TestNormalizeBlockNormBounds(t *testing.T) {
	cfg := DefaultConfig()
	img := randomImage(64, 128, 6)
	fm := mustCompute(t, img, cfg)
	for by := 0; by < fm.BlocksY; by++ {
		for bx := 0; bx < fm.BlocksX; bx++ {
			var ss float64
			for _, v := range fm.Block(bx, by) {
				if v < 0 {
					t.Fatalf("negative feature at block (%d,%d)", bx, by)
				}
				// Renormalization after clipping can lift values a
				// little above HysClip; they stay well below 2x.
				if v > 2*cfg.HysClip {
					t.Fatalf("feature %v far exceeds hys clip at block (%d,%d)", v, bx, by)
				}
				ss += v * v
			}
			if n := math.Sqrt(ss); n > 1+1e-9 {
				t.Fatalf("block (%d,%d) norm %v > 1", bx, by, n)
			}
		}
	}
}

// TestNormalizationContrastInvariance: scaling image contrast leaves the
// normalized descriptor (nearly) unchanged — the purpose of block
// normalization.
func TestNormalizationContrastInvariance(t *testing.T) {
	cfg := DefaultConfig()
	img := randomImage(64, 128, 7)
	bright := imgproc.AdjustContrast(imgproc.BoxBlur(img, 1), 0.5, 0)
	base := imgproc.BoxBlur(img, 1)
	d1, err := Descriptor(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Descriptor(bright, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dot, n1, n2 float64
	for i := range d1 {
		dot += d1[i] * d2[i]
		n1 += d1[i] * d1[i]
		n2 += d2[i] * d2[i]
	}
	cos := dot / math.Sqrt(n1*n2)
	if cos < 0.98 {
		t.Errorf("cosine similarity under contrast halving = %.4f, want > 0.98", cos)
	}
}

func TestLayoutDimensions(t *testing.T) {
	img := randomImage(128, 96, 8) // 16x12 cells
	perCell := DefaultConfig()
	fm1 := mustCompute(t, img, perCell)
	if fm1.BlocksX != 16 || fm1.BlocksY != 12 {
		t.Errorf("per-cell blocks %dx%d, want 16x12", fm1.BlocksX, fm1.BlocksY)
	}
	overlap := DefaultConfig()
	overlap.Layout = LayoutOverlap
	fm2 := mustCompute(t, img, overlap)
	if fm2.BlocksX != 15 || fm2.BlocksY != 11 {
		t.Errorf("overlap blocks %dx%d, want 15x11", fm2.BlocksX, fm2.BlocksY)
	}
	// Interior blocks agree between layouts (clamping only affects edges).
	for by := 0; by < 11; by++ {
		for bx := 0; bx < 15; bx++ {
			b1, b2 := fm1.Block(bx, by), fm2.Block(bx, by)
			for i := range b1 {
				if math.Abs(b1[i]-b2[i]) > 1e-12 {
					t.Fatalf("interior block (%d,%d) differs between layouts", bx, by)
				}
			}
		}
	}
}

func TestWindowExtraction(t *testing.T) {
	img := randomImage(128, 192, 9)
	cfg := DefaultConfig()
	fm := mustCompute(t, img, cfg)
	d := fm.Window(2, 3, 8, 16)
	if len(d) != 4608 {
		t.Fatalf("window length %d, want 4608", len(d))
	}
	// First block of the window equals block (2,3) of the map.
	b := fm.Block(2, 3)
	for i := range b {
		if d[i] != b[i] {
			t.Fatal("window does not start with its anchor block")
		}
	}
	// Out-of-range windows return nil.
	if fm.Window(10, 10, 8, 16) != nil {
		t.Error("overflowing window should be nil")
	}
	// WindowInto matches Window.
	dst := make([]float64, 4608)
	if !fm.WindowInto(dst, 2, 3, 8, 16) {
		t.Fatal("WindowInto failed")
	}
	for i := range d {
		if dst[i] != d[i] {
			t.Fatal("WindowInto differs from Window")
		}
	}
	if fm.WindowInto(dst[:10], 2, 3, 8, 16) {
		t.Error("WindowInto with wrong-size dst should fail")
	}
}

// TestDescriptorMatchesWindowedFrame: the descriptor of a crop equals the
// corresponding window of the full-frame feature map away from clamped
// borders (cell alignment, per-cell layout).
func TestDescriptorMatchesWindowedFrame(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout = LayoutOverlap // interior blocks only, avoids edge clamping
	frame := randomImage(256, 256, 10)
	fm := mustCompute(t, frame, cfg)
	// A 64x128 window at cell offset (8, 8), i.e. pixel (64, 64).
	crop := frame.SubImage(geom.XYWH(64, 64, 64, 128))
	cd, err := Descriptor(crop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wd := fm.Window(8, 8, 7, 15)
	if len(cd) != len(wd) {
		t.Fatalf("length mismatch %d vs %d", len(cd), len(wd))
	}
	var maxDiff float64
	for i := range cd {
		d := math.Abs(cd[i] - wd[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	// The crop's border gradients use replicated borders while the frame
	// sees real neighbours, so edge blocks differ slightly; interior mass
	// dominates. Require close agreement on average.
	var mse float64
	for i := range cd {
		d := cd[i] - wd[i]
		mse += d * d
	}
	mse /= float64(len(cd))
	if mse > 1e-3 {
		t.Errorf("crop/window MSE = %v, want < 1e-3", mse)
	}
}

func TestNormSchemes(t *testing.T) {
	img := randomImage(64, 128, 11)
	for _, n := range []Norm{L2Hys, L2, L1Sqrt} {
		cfg := DefaultConfig()
		cfg.Norm = n
		fm := mustCompute(t, img, cfg)
		for _, v := range fm.Feat {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("%v produced invalid feature %v", n, v)
			}
		}
	}
}

func TestSqrtGammaChangesFeatures(t *testing.T) {
	img := randomImage(64, 128, 12)
	cfg := DefaultConfig()
	d1, _ := Descriptor(img, cfg)
	cfg.SqrtGamma = true
	d2, _ := Descriptor(img, cfg)
	same := true
	for i := range d1 {
		if d1[i] != d2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("sqrt gamma had no effect")
	}
}

func TestInterpolateCellsConservesMass(t *testing.T) {
	img := randomImage(64, 64, 13)
	cfg := DefaultConfig()
	cfg.InterpolateCells = true
	grid := mustCells(t, img, cfg)
	var withInterp float64
	for _, v := range grid.Hist {
		withInterp += v
	}
	cfg.InterpolateCells = false
	grid2 := mustCells(t, img, cfg)
	var without float64
	for _, v := range grid2.Hist {
		without += v
	}
	// Spatial interpolation loses the mass that falls off the cell grid at
	// image borders but must never create mass.
	if withInterp > without+1e-9 {
		t.Errorf("interpolation created mass: %v > %v", withInterp, without)
	}
	if withInterp < 0.8*without {
		t.Errorf("interpolation lost too much mass: %v vs %v", withInterp, without)
	}
}

// Property: descriptors are invariant to adding a constant to every pixel
// (gradients see only differences).
func TestBrightnessInvarianceProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64, offs uint8) bool {
		img := randomImage(32, 32, seed)
		// Keep pixel values in a range where +offset does not clip.
		for i := range img.Pix {
			img.Pix[i] = img.Pix[i]/2 + 30
		}
		shifted := img.Clone()
		o := offs % 60
		for i := range shifted.Pix {
			shifted.Pix[i] += o
		}
		d1, err1 := Descriptor(img, cfg)
		d2, err2 := Descriptor(shifted, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFlipSymmetry(t *testing.T) {
	// Mirroring the image permutes the descriptor but must preserve its
	// total energy (same gradient magnitudes, mirrored orientations).
	cfg := DefaultConfig()
	img := randomImage(64, 128, 14)
	d1, _ := Descriptor(img, cfg)
	d2, _ := Descriptor(imgproc.FlipH(img), cfg)
	e := func(d []float64) float64 {
		var s float64
		for _, v := range d {
			s += v * v
		}
		return s
	}
	e1, e2 := e(d1), e(d2)
	if math.Abs(e1-e2)/e1 > 0.02 {
		t.Errorf("flip changed descriptor energy: %v vs %v", e1, e2)
	}
}

func TestStringers(t *testing.T) {
	if LayoutOverlap.String() != "overlap" || LayoutPerCell.String() != "percell" {
		t.Error("Layout strings wrong")
	}
	if L2Hys.String() != "l2hys" || L2.String() != "l2" || L1Sqrt.String() != "l1sqrt" {
		t.Error("Norm strings wrong")
	}
	if Layout(9).String() == "" || Norm(9).String() == "" {
		t.Error("unknown values should still stringify")
	}
}
