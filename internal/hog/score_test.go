package hog

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imgproc"
)

func dotSlices(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func TestScoreWindowMatchesWindowDot(t *testing.T) {
	cfg := DefaultConfig()
	img := imgproc.NewGray(200, 240)
	rng := rand.New(rand.NewSource(21))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	fm, err := Compute(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wbx, wby := cfg.WindowBlocks(cfg.WindowCells(64, 128))
	w := make([]float64, wbx*wby*fm.BlockLen)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, anchor := range [][2]int{{0, 0}, {3, 5}, {fm.BlocksX - wbx, fm.BlocksY - wby}} {
		bx, by := anchor[0], anchor[1]
		got, ok := fm.ScoreWindow(w, bx, by, wbx, wby)
		if !ok {
			t.Fatalf("window (%d,%d) rejected", bx, by)
		}
		want := dotSlices(w, fm.Window(bx, by, wbx, wby))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("window (%d,%d): zero-copy score %v, copied score %v", bx, by, got, want)
		}
	}
}

func TestScoreWindowRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	fm := &FeatureMap{BlocksX: 10, BlocksY: 20, BlockLen: cfg.BlockLen(), Cfg: cfg}
	fm.Feat = make([]float64, 10*20*fm.BlockLen)
	w := make([]float64, 8*16*fm.BlockLen)
	if _, ok := fm.ScoreWindow(w, 2, 4, 8, 16); !ok {
		t.Error("in-range window rejected")
	}
	for _, bad := range [][4]int{
		{-1, 0, 8, 16}, // negative anchor
		{0, -1, 8, 16},
		{3, 0, 8, 16}, // overhangs the right edge
		{0, 5, 8, 16}, // overhangs the bottom edge
		{0, 0, 0, 16}, // degenerate window
		{0, 0, 8, 0},
	} {
		if _, ok := fm.ScoreWindow(w, bad[0], bad[1], bad[2], bad[3]); ok {
			t.Errorf("window %v accepted", bad)
		}
	}
	if _, ok := fm.ScoreWindow(w[:10], 0, 0, 8, 16); ok {
		t.Error("short weight vector accepted")
	}
}
