package hog

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/imgproc"
	"repro/internal/obs"
)

// Scratch is the reusable per-frame arena of the HOG front-end: the
// luminance plane, the cell grid, the normalized feature map, the banded
// interpolation halos, and the orientation threshold table all live here
// and are recycled across frames. A steady-state ComputeCellsInto /
// ComputeInto call allocates nothing (pinned by TestFrontEndAllocs).
//
// Ownership rules:
//
//   - The *CellGrid returned by ComputeCellsInto and the *FeatureMap
//     returned by ComputeInto alias the scratch; they are valid until the
//     next ...Into call on the same Scratch.
//   - A Scratch serves one frame at a time; concurrent frames need
//     distinct Scratches (core.Arena pools them per in-flight frame).
//   - Never hand scratch-owned maps to featpyr.ReleaseMap: the feature
//     slab belongs to the arena, not to featpyr's level pool.
type Scratch struct {
	// Metrics, if non-nil, receives the front end's stage timings
	// (StageHOGCells, StageHOGNorm). The detect path sets it on arena
	// checkout and clears it on check-in (core.Arena); recording is
	// nil-safe and allocation-free, so the metrics-off path costs one
	// branch and the alloc budgets hold either way.
	Metrics *obs.DetectRecorder

	lum  []float64
	halo []float64
	grid CellGrid
	fm   FeatureMap
	bt   binTable
	// fc is the per-pass context; it lives here (not on the stack) because
	// the band workers capture it, which would otherwise heap-allocate it
	// on every frame.
	fc fusedCtx
}

// NewScratch returns an empty arena; buffers grow on first use and are
// retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool recycles arenas for the allocating convenience entry points
// (ComputeCells, Compute), which still return caller-owned results but
// reuse pooled temporaries (luminance plane, halos, threshold table)
// between calls.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// checkCells validates cfg against img and returns the cell grid size.
func checkCells(img *imgproc.Gray, cfg Config) (cellsX, cellsY int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	cellsX = img.W / cfg.CellSize
	cellsY = img.H / cfg.CellSize
	if cellsX < 1 || cellsY < 1 {
		return 0, 0, fmt.Errorf("hog: image %dx%d smaller than one %dpx cell", img.W, img.H, cfg.CellSize)
	}
	return cellsX, cellsY, nil
}

// ComputeCellsInto computes dense cell histograms into s's reusable grid
// using the fused fast path, parallelized over cell-row bands by up to
// `workers` goroutines (<= 1 means serial; results are byte-identical at
// every worker count). The returned grid aliases s.
func ComputeCellsInto(img *imgproc.Gray, cfg Config, s *Scratch, workers int) (*CellGrid, error) {
	cellsX, cellsY, err := checkCells(img, cfg)
	if err != nil {
		return nil, err
	}
	n := cellsX * cellsY * cfg.Bins
	if cap(s.grid.Hist) < n {
		s.grid.Hist = make([]float64, n)
	}
	s.grid.CellsX, s.grid.CellsY, s.grid.Bins = cellsX, cellsY, cfg.Bins
	s.grid.Hist = s.grid.Hist[:n]
	t0 := time.Now()
	if err := computeCellsImpl(img, cfg, &s.grid, s, workers); err != nil {
		return nil, err
	}
	s.Metrics.Observe(obs.StageHOGCells, time.Since(t0))
	return &s.grid, nil
}

// ComputeInto runs the full fused pipeline (cells + block normalization)
// into s's reusable buffers. The returned map aliases s; see the Scratch
// ownership rules.
func ComputeInto(img *imgproc.Gray, cfg Config, s *Scratch, workers int) (*FeatureMap, error) {
	grid, err := ComputeCellsInto(img, cfg, s, workers)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := NormalizeInto(grid, cfg, &s.fm); err != nil {
		return nil, err
	}
	s.Metrics.Observe(obs.StageHOGNorm, time.Since(t0))
	return &s.fm, nil
}
