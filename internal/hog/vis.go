package hog

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// Visualization: render a feature map as the standard "HOG glyph" image —
// one star of oriented strokes per cell, stroke brightness proportional to
// bin energy, stroke direction perpendicular to the gradient direction
// (i.e. along the edge the bin responds to). Indispensable when debugging
// why a detector fires (or does not).

// VisualizeCells renders raw per-cell histograms at the given pixels-per-
// cell glyph size (e.g. 16). The output is glyph*CellsX x glyph*CellsY.
func VisualizeCells(grid *CellGrid, glyph int) (*imgproc.Gray, error) {
	if glyph < 4 {
		return nil, fmt.Errorf("hog: glyph size %d too small", glyph)
	}
	img := imgproc.NewGray(glyph*grid.CellsX, glyph*grid.CellsY)
	// Normalize strokes by the global max bin for a stable dynamic range.
	var maxV float64
	for _, v := range grid.Hist {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return img, nil
	}
	for cy := 0; cy < grid.CellsY; cy++ {
		for cx := 0; cx < grid.CellsX; cx++ {
			drawGlyph(img, cx, cy, glyph, grid.At(cx, cy), maxV, grid.Bins)
		}
	}
	return img, nil
}

// VisualizeMap renders a normalized feature map: each cell glyph shows the
// first Bins channels of its block (the cell's own histogram after
// normalization).
func VisualizeMap(fm *FeatureMap, glyph int) (*imgproc.Gray, error) {
	if glyph < 4 {
		return nil, fmt.Errorf("hog: glyph size %d too small", glyph)
	}
	bins := fm.Cfg.Bins
	if bins == 0 {
		bins = 9
	}
	if bins > fm.BlockLen {
		return nil, fmt.Errorf("hog: block length %d shorter than %d bins", fm.BlockLen, bins)
	}
	img := imgproc.NewGray(glyph*fm.BlocksX, glyph*fm.BlocksY)
	var maxV float64
	for by := 0; by < fm.BlocksY; by++ {
		for bx := 0; bx < fm.BlocksX; bx++ {
			for _, v := range fm.Block(bx, by)[:bins] {
				if v > maxV {
					maxV = v
				}
			}
		}
	}
	if maxV == 0 {
		return img, nil
	}
	for by := 0; by < fm.BlocksY; by++ {
		for bx := 0; bx < fm.BlocksX; bx++ {
			drawGlyph(img, bx, by, glyph, fm.Block(bx, by)[:bins], maxV, bins)
		}
	}
	return img, nil
}

// drawGlyph paints one cell's oriented-stroke star.
func drawGlyph(img *imgproc.Gray, cx, cy, glyph int, hist []float64, maxV float64, bins int) {
	centerX := float64(cx*glyph) + float64(glyph)/2
	centerY := float64(cy*glyph) + float64(glyph)/2
	radius := float64(glyph)/2 - 1
	for b := 0; b < bins; b++ {
		v := hist[b] / maxV
		if v <= 0.02 {
			continue
		}
		// Bin center angle; the drawn stroke is the EDGE direction,
		// perpendicular to the gradient.
		theta := (float64(b) + 0.5) * math.Pi / float64(bins)
		edge := theta + math.Pi/2
		dx := math.Cos(edge) * radius
		dy := math.Sin(edge) * radius
		tone := uint8(40 + 215*v)
		imgproc.ThickLine(img,
			geom.Pt{X: int(centerX - dx), Y: int(centerY - dy)},
			geom.Pt{X: int(centerX + dx), Y: int(centerY + dy)},
			1, tone)
	}
}
