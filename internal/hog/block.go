package hog

import (
	"fmt"
	"math"

	"repro/internal/imgproc"
)

// FeatureMap holds the dense normalized HOG features of a frame: one
// BlockLen-dimensional normalized block vector per block position, laid out
// row-major. This is the representation the paper's feature-scaling stage
// (package featpyr) and the NHOGMem hardware operate on.
type FeatureMap struct {
	BlocksX, BlocksY int
	BlockLen         int
	Feat             []float64
	Cfg              Config
}

// Block returns the normalized feature vector of block (bx, by). The
// returned slice aliases the map.
func (fm *FeatureMap) Block(bx, by int) []float64 {
	i := (by*fm.BlocksX + bx) * fm.BlockLen
	return fm.Feat[i : i+fm.BlockLen]
}

// Clone returns a deep copy of fm.
func (fm *FeatureMap) Clone() *FeatureMap {
	c := *fm
	c.Feat = make([]float64, len(fm.Feat))
	copy(c.Feat, fm.Feat)
	return &c
}

// Normalize assembles and normalizes the block feature map from raw cell
// histograms under the configured layout and normalization scheme. The
// returned map is freshly allocated and caller-owned; NormalizeInto is the
// reusable-storage variant.
func Normalize(grid *CellGrid, cfg Config) (*FeatureMap, error) {
	fm := &FeatureMap{}
	if err := NormalizeInto(grid, cfg, fm); err != nil {
		return nil, err
	}
	return fm, nil
}

// NormalizeInto assembles and normalizes the block feature map into fm,
// reusing fm's feature storage when it is large enough (growing it
// otherwise). Steady-state calls with a same-shaped grid allocate nothing.
func NormalizeInto(grid *CellGrid, cfg Config, fm *FeatureMap) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if grid.Bins != cfg.Bins {
		return fmt.Errorf("hog: grid has %d bins, config %d", grid.Bins, cfg.Bins)
	}
	var bx, by int
	perCell := false
	switch cfg.Layout {
	case LayoutOverlap:
		bx = grid.CellsX - cfg.BlockCells + 1
		by = grid.CellsY - cfg.BlockCells + 1
		if bx < 1 || by < 1 {
			return fmt.Errorf("hog: cell grid %dx%d smaller than one block", grid.CellsX, grid.CellsY)
		}
	case LayoutPerCell:
		bx, by = grid.CellsX, grid.CellsY
		perCell = true
	default:
		return fmt.Errorf("hog: unknown layout %v", cfg.Layout)
	}
	blockLen := cfg.BlockLen()
	n := bx * by * blockLen
	if cap(fm.Feat) < n {
		fm.Feat = make([]float64, n)
	}
	fm.BlocksX, fm.BlocksY, fm.BlockLen = bx, by, blockLen
	fm.Feat = fm.Feat[:n]
	fm.Cfg = cfg
	bins := cfg.Bins
	maxCX, maxCY := grid.CellsX-1, grid.CellsY-1
	for y := 0; y < by; y++ {
		for x := 0; x < bx; x++ {
			dst := fm.Feat[(y*bx+x)*blockLen : (y*bx+x+1)*blockLen]
			// Gather the BlockCells x BlockCells cell histograms.
			k := 0
			for cy := 0; cy < cfg.BlockCells; cy++ {
				for cx := 0; cx < cfg.BlockCells; cx++ {
					gx, gy := x+cx, y+cy
					if perCell {
						// Edge blocks replicate the border cells.
						if gx > maxCX {
							gx = maxCX
						}
						if gy > maxCY {
							gy = maxCY
						}
					}
					copy(dst[k:k+bins], grid.At(gx, gy))
					k += bins
				}
			}
			normalizeBlock(dst, cfg)
		}
	}
	return nil
}

// normalizeBlock applies the configured normalization to one block vector
// in place.
func normalizeBlock(v []float64, cfg Config) {
	switch cfg.Norm {
	case L2, L2Hys:
		var ss float64
		for _, x := range v {
			ss += x * x
		}
		inv := 1 / math.Sqrt(ss+cfg.Epsilon*cfg.Epsilon)
		for i := range v {
			v[i] *= inv
		}
		if cfg.Norm == L2Hys {
			ss = 0
			for i := range v {
				if v[i] > cfg.HysClip {
					v[i] = cfg.HysClip
				}
				ss += v[i] * v[i]
			}
			inv = 1 / math.Sqrt(ss+cfg.Epsilon*cfg.Epsilon)
			for i := range v {
				v[i] *= inv
			}
		}
	case L1Sqrt:
		var s float64
		for _, x := range v {
			s += math.Abs(x)
		}
		inv := 1 / (s + cfg.Epsilon)
		for i := range v {
			v[i] = math.Sqrt(v[i] * inv)
		}
	}
}

// Compute runs the full dense HOG pipeline (cells + normalization) on img.
func Compute(img *imgproc.Gray, cfg Config) (*FeatureMap, error) {
	grid, err := ComputeCells(img, cfg)
	if err != nil {
		return nil, err
	}
	return Normalize(grid, cfg)
}

// Window copies the descriptor of the window whose top-left block is
// (bx, by) and which spans wBlocksX x wBlocksY blocks, concatenated
// row-major (the classifier's feature-vector order). It returns nil if the
// window exceeds the map.
func (fm *FeatureMap) Window(bx, by, wBlocksX, wBlocksY int) []float64 {
	if bx < 0 || by < 0 || bx+wBlocksX > fm.BlocksX || by+wBlocksY > fm.BlocksY {
		return nil
	}
	out := make([]float64, 0, wBlocksX*wBlocksY*fm.BlockLen)
	for y := by; y < by+wBlocksY; y++ {
		row := fm.Feat[(y*fm.BlocksX+bx)*fm.BlockLen : (y*fm.BlocksX+bx+wBlocksX)*fm.BlockLen]
		out = append(out, row...)
	}
	return out
}

// WindowInto is the allocation-free variant of Window: it copies the
// descriptor into dst (which must have length wBlocksX*wBlocksY*BlockLen)
// and reports whether the window fits.
func (fm *FeatureMap) WindowInto(dst []float64, bx, by, wBlocksX, wBlocksY int) bool {
	if bx < 0 || by < 0 || bx+wBlocksX > fm.BlocksX || by+wBlocksY > fm.BlocksY {
		return false
	}
	if len(dst) != wBlocksX*wBlocksY*fm.BlockLen {
		return false
	}
	k := 0
	for y := by; y < by+wBlocksY; y++ {
		row := fm.Feat[(y*fm.BlocksX+bx)*fm.BlockLen : (y*fm.BlocksX+bx+wBlocksX)*fm.BlockLen]
		copy(dst[k:], row)
		k += len(row)
	}
	return true
}

// ScoreWindow computes the dot product of the weight vector w against the
// descriptor of the window anchored at block (bx, by) and spanning
// wBlocksX x wBlocksY blocks, without materializing the descriptor: each of
// the window's wBlocksY block rows is a contiguous stripe of the feature map,
// so the product is wBlocksY strided row dot-products. This is the zero-copy
// form of Window + a dense dot, and models the hardware classifier, which
// streams block columns out of NHOGMem into the MACBARs rather than gathering
// a window vector. It reports whether the window fits the map and the weight
// vector has the window's descriptor length.
//
// The accumulation order is fixed, so for a given window the score is
// bit-identical run to run regardless of the caller's parallelism.
func (fm *FeatureMap) ScoreWindow(w []float64, bx, by, wBlocksX, wBlocksY int) (float64, bool) {
	if bx < 0 || by < 0 || wBlocksX < 1 || wBlocksY < 1 ||
		bx+wBlocksX > fm.BlocksX || by+wBlocksY > fm.BlocksY {
		return 0, false
	}
	rowLen := wBlocksX * fm.BlockLen
	if len(w) != wBlocksY*rowLen {
		return 0, false
	}
	var s float64
	for y := 0; y < wBlocksY; y++ {
		row := fm.Feat[((by+y)*fm.BlocksX+bx)*fm.BlockLen:]
		s += dotRow(w[y*rowLen:(y+1)*rowLen], row[:rowLen])
	}
	return s, true
}

// dotRow is the four-way unrolled dot product of one block row. len(a) must
// not exceed len(b).
func dotRow(a, b []float64) float64 {
	// Hoisting b's length to len(a) proves b[i+3] in bounds from the loop
	// condition alone, so the unrolled body runs with no per-iteration
	// bounds checks (2386 -> 2194 ns/op on the 3780-dim window score).
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// Descriptor computes the HOG descriptor of a single detection window
// image (e.g. a 64x128 training crop): the full pipeline followed by
// extraction of the window-sized block grid anchored at the origin.
func Descriptor(img *imgproc.Gray, cfg Config) ([]float64, error) {
	fm, err := Compute(img, cfg)
	if err != nil {
		return nil, err
	}
	cx, cy := cfg.WindowCells(img.W, img.H)
	wbx, wby := cfg.WindowBlocks(cx, cy)
	d := fm.Window(0, 0, wbx, wby)
	if d == nil {
		return nil, fmt.Errorf("hog: window %dx%d blocks exceeds map %dx%d", wbx, wby, fm.BlocksX, fm.BlocksY)
	}
	return d, nil
}
