package hog

import (
	"math/rand"
	"testing"

	"repro/internal/imgproc"
	"repro/internal/obs"
)

// TestFrontEndAllocs pins the steady-state allocation count of the fused
// front end at zero: once a Scratch has served one frame of a given shape,
// further frames must not allocate at all — not in the luminance pass, the
// histogramming, or the block normalization. A regression here silently
// reintroduces per-frame garbage on the detection hot path.
func TestFrontEndAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := imgproc.NewGray(320, 240)
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"gamma", func() Config { c := DefaultConfig(); c.SqrtGamma = true; return c }()},
		{"interp", func() Config { c := DefaultConfig(); c.InterpolateCells = true; return c }()},
		{"overlap", func() Config { c := DefaultConfig(); c.Layout = LayoutOverlap; return c }()},
	} {
		t.Run(tc.name+"/cells", func(t *testing.T) {
			s := NewScratch()
			if _, err := ComputeCellsInto(img, tc.cfg, s, 1); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(20, func() {
				if _, err := ComputeCellsInto(img, tc.cfg, s, 1); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("ComputeCellsInto: %v allocs/op in steady state, want 0", n)
			}
		})
		t.Run(tc.name+"/full", func(t *testing.T) {
			s := NewScratch()
			if _, err := ComputeInto(img, tc.cfg, s, 1); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(20, func() {
				if _, err := ComputeInto(img, tc.cfg, s, 1); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("ComputeInto: %v allocs/op in steady state, want 0", n)
			}
		})
	}
	// The zero-allocation contract must survive metrics being switched on:
	// stage recording is atomic adds into preallocated histograms.
	t.Run("metrics-on", func(t *testing.T) {
		s := NewScratch()
		s.Metrics = obs.NewDetectRecorder(obs.NewMetrics())
		cfg := DefaultConfig()
		if _, err := ComputeInto(img, cfg, s, 1); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(20, func() {
			s.Metrics.BeginFrame()
			if _, err := ComputeInto(img, cfg, s, 1); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("ComputeInto with metrics: %v allocs/op in steady state, want 0", n)
		}
		if got := s.Metrics.Metrics().Stage[obs.StageHOGCells].Snapshot().Count; got == 0 {
			t.Error("metrics enabled but no hog_cells observations recorded")
		}
	})
}
