// Package experiments implements the paper's evaluation protocol end to
// end: the Section 4 scale study comparing image-scaling against
// HOG-feature-scaling (Table 1), the ROC analysis with AUC and EER
// (Figure 4), the extended crossover sweep, and shared helpers for the
// command-line tools and benchmarks that regenerate each artifact.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// Options bundles everything a protocol run needs.
type Options struct {
	// Seed drives the synthetic dataset.
	Seed int64
	// Protocol sets the train/test sizes (PaperProtocol reproduces the
	// 1126/4530 test counts).
	Protocol dataset.Protocol
	// Scales lists the magnifications to evaluate (the paper uses
	// 1.1..1.5 for Table 1 and up to 2.0 in the text).
	Scales []float64
	// Detector is the HOG/window configuration.
	Detector core.Config
	// Train configures the SVM solver.
	Train core.TrainOptions
	// Parallelism bounds the worker goroutines (0 = GOMAXPROCS).
	Parallelism int
	// FixedPoint additionally scores the proposed method through the
	// shift-and-add fixed-point scaler (the hardware datapath).
	FixedPoint bool
	// NativeRender renders the scaled test sets at their target
	// resolution instead of up-sampling the base renders by
	// interpolation. The paper up-sampled (Section 4), so the default
	// (false) follows the paper; native rendering is the
	// no-interpolation-artifact ablation.
	NativeRender bool
}

// DefaultOptions returns the paper's Table 1 protocol at full size.
func DefaultOptions() Options {
	return Options{
		Seed:     2017,
		Protocol: dataset.PaperProtocol(),
		Scales:   []float64{1.1, 1.2, 1.3, 1.4, 1.5},
		Detector: core.DefaultConfig(),
		Train:    core.DefaultTrainOptions(),
	}
}

// QuickOptions returns a fast, small-protocol variant for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Protocol = dataset.SmallProtocol()
	return o
}

// Table1Row is one scale's outcome in both configurations of Figure 3.
type Table1Row struct {
	Scale float64
	// Image* is the conventional method (resize the image, then HOG);
	// HOG* is the proposed method (HOG, then resize the features).
	ImageAcc, HOGAcc   float64
	ImageTP, HOGTP     int
	ImageTN, HOGTN     int
	FixedAcc           float64 // proposed method through the fixed-point scaler (if enabled)
	ImageConf, HOGConf eval.Confusion
}

// Table1Result is the full reproduction of Table 1.
type Table1Result struct {
	// Base is the native-scale (1.0) evaluation: one shared row since both
	// methods coincide without resampling.
	BaseAcc    float64
	BaseTP     int
	BaseTN     int
	BaseConf   eval.Confusion
	Rows       []Table1Row
	TestPos    int
	TestNeg    int
	TrainedOn  int
	Descriptor int
}

// trained bundles the shared state of one protocol run.
type trained struct {
	det   *core.Detector
	gen   *dataset.Generator
	specs *dataset.SpecSet
}

// setup trains the model and prepares test specs.
func setup(o Options) (*trained, error) {
	gen := dataset.New(o.Seed)
	split, err := gen.MakeSplit(o.Protocol)
	if err != nil {
		return nil, err
	}
	det, err := core.Train(split.Train, o.Detector, o.Train)
	if err != nil {
		return nil, err
	}
	return &trained{det: det, gen: gen, specs: split.TestSpecs}, nil
}

// testSet materializes the test windows at a scale per the configured
// protocol variant.
func (tr *trained) testSet(o Options, scale float64) (*dataset.Set, error) {
	if o.NativeRender {
		return tr.gen.RenderAt(tr.specs, scale)
	}
	return tr.gen.UpsampleAt(tr.specs, scale, o.Detector.Interp)
}

// scoreSet scores every window of a set with one scenario function,
// fanning out across workers. Results align with set order.
func scoreSet(set *dataset.Set, workers int, score func(img *imgproc.Gray) (float64, error)) ([]float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scores := make([]float64, set.Len())
	errs := make([]error, set.Len())
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range set.Images {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			scores[i], errs[i] = score(set.Images[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return scores, nil
}

// Table1 reproduces the paper's Table 1: detection accuracy and true
// positive/negative counts per scale for both scaling methods.
func Table1(o Options) (*Table1Result, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	return table1With(tr, o)
}

func table1With(tr *trained, o Options) (*Table1Result, error) {
	model := tr.det.Model()
	cfg := tr.det.Config()
	res := &Table1Result{
		TestPos:    countLabels(tr.specs.Labels, 1),
		TestNeg:    countLabels(tr.specs.Labels, -1),
		TrainedOn:  o.Protocol.TrainPos + o.Protocol.TrainNeg,
		Descriptor: cfg.DescriptorLen(),
	}

	// Native scale: both methods coincide.
	base, err := tr.gen.RenderAt(tr.specs, 1.0)
	if err != nil {
		return nil, err
	}
	scores, err := scoreSet(base, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
		return core.ClassifyImageScaled(model, img, cfg)
	})
	if err != nil {
		return nil, err
	}
	conf, err := eval.Confuse(scores, base.Labels, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	res.BaseAcc = conf.Accuracy()
	res.BaseTP = conf.TP
	res.BaseTN = conf.TN
	res.BaseConf = conf

	for _, scale := range o.Scales {
		set, err := tr.testSet(o, scale)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Scale: scale}

		imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		hogScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyFeatureScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		if row.ImageConf, err = eval.Confuse(imgScores, set.Labels, cfg.Threshold); err != nil {
			return nil, err
		}
		if row.HOGConf, err = eval.Confuse(hogScores, set.Labels, cfg.Threshold); err != nil {
			return nil, err
		}
		row.ImageAcc = row.ImageConf.Accuracy()
		row.HOGAcc = row.HOGConf.Accuracy()
		row.ImageTP, row.ImageTN = row.ImageConf.TP, row.ImageConf.TN
		row.HOGTP, row.HOGTN = row.HOGConf.TP, row.HOGConf.TN

		if o.FixedPoint {
			fixedScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
				return core.ClassifyFeatureScaledFixed(model, img, cfg)
			})
			if err != nil {
				return nil, err
			}
			fc, err := eval.Confuse(fixedScores, set.Labels, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			row.FixedAcc = fc.Accuracy()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func countLabels(labels []int, want int) int {
	n := 0
	for _, l := range labels {
		if l == want {
			n++
		}
	}
	return n
}

// Render formats the result in the layout of the paper's Table 1.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scale   Accuracy(Img)  Accuracy(HOG)   TP(Img)  TP(HOG)   TN(Img)  TN(HOG)\n")
	fmt.Fprintf(&sb, "1.0     %12.4f%%  %12.4f%%  %8d %8d  %8d %8d\n",
		100*r.BaseAcc, 100*r.BaseAcc, r.BaseTP, r.BaseTP, r.BaseTN, r.BaseTN)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%.1f     %12.4f%%  %12.4f%%  %8d %8d  %8d %8d\n",
			row.Scale, 100*row.ImageAcc, 100*row.HOGAcc,
			row.ImageTP, row.HOGTP, row.ImageTN, row.HOGTN)
	}
	return sb.String()
}

// CrossoverScale returns the lowest evaluated scale at which the proposed
// method stops beating the conventional one (the paper reports ~1.5), or 0
// if it wins everywhere.
func (r *Table1Result) CrossoverScale() float64 {
	rows := append([]Table1Row(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Scale < rows[j].Scale })
	for _, row := range rows {
		if row.HOGAcc < row.ImageAcc {
			return row.Scale
		}
	}
	return 0
}

// ROCPair is the Figure 4 artifact at one scale: ROC curves with AUC and
// EER for both methods.
type ROCPair struct {
	Scale            float64
	Image, HOG       *eval.ROC
	ImageAUC, HOGAUC float64
	ImageEER, HOGEER float64
}

// Figure4 reproduces the paper's Figure 4: ROC curves for the original
// scale and the requested magnified scales under both methods. At scale
// 1.0 both methods coincide, so the pair holds identical curves.
func Figure4(o Options, scales []float64) ([]ROCPair, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	return figure4With(tr, o, scales)
}

func figure4With(tr *trained, o Options, scales []float64) ([]ROCPair, error) {
	model := tr.det.Model()
	cfg := tr.det.Config()
	var out []ROCPair
	for _, scale := range scales {
		set, err := tr.testSet(o, scale)
		if err != nil {
			return nil, err
		}
		imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		var hogScores []float64
		if scale == 1.0 {
			hogScores = imgScores
		} else {
			hogScores, err = scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
				return core.ClassifyFeatureScaled(model, img, cfg)
			})
			if err != nil {
				return nil, err
			}
		}
		ir, err := eval.ComputeROC(imgScores, set.Labels)
		if err != nil {
			return nil, err
		}
		hr, err := eval.ComputeROC(hogScores, set.Labels)
		if err != nil {
			return nil, err
		}
		out = append(out, ROCPair{
			Scale:    scale,
			Image:    ir,
			HOG:      hr,
			ImageAUC: ir.AUC(),
			HOGAUC:   hr.AUC(),
			ImageEER: ir.EER(),
			HOGEER:   hr.EER(),
		})
	}
	return out, nil
}

// RenderROC formats the Figure 4 summary statistics.
func RenderROC(pairs []ROCPair) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scale   AUC(Img)  AUC(HOG)  EER(Img)  EER(HOG)\n")
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%.1f     %8.4f  %8.4f  %8.4f  %8.4f\n",
			p.Scale, p.ImageAUC, p.HOGAUC, p.ImageEER, p.HOGEER)
	}
	return sb.String()
}

// Study bundles Table 1 and Figure 4 over one shared trained model — the
// complete Section 4 analysis in one pass (the form cmd/pdeval runs).
type Study struct {
	Table1 *Table1Result
	ROC    []ROCPair
}

// RunStudy trains once and produces both artifacts.
func RunStudy(o Options, rocScales []float64) (*Study, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	t1, err := table1With(tr, o)
	if err != nil {
		return nil, err
	}
	roc, err := figure4With(tr, o, rocScales)
	if err != nil {
		return nil, err
	}
	return &Study{Table1: t1, ROC: roc}, nil
}

// QuantizedAccuracy measures the accuracy cost of quantizing the model to
// the hardware weight format at native scale (supports the Table 2 /
// datapath-width discussion).
func QuantizedAccuracy(o Options, fmtBits func(m *svm.Model) (*svm.Model, error)) (float64, float64, error) {
	tr, err := setup(o)
	if err != nil {
		return 0, 0, err
	}
	base, err := tr.gen.RenderAt(tr.specs, 1.0)
	if err != nil {
		return 0, 0, err
	}
	x, err := core.ExtractDescriptors(base, tr.det.Config())
	if err != nil {
		return 0, 0, err
	}
	full := svm.Accuracy(tr.det.Model(), x, base.Labels)
	qm, err := fmtBits(tr.det.Model())
	if err != nil {
		return 0, 0, err
	}
	quant := svm.Accuracy(qm, x, base.Labels)
	return full, quant, nil
}
