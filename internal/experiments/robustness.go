package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/hog"
	"repro/internal/imgproc"
)

// Robustness extensions beyond the paper's tables: how the two scaling
// methods degrade under sensor noise and partial occlusion. The paper's
// DAS framing makes both practically relevant (night driving, pedestrians
// behind parked cars); these studies check that the proposed feature-
// scaling method does not degrade disproportionately under either stress.

// RobustnessPoint is one stress level's outcome for both methods.
type RobustnessPoint struct {
	Level    float64 // noise sigma (8-bit counts) or occlusion fraction
	ImageAcc float64
	HOGAcc   float64
}

// NoiseStudy evaluates both methods at the given test scale across sensor
// noise levels. The model is trained once at the generator's default noise.
func NoiseStudy(o Options, scale float64, sigmas []float64) ([]RobustnessPoint, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	model := tr.det.Model()
	cfg := tr.det.Config()
	var out []RobustnessPoint
	for _, sigma := range sigmas {
		// Re-render the same specs with the stressed noise level.
		gen := dataset.New(o.Seed + 1) // renderer state independent of specs
		gen.NoiseStddev = sigma
		set, err := gen.UpsampleAt(tr.specs, scale, cfg.Interp)
		if err != nil {
			return nil, err
		}
		p := RobustnessPoint{Level: sigma}
		imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		hogScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyFeatureScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		ic, err := eval.Confuse(imgScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		hc, err := eval.Confuse(hogScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		p.ImageAcc, p.HOGAcc = ic.Accuracy(), hc.Accuracy()
		out = append(out, p)
	}
	return out, nil
}

// OcclusionStudy evaluates both methods with the bottom fraction of every
// test window occluded (only positives change class difficulty; negatives
// receive the same occluder so the background statistics stay matched).
func OcclusionStudy(o Options, scale float64, fractions []float64) ([]RobustnessPoint, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	model := tr.det.Model()
	cfg := tr.det.Config()
	var out []RobustnessPoint
	for _, frac := range fractions {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: occlusion fraction %g out of [0,1)", frac)
		}
		specs := &dataset.SpecSet{Labels: tr.specs.Labels}
		for _, s := range tr.specs.Specs {
			s.OcclusionFrac = frac
			s.OcclusionTone = 70
			specs.Specs = append(specs.Specs, s)
		}
		set, err := tr.gen.UpsampleAt(specs, scale, cfg.Interp)
		if err != nil {
			return nil, err
		}
		p := RobustnessPoint{Level: frac}
		imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		hogScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyFeatureScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		ic, err := eval.Confuse(imgScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		hc, err := eval.Confuse(hogScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		p.ImageAcc, p.HOGAcc = ic.Accuracy(), hc.Accuracy()
		out = append(out, p)
	}
	return out, nil
}

// RenderRobustness formats a robustness table.
func RenderRobustness(name string, pts []RobustnessPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s Acc(Img)   Acc(HOG)\n", name)
	for _, p := range pts {
		fmt.Fprintf(&sb, "%-10.2f %8.4f   %8.4f\n", p.Level, p.ImageAcc, p.HOGAcc)
	}
	return sb.String()
}

// FogStudy evaluates both methods under atmospheric fog of increasing
// density applied to the test windows (airlight 200), modelling the
// degraded-visibility conditions the paper's introduction motivates DAS
// with.
func FogStudy(o Options, scale float64, densities []float64) ([]RobustnessPoint, error) {
	tr, err := setup(o)
	if err != nil {
		return nil, err
	}
	model := tr.det.Model()
	cfg := tr.det.Config()
	base, err := tr.testSet(o, scale)
	if err != nil {
		return nil, err
	}
	var out []RobustnessPoint
	for _, d := range densities {
		set := &dataset.Set{Labels: base.Labels}
		for _, img := range base.Images {
			set.Images = append(set.Images, imgproc.Fog(img, d, 200))
		}
		p := RobustnessPoint{Level: d}
		imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		hogScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyFeatureScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		ic, err := eval.Confuse(imgScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		hc, err := eval.Confuse(hogScores, set.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		p.ImageAcc, p.HOGAcc = ic.Accuracy(), hc.Accuracy()
		out = append(out, p)
	}
	return out, nil
}

// LayoutPoint is one block-layout configuration's outcome.
type LayoutPoint struct {
	Layout   string
	Dim      int     // descriptor dimensionality
	TestAcc  float64 // native-scale test accuracy
	ScaleAcc float64 // proposed-method accuracy at the probe scale
}

// LayoutStudy quantifies the cost of the hardware's per-cell block layout
// (8x16 blocks, 4608-d, clamped edges) against the original Dalal-Triggs
// overlapping layout (7x15 blocks, 3780-d): native test accuracy and the
// feature-scaling accuracy at the probe scale. The paper adopts the
// per-cell layout for its memory banking; this study checks the algorithmic
// price of that hardware decision.
func LayoutStudy(o Options, probeScale float64) ([]LayoutPoint, error) {
	var out []LayoutPoint
	for _, layout := range []hog.Layout{hog.LayoutPerCell, hog.LayoutOverlap} {
		oo := o
		oo.Detector.HOG.Layout = layout
		tr, err := setup(oo)
		if err != nil {
			return nil, err
		}
		model := tr.det.Model()
		cfg := tr.det.Config()
		p := LayoutPoint{Layout: layout.String(), Dim: cfg.DescriptorLen()}

		base, err := tr.gen.RenderAt(tr.specs, 1.0)
		if err != nil {
			return nil, err
		}
		scores, err := scoreSet(base, oo.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyImageScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		c, err := eval.Confuse(scores, base.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		p.TestAcc = c.Accuracy()

		scaled, err := tr.testSet(oo, probeScale)
		if err != nil {
			return nil, err
		}
		hs, err := scoreSet(scaled, oo.Parallelism, func(img *imgproc.Gray) (float64, error) {
			return core.ClassifyFeatureScaled(model, img, cfg)
		})
		if err != nil {
			return nil, err
		}
		hc, err := eval.Confuse(hs, scaled.Labels, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		p.ScaleAcc = hc.Accuracy()
		out = append(out, p)
	}
	return out, nil
}
