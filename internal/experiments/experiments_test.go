package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/fixed"
	"repro/internal/svm"
)

// The quick protocol still trains a real model, so share one study across
// tests.
var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func quickStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		o := QuickOptions()
		o.Scales = []float64{1.1, 1.3, 1.5, 1.8}
		study, studyErr = RunStudy(o, []float64{1.0, 1.1})
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestTable1Shape(t *testing.T) {
	s := quickStudy(t)
	r := s.Table1
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	if r.TestPos != 100 || r.TestNeg != 400 {
		t.Errorf("test counts %d/%d", r.TestPos, r.TestNeg)
	}
	// Base accuracy must be strong (paper: 98.04% on INRIA; synthetic data
	// differs but must be clearly separable).
	if r.BaseAcc < 0.9 {
		t.Errorf("base accuracy %.3f < 0.9", r.BaseAcc)
	}
	// Counts must be internally consistent.
	if r.BaseTP > r.TestPos || r.BaseTN > r.TestNeg {
		t.Error("base counts exceed class sizes")
	}
	for _, row := range r.Rows {
		if row.ImageTP > r.TestPos || row.HOGTP > r.TestPos {
			t.Errorf("scale %v TP exceeds positives", row.Scale)
		}
		if row.ImageTN > r.TestNeg || row.HOGTN > r.TestNeg {
			t.Errorf("scale %v TN exceeds negatives", row.Scale)
		}
		if row.ImageAcc < 0.5 || row.HOGAcc < 0.5 {
			t.Errorf("scale %v: accuracy collapsed (img %.3f, hog %.3f)",
				row.Scale, row.ImageAcc, row.HOGAcc)
		}
	}
}

// TestPaperShapeClaim is experiment E1/E7's qualitative check: at small
// scales the proposed method is competitive with (paper: better than) the
// conventional one, and its relative advantage shrinks or reverses as the
// scale grows.
func TestPaperShapeClaim(t *testing.T) {
	s := quickStudy(t)
	rows := s.Table1.Rows
	// At 1.1 the HOG method must be within 2% of the image method (the
	// paper's "not affected ... more than 2%" claim).
	first := rows[0]
	if first.HOGAcc < first.ImageAcc-0.02 {
		t.Errorf("scale 1.1: HOG %.4f trails image %.4f by more than 2%%",
			first.HOGAcc, first.ImageAcc)
	}
	// The HOG-vs-image advantage at the largest scale must not exceed the
	// advantage at the smallest scale (monotone-ish degradation).
	last := rows[len(rows)-1]
	advFirst := first.HOGAcc - first.ImageAcc
	advLast := last.HOGAcc - last.ImageAcc
	if advLast > advFirst+0.02 {
		t.Errorf("advantage grew with scale: %+.4f at %.1f vs %+.4f at %.1f",
			advFirst, first.Scale, advLast, last.Scale)
	}
}

func TestTable1Render(t *testing.T) {
	s := quickStudy(t)
	out := s.Table1.Render()
	for _, want := range []string{"Scale", "1.0", "1.1", "TP(HOG)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCrossoverScale(t *testing.T) {
	r := &Table1Result{Rows: []Table1Row{
		{Scale: 1.1, ImageAcc: 0.90, HOGAcc: 0.95},
		{Scale: 1.3, ImageAcc: 0.90, HOGAcc: 0.91},
		{Scale: 1.5, ImageAcc: 0.90, HOGAcc: 0.88},
		{Scale: 1.8, ImageAcc: 0.89, HOGAcc: 0.80},
	}}
	if got := r.CrossoverScale(); got != 1.5 {
		t.Errorf("crossover = %v, want 1.5", got)
	}
	all := &Table1Result{Rows: []Table1Row{{Scale: 1.1, ImageAcc: 0.9, HOGAcc: 0.95}}}
	if got := all.CrossoverScale(); got != 0 {
		t.Errorf("no crossover should return 0, got %v", got)
	}
}

func TestFigure4Stats(t *testing.T) {
	s := quickStudy(t)
	if len(s.ROC) != 2 {
		t.Fatalf("ROC pairs = %d, want 2", len(s.ROC))
	}
	base := s.ROC[0]
	if base.Scale != 1.0 {
		t.Fatal("first pair should be native scale")
	}
	// At native scale both curves coincide.
	if base.ImageAUC != base.HOGAUC || base.ImageEER != base.HOGEER {
		t.Error("native-scale methods must coincide")
	}
	for _, p := range s.ROC {
		if p.ImageAUC < 0.8 || p.HOGAUC < 0.8 {
			t.Errorf("scale %v AUC too low: img %.3f hog %.3f", p.Scale, p.ImageAUC, p.HOGAUC)
		}
		if p.ImageEER > 0.3 || p.HOGEER > 0.3 {
			t.Errorf("scale %v EER too high: img %.3f hog %.3f", p.Scale, p.ImageEER, p.HOGEER)
		}
		// AUC and EER must be mutually consistent: a good AUC implies a
		// low EER.
		if p.HOGAUC > 0.95 && p.HOGEER > 0.15 {
			t.Errorf("scale %v: inconsistent AUC %.3f / EER %.3f", p.Scale, p.HOGAUC, p.HOGEER)
		}
	}
	out := RenderROC(s.ROC)
	if !strings.Contains(out, "AUC(HOG)") {
		t.Error("ROC render malformed")
	}
}

func TestQuantizedAccuracy(t *testing.T) {
	o := QuickOptions()
	full, quant, err := QuantizedAccuracy(o, func(m *svm.Model) (*svm.Model, error) {
		q, err := svm.Quantize(m, fixed.Q(3, 12))
		if err != nil {
			return nil, err
		}
		return q.Dequantize(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if full < 0.9 {
		t.Errorf("full accuracy %.3f < 0.9", full)
	}
	// Q3.12 weights must cost (almost) nothing.
	if full-quant > 0.02 {
		t.Errorf("quantization cost %.4f > 2%%", full-quant)
	}
}

func TestTable1FixedPoint(t *testing.T) {
	o := QuickOptions()
	o.Scales = []float64{1.2}
	o.FixedPoint = true
	r, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.FixedAcc == 0 {
		t.Fatal("fixed-point accuracy not computed")
	}
	// The shift-and-add datapath must track the float feature scaler.
	if diff := row.HOGAcc - row.FixedAcc; diff > 0.03 || diff < -0.03 {
		t.Errorf("fixed scaler accuracy %.4f far from float %.4f", row.FixedAcc, row.HOGAcc)
	}
}

func TestOptionsErrors(t *testing.T) {
	o := QuickOptions()
	o.Protocol.TrainPos = 0
	if _, err := Table1(o); err == nil {
		t.Error("broken protocol should error")
	}
}
