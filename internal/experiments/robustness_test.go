package experiments

import "testing"

func robustnessOptions() Options {
	o := QuickOptions()
	o.Protocol.TrainPos = 80
	o.Protocol.TrainNeg = 240
	o.Protocol.TestPos = 50
	o.Protocol.TestNeg = 150
	return o
}

func TestNoiseStudyDegradesGracefully(t *testing.T) {
	o := robustnessOptions()
	pts, err := NoiseStudy(o, 1.2, []float64{0, 6, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Accuracy at the training noise level (6) must be strong for both.
	if pts[1].ImageAcc < 0.85 || pts[1].HOGAcc < 0.85 {
		t.Errorf("nominal-noise accuracies too low: %+v", pts[1])
	}
	// Heavy noise must not help.
	if pts[3].ImageAcc > pts[1].ImageAcc+0.05 {
		t.Errorf("image method improved under heavy noise: %+v", pts)
	}
	if pts[3].HOGAcc > pts[1].HOGAcc+0.05 {
		t.Errorf("HOG method improved under heavy noise: %+v", pts)
	}
	// The proposed method must not collapse disproportionately: within 10%
	// of the conventional method even at sigma 40.
	if pts[3].HOGAcc < pts[3].ImageAcc-0.10 {
		t.Errorf("feature scaling disproportionately noise-sensitive: %+v", pts[3])
	}
	t.Logf("\n%s", RenderRobustness("sigma", pts))
}

func TestOcclusionStudyMonotone(t *testing.T) {
	o := robustnessOptions()
	pts, err := OcclusionStudy(o, 1.2, []float64{0, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Half-occluded pedestrians must be harder than unoccluded ones for
	// both methods (legs carry much of the HOG signature).
	if pts[2].ImageAcc > pts[0].ImageAcc+0.02 || pts[2].HOGAcc > pts[0].HOGAcc+0.02 {
		t.Errorf("occlusion did not hurt: %+v", pts)
	}
	t.Logf("\n%s", RenderRobustness("occl", pts))
}

func TestOcclusionStudyRejectsBadFraction(t *testing.T) {
	o := robustnessOptions()
	if _, err := OcclusionStudy(o, 1.2, []float64{1.5}); err == nil {
		t.Error("fraction >= 1 should error")
	}
}

func TestDiffCI(t *testing.T) {
	o := robustnessOptions()
	iv, err := DiffCI(o, 1.2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Hi || !iv.Contains(iv.Point) {
		t.Fatalf("malformed interval %v", iv)
	}
	// The per-scale accuracy gap between the methods is small (Table 1):
	// the interval must live within a few percent of zero.
	if iv.Point < -0.1 || iv.Point > 0.1 {
		t.Errorf("point difference %.3f implausibly large", iv.Point)
	}
	t.Logf("HOG-minus-image accuracy diff at 1.2: %v", iv)
}

func TestFogStudyDegradesBothMethods(t *testing.T) {
	o := robustnessOptions()
	pts, err := FogStudy(o, 1.1, []float64{0, 0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].ImageAcc < 0.85 || pts[0].HOGAcc < 0.85 {
		t.Errorf("clear-weather accuracy too low: %+v", pts[0])
	}
	// Heavy fog must hurt both methods (block normalization recovers local
	// contrast, so the degradation is graceful but real).
	if pts[2].ImageAcc > pts[0].ImageAcc+0.02 || pts[2].HOGAcc > pts[0].HOGAcc+0.02 {
		t.Errorf("fog did not degrade detection: %+v", pts)
	}
	t.Logf("\n%s", RenderRobustness("fog", pts))
}

func TestLayoutStudy(t *testing.T) {
	o := robustnessOptions()
	pts, err := LayoutStudy(o, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	perCell, overlap := pts[0], pts[1]
	if perCell.Dim != 4608 || overlap.Dim != 3780 {
		t.Errorf("dims %d/%d, want 4608/3780", perCell.Dim, overlap.Dim)
	}
	// Both layouts must work well; the HW layout must not cost more than a
	// few percent anywhere (the premise of adopting it for banking).
	for _, p := range pts {
		if p.TestAcc < 0.9 {
			t.Errorf("%s native accuracy %.3f < 0.9", p.Layout, p.TestAcc)
		}
	}
	if perCell.ScaleAcc < overlap.ScaleAcc-0.05 {
		t.Errorf("per-cell layout disproportionately bad at scale: %.3f vs %.3f",
			perCell.ScaleAcc, overlap.ScaleAcc)
	}
	t.Logf("layout study: %+v", pts)
}
