package experiments

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/imgproc"
)

// DiffCI bootstraps the paired accuracy difference (proposed HOG-scaling
// minus conventional image-scaling) at one test scale, with a 95%
// percentile interval. Both methods score the same windows, so the paired
// bootstrap is the appropriate significance test for Table 1's per-scale
// comparisons.
func DiffCI(o Options, scale float64, reps int) (eval.Interval, error) {
	tr, err := setup(o)
	if err != nil {
		return eval.Interval{}, err
	}
	model := tr.det.Model()
	cfg := tr.det.Config()
	set, err := tr.testSet(o, scale)
	if err != nil {
		return eval.Interval{}, err
	}
	hogScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
		return core.ClassifyFeatureScaled(model, img, cfg)
	})
	if err != nil {
		return eval.Interval{}, err
	}
	imgScores, err := scoreSet(set, o.Parallelism, func(img *imgproc.Gray) (float64, error) {
		return core.ClassifyImageScaled(model, img, cfg)
	})
	if err != nil {
		return eval.Interval{}, err
	}
	return eval.BootstrapAccuracyDiff(hogScores, imgScores, set.Labels,
		cfg.Threshold, 0.95, reps, o.Seed)
}
