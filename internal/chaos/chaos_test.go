package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/serve"
)

// soakSeed is the fixed tier-1 seed. Changing it is fine — any seed must
// pass — but keep it pinned so a failure is a deterministic repro.
const soakSeed = 7

// TestSoakShort is the tier-1 chaos acceptance: a short seeded soak over
// the full stack must end with zero invariant violations — conservation
// held at every polled instant, counters stayed monotone through restarts,
// the stack recovered once faults cleared, and every goroutine settled net
// of the accounted leaks.
func TestSoakShort(t *testing.T) {
	// Deadline/HangTimeout are deliberately generous: under -race the
	// whole suite shares one CPU across packages, and a healthy scan that
	// blows a tight deadline would read as a fault the schedule never
	// injected. The seed pins the event kinds and times either way.
	cfg := Config{
		Seed:          soakSeed,
		Workers:       2,
		Streams:       3,
		Deadline:      250 * time.Millisecond,
		HangTimeout:   400 * time.Millisecond,
		Horizon:       1200 * time.Millisecond,
		Events:        10,
		FrameInterval: 15 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Soak(ctx, cfg)
	if err != nil {
		t.Fatalf("soak harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Errorf("replay with: go run ./cmd/pdsoak -seed %d -workers %d -streams %d -events %d -duration %s -deadline %s -hang-timeout %s",
			cfg.Seed, cfg.Workers, cfg.Streams, cfg.Events, cfg.Horizon, cfg.Deadline, cfg.HangTimeout)
		t.Errorf("schedule:")
		for _, ev := range res.Schedule {
			t.Errorf("  %s", ev)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if res.Frames == 0 || res.OK == 0 {
		t.Errorf("soak served %d frames (%d ok); expected a live stream", res.Frames, res.OK)
	}
	// Seed 7's schedule contains at least one hard stall, so the watchdog
	// and the wedge escalation must both have engaged.
	hasHard := false
	for _, ev := range res.Schedule {
		if ev.Kind == HardStall {
			hasHard = true
		}
	}
	if hasHard && (res.Wedges == 0 || res.FramesHung == 0) {
		t.Errorf("schedule had hard stalls but wedges=%d framesHung=%d — the watchdog never engaged",
			res.Wedges, res.FramesHung)
	}
}

// roiSoakSeed pins the tier-1 ROI soak. Seed 3's schedule (at the config
// below) contains three soft stalls and two hard stalls: with DegradeAfter
// 1, each soft-stall deadline miss reliably drops the affected worker onto
// its ROI rung.
const roiSoakSeed = 3

// TestSoakShortROI reruns the tier-1 soak with an ROI rung in every
// worker's ladder and a positive-bias model keeping the trackers warm:
// frame-count conservation, counter monotonicity, recovery, and goroutine
// settling must all hold while degradation routes frames through
// track-guided restricted scans.
func TestSoakShortROI(t *testing.T) {
	cfg := Config{
		Seed:          roiSoakSeed,
		Workers:       2,
		Streams:       3,
		Deadline:      250 * time.Millisecond,
		HangTimeout:   400 * time.Millisecond,
		Horizon:       1200 * time.Millisecond,
		Events:        10,
		FrameInterval: 15 * time.Millisecond,
		DegradeAfter:  1,
		ROI:           &roi.Config{FullEvery: 4, MarginPx: 32},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Soak(ctx, cfg)
	if err != nil {
		t.Fatalf("soak harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Errorf("replay with: go run ./cmd/pdsoak -roi -seed %d -workers %d -streams %d -events %d -duration %s -deadline %s -hang-timeout %s",
			cfg.Seed, cfg.Workers, cfg.Streams, cfg.Events, cfg.Horizon, cfg.Deadline, cfg.HangTimeout)
		t.Errorf("schedule:")
		for _, ev := range res.Schedule {
			t.Errorf("  %s", ev)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if res.Frames == 0 || res.OK == 0 {
		t.Errorf("soak served %d frames (%d ok); expected a live stream", res.Frames, res.OK)
	}
	// The pinned seed's soft stalls force degradation, and with ROI in the
	// ladder the first rung down is the ROI rung: the scheduler must have
	// planned scans there.
	if res.ROIScans+res.ROIFullScans == 0 {
		t.Errorf("degrading soak never engaged the ROI rung (restricted %d, full %d)",
			res.ROIScans, res.ROIFullScans)
	}
}

// gatewaySoakSeed pins the tier-1 gateway soak. Seed 8's schedule (at the
// config below, Replicas 2) contains a replica kill, a replica stall, and
// hard stalls — the full kill -> eject -> hedge-around -> rejoin arc.
const gatewaySoakSeed = 8

// TestSoakShortGateway is the tier-1 gateway chaos acceptance: two full
// replica stacks behind the gateway, a seeded schedule that kills and
// stalls whole replicas, and zero invariant violations at the end —
// exactly one answer per accepted request, hedge/retry spend within
// budget, every replica readmitted and every stream serving once the
// faults cleared.
func TestSoakShortGateway(t *testing.T) {
	cfg := Config{
		Seed:          gatewaySoakSeed,
		Workers:       1,
		Streams:       3,
		Replicas:      2,
		Deadline:      250 * time.Millisecond,
		HangTimeout:   400 * time.Millisecond,
		Horizon:       1200 * time.Millisecond,
		Events:        10,
		FrameInterval: 15 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := Soak(ctx, cfg)
	if err != nil {
		t.Fatalf("soak harness error: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Errorf("replay with: go run ./cmd/pdsoak -seed %d -replicas %d -workers %d -streams %d -events %d -duration %s -deadline %s -hang-timeout %s",
			cfg.Seed, cfg.Replicas, cfg.Workers, cfg.Streams, cfg.Events, cfg.Horizon, cfg.Deadline, cfg.HangTimeout)
		t.Errorf("schedule:")
		for _, ev := range res.Schedule {
			t.Errorf("  %s", ev)
		}
		for _, v := range res.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if res.Frames == 0 || res.OK == 0 {
		t.Errorf("soak served %d frames (%d ok); expected a live stream", res.Frames, res.OK)
	}
	// The pinned seed must actually exercise the replica-level kinds, or
	// this test silently degrades into the single-stack soak.
	kills, stalls := 0, 0
	for _, ev := range res.Schedule {
		switch ev.Kind {
		case ReplicaKill:
			kills++
		case ReplicaStall:
			stalls++
		}
	}
	if kills == 0 || stalls == 0 {
		t.Errorf("schedule had %d replica kills and %d replica stalls; the pinned seed must include both", kills, stalls)
	}
}

// TestGenerateDeterministic: the same seed and config must yield the
// identical schedule — the property the replay workflow rests on — and a
// different seed a different one.
func TestGenerateDeterministic(t *testing.T) {
	cfg := ScheduleConfig{Events: 16, Horizon: 2 * time.Second, Streams: 4}
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 16 {
		t.Fatalf("schedule has %d events, want 16", len(a))
	}
	c := Generate(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical schedule")
	}
	for i, ev := range a {
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("schedule not time-ordered at %d: %v after %v", i, ev.At, a[i-1].At)
		}
		if ev.At >= cfg.Horizon*3/4 {
			t.Errorf("event %d at %v lands past the 3/4-horizon window", i, ev.At)
		}
		if ev.Kind == HardStall && ev.Dur < 2*150*time.Millisecond {
			t.Errorf("hard stall %d duration %v below the 2x watchdog bound", i, ev.Dur)
		}
	}
}

// TestGenerateReplicaGating pins the compatibility contract: a config with
// Replicas <= 1 must generate the byte-identical schedule it always did
// (no extra rng draws, no replica-level kinds), while Replicas > 1 widens
// the kind space and targets replicas in range.
func TestGenerateReplicaGating(t *testing.T) {
	base := ScheduleConfig{Events: 64, Horizon: 2 * time.Second, Streams: 4, HangTimeout: 150 * time.Millisecond}
	legacy := Generate(42, base)
	one := base
	one.Replicas = 1
	if !reflect.DeepEqual(legacy, Generate(42, one)) {
		t.Fatal("Replicas=1 changed the schedule; single-stack seeds must stay byte-identical")
	}
	for i, ev := range legacy {
		if ev.Kind >= FaultKind(numFaultKinds) {
			t.Fatalf("event %d: single-stack schedule drew replica-level kind %s", i, ev.Kind)
		}
		if ev.Replica != 0 {
			t.Fatalf("event %d: single-stack schedule targeted replica %d", i, ev.Replica)
		}
	}

	multi := base
	multi.Replicas = 3
	sched := Generate(42, multi)
	sawReplicaKind, sawNonZeroReplica := false, false
	for i, ev := range sched {
		if ev.Replica < 0 || ev.Replica >= 3 {
			t.Fatalf("event %d targets replica %d, out of range [0,3)", i, ev.Replica)
		}
		if ev.Kind == ReplicaKill || ev.Kind == ReplicaStall {
			sawReplicaKind = true
			if ev.Dur <= 0 {
				t.Fatalf("event %d: replica-level event with non-positive duration %v", i, ev.Dur)
			}
		}
		if ev.Replica != 0 {
			sawNonZeroReplica = true
		}
	}
	if !sawReplicaKind || !sawNonZeroReplica {
		t.Fatalf("64-event replica schedule drew no replica kinds (%v) or never targeted replica != 0 (%v)",
			sawReplicaKind, sawNonZeroReplica)
	}
}

// TestCheckGatewayFlagsBreach: each gateway invariant checker must fire on
// a broken snapshot (a checker that never fires proves nothing).
func TestCheckGatewayFlagsBreach(t *testing.T) {
	b := GatewayBudgets{HedgeBurst: 8, RetryBurst: 8, HedgeRatio: 0.1, RetryRatio: 0.1}
	good := gateway.Stats{Accepted: 100, Answered: 100, HedgesFired: 10, HedgeWins: 4, Retries: 6, Ejections: 2, Rejoins: 2}
	if v := CheckGateway(good, good, b); len(v) != 0 {
		t.Errorf("consistent stats flagged: %v", v)
	}
	cases := []struct {
		name string
		cur  gateway.Stats
	}{
		{"answered>accepted", gateway.Stats{Accepted: 100, Answered: 101}},
		{"wins>fired", gateway.Stats{Accepted: 100, Answered: 100, HedgesFired: 3, HedgeWins: 4}},
		{"rejoins>ejections", gateway.Stats{Accepted: 100, Answered: 100, Ejections: 1, Rejoins: 2}},
		{"hedge over budget", gateway.Stats{Accepted: 100, Answered: 100, HedgesFired: 19}},
		{"retry over budget", gateway.Stats{Accepted: 100, Answered: 100, Retries: 19}},
	}
	for _, tc := range cases {
		if v := CheckGateway(tc.cur, tc.cur, b); len(v) != 1 {
			t.Errorf("%s produced %d violations, want 1: %v", tc.name, len(v), v)
		}
	}
	// Monotone regression between snapshots.
	back := good
	back.Accepted, back.Answered = 50, 50
	if v := CheckGateway(good, back, b); len(v) != 2 {
		t.Errorf("counter regression produced %d violations, want 2 (Accepted, Answered): %v", len(v), v)
	}
}

// TestCheckConservationFlagsBreach: the checker must actually fire on a
// broken identity (a checker that never fires proves nothing).
func TestCheckConservationFlagsBreach(t *testing.T) {
	good := rt.Stats{FramesIn: 10, FramesOut: 7, FramesDropped: 2, InFlight: 1}
	if v := CheckConservation("x", good); len(v) != 0 {
		t.Errorf("consistent stats flagged: %v", v)
	}
	bad := rt.Stats{FramesIn: 10, FramesOut: 7, FramesDropped: 2, InFlight: 2}
	if v := CheckConservation("x", bad); len(v) != 1 {
		t.Errorf("broken conservation produced %d violations, want 1", len(v))
	}
	hung := rt.Stats{FramesIn: 1, FramesOut: 1, FramesHung: 1} // hung but 0 errors
	if v := CheckConservation("x", hung); len(v) != 1 {
		t.Errorf("hung>errors produced %d violations, want 1", len(v))
	}
}

// TestCheckMonotoneFlagsRegression: counters moving backwards between
// snapshots must be reported.
func TestCheckMonotoneFlagsRegression(t *testing.T) {
	prev := serve.SupervisorStats{
		Restarts:  2,
		Aggregate: rt.Stats{FramesIn: 100, FramesOut: 100},
	}
	cur := serve.SupervisorStats{
		Restarts:  2,
		Aggregate: rt.Stats{FramesIn: 120, FramesOut: 120},
	}
	if v := CheckMonotone(prev, cur); len(v) != 0 {
		t.Errorf("monotone progression flagged: %v", v)
	}
	back := serve.SupervisorStats{
		Restarts:  1, // restart counter reset
		Aggregate: rt.Stats{FramesIn: 90, FramesOut: 120},
	}
	v := CheckMonotone(prev, back)
	if len(v) != 2 {
		t.Errorf("counter regression produced %d violations, want 2 (FramesIn, Restarts): %v", len(v), v)
	}
}
