package chaos

import (
	"fmt"

	"repro/internal/gateway"
	"repro/internal/rt"
	"repro/internal/serve"
)

// Invariant checkers. Each returns human-readable violation strings; an
// empty slice means the snapshot is consistent. The soak polls them
// continuously while faults fire, so they must hold at every observable
// instant — not just at idle — exactly as internal/rt documents for its
// own counters.

// CheckConservation verifies the frame-count conservation identity on one
// pipeline snapshot: every accepted frame is exactly one of emitted,
// dropped, or in flight. The identity survives restarts because retired
// incarnations fold their final (flushed, InFlight=0) stats into the
// worker totals.
func CheckConservation(label string, s rt.Stats) []string {
	var v []string
	if s.FramesIn != s.FramesOut+s.FramesDropped+s.InFlight {
		v = append(v, fmt.Sprintf(
			"%s: conservation broken: in %d != out %d + dropped %d + inflight %d",
			label, s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight))
	}
	if s.FramesHung > s.Errors {
		v = append(v, fmt.Sprintf("%s: hung %d > errors %d (hung frames must count as errors)",
			label, s.FramesHung, s.Errors))
	}
	if s.Panics > s.Errors {
		v = append(v, fmt.Sprintf("%s: panics %d > errors %d", label, s.Panics, s.Errors))
	}
	return v
}

// CheckSupervisor verifies conservation on the aggregate and on every
// worker of a supervisor snapshot.
func CheckSupervisor(st serve.SupervisorStats) []string {
	v := CheckConservation("aggregate", st.Aggregate)
	for _, w := range st.Workers {
		v = append(v, CheckConservation(fmt.Sprintf("worker %d", w.ID), w.Pipeline)...)
	}
	return v
}

// GatewayBudgets are the hedge/retry budget knobs CheckGateway verifies
// spend against; they must mirror what the gateway under test was
// configured with.
type GatewayBudgets struct {
	HedgeBurst, RetryBurst int
	HedgeRatio, RetryRatio float64
}

// CheckGateway verifies the gateway's own invariants on a snapshot pair
// (prev taken before cur):
//
//   - exactly one answer per accepted request: Answered never exceeds
//     Accepted (the gateway loads Answered first, so this holds even on
//     concurrent snapshots), and hedge wins never exceed hedges fired;
//   - hedge and retry spend stay within budget: at most the burst plus
//     the per-success refill ratio times the traffic that refilled it
//     (Answered bounds successes from above);
//   - a replica cannot rejoin more often than it was ejected;
//   - every cumulative counter is monotone between snapshots.
func CheckGateway(prev, cur gateway.Stats, b GatewayBudgets) []string {
	var v []string
	if cur.Answered > cur.Accepted {
		v = append(v, fmt.Sprintf("gateway: answered %d > accepted %d (more answers than requests)",
			cur.Answered, cur.Accepted))
	}
	if cur.HedgeWins > cur.HedgesFired {
		v = append(v, fmt.Sprintf("gateway: hedge wins %d > hedges fired %d", cur.HedgeWins, cur.HedgesFired))
	}
	if cur.Rejoins > cur.Ejections {
		v = append(v, fmt.Sprintf("gateway: rejoins %d > ejections %d", cur.Rejoins, cur.Ejections))
	}
	if max := float64(b.HedgeBurst) + b.HedgeRatio*float64(cur.Answered); float64(cur.HedgesFired) > max+1e-6 {
		v = append(v, fmt.Sprintf("gateway: hedge spend %d over budget %.1f (burst %d + %.2f x %d answered)",
			cur.HedgesFired, max, b.HedgeBurst, b.HedgeRatio, cur.Answered))
	}
	if max := float64(b.RetryBurst) + b.RetryRatio*float64(cur.Answered); float64(cur.Retries) > max+1e-6 {
		v = append(v, fmt.Sprintf("gateway: retry spend %d over budget %.1f (burst %d + %.2f x %d answered)",
			cur.Retries, max, b.RetryBurst, b.RetryRatio, cur.Answered))
	}
	mono := func(name string, p, c uint64) {
		if c < p {
			v = append(v, fmt.Sprintf("gateway: %s went backwards: %d -> %d", name, p, c))
		}
	}
	mono("Accepted", prev.Accepted, cur.Accepted)
	mono("Answered", prev.Answered, cur.Answered)
	mono("HedgesFired", prev.HedgesFired, cur.HedgesFired)
	mono("HedgeWins", prev.HedgeWins, cur.HedgeWins)
	mono("Retries", prev.Retries, cur.Retries)
	mono("Ejections", prev.Ejections, cur.Ejections)
	mono("Rejoins", prev.Rejoins, cur.Rejoins)
	mono("Probes", prev.Probes, cur.Probes)
	return v
}

// CheckMonotone verifies that the cumulative counters never move backwards
// between two supervisor snapshots (prev taken before cur). Retires fold
// final incarnation stats into the worker totals, so a restart must never
// appear as a counter reset from the outside.
func CheckMonotone(prev, cur serve.SupervisorStats) []string {
	var v []string
	mono := func(label, name string, p, c uint64) {
		if c < p {
			v = append(v, fmt.Sprintf("%s: %s went backwards: %d -> %d", label, name, p, c))
		}
	}
	check := func(label string, p, c rt.Stats) {
		mono(label, "FramesIn", p.FramesIn, c.FramesIn)
		mono(label, "FramesOut", p.FramesOut, c.FramesOut)
		mono(label, "FramesDropped", p.FramesDropped, c.FramesDropped)
		mono(label, "DeadlineMisses", p.DeadlineMisses, c.DeadlineMisses)
		mono(label, "Errors", p.Errors, c.Errors)
		mono(label, "Panics", p.Panics, c.Panics)
		mono(label, "FramesHung", p.FramesHung, c.FramesHung)
	}
	check("aggregate", prev.Aggregate, cur.Aggregate)
	mono("supervisor", "Restarts", prev.Restarts, cur.Restarts)
	mono("supervisor", "Wedges", prev.Wedges, cur.Wedges)
	if len(prev.Workers) == len(cur.Workers) {
		for i := range prev.Workers {
			check(fmt.Sprintf("worker %d", i), prev.Workers[i].Pipeline, cur.Workers[i].Pipeline)
			mono(fmt.Sprintf("worker %d", i), "Restarts", prev.Workers[i].Restarts, cur.Workers[i].Restarts)
			mono(fmt.Sprintf("worker %d", i), "Wedges", prev.Workers[i].Wedges, cur.Workers[i].Wedges)
		}
	}
	return v
}
