package chaos

import (
	"fmt"

	"repro/internal/rt"
	"repro/internal/serve"
)

// Invariant checkers. Each returns human-readable violation strings; an
// empty slice means the snapshot is consistent. The soak polls them
// continuously while faults fire, so they must hold at every observable
// instant — not just at idle — exactly as internal/rt documents for its
// own counters.

// CheckConservation verifies the frame-count conservation identity on one
// pipeline snapshot: every accepted frame is exactly one of emitted,
// dropped, or in flight. The identity survives restarts because retired
// incarnations fold their final (flushed, InFlight=0) stats into the
// worker totals.
func CheckConservation(label string, s rt.Stats) []string {
	var v []string
	if s.FramesIn != s.FramesOut+s.FramesDropped+s.InFlight {
		v = append(v, fmt.Sprintf(
			"%s: conservation broken: in %d != out %d + dropped %d + inflight %d",
			label, s.FramesIn, s.FramesOut, s.FramesDropped, s.InFlight))
	}
	if s.FramesHung > s.Errors {
		v = append(v, fmt.Sprintf("%s: hung %d > errors %d (hung frames must count as errors)",
			label, s.FramesHung, s.Errors))
	}
	if s.Panics > s.Errors {
		v = append(v, fmt.Sprintf("%s: panics %d > errors %d", label, s.Panics, s.Errors))
	}
	return v
}

// CheckSupervisor verifies conservation on the aggregate and on every
// worker of a supervisor snapshot.
func CheckSupervisor(st serve.SupervisorStats) []string {
	v := CheckConservation("aggregate", st.Aggregate)
	for _, w := range st.Workers {
		v = append(v, CheckConservation(fmt.Sprintf("worker %d", w.ID), w.Pipeline)...)
	}
	return v
}

// CheckMonotone verifies that the cumulative counters never move backwards
// between two supervisor snapshots (prev taken before cur). Retires fold
// final incarnation stats into the worker totals, so a restart must never
// appear as a counter reset from the outside.
func CheckMonotone(prev, cur serve.SupervisorStats) []string {
	var v []string
	mono := func(label, name string, p, c uint64) {
		if c < p {
			v = append(v, fmt.Sprintf("%s: %s went backwards: %d -> %d", label, name, p, c))
		}
	}
	check := func(label string, p, c rt.Stats) {
		mono(label, "FramesIn", p.FramesIn, c.FramesIn)
		mono(label, "FramesOut", p.FramesOut, c.FramesOut)
		mono(label, "FramesDropped", p.FramesDropped, c.FramesDropped)
		mono(label, "DeadlineMisses", p.DeadlineMisses, c.DeadlineMisses)
		mono(label, "Errors", p.Errors, c.Errors)
		mono(label, "Panics", p.Panics, c.Panics)
		mono(label, "FramesHung", p.FramesHung, c.FramesHung)
	}
	check("aggregate", prev.Aggregate, cur.Aggregate)
	mono("supervisor", "Restarts", prev.Restarts, cur.Restarts)
	mono("supervisor", "Wedges", prev.Wedges, cur.Wedges)
	if len(prev.Workers) == len(cur.Workers) {
		for i := range prev.Workers {
			check(fmt.Sprintf("worker %d", i), prev.Workers[i].Pipeline, cur.Workers[i].Pipeline)
			mono(fmt.Sprintf("worker %d", i), "Restarts", prev.Workers[i].Restarts, cur.Workers[i].Restarts)
			mono(fmt.Sprintf("worker %d", i), "Wedges", prev.Workers[i].Wedges, cur.Workers[i].Wedges)
		}
	}
	return v
}
