package chaos

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/gateway"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
	"repro/internal/serve"
)

// flakyBackend wraps a replica's backend with replica-level fault valves:
// killed, every request fails fast with a transient 503 (the process is
// gone); stalled, every request blocks until its context is cancelled —
// the outage only the gateway's hedging can route around. Probes fail in
// both states, so an ejected replica is not readmitted until the valve
// clears.
type flakyBackend struct {
	inner   gateway.Backend
	dead    atomic.Bool
	stalled atomic.Bool
}

func (f *flakyBackend) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	if f.dead.Load() {
		return nil, &serve.APIError{Status: 503, Message: "chaos: replica killed"}
	}
	if f.stalled.Load() {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return f.inner.Detect(ctx, stream, frame)
}

func (f *flakyBackend) Probe(ctx context.Context) error {
	if f.dead.Load() {
		return errors.New("chaos: replica killed")
	}
	if f.stalled.Load() {
		return errors.New("chaos: replica stalled")
	}
	return f.inner.Probe(ctx)
}

// replicaStack is one in-process replica: its own supervisor + server
// stack, its own fault injectors, and the flaky valve the schedule's
// replica-level events flip.
type replicaStack struct {
	sup    *serve.Supervisor
	srv    *serve.Server
	flaky  *flakyBackend
	faults map[int]*faultinject.Faults
}

// soakGateway is the gateway-topology soak: cfg.Replicas full serving
// stacks fronted by a gateway, the schedule extended with replica-level
// kills and stalls, and the gateway's own invariants — exactly one answer
// per accepted request, hedge/retry spend within budget, rejoins bounded
// by ejections — polled alongside each replica's conservation checks.
// Recovery demands more than the single-stack soak: after faults clear,
// every replica must be back in rotation (ejected ones probed and
// readmitted) and every stream serving through the gateway.
func soakGateway(ctx context.Context, cfg Config) (Result, error) {
	sched := Generate(cfg.Seed, ScheduleConfig{
		Events:      cfg.Events,
		Horizon:     cfg.Horizon,
		Streams:     cfg.Streams,
		HangTimeout: cfg.HangTimeout,
		Replicas:    cfg.Replicas,
	})
	res := Result{Schedule: sched}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	baseline := runtime.NumGoroutine()
	// One Metrics shared by every replica: the abandoned-scanner ledger
	// must drain to zero across the whole topology before the soak may
	// settle, exactly as in the single-stack soak.
	metrics := obs.NewMetrics()
	stacks := make([]*replicaStack, cfg.Replicas)
	backends := make([]gateway.Backend, cfg.Replicas)
	for i := range stacks {
		faults := make(map[int]*faultinject.Faults, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			faults[w] = faultinject.New()
		}
		sup, err := serve.NewSupervisor(syntheticFactory(faults, soakBias(cfg)), serve.SupervisorConfig{
			Workers: cfg.Workers,
			Pipeline: rt.Config{
				Deadline:     cfg.Deadline,
				HangTimeout:  cfg.HangTimeout,
				DegradeAfter: cfg.DegradeAfter,
				ROI:          cfg.ROI,
				Metrics:      metrics,
			},
			RestartBackoff:     20 * time.Millisecond,
			RestartBackoffMax:  200 * time.Millisecond,
			RestartAfterErrors: 8,
		})
		if err != nil {
			for _, st := range stacks[:i] {
				st.sup.Close()
			}
			return res, fmt.Errorf("chaos: boot replica %d: %w", i, err)
		}
		srv := serve.NewServer(sup, serve.ServerConfig{Metrics: metrics})
		flaky := &flakyBackend{inner: &gateway.LocalBackend{Sup: sup, Srv: srv}}
		stacks[i] = &replicaStack{sup: sup, srv: srv, flaky: flaky, faults: faults}
		backends[i] = flaky
	}

	// Gateway knobs scaled to the soak's deadline: hedge within a frame
	// budget, eject fast, probe fast, so a 150-400ms replica outage plays
	// the whole eject -> probe -> probation -> rejoin arc inside the
	// schedule tail.
	budgets := GatewayBudgets{HedgeBurst: 8, RetryBurst: 8, HedgeRatio: 0.1, RetryRatio: 0.1}
	gw, err := gateway.New(backends, gateway.Config{
		EjectAfter:         3,
		EjectBackoff:       100 * time.Millisecond,
		EjectBackoffMax:    400 * time.Millisecond,
		ProbationSuccesses: 2,
		ProbeInterval:      50 * time.Millisecond,
		ProbeTimeout:       100 * time.Millisecond,
		HedgeQuantile:      0.9,
		HedgeFloor:         cfg.Deadline / 4,
		HedgeCeil:          cfg.Deadline,
		HedgeWarmup:        4,
		HedgeBurst:         budgets.HedgeBurst,
		HedgeRatio:         budgets.HedgeRatio,
		RetryBurst:         budgets.RetryBurst,
		RetryRatio:         budgets.RetryRatio,
		Seed:               cfg.Seed,
		Logf:               logf,
	})
	if err != nil {
		for _, st := range stacks {
			st.sup.Close()
		}
		return res, fmt.Errorf("chaos: boot gateway: %w", err)
	}
	viol := &violations{}

	workerOf := func(stream int) int { return ((stream % cfg.Workers) + cfg.Workers) % cfg.Workers }
	// One gateway Do may serialize a stalled primary, a hedge wait, and a
	// retry; bound it past all three so a stuck topology surfaces as an
	// error, not a stuck soak.
	reqTimeout := 2*cfg.Deadline + 2*cfg.HangTimeout + 250*time.Millisecond

	doOne := func(stream int, frame *imgproc.Gray) {
		rctx, cancel := context.WithTimeout(ctx, reqTimeout)
		defer cancel()
		_, err := gw.Do(rctx, stream, frame)
		atomic.AddUint64(&res.Frames, 1)
		var ae *serve.APIError
		switch {
		case err == nil:
			atomic.AddUint64(&res.OK, 1)
		case errors.Is(err, serve.ErrWorkerRestarting), errors.Is(err, rt.ErrHung),
			errors.Is(err, serve.ErrSupervisorClosed), errors.Is(err, gateway.ErrNoReplicas):
			atomic.AddUint64(&res.Rejected, 1)
		case errors.As(err, &ae) && ae.Transient():
			atomic.AddUint64(&res.Rejected, 1)
		default:
			atomic.AddUint64(&res.Failed, 1)
		}
	}

	start := time.Now()
	end := start.Add(cfg.Horizon)
	var wg sync.WaitGroup
	soakDone := make(chan struct{})

	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			frame := soakFrame()
			for time.Now().Before(end) && ctx.Err() == nil {
				doOne(stream, frame)
				select {
				case <-time.After(cfg.FrameInterval):
				case <-ctx.Done():
					return
				}
			}
		}(s)
	}

	// Fault applier: level faults land inside the event's replica; the
	// replica-level kinds flip that replica's valve for Dur.
	for _, ev := range sched {
		wg.Add(1)
		go func(ev Event) {
			defer wg.Done()
			select {
			case <-time.After(ev.At):
			case <-ctx.Done():
				return
			}
			stack := stacks[ev.Replica]
			logf("chaos: %s", ev)
			switch ev.Kind {
			case ReplicaKill:
				stack.flaky.dead.Store(true)
				defer stack.flaky.dead.Store(false)
			case ReplicaStall:
				stack.flaky.stalled.Store(true)
				defer stack.flaky.stalled.Store(false)
			case SoftStall:
				f := stack.faults[workerOf(ev.Stream)]
				f.StallLevel(ev.Level, 10*cfg.Deadline)
				defer f.Reset()
			case HardStall:
				f := stack.faults[workerOf(ev.Stream)]
				f.HardStallLevel(ev.Level, ev.Dur)
				defer f.Reset()
			case Fail:
				f := stack.faults[workerOf(ev.Stream)]
				f.FailLevel(ev.Level, fmt.Errorf("chaos: injected failure (stream %d)", ev.Stream))
				defer f.Reset()
			case Panic:
				f := stack.faults[workerOf(ev.Stream)]
				f.PanicLevel(ev.Level, fmt.Sprintf("chaos: injected panic (stream %d)", ev.Stream))
				defer f.Reset()
			case Corrupt:
				doOne(ev.Stream, poisonFrame())
				return
			case Burst:
				var bwg sync.WaitGroup
				for i := 0; i < 8; i++ {
					bwg.Add(1)
					go func() { defer bwg.Done(); doOne(ev.Stream, soakFrame()) }()
				}
				bwg.Wait()
				return
			}
			select {
			case <-time.After(ev.Dur):
			case <-ctx.Done():
			}
		}(ev)
	}

	// Invariant poller: per-replica conservation + monotonicity, plus the
	// gateway's own invariants, at every tick while faults fire.
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		prev := make([]serve.SupervisorStats, len(stacks))
		for i, st := range stacks {
			prev[i] = st.sup.Stats()
		}
		prevGw := gw.Stats()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-soakDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				for i, st := range stacks {
					cur := st.sup.Stats()
					label := fmt.Sprintf("replica %d", i)
					for _, s := range CheckSupervisor(cur) {
						viol.add(label + ": " + s)
					}
					for _, s := range CheckMonotone(prev[i], cur) {
						viol.add(label + ": " + s)
					}
					prev[i] = cur
				}
				curGw := gw.Stats()
				viol.add(CheckGateway(prevGw, curGw, budgets)...)
				prevGw = curGw
			}
		}
	}()

	teardown := func() {
		gw.Close()
		for _, st := range stacks {
			st.sup.Close()
		}
	}

	streamsAndFaultsDone := make(chan struct{})
	go func() { wg.Wait(); close(streamsAndFaultsDone) }()
	select {
	case <-streamsAndFaultsDone:
	case <-ctx.Done():
		close(soakDone)
		teardown()
		return res, fmt.Errorf("chaos: soak cancelled: %w", ctx.Err())
	}
	for _, st := range stacks {
		st.flaky.dead.Store(false)
		st.flaky.stalled.Store(false)
		for _, f := range st.faults {
			f.Reset()
		}
	}

	// Recovery SLO: every replica server ready, every replica back in the
	// gateway's rotation, and every stream serving through the gateway.
	logf("chaos: schedule done after %s; verifying recovery", time.Since(start).Round(time.Millisecond))
	recoverBy := time.Now().Add(cfg.RecoverySLO)
	recovered := func() bool {
		for _, st := range stacks {
			if ready, _ := st.srv.Ready(); !ready {
				return false
			}
		}
		for _, s := range gw.ReplicaStates() {
			if s == gateway.Ejected {
				return false
			}
		}
		for s := 0; s < cfg.Streams; s++ {
			rctx, cancel := context.WithTimeout(ctx, reqTimeout)
			_, err := gw.Do(rctx, s, soakFrame())
			cancel()
			if err != nil {
				return false
			}
		}
		return true
	}
	for !recovered() {
		if ctx.Err() != nil {
			close(soakDone)
			teardown()
			return res, fmt.Errorf("chaos: soak cancelled: %w", ctx.Err())
		}
		if time.Now().After(recoverBy) {
			viol.add(fmt.Sprintf("recovery SLO missed: gateway not serving %s after faults cleared (states %v)",
				cfg.RecoverySLO, gw.ReplicaStates()))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(soakDone)
	pollWg.Wait()

	for i, st := range stacks {
		s := st.sup.Stats()
		res.Restarts += s.Restarts
		res.Wedges += s.Wedges
		res.FramesHung += s.Aggregate.FramesHung
		res.ROIScans += s.Aggregate.ROIScans
		res.ROIFullScans += s.Aggregate.ROIFullScans
		for _, msg := range CheckSupervisor(s) {
			viol.add(fmt.Sprintf("replica %d: %s", i, msg))
		}
	}
	gwStats := gw.Stats()
	res.Hedges = gwStats.HedgesFired
	res.Ejections = gwStats.Ejections
	res.Rejoins = gwStats.Rejoins
	viol.add(CheckGateway(gwStats, gwStats, budgets)...)

	teardown()
	settleBy := time.Now().Add(cfg.RecoverySLO + 3*cfg.HangTimeout)
	for metrics.AbandonedScanners.Load() != 0 {
		if time.Now().After(settleBy) {
			viol.add(fmt.Sprintf("abandoned-scanner ledger did not drain: %d still booked",
				metrics.AbandonedScanners.Load()))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(settleBy) {
			viol.add(fmt.Sprintf("goroutines did not settle: %d running, baseline %d",
				runtime.NumGoroutine(), baseline))
			break
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}

	res.Violations = viol.snapshot()
	logf("chaos: %d frames (%d ok, %d rejected, %d failed), %d restarts, %d wedges, %d hung, "+
		"%d hedges, %d ejections, %d rejoins, %d violations",
		res.Frames, res.OK, res.Rejected, res.Failed, res.Restarts, res.Wedges, res.FramesHung,
		res.Hedges, res.Ejections, res.Rejoins, len(res.Violations))
	return res, nil
}
