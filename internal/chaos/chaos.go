// Package chaos is the seeded chaos-soak harness: it boots the full
// serving stack (supervisor + workers + liveness watchdogs) against a
// synthetic detector, fires a reproducible schedule of faults at it —
// context-observing stalls, context-ignoring hangs, failures, panics,
// poison frames, overload bursts — and continuously checks the invariants
// that define "self-healing":
//
//   - frame-count conservation (FramesIn == FramesOut + FramesDropped +
//     InFlight) on every worker and on the aggregate, at every polled
//     instant, across restarts and wedges;
//   - monotone cumulative counters (a restart must never read as a reset);
//   - recovery SLO: once the schedule ends and faults clear, the server
//     must report ready and every stream must serve again within a bound;
//   - goroutine settling net of accounted leaks: after the soak closes,
//     the abandoned-scanner ledger drains to zero and the goroutine count
//     returns to baseline — nothing leaks that the watchdog didn't book.
//
// The same seed always replays the same schedule (cmd/pdsoak -seed N), so
// a soak failure in CI is a deterministic repro, not a flake report.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/roi"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
	"repro/internal/serve"
	"repro/internal/svm"
)

// Config tunes one soak run.
type Config struct {
	// Seed drives the fault schedule; the same seed replays the same
	// schedule. Required (0 is a valid seed).
	Seed int64
	// Workers is the supervisor worker count. Default 2.
	Workers int
	// Streams is the number of concurrent camera streams. Default 3.
	Streams int
	// Deadline is the per-frame budget; HangTimeout the watchdog bound.
	// Defaults 60ms / 150ms.
	Deadline    time.Duration
	HangTimeout time.Duration
	// Horizon is how long the fault schedule runs. Default 2s.
	Horizon time.Duration
	// Events is the number of scheduled faults. Default 8.
	Events int
	// FrameInterval is each stream's submit cadence. Default 15ms.
	FrameInterval time.Duration
	// RecoverySLO bounds how long after the schedule ends the stack may
	// take to report ready and serve every stream again. Default 5s.
	RecoverySLO time.Duration
	// Replicas selects the topology: at most 1 (the default) soaks a
	// single supervisor stack exactly as before; above 1 it boots that
	// many full replica stacks behind an internal/gateway front end, adds
	// replica-level kill/stall events to the schedule, and polls the
	// gateway invariants (one answer per request, budgeted hedge/retry
	// spend, rejoins bounded by ejections) alongside the per-replica ones.
	Replicas int
	// ROI, when non-nil, gives every worker pipeline a track-guided ROI
	// rung (rt.Config.ROI): degradation under the injected faults then
	// passes through restricted scans, and the synthetic model is biased
	// positive so detections exist, tracks form, and the restricted scans
	// carry real regions. The conservation and settling invariants are
	// unchanged — ROI scheduling must not create or lose frames.
	ROI *roi.Config
	// DegradeAfter passes through to rt.Config.DegradeAfter (0 keeps the
	// runtime default). ROI soaks set 1 so a single soft-stall miss
	// reliably drops a worker onto its ROI rung.
	DegradeAfter int
	// Logf, when non-nil, receives progress lines (cmd/pdsoak wires it to
	// the terminal; tests leave it nil).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Streams <= 0 {
		c.Streams = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 60 * time.Millisecond
	}
	if c.HangTimeout <= 0 {
		c.HangTimeout = 150 * time.Millisecond
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.Events <= 0 {
		c.Events = 8
	}
	if c.FrameInterval <= 0 {
		c.FrameInterval = 15 * time.Millisecond
	}
	if c.RecoverySLO <= 0 {
		c.RecoverySLO = 5 * time.Second
	}
	return c
}

// Result summarizes one soak run.
type Result struct {
	// Schedule is the fault plan that ran (print it to reproduce a report
	// by hand; the seed alone replays it).
	Schedule Schedule
	// Frames counts requests issued; OK those that returned detections,
	// Rejected the fast retryable refusals (restarting, hung, shed),
	// Failed the per-frame errors (injected failures, panics, deadline
	// cuts, poison frames) — all three are expected under chaos.
	Frames, OK, Rejected, Failed uint64
	// Restarts, Wedges, FramesHung are the final supervisor totals: a
	// soak whose schedule contains hard stalls must show all three
	// nonzero, or the watchdog never engaged. On gateway soaks they are
	// summed across replicas.
	Restarts, Wedges, FramesHung uint64
	// Hedges, Ejections, Rejoins are the gateway's final totals on
	// gateway soaks (Config.Replicas > 1); zero on single-stack soaks.
	Hedges, Ejections, Rejoins uint64
	// ROIScans and ROIFullScans are the aggregate restricted/full scan
	// counts at ROI rungs (Config.ROI non-nil). A soak whose schedule
	// forced degradation must show at least one of them nonzero, or the
	// ROI rung never engaged.
	ROIScans, ROIFullScans uint64
	// Violations lists every invariant breach observed; empty means the
	// system self-healed cleanly.
	Violations []string
}

// maxViolations bounds the report: a broken invariant usually repeats
// every poll tick, and 32 instances identify it as well as 10 000.
const maxViolations = 32

// violations is a bounded, concurrency-safe violation log.
type violations struct {
	mu        sync.Mutex
	list      []string
	truncated bool
}

func (v *violations) add(items ...string) {
	if len(items) == 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, it := range items {
		if len(v.list) >= maxViolations {
			if !v.truncated {
				v.list = append(v.list, "... further violations truncated")
				v.truncated = true
			}
			return
		}
		v.list = append(v.list, it)
	}
}

func (v *violations) snapshot() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.list...)
}

// syntheticFactory builds per-worker detectors with a zero-weight model —
// every window scores the bias, so the soak exercises the full scan path
// (pyramid, features, classifier, NMS) without needing trained weights.
// bias 0 keeps every window below threshold (no detections); a positive
// bias makes every scanned window a detection, which ROI soaks use to keep
// the tracker warm. faultsFor wires each worker's fault probe; a restarted
// worker re-installs its probe, so cleared faults govern recovery.
func syntheticFactory(faultsFor map[int]*faultinject.Faults, bias float64) serve.DetectorFactory {
	return func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		if f := faultsFor[worker]; f != nil {
			cfg.LevelProbe = f.Probe
		}
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: bias}
		return core.NewDetector(model, cfg)
	}
}

// soakBias selects the synthetic model bias for a soak config: positive
// (detections everywhere) when an ROI rung needs live tracks, zero (quiet
// detector) otherwise.
func soakBias(cfg Config) float64 {
	if cfg.ROI != nil {
		return 0.5
	}
	return 0
}

// soakFrame is the synthetic camera frame: 128x256 yields a 3-level
// feature pyramid at step 1.3.
func soakFrame() *imgproc.Gray { return imgproc.NewGray(128, 256) }

// poisonFrame is a frame whose pixel buffer is shorter than its header
// claims; the feature extractor panics on it and per-goroutine recovery
// must convert the panic into a per-frame error.
func poisonFrame() *imgproc.Gray { return faultinject.TruncatePix(soakFrame(), 64) }

// Soak runs one chaos soak: boot the stack, drive the streams, fire the
// seeded schedule, poll the invariants, verify recovery, and settle. The
// returned error covers harness failures (a broken config, ctx cancelled);
// invariant breaches are reported in Result.Violations, not as errors.
func Soak(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas > 1 {
		return soakGateway(ctx, cfg)
	}
	sched := Generate(cfg.Seed, ScheduleConfig{
		Events:      cfg.Events,
		Horizon:     cfg.Horizon,
		Streams:     cfg.Streams,
		HangTimeout: cfg.HangTimeout,
	})
	res := Result{Schedule: sched}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	baseline := runtime.NumGoroutine()
	metrics := obs.NewMetrics()
	faultsFor := make(map[int]*faultinject.Faults, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		faultsFor[i] = faultinject.New()
	}
	sup, err := serve.NewSupervisor(syntheticFactory(faultsFor, soakBias(cfg)), serve.SupervisorConfig{
		Workers: cfg.Workers,
		Pipeline: rt.Config{
			Deadline:     cfg.Deadline,
			HangTimeout:  cfg.HangTimeout,
			DegradeAfter: cfg.DegradeAfter,
			ROI:          cfg.ROI,
			Metrics:      metrics,
		},
		RestartBackoff:     20 * time.Millisecond,
		RestartBackoffMax:  200 * time.Millisecond,
		RestartAfterErrors: 8,
	})
	if err != nil {
		return res, fmt.Errorf("chaos: boot supervisor: %w", err)
	}
	srv := serve.NewServer(sup, serve.ServerConfig{Metrics: metrics})
	viol := &violations{}

	// workerOf mirrors the supervisor's stream pinning so level faults
	// land on the worker that actually scans the stream.
	workerOf := func(stream int) int { return ((stream % cfg.Workers) + cfg.Workers) % cfg.Workers }
	// reqTimeout bounds one Do: past the watchdog and the supervisor's
	// result-silent net, so a stuck stack surfaces as an error, not a
	// stuck soak.
	reqTimeout := cfg.Deadline + 2*cfg.HangTimeout + 250*time.Millisecond

	doOne := func(stream int, frame *imgproc.Gray) {
		rctx, cancel := context.WithTimeout(ctx, reqTimeout)
		defer cancel()
		_, err := sup.Do(rctx, stream, frame)
		atomic.AddUint64(&res.Frames, 1)
		switch {
		case err == nil:
			atomic.AddUint64(&res.OK, 1)
		case errors.Is(err, serve.ErrWorkerRestarting), errors.Is(err, rt.ErrHung),
			errors.Is(err, serve.ErrSupervisorClosed):
			atomic.AddUint64(&res.Rejected, 1)
		default:
			atomic.AddUint64(&res.Failed, 1)
		}
	}

	start := time.Now()
	end := start.Add(cfg.Horizon)
	var wg sync.WaitGroup
	soakDone := make(chan struct{})

	// Stream drivers: a steady frame cadence per stream.
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			frame := soakFrame()
			for time.Now().Before(end) && ctx.Err() == nil {
				doOne(stream, frame)
				select {
				case <-time.After(cfg.FrameInterval):
				case <-ctx.Done():
					return
				}
			}
		}(s)
	}

	// Fault applier: one goroutine per event — sleep to the offset, apply,
	// hold for Dur, clear. Clears use Reset on the worker's fault set;
	// overlapping events on one worker may clear each other early, which
	// only makes the schedule gentler, never stuck.
	for _, ev := range sched {
		wg.Add(1)
		go func(ev Event) {
			defer wg.Done()
			select {
			case <-time.After(ev.At):
			case <-ctx.Done():
				return
			}
			f := faultsFor[workerOf(ev.Stream)]
			logf("chaos: %s", ev)
			switch ev.Kind {
			case SoftStall:
				f.StallLevel(ev.Level, 10*cfg.Deadline)
			case HardStall:
				f.HardStallLevel(ev.Level, ev.Dur)
			case Fail:
				f.FailLevel(ev.Level, fmt.Errorf("chaos: injected failure (stream %d)", ev.Stream))
			case Panic:
				f.PanicLevel(ev.Level, fmt.Sprintf("chaos: injected panic (stream %d)", ev.Stream))
			case Corrupt:
				doOne(ev.Stream, poisonFrame())
				return
			case Burst:
				// A volley of concurrent extras on top of the stream's
				// steady cadence: overload must shed or degrade.
				var bwg sync.WaitGroup
				for i := 0; i < 8; i++ {
					bwg.Add(1)
					go func() { defer bwg.Done(); doOne(ev.Stream, soakFrame()) }()
				}
				bwg.Wait()
				return
			}
			select {
			case <-time.After(ev.Dur):
			case <-ctx.Done():
			}
			f.Reset()
		}(ev)
	}

	// Invariant poller: conservation and monotonicity at every tick, while
	// the faults are actually firing — not just at the quiet end. It joins
	// its own WaitGroup (it outlives the drivers: it keeps polling through
	// the recovery phase, until soakDone).
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		prev := sup.Stats()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-soakDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
				cur := sup.Stats()
				viol.add(CheckSupervisor(cur)...)
				viol.add(CheckMonotone(prev, cur)...)
				prev = cur
			}
		}
	}()

	// Let the schedule and drivers run out, then silence all faults.
	streamsAndFaultsDone := make(chan struct{})
	go func() { wg.Wait(); close(streamsAndFaultsDone) }()
	select {
	case <-streamsAndFaultsDone:
	case <-ctx.Done():
		close(soakDone)
		sup.Close()
		return res, fmt.Errorf("chaos: soak cancelled: %w", ctx.Err())
	}
	for _, f := range faultsFor {
		f.Reset()
	}

	// Recovery SLO: the stack must report ready and serve every stream
	// within the bound, now that nothing is injecting faults.
	logf("chaos: schedule done after %s; verifying recovery", time.Since(start).Round(time.Millisecond))
	recoverBy := time.Now().Add(cfg.RecoverySLO)
	recovered := func() bool {
		if ready, _ := srv.Ready(); !ready {
			return false
		}
		for s := 0; s < cfg.Streams; s++ {
			rctx, cancel := context.WithTimeout(ctx, reqTimeout)
			_, err := sup.Do(rctx, s, soakFrame())
			cancel()
			if err != nil {
				return false
			}
		}
		return true
	}
	for !recovered() {
		if ctx.Err() != nil {
			close(soakDone)
			sup.Close()
			return res, fmt.Errorf("chaos: soak cancelled: %w", ctx.Err())
		}
		if time.Now().After(recoverBy) {
			ready, reason := srv.Ready()
			viol.add(fmt.Sprintf("recovery SLO missed: not serving %s after faults cleared (ready=%v %s)",
				cfg.RecoverySLO, ready, reason))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(soakDone)
	pollWg.Wait() // the poller must be gone before the settling count below

	st := sup.Stats()
	res.Restarts = st.Restarts
	res.Wedges = st.Wedges
	res.FramesHung = st.Aggregate.FramesHung
	res.ROIScans = st.Aggregate.ROIScans
	res.ROIFullScans = st.Aggregate.ROIFullScans
	viol.add(CheckSupervisor(st)...)

	// Teardown and settle: the abandoned-scanner ledger must drain (every
	// hard-stalled goroutine unsticks and checks out) and the raw
	// goroutine count must return to baseline — any residue is a leak the
	// watchdog did not account for.
	sup.Close()
	settleBy := time.Now().Add(cfg.RecoverySLO + 3*cfg.HangTimeout)
	for metrics.AbandonedScanners.Load() != 0 {
		if time.Now().After(settleBy) {
			viol.add(fmt.Sprintf("abandoned-scanner ledger did not drain: %d still booked",
				metrics.AbandonedScanners.Load()))
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(settleBy) {
			viol.add(fmt.Sprintf("goroutines did not settle: %d running, baseline %d",
				runtime.NumGoroutine(), baseline))
			break
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}

	res.Violations = viol.snapshot()
	logf("chaos: %d frames (%d ok, %d rejected, %d failed), %d restarts, %d wedges, %d hung, %d violations",
		res.Frames, res.OK, res.Rejected, res.Failed, res.Restarts, res.Wedges, res.FramesHung, len(res.Violations))
	return res, nil
}
