package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// FaultKind enumerates the fault classes a soak schedule can inject.
type FaultKind int

const (
	// SoftStall slows a pyramid level while observing the frame context:
	// the per-frame deadline cuts it short and the degradation ladder
	// engages. Dur is how long the fault stays applied.
	SoftStall FaultKind = iota
	// HardStall makes a pyramid level sleep while IGNORING the frame
	// context — the hang only the rt liveness watchdog can detect. The
	// sleep length is chosen to exceed the watchdog bound but stay finite,
	// so the abandoned goroutine unsticks before the soak settles.
	HardStall
	// Fail makes a pyramid level return an error: a poisoned stream that
	// trips the consecutive-error restart budget.
	Fail
	// Panic makes a pyramid level panic: the crash the supervisor
	// rebuilds the worker from.
	Panic
	// Corrupt submits one poison frame (pixel buffer shorter than the
	// header claims) that panics inside the feature extractor.
	Corrupt
	// Burst fires a rapid volley of extra frames at one stream —
	// overload that must shed or degrade, never crash.
	Burst

	// ReplicaKill takes a whole replica down: every request it sees fails
	// fast with 503 until the event clears. Only generated for gateway
	// topologies (ScheduleConfig.Replicas > 1); the gateway must eject
	// the replica and rejoin it after it returns.
	ReplicaKill
	// ReplicaStall makes a whole replica hang: requests block until
	// cancelled. The hang only the gateway's hedging can route around.
	ReplicaStall

	// numFaultKinds spans the single-stack kinds; schedules for Replicas
	// <= 1 draw only from these, which keeps every pre-gateway seed's
	// schedule byte-identical. numAllFaultKinds adds the replica-level
	// kinds for gateway topologies.
	numFaultKinds    = int(Burst) + 1
	numAllFaultKinds = int(ReplicaStall) + 1
)

// String names the kind for logs and replay output.
func (k FaultKind) String() string {
	switch k {
	case SoftStall:
		return "soft-stall"
	case HardStall:
		return "hard-stall"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	case Burst:
		return "burst"
	case ReplicaKill:
		return "replica-kill"
	case ReplicaStall:
		return "replica-stall"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Event is one scheduled fault: at offset At from soak start, apply Kind
// against Stream (level faults land on the stream's worker at pyramid
// level Level) and keep it applied for Dur before clearing. In gateway
// topologies Replica is the replica the fault lands on — the whole
// replica for ReplicaKill/ReplicaStall, the replica whose worker takes
// the level fault otherwise.
type Event struct {
	At      time.Duration `json:"at_ns"`
	Stream  int           `json:"stream"`
	Level   int           `json:"level"`
	Replica int           `json:"replica"`
	Kind    FaultKind     `json:"kind"`
	Dur     time.Duration `json:"dur_ns"`
}

func (e Event) String() string {
	switch e.Kind {
	case ReplicaKill, ReplicaStall:
		return fmt.Sprintf("@%s replica %d %s for %s",
			e.At.Round(time.Millisecond), e.Replica, e.Kind, e.Dur.Round(time.Millisecond))
	}
	return fmt.Sprintf("@%s stream %d level %d %s for %s",
		e.At.Round(time.Millisecond), e.Stream, e.Level, e.Kind, e.Dur.Round(time.Millisecond))
}

// Schedule is a time-ordered fault plan.
type Schedule []Event

// ScheduleConfig bounds the generated schedule.
type ScheduleConfig struct {
	// Events is the number of faults to schedule. Default 8.
	Events int
	// Horizon is the soak window events are spread over; events land in
	// [0, 0.75*Horizon) so the tail of the soak observes recovery.
	// Default 2s.
	Horizon time.Duration
	// Streams is the stream-ID space faults target. Default 1.
	Streams int
	// Levels is the pyramid-level space level faults target. Default 3
	// (the 128x256 synthetic frame's pyramid depth at step 1.3).
	Levels int
	// HangTimeout is the watchdog bound hard stalls must exceed to
	// guarantee a wedge. Hard-stall sleeps are drawn from
	// [2*HangTimeout, 3*HangTimeout), long enough to trip the watchdog
	// with margin, short enough that abandoned goroutines unstick before
	// settling checks. Default 150ms.
	HangTimeout time.Duration
	// Replicas is the replica space faults target. At most 1 (the
	// default), the schedule is the classic single-stack plan and is
	// byte-identical to what every earlier seed produced. Above 1, each
	// event additionally draws a target replica and the kind space widens
	// to include ReplicaKill and ReplicaStall.
	Replicas int
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Events <= 0 {
		c.Events = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.HangTimeout <= 0 {
		c.HangTimeout = 150 * time.Millisecond
	}
	return c
}

// Generate builds a reproducible fault schedule: the same seed and config
// always yield the identical event list, so any soak failure replays
// exactly (cmd/pdsoak -seed N). Events are time-ordered.
func Generate(seed int64, cfg ScheduleConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	window := cfg.Horizon * 3 / 4
	sched := make(Schedule, 0, cfg.Events)
	// Replica-aware schedules widen the kind space and draw one extra
	// value per event. Both changes are gated on Replicas > 1 so the rng
	// consumption — and therefore every existing seed's schedule — stays
	// byte-identical for single-stack configs.
	kinds := numFaultKinds
	if cfg.Replicas > 1 {
		kinds = numAllFaultKinds
	}
	for i := 0; i < cfg.Events; i++ {
		ev := Event{
			At:     time.Duration(rng.Int63n(int64(window))),
			Stream: rng.Intn(cfg.Streams),
			Level:  rng.Intn(cfg.Levels),
			Kind:   FaultKind(rng.Intn(kinds)),
		}
		if cfg.Replicas > 1 {
			ev.Replica = rng.Intn(cfg.Replicas)
		}
		switch ev.Kind {
		case HardStall:
			// Past the watchdog with margin, but finite: the abandoned
			// scanner must unstick before the settling check.
			ev.Dur = 2*cfg.HangTimeout + time.Duration(rng.Int63n(int64(cfg.HangTimeout)))
		case SoftStall, Fail, Panic:
			// Active window the fault stays applied before clearing.
			ev.Dur = 50*time.Millisecond + time.Duration(rng.Int63n(int64(150*time.Millisecond)))
		case Corrupt, Burst:
			// Instantaneous, driver-side events; Dur sizes the burst.
			ev.Dur = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		case ReplicaKill, ReplicaStall:
			// Long enough that the gateway observes the outage and ejects
			// the replica, short enough that it returns and rejoins well
			// inside the soak tail.
			ev.Dur = 150*time.Millisecond + time.Duration(rng.Int63n(int64(250*time.Millisecond)))
		}
		sched = append(sched, ev)
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}
