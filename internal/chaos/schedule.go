package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// FaultKind enumerates the fault classes a soak schedule can inject.
type FaultKind int

const (
	// SoftStall slows a pyramid level while observing the frame context:
	// the per-frame deadline cuts it short and the degradation ladder
	// engages. Dur is how long the fault stays applied.
	SoftStall FaultKind = iota
	// HardStall makes a pyramid level sleep while IGNORING the frame
	// context — the hang only the rt liveness watchdog can detect. The
	// sleep length is chosen to exceed the watchdog bound but stay finite,
	// so the abandoned goroutine unsticks before the soak settles.
	HardStall
	// Fail makes a pyramid level return an error: a poisoned stream that
	// trips the consecutive-error restart budget.
	Fail
	// Panic makes a pyramid level panic: the crash the supervisor
	// rebuilds the worker from.
	Panic
	// Corrupt submits one poison frame (pixel buffer shorter than the
	// header claims) that panics inside the feature extractor.
	Corrupt
	// Burst fires a rapid volley of extra frames at one stream —
	// overload that must shed or degrade, never crash.
	Burst

	numFaultKinds = int(Burst) + 1
)

// String names the kind for logs and replay output.
func (k FaultKind) String() string {
	switch k {
	case SoftStall:
		return "soft-stall"
	case HardStall:
		return "hard-stall"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	case Burst:
		return "burst"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Event is one scheduled fault: at offset At from soak start, apply Kind
// against Stream (level faults land on the stream's worker at pyramid
// level Level) and keep it applied for Dur before clearing.
type Event struct {
	At     time.Duration `json:"at_ns"`
	Stream int           `json:"stream"`
	Level  int           `json:"level"`
	Kind   FaultKind     `json:"kind"`
	Dur    time.Duration `json:"dur_ns"`
}

func (e Event) String() string {
	return fmt.Sprintf("@%s stream %d level %d %s for %s",
		e.At.Round(time.Millisecond), e.Stream, e.Level, e.Kind, e.Dur.Round(time.Millisecond))
}

// Schedule is a time-ordered fault plan.
type Schedule []Event

// ScheduleConfig bounds the generated schedule.
type ScheduleConfig struct {
	// Events is the number of faults to schedule. Default 8.
	Events int
	// Horizon is the soak window events are spread over; events land in
	// [0, 0.75*Horizon) so the tail of the soak observes recovery.
	// Default 2s.
	Horizon time.Duration
	// Streams is the stream-ID space faults target. Default 1.
	Streams int
	// Levels is the pyramid-level space level faults target. Default 3
	// (the 128x256 synthetic frame's pyramid depth at step 1.3).
	Levels int
	// HangTimeout is the watchdog bound hard stalls must exceed to
	// guarantee a wedge. Hard-stall sleeps are drawn from
	// [2*HangTimeout, 3*HangTimeout), long enough to trip the watchdog
	// with margin, short enough that abandoned goroutines unstick before
	// settling checks. Default 150ms.
	HangTimeout time.Duration
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Events <= 0 {
		c.Events = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = 2 * time.Second
	}
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.HangTimeout <= 0 {
		c.HangTimeout = 150 * time.Millisecond
	}
	return c
}

// Generate builds a reproducible fault schedule: the same seed and config
// always yield the identical event list, so any soak failure replays
// exactly (cmd/pdsoak -seed N). Events are time-ordered.
func Generate(seed int64, cfg ScheduleConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	window := cfg.Horizon * 3 / 4
	sched := make(Schedule, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := Event{
			At:     time.Duration(rng.Int63n(int64(window))),
			Stream: rng.Intn(cfg.Streams),
			Level:  rng.Intn(cfg.Levels),
			Kind:   FaultKind(rng.Intn(numFaultKinds)),
		}
		switch ev.Kind {
		case HardStall:
			// Past the watchdog with margin, but finite: the abandoned
			// scanner must unstick before the settling check.
			ev.Dur = 2*cfg.HangTimeout + time.Duration(rng.Int63n(int64(cfg.HangTimeout)))
		case SoftStall, Fail, Panic:
			// Active window the fault stays applied before clearing.
			ev.Dur = 50*time.Millisecond + time.Duration(rng.Int63n(int64(150*time.Millisecond)))
		case Corrupt, Burst:
			// Instantaneous, driver-side events; Dur sizes the burst.
			ev.Dur = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		}
		sched = append(sched, ev)
	}
	sort.Slice(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}
