package svm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
)

// gauss2D draws an n-sample 2-class Gaussian problem with the given class
// separation along the first axis.
func gauss2D(n int, sep float64, seed int64) (x [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		label := 1
		mean := sep / 2
		if i%2 == 1 {
			label = -1
			mean = -sep / 2
		}
		x = append(x, []float64{mean + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, label)
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	// Widely separated classes must be classified perfectly.
	x, y := gauss2D(200, 10, 1)
	for _, loss := range []Loss{L1, L2} {
		cfg := DefaultTrainConfig()
		cfg.Loss = loss
		res, err := Train(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if acc := Accuracy(res.Model, x, y); acc != 1 {
			t.Errorf("%v loss: training accuracy %v on separable data, want 1", loss, acc)
		}
		if !res.Converged {
			t.Errorf("%v loss did not converge", loss)
		}
		// The separating direction must be along the first axis.
		if math.Abs(res.Model.W[0]) < math.Abs(res.Model.W[1])*3 {
			t.Errorf("%v loss: weights %v not aligned with separation", loss, res.Model.W)
		}
	}
}

func TestTrainOverlapping(t *testing.T) {
	// Overlapping classes: accuracy should land near the Bayes rate
	// (~84% for separation 2 with unit-variance Gaussians).
	x, y := gauss2D(2000, 2, 2)
	res, err := Train(x, y, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(res.Model, x, y)
	if acc < 0.78 || acc > 0.90 {
		t.Errorf("accuracy %v, want ~0.84", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := gauss2D(300, 3, 3)
	cfg := DefaultTrainConfig()
	r1, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Model.W {
		if r1.Model.W[i] != r2.Model.W[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
	if r1.Model.B != r2.Model.B {
		t.Fatal("bias differs between identical runs")
	}
}

func TestTrainBiasShiftedData(t *testing.T) {
	// Both class means on the same side of the origin: only a biased
	// hyperplane separates them.
	rng := rand.New(rand.NewSource(4))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		mean := 6.0
		label := 1
		if i%2 == 1 {
			mean = 3.0
			label = -1
		}
		x = append(x, []float64{mean + rng.NormFloat64()*0.3})
		y = append(y, label)
	}
	cfg := DefaultTrainConfig()
	cfg.BiasScale = 10 // large bias scale so the bias can reach -4.5ish
	res, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(res.Model, x, y); acc < 0.99 {
		t.Errorf("biased problem accuracy %v, want ~1 (bias %v)", acc, res.Model.B)
	}
	if res.Model.B >= 0 {
		t.Errorf("bias should be negative, got %v", res.Model.B)
	}
	// Without bias the same problem is much harder.
	cfg.BiasScale = 0
	res2, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(res2.Model, x, y); acc > 0.9 {
		t.Errorf("bias-free accuracy %v unexpectedly high", acc)
	}
	if res2.Model.B != 0 {
		t.Errorf("bias-free training produced bias %v", res2.Model.B)
	}
}

func TestTrainErrors(t *testing.T) {
	good := [][]float64{{1}, {-1}}
	labels := []int{1, -1}
	cases := []struct {
		name string
		x    [][]float64
		y    []int
		cfg  TrainConfig
	}{
		{"empty", nil, nil, DefaultTrainConfig()},
		{"label mismatch", good, []int{1}, DefaultTrainConfig()},
		{"bad label", good, []int{1, 2}, DefaultTrainConfig()},
		{"one class", good, []int{1, 1}, DefaultTrainConfig()},
		{"ragged", [][]float64{{1}, {1, 2}}, labels, DefaultTrainConfig()},
		{"zero dim", [][]float64{{}, {}}, labels, DefaultTrainConfig()},
		{"bad C", good, labels, TrainConfig{C: -1}},
	}
	for _, c := range cases {
		if _, err := Train(c.x, c.y, c.cfg); err == nil {
			t.Errorf("%s: Train succeeded, want error", c.name)
		}
	}
}

func TestObjectiveDecreasesWithMoreEpochs(t *testing.T) {
	x, y := gauss2D(500, 1.5, 5)
	cfg := DefaultTrainConfig()
	cfg.Tol = 1e-9 // force epoch-capped runs
	cfg.MaxEpochs = 1
	r1, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxEpochs = 50
	r50, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r50.Objective > r1.Objective+1e-9 {
		t.Errorf("objective rose with epochs: %v -> %v", r1.Objective, r50.Objective)
	}
}

func TestScorePanicsOnDimensionMismatch(t *testing.T) {
	m := &Model{W: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("Score with wrong dimension should panic")
		}
	}()
	m.Score([]float64{1})
}

func TestPredictSign(t *testing.T) {
	m := &Model{W: []float64{1}, B: -0.5}
	if m.Predict([]float64{1}) != 1 {
		t.Error("positive score should predict +1")
	}
	if m.Predict([]float64{0}) != -1 {
		t.Error("negative score should predict -1")
	}
	// Paper's convention: y(x) exactly 0 is not positive.
	if m.Predict([]float64{0.5}) != -1 {
		t.Error("zero score should predict -1")
	}
}

func TestModelIORoundTrip(t *testing.T) {
	x, y := gauss2D(100, 4, 6)
	res, err := Train(x, y, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != res.Model.B || len(got.W) != len(res.Model.W) {
		t.Fatal("header mismatch after round trip")
	}
	for i := range got.W {
		if got.W[i] != res.Model.W[i] {
			t.Fatal("weights not bit-exact after round trip")
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong magic\n",
		"pdsvm 1\ndim -3\n",
		"pdsvm 1\ndim 2\nbias x\n",
		"pdsvm 1\ndim 2\nbias 0\nw\n1.0\n", // truncated weights
		"pdsvm 1\ndim 2\nbias 0\nnotw\n1\n2\n",
	}
	for _, src := range cases {
		if _, err := Read(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	m := &Model{W: []float64{0.5, -0.25, 0.125}, B: -1.5}
	q, err := Quantize(m, fixed.Q(3, 12))
	if err != nil {
		t.Fatal(err)
	}
	d := q.Dequantize()
	for i := range m.W {
		if math.Abs(d.W[i]-m.W[i]) > 1.0/4096 {
			t.Errorf("weight %d quantization error too large: %v vs %v", i, d.W[i], m.W[i])
		}
	}
	if math.Abs(d.B-m.B) > 1.0/4096 {
		t.Errorf("bias error: %v vs %v", d.B, m.B)
	}
	if _, err := Quantize(m, fixed.Format{Width: 1}); err == nil {
		t.Error("Quantize with invalid format should error")
	}
}

// TestQuantizedAccuracyClose verifies the HW premise: 16-bit fixed-point
// weights classify (almost) identically to the float model.
func TestQuantizedAccuracyClose(t *testing.T) {
	x, y := gauss2D(1000, 2, 7)
	res, err := Train(x, y, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(res.Model, fixed.Q(3, 12))
	if err != nil {
		t.Fatal(err)
	}
	accF := Accuracy(res.Model, x, y)
	accQ := Accuracy(q.Dequantize(), x, y)
	if math.Abs(accF-accQ) > 0.01 {
		t.Errorf("quantization changed accuracy %v -> %v", accF, accQ)
	}
}

// Property: the trained decision boundary is invariant to permuting the
// training set (given identical seeds the permutation differs, but accuracy
// must stay equivalent on separable data).
func TestTrainPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		x, y := gauss2D(60, 8, seed)
		r, err := Train(x, y, DefaultTrainConfig())
		if err != nil {
			return false
		}
		return Accuracy(r.Model, x, y) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := &Model{W: []float64{1, 2}, B: 3}
	c := m.Clone()
	c.W[0] = 9
	c.B = 9
	if m.W[0] != 1 || m.B != 3 {
		t.Error("Clone shares state")
	}
}

func TestLossString(t *testing.T) {
	if L1.String() != "l1" || L2.String() != "l2" || Loss(7).String() == "" {
		t.Error("Loss strings wrong")
	}
}

// TestHigherCFitsHarder: increasing C reduces training error on
// non-separable data (less regularization).
func TestHigherCFitsHarder(t *testing.T) {
	x, y := gauss2D(400, 1, 8)
	lo := DefaultTrainConfig()
	lo.C = 1e-4
	hi := DefaultTrainConfig()
	hi.C = 10
	hi.Tol = 1e-3
	rl, err := Train(x, y, lo)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Train(x, y, hi)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny C collapses towards w=0 and must not beat a well-fit model.
	if Accuracy(rl.Model, x, y) > Accuracy(rh.Model, x, y)+0.02 {
		t.Errorf("C=1e-4 accuracy %v beats C=10 accuracy %v",
			Accuracy(rl.Model, x, y), Accuracy(rh.Model, x, y))
	}
}

// TestClassWeightsShiftOperatingPoint: up-weighting the positive class on
// imbalanced data must raise recall (at some precision cost), mirroring
// LibLinear's -wi behaviour.
func TestClassWeightsShiftOperatingPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	var x [][]float64
	var y []int
	// 1:9 imbalance with overlap.
	for i := 0; i < 1000; i++ {
		if i%10 == 0 {
			x = append(x, []float64{1.0 + rng.NormFloat64()})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-1.0 + rng.NormFloat64()})
			y = append(y, -1)
		}
	}
	recall := func(m *Model) float64 {
		tp, fn := 0, 0
		for i := range x {
			if y[i] != 1 {
				continue
			}
			if m.Predict(x[i]) == 1 {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	plain := DefaultTrainConfig()
	plain.Tol = 1e-3
	rp, err := Train(x, y, plain)
	if err != nil {
		t.Fatal(err)
	}
	weighted := plain
	weighted.PosWeight = 9 // balance the classes
	rw, err := Train(x, y, weighted)
	if err != nil {
		t.Fatal(err)
	}
	if recall(rw.Model) <= recall(rp.Model) {
		t.Errorf("PosWeight=9 recall %.3f not above unweighted %.3f",
			recall(rw.Model), recall(rp.Model))
	}
}

func TestClassWeightsRejectNegative(t *testing.T) {
	x := [][]float64{{1}, {-1}}
	y := []int{1, -1}
	cfg := DefaultTrainConfig()
	cfg.PosWeight = -1
	if _, err := Train(x, y, cfg); err == nil {
		t.Error("negative class weight should error")
	}
}

// TestClassWeightsUnityMatchesUnweighted: weights of exactly 1 must not
// change the solution.
func TestClassWeightsUnityMatchesUnweighted(t *testing.T) {
	x, y := gauss2D(200, 3, 41)
	a, err := Train(x, y, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.PosWeight, cfg.NegWeight = 1, 1
	b, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.W {
		if a.Model.W[i] != b.Model.W[i] {
			t.Fatal("unity weights changed the solution")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.model"
	m := &Model{W: []float64{1.5, -2.25, 1e-17}, B: 0.125}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.W {
		if got.W[i] != m.W[i] {
			t.Fatal("weights differ after file round trip")
		}
	}
	if got.B != m.B {
		t.Fatal("bias differs")
	}
	if _, err := Load(dir + "/missing.model"); err == nil {
		t.Error("missing file should error")
	}
}
