// Package svm implements the linear support vector machine used by the
// paper: training via the dual coordinate descent method of Hsieh et al.
// (2008) — the algorithm behind LibLinear, which the authors used — and
// classification as the plain dot product y(x) = w.x + b that the MACBAR
// hardware evaluates (Equation 4 of the paper).
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fixed"
)

// Loss selects the hinge-loss variant to optimize.
type Loss int

const (
	// L1 is the standard hinge loss max(0, 1-y f(x)) (LibLinear -s 3).
	L1 Loss = iota
	// L2 is the squared hinge loss max(0, 1-y f(x))^2 (LibLinear -s 1).
	L2
)

// String implements fmt.Stringer.
func (l Loss) String() string {
	if l == L1 {
		return "l1"
	}
	if l == L2 {
		return "l2"
	}
	return fmt.Sprintf("Loss(%d)", int(l))
}

// TrainConfig holds the solver parameters. The zero value is not valid; use
// DefaultTrainConfig.
type TrainConfig struct {
	C         float64 // regularization/penalty parameter (> 0)
	Loss      Loss    // hinge loss variant
	Tol       float64 // stopping tolerance on projected-gradient violation
	MaxEpochs int     // hard cap on passes over the data
	BiasScale float64 // scale of the augmented bias feature; 0 trains without bias
	Seed      int64   // permutation seed (training is deterministic given Seed)
	// PosWeight and NegWeight multiply C for the positive and negative
	// class respectively (LibLinear's -wi option); 0 means 1. Useful under
	// the pedestrian protocol's class imbalance (1126 vs 4530).
	PosWeight, NegWeight float64
}

// DefaultTrainConfig mirrors LibLinear's defaults (C=1, L2 loss, eps=0.1)
// with a unit bias term.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{C: 1, Loss: L2, Tol: 0.1, MaxEpochs: 1000, BiasScale: 1, Seed: 1}
}

// Model is a trained linear classifier: Score(x) = W.x + B.
type Model struct {
	W []float64 // weight vector, one element per feature
	B float64   // bias
	// Calib, when non-nil, carries a soft-cascade calibration fitted by
	// pdtrain (per-stage early-rejection floors; see Cascade). It rides
	// along through model I/O and is ignored by dense scoring.
	Calib *CascadeCalib
}

// Score returns the decision value w.x + b. It panics if the feature vector
// length does not match the model.
func (m *Model) Score(x []float64) float64 {
	if len(x) != len(m.W) {
		panic(fmt.Sprintf("svm: feature length %d != model length %d", len(x), len(m.W)))
	}
	return dot(m.W, x) + m.B
}

// Predict returns +1 if Score(x) > 0 and -1 otherwise (Equations 5-6).
func (m *Model) Predict(x []float64) int {
	if m.Score(x) > 0 {
		return 1
	}
	return -1
}

// Clone returns a deep copy of m.
func (m *Model) Clone() *Model {
	w := make([]float64, len(m.W))
	copy(w, m.W)
	return &Model{W: w, B: m.B, Calib: m.Calib.Clone()}
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// TrainResult reports solver diagnostics alongside the model.
type TrainResult struct {
	Model     *Model
	Epochs    int     // data passes performed
	Converged bool    // stopping tolerance reached before MaxEpochs
	Objective float64 // primal objective value at the solution (Equation 3 scaled by C)
}

// Train fits a linear SVM to the dense feature matrix x (one row per
// example) with labels y in {-1, +1}, using dual coordinate descent.
func Train(x [][]float64, y []int, cfg TrainConfig) (*TrainResult, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d examples but %d labels", n, len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("svm: zero-dimensional features")
	}
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("svm: example %d has %d features, want %d", i, len(xi), dim)
		}
	}
	hasPos, hasNeg := false, false
	for i, yi := range y {
		switch yi {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return nil, fmt.Errorf("svm: label %d of example %d not in {-1,+1}", yi, i)
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("svm: training set needs both classes")
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C = %g must be positive", cfg.C)
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 1000
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 0.1
	}

	// Per-class effective C (LibLinear's -wi): Ci = C * weight(y_i).
	pw, nw := cfg.PosWeight, cfg.NegWeight
	if pw == 0 {
		pw = 1
	}
	if nw == 0 {
		nw = 1
	}
	if pw < 0 || nw < 0 {
		return nil, fmt.Errorf("svm: negative class weight %g/%g", pw, nw)
	}
	cOf := func(yi int) float64 {
		if yi == 1 {
			return cfg.C * pw
		}
		return cfg.C * nw
	}

	// Dual coordinate descent (Hsieh et al., ICML 2008, Algorithm 1).
	// L1 loss: U_i = C_i, Dii = 0. L2 loss: U_i = +inf, Dii = 1/(2*C_i).
	if cfg.Loss != L1 && cfg.Loss != L2 {
		return nil, fmt.Errorf("svm: unknown loss %v", cfg.Loss)
	}
	upperOf := make([]float64, n)
	diiOf := make([]float64, n)
	for i := range y {
		if cfg.Loss == L1 {
			upperOf[i], diiOf[i] = cOf(y[i]), 0
		} else {
			upperOf[i], diiOf[i] = math.Inf(1), 1/(2*cOf(y[i]))
		}
	}

	// Optionally augment with a bias feature of constant value BiasScale.
	bias := cfg.BiasScale != 0
	wLen := dim
	if bias {
		wLen++
	}
	w := make([]float64, wLen)
	alpha := make([]float64, n)
	// Precompute squared norms (including the bias feature).
	qd := make([]float64, n)
	for i, xi := range x {
		q := diiOf[i]
		for _, v := range xi {
			q += v * v
		}
		if bias {
			q += cfg.BiasScale * cfg.BiasScale
		}
		qd[i] = q
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	epochs := 0
	converged := false
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		epochs = epoch + 1
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		maxViolation := 0.0
		for _, i := range perm {
			xi := x[i]
			yi := float64(y[i])
			upper := upperOf[i]
			// G = y_i * (w.x_i) - 1 + Dii * alpha_i
			g := dot(w[:dim], xi)
			if bias {
				g += w[dim] * cfg.BiasScale
			}
			g = yi*g - 1 + diiOf[i]*alpha[i]

			// Projected gradient.
			var pg float64
			switch {
			case alpha[i] == 0:
				pg = math.Min(g, 0)
			case alpha[i] == upper:
				pg = math.Max(g, 0)
			default:
				pg = g
			}
			if v := math.Abs(pg); v > maxViolation {
				maxViolation = v
			}
			if pg == 0 || qd[i] == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qd[i]
			if na < 0 {
				na = 0
			} else if na > upper {
				na = upper
			}
			if na == old {
				continue
			}
			alpha[i] = na
			step := (na - old) * yi
			for j, v := range xi {
				w[j] += step * v
			}
			if bias {
				w[dim] += step * cfg.BiasScale
			}
		}
		if maxViolation < cfg.Tol {
			converged = true
			break
		}
	}

	model := &Model{W: w[:dim]}
	if bias {
		model.B = w[dim] * cfg.BiasScale
	}
	// Keep W independent of the augmented slice.
	model.W = append([]float64(nil), w[:dim]...)

	return &TrainResult{
		Model:     model,
		Epochs:    epochs,
		Converged: converged,
		Objective: primalObjective(model, x, y, cfg),
	}, nil
}

// primalObjective evaluates 0.5||w||^2 + C * sum(loss_i), the objective of
// Equation 3 with lambda folded into C.
func primalObjective(m *Model, x [][]float64, y []int, cfg TrainConfig) float64 {
	obj := 0.5 * dot(m.W, m.W)
	if cfg.BiasScale != 0 {
		obj += 0.5 * (m.B / cfg.BiasScale) * (m.B / cfg.BiasScale)
	}
	pw, nw := cfg.PosWeight, cfg.NegWeight
	if pw == 0 {
		pw = 1
	}
	if nw == 0 {
		nw = 1
	}
	for i, xi := range x {
		margin := 1 - float64(y[i])*m.Score(xi)
		if margin <= 0 {
			continue
		}
		ci := cfg.C * nw
		if y[i] == 1 {
			ci = cfg.C * pw
		}
		if cfg.Loss == L2 {
			obj += ci * margin * margin
		} else {
			obj += ci * margin
		}
	}
	return obj
}

// Accuracy returns the fraction of examples classified correctly.
func Accuracy(m *Model, x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i, xi := range x {
		if m.Predict(xi) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// QuantizedModel is a model converted to the fixed-point representation the
// hardware stores in its model memory.
type QuantizedModel struct {
	W      []int64      // quantized weights
	B      int64        // quantized bias
	Fmt    fixed.Format // storage format of weights and bias
	Source *Model       // the float model this was derived from
}

// Quantize converts m into the given fixed-point format.
func Quantize(m *Model, f fixed.Format) (*QuantizedModel, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	q := &QuantizedModel{
		W:      make([]int64, len(m.W)),
		B:      f.FromFloat(m.B),
		Fmt:    f,
		Source: m,
	}
	for i, v := range m.W {
		q.W[i] = f.FromFloat(v)
	}
	return q, nil
}

// Dequantize returns the float model the quantized weights actually
// represent (useful for measuring quantization-induced accuracy loss).
func (q *QuantizedModel) Dequantize() *Model {
	m := &Model{W: make([]float64, len(q.W)), B: q.Fmt.ToFloat(q.B)}
	for i, v := range q.W {
		m.W[i] = q.Fmt.ToFloat(v)
	}
	return m
}
