package svm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The model file format is a small line-oriented text format in the spirit
// of LibLinear's model files:
//
//	pdsvm 1
//	dim <n>
//	bias <b>
//	w
//	<w0>
//	<w1>
//	...
//
// Weights use %.17g so the round trip is exact.
//
// A model carrying a soft-cascade calibration (pdtrain -cascade-calibrate)
// appends one optional trailing section — older readers that stop after the
// weights still load the plain model:
//
//	cascade <stages>
//	margin <m>
//	t
//	<t0>
//	...
//
// with exactly <stages> per-stage floors in stage-rank order. The stage
// schedule is not stored: it is recomputed deterministically from the
// weights and the window geometry (NewCascade).

const modelMagic = "pdsvm 1"

// Write serializes m to w.
func (m *Model) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, modelMagic)
	fmt.Fprintf(bw, "dim %d\n", len(m.W))
	fmt.Fprintf(bw, "bias %.17g\n", m.B)
	fmt.Fprintln(bw, "w")
	for _, v := range m.W {
		fmt.Fprintf(bw, "%.17g\n", v)
	}
	if m.Calib != nil {
		if err := m.Calib.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(bw, "cascade %d\n", m.Calib.Stages)
		fmt.Fprintf(bw, "margin %.17g\n", m.Calib.Margin)
		fmt.Fprintln(bw, "t")
		for _, v := range m.Calib.Thresholds {
			fmt.Fprintf(bw, "%.17g\n", v)
		}
	}
	return bw.Flush()
}

// Save writes m to the named file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read deserializes a model written by Write.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return strings.TrimSpace(sc.Text()), nil
	}
	line, err := next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading magic: %w", err)
	}
	if line != modelMagic {
		return nil, fmt.Errorf("svm: bad magic %q", line)
	}
	line, err = next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading dim: %w", err)
	}
	var dim int
	if _, err := fmt.Sscanf(line, "dim %d", &dim); err != nil {
		return nil, fmt.Errorf("svm: parsing %q: %w", line, err)
	}
	if dim <= 0 || dim > 1<<24 {
		return nil, fmt.Errorf("svm: implausible dimension %d", dim)
	}
	line, err = next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading bias: %w", err)
	}
	var biasStr string
	if _, err := fmt.Sscanf(line, "bias %s", &biasStr); err != nil {
		return nil, fmt.Errorf("svm: parsing %q: %w", line, err)
	}
	bias, err := strconv.ParseFloat(biasStr, 64)
	if err != nil {
		return nil, fmt.Errorf("svm: parsing bias %q: %w", biasStr, err)
	}
	// ParseFloat accepts "NaN" and "Inf", but a non-finite coefficient
	// poisons every window score it touches (NaN compares false with any
	// threshold, so detections silently vanish). A model file carrying one
	// is corrupt; refuse it here rather than debug it downstream.
	if !isFinite(bias) {
		return nil, fmt.Errorf("svm: non-finite bias %q", biasStr)
	}
	line, err = next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading weight header: %w", err)
	}
	if line != "w" {
		return nil, fmt.Errorf("svm: expected weight header, got %q", line)
	}
	m := &Model{W: make([]float64, dim), B: bias}
	for i := 0; i < dim; i++ {
		line, err = next()
		if err != nil {
			return nil, fmt.Errorf("svm: reading weight %d: %w", i, err)
		}
		m.W[i], err = strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("svm: parsing weight %d %q: %w", i, line, err)
		}
		if !isFinite(m.W[i]) {
			return nil, fmt.Errorf("svm: non-finite weight %d %q", i, line)
		}
	}
	// Optional trailing cascade-calibration section. Anything else after
	// the weights is a malformed or truncated-then-resumed file; refuse it
	// instead of silently dropping data.
	for sc.Scan() {
		line = strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cal, err := readCascadeSection(line, next)
		if err != nil {
			return nil, err
		}
		m.Calib = cal
		// Nothing may follow the calibration.
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				return nil, fmt.Errorf("svm: trailing data after cascade section: %q", strings.TrimSpace(sc.Text()))
			}
		}
		break
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// readCascadeSection parses the optional trailing calibration block, whose
// header line has already been consumed into head.
func readCascadeSection(head string, next func() (string, error)) (*CascadeCalib, error) {
	var stages int
	if _, err := fmt.Sscanf(head, "cascade %d", &stages); err != nil {
		return nil, fmt.Errorf("svm: unexpected trailing data %q", head)
	}
	if stages < 1 || stages > maxCascadeRows {
		return nil, fmt.Errorf("svm: implausible cascade stage count %d", stages)
	}
	line, err := next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading cascade margin: %w", err)
	}
	var marginStr string
	if _, err := fmt.Sscanf(line, "margin %s", &marginStr); err != nil {
		return nil, fmt.Errorf("svm: parsing %q: %w", line, err)
	}
	margin, err := strconv.ParseFloat(marginStr, 64)
	if err != nil {
		return nil, fmt.Errorf("svm: parsing cascade margin %q: %w", marginStr, err)
	}
	line, err = next()
	if err != nil {
		return nil, fmt.Errorf("svm: reading cascade threshold header: %w", err)
	}
	if line != "t" {
		return nil, fmt.Errorf("svm: expected cascade threshold header, got %q", line)
	}
	cal := &CascadeCalib{Stages: stages, Margin: margin, Thresholds: make([]float64, stages)}
	for i := 0; i < stages; i++ {
		line, err = next()
		if err != nil {
			return nil, fmt.Errorf("svm: reading cascade threshold %d: %w", i, err)
		}
		cal.Thresholds[i], err = strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("svm: parsing cascade threshold %d %q: %w", i, line, err)
		}
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return cal, nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Load reads a model from the named file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
