package svm

import (
	"fmt"
	"math"
	"sort"
)

// Early-rejection cascade scoring.
//
// A window descriptor is a grid of wBlocksY x wBlocksX normalized HOG
// blocks. Every normalization scheme the detector supports (L2, L2-Hys,
// L1-sqrt) leaves each BlockLen-dimensional block vector with L2 norm
// strictly below 1, so for any block b of the unevaluated remainder of a
// window, Cauchy-Schwarz bounds its contribution to the score:
//
//	|w_b . x_b| <= ||w_b||_2 * ||x_b||_2 <= ||w_b||_2
//
// The cascade partitions the weight vector into its wBlocksY block-row
// stripes (each a contiguous strided row of the feature map, the unit the
// zero-copy scorer already consumes), orders them by descending
// discriminative mass, and precomputes suffix sums of the per-row bounds.
// After evaluating the first k stages the full score is bounded above by
//
//	partial_k + Suffix[k]     (Suffix[k] = sum of row bounds of stages k..)
//
// so a window whose bound cannot exceed the decision threshold is rejected
// without touching the remaining rows — and the rejection is *lossless*:
// the dense scan would have rejected it too. See hog.StagePlan for the
// kernel-side contract (including the float-safety slack) and DESIGN §5h
// for the exactness argument.
type Cascade struct {
	// Rows, Cols, BlockLen describe the window geometry the partition was
	// built for: Rows block rows of Cols blocks of BlockLen features.
	Rows, Cols, BlockLen int
	// Order is the stage schedule: stage k evaluates window block row
	// Order[k]. Rows are ranked by descending RowBound (ties break toward
	// the lower row index), so the bound tightens as fast as possible.
	Order []int32
	// RowBound[r] is the per-row Cauchy-Schwarz bound at unit block norm:
	// the sum of the L2 norms of row r's Cols block-weight sub-vectors.
	RowBound []float64
	// Suffix[k] is the sum of RowBound over stages k.. (stage order);
	// Suffix[Rows] is 0. Non-increasing in k.
	Suffix []float64
	// Slack is the absolute float-safety margin of exact-mode rejection:
	// it dominates every rounding difference between the staged partial
	// sums, the suffix tables, and the dense raster-order dot product, so
	// a rejection implies the dense score is below threshold too.
	Slack float64
	// Calib, when non-nil, holds the per-stage partial-score floors of
	// calibrated (soft-cascade) mode, stage-indexed: a window with
	// partial_k < Calib[k] is rejected. nil until Calibrate is run or a
	// model-file calibration is attached.
	Calib []float64
	// Margin is the safety margin the floors were fitted with.
	Margin float64
}

// maxCascadeRows bounds the stage count; real window geometries are tiny
// (16 rows for the paper's 64x128 window) and the serialized calibration
// shares the limit.
const maxCascadeRows = 4096

// NewCascade partitions m's weight vector for a wBlocksX x wBlocksY block
// window with blockLen features per block, returning the ranked stage
// tables. The model must be finite (NaN/Inf weights are rejected — a
// non-finite bound silently disables pruning or, worse, prunes wrongly)
// and its length must match the window geometry exactly.
func NewCascade(m *Model, wBlocksX, wBlocksY, blockLen int) (*Cascade, error) {
	if m == nil {
		return nil, fmt.Errorf("svm: cascade of nil model")
	}
	if wBlocksX < 1 || wBlocksY < 1 || blockLen < 1 {
		return nil, fmt.Errorf("svm: invalid cascade geometry %dx%d blocks x %d", wBlocksX, wBlocksY, blockLen)
	}
	if wBlocksY > maxCascadeRows {
		return nil, fmt.Errorf("svm: %d cascade stages exceed the %d cap", wBlocksY, maxCascadeRows)
	}
	if want := wBlocksX * wBlocksY * blockLen; len(m.W) != want {
		return nil, fmt.Errorf("svm: model has %d weights, cascade geometry needs %d", len(m.W), want)
	}
	if !isFinite(m.B) {
		return nil, fmt.Errorf("svm: non-finite bias %g", m.B)
	}
	c := &Cascade{
		Rows:     wBlocksY,
		Cols:     wBlocksX,
		BlockLen: blockLen,
		Order:    make([]int32, wBlocksY),
		RowBound: make([]float64, wBlocksY),
		Suffix:   make([]float64, wBlocksY+1),
	}
	rowLen := wBlocksX * blockLen
	var total float64
	for r := 0; r < wBlocksY; r++ {
		row := m.W[r*rowLen : (r+1)*rowLen]
		var bound float64
		for x := 0; x < wBlocksX; x++ {
			var ss float64
			for _, v := range row[x*blockLen : (x+1)*blockLen] {
				if !isFinite(v) {
					return nil, fmt.Errorf("svm: non-finite weight in window row %d", r)
				}
				ss += v * v
			}
			bound += math.Sqrt(ss)
		}
		// Finite weights can still overflow the squared-norm sums to +Inf;
		// an infinite bound would silently disable pruning for the whole
		// suffix, so treat it like a non-finite weight.
		if !isFinite(bound) {
			return nil, fmt.Errorf("svm: weight mass of window row %d overflows", r)
		}
		c.RowBound[r] = bound
		total += bound
		c.Order[r] = int32(r)
	}
	if !isFinite(total) {
		return nil, fmt.Errorf("svm: total weight mass overflows")
	}
	// Discriminative mass first: high-bound rows shrink the remainder
	// fastest. The tie-break keeps the schedule deterministic.
	sort.SliceStable(c.Order, func(i, j int) bool {
		bi, bj := c.RowBound[c.Order[i]], c.RowBound[c.Order[j]]
		if bi != bj {
			return bi > bj
		}
		return c.Order[i] < c.Order[j]
	})
	for k := wBlocksY - 1; k >= 0; k-- {
		c.Suffix[k] = c.Suffix[k+1] + c.RowBound[c.Order[k]]
	}
	// The provable rounding bound is O(n * ulp * total) ~ 1e-11 for the
	// paper's geometry; the slack overshoots it by orders of magnitude to
	// also absorb the sub-ulp norm excess of interpolated pyramid levels,
	// while staying far below any score margin that matters (windows
	// within 1e-6 of the threshold are vanishingly rare).
	c.Slack = 1e-6 * (1 + total)
	return c, nil
}

// StagePartials returns the cumulative partial scores of descriptor x under
// model m after each stage, in stage order: out[k] = sum over stages 0..k of
// the stage's row dot product (bias excluded). Used by calibration and
// tests; not a hot path.
func (c *Cascade) StagePartials(m *Model, x []float64) ([]float64, error) {
	return c.partials(m, x)
}

// Calibrate fits per-stage rejection floors on positive training
// descriptors, soft-cascade style: floor_k is the minimum partial score any
// positive reaches after stage k, minus margin. A window falling below a
// floor is rejected early; by construction no calibration positive is
// (margin > 0 leaves headroom for unseen positives). The floors are stored
// on the cascade and returned for serialization.
func (c *Cascade) Calibrate(m *Model, positives [][]float64, margin float64) ([]float64, error) {
	if len(positives) == 0 {
		return nil, fmt.Errorf("svm: cascade calibration needs at least one positive")
	}
	if !isFinite(margin) || margin < 0 {
		return nil, fmt.Errorf("svm: invalid calibration margin %g", margin)
	}
	floors := make([]float64, c.Rows)
	for i := range floors {
		floors[i] = math.Inf(1)
	}
	for i, x := range positives {
		p, err := c.partials(m, x)
		if err != nil {
			return nil, fmt.Errorf("svm: positive %d: %w", i, err)
		}
		for k, v := range p {
			if v < floors[k] {
				floors[k] = v
			}
		}
	}
	for k := range floors {
		floors[k] -= margin
		if !isFinite(floors[k]) {
			return nil, fmt.Errorf("svm: non-finite calibrated floor at stage %d", k)
		}
	}
	c.Calib = floors
	c.Margin = margin
	return floors, nil
}

// partials computes the cumulative staged partial scores of descriptor x
// under model m (excluding the bias), in stage order.
func (c *Cascade) partials(m *Model, x []float64) ([]float64, error) {
	rowLen := c.Cols * c.BlockLen
	if len(x) != c.Rows*rowLen || len(m.W) != c.Rows*rowLen {
		return nil, fmt.Errorf("svm: descriptor/model length %d/%d, cascade needs %d", len(x), len(m.W), c.Rows*rowLen)
	}
	out := make([]float64, c.Rows)
	var partial float64
	for k, r := range c.Order {
		row := int(r)
		partial += dot(m.W[row*rowLen:(row+1)*rowLen], x[row*rowLen:(row+1)*rowLen])
		out[k] = partial
	}
	return out, nil
}

// MissRate reports the fraction of the given positive descriptors the
// calibrated floors would reject early — the measured miss bound of
// calibrated mode on a held-out set (exact mode never misses, so the rate
// is meaningful only with Calib set).
func (c *Cascade) MissRate(m *Model, positives [][]float64) (float64, error) {
	if c.Calib == nil {
		return 0, nil
	}
	if len(positives) == 0 {
		return 0, nil
	}
	missed := 0
	for i, x := range positives {
		p, err := c.partials(m, x)
		if err != nil {
			return 0, fmt.Errorf("svm: positive %d: %w", i, err)
		}
		for k, v := range p {
			if v < c.Calib[k] {
				missed++
				break
			}
		}
	}
	return float64(missed) / float64(len(positives)), nil
}

// AttachCalibration validates a deserialized calibration (svm model-file
// `cascade` section) against the partition geometry and installs it.
func (c *Cascade) AttachCalibration(cal *CascadeCalib) error {
	if cal == nil {
		return fmt.Errorf("svm: nil cascade calibration")
	}
	if cal.Stages != c.Rows || len(cal.Thresholds) != c.Rows {
		return fmt.Errorf("svm: calibration has %d stages (%d thresholds), cascade has %d rows",
			cal.Stages, len(cal.Thresholds), c.Rows)
	}
	c.Calib = append([]float64(nil), cal.Thresholds...)
	c.Margin = cal.Margin
	return nil
}

// CascadeCalib is the serializable soft-cascade calibration of a model:
// per-stage partial-score floors in stage-rank order. The stage schedule
// itself is not stored — it is a pure deterministic function of the weight
// vector and the window geometry (NewCascade), so the floors stay valid for
// any reader that derives the same partition.
type CascadeCalib struct {
	Stages     int       // window block rows the floors were fitted for
	Margin     float64   // safety margin subtracted from the fitted minima
	Thresholds []float64 // per-stage floors, stage-rank order (len = Stages)
}

// Validate reports whether the calibration is structurally usable.
func (cal *CascadeCalib) Validate() error {
	if cal.Stages < 1 || cal.Stages > maxCascadeRows {
		return fmt.Errorf("svm: implausible cascade stage count %d", cal.Stages)
	}
	if len(cal.Thresholds) != cal.Stages {
		return fmt.Errorf("svm: cascade has %d thresholds for %d stages", len(cal.Thresholds), cal.Stages)
	}
	if !isFinite(cal.Margin) || cal.Margin < 0 {
		return fmt.Errorf("svm: invalid cascade margin %g", cal.Margin)
	}
	for i, t := range cal.Thresholds {
		if !isFinite(t) {
			return fmt.Errorf("svm: non-finite cascade threshold %d", i)
		}
	}
	return nil
}

// Clone returns a deep copy of cal.
func (cal *CascadeCalib) Clone() *CascadeCalib {
	if cal == nil {
		return nil
	}
	out := *cal
	out.Thresholds = append([]float64(nil), cal.Thresholds...)
	return &out
}
