package svm

import "testing"

func TestCrossValidateSeparable(t *testing.T) {
	x, y := gauss2D(200, 8, 50)
	acc, err := CrossValidate(x, y, DefaultTrainConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.97 {
		t.Errorf("CV accuracy %.3f on separable data, want ~1", acc)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	x, y := gauss2D(150, 2, 51)
	a, err := CrossValidate(x, y, DefaultTrainConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(x, y, DefaultTrainConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("CV not deterministic: %v vs %v", a, b)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	x, y := gauss2D(10, 3, 52)
	if _, err := CrossValidate(x, y, DefaultTrainConfig(), 1); err == nil {
		t.Error("1 fold should error")
	}
	if _, err := CrossValidate(x[:3], y[:3], DefaultTrainConfig(), 5); err == nil {
		t.Error("more folds than examples should error")
	}
}

func TestSelectCPicksSensibleValue(t *testing.T) {
	// Noisy overlapping data: extreme C values (severe under/overfit)
	// should not win against a moderate one.
	x, y := gauss2D(400, 1.5, 53)
	base := DefaultTrainConfig()
	base.Tol = 0.01
	bestC, results, err := SelectC(x, y, base, []float64{1e-6, 1e-2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if bestC == 1e-6 {
		t.Errorf("C=1e-6 (near-zero model) should not win: %+v", results)
	}
	// The returned best matches the max score.
	var want CVResult
	for _, r := range results {
		if r.Accuracy > want.Accuracy || (r.Accuracy == want.Accuracy && (want.C == 0 || r.C < want.C)) {
			want = r
		}
	}
	if bestC != want.C {
		t.Errorf("bestC %v != argmax %v", bestC, want.C)
	}
}

func TestSelectCErrors(t *testing.T) {
	x, y := gauss2D(40, 3, 54)
	if _, _, err := SelectC(x, y, DefaultTrainConfig(), nil, 4); err == nil {
		t.Error("no candidates should error")
	}
}
