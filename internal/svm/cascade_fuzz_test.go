package svm

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzNewCascade throws arbitrary weight vectors — including NaN/Inf bit
// patterns and degenerate all-zero stages — at the stage partitioner. The
// invariant is total: construction either returns an error or yields
// structurally sound tables (Order a permutation, RowBound the per-row
// block-norm sums, Suffix a non-increasing telescoping suffix sum, every
// value finite). The exactness of cascade scanning rests on these tables,
// so a malformed table is a silent-correctness bug, not a cosmetic one.
func FuzzNewCascade(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(3), []byte{})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	// NaN and +Inf bit patterns.
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(uint8(2), uint8(2), uint8(2), nan)
	inf := make([]byte, 8)
	binary.LittleEndian.PutUint64(inf, math.Float64bits(math.Inf(1)))
	f.Add(uint8(3), uint8(1), uint8(4), inf)
	// Huge finite magnitudes (overflow candidates for the suffix sums).
	big := make([]byte, 8)
	binary.LittleEndian.PutUint64(big, math.Float64bits(math.MaxFloat64))
	f.Add(uint8(8), uint8(4), uint8(8), big)

	f.Fuzz(func(t *testing.T, rows, cols, blockLen uint8, raw []byte) {
		r := int(rows%8) + 1
		c := int(cols%4) + 1
		bl := int(blockLen%8) + 1
		w := make([]float64, r*c*bl)
		for i := range w {
			if len(raw) >= 8 {
				w[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[(i*8)%(len(raw)-7):]))
			}
		}
		m := &Model{W: w}
		casc, err := NewCascade(m, c, r, bl)
		if err != nil {
			return
		}
		if casc == nil {
			t.Fatal("nil cascade and nil error")
		}
		if casc.Rows != r || casc.Cols != c || casc.BlockLen != bl {
			t.Fatalf("geometry %d/%d/%d, want %d/%d/%d", casc.Rows, casc.Cols, casc.BlockLen, r, c, bl)
		}
		if len(casc.Order) != r || len(casc.RowBound) != r || len(casc.Suffix) != r+1 {
			t.Fatalf("table lengths %d/%d/%d for %d rows", len(casc.Order), len(casc.RowBound), len(casc.Suffix), r)
		}
		seen := make([]bool, r)
		for k, row := range casc.Order {
			if row < 0 || int(row) >= r || seen[row] {
				t.Fatalf("Order not a permutation: %v", casc.Order)
			}
			seen[row] = true
			if k > 0 && casc.RowBound[casc.Order[k-1]] < casc.RowBound[row] {
				t.Fatalf("stage order not by descending bound: %v / %v", casc.Order, casc.RowBound)
			}
		}
		if casc.Suffix[r] != 0 {
			t.Fatalf("Suffix[%d] = %g", r, casc.Suffix[r])
		}
		for k := 0; k < r; k++ {
			if !isFinite(casc.Suffix[k]) || casc.Suffix[k] < casc.Suffix[k+1] {
				t.Fatalf("suffix not a finite non-increasing telescope: %v", casc.Suffix)
			}
			if casc.Suffix[k] != casc.Suffix[k+1]+casc.RowBound[casc.Order[k]] {
				t.Fatalf("Suffix[%d] != Suffix[%d] + RowBound[Order[%d]]", k, k+1, k)
			}
			if !isFinite(casc.RowBound[k]) || casc.RowBound[k] < 0 {
				t.Fatalf("row bound %d = %g", k, casc.RowBound[k])
			}
		}
		if !isFinite(casc.Slack) || casc.Slack <= 0 {
			t.Fatalf("slack %g", casc.Slack)
		}
	})
}
