package svm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// cascadeTestModel builds a deterministic pseudo-random model for the given
// window geometry.
func cascadeTestModel(seed int64, rows, cols, blockLen int) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, rows*cols*blockLen)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return &Model{W: w, B: rng.NormFloat64()}
}

func TestNewCascadeTables(t *testing.T) {
	const rows, cols, blockLen = 6, 3, 4
	m := cascadeTestModel(1, rows, cols, blockLen)
	c, err := NewCascade(m, cols, rows, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != rows || c.Cols != cols || c.BlockLen != blockLen {
		t.Fatalf("geometry %d/%d/%d", c.Rows, c.Cols, c.BlockLen)
	}
	// Order is a permutation of 0..rows-1 ranked by descending RowBound.
	seen := make([]bool, rows)
	for k, r := range c.Order {
		if r < 0 || int(r) >= rows || seen[r] {
			t.Fatalf("order is not a permutation: %v", c.Order)
		}
		seen[r] = true
		if k > 0 && c.RowBound[c.Order[k-1]] < c.RowBound[r] {
			t.Errorf("stage %d bound %g exceeds stage %d bound %g",
				k, c.RowBound[r], k-1, c.RowBound[c.Order[k-1]])
		}
	}
	// RowBound[r] is the sum of per-block L2 norms of row r.
	rowLen := cols * blockLen
	for r := 0; r < rows; r++ {
		var want float64
		for x := 0; x < cols; x++ {
			var ss float64
			for _, v := range m.W[r*rowLen+x*blockLen : r*rowLen+(x+1)*blockLen] {
				ss += v * v
			}
			want += math.Sqrt(ss)
		}
		if math.Abs(c.RowBound[r]-want) > 1e-12 {
			t.Errorf("row %d bound %g, want %g", r, c.RowBound[r], want)
		}
	}
	// Suffix sums telescope: Suffix[k] = Suffix[k+1] + RowBound[Order[k]],
	// ending at zero.
	if c.Suffix[rows] != 0 {
		t.Errorf("Suffix[%d] = %g, want 0", rows, c.Suffix[rows])
	}
	for k := rows - 1; k >= 0; k-- {
		if c.Suffix[k] != c.Suffix[k+1]+c.RowBound[c.Order[k]] {
			t.Errorf("Suffix[%d] = %g, want %g", k, c.Suffix[k], c.Suffix[k+1]+c.RowBound[c.Order[k]])
		}
	}
	if c.Slack <= 0 || !isFinite(c.Slack) {
		t.Errorf("slack %g", c.Slack)
	}
}

func TestNewCascadeRejectsBadInput(t *testing.T) {
	m := cascadeTestModel(2, 4, 2, 3)
	cases := []struct {
		name string
		run  func() error
	}{
		{"nil model", func() error { _, err := NewCascade(nil, 2, 4, 3); return err }},
		{"zero cols", func() error { _, err := NewCascade(m, 0, 4, 3); return err }},
		{"zero rows", func() error { _, err := NewCascade(m, 2, 0, 3); return err }},
		{"zero blockLen", func() error { _, err := NewCascade(m, 2, 4, 0); return err }},
		{"length mismatch", func() error { _, err := NewCascade(m, 3, 4, 3); return err }},
		{"too many stages", func() error {
			big := &Model{W: make([]float64, maxCascadeRows+1)}
			_, err := NewCascade(big, 1, maxCascadeRows+1, 1)
			return err
		}},
		{"NaN weight", func() error {
			bad := m.Clone()
			bad.W[5] = math.NaN()
			_, err := NewCascade(bad, 2, 4, 3)
			return err
		}},
		{"Inf weight", func() error {
			bad := m.Clone()
			bad.W[0] = math.Inf(-1)
			_, err := NewCascade(bad, 2, 4, 3)
			return err
		}},
		{"Inf bias", func() error {
			bad := m.Clone()
			bad.B = math.Inf(1)
			_, err := NewCascade(bad, 2, 4, 3)
			return err
		}},
	}
	for _, c := range cases {
		if c.run() == nil {
			t.Errorf("%s: NewCascade succeeded, want error", c.name)
		}
	}
}

func TestCascadeCalibrateFloors(t *testing.T) {
	const rows, cols, blockLen = 5, 2, 3
	m := cascadeTestModel(3, rows, cols, blockLen)
	c, err := NewCascade(m, cols, rows, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	positives := make([][]float64, 20)
	for i := range positives {
		x := make([]float64, rows*cols*blockLen)
		for j := range x {
			x[j] = rng.Float64()
		}
		positives[i] = x
	}
	const margin = 0.125
	floors, err := c.Calibrate(m, positives, margin)
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != rows || c.Margin != margin {
		t.Fatalf("floors %v margin %g", floors, c.Margin)
	}
	// Every calibration positive clears every floor by at least the margin.
	for i, x := range positives {
		p, err := c.StagePartials(m, x)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range p {
			if v < floors[k] {
				t.Fatalf("positive %d falls below floor %d: %g < %g", i, k, v, floors[k])
			}
		}
	}
	// So the miss rate on the calibration set is zero.
	miss, err := c.MissRate(m, positives)
	if err != nil {
		t.Fatal(err)
	}
	if miss != 0 {
		t.Errorf("calibration-set miss rate %g, want 0", miss)
	}
	// And at least one floor equals some positive's partial minus margin.
	// (Floors are tight minima by construction.)
	found := false
	for _, x := range positives {
		p, _ := c.StagePartials(m, x)
		for k, v := range p {
			if v-margin == floors[k] {
				found = true
			}
		}
	}
	if !found {
		t.Error("no floor is tight against a calibration positive")
	}

	if _, err := c.Calibrate(m, nil, margin); err == nil {
		t.Error("Calibrate with no positives succeeded")
	}
	if _, err := c.Calibrate(m, positives, -1); err == nil {
		t.Error("Calibrate with negative margin succeeded")
	}
	if _, err := c.Calibrate(m, positives, math.NaN()); err == nil {
		t.Error("Calibrate with NaN margin succeeded")
	}
}

func TestCascadeCalibrationRoundTrip(t *testing.T) {
	const rows, cols, blockLen = 4, 2, 3
	m := cascadeTestModel(5, rows, cols, blockLen)
	c, err := NewCascade(m, cols, rows, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	pos := make([][]float64, 8)
	for i := range pos {
		x := make([]float64, rows*cols*blockLen)
		for j := range x {
			x[j] = rng.Float64()
		}
		pos[i] = x
	}
	floors, err := c.Calibrate(m, pos, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m.Calib = &CascadeCalib{Stages: rows, Margin: 0.25, Thresholds: floors}

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Calib == nil {
		t.Fatal("calibration lost in round trip")
	}
	if got.Calib.Stages != rows || got.Calib.Margin != 0.25 {
		t.Fatalf("round trip calib %+v", got.Calib)
	}
	for i, v := range got.Calib.Thresholds {
		if v != floors[i] {
			t.Errorf("threshold %d: %g != %g", i, v, floors[i])
		}
	}
	// A fresh cascade accepts the deserialized calibration.
	c2, err := NewCascade(got, cols, rows, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.AttachCalibration(got.Calib); err != nil {
		t.Fatal(err)
	}
	// Stage schedules derived from identical weights agree, so the floors
	// mean the same thing to the reader.
	for k := range c.Order {
		if c.Order[k] != c2.Order[k] {
			t.Fatalf("stage schedule diverged after round trip: %v vs %v", c.Order, c2.Order)
		}
	}
	// Clone is deep: mutating the clone's thresholds leaves the original.
	cl := got.Clone()
	cl.Calib.Thresholds[0] = 999
	if got.Calib.Thresholds[0] == 999 {
		t.Error("Clone shares calibration thresholds")
	}
}

func TestReadRejectsBadCascadeSections(t *testing.T) {
	valid := "pdsvm 1\ndim 2\nbias 0\nw\n1\n2\n"
	cases := []struct {
		name, tail string
	}{
		{"garbage after weights", "hello\n"},
		{"zero stages", "cascade 0\nmargin 0\nt\n"},
		{"negative stages", "cascade -1\nmargin 0\nt\n"},
		{"implausible stages", "cascade 99999\nmargin 0\nt\n"},
		{"missing margin", "cascade 2\n"},
		{"NaN margin", "cascade 2\nmargin NaN\nt\n0\n0\n"},
		{"negative margin", "cascade 2\nmargin -0.5\nt\n0\n0\n"},
		{"bad threshold header", "cascade 2\nmargin 0\nx\n0\n0\n"},
		{"missing threshold", "cascade 2\nmargin 0\nt\n0\n"},
		{"NaN threshold", "cascade 2\nmargin 0\nt\n0\nNaN\n"},
		{"garbage threshold", "cascade 2\nmargin 0\nt\n0\nzzz\n"},
		{"trailing after cascade", "cascade 1\nmargin 0\nt\n0\nextra\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(valid + c.tail)); err == nil {
			t.Errorf("%s: Read succeeded, want error", c.name)
		}
	}
	// Sanity: the base model without a tail still parses.
	if _, err := Read(strings.NewReader(valid)); err != nil {
		t.Fatalf("base model: %v", err)
	}
	// Blank trailing lines are tolerated (editors add them).
	if _, err := Read(strings.NewReader(valid + "\n\n")); err != nil {
		t.Errorf("blank trailing lines rejected: %v", err)
	}
}

func TestAttachCalibrationValidates(t *testing.T) {
	m := cascadeTestModel(7, 4, 2, 3)
	c, err := NewCascade(m, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachCalibration(nil); err == nil {
		t.Error("nil calibration attached")
	}
	if err := c.AttachCalibration(&CascadeCalib{Stages: 3, Thresholds: make([]float64, 3)}); err == nil {
		t.Error("stage-count mismatch attached")
	}
	if err := c.AttachCalibration(&CascadeCalib{Stages: 4, Thresholds: make([]float64, 4)}); err != nil {
		t.Errorf("valid calibration rejected: %v", err)
	}
}
