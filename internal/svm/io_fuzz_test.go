package svm

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRead throws arbitrary bytes at the model reader. Model files cross a
// trust boundary (they are trained elsewhere and shipped to the vehicle),
// so the invariant under fuzzing is total: any input either parses into a
// fully usable model — every coefficient finite, weight count matching the
// declared dimension — or returns an error. It must never panic, never
// over-allocate from a hostile header, and never hand the scorer a NaN/Inf
// that would silently swallow detections downstream.
//
// The seed corpus doubles as the regression suite for the reader hardening
// (mirroring imgproc's FuzzDecode): `go test` runs every f.Add case even
// without -fuzz.
func FuzzRead(f *testing.F) {
	// A valid model exactly as Write emits it.
	var valid bytes.Buffer
	if err := (&Model{W: []float64{0.25, -1.5, 3e-9}, B: -0.125}).Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Minimal hand-written valid model.
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\n"))
	// Non-finite coefficients: ParseFloat accepts these spellings, the
	// reader must not.
	f.Add([]byte("pdsvm 1\ndim 1\nbias NaN\nw\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias +Inf\nw\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 2\nbias 0\nw\n1\nnan\n"))
	f.Add([]byte("pdsvm 1\ndim 2\nbias 0\nw\n-inf\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 1e999\nw\n1\n"))
	// Truncations at every structural boundary.
	f.Add([]byte(""))
	f.Add([]byte("pdsvm 1"))
	f.Add([]byte("pdsvm 1\ndim 3\n"))
	f.Add([]byte("pdsvm 1\ndim 3\nbias 0\n"))
	f.Add([]byte("pdsvm 1\ndim 3\nbias 0\nw\n1\n2\n"))
	// Bad magic / header garbage.
	f.Add([]byte("pdsvm 2\ndim 1\nbias 0\nw\n1\n"))
	f.Add([]byte("libsvm\n"))
	// Hostile dimensions: zero, negative, and far past the plausibility
	// cap (a 16 EiB allocation if trusted).
	f.Add([]byte("pdsvm 1\ndim 0\nbias 0\nw\n"))
	f.Add([]byte("pdsvm 1\ndim -4\nbias 0\nw\n"))
	f.Add([]byte("pdsvm 1\ndim 99999999999999999999\nbias 0\nw\n"))
	f.Add([]byte("pdsvm 1\ndim 16777217\nbias 0\nw\n"))
	// Garbage tokens where numbers belong.
	f.Add([]byte("pdsvm 1\ndim x\nbias 0\nw\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias zero\nw\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nweights\n1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n0x1p5q\n"))
	// Cascade calibration sections: valid, truncated, hostile counts,
	// non-finite floors, and trailing garbage after a complete section.
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 2\nmargin 0.5\nt\n-1\n-2\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 2\nmargin 0.5\nt\n-1\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 0\nmargin 0\nt\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 99999999\nmargin 0\nt\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 1\nmargin NaN\nt\n0\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 1\nmargin -1\nt\n0\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 1\nmargin 0\nt\nInf\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\ncascade 1\nmargin 0\nt\n0\ngarbage\n"))
	f.Add([]byte("pdsvm 1\ndim 1\nbias 0\nw\n1\nnot-a-section\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Read returned nil model and nil error")
		}
		if len(m.W) == 0 || len(m.W) > 1<<24 {
			t.Fatalf("accepted model has implausible dimension %d", len(m.W))
		}
		if math.IsNaN(m.B) || math.IsInf(m.B, 0) {
			t.Fatalf("accepted model has non-finite bias %v", m.B)
		}
		for i, w := range m.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("accepted model has non-finite weight %d: %v", i, w)
			}
		}
		// An accepted model must survive the round trip unchanged: Write
		// uses %.17g, so re-reading reproduces it bit for bit.
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("re-encoding accepted model: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading re-encoded model: %v", err)
		}
		if m2.B != m.B || len(m2.W) != len(m.W) {
			t.Fatalf("round trip changed the model: bias %v->%v, dim %d->%d",
				m.B, m2.B, len(m.W), len(m2.W))
		}
		for i := range m.W {
			if m2.W[i] != m.W[i] {
				t.Fatalf("round trip changed weight %d: %v -> %v", i, m.W[i], m2.W[i])
			}
		}
		// An accepted cascade calibration must be structurally sound and
		// survive the round trip too.
		if (m.Calib == nil) != (m2.Calib == nil) {
			t.Fatal("round trip changed calibration presence")
		}
		if m.Calib != nil {
			if err := m.Calib.Validate(); err != nil {
				t.Fatalf("accepted model has invalid calibration: %v", err)
			}
			if m2.Calib.Stages != m.Calib.Stages || m2.Calib.Margin != m.Calib.Margin {
				t.Fatal("round trip changed calibration header")
			}
			for i := range m.Calib.Thresholds {
				if m2.Calib.Thresholds[i] != m.Calib.Thresholds[i] {
					t.Fatalf("round trip changed cascade threshold %d", i)
				}
			}
		}
	})
}
