package svm

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	m := &Model{W: []float64{0.5, -1.25, 3e-17, 0, 42}, B: -0.75}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != m.B || len(got.W) != len(m.W) {
		t.Fatalf("round trip: got bias %g dim %d", got.B, len(got.W))
	}
	for i := range m.W {
		if got.W[i] != m.W[i] {
			t.Errorf("weight %d: %g != %g", i, got.W[i], m.W[i])
		}
	}
}

func TestReadRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"NaN bias", "pdsvm 1\ndim 2\nbias NaN\nw\n1\n2\n"},
		{"+Inf bias", "pdsvm 1\ndim 2\nbias +Inf\nw\n1\n2\n"},
		{"NaN weight", "pdsvm 1\ndim 2\nbias 0\nw\n1\nNaN\n"},
		{"-Inf weight", "pdsvm 1\ndim 2\nbias 0\nw\n-Inf\n2\n"},
		{"Infinity weight", "pdsvm 1\ndim 1\nbias 0\nw\nInfinity\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: Read succeeded, want error", c.name)
		}
	}
}

func TestWriteOfNonFiniteModelDoesNotReload(t *testing.T) {
	// A model corrupted in memory (diverged training) still serializes, but
	// the reader must refuse to bring it back.
	m := &Model{W: []float64{1, math.NaN()}, B: 0}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("reloaded a model with a NaN weight")
	}
}

func TestReadRejectsMalformedHeaders(t *testing.T) {
	cases := []string{
		"",
		"wrong 1\ndim 1\nbias 0\nw\n1\n",
		"pdsvm 1\ndim 0\nbias 0\nw\n",
		"pdsvm 1\ndim -3\nbias 0\nw\n",
		"pdsvm 1\ndim 99999999999\nbias 0\nw\n",
		"pdsvm 1\ndim 2\nbias 0\nw\n1\n", // missing weight
		"pdsvm 1\ndim 1\nbias 0\nnotw\n1\n",
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}
