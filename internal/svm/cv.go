package svm

import (
	"fmt"
	"math/rand"
)

// Cross-validation for hyper-parameter selection (the paper trains with
// LibLinear, whose standard workflow picks C by k-fold CV).

// CVResult reports one candidate's cross-validated accuracy.
type CVResult struct {
	C        float64
	Accuracy float64
}

// CrossValidate estimates accuracy of the given configuration by k-fold
// cross-validation with a deterministic fold assignment derived from
// cfg.Seed.
func CrossValidate(x [][]float64, y []int, cfg TrainConfig, folds int) (float64, error) {
	n := len(x)
	if folds < 2 {
		return 0, fmt.Errorf("svm: need at least 2 folds, got %d", folds)
	}
	if n < folds {
		return 0, fmt.Errorf("svm: %d examples cannot fill %d folds", n, folds)
	}
	// Deterministic shuffled fold assignment.
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % folds
	}
	rng.Shuffle(n, func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })

	correct, total := 0, 0
	for f := 0; f < folds; f++ {
		var tx [][]float64
		var ty []int
		var vx [][]float64
		var vy []int
		for i := range x {
			if assign[i] == f {
				vx = append(vx, x[i])
				vy = append(vy, y[i])
			} else {
				tx = append(tx, x[i])
				ty = append(ty, y[i])
			}
		}
		if len(vx) == 0 {
			continue
		}
		res, err := Train(tx, ty, cfg)
		if err != nil {
			return 0, fmt.Errorf("svm: fold %d: %w", f, err)
		}
		for i := range vx {
			if res.Model.Predict(vx[i]) == vy[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("svm: empty validation folds")
	}
	return float64(correct) / float64(total), nil
}

// SelectC sweeps candidate C values by k-fold cross-validation and returns
// the best along with every candidate's score. Ties resolve to the
// smallest C (strongest regularization).
func SelectC(x [][]float64, y []int, base TrainConfig, candidates []float64, folds int) (float64, []CVResult, error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("svm: no C candidates")
	}
	var results []CVResult
	bestC, bestAcc := 0.0, -1.0
	for _, c := range candidates {
		cfg := base
		cfg.C = c
		acc, err := CrossValidate(x, y, cfg, folds)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, CVResult{C: c, Accuracy: acc})
		if acc > bestAcc || (acc == bestAcc && c < bestC) {
			bestAcc, bestC = acc, c
		}
	}
	return bestC, results, nil
}
