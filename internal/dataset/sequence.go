package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// Sequence is a short synthetic dashcam clip: frames with per-frame ground
// truth and stable pedestrian identities, used by the tracking substrate
// and the latency experiments (a DAS does not classify stills — it must
// keep seeing the same pedestrian as both approach).
type Sequence struct {
	Frames []*imgproc.Gray
	// Truth[f] lists the ground-truth boxes of frame f.
	Truth [][]geom.Rect
	// IDs[f][i] is the stable identity of Truth[f][i].
	IDs [][]int
}

// SequenceConfig controls clip synthesis.
type SequenceConfig struct {
	W, H   int // frame size
	Frames int // clip length
	// Pedestrians is the number of walkers.
	Pedestrians int
	// FPS sets the time base for motion (walking speed, approach rate).
	FPS float64
	// ApproachRate grows pedestrian height per second, simulating ego
	// motion towards them (fraction/second, e.g. 0.1 = 10%/s).
	ApproachRate float64
	// WalkSpeedPx is the lateral walking speed in pixels/second at the
	// base height.
	WalkSpeedPx float64
}

// DefaultSequenceConfig returns a 2-second 640x480 clip at 10 fps.
func DefaultSequenceConfig() SequenceConfig {
	return SequenceConfig{
		W: 640, H: 480, Frames: 20, Pedestrians: 2, FPS: 10,
		ApproachRate: 0.08, WalkSpeedPx: 40,
	}
}

// walker is the persistent state of one pedestrian across a clip.
type walker struct {
	id     int
	x      float64 // center x in pixels
	feetY  float64
	height float64
	vx     float64 // pixels/second
	pose   Pose
	gaitHz float64
}

// MakeSequence renders a clip with persistent walkers: each advances its
// position and gait phase per frame while the background stays fixed
// (static ego camera plus approach-induced growth).
func (g *Generator) MakeSequence(cfg SequenceConfig) (*Sequence, error) {
	if cfg.W < WindowW || cfg.H < WindowH {
		return nil, fmt.Errorf("dataset: sequence frame %dx%d smaller than one window", cfg.W, cfg.H)
	}
	if cfg.Frames < 1 {
		return nil, fmt.Errorf("dataset: need at least one frame")
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("dataset: FPS must be positive")
	}
	if cfg.Pedestrians < 0 {
		return nil, fmt.Errorf("dataset: negative pedestrian count")
	}
	// A fixed background scene without pedestrians.
	bgScene, err := g.MakeScene(SceneConfig{
		W: cfg.W, H: cfg.H, Pedestrians: 0, ClutterDensity: 1,
	})
	if err != nil {
		return nil, err
	}
	bg := bgScene.Frame

	horizon := int(0.45 * float64(cfg.H))
	walkers := make([]*walker, 0, cfg.Pedestrians)
	for i := 0; i < cfg.Pedestrians; i++ {
		h := 130 + g.rng.Float64()*80
		dir := 1.0
		if g.rng.Float64() < 0.5 {
			dir = -1
		}
		w := &walker{
			id:     i,
			x:      float64(cfg.W) * (0.2 + 0.6*g.rng.Float64()),
			feetY:  float64(horizon) + (float64(cfg.H)-float64(horizon))*(0.3+0.6*g.rng.Float64()),
			height: h,
			vx:     dir * cfg.WalkSpeedPx * (0.6 + 0.8*g.rng.Float64()),
			pose:   RandomPose(g.rng),
			gaitHz: 1.5 + g.rng.Float64(),
		}
		w.pose.CenterXFrac = 0.5
		w.pose.HeightFrac = 0.95
		walkers = append(walkers, w)
	}

	seq := &Sequence{}
	dt := 1 / cfg.FPS
	noiseRng := rand.New(rand.NewSource(g.rng.Int63()))
	for f := 0; f < cfg.Frames; f++ {
		frame := bg.Clone()
		var truth []geom.Rect
		var ids []int
		for _, w := range walkers {
			// Advance state.
			if f > 0 {
				w.x += w.vx * dt
				w.height *= 1 + cfg.ApproachRate*dt
				w.pose.GaitPhase += 2 * math.Pi * w.gaitHz * dt
			}
			// Bounce at frame edges.
			half := w.height / 4
			if w.x < half || w.x > float64(cfg.W)-half {
				w.vx = -w.vx
				w.x = math.Max(half, math.Min(float64(cfg.W)-half, w.x))
			}
			hh := int(w.height)
			box := geom.XYWH(int(w.x)-hh/4, int(w.feetY)-hh, hh/2, hh)
			DrawPedestrian(frame, box, w.pose)
			truth = append(truth, FigureBounds(box, w.pose))
			ids = append(ids, w.id)
		}
		frame = imgproc.AddGaussianNoise(imgproc.GaussianBlur(frame, 0.6),
			g.NoiseStddev*0.7, noiseRng)
		seq.Frames = append(seq.Frames, frame)
		seq.Truth = append(seq.Truth, truth)
		seq.IDs = append(seq.IDs, ids)
	}
	return seq, nil
}
