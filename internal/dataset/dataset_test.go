package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/hog"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := New(42).PositiveWindow()
	b := New(42).PositiveWindow()
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("same seed must produce identical windows")
	}
	c := New(43).PositiveWindow()
	if bytes.Equal(a.Pix, c.Pix) {
		t.Error("different seeds should produce different windows")
	}
}

func TestWindowDimensions(t *testing.T) {
	g := New(1)
	p := g.PositiveWindow()
	if p.W != WindowW || p.H != WindowH {
		t.Errorf("positive window %dx%d, want %dx%d", p.W, p.H, WindowW, WindowH)
	}
	n := g.NegativeWindow()
	if n.W != WindowW || n.H != WindowH {
		t.Errorf("negative window %dx%d", n.W, n.H)
	}
}

func TestRenderSameSpecDifferentScales(t *testing.T) {
	g := New(2)
	spec := g.NewSpec(true)
	base := g.Render(spec, WindowW, WindowH)
	big := g.Render(spec, 2*WindowW, 2*WindowH)
	if big.W != 128 || big.H != 256 {
		t.Fatalf("scaled render %dx%d", big.W, big.H)
	}
	// Rendering the same spec twice at the same size is identical.
	again := g.Render(spec, WindowW, WindowH)
	if !bytes.Equal(base.Pix, again.Pix) {
		t.Error("Render is not deterministic")
	}
	// The 2x render must be approximately the base image enlarged: compare
	// a downsampled version. (Noise fields differ in sample count, so
	// allow a generous error.)
	down := imgproc.Resize(big, WindowW, WindowH, imgproc.Bilinear)
	var mae float64
	for i := range base.Pix {
		mae += math.Abs(float64(base.Pix[i]) - float64(down.Pix[i]))
	}
	mae /= float64(len(base.Pix))
	if mae > 25 {
		t.Errorf("2x render downsampled differs from base by MAE %.1f", mae)
	}
}

func TestSpecSetLabelsAndCounts(t *testing.T) {
	g := New(3)
	ss := g.NewSpecSet(5, 7)
	if len(ss.Specs) != 12 || len(ss.Labels) != 12 {
		t.Fatalf("spec set sizes: %d specs, %d labels", len(ss.Specs), len(ss.Labels))
	}
	set, err := g.RenderAt(ss, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := set.Counts()
	if pos != 5 || neg != 7 {
		t.Errorf("counts %d/%d, want 5/7", pos, neg)
	}
	for i, spec := range ss.Specs {
		if spec.Positive != (ss.Labels[i] == 1) {
			t.Fatalf("spec %d label mismatch", i)
		}
	}
	if _, err := g.RenderAt(ss, 0.5); err == nil {
		t.Error("sub-unit scale should error")
	}
}

func TestRenderAtScaleDimensions(t *testing.T) {
	g := New(4)
	ss := g.NewSpecSet(1, 1)
	for _, scale := range []float64{1.0, 1.1, 1.5, 2.0} {
		set, err := g.RenderAt(ss, scale)
		if err != nil {
			t.Fatal(err)
		}
		wantW := int(float64(WindowW)*scale + 0.5)
		wantH := int(float64(WindowH)*scale + 0.5)
		if set.Images[0].W != wantW || set.Images[0].H != wantH {
			t.Errorf("scale %v: %dx%d, want %dx%d", scale, set.Images[0].W, set.Images[0].H, wantW, wantH)
		}
	}
}

func TestMakeSplitProtocol(t *testing.T) {
	g := New(5)
	split, err := g.MakeSplit(SmallProtocol())
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := split.Train.Counts()
	if pos != 120 || neg != 360 {
		t.Errorf("train counts %d/%d", pos, neg)
	}
	if len(split.TestSpecs.Specs) != 500 {
		t.Errorf("test specs %d, want 500", len(split.TestSpecs.Specs))
	}
	if _, err := g.MakeSplit(Protocol{}); err == nil {
		t.Error("zero protocol should error")
	}
}

func TestPaperProtocolSizes(t *testing.T) {
	p := PaperProtocol()
	if p.TestPos != 1126 || p.TestNeg != 4530 {
		t.Errorf("paper protocol test sizes %d/%d, want 1126/4530 (Section 4)", p.TestPos, p.TestNeg)
	}
}

// TestClassesAreSeparable is the load-bearing test of the substitution: a
// linear SVM on HOG features must separate synthetic pedestrians from
// synthetic clutter well — otherwise the dataset cannot stand in for INRIA
// in the scale experiments.
func TestClassesAreSeparable(t *testing.T) {
	g := New(6)
	split, err := g.MakeSplit(Protocol{TrainPos: 150, TrainNeg: 450, TestPos: 60, TestNeg: 240})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hog.DefaultConfig()
	var x [][]float64
	for _, img := range split.Train.Images {
		d, err := hog.Descriptor(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x = append(x, d)
	}
	tc := svm.DefaultTrainConfig()
	tc.C = 0.01
	res, err := svm.Train(x, split.Train.Labels, tc)
	if err != nil {
		t.Fatal(err)
	}
	test, err := g.RenderAt(split.TestSpecs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var xt [][]float64
	for _, img := range test.Images {
		d, err := hog.Descriptor(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		xt = append(xt, d)
	}
	acc := svm.Accuracy(res.Model, xt, test.Labels)
	if acc < 0.9 {
		t.Errorf("test accuracy %.3f < 0.9: synthetic classes not separable enough", acc)
	}
	t.Logf("synthetic pedestrian test accuracy: %.4f", acc)
}

func TestFigureBoundsInsideBox(t *testing.T) {
	g := New(7)
	for i := 0; i < 50; i++ {
		pose := RandomPose(g.rng)
		box := geom.XYWH(10, 10, 64, 128)
		fb := FigureBounds(box, pose)
		if fb.Empty() {
			t.Fatal("empty figure bounds")
		}
		// The figure can lean/stride slightly outside, but its bulk stays in.
		inter := fb.Intersect(box)
		if float64(inter.Area()) < 0.8*float64(fb.Area()) {
			t.Errorf("figure bounds %v mostly outside box %v", fb, box)
		}
	}
}

func TestMakeSceneGroundTruth(t *testing.T) {
	g := New(8)
	cfg := DefaultSceneConfig()
	scene, err := g.MakeScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scene.Frame.W != cfg.W || scene.Frame.H != cfg.H {
		t.Fatalf("frame %dx%d", scene.Frame.W, scene.Frame.H)
	}
	if len(scene.Truth) == 0 {
		t.Fatal("no pedestrians placed")
	}
	if len(scene.Truth) != len(scene.Heights) {
		t.Fatal("truth/heights length mismatch")
	}
	for i, b := range scene.Truth {
		if !scene.Frame.Bounds().ContainsRect(b.Intersect(scene.Frame.Bounds())) || b.Empty() {
			t.Errorf("truth %d box %v invalid", i, b)
		}
		// No heavy overlap between figures.
		for j := i + 1; j < len(scene.Truth); j++ {
			if geom.IoU(b, scene.Truth[j]) > 0.3 {
				t.Errorf("figures %d and %d overlap heavily", i, j)
			}
		}
	}
}

func TestMakeSceneErrors(t *testing.T) {
	g := New(9)
	if _, err := g.MakeScene(SceneConfig{W: 10, H: 10}); err == nil {
		t.Error("tiny scene should error")
	}
}

func TestMakeSceneHDTV(t *testing.T) {
	if testing.Short() {
		t.Skip("HDTV scene is slow")
	}
	g := New(10)
	scene, err := g.MakeScene(HDTVSceneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if scene.Frame.W != 1920 || scene.Frame.H != 1080 {
		t.Fatalf("HDTV frame %dx%d", scene.Frame.W, scene.Frame.H)
	}
	if len(scene.Truth) < 2 {
		t.Errorf("HDTV scene placed only %d pedestrians", len(scene.Truth))
	}
}

func TestPedestrianHasVerticalStructure(t *testing.T) {
	// Sanity check on gradient statistics: pedestrians produce more
	// vertical-edge energy (horizontal gradients) than the flat background
	// alone — the signature HOG keys on.
	g := New(11)
	g.NoiseStddev = 0
	pos := g.PositiveWindow()
	cfgH := hog.DefaultConfig()
	grid, err := hog.ComputeCells(pos, cfgH)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range grid.Hist {
		total += v
	}
	if total <= 0 {
		t.Fatal("pedestrian window has no gradient energy at all")
	}
}
