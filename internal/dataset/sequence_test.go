package dataset

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

func TestMakeSequenceShape(t *testing.T) {
	g := New(21)
	cfg := DefaultSequenceConfig()
	seq, err := g.MakeSequence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Frames) != cfg.Frames || len(seq.Truth) != cfg.Frames || len(seq.IDs) != cfg.Frames {
		t.Fatalf("lengths %d/%d/%d, want %d", len(seq.Frames), len(seq.Truth), len(seq.IDs), cfg.Frames)
	}
	for f := range seq.Truth {
		if len(seq.Truth[f]) != len(seq.IDs[f]) {
			t.Fatalf("frame %d: truth/id mismatch", f)
		}
		if len(seq.Truth[f]) != cfg.Pedestrians {
			t.Fatalf("frame %d: %d walkers, want %d", f, len(seq.Truth[f]), cfg.Pedestrians)
		}
	}
}

func TestMakeSequenceIdentitiesPersist(t *testing.T) {
	g := New(22)
	seq, err := g.MakeSequence(DefaultSequenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The same ID must appear in every frame, with bounded inter-frame
	// motion (the tracker's working assumption).
	for f := 1; f < len(seq.Frames); f++ {
		for i, id := range seq.IDs[f] {
			found := false
			for j, prevID := range seq.IDs[f-1] {
				if prevID != id {
					continue
				}
				found = true
				cPrev := seq.Truth[f-1][j].Center()
				cNow := seq.Truth[f][i].Center()
				dx := cNow.X - cPrev.X
				dy := cNow.Y - cPrev.Y
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				if dx > 40 || dy > 40 {
					t.Fatalf("frame %d id %d jumped by (%d,%d)", f, id, dx, dy)
				}
			}
			if !found {
				t.Fatalf("frame %d: id %d has no predecessor", f, id)
			}
		}
	}
}

func TestMakeSequenceApproachGrowsWalkers(t *testing.T) {
	g := New(23)
	cfg := DefaultSequenceConfig()
	cfg.ApproachRate = 0.2
	cfg.Frames = 15
	seq, err := g.MakeSequence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := seq.Truth[0][0].H()
	last := seq.Truth[len(seq.Truth)-1][0].H()
	if last <= first {
		t.Errorf("walker did not grow while approaching: %d -> %d px", first, last)
	}
}

func TestMakeSequenceFramesDiffer(t *testing.T) {
	g := New(24)
	cfg := DefaultSequenceConfig()
	cfg.Frames = 3
	seq, err := g.MakeSequence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(seq.Frames[0].Pix, seq.Frames[1].Pix) {
		t.Error("consecutive frames identical (no motion rendered)")
	}
}

func TestMakeSequenceErrors(t *testing.T) {
	g := New(25)
	if _, err := g.MakeSequence(SequenceConfig{W: 10, H: 10, Frames: 3, FPS: 10}); err == nil {
		t.Error("tiny frames should error")
	}
	if _, err := g.MakeSequence(SequenceConfig{W: 640, H: 480, Frames: 0, FPS: 10}); err == nil {
		t.Error("zero frames should error")
	}
	if _, err := g.MakeSequence(SequenceConfig{W: 640, H: 480, Frames: 3, FPS: 0}); err == nil {
		t.Error("zero fps should error")
	}
	if _, err := g.MakeSequence(SequenceConfig{W: 640, H: 480, Frames: 3, FPS: 10, Pedestrians: -1}); err == nil {
		t.Error("negative pedestrians should error")
	}
}

func TestMakeSequenceTruthInsideFrame(t *testing.T) {
	g := New(26)
	cfg := DefaultSequenceConfig()
	cfg.Frames = 25
	cfg.WalkSpeedPx = 120 // fast walkers stress the bounce logic
	seq, err := g.MakeSequence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.R(0, 0, cfg.W, cfg.H)
	for f, boxes := range seq.Truth {
		for _, b := range boxes {
			// The bulk of every figure stays on screen.
			vis := b.Intersect(bounds)
			if float64(vis.Area()) < 0.5*float64(b.Area()) {
				t.Fatalf("frame %d: walker mostly off screen: %v", f, b)
			}
		}
	}
}
