package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// errScale formats the shared out-of-range render-scale error.
func errScale(s float64) error {
	return fmt.Errorf("dataset: render scale %g must be >= 1", s)
}

// Vehicle support: the paper notes that HOG+SVM "has also been employed in
// detection of other object classes such as vehicles" and that its several
// SVM classifier instances "could provide real-time multiple object
// detection capability". This file supplies the second object class that
// exercises that capability: procedural rear-view car silhouettes.

// VehicleWindowW and VehicleWindowH are the vehicle detection window
// dimensions (square 64x64: rear-view cars are wider than tall).
const (
	VehicleWindowW = 64
	VehicleWindowH = 64
)

// VehicleSpec describes one procedural vehicle in normalized coordinates.
type VehicleSpec struct {
	CenterX   float64 // horizontal center, fraction of box width
	WidthFrac float64 // body width, fraction of box width
	Aspect    float64 // body height / body width
	CabinFrac float64 // cabin height fraction of body height
	BodyTone  uint8
	GlassTone uint8
	WheelTone uint8
}

// RandomVehicle draws a plausible vehicle spec.
func RandomVehicle(rng *rand.Rand) VehicleSpec {
	dark := rng.Float64() < 0.5
	body := uint8(150 + rng.Intn(90))
	if dark {
		body = uint8(20 + rng.Intn(70))
	}
	return VehicleSpec{
		CenterX:   0.42 + rng.Float64()*0.16,
		WidthFrac: 0.62 + rng.Float64()*0.25,
		Aspect:    0.55 + rng.Float64()*0.20,
		CabinFrac: 0.35 + rng.Float64()*0.15,
		BodyTone:  body,
		GlassTone: uint8(40 + rng.Intn(80)),
		WheelTone: uint8(10 + rng.Intn(40)),
	}
}

// DrawVehicle renders the spec into img within box: body rectangle with a
// trapezoidal cabin, rear window, and two wheels at the ground line.
func DrawVehicle(img *imgproc.Gray, box geom.Rect, v VehicleSpec) {
	w := float64(box.W())
	bw := v.WidthFrac * w
	bh := v.Aspect * bw
	if bw < 6 || bh < 6 {
		return
	}
	cx := float64(box.Min.X) + v.CenterX*w
	groundY := float64(box.Max.Y) - 0.06*float64(box.H())
	bodyTop := groundY - bh*(1-v.CabinFrac)
	cabinTop := groundY - bh

	pt := func(x, y float64) geom.Pt { return geom.Pt{X: int(x + 0.5), Y: int(y + 0.5)} }

	// Body.
	imgproc.FillRect(img, geom.R(
		int(cx-bw/2), int(bodyTop), int(cx+bw/2), int(groundY)), v.BodyTone)
	// Cabin: trapezoid narrower than the body.
	imgproc.FillQuad(img,
		pt(cx-bw*0.32, cabinTop),
		pt(cx+bw*0.32, cabinTop),
		pt(cx+bw*0.42, bodyTop),
		pt(cx-bw*0.42, bodyTop),
		v.BodyTone)
	// Rear window inside the cabin.
	imgproc.FillQuad(img,
		pt(cx-bw*0.26, cabinTop+bh*0.06),
		pt(cx+bw*0.26, cabinTop+bh*0.06),
		pt(cx+bw*0.33, bodyTop-bh*0.04),
		pt(cx-bw*0.33, bodyTop-bh*0.04),
		v.GlassTone)
	// Wheels.
	wr := bw * 0.11
	for _, side := range []float64{-1, 1} {
		wx := cx + side*bw*0.33
		imgproc.FillEllipse(img, geom.R(
			int(wx-wr), int(groundY-wr*0.9), int(wx+wr), int(groundY+wr*0.9)), v.WheelTone)
	}
}

// NewVehicleSpecSet draws nPos windows containing a vehicle and nNeg
// vehicle-free clutter windows, as renderable specs (positives first).
// Vehicle windows reuse the street-clutter background machinery.
func (g *Generator) NewVehicleSpecSet(nPos, nNeg int) *SpecSet {
	ss := &SpecSet{}
	for i := 0; i < nPos; i++ {
		spec := g.NewSpec(false)
		spec.Hard = nil // never place the pedestrian-like hard negative under a car
		spec.VehicleSpec = &VehicleSpec{}
		*spec.VehicleSpec = RandomVehicle(g.rng)
		ss.Specs = append(ss.Specs, spec)
		ss.Labels = append(ss.Labels, 1)
	}
	for i := 0; i < nNeg; i++ {
		ss.Specs = append(ss.Specs, g.NewSpec(false))
		ss.Labels = append(ss.Labels, -1)
	}
	return ss
}

// RenderVehicleAt rasterizes a vehicle spec set at the given scale of the
// 64x64 vehicle window.
func (g *Generator) RenderVehicleAt(ss *SpecSet, scale float64) (*Set, error) {
	if scale < 1 {
		return nil, errScale(scale)
	}
	w := int(float64(VehicleWindowW)*scale + 0.5)
	h := int(float64(VehicleWindowH)*scale + 0.5)
	out := &Set{Labels: append([]int(nil), ss.Labels...)}
	for _, spec := range ss.Specs {
		out.Images = append(out.Images, g.Render(spec, w, h))
	}
	return out, nil
}
