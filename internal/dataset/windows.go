package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// The scale experiment of the paper (Table 1, Figure 4) evaluates the SAME
// test images at several magnifications: the INRIA test set was up-sampled
// by 1.1..2.0. To mirror that protocol, windows here are described by a
// resolution-independent WindowSpec (all geometry normalized to [0,1]) and
// rasterized at whatever size each scale requires, so the scale-1.3 test
// set contains exactly the scale-1.0 scenes, only larger.

// ClutterKind enumerates the background clutter primitives.
type ClutterKind int

const (
	// ClutterRect is a building/facade rectangle.
	ClutterRect ClutterKind = iota
	// ClutterPole is a full-height vertical bar.
	ClutterPole
	// ClutterStroke is a diagonal thick line.
	ClutterStroke
)

// Clutter is one background object in normalized coordinates.
type Clutter struct {
	Kind       ClutterKind
	X, Y, W, H float64 // normalized position and size
	X2, Y2     float64 // stroke endpoint (ClutterStroke)
	WidthFrac  float64 // stroke/pole width as a fraction of window width
	Tone       uint8
}

// HardNegative describes the pedestrian-confusable structure some negative
// windows carry (lamp post or double pole).
type HardNegative struct {
	X       float64 // pole x, normalized
	PoleW   float64 // pole width fraction
	HeadD   float64 // blob diameter fraction (0 = no blob, double pole instead)
	GapFrac float64 // second pole gap fraction (double-pole variant)
	Tone    uint8
}

// WindowSpec fully describes one synthetic window, independent of raster
// resolution.
type WindowSpec struct {
	Positive  bool
	BaseTone  uint8
	Spread    int // sky/ground gradient amplitude
	Clutter   []Clutter
	Hard      *HardNegative
	Pose      Pose    // valid when Positive
	LightL    float64 // illumination gains
	LightR    float64
	NoiseSeed int64 // per-window sensor noise stream
	// VehicleSpec, when non-nil, draws a vehicle instead of (or in
	// addition to) a pedestrian — the second object class.
	VehicleSpec *VehicleSpec
	// OcclusionFrac covers the bottom fraction of the window with an
	// occluding structure (parked car, wall) after drawing the figure —
	// the classic partial-occlusion robustness protocol. 0 disables.
	OcclusionFrac float64
	// OcclusionTone is the occluder intensity.
	OcclusionTone uint8
}

// Generator produces deterministic synthetic pedestrian data from a seed.
type Generator struct {
	rng *rand.Rand
	// NoiseStddev is the Gaussian sensor noise sigma in 8-bit counts
	// applied to every rendered window.
	NoiseStddev float64
	// BlurSigma is the optical blur applied before noise, in pixels at the
	// 64x128 base resolution (scaled with the raster size).
	BlurSigma float64
}

// New returns a Generator with the default degradation levels.
func New(seed int64) *Generator {
	return &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		NoiseStddev: 6,
		BlurSigma:   0.8,
	}
}

// NewSpec draws the specification of one window.
func (g *Generator) NewSpec(positive bool) WindowSpec {
	spec := WindowSpec{
		Positive:  positive,
		BaseTone:  uint8(90 + g.rng.Intn(80)),
		Spread:    20 + g.rng.Intn(40),
		LightL:    0.85 + g.rng.Float64()*0.3,
		LightR:    0.85 + g.rng.Float64()*0.3,
		NoiseSeed: g.rng.Int63(),
	}
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		tone := clampTone(int(spec.BaseTone) + g.rng.Intn(90) - 45)
		switch ClutterKind(g.rng.Intn(3)) {
		case ClutterRect:
			spec.Clutter = append(spec.Clutter, Clutter{
				Kind: ClutterRect,
				X:    g.rng.Float64(), Y: g.rng.Float64(),
				W: g.rng.Float64()*0.5 + 0.06, H: g.rng.Float64()*0.5 + 0.03,
				Tone: tone,
			})
		case ClutterPole:
			spec.Clutter = append(spec.Clutter, Clutter{
				Kind:      ClutterPole,
				X:         g.rng.Float64(),
				WidthFrac: g.rng.Float64()*0.05 + 0.015,
				Tone:      tone,
			})
		case ClutterStroke:
			spec.Clutter = append(spec.Clutter, Clutter{
				Kind: ClutterStroke,
				X:    g.rng.Float64(), Y: g.rng.Float64(),
				X2: g.rng.Float64(), Y2: g.rng.Float64(),
				WidthFrac: g.rng.Float64()*0.06 + 0.015,
				Tone:      tone,
			})
		}
	}
	if positive {
		spec.Pose = RandomPose(g.rng)
	} else if g.rng.Float64() < 0.35 {
		hn := &HardNegative{
			X:     0.33 + g.rng.Float64()*0.33,
			PoleW: 0.03 + g.rng.Float64()*0.05,
			Tone:  clampTone(40 + g.rng.Intn(170)),
		}
		if g.rng.Float64() < 0.5 {
			hn.HeadD = 0.12 + g.rng.Float64()*0.08
		} else {
			hn.GapFrac = 0.04 + g.rng.Float64()*0.10
		}
		spec.Hard = hn
	}
	return spec
}

func clampTone(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Render rasterizes spec at w x h pixels, applying blur, lighting and
// sensor noise per the generator's settings. Rendering is deterministic:
// the same spec and size always produce the same pixels.
func (g *Generator) Render(spec WindowSpec, w, h int) *imgproc.Gray {
	img := imgproc.NewGray(w, h)
	fw, fh := float64(w), float64(h)
	imgproc.VerticalGradient(img, img.Bounds(),
		clampTone(int(spec.BaseTone)+spec.Spread/2), clampTone(int(spec.BaseTone)-spec.Spread/2))
	px := func(f float64, extent float64) int { return int(math.Round(f * extent)) }
	for _, c := range spec.Clutter {
		switch c.Kind {
		case ClutterRect:
			imgproc.FillRect(img, geom.XYWH(px(c.X, fw), px(c.Y, fh), px(c.W, fw)+1, px(c.H, fh)+1), c.Tone)
		case ClutterPole:
			imgproc.FillRect(img, geom.XYWH(px(c.X, fw), 0, px(c.WidthFrac, fw)+1, h), c.Tone)
		case ClutterStroke:
			imgproc.ThickLine(img,
				geom.Pt{X: px(c.X, fw), Y: px(c.Y, fh)},
				geom.Pt{X: px(c.X2, fw), Y: px(c.Y2, fh)},
				px(c.WidthFrac, fw)+1, c.Tone)
		}
	}
	if spec.VehicleSpec != nil {
		DrawVehicle(img, img.Bounds(), *spec.VehicleSpec)
	}
	if spec.Positive {
		DrawPedestrian(img, img.Bounds(), spec.Pose)
	} else if spec.Hard != nil {
		hn := spec.Hard
		x := px(hn.X, fw)
		pw := px(hn.PoleW, fw) + 1
		imgproc.FillRect(img, geom.XYWH(x, h/8, pw, h), hn.Tone)
		if hn.HeadD > 0 {
			d := px(hn.HeadD, fw) + 2
			imgproc.FillEllipse(img, geom.XYWH(x+pw/2-d/2, h/8-d/2, d, d), hn.Tone)
		} else {
			gap := px(hn.GapFrac, fw) + 1
			imgproc.FillRect(img, geom.XYWH(x+pw+gap, h/8, pw, h), hn.Tone)
		}
	}
	if spec.OcclusionFrac > 0 {
		top := int(float64(h) * (1 - spec.OcclusionFrac))
		imgproc.FillRect(img, geom.R(0, top, w, h), spec.OcclusionTone)
	}
	// Degradations. Blur scales with resolution so the same spec rendered
	// larger stays equally sharp relative to its structures.
	if g.BlurSigma > 0 {
		img = imgproc.GaussianBlur(img, g.BlurSigma*fw/float64(WindowW))
	}
	img = imgproc.LightingGradient(img, spec.LightL, spec.LightR, 1, 1)
	if g.NoiseStddev > 0 {
		noiseRng := rand.New(rand.NewSource(spec.NoiseSeed))
		img = imgproc.AddGaussianNoise(img, g.NoiseStddev, noiseRng)
	}
	return img
}

// PositiveWindow renders one fresh 64x128 window containing a pedestrian.
func (g *Generator) PositiveWindow() *imgproc.Gray {
	return g.Render(g.NewSpec(true), WindowW, WindowH)
}

// NegativeWindow renders one fresh 64x128 window of street clutter with no
// pedestrian.
func (g *Generator) NegativeWindow() *imgproc.Gray {
	return g.Render(g.NewSpec(false), WindowW, WindowH)
}

// Set is a labelled collection of windows.
type Set struct {
	Images []*imgproc.Gray
	Labels []int // +1 pedestrian, -1 background
}

// Len returns the number of examples.
func (s *Set) Len() int { return len(s.Images) }

// Counts returns the number of positive and negative examples.
func (s *Set) Counts() (pos, neg int) {
	for _, l := range s.Labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// SpecSet is a collection of window specifications that can be rendered at
// any scale — the synthetic analogue of "the INRIA test set", which the
// paper renders at magnifications 1.0 (original) through 2.0.
type SpecSet struct {
	Specs  []WindowSpec
	Labels []int
}

// NewSpecSet draws nPos positive and nNeg negative specs (positives first).
func (g *Generator) NewSpecSet(nPos, nNeg int) *SpecSet {
	ss := &SpecSet{}
	for i := 0; i < nPos; i++ {
		ss.Specs = append(ss.Specs, g.NewSpec(true))
		ss.Labels = append(ss.Labels, 1)
	}
	for i := 0; i < nNeg; i++ {
		ss.Specs = append(ss.Specs, g.NewSpec(false))
		ss.Labels = append(ss.Labels, -1)
	}
	return ss
}

// RenderAt rasterizes every spec at the given scale relative to the 64x128
// base window: the same scenes, scale times larger — the up-sampled test
// sets of the paper's protocol, but rendered natively at the target
// resolution (no interpolation artifacts).
func (g *Generator) RenderAt(ss *SpecSet, scale float64) (*Set, error) {
	if scale < 1 {
		return nil, fmt.Errorf("dataset: render scale %g must be >= 1", scale)
	}
	w := int(float64(WindowW)*scale + 0.5)
	h := int(float64(WindowH)*scale + 0.5)
	out := &Set{Labels: append([]int(nil), ss.Labels...)}
	for _, spec := range ss.Specs {
		out.Images = append(out.Images, g.Render(spec, w, h))
	}
	return out, nil
}

// UpsampleAt reproduces the paper's protocol literally: every spec is
// rendered once at the 64x128 base resolution and then enlarged to the
// target scale by interpolation ("The original test dataset of INRIA was
// then up-sampled by using the scale value of 1.1 to 2", Section 4). The
// interpolation artifacts this introduces are part of what the paper's
// detectors saw.
func (g *Generator) UpsampleAt(ss *SpecSet, scale float64, ip imgproc.Interp) (*Set, error) {
	if scale < 1 {
		return nil, fmt.Errorf("dataset: upsample scale %g must be >= 1", scale)
	}
	w := int(float64(WindowW)*scale + 0.5)
	h := int(float64(WindowH)*scale + 0.5)
	out := &Set{Labels: append([]int(nil), ss.Labels...)}
	for _, spec := range ss.Specs {
		base := g.Render(spec, WindowW, WindowH)
		if scale == 1 {
			out.Images = append(out.Images, base)
			continue
		}
		out.Images = append(out.Images, imgproc.Resize(base, w, h, ip))
	}
	return out, nil
}

// Protocol mirrors the paper's INRIA evaluation protocol sizes: 1126
// positive and 4530 negative test windows (Section 4), with a training
// split of comparable scale.
type Protocol struct {
	TrainPos, TrainNeg int
	TestPos, TestNeg   int
}

// PaperProtocol returns the test-set sizes quoted in the paper.
func PaperProtocol() Protocol {
	return Protocol{TrainPos: 1200, TrainNeg: 3600, TestPos: 1126, TestNeg: 4530}
}

// SmallProtocol is a fast variant for tests and examples.
func SmallProtocol() Protocol {
	return Protocol{TrainPos: 120, TrainNeg: 360, TestPos: 100, TestNeg: 400}
}

// Split holds the train set and the renderable test specs of one protocol
// run.
type Split struct {
	Train     *Set
	TestSpecs *SpecSet
}

// MakeSplit generates a training set and test specifications. Train and
// test draw from the same generator stream, so they are disjoint samples of
// the same distribution.
func (g *Generator) MakeSplit(p Protocol) (*Split, error) {
	if p.TrainPos <= 0 || p.TrainNeg <= 0 || p.TestPos <= 0 || p.TestNeg <= 0 {
		return nil, fmt.Errorf("dataset: all protocol counts must be positive: %+v", p)
	}
	train := &Set{}
	for i := 0; i < p.TrainPos; i++ {
		train.Images = append(train.Images, g.PositiveWindow())
		train.Labels = append(train.Labels, 1)
	}
	for i := 0; i < p.TrainNeg; i++ {
		train.Images = append(train.Images, g.NegativeWindow())
		train.Labels = append(train.Labels, -1)
	}
	return &Split{Train: train, TestSpecs: g.NewSpecSet(p.TestPos, p.TestNeg)}, nil
}
