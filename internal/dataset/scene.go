package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// Scene is a full synthetic street frame with pedestrian ground truth, used
// by the full-frame detector tests, the examples and the hardware
// simulation driver.
type Scene struct {
	Frame *imgproc.Gray
	// Truth holds one tight bounding box per pedestrian.
	Truth []geom.Rect
	// Heights holds the pixel height of each pedestrian (parallel to
	// Truth), handy for scale analysis.
	Heights []int
}

// SceneConfig controls street-scene synthesis.
type SceneConfig struct {
	W, H int // frame size
	// Pedestrians is the number of figures to place.
	Pedestrians int
	// MinHeight/MaxHeight bound the pedestrian pixel heights (multi-scale
	// content). Defaults: 100 to 0.45*H.
	MinHeight, MaxHeight int
	// ClutterDensity scales the number of background objects (1 = default).
	ClutterDensity float64
}

// DefaultSceneConfig returns a 640x480 scene with three pedestrians.
func DefaultSceneConfig() SceneConfig {
	return SceneConfig{W: 640, H: 480, Pedestrians: 3, ClutterDensity: 1}
}

// HDTVSceneConfig returns the paper's 1920x1080 frame with pedestrians at
// two distinct scales (the configuration the accelerator targets).
func HDTVSceneConfig() SceneConfig {
	return SceneConfig{W: 1920, H: 1080, Pedestrians: 6, ClutterDensity: 1}
}

// MakeScene renders a street scene with non-overlapping pedestrians and
// returns the frame plus ground truth.
func (g *Generator) MakeScene(cfg SceneConfig) (*Scene, error) {
	if cfg.W < WindowW || cfg.H < WindowH {
		return nil, fmt.Errorf("dataset: scene %dx%d smaller than one window", cfg.W, cfg.H)
	}
	if cfg.MinHeight == 0 {
		cfg.MinHeight = 100
	}
	if cfg.MaxHeight == 0 {
		cfg.MaxHeight = int(0.45 * float64(cfg.H))
	}
	if cfg.MaxHeight > cfg.H {
		cfg.MaxHeight = cfg.H
	}
	if cfg.MinHeight > cfg.MaxHeight {
		cfg.MinHeight = cfg.MaxHeight
	}
	if cfg.ClutterDensity <= 0 {
		cfg.ClutterDensity = 1
	}
	frame := imgproc.NewGray(cfg.W, cfg.H)

	// Sky-to-road gradient with a horizon at 45% height.
	horizon := int(0.45 * float64(cfg.H))
	imgproc.VerticalGradient(frame, geom.R(0, 0, cfg.W, horizon), 190, 150)
	imgproc.VerticalGradient(frame, geom.R(0, horizon, cfg.W, cfg.H), 110, 70)

	// Buildings: rectangles above the horizon.
	nBuild := int(float64(cfg.W) / 130 * cfg.ClutterDensity)
	x := 0
	for i := 0; i < nBuild && x < cfg.W; i++ {
		bw := 60 + g.rng.Intn(140)
		bh := horizon/2 + g.rng.Intn(horizon/2)
		tone := clampTone(100 + g.rng.Intn(80))
		imgproc.FillRect(frame, geom.XYWH(x, horizon-bh, bw, bh), tone)
		// Windows.
		for wy := horizon - bh + 8; wy < horizon-12; wy += 22 {
			for wx := x + 6; wx < x+bw-10; wx += 18 {
				imgproc.FillRect(frame, geom.XYWH(wx, wy, 8, 12), clampTone(int(tone)-60))
			}
		}
		x += bw + g.rng.Intn(40)
	}

	// Street furniture: poles and road markings.
	nPoles := int(float64(cfg.W) / 200 * cfg.ClutterDensity)
	for i := 0; i < nPoles; i++ {
		px := g.rng.Intn(cfg.W)
		ph := 80 + g.rng.Intn(cfg.H/3)
		baseY := horizon + g.rng.Intn(cfg.H-horizon)
		tone := clampTone(40 + g.rng.Intn(60))
		imgproc.FillRect(frame, geom.XYWH(px, baseY-ph, 3+g.rng.Intn(3), ph), tone)
	}
	for i := 0; i < 4; i++ {
		y := horizon + (cfg.H-horizon)*(i+1)/5
		imgproc.FillRect(frame, geom.XYWH(0, y, cfg.W, 2), 160)
	}

	scene := &Scene{Frame: frame}
	// Place pedestrians on the ground plane: larger figures lower in the
	// frame (nearer the camera), avoiding overlap.
	for i := 0; i < cfg.Pedestrians; i++ {
		var box geom.Rect
		placed := false
		for attempt := 0; attempt < 50 && !placed; attempt++ {
			h := cfg.MinHeight + g.rng.Intn(cfg.MaxHeight-cfg.MinHeight+1)
			w := h / 2
			// Ground-plane placement: feet between horizon and bottom,
			// proportional to size.
			t := float64(h-cfg.MinHeight) / float64(cfg.MaxHeight-cfg.MinHeight+1)
			feetY := horizon + int(t*float64(cfg.H-horizon-4)) + g.rng.Intn(20)
			if feetY > cfg.H-2 {
				feetY = cfg.H - 2
			}
			x := g.rng.Intn(maxInt(1, cfg.W-w))
			box = geom.XYWH(x, feetY-h, w, h)
			if box.Min.Y < 0 {
				continue
			}
			ok := true
			for _, prev := range scene.Truth {
				if geom.IoU(box, prev) > 0.05 {
					ok = false
					break
				}
			}
			placed = ok
		}
		if !placed {
			continue
		}
		pose := RandomPose(g.rng)
		// Center the figure in its box so ground truth is tight.
		pose.CenterXFrac = 0.5
		pose.HeightFrac = 0.95
		DrawPedestrian(frame, box, pose)
		scene.Truth = append(scene.Truth, FigureBounds(box, pose))
		scene.Heights = append(scene.Heights, box.H())
	}

	// Global degradation.
	blurred := imgproc.GaussianBlur(frame, 0.7)
	noisy := imgproc.AddGaussianNoise(blurred, g.NoiseStddev*0.7, rand.New(rand.NewSource(g.rng.Int63())))
	scene.Frame = noisy
	return scene, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
