// Package dataset provides the synthetic substitute for the INRIA person
// dataset used by the paper's accuracy analysis (Section 4, Table 1,
// Figure 4). The INRIA photographs are not redistributable, so this package
// generates procedural pedestrians — articulated head/torso/limb
// silhouettes with randomized pose, gait, clothing contrast, lighting and
// sensor noise — over structured street-scene clutter, plus negative
// windows sampled from pedestrian-free scenes.
//
// What matters for the reproduction is not photorealism but that the
// generated windows exercise the identical code path (HOG extraction,
// image- versus feature-scaling, linear SVM) with pedestrian-like oriented
// gradient statistics: roughly vertically symmetric, omega-shaped
// head-shoulder contours against cluttered backgrounds. See DESIGN.md for
// the substitution rationale.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/imgproc"
)

// WindowW and WindowH are the detection window dimensions used throughout
// the paper (64x128 pixels).
const (
	WindowW = 64
	WindowH = 128
)

// Pose describes one articulated pedestrian instance. All lengths are
// fractions of the figure height; angles are radians from vertical.
type Pose struct {
	HeightFrac   float64 // figure height as a fraction of the box height
	CenterXFrac  float64 // horizontal center as a fraction of box width
	GaitPhase    float64 // walking cycle phase in [0, 2pi)
	StrideAmpl   float64 // leg swing amplitude (radians)
	ArmAmpl      float64 // arm swing amplitude (radians)
	LeanAngle    float64 // whole-body lean (radians)
	HeadSize     float64 // head diameter fraction
	ShoulderFrac float64 // shoulder half-width fraction
	HipFrac      float64 // hip half-width fraction
	BodyTone     uint8   // torso/arm intensity
	LegTone      uint8   // leg intensity (pants vs shirt two-tone)
	HeadTone     uint8   // head intensity
}

// RandomPose draws a plausible pedestrian pose from rng.
func RandomPose(rng *rand.Rand) Pose {
	// Two-tone clothing: tones are drawn apart from each other and from
	// typical backgrounds (which are mid-grey).
	dark := rng.Float64() < 0.5
	tone := func(primary bool) uint8 {
		if primary == dark {
			return uint8(20 + rng.Intn(60)) // dark clothing
		}
		return uint8(170 + rng.Intn(70)) // light clothing
	}
	return Pose{
		HeightFrac:   0.78 + rng.Float64()*0.16,
		CenterXFrac:  0.42 + rng.Float64()*0.16,
		GaitPhase:    rng.Float64() * 2 * math.Pi,
		StrideAmpl:   0.10 + rng.Float64()*0.35,
		ArmAmpl:      0.05 + rng.Float64()*0.30,
		LeanAngle:    (rng.Float64() - 0.5) * 0.12,
		HeadSize:     0.13 + rng.Float64()*0.03,
		ShoulderFrac: 0.10 + rng.Float64()*0.04,
		HipFrac:      0.07 + rng.Float64()*0.03,
		BodyTone:     tone(true),
		LegTone:      tone(rng.Float64() < 0.3), // usually contrasting pants
		HeadTone:     uint8(80 + rng.Intn(120)),
	}
}

// DrawPedestrian renders the pose into img within the given box. The
// figure's feet rest near the box bottom. Rendering is pure geometry; the
// caller applies blur/noise/lighting afterwards.
func DrawPedestrian(img *imgproc.Gray, box geom.Rect, p Pose) {
	h := float64(box.H()) * p.HeightFrac
	if h < 8 {
		return
	}
	// Anchor: feet baseline at the bottom of the figure.
	baseY := float64(box.Max.Y) - 0.02*float64(box.H())
	topY := baseY - h
	cx := float64(box.Min.X) + p.CenterXFrac*float64(box.W())

	// Whole-body lean shifts upper-body x linearly with height.
	leanAt := func(y float64) float64 {
		return cx + (baseY-y)*math.Tan(p.LeanAngle)
	}

	pt := func(x, y float64) geom.Pt { return geom.Pt{X: int(math.Round(x)), Y: int(math.Round(y))} }

	headD := p.HeadSize * h
	neckY := topY + headD*1.05
	shoulderY := neckY + 0.03*h
	hipY := topY + 0.50*h
	kneeY := topY + 0.74*h

	shoulderHalf := p.ShoulderFrac * h
	hipHalf := p.HipFrac * h
	limbW := int(math.Max(2, 0.045*h))

	// Legs first (behind torso): thigh hip->knee, shin knee->ankle, with a
	// scissor swing and slight knee bend on the trailing leg.
	legSwing := p.StrideAmpl * math.Sin(p.GaitPhase)
	for side := -1.0; side <= 1.0; side += 2 {
		swing := legSwing * side
		hx := leanAt(hipY) + side*hipHalf*0.6
		thighLen := kneeY - hipY
		kx := hx + thighLen*math.Tan(swing)
		// Knee bend: the back-swinging leg bends forward at the knee.
		bend := 0.35 * math.Max(0, -swing*side*2)
		shinLen := baseY - kneeY
		ax := kx + shinLen*math.Tan(swing*0.6+bend*side)
		ThickLineTone(img, pt(hx, hipY), pt(kx, kneeY), limbW, p.LegTone)
		ThickLineTone(img, pt(kx, kneeY), pt(ax, baseY), limbW, p.LegTone)
		// Foot: small horizontal smear at the ankle.
		ThickLineTone(img, pt(ax, baseY), pt(ax+float64(side)*0.03*h+4, baseY), limbW-1, p.LegTone)
	}

	// Torso: a quad from shoulders to hips (hourglass-ish taper).
	FillQuadTone(img,
		pt(leanAt(shoulderY)-shoulderHalf, shoulderY),
		pt(leanAt(shoulderY)+shoulderHalf, shoulderY),
		pt(leanAt(hipY)+hipHalf, hipY),
		pt(leanAt(hipY)-hipHalf, hipY),
		p.BodyTone)

	// Arms: upper arm shoulder->elbow, forearm elbow->wrist, counter-phase
	// to the legs.
	armSwing := p.ArmAmpl * math.Sin(p.GaitPhase+math.Pi)
	elbowY := shoulderY + 0.18*h
	wristY := shoulderY + 0.34*h
	for side := -1.0; side <= 1.0; side += 2 {
		swing := armSwing * side
		sx := leanAt(shoulderY) + side*shoulderHalf*0.95
		upperLen := elbowY - shoulderY
		ex := sx + upperLen*math.Tan(swing)
		foreLen := wristY - elbowY
		wx := ex + foreLen*math.Tan(swing*1.4)
		ThickLineTone(img, pt(sx, shoulderY), pt(ex, elbowY), limbW-1, p.BodyTone)
		ThickLineTone(img, pt(ex, elbowY), pt(wx, wristY), limbW-1, p.BodyTone)
	}

	// Head last: ellipse over the neck.
	hx := leanAt(neckY)
	imgproc.FillEllipse(img, geom.R(
		int(hx-headD/2), int(topY),
		int(hx+headD/2), int(topY+headD)), p.HeadTone)
}

// ThickLineTone and FillQuadTone re-export the drawing primitives so scene
// code outside imgproc reads naturally; they simply forward.
func ThickLineTone(img *imgproc.Gray, a, b geom.Pt, width int, tone uint8) {
	imgproc.ThickLine(img, a, b, width, tone)
}

// FillQuadTone forwards to imgproc.FillQuad.
func FillQuadTone(img *imgproc.Gray, p0, p1, p2, p3 geom.Pt, tone uint8) {
	imgproc.FillQuad(img, p0, p1, p2, p3, tone)
}

// FigureBounds returns the tight pixel box the pose occupies inside the
// given drawing box (used to produce ground-truth rectangles).
func FigureBounds(box geom.Rect, p Pose) geom.Rect {
	h := float64(box.H()) * p.HeightFrac
	baseY := float64(box.Max.Y) - 0.02*float64(box.H())
	topY := baseY - h
	cx := float64(box.Min.X) + p.CenterXFrac*float64(box.W())
	halfW := math.Max(p.ShoulderFrac, p.HipFrac)*h + 0.35*p.StrideAmpl*h
	return geom.R(int(cx-halfW), int(topY), int(cx+halfW), int(baseY))
}
