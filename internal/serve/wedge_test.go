package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
)

// TestHangEscalationRestartsWorker is the hang acceptance scenario: a
// ctx-ignoring stall wedges worker 0's pipeline, the supervisor escalates
// the wedge to a restart while stream 1 keeps serving, and after the fault
// clears the worker recovers — with every goroutine (including the
// watchdog-abandoned scanner, once its stall elapses) accounted for.
func TestHangEscalationRestartsWorker(t *testing.T) {
	baseline := runtime.NumGoroutine()
	m := obs.NewMetrics()
	faults := faultinject.New()
	// Generous timing (the race suite shares one CPU across packages);
	// only the ordering deadline < hang < stall matters.
	const stall = 3 * time.Second
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers: 2,
		Pipeline: rt.Config{
			Deadline:    1 * time.Second,
			HangTimeout: 600 * time.Millisecond,
			Metrics:     m,
		},
		RestartBackoff:    20 * time.Millisecond,
		RestartBackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	frame := testFrame()

	for stream := 0; stream < 2; stream++ {
		if _, err := sup.Do(ctx, stream, frame); err != nil {
			t.Fatalf("stream %d healthy frame: %v", stream, err)
		}
	}

	// Hard-stall worker 0: the scan ignores its context, so only the
	// liveness watchdog can report it.
	faults.HardStallLevel(0, stall)
	_, err = sup.Do(ctx, 0, frame)
	if !errors.Is(err, rt.ErrHung) {
		t.Fatalf("hung stream 0 returned %v, want rt.ErrHung", err)
	}

	// Stream 1 keeps serving while worker 0 is wedged/restarting.
	for i := 0; i < 5; i++ {
		if _, err := sup.Do(ctx, 1, frame); err != nil {
			t.Fatalf("stream 1 frame %d failed during worker 0 wedge: %v", i, err)
		}
	}

	// Clear the fault; worker 0 must come back after the backoff. While it
	// is down requests fail fast (restarting, or hung again if a rebuilt
	// incarnation raced the Reset) instead of hanging the caller.
	faults.Reset()
	recoverDeadline := time.Now().Add(15 * time.Second)
	for {
		_, err := sup.Do(ctx, 0, frame)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrWorkerRestarting) && !errors.Is(err, rt.ErrHung) {
			t.Fatalf("stream 0 during wedge recovery: unexpected error %v", err)
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("worker 0 did not recover from the wedge; last error: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := sup.Stats()
	if st.Workers[0].Wedges < 1 {
		t.Errorf("worker 0 wedges = %d, want >= 1", st.Workers[0].Wedges)
	}
	if st.Workers[0].Restarts < 1 {
		t.Errorf("worker 0 restarts = %d, want >= 1", st.Workers[0].Restarts)
	}
	if st.Workers[1].Wedges != 0 || st.Workers[1].Restarts != 0 {
		t.Errorf("worker 1 wedges/restarts = %d/%d, want 0/0 (fault must stay confined)",
			st.Workers[1].Wedges, st.Workers[1].Restarts)
	}
	if st.Wedges < 1 {
		t.Errorf("total wedges = %d, want >= 1", st.Wedges)
	}
	if st.Aggregate.FramesHung < 1 {
		t.Errorf("aggregate FramesHung = %d, want >= 1", st.Aggregate.FramesHung)
	}
	if agg := st.Aggregate; agg.FramesIn != agg.FramesOut+agg.FramesDropped+agg.InFlight {
		t.Errorf("aggregate conservation broken: in %d != out %d + dropped %d + inflight %d",
			agg.FramesIn, agg.FramesOut, agg.FramesDropped, agg.InFlight)
	}
	if st.Workers[0].State != "running" {
		t.Errorf("worker 0 state %q after recovery, want running", st.Workers[0].State)
	}

	sup.Close()
	// Goroutine settling net of accounted leaks: the abandoned scanner is
	// still asleep inside its hard stall right after Close, and the obs
	// gauge says exactly how many such scanners remain. Wait for the ledger
	// to drain, then for the raw count to reach baseline.
	deadline := time.Now().Add(10 * time.Second)
	for m.AbandonedScanners.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned-scanner ledger did not drain: %d", m.AbandonedScanners.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	settleGoroutines(t, baseline)
	if got := m.WedgedPipelines.Load(); got != 0 {
		t.Errorf("obs WedgedPipelines = %d after Close, want 0 (wedged pipes retired)", got)
	}
}

// fakePipe is an injectable workerPipe for supervision tests: it can
// swallow frames forever (silent), refuse intake as wedged, or answer
// every frame immediately.
type fakePipe struct {
	silent  bool
	wedged  bool
	hang    time.Duration
	results chan rt.FrameResult
	once    sync.Once
}

func newFakePipe(silent, wedged bool) *fakePipe {
	return &fakePipe{silent: silent, wedged: wedged, results: make(chan rt.FrameResult, 1)}
}

func (f *fakePipe) Submit(frame *imgproc.Gray) bool {
	if f.wedged {
		return false
	}
	if !f.silent {
		f.results <- rt.FrameResult{}
	}
	return true
}
func (f *fakePipe) Results() <-chan rt.FrameResult { return f.results }
func (f *fakePipe) Close()                         { f.once.Do(func() { close(f.results) }) }
func (f *fakePipe) Stats() rt.Stats                { return rt.Stats{Wedged: f.wedged} }
func (f *fakePipe) Deadline() time.Duration        { return 50 * time.Millisecond }
func (f *fakePipe) HangTimeout() time.Duration     { return f.hang }
func (f *fakePipe) Wedged() bool                   { return f.wedged }

// TestDoHonorsContext: Do must return the caller's context error at every
// wait point, even against a pipe that never responds — a dead worker must
// cost the caller its deadline, never an unbounded hang, and an
// already-expired request must not consume a worker slot.
func TestDoHonorsContext(t *testing.T) {
	cases := []struct {
		name string
		ctx  func() (context.Context, context.CancelFunc)
		want error
	}{
		{
			name: "pre-cancelled",
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx, func() {}
			},
			want: context.Canceled,
		},
		{
			name: "deadline while awaiting result",
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 50*time.Millisecond)
			},
			want: context.DeadlineExceeded,
		},
		{
			name: "cancelled while awaiting result",
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				go func() { time.Sleep(30 * time.Millisecond); cancel() }()
				return ctx, cancel
			},
			want: context.Canceled,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// ResultTimeout < 0: the supervisor waits on the silent pipe
			// unboundedly, so only the caller's ctx can end the request.
			sup, err := newSupervisorWith(
				func(int) (workerPipe, error) { return newFakePipe(true, false), nil },
				SupervisorConfig{Workers: 1, ResultTimeout: -1},
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sup.Close()
			ctx, cancel := tc.ctx()
			defer cancel()
			start := time.Now()
			_, err = sup.Do(ctx, 0, testFrame())
			if !errors.Is(err, tc.want) {
				t.Fatalf("Do returned %v, want %v", err, tc.want)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("Do took %v against a never-responding pipe", elapsed)
			}
		})
	}
}

// TestResultSilentPipeRestarts: a pipeline that accepts frames but never
// produces results trips the supervisor's own ResultTimeout net — the job
// fails fast with a retryable error, the wedge is counted, and the rebuilt
// (healthy) incarnation serves.
func TestResultSilentPipeRestarts(t *testing.T) {
	var builds atomic.Int64
	sup, err := newSupervisorWith(
		func(int) (workerPipe, error) {
			if builds.Add(1) == 1 {
				return newFakePipe(true, false), nil // first incarnation: silent
			}
			return newFakePipe(false, false), nil // rebuilt: healthy
		},
		SupervisorConfig{
			Workers:           1,
			ResultTimeout:     50 * time.Millisecond,
			RestartBackoff:    10 * time.Millisecond,
			RestartBackoffMax: 50 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	ctx := context.Background()

	start := time.Now()
	_, err = sup.Do(ctx, 0, testFrame())
	if !errors.Is(err, ErrWorkerRestarting) {
		t.Fatalf("result-silent pipe: Do returned %v, want ErrWorkerRestarting", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("result-silent detection took %v", elapsed)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := sup.Do(ctx, 0, testFrame()); err == nil {
			break
		} else if !errors.Is(err, ErrWorkerRestarting) {
			t.Fatalf("unexpected error during restart: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("worker did not recover after result-silent restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := sup.Stats()
	if st.Wedges < 1 {
		t.Errorf("wedges = %d, want >= 1 (result-silent counts as a wedge)", st.Wedges)
	}
	if builds.Load() < 2 {
		t.Errorf("pipe builds = %d, want >= 2 (silent incarnation replaced)", builds.Load())
	}
}

// TestResultWaitDerivation pins the ResultTimeout resolution: explicit
// value wins, zero derives Deadline + 2*HangTimeout from a watchdogged
// pipe, and a watchdog-less pipe gets an unbounded wait.
func TestResultWaitDerivation(t *testing.T) {
	s := &Supervisor{cfg: SupervisorConfig{ResultTimeout: time.Second}}
	if got := s.resultWait(&fakePipe{hang: time.Minute}); got != time.Second {
		t.Errorf("explicit ResultTimeout: got %v, want 1s", got)
	}
	s = &Supervisor{}
	if got, want := s.resultWait(&fakePipe{hang: 100 * time.Millisecond}), 250*time.Millisecond; got != want {
		t.Errorf("derived ResultTimeout: got %v, want %v (50ms deadline + 2*100ms hang)", got, want)
	}
	if got := s.resultWait(&fakePipe{}); got != 0 {
		t.Errorf("watchdog-less pipe: got %v, want 0 (unbounded)", got)
	}
	s = &Supervisor{cfg: SupervisorConfig{ResultTimeout: -1}}
	if got := s.resultWait(&fakePipe{hang: time.Second}); got >= 0 {
		t.Errorf("negative ResultTimeout: got %v, want unbounded (<0)", got)
	}
}

// TestReadyzReflectsWedgedWorkers: a server whose every worker pipeline is
// wedged fails its readiness probe with "no workers running" and exposes
// the wedge counters on /metricsz.
func TestReadyzReflectsWedgedWorkers(t *testing.T) {
	sup, err := newSupervisorWith(
		func(int) (workerPipe, error) { return newFakePipe(false, true), nil },
		SupervisorConfig{
			Workers:           1,
			RestartBackoff:    50 * time.Millisecond,
			RestartBackoffMax: 200 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{})

	// Drive one request into the wedged pipe so the worker notices. The
	// reply lands before the worker books the wedge, so poll for it.
	if _, err := sup.Do(context.Background(), 0, testFrame()); !errors.Is(err, ErrWorkerRestarting) {
		t.Fatalf("wedged pipe: Do returned %v, want ErrWorkerRestarting", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sup.Stats().Wedges < 1 {
		if time.Now().After(deadline) {
			t.Fatal("wedge never booked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if ready, reason := srv.Ready(); ready || reason != "no workers running" {
		t.Errorf("Ready() = %v, %q; want false, \"no workers running\"", ready, reason)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with all workers wedged, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no workers running") {
		t.Errorf("/readyz body %q lacks the wedge reason", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `pd_worker_wedges_total{worker="0"} 1`) {
		t.Errorf("/metricsz lacks the per-worker wedge counter:\n%s", body)
	}
	if !strings.Contains(body, "pd_workers_running 0") {
		t.Errorf("/metricsz lacks pd_workers_running 0:\n%s", body)
	}
}
