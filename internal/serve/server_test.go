package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/imgproc"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
)

// pgmBody encodes the standard test frame as a request body.
func pgmBody(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := imgproc.WritePGM(&buf, testFrame()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postFrame is one raw (no-retry) detect request.
func postFrame(t *testing.T, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/detect", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// postFrameCode is the goroutine-safe variant of postFrame (no t.Fatal):
// it returns the status code, or -1 on a transport error.
func postFrameCode(url string, body []byte) int {
	resp, err := http.Post(url+"/detect", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServerOverloadShedsWith429 is acceptance scenario (b): sustained
// overload yields 429 + Retry-After while the admitted request completes,
// and the whole stack settles without leaking goroutines.
func TestServerOverloadShedsWith429(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sup, ServerConfig{Queue: 1, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	body := pgmBody(t)

	// Park the single worker inside a slow frame...
	faults.StallLevel(0, 500*time.Millisecond)
	slowDone := make(chan int, 1)
	go func() { slowDone <- postFrameCode(ts.URL, body) }()
	// ...wait until its frame is actually inside the pipeline (the
	// admission slot is held from before Submit to after the result)...
	deadline := time.Now().Add(5 * time.Second)
	for sup.Stats().Aggregate.FramesIn == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the pipeline")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// ...and overload: the queue (depth 1) is full, so these shed.
	for i := 0; i < 3; i++ {
		resp, raw := postFrame(t, ts.URL, body, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status %d (%s), want 429", i, resp.StatusCode, raw)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("overload request %d: missing Retry-After", i)
		}
	}

	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("admitted slow request finished with %d, want 200", code)
	}
	st := srv.Stats()
	if st.Shed != 3 {
		t.Errorf("shed = %d, want 3", st.Shed)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}

	// Zero goroutine leaks once everything is torn down (settling check).
	faults.Reset()
	ts.Close()
	sup.Close()
	settleGoroutines(t, baseline)
}

// TestServerBreakerTripsReadyzFailsAndProbeRecovers is acceptance scenario
// (c): the breaker trips after the configured failure run, /readyz fails
// while it is open, and a half-open probe restores service.
func TestServerBreakerTripsReadyzFailsAndProbeRecovers(t *testing.T) {
	faults := faultinject.New()
	clock := newFakeClock()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
		// Keep the error-run restart out of this test's way.
		RestartAfterErrors: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{
		Queue:          4,
		DefaultTimeout: 10 * time.Second,
		Breaker:        BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute, Now: clock.Now},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := pgmBody(t)

	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", code)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz %d before faults, want 200", code)
	}

	// Three consecutive detector failures trip the breaker.
	faults.FailLevel(0, errors.New("injected detector fault"))
	for i := 0; i < 3; i++ {
		resp, raw := postFrame(t, ts.URL, body, nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing request %d: status %d (%s), want 500", i, resp.StatusCode, raw)
		}
	}

	// Open: requests shed instantly with a Retry-After hint, readiness
	// fails so a load balancer takes the instance out of rotation.
	resp, raw := postFrame(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker request: status %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 missing Retry-After")
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d while breaker open, want 503", code)
	}

	// Cooldown passes and the fault clears: the half-open probe succeeds
	// and service is restored.
	faults.Reset()
	clock.Advance(61 * time.Second)
	resp, raw = postFrame(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe request: status %d (%s), want 200", resp.StatusCode, raw)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz %d after recovery, want 200", code)
	}

	// /statsz tells the whole story.
	statsResp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st statszResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statsz: %v", err)
	}
	if st.Breaker.State != "closed" || st.Breaker.Trips != 1 || st.Breaker.Probes != 1 || st.Breaker.Recoveries != 1 {
		t.Errorf("breaker stats %+v, want closed with trips/probes/recoveries 1/1/1", st.Breaker)
	}
	if st.Server.Failed != 3 || st.Server.BreakerRejected != 1 {
		t.Errorf("server stats %+v, want 3 failed + 1 breaker-rejected", st.Server)
	}
	if st.Supervisor.Aggregate.Errors != 3 {
		t.Errorf("supervisor aggregate errors = %d, want 3", st.Supervisor.Aggregate.Errors)
	}
}

// TestServerDeadlinePropagation: a request deadline shorter than the scan
// aborts the wait with 504 instead of blocking the client.
func TestServerDeadlinePropagation(t *testing.T) {
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Queue: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faults.StallLevel(0, 2*time.Second)
	start := time.Now()
	resp, raw := postFrame(t, ts.URL, pgmBody(t), map[string]string{"X-Deadline-Ms": "80"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("80ms-deadline request took %v", elapsed)
	}
	faults.Reset()
}

// TestServerRejectsBadInput: malformed frames and headers are 400s and do
// not count against the breaker.
func TestServerRejectsBadInput(t *testing.T) {
	sup, err := NewSupervisor(testFactory(t, nil), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Breaker: BreakerConfig{FailureThreshold: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := pgmBody(t)

	cases := []struct {
		name string
		body []byte
		hdr  map[string]string
	}{
		{"corrupt frame", []byte("P5\nnot a frame"), nil},
		{"truncated frame", faultinject.Truncate(body, len(body)/2), nil},
		{"bad stream header", body, map[string]string{"X-Stream": "abc"}},
		{"bad deadline header", body, map[string]string{"X-Deadline-Ms": "-5"}},
	}
	for _, c := range cases {
		resp, raw := postFrame(t, ts.URL, c.body, c.hdr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, raw)
		}
	}
	if resp, _ := postFrame(t, ts.URL, body, map[string]string{"X-Stream": "7"}); resp.StatusCode != http.StatusOK {
		t.Errorf("valid request after bad ones: %d, want 200 (breaker must not have tripped)", resp.StatusCode)
	}
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Errorf("readyz %d, want 200: client faults fed the breaker", got)
	}
	if resp, err := http.Get(ts.URL + "/detect"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /detect = %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServerGracefulDrain: Shutdown lets the in-flight request finish,
// fails readiness, and sheds new work with 503 while draining.
func TestServerGracefulDrain(t *testing.T) {
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Queue: 2, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := pgmBody(t)

	faults.StallLevel(0, 400*time.Millisecond)
	slowDone := make(chan int, 1)
	go func() { slowDone <- postFrameCode(ts.URL, body) }()
	deadline := time.Now().Add(5 * time.Second)
	for sup.Stats().Aggregate.FramesIn == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the pipeline")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Shutdown(ctx)
	}()
	// Draining is observable immediately.
	readyDeadline := time.Now().Add(5 * time.Second)
	for getStatus(t, ts.URL+"/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(readyDeadline) {
			t.Fatal("readyz stayed 200 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, _ := postFrame(t, ts.URL, body, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: %d, want 503", resp.StatusCode)
	}

	// The admitted request still completes, then the drain finishes clean.
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServerDrainDeadline: a drain that cannot finish in time reports the
// context error instead of hanging.
func TestServerDrainDeadline(t *testing.T) {
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Queue: 2, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faults.StallLevel(0, 3*time.Second)
	body := pgmBody(t)
	go postFrameCode(ts.URL, body)
	deadline := time.Now().Add(5 * time.Second)
	for sup.Stats().Aggregate.FramesIn == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never reached the pipeline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want wrapped deadline exceeded", err)
	}
	faults.Reset()
}
