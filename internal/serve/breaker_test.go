package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the breaker's open -> half-open transition without real
// sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Now:              clock.Now,
		OnTransition: func(from, to BreakerState) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})
	boom := errors.New("boom")

	// Failures below the threshold keep the breaker closed; a success in
	// between resets the run.
	for _, outcome := range []error{boom, boom, nil, boom, boom} {
		if _, err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected a request: %v", err)
		}
		b.Record(outcome)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v after interrupted failure runs, want closed", got)
	}

	// Third consecutive failure trips it.
	if _, err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(boom)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v after threshold run, want open", got)
	}

	// Open: rejected with the cooldown remainder as the hint.
	clock.Advance(15 * time.Second)
	retry, err := b.Allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a request (err=%v)", err)
	}
	if retry != 45*time.Second {
		t.Errorf("retry hint %v, want 45s (cooldown remainder)", retry)
	}

	// Cooldown elapses: exactly one probe goes through, concurrent
	// requests keep shedding while it is in flight.
	clock.Advance(46 * time.Second)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Failed probe re-opens immediately.
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}

	// Next cooldown, successful probe closes it.
	clock.Advance(61 * time.Second)
	if _, err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if _, err := b.Allow(); err != nil {
		t.Fatal("recovered breaker rejected a request")
	}
	b.Record(nil)

	st := b.Stats()
	if st.Trips != 2 || st.Probes != 2 || st.Recoveries != 1 {
		t.Errorf("trips/probes/recoveries = %d/%d/%d, want 2/2/1",
			st.Trips, st.Probes, st.Recoveries)
	}
	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (full: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerDefaultsAndStateString(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.FailureThreshold != 5 || b.cfg.Cooldown != 2*time.Second {
		t.Errorf("defaults = %d/%v, want 5/2s", b.cfg.FailureThreshold, b.cfg.Cooldown)
	}
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("state %d String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
