package serve

import (
	"strconv"
	"testing"
	"time"
)

// TestRetryAfterValueBoundaries pins the Retry-After rendering at its edge
// cases: the three-decimal format used to render sub-millisecond hints as
// "0.000" and negative hints as negative strings, both of which clients
// (including this package's parseRetryAfter) treat as "retry now" — the
// opposite of a backoff hint. Every rendered value must parse back as a
// strictly positive number of seconds.
func TestRetryAfterValueBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    time.Duration
		want string
	}{
		{"negative", -time.Second, "0.001"},
		{"zero", 0, "0.001"},
		{"sub-microsecond", time.Nanosecond, "0.001"},
		{"sub-millisecond", 999 * time.Microsecond, "0.001"},
		{"exactly 1ms", time.Millisecond, "0.001"},
		{"quarter second", 250 * time.Millisecond, "0.250"},
		{"one second", time.Second, "1.000"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfterValue(tc.d)
			if got != tc.want {
				t.Errorf("retryAfterValue(%v) = %q, want %q", tc.d, got, tc.want)
			}
			v, err := strconv.ParseFloat(got, 64)
			if err != nil || v <= 0 {
				t.Errorf("rendered %q must parse as a positive float (got %v, %v)", got, v, err)
			}
		})
	}
}
