package serve

import (
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestRetryAfterValueBoundaries pins the Retry-After rendering at its edge
// cases: the three-decimal format used to render sub-millisecond hints as
// "0.000" and negative hints as negative strings, both of which clients
// (including this package's parseRetryAfter) treat as "retry now" — the
// opposite of a backoff hint. Every rendered value must parse back as a
// strictly positive number of seconds.
func TestRetryAfterValueBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    time.Duration
		want string
	}{
		{"negative", -time.Second, "0.001"},
		{"zero", 0, "0.001"},
		{"sub-microsecond", time.Nanosecond, "0.001"},
		{"sub-millisecond", 999 * time.Microsecond, "0.001"},
		{"exactly 1ms", time.Millisecond, "0.001"},
		{"quarter second", 250 * time.Millisecond, "0.250"},
		{"one second", time.Second, "1.000"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfterValue(tc.d)
			if got != tc.want {
				t.Errorf("retryAfterValue(%v) = %q, want %q", tc.d, got, tc.want)
			}
			v, err := strconv.ParseFloat(got, 64)
			if err != nil || v <= 0 {
				t.Errorf("rendered %q must parse as a positive float (got %v, %v)", got, v, err)
			}
		})
	}
}

// TestParseRetryAfterHostile pins the parser against the inputs a hostile
// or merely broken server can put on the wire. strconv.ParseFloat happily
// accepts "NaN" and "Inf" — NaN passes a `< 0` guard (every comparison
// with NaN is false) and both turn into garbage durations when multiplied
// into nanoseconds — and RFC 9110's integer-seconds and HTTP-date forms
// must parse as real hints rather than silently reading as 0.
func TestParseRetryAfterHostile(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"fractional seconds", "0.250", 250 * time.Millisecond},
		{"rfc9110 integer seconds", "120", 2 * time.Minute},
		{"zero", "0", 0},
		{"NaN", "NaN", 0},
		{"negative NaN", "-NaN", 0},
		{"Inf", "Inf", 0},
		{"plus Inf", "+Inf", 0},
		{"minus Inf", "-Inf", 0},
		{"spelled infinity", "infinity", 0},
		{"negative", "-5", 0},
		{"negative fractional", "-0.5", 0},
		{"overflowing exponent", "1e309", 0},        // parses to +Inf with ErrRange
		{"huge but finite", "1e300", maxRetryAfter}, // would overflow Duration
		{"huge integer", "99999999999999999999", maxRetryAfter},
		{"garbage", "soon", 0},
		{"trailing garbage", "5s", 0},
		{"hex float", "0x1p4", 16 * time.Second}, // ParseFloat accepts it; finite and positive, so honored
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := ParseRetryAfter(tc.v); got != tc.want {
				t.Errorf("ParseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// TestParseRetryAfterHTTPDate covers the RFC 9110 HTTP-date form, which
// is relative to the local clock: a date ~10s out must yield roughly that
// wait, and a date in the past must yield 0, not a negative duration.
func TestParseRetryAfterHTTPDate(t *testing.T) {
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	got := ParseRetryAfter(future)
	// http.TimeFormat has one-second resolution and the clock advances
	// between formatting and parsing, so accept a generous bracket.
	if got < 8*time.Second || got > 10*time.Second+time.Second {
		t.Errorf("ParseRetryAfter(%q) = %v, want ~10s", future, got)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := ParseRetryAfter(past); got != 0 {
		t.Errorf("ParseRetryAfter(past date) = %v, want 0", got)
	}
	if got := ParseRetryAfter("Tue, 31 Feb 2099 00:00:00 GMT"); got != 0 {
		t.Errorf("ParseRetryAfter(invalid date) = %v, want 0", got)
	}
}

// TestBackoffClampsServerHint: the server's Retry-After hint raises the
// backoff, but never past the client's own BackoffMax — one hostile or
// buggy header must not manufacture a wait that swallows the caller's
// whole deadline (Detect would then fail every retry with "deadline too
// tight to retry" without ever retrying).
func TestBackoffClampsServerHint(t *testing.T) {
	c := NewClient("http://127.0.0.1:0", ClientConfig{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
	})
	for _, hint := range []time.Duration{
		10 * time.Hour, maxRetryAfter, time.Duration(1<<62 - 1),
	} {
		if got := c.backoff(1, hint); got > 200*time.Millisecond {
			t.Errorf("backoff(1, %v) = %v exceeds BackoffMax 200ms", hint, got)
		}
	}
	// A modest hint below the ceiling is still honored when it exceeds the
	// jittered exponential wait.
	if got := c.backoff(1, 150*time.Millisecond); got < 150*time.Millisecond {
		t.Errorf("backoff(1, 150ms) = %v, want >= the 150ms hint", got)
	}
	// And the ceiling itself still applies to the exponential ladder.
	if got := c.backoff(20, 0); got > 200*time.Millisecond {
		t.Errorf("backoff(20, 0) = %v exceeds BackoffMax 200ms", got)
	}
}
