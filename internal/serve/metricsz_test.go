package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
)

// parseExposition validates the Prometheus text format line by line:
// every non-comment line must be exactly "name_or_name{labels} value"
// with a parseable float value. Returns a full-sample-name -> value map.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: %q: want exactly 2 fields", i+1, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: %q: bad value: %v", i+1, line, err)
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricszEndToEnd is the PR's observability acceptance test: after a
// scripted run (successful frames plus an injected fault), the Prometheus
// scrape must parse cleanly, its counters must agree with the JSON
// /statsz aggregate, and the per-stage latency sums must be consistent
// with the end-to-end frame latency. /tracez must return the slowest
// frames with internally consistent spans.
func TestMetricszEndToEnd(t *testing.T) {
	faults := faultinject.New()
	m := obs.NewMetrics()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:           1,
		Pipeline:          rt.Config{Deadline: 10 * time.Second, Metrics: m},
		RestartBackoff:    10 * time.Millisecond,
		RestartBackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Metrics: m, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := pgmBody(t)

	// Scripted load: a batch of good frames, one injected detector error,
	// then more good frames (so the scrape sees successes AND a failure).
	const good = 8
	for i := 0; i < good/2; i++ {
		if code := postFrameCode(ts.URL, body); code != http.StatusOK {
			t.Fatalf("frame %d: status %d, want 200", i, code)
		}
	}
	faults.FailLevel(1, errors.New("injected pyramid fault"))
	if code := postFrameCode(ts.URL, body); code != http.StatusInternalServerError {
		t.Fatalf("faulted frame: status %d, want 500", code)
	}
	faults.Clear(1)
	for i := good / 2; i < good; i++ {
		if code := postFrameCode(ts.URL, body); code != http.StatusOK {
			t.Fatalf("frame %d: status %d, want 200", i, code)
		}
	}

	// The /statsz ground truth.
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp2, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /metricsz: status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	mm := parseExposition(t, string(raw))

	mx := func(name string) float64 {
		t.Helper()
		v, ok := mm[name]
		if !ok {
			t.Fatalf("scrape missing %s", name)
		}
		return v
	}

	// (a) HTTP counters agree with /statsz server stats.
	if got := mx("pd_http_accepted_total"); got != float64(st.Server.Accepted) {
		t.Errorf("pd_http_accepted_total = %v, statsz says %d", got, st.Server.Accepted)
	}
	if got := mx("pd_http_completed_total"); got != float64(st.Server.Completed) {
		t.Errorf("pd_http_completed_total = %v, statsz says %d", got, st.Server.Completed)
	}
	if got := mx("pd_http_failed_total"); got < 1 {
		t.Errorf("pd_http_failed_total = %v, want >= 1 (injected fault)", got)
	}

	// (b) obs frame counters agree with the supervisor aggregate. The
	// aggregate only covers live pipelines (a restarted worker's counters
	// reset) while the obs registry is cumulative, so require >=.
	agg := st.Supervisor.Aggregate
	if got := mx("pd_frames_in_total"); got < float64(agg.FramesIn) {
		t.Errorf("pd_frames_in_total = %v, aggregate says %d", got, agg.FramesIn)
	}
	out := mx("pd_frames_out_total")
	if out < float64(agg.FramesOut) {
		t.Errorf("pd_frames_out_total = %v, aggregate says %d", out, agg.FramesOut)
	}
	if out < good {
		t.Errorf("pd_frames_out_total = %v, want >= %d scanned frames", out, good)
	}
	if got := mx("pd_frame_errors_total"); got < 1 {
		t.Errorf("pd_frame_errors_total = %v, want >= 1", got)
	}

	// (c) Stage sums consistent with end-to-end frame latency: every
	// pipeline stage span nests inside its frame span, so the summed
	// stage time can never exceed the summed frame time. (decode is an
	// HTTP-layer stage recorded outside frame spans — excluded here,
	// checked in (d).)
	frameSum := mx("pd_frame_seconds_sum")
	if got := mx("pd_frame_seconds_count"); got != out {
		t.Errorf("pd_frame_seconds_count = %v, want %v (one frame span per emitted frame)", got, out)
	}
	var stageSum float64
	for _, stage := range []string{"hog_cells", "hog_norm", "pyramid", "scan", "nms"} {
		name := fmt.Sprintf("pd_stage_seconds_sum{stage=%q}", stage)
		v := mx(name)
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
		stageSum += v
	}
	if stageSum <= 0 || frameSum <= 0 {
		t.Fatalf("degenerate sums: stages %v, frames %v", stageSum, frameSum)
	}
	if stageSum > frameSum {
		t.Errorf("stage sums %.6fs exceed frame sum %.6fs: stage spans must nest inside frame spans",
			stageSum, frameSum)
	}

	// (d) HTTP-layer decode timing is present for every request that
	// parsed (recorded by the server, not the pipeline).
	if v := mx(`pd_stage_seconds_count{stage="decode"}`); v < float64(good) {
		t.Errorf("decode stage count = %v, want >= %d", v, good)
	}

	// (e) /tracez returns the slowest frames, slowest first, with spans
	// that nest inside each frame's total.
	resp3, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var tr tracezResponse
	if err := json.NewDecoder(resp3.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if len(tr.Slowest) == 0 {
		t.Fatal("/tracez returned no traces after a scripted run")
	}
	for i, f := range tr.Slowest {
		if i > 0 && f.Total > tr.Slowest[i-1].Total {
			t.Errorf("trace %d out of order: %v after %v", i, f.Total, tr.Slowest[i-1].Total)
		}
		var stages time.Duration
		for _, ns := range f.Stages {
			stages += time.Duration(ns)
		}
		if stages > f.Total {
			t.Errorf("trace seq %d: stage spans %v exceed total %v", f.Seq, stages, f.Total)
		}
	}
}
