package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// decides between closing the breaker and re-opening it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrBreakerOpen is returned by Breaker.Allow while the breaker rejects
// requests (open, or half-open with the probe slot taken).
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerConfig tunes the circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker
	// from closed to open. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe. Default 2s.
	Cooldown time.Duration
	// Now is the clock; it exists so tests can drive the open -> half-open
	// transition deterministically. Default time.Now.
	Now func() time.Time
	// OnTransition, if non-nil, is called on every state change. It runs
	// with the breaker lock held: keep it fast and do not call back into
	// the breaker.
	OnTransition func(from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerStats is a point-in-time snapshot of the breaker.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	// Trips counts closed/half-open -> open transitions, Probes the
	// half-open requests allowed through, Recoveries the half-open ->
	// closed transitions.
	Trips      uint64 `json:"trips"`
	Probes     uint64 `json:"probes"`
	Recoveries uint64 `json:"recoveries"`
}

// Breaker is a consecutive-failure circuit breaker: closed -> open after
// FailureThreshold consecutive failures, open -> half-open after Cooldown,
// half-open -> closed on a successful probe (or back to open on a failed
// one). It protects the detector workers from a sustained fault turning
// every request into a slow failure: while open, callers shed instantly
// with a retry hint instead of queueing up behind a broken detector.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips, probes, recoveries uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// transition moves the breaker to a new state (caller holds mu).
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// Allow reports whether a request may proceed. When it returns
// ErrBreakerOpen, retryAfter is how long the caller should wait before
// trying again. A nil error means the request is admitted and its outcome
// MUST be reported through Record — in the half-open state the admitted
// request is the probe, and the probe slot stays taken until Record runs.
func (b *Breaker) Allow() (retryAfter time.Duration, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return 0, nil
	case BreakerOpen:
		if wait := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt); wait > 0 {
			return wait, ErrBreakerOpen
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		b.probes++
		return 0, nil
	default: // BreakerHalfOpen
		if b.probing {
			return b.cfg.Cooldown, ErrBreakerOpen
		}
		b.probing = true
		b.probes++
		return 0, nil
	}
}

// Record reports the outcome of a request admitted by Allow; err == nil is
// a success. A success closes a half-open breaker and resets the failure
// run; a failure re-opens a half-open breaker immediately and trips a
// closed one once the run reaches the threshold.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	if err == nil {
		b.fails = 0
		if b.state == BreakerHalfOpen {
			b.recoveries++
			b.transition(BreakerClosed)
		}
		return
	}
	b.fails++
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = b.cfg.Now()
		b.trips++
		b.transition(BreakerOpen)
	case BreakerClosed:
		if b.fails >= b.cfg.FailureThreshold {
			b.openedAt = b.cfg.Now()
			b.trips++
			b.transition(BreakerOpen)
		}
	}
}

// State returns the current state, resolving an elapsed open cooldown the
// same way Allow would (an open breaker past its cooldown reads as open
// until a request actually probes it; readiness checks want the raw state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Trips:               b.trips,
		Probes:              b.probes,
		Recoveries:          b.recoveries,
	}
}
