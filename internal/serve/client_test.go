package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rt"
)

// TestClientRetriesTransientThenSucceeds: 429 and 503 are retried with the
// server's Retry-After hint; the third attempt lands.
func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0.005")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "admission queue full"})
		case 2:
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "circuit breaker open"})
		default:
			if got := r.Header.Get("X-Stream"); got != "9" {
				t.Errorf("X-Stream = %q, want 9", got)
			}
			if r.Header.Get("X-Deadline-Ms") == "" {
				t.Error("missing X-Deadline-Ms on a deadlined context")
			}
			writeJSON(w, http.StatusOK, DetectResponse{
				Stream:     9,
				Detections: []Detection{{X: 1, Y: 2, W: 3, H: 4, Score: 0.5}},
			})
		}
	}))
	defer ts.Close()

	var retried []int
	c := NewClient(ts.URL, ClientConfig{
		MaxAttempts: 4,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		OnRetry:     func(attempt int, wait time.Duration, cause error) { retried = append(retried, attempt) },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dets, err := c.Detect(ctx, 9, testFrame())
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
	if c.Retries() != 2 {
		t.Errorf("Retries() = %d, want 2", c.Retries())
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retried)
	}
	if len(dets) != 1 || dets[0].Box != geom.XYWH(1, 2, 3, 4) || dets[0].Score != 0.5 {
		t.Errorf("detections = %+v, want one box (1,2,3,4)@0.5", dets)
	}
}

// TestClientPermanentFailureNotRetried: 4xx is the caller's fault — one
// attempt, typed error.
func TestClientPermanentFailureNotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad PGM frame"})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 5, BackoffBase: time.Millisecond})
	_, err := c.Detect(context.Background(), 0, testFrame())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError with status 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent failure)", calls.Load())
	}
	if c.Retries() != 0 {
		t.Errorf("Retries() = %d, want 0", c.Retries())
	}
}

// TestClientHonoursEndToEndDeadline: a server that never recovers cannot
// make the client overstay its context budget.
func TestClientHonoursEndToEndDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0.020")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "circuit breaker open"})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, ClientConfig{
		MaxAttempts: 100,
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Detect(ctx, 0, testFrame())
	if err == nil {
		t.Fatal("Detect succeeded against a permanently unavailable server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Detect overstayed its 150ms budget by far: %v", elapsed)
	}
	if c.Retries() == 0 {
		t.Error("client never retried before giving up")
	}
}

// TestClientAttemptsExhausted: transient failures stop after MaxAttempts.
func TestClientAttemptsExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
	}))
	defer ts.Close()
	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	_, err := c.Detect(context.Background(), 0, testFrame())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("err = %v, want wrapped 504 APIError", err)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
}

// TestClientRetriesNetworkErrors: a dead endpoint is a transient failure.
func TestClientRetriesNetworkErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // connection refused from here on
	c := NewClient(ts.URL, ClientConfig{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if _, err := c.Detect(context.Background(), 0, testFrame()); err == nil {
		t.Fatal("Detect succeeded against a closed endpoint")
	}
	if c.Retries() != 1 {
		t.Errorf("Retries() = %d, want 1", c.Retries())
	}
}

// TestClientServerRoundTrip drives the real stack end to end: client ->
// HTTP -> admission -> breaker -> supervisor -> rt pipeline -> detector,
// and back through the JSON wire format.
func TestClientServerRoundTrip(t *testing.T) {
	sup, err := NewSupervisor(testFactory(t, nil), SupervisorConfig{
		Workers:  2,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, ClientConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for stream := 0; stream < 4; stream++ {
		dets, err := c.Detect(ctx, stream, testFrame())
		if err != nil {
			t.Fatalf("stream %d: %v", stream, err)
		}
		if len(dets) != 0 {
			t.Errorf("stream %d: %d detections from the zero model, want 0", stream, len(dets))
		}
	}
	st := sup.Stats()
	if st.Aggregate.FramesOut != 4 {
		t.Errorf("aggregate frames out = %d, want 4", st.Aggregate.FramesOut)
	}
	// Streams 0/2 pin to worker 0, streams 1/3 to worker 1.
	if st.Workers[0].Pipeline.FramesOut != 2 || st.Workers[1].Pipeline.FramesOut != 2 {
		t.Errorf("per-worker frames out = %d/%d, want 2/2",
			st.Workers[0].Pipeline.FramesOut, st.Workers[1].Pipeline.FramesOut)
	}
	var resp DetectResponse
	raw, _ := json.Marshal(DetectResponse{Stream: 1, Detections: []Detection{{X: 1, Y: 2, W: 3, H: 4, Score: 0.25}}})
	if err := json.Unmarshal(raw, &resp); err != nil || len(resp.Detections) != 1 {
		t.Errorf("wire format round trip failed: %v %+v", err, resp)
	}
}
