package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/imgproc"
	"repro/internal/rt"
	"repro/internal/rt/faultinject"
	"repro/internal/svm"
)

// testFactory builds per-worker detectors with a synthetic all-zero model
// (every window scores the bias, 0, below the threshold — the behaviour
// under test is supervision, not accuracy). faultsFor lets a test inject
// faults into specific workers only; a restarted worker re-installs its
// fault probe, so tests control recovery through faults.Reset. The 128x256
// frame yields a 3-level feature pyramid at step 1.3 (absolute levels
// 0, 1, 2).
func testFactory(t testing.TB, faultsFor map[int]*faultinject.Faults) DetectorFactory {
	t.Helper()
	return func(worker int) (*core.Detector, error) {
		cfg := core.DefaultConfig()
		cfg.Mode = core.FeaturePyramid
		cfg.ScaleStep = 1.3
		cfg.Workers = 1
		if f := faultsFor[worker]; f != nil {
			cfg.LevelProbe = f.Probe
		}
		model := &svm.Model{W: make([]float64, cfg.DescriptorLen())}
		return core.NewDetector(model, cfg)
	}
}

func testFrame() *imgproc.Gray { return imgproc.NewGray(128, 256) }

// settleGoroutines polls until the goroutine count drops back to the
// baseline — supervisor workers and pipeline goroutines unwind
// asynchronously after Close.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerPanicRestartsWhileOthersServe is acceptance scenario (a): a
// panic kills one worker, the supervisor restarts it with backoff, and the
// other stream keeps serving the whole time.
func TestWorkerPanicRestartsWhileOthersServe(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:           2,
		Pipeline:          rt.Config{Deadline: 10 * time.Second},
		RestartBackoff:    20 * time.Millisecond,
		RestartBackoffMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	frame := testFrame()

	// Both streams healthy at startup.
	for stream := 0; stream < 2; stream++ {
		if _, err := sup.Do(ctx, stream, frame); err != nil {
			t.Fatalf("stream %d healthy frame: %v", stream, err)
		}
	}

	// Poison worker 0: its next frame panics and the supervisor must
	// treat the worker as killed.
	faults.PanicLevel(1, "injected worker kill")
	_, err = sup.Do(ctx, 0, frame)
	var pe *rt.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("poisoned stream 0 returned %v, want *rt.PanicError", err)
	}

	// Stream 1 keeps serving while worker 0 is down/restarting.
	for i := 0; i < 5; i++ {
		if _, err := sup.Do(ctx, 1, frame); err != nil {
			t.Fatalf("stream 1 frame %d failed during worker 0 restart: %v", i, err)
		}
	}

	// Clear the fault; worker 0 must come back after its backoff. While it
	// is down, requests fail fast with ErrWorkerRestarting (or panic again
	// if an incarnation raced the Reset) instead of hanging.
	faults.Reset()
	recoverDeadline := time.Now().Add(15 * time.Second)
	for {
		_, err := sup.Do(ctx, 0, frame)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrWorkerRestarting) && !errors.As(err, &pe) {
			t.Fatalf("stream 0 during restart: unexpected error %v", err)
		}
		if time.Now().After(recoverDeadline) {
			t.Fatalf("worker 0 did not recover; last error: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := sup.Stats()
	if st.Workers[0].Restarts < 1 {
		t.Errorf("worker 0 restarts = %d, want >= 1", st.Workers[0].Restarts)
	}
	if st.Workers[1].Restarts != 0 {
		t.Errorf("worker 1 restarts = %d, want 0 (fault must stay confined)", st.Workers[1].Restarts)
	}
	if st.Aggregate.Panics < 1 {
		t.Errorf("aggregate panics = %d, want >= 1", st.Aggregate.Panics)
	}
	if st.Workers[0].State != "running" {
		t.Errorf("worker 0 state %q after recovery, want running", st.Workers[0].State)
	}

	sup.Close()
	sup.Close() // idempotent
	settleGoroutines(t, baseline)
}

// TestPoisonedStreamRestartsWorker: a run of consecutive failures (no
// panic) also restarts the worker — from the outside a stream whose every
// frame errors is indistinguishable from a wedged worker.
func TestPoisonedStreamRestartsWorker(t *testing.T) {
	faults := faultinject.New()
	injected := errors.New("injected scan failure")
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:            1,
		Pipeline:           rt.Config{Deadline: 10 * time.Second},
		RestartBackoff:     10 * time.Millisecond,
		RestartBackoffMax:  50 * time.Millisecond,
		RestartAfterErrors: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	ctx := context.Background()
	frame := testFrame()

	faults.FailLevel(0, injected)
	for i := 0; i < 3; i++ {
		_, err := sup.Do(ctx, 0, frame)
		if !errors.Is(err, injected) {
			t.Fatalf("frame %d: got %v, want injected failure", i, err)
		}
	}
	// The third consecutive failure restarts the worker.
	deadline := time.Now().Add(10 * time.Second)
	for sup.Stats().Workers[0].Restarts < 1 {
		if time.Now().After(deadline) {
			t.Fatal("consecutive-failure run did not restart the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	faults.Reset()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, err := sup.Do(ctx, 0, frame); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker did not recover after poisoned stream cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBackoffDelayDoublesAndCaps pins the restart backoff ladder.
func TestBackoffDelayDoublesAndCaps(t *testing.T) {
	base, max := 50*time.Millisecond, 400*time.Millisecond
	want := []time.Duration{
		50 * time.Millisecond,  // n=1
		100 * time.Millisecond, // n=2
		200 * time.Millisecond, // n=3
		400 * time.Millisecond, // n=4
		400 * time.Millisecond, // n=5 capped
		400 * time.Millisecond, // n=50 capped (no overflow)
	}
	for i, n := range []int{1, 2, 3, 4, 5, 50} {
		if got := backoffDelay(n, base, max); got != want[i] {
			t.Errorf("backoffDelay(%d) = %v, want %v", n, got, want[i])
		}
	}
	if got := backoffDelay(0, base, max); got != base {
		t.Errorf("backoffDelay(0) = %v, want clamped to base %v", got, base)
	}
}

// TestSupervisorCloseAbortsInflightScan: Close must not wait out a slow
// frame — it cancels the scan through the pipeline context.
func TestSupervisorCloseAbortsInflightScan(t *testing.T) {
	baseline := runtime.NumGoroutine()
	faults := faultinject.New()
	sup, err := NewSupervisor(testFactory(t, map[int]*faultinject.Faults{0: faults}), SupervisorConfig{
		Workers:  1,
		Pipeline: rt.Config{Deadline: 10 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	faults.StallLevel(0, 10*time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// The request abandons at its deadline; the scan is still in flight.
	if _, err := sup.Do(ctx, 0, testFrame()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled request returned %v, want deadline exceeded", err)
	}
	start := time.Now()
	sup.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v with a stalled scan in flight", elapsed)
	}
	settleGoroutines(t, baseline)
}

// TestStreamPinning: stream IDs (including negatives) map stably onto
// workers.
func TestStreamPinning(t *testing.T) {
	sup, err := NewSupervisor(testFactory(t, nil), SupervisorConfig{
		Workers:  3,
		Pipeline: rt.Config{Deadline: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 0, 7: 1, -1: 2, -3: 0}
	for stream, want := range cases {
		if got := sup.workerFor(stream); got != want {
			t.Errorf("workerFor(%d) = %d, want %d", stream, got, want)
		}
	}
}
