package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/imgproc"
)

// ClientConfig tunes the retrying client.
type ClientConfig struct {
	// MaxAttempts is the total number of tries per Detect call (first
	// attempt included). Default 4.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff: attempt
	// n waits base * 2^(n-1) capped at max, jittered over [d/2, d]. A
	// server Retry-After hint raises the wait when it is longer, but never
	// past BackoffMax (a hostile header must not defeat the retry policy).
	// Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HTTPClient is the transport; default a plain &http.Client{} (the
	// per-call context carries the end-to-end deadline, so no client-level
	// timeout is set).
	HTTPClient *http.Client
	// OnRetry, if non-nil, is called before each retry sleep with the
	// attempt just failed (1-based), the wait about to be taken, and the
	// transient failure that caused it.
	OnRetry func(attempt int, wait time.Duration, cause error)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = 2 * time.Second
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's retry hint, when it sent one.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// Transient reports whether the failure is worth retrying: load shed (429),
// unavailable (503), or timed out upstream (504).
func (e *APIError) Transient() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Client calls a Server with retry-on-transient semantics: 429/503/504 and
// network errors are retried with capped exponential backoff plus jitter
// (honouring the server's Retry-After hint when it is longer), all under
// the end-to-end deadline of the caller's context. Permanent failures
// (4xx, 500) return immediately.
type Client struct {
	base string
	cfg  ClientConfig

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Uint64
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string, cfg ClientConfig) *Client {
	return &Client{
		base: baseURL,
		cfg:  cfg.withDefaults(),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Retries returns the total number of retried attempts across all calls.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// backoff returns the jittered wait before retrying after attempt n
// (1-based), raised to the server's hint when that is longer — but never
// past BackoffMax. The hint arrives off the wire, so an arbitrarily large
// (or hostile) Retry-After taken verbatim would turn one bad header into
// a wait that outlives any reasonable deadline — Detect then reports
// "deadline too tight to retry" without ever retrying. The configured
// ceiling is the client owner's word against the server's.
func (c *Client) backoff(n int, hint time.Duration) time.Duration {
	d := backoffDelay(n, c.cfg.BackoffBase, c.cfg.BackoffMax)
	half := d / 2
	c.mu.Lock()
	d = half + time.Duration(c.rng.Int63n(int64(half)+1))
	c.mu.Unlock()
	if hint > c.cfg.BackoffMax {
		hint = c.cfg.BackoffMax
	}
	if hint > d {
		d = hint
	}
	return d
}

// Detect runs one frame of the given stream through the server and returns
// the detections. The context is the end-to-end budget: it bounds every
// attempt and every backoff sleep, and each attempt forwards the remaining
// budget to the server as its X-Deadline-Ms.
func (c *Client) Detect(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	if frame == nil {
		return nil, errors.New("serve: nil frame")
	}
	var body bytes.Buffer
	if err := imgproc.WritePGM(&body, frame); err != nil {
		return nil, fmt.Errorf("serve: encoding frame: %w", err)
	}
	payload := body.Bytes()

	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, c.deadlineError(err, lastErr)
		}
		dets, retryAfter, err := c.attempt(ctx, stream, payload)
		if err == nil {
			return dets, nil
		}
		lastErr = err
		if !transient(err) {
			return nil, err
		}
		if attempt == c.cfg.MaxAttempts {
			break
		}
		wait := c.backoff(attempt, retryAfter)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < wait {
			// The backoff would outlive the budget; report the transient
			// failure rather than sleeping into a guaranteed deadline.
			return nil, fmt.Errorf("serve: deadline too tight to retry: %w", lastErr)
		}
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(attempt, wait, err)
		}
		c.retries.Add(1)
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, c.deadlineError(ctx.Err(), lastErr)
		}
		t.Stop()
	}
	return nil, fmt.Errorf("serve: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// deadlineError wraps a context error with the last transient failure so
// the caller sees why the budget ran out.
func (c *Client) deadlineError(ctxErr, lastErr error) error {
	if lastErr != nil {
		return fmt.Errorf("serve: %w (last failure: %v)", ctxErr, lastErr)
	}
	return ctxErr
}

// transient reports whether an attempt failure is retryable: a transient
// APIError or a transport-level error (the request never completed).
func transient(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Transient()
	}
	// Context expiry is terminal, anything else transport-level is worth
	// a retry.
	return !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
}

// attempt is one HTTP round trip.
func (c *Client) attempt(ctx context.Context, stream int, payload []byte) ([]eval.Detection, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/detect", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Stream", strconv.Itoa(stream))
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := readErrorMessage(resp.Body)
		return nil, ParseRetryAfter(resp.Header.Get("Retry-After")), &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: ParseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	var dr DetectResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&dr); err != nil {
		return nil, 0, fmt.Errorf("serve: decoding response: %w", err)
	}
	dets := make([]eval.Detection, 0, len(dr.Detections))
	for _, d := range dr.Detections {
		dets = append(dets, eval.Detection{Box: geom.XYWH(d.X, d.Y, d.W, d.H), Score: d.Score})
	}
	return dets, 0, nil
}

// readErrorMessage extracts the error string from a JSON error body,
// falling back to the raw text.
func readErrorMessage(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var er errorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return er.Error
	}
	return string(bytes.TrimSpace(raw))
}

// maxRetryAfter caps a parsed Retry-After hint. The header is an unsigned
// unauthenticated suggestion from the network: a hostile or buggy server
// can send "1e300" (finite, so it parses) and a naive float-to-Duration
// conversion overflows into garbage. One day is far beyond any retry
// horizon this client serves; Client.backoff additionally clamps the hint
// to its own BackoffMax.
const maxRetryAfter = 24 * time.Hour

// ParseRetryAfter reads a Retry-After header in any of the forms this
// stack meets: this server's fractional seconds ("0.250"), RFC 9110
// delay-seconds ("120"), and the RFC 9110 HTTP-date form (the remaining
// wait is measured against the local clock). Unparseable, non-finite
// (NaN/Inf pass strconv.ParseFloat but are not durations), negative, or
// already-elapsed hints return 0 — "no hint" — and anything huge clamps
// to maxRetryAfter, so a hostile header can never manufacture an
// overflowed or unbounded backoff. Exported for callers that layer their
// own retry policy over this package's wire contract (internal/gateway).
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if math.IsNaN(secs) || math.IsInf(secs, 0) || secs < 0 {
			return 0
		}
		if secs > maxRetryAfter.Seconds() {
			return maxRetryAfter
		}
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d <= 0 {
			return 0
		}
		if d > maxRetryAfter {
			return maxRetryAfter
		}
		return d
	}
	return 0
}
