package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatszReportsCascade pins the observability surface of the
// early-rejection cascade: once the scan has folded counters into the
// shared registry, /statsz grows a cascade block whose numbers match the
// registry, and /metricsz exposes the totals, the per-stage rejection
// counters, and the mean-blocks gauge. A registry with no cascade traffic
// must render neither (the block and the gauge are meaningless at zero).
func TestStatszReportsCascade(t *testing.T) {
	m := obs.NewMetrics()
	// Simulate what two scan shards fold in: 100 windows, 10 accepted,
	// rejections after stages 1 and 3, 420 blocks evaluated in total.
	m.CascadeWindows.Add(100)
	m.CascadeAccepted.Add(10)
	m.CascadeBlocks.Add(420)
	m.CascadeStageRejects[0].Add(70)
	m.CascadeStageRejects[2].Add(20)

	sup, err := newSupervisorWith(
		func(int) (workerPipe, error) { return newFakePipe(false, false), nil },
		SupervisorConfig{
			Workers:           1,
			RestartBackoff:    50 * time.Millisecond,
			RestartBackoffMax: 200 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	srv := NewServer(sup, ServerConfig{Metrics: m})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statsz = %d", rec.Code)
	}
	var st statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cascade == nil {
		t.Fatalf("/statsz has no cascade block:\n%s", rec.Body.String())
	}
	if st.Cascade.Windows != 100 || st.Cascade.Accepted != 10 || st.Cascade.Blocks != 420 {
		t.Errorf("cascade stats %+v", st.Cascade)
	}
	if st.Cascade.MeanBlocks != 4.2 {
		t.Errorf("mean blocks %v, want 4.2", st.Cascade.MeanBlocks)
	}
	// Trimmed at the last nonzero stage: stages 0..2, with stage 1 zero.
	if len(st.Cascade.StageRejects) != 3 ||
		st.Cascade.StageRejects[0] != 70 || st.Cascade.StageRejects[1] != 0 || st.Cascade.StageRejects[2] != 20 {
		t.Errorf("stage rejects %v", st.Cascade.StageRejects)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"pd_cascade_windows_total 100",
		"pd_cascade_accepted_total 10",
		"pd_cascade_blocks_evaluated_total 420",
		`pd_cascade_stage_rejects_total{stage="0"} 70`,
		`pd_cascade_stage_rejects_total{stage="2"} 20`,
		"pd_cascade_mean_blocks_evaluated 4.2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q:\n%s", want, body)
		}
	}
	// Zero stages are not rendered (the label space stays small).
	if strings.Contains(body, `stage="1"`) {
		t.Errorf("/metricsz renders an all-zero stage:\n%s", body)
	}

	// A quiet registry renders no cascade surface at all.
	quiet := NewServer(sup, ServerConfig{Metrics: obs.NewMetrics()})
	rec = httptest.NewRecorder()
	quiet.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var st2 statszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Cascade != nil {
		t.Errorf("quiet registry still reports cascade: %+v", st2.Cascade)
	}
	rec = httptest.NewRecorder()
	quiet.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metricsz", nil))
	if strings.Contains(rec.Body.String(), "pd_cascade_mean_blocks_evaluated") {
		t.Error("quiet registry renders the mean-blocks gauge")
	}
}
