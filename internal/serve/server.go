package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/imgproc"
	"repro/internal/obs"
	"repro/internal/rt"
)

// ServerConfig tunes the HTTP serving layer.
type ServerConfig struct {
	// Queue bounds the number of admitted /detect requests in flight
	// (waiting for a worker plus being scanned). Beyond it requests are
	// load-shed with 429 + Retry-After instead of queueing without bound —
	// under sustained overload a bounded queue keeps latency flat while an
	// unbounded one turns every request into a timeout. Default 16.
	Queue int
	// DefaultTimeout is the per-request deadline when the client sends no
	// X-Deadline-Ms header. Default 2s.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps the uploaded frame size. Default 32 MiB (an HDTV
	// PGM is ~2 MB).
	MaxBodyBytes int64
	// RetryAfter is the hint returned with 429 (and with 503 when the
	// breaker gives no cooldown remainder). Default 500ms.
	RetryAfter time.Duration
	// Breaker configures the per-detector circuit breaker guarding the
	// supervisor.
	Breaker BreakerConfig
	// Metrics, if non-nil, is the observability registry rendered by
	// GET /metricsz and GET /tracez. Point it at the same *obs.Metrics the
	// supervisor's pipelines record into (SupervisorConfig.Pipeline.Metrics)
	// so stage histograms, frame traces, and HTTP-layer counters come out
	// of one scrape. The server additionally records PGM decode time into
	// its StageDecode histogram. nil serves the HTTP counters only.
	Metrics *obs.Metrics
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	return c
}

// ServerStats is a snapshot of the server-level counters.
type ServerStats struct {
	// Accepted counts requests admitted past the queue and the breaker;
	// Shed the 429 load-shed rejections; BreakerRejected the 503 breaker
	// rejections; Completed/Failed the outcomes of accepted requests
	// (rejections count in neither); Draining whether the server is
	// shutting down.
	Accepted        uint64 `json:"accepted"`
	Shed            uint64 `json:"shed"`
	BreakerRejected uint64 `json:"breaker_rejected"`
	Completed       uint64 `json:"completed"`
	Failed          uint64 `json:"failed"`
	Draining        bool   `json:"draining"`
}

// Detection is the JSON wire form of one detection box.
type Detection struct {
	X     int     `json:"x"`
	Y     int     `json:"y"`
	W     int     `json:"w"`
	H     int     `json:"h"`
	Score float64 `json:"score"`
}

// DetectResponse is the JSON body of a successful POST /detect.
type DetectResponse struct {
	Stream     int         `json:"stream"`
	Detections []Detection `json:"detections"`
}

// errorResponse is the JSON body of a failed request.
type errorResponse struct {
	Error string `json:"error"`
}

// statszResponse is the JSON body of GET /statsz.
type statszResponse struct {
	Server     ServerStats     `json:"server"`
	Breaker    BreakerStats    `json:"breaker"`
	Supervisor SupervisorStats `json:"supervisor"`
	// Cascade reports the early-rejection scorer's counters (windows,
	// accepted, blocks evaluated, per-stage rejects); present only when the
	// server carries a metrics registry and the cascade has seen traffic.
	Cascade *obs.CascadeStats `json:"cascade,omitempty"`
	// ROI reports the temporal scan scheduler's counters (restricted and
	// cadence full scans, regions, pipelines at an ROI rung); present only
	// when the server carries a metrics registry and the scheduler has
	// planned at least one frame.
	ROI *obs.ROIStats `json:"roi,omitempty"`
}

// Server is the HTTP front of a Supervisor.
//
// Endpoint contract:
//
//	POST /detect   body: binary PGM (P5) frame.
//	               headers: X-Stream (int, default 0) pins the request to a
//	               worker; X-Deadline-Ms (int) bounds the request.
//	               200: DetectResponse JSON. 400: bad frame. 429: admission
//	               queue full, Retry-After set. 503: breaker open, worker
//	               restarting, or draining, Retry-After set. 504: deadline
//	               exceeded. 500: detector fault.
//	GET  /healthz  200 while the process is alive (liveness).
//	GET  /readyz   200 when serving; 503 while the breaker is open, the
//	               server is draining, or no worker has a live non-wedged
//	               pipeline (readiness — take it out of rotation).
//	GET  /statsz   statszResponse JSON: server, breaker, supervisor stats.
//	GET  /metricsz Prometheus text exposition: the obs registry (stage and
//	               frame latency summaries, pipeline counters) when
//	               ServerConfig.Metrics is set, plus HTTP admission,
//	               breaker, and per-worker restart counters always.
//	GET  /tracez   tracezResponse JSON: the slowest frames retained by the
//	               trace ring, slowest first (empty without Metrics).
//
// Retry-After values carry fractional seconds (e.g. "0.250"); integer-
// second parsers read them as a standard hint after truncation.
type Server struct {
	cfg     ServerConfig
	sup     *Supervisor
	breaker *Breaker
	mux     *http.ServeMux

	sem chan struct{} // admission queue slots

	mu        sync.Mutex
	inflight  int
	draining  bool
	accepted  uint64
	shed      uint64
	rejected  uint64
	completed uint64
	failed    uint64
}

// NewServer wraps a supervisor. The caller keeps ownership of the
// supervisor (close it after the server has drained).
func NewServer(sup *Supervisor, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		sup:     sup,
		breaker: NewBreaker(cfg.Breaker),
		sem:     make(chan struct{}, cfg.Queue),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/detect", s.handleDetect)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/tracez", s.handleTracez)
	return s
}

// Handler returns the HTTP handler serving the endpoint contract above.
func (s *Server) Handler() http.Handler { return s.mux }

// Breaker exposes the server's circuit breaker (for transition logging).
func (s *Server) Breaker() *Breaker { return s.breaker }

// Stats returns the server-level counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		Accepted:        s.accepted,
		Shed:            s.shed,
		BreakerRejected: s.rejected,
		Completed:       s.completed,
		Failed:          s.failed,
		Draining:        s.draining,
	}
}

// beginRequest registers an in-flight request (for the drain counter)
// unless the server is draining.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// endRequest retires an in-flight request. Only admitted requests (past
// the queue and the breaker) count toward completed/failed — shed and
// breaker-rejected requests are tallied by their own counters.
func (s *Server) endRequest(admitted bool, err error) {
	s.mu.Lock()
	s.inflight--
	if admitted {
		if err == nil {
			s.completed++
		} else {
			s.failed++
		}
	}
	s.mu.Unlock()
}

// Shutdown drains the server: new /detect requests are refused with 503
// (and /readyz fails) while requests already admitted run to completion.
// It returns nil once the last in-flight request finished, or the context
// error if the drain deadline expired first. The supervisor is left
// running; close it after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain incomplete, %d requests in flight: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

// retryAfterValue renders a Retry-After header with fractional seconds.
// The rendered value is clamped to a 1 ms floor: the three-decimal format
// turns any shorter (or zero, or negative) hint into "0.000" — or a
// negative string — which clients round to "retry immediately" and hammer
// the server with, defeating the backoff the header exists to provide.
func retryAfterValue(d time.Duration) string {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeUnavailable(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	w.Header().Set("Retry-After", retryAfterValue(retryAfter))
	writeJSON(w, status, errorResponse{Error: msg})
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a PGM frame"})
		return
	}
	if !s.beginRequest() {
		s.writeUnavailable(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, "draining")
		return
	}
	var reqErr error
	admitted := false
	defer func() { s.endRequest(admitted, reqErr) }()

	// Admission: a full queue sheds immediately — the client's retry with
	// backoff is the system's flow control.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.mu.Lock()
		s.shed++
		s.mu.Unlock()
		reqErr = errors.New("shed")
		s.writeUnavailable(w, http.StatusTooManyRequests, s.cfg.RetryAfter, "admission queue full")
		return
	}

	// Circuit breaker: while the detector is known-broken, fail fast with
	// the cooldown remainder as the retry hint.
	if retryAfter, err := s.breaker.Allow(); err != nil {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		reqErr = err
		s.writeUnavailable(w, http.StatusServiceUnavailable, retryAfter, "circuit breaker open")
		return
	}
	admitted = true
	s.mu.Lock()
	s.accepted++
	s.mu.Unlock()

	stream := 0
	if v := r.Header.Get("X-Stream"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			reqErr = err
			s.breaker.Record(nil) // client fault, not a detector failure
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad X-Stream: " + err.Error()})
			return
		}
		stream = n
	}
	timeout := s.cfg.DefaultTimeout
	if v := r.Header.Get("X-Deadline-Ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			reqErr = fmt.Errorf("bad X-Deadline-Ms %q", v)
			s.breaker.Record(nil)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: reqErr.Error()})
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}

	decode0 := time.Now()
	frame, err := imgproc.ReadPGM(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if m := s.cfg.Metrics; m != nil && err == nil {
		// Decode is recorded straight into the shared stage histogram (it
		// is atomic); the per-frame trace stages come from the pipeline's
		// recorder and therefore do not include decode.
		m.Stage[obs.StageDecode].Observe(time.Since(decode0))
	}
	if err != nil {
		reqErr = err
		s.breaker.Record(nil) // corrupt upload is the client's fault
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad PGM frame: " + err.Error()})
		return
	}

	// Deadline propagation: the request context (cancelled when the client
	// goes away) bounded by the per-request budget.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	dets, err := s.sup.Do(ctx, stream, frame)
	reqErr = err

	// Client disconnects are not detector failures; everything else an
	// admitted request observes feeds the breaker.
	if errors.Is(err, context.Canceled) {
		s.breaker.Record(nil)
	} else {
		s.breaker.Record(err)
	}

	switch {
	case err == nil:
		resp := DetectResponse{Stream: stream, Detections: make([]Detection, 0, len(dets))}
		for _, d := range dets {
			resp.Detections = append(resp.Detections, Detection{
				X: d.Box.Min.X, Y: d.Box.Min.Y, W: d.Box.W(), H: d.Box.H(), Score: d.Score,
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrWorkerRestarting), errors.Is(err, ErrSupervisorClosed):
		s.writeUnavailable(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, err.Error())
	case errors.Is(err, rt.ErrHung):
		// The frame's scan hung and its worker is being torn down and
		// rebuilt; retry lands on the fresh incarnation (or sheds).
		s.writeUnavailable(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
	case errors.Is(err, context.Canceled):
		// Client went away; the status code is moot but 499-style closure
		// needs some answer for conforming middleware.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "request cancelled"})
	default:
		var pe *rt.PanicError
		if errors.As(err, &pe) {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "detector panic: " + pe.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Ready reports whether the server would pass its readiness probe, and the
// reason when it would not: draining, breaker open, or every worker
// pipeline dead (restarting) or wedged. It is the programmatic form of
// GET /readyz, shared with the chaos harness's recovery-SLO checker.
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		return false, "draining"
	case s.breaker.State() == BreakerOpen:
		return false, "circuit breaker open"
	case s.sup.Running() == 0:
		return false, "no workers running"
	default:
		return true, ""
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ready, reason := s.Ready(); !ready {
		s.writeUnavailable(w, http.StatusServiceUnavailable, s.cfg.RetryAfter, reason)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		Server:     s.Stats(),
		Breaker:    s.breaker.Stats(),
		Supervisor: s.sup.Stats(),
	}
	if m := s.cfg.Metrics; m != nil {
		if cs := m.CascadeSnapshot(); cs.Windows > 0 {
			resp.Cascade = &cs
		}
		if rs := m.ROISnapshot(); rs.Scans+rs.FullScans > 0 {
			resp.ROI = &rs
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetricsz renders the Prometheus text scrape: the shared obs
// registry first (when configured), then the HTTP admission, breaker, and
// supervisor counters, which exist regardless of the registry.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if m := s.cfg.Metrics; m != nil {
		m.WritePrometheus(w, "pd")
	}
	st := s.Stats()
	for _, c := range [...]struct {
		name string
		v    uint64
	}{
		{"pd_http_accepted_total", st.Accepted},
		{"pd_http_shed_total", st.Shed},
		{"pd_http_breaker_rejected_total", st.BreakerRejected},
		{"pd_http_completed_total", st.Completed},
		{"pd_http_failed_total", st.Failed},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		obs.WriteCounterLine(w, c.name, "", c.v)
	}
	bs := s.breaker.Stats()
	fmt.Fprintf(w, "# TYPE pd_breaker_trips_total counter\n")
	obs.WriteCounterLine(w, "pd_breaker_trips_total", "", bs.Trips)
	fmt.Fprintf(w, "# TYPE pd_breaker_probes_total counter\n")
	obs.WriteCounterLine(w, "pd_breaker_probes_total", "", bs.Probes)
	fmt.Fprintf(w, "# TYPE pd_breaker_recoveries_total counter\n")
	obs.WriteCounterLine(w, "pd_breaker_recoveries_total", "", bs.Recoveries)
	fmt.Fprintf(w, "# TYPE pd_breaker_open gauge\n")
	open := 0.0
	if s.breaker.State() == BreakerOpen {
		open = 1
	}
	obs.WriteGaugeLine(w, "pd_breaker_open", "", open)
	sup := s.sup.Stats()
	fmt.Fprintf(w, "# TYPE pd_worker_restarts_total counter\n")
	for _, ws := range sup.Workers {
		obs.WriteCounterLine(w, "pd_worker_restarts_total", fmt.Sprintf("worker=%q", strconv.Itoa(ws.ID)), ws.Restarts)
	}
	fmt.Fprintf(w, "# TYPE pd_worker_wedges_total counter\n")
	for _, ws := range sup.Workers {
		obs.WriteCounterLine(w, "pd_worker_wedges_total", fmt.Sprintf("worker=%q", strconv.Itoa(ws.ID)), ws.Wedges)
	}
	fmt.Fprintf(w, "# TYPE pd_workers_running gauge\n")
	obs.WriteGaugeLine(w, "pd_workers_running", "", float64(s.sup.Running()))
	fmt.Fprintf(w, "# TYPE pd_frames_inflight gauge\n")
	obs.WriteGaugeLine(w, "pd_frames_inflight", "", float64(sup.Aggregate.InFlight))
}

// tracezResponse is the JSON body of GET /tracez.
type tracezResponse struct {
	// Slowest holds the retained frame traces, slowest first.
	Slowest []obs.FrameTrace `json:"slowest"`
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	resp := tracezResponse{Slowest: []obs.FrameTrace{}}
	if m := s.cfg.Metrics; m != nil {
		resp.Slowest = m.Traces.Snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}
