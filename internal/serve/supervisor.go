// Package serve is the fault-tolerant multi-stream serving layer over the
// detection runtime: many concurrent camera streams sharing one process,
// where one crashing, hanging, or slow stream must not take down the rest.
//
// It composes three pieces, each usable on its own:
//
//   - Supervisor owns N worker rt.Pipelines (one per stream shard, streams
//     pinned by ID), restarts a worker killed by a panic, a poisoned
//     stream, or a liveness-watchdog wedge (rt.ErrHung) with capped
//     exponential backoff plus jitter, and aggregates the workers'
//     rt.Stats;
//   - Server exposes the supervisor over HTTP with per-request deadline
//     propagation, a bounded admission queue that load-sheds with 429 +
//     Retry-After, a circuit breaker (closed -> open -> half-open),
//     /healthz, /readyz and /statsz endpoints, and graceful drain;
//   - Client retries transient failures (429/503/504, network errors) with
//     exponential backoff plus jitter under an end-to-end context deadline.
//
// The paper's per-frame real-time budget is enforced one layer down by
// internal/rt; this package supplies the always-on, multi-camera serving
// contract that GPU/SoC deployments of this detector family assume.
// cmd/pdserve serves a model, examples/loadgen drives a server past
// capacity, internal/rt/faultinject scripts the deterministic
// panic->restart, overload->shed, hang->wedge->restart, and
// trip->probe->recover tests, and internal/chaos soaks the whole stack
// under a seeded fault schedule.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/imgproc"
	"repro/internal/rt"
)

// DetectorFactory builds the detector for one worker. It is called once at
// startup and again on every restart of that worker, so a restart gets a
// fresh detector (and a fresh pipeline) with no state carried over from the
// crashed incarnation.
type DetectorFactory func(worker int) (*core.Detector, error)

// workerPipe is the slice of rt.Pipeline the supervisor depends on. The
// production implementation is always *rt.Pipeline; tests inject
// misbehaving implementations (never-responding, always-wedged) that would
// be awkward to provoke through a real detector.
type workerPipe interface {
	Submit(frame *imgproc.Gray) bool
	Results() <-chan rt.FrameResult
	Close()
	Stats() rt.Stats
	Deadline() time.Duration
	HangTimeout() time.Duration
	Wedged() bool
}

// SupervisorConfig tunes the supervisor.
type SupervisorConfig struct {
	// Workers is the number of worker pipelines. Streams are pinned to
	// workers by stream ID modulo Workers. Default 1.
	Workers int
	// Pipeline is the per-worker streaming runtime configuration; it must
	// carry an FPS or Deadline budget (rt.Config).
	Pipeline rt.Config
	// RestartBackoff is the delay before the first restart of a worker;
	// each consecutive restart doubles it up to RestartBackoffMax, and the
	// actual delay is jittered uniformly over [d/2, d] so a herd of
	// restarting workers does not thunder back in step. A successful frame
	// resets the doubling. Defaults 50ms / 5s.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// RestartAfterErrors restarts a worker after this many consecutive
	// erroring frames even without a panic — a poisoned stream whose every
	// frame fails is indistinguishable from a wedged worker from the
	// outside. 0 means the default of 16; negative disables.
	RestartAfterErrors int
	// ResultTimeout bounds how long a worker waits for the result of a
	// submitted frame before declaring the pipeline result-silent and
	// restarting it. This is the supervisor's own liveness net under the
	// pipeline's watchdog: even if the pipeline never reports (watchdog
	// disabled, or wedged without emitting), the worker recovers. 0 derives
	// the bound from the pipeline — Deadline + 2*HangTimeout when the
	// watchdog is enabled, unbounded when it is disabled; negative forces
	// unbounded.
	ResultTimeout time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 50 * time.Millisecond
	}
	if c.RestartBackoffMax < c.RestartBackoff {
		c.RestartBackoffMax = 5 * time.Second
		if c.RestartBackoffMax < c.RestartBackoff {
			c.RestartBackoffMax = c.RestartBackoff
		}
	}
	if c.RestartAfterErrors == 0 {
		c.RestartAfterErrors = 16
	}
	if c.RestartAfterErrors < 0 {
		c.RestartAfterErrors = 0
	}
	return c
}

// Errors surfaced by Supervisor.Do.
var (
	// ErrWorkerRestarting: the stream's worker is in its restart backoff;
	// the request fails fast instead of queueing behind a dead pipeline.
	ErrWorkerRestarting = errors.New("serve: worker restarting")
	// ErrSupervisorClosed: the supervisor has been closed.
	ErrSupervisorClosed = errors.New("serve: supervisor closed")
)

// job is one detection request routed to a worker.
type job struct {
	ctx   context.Context
	frame *imgproc.Gray
	reply chan jobResult // buffered (1): the worker never blocks on reply
}

type jobResult struct {
	dets []eval.Detection
	err  error
}

// worker is one supervised stream shard.
type worker struct {
	id   int
	jobs chan job
}

// WorkerStatus describes one worker in a stats snapshot.
type WorkerStatus struct {
	ID int `json:"id"`
	// State is "running", "wedged" (the live pipeline's watchdog tripped
	// and the worker is about to retire it), or "restarting".
	State    string `json:"state"`
	Restarts uint64 `json:"restarts"`
	// Wedges counts hang escalations: each time this worker's pipeline was
	// declared hung (rt.ErrHung, a result-silent timeout, or intake refused
	// by a wedged pipeline) and torn down.
	Wedges uint64 `json:"wedges"`
	// Pipeline aggregates the rt.Stats of every incarnation of this
	// worker's pipeline (restarts do not reset the counters).
	Pipeline rt.Stats `json:"pipeline"`
}

// SupervisorStats is a snapshot of the supervisor and all workers.
type SupervisorStats struct {
	Workers  []WorkerStatus `json:"workers"`
	Restarts uint64         `json:"restarts"`
	// Wedges totals the hang escalations across workers.
	Wedges uint64 `json:"wedges"`
	// Aggregate folds every worker's pipeline counters together (sums for
	// counters, max for worst-case latencies, frame-weighted means).
	Aggregate rt.Stats `json:"aggregate"`
}

// Supervisor owns N worker pipelines and keeps them alive: a worker whose
// frame scan panics (rt.PanicError), hangs past the liveness watchdog
// (rt.ErrHung / a result-silent ResultTimeout), or whose stream turns into
// a run of consecutive failures is torn down and rebuilt from the
// DetectorFactory under capped exponential backoff with jitter, while the
// other workers keep serving their streams untouched.
type Supervisor struct {
	cfg     SupervisorConfig
	newPipe func(worker int) (workerPipe, error)
	workers []*worker

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu       sync.Mutex
	rng      *rand.Rand
	pipes    []workerPipe // current pipeline per worker; nil while restarting
	prior    []rt.Stats   // folded stats of retired pipelines
	restarts []uint64     // restart events per worker
	wedges   []uint64     // hang escalations per worker
	consec   []int        // consecutive restarts (reset by a healthy frame)
}

// NewSupervisor builds the initial pipeline for every worker (failing fast
// on a broken factory or pipeline config) and starts the worker loops.
func NewSupervisor(factory DetectorFactory, cfg SupervisorConfig) (*Supervisor, error) {
	if factory == nil {
		return nil, errors.New("serve: nil detector factory")
	}
	// Every incarnation is labelled with the worker index so its entries in
	// the shared trace ring (rt.Config.Metrics) stay attributable across
	// restarts.
	newPipe := func(id int) (workerPipe, error) {
		det, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("detector factory: %w", err)
		}
		pc := cfg.Pipeline
		pc.MetricsID = id
		return rt.New(det, pc)
	}
	return newSupervisorWith(newPipe, cfg)
}

// newSupervisorWith is the injectable constructor behind NewSupervisor:
// tests substitute pipe builders that return scripted implementations.
func newSupervisorWith(newPipe func(int) (workerPipe, error), cfg SupervisorConfig) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:      cfg,
		newPipe:  newPipe,
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		pipes:    make([]workerPipe, cfg.Workers),
		prior:    make([]rt.Stats, cfg.Workers),
		restarts: make([]uint64, cfg.Workers),
		wedges:   make([]uint64, cfg.Workers),
		consec:   make([]int, cfg.Workers),
	}
	for i := 0; i < cfg.Workers; i++ {
		pipe, err := newPipe(i)
		if err != nil {
			for _, p := range s.pipes {
				if p != nil {
					p.Close()
				}
			}
			return nil, fmt.Errorf("serve: worker %d: %w", i, err)
		}
		s.pipes[i] = pipe
		s.workers = append(s.workers, &worker{id: i, jobs: make(chan job)})
	}
	for i, w := range s.workers {
		s.wg.Add(1)
		go s.runWorker(w, s.pipes[i])
	}
	return s, nil
}

// Workers returns the number of worker pipelines.
func (s *Supervisor) Workers() int { return len(s.workers) }

// Running returns the number of workers with a live, non-wedged pipeline —
// the capacity a readiness probe should report. Workers in restart backoff
// or wedged-pending-teardown do not count.
func (s *Supervisor) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.pipes {
		if p != nil && !p.Wedged() {
			n++
		}
	}
	return n
}

// workerFor pins a stream ID to a worker.
func (s *Supervisor) workerFor(stream int) int {
	n := len(s.workers)
	return ((stream % n) + n) % n
}

// Do runs one frame of the given stream through its worker and returns the
// detections. The context bounds the wait for a worker slot and for the
// result; the scan itself additionally runs under the worker pipeline's
// per-frame budget. Do is safe for concurrent use; requests for the same
// stream serialize on that stream's worker.
//
// The caller's context wins at every wait point: a context that is already
// done returns its error immediately rather than racing a ready channel in
// select (Go picks ready cases at random, so without the explicit check an
// expired request could still consume a worker slot — or, worse, report
// ErrSupervisorClosed for what was the caller's own cancellation).
func (s *Supervisor) Do(ctx context.Context, stream int, frame *imgproc.Gray) ([]eval.Detection, error) {
	if frame == nil {
		return nil, errors.New("serve: nil frame")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := s.workers[s.workerFor(stream)]
	j := job{ctx: ctx, frame: frame, reply: make(chan jobResult, 1)}
	select {
	case w.jobs <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.stop:
		return nil, ErrSupervisorClosed
	}
	if err := ctx.Err(); err != nil {
		// The job may still reach the worker; its own ctx check (or the
		// buffered reply) keeps the worker from blocking on our behalf.
		return nil, err
	}
	select {
	case r := <-j.reply:
		return r.dets, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.stop:
		return nil, ErrSupervisorClosed
	}
}

// Close stops every worker, aborts in-flight scans, and waits for the
// worker loops to exit. It is idempotent.
func (s *Supervisor) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		// Closing the current pipelines aborts any in-flight frame via its
		// context, unblocking workers parked on a slow scan. Snapshot under
		// the lock, close outside it: the workers' own retirePipe calls
		// take the lock too (rt.Close is idempotent, so double-close with
		// the owning worker is fine).
		s.mu.Lock()
		pipes := append([]workerPipe(nil), s.pipes...)
		s.mu.Unlock()
		for _, p := range pipes {
			if p != nil {
				p.Close()
			}
		}
	})
	s.wg.Wait()
}

// installPipe publishes a worker's new pipeline for stats readers.
func (s *Supervisor) installPipe(id int, p workerPipe) {
	s.mu.Lock()
	s.pipes[id] = p
	s.mu.Unlock()
}

// retirePipe closes a worker's pipeline and folds its final stats into the
// worker's running total.
func (s *Supervisor) retirePipe(id int, p workerPipe) {
	p.Close()
	s.mu.Lock()
	s.prior[id] = mergeStats(s.prior[id], p.Stats())
	s.pipes[id] = nil
	s.mu.Unlock()
}

// noteHealthy resets a worker's consecutive-restart count: the rebuilt
// worker has proven itself with a successful frame, so the next fault
// starts the backoff ladder from the bottom again.
func (s *Supervisor) noteHealthy(id int) {
	s.mu.Lock()
	s.consec[id] = 0
	s.mu.Unlock()
}

// noteWedge records a hang escalation for the worker: its pipeline was
// declared hung and is about to be torn down and rebuilt.
func (s *Supervisor) noteWedge(id int) {
	s.mu.Lock()
	s.wedges[id]++
	s.mu.Unlock()
}

// restartDelay records a restart event and returns the backoff before the
// next incarnation: base * 2^(n-1) capped at the max, jittered over
// [d/2, d].
func (s *Supervisor) restartDelay(id int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restarts[id]++
	s.consec[id]++
	d := backoffDelay(s.consec[id], s.cfg.RestartBackoff, s.cfg.RestartBackoffMax)
	half := d / 2
	return half + time.Duration(s.rng.Int63n(int64(half)+1))
}

// backoffDelay is the un-jittered capped exponential backoff for the n-th
// consecutive restart (n >= 1).
func backoffDelay(n int, base, max time.Duration) time.Duration {
	if n < 1 {
		n = 1
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max || d <= 0 {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// resultWait resolves the bounded wait for one frame's result from the
// given pipeline incarnation. <= 0 means unbounded.
func (s *Supervisor) resultWait(pipe workerPipe) time.Duration {
	if s.cfg.ResultTimeout != 0 {
		return s.cfg.ResultTimeout
	}
	if h := pipe.HangTimeout(); h > 0 {
		// The pipeline's own watchdog should fire first (after at most
		// Deadline of queue wait plus HangTimeout of scan); the extra
		// HangTimeout of slack keeps this net strictly behind it, so a
		// result-silent timeout here means the pipeline's liveness
		// machinery itself failed.
		return pipe.Deadline() + 2*h
	}
	return 0
}

// runWorker is one worker's supervision loop: serve the pipeline until it
// needs a restart, retire it, back off, rebuild, repeat.
func (s *Supervisor) runWorker(w *worker, pipe workerPipe) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			if pipe != nil {
				s.retirePipe(w.id, pipe)
			}
			return
		default:
		}
		if pipe == nil {
			p, err := s.newPipe(w.id)
			if err != nil {
				// The factory itself is failing; keep backing off.
				if !s.sleepServingErrors(w, s.restartDelay(w.id)) {
					return
				}
				continue
			}
			pipe = p
			s.installPipe(w.id, pipe)
		}
		again := s.servePipe(w, pipe)
		s.retirePipe(w.id, pipe)
		pipe = nil
		if !again {
			return
		}
		if !s.sleepServingErrors(w, s.restartDelay(w.id)) {
			return
		}
	}
}

// servePipe feeds jobs to one pipeline incarnation in lock-step (one frame
// in flight at a time, so results pair with requests). It returns true when
// the worker must be restarted — a frame panicked or hung, the
// consecutive-error budget ran out, the pipeline went result-silent past
// the ResultTimeout bound, or it refused intake — and false on shutdown.
// Every restart-worthy outcome fails the in-flight job fast with a
// retryable error before the teardown begins, so no caller waits out a
// backoff.
func (s *Supervisor) servePipe(w *worker, pipe workerPipe) bool {
	consecErrs := 0
	wait := s.resultWait(pipe)
	for {
		select {
		case <-s.stop:
			return false
		case j := <-w.jobs:
			if err := j.ctx.Err(); err != nil {
				j.reply <- jobResult{err: err}
				continue
			}
			if !pipe.Submit(j.frame) {
				// Intake refused: the pipeline is closed — or wedged —
				// under us.
				j.reply <- jobResult{err: fmt.Errorf("%w (worker %d)", ErrWorkerRestarting, w.id)}
				if pipe.Wedged() {
					s.noteWedge(w.id)
				}
				return true
			}
			// A fresh timer per job (not deferred-stopped: defers would
			// accumulate across the loop; the teardown paths below may
			// strand one timer to fire unheard, which is harmless).
			var res rt.FrameResult
			var timeout <-chan time.Time
			var tmr *time.Timer
			if wait > 0 {
				tmr = time.NewTimer(wait)
				timeout = tmr.C
			}
			select {
			case r, ok := <-pipe.Results():
				if !ok {
					j.reply <- jobResult{err: fmt.Errorf("%w (worker %d)", ErrWorkerRestarting, w.id)}
					if pipe.Wedged() {
						s.noteWedge(w.id)
					}
					return true
				}
				res = r
			case <-timeout:
				// Result-silent: the frame went in and nothing came out
				// within the liveness bound — the pipeline's own watchdog
				// should have reported first. Treat it exactly like a
				// wedge: fail the job fast and rebuild. (retirePipe's
				// Close aborts whatever the pipeline was doing.)
				j.reply <- jobResult{err: fmt.Errorf("%w (worker %d: result-silent past %v)", ErrWorkerRestarting, w.id, wait)}
				s.noteWedge(w.id)
				return true
			case <-s.stop:
				j.reply <- jobResult{err: ErrSupervisorClosed}
				return false
			}
			if tmr != nil {
				tmr.Stop()
			}
			j.reply <- jobResult{dets: res.Detections, err: res.Err}
			var pe *rt.PanicError
			switch {
			case errors.Is(res.Err, rt.ErrHung):
				// The pipeline's watchdog abandoned the scan and wedged the
				// pipeline: it will never serve again. Escalate to a
				// restart immediately — the caller already has the ErrHung
				// result (retryable at the HTTP layer).
				s.noteWedge(w.id)
				return true
			case errors.As(res.Err, &pe):
				// The scan panicked: treat the worker as killed and rebuild
				// it from scratch rather than trusting detector state that
				// a panic unwound through.
				return true
			case res.Err != nil:
				consecErrs++
				if s.cfg.RestartAfterErrors > 0 && consecErrs >= s.cfg.RestartAfterErrors {
					return true
				}
			default:
				consecErrs = 0
				s.noteHealthy(w.id)
			}
		}
	}
}

// sleepServingErrors waits out a restart backoff while failing the worker's
// incoming jobs fast with ErrWorkerRestarting (instead of letting them
// queue against a pipeline that does not exist). It returns false when the
// supervisor shut down during the wait.
func (s *Supervisor) sleepServingErrors(w *worker, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return false
		case <-t.C:
			return true
		case j := <-w.jobs:
			j.reply <- jobResult{err: fmt.Errorf("%w (worker %d)", ErrWorkerRestarting, w.id)}
		}
	}
}

// Stats returns a snapshot of every worker plus the aggregate counters.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SupervisorStats{}
	for i := range s.workers {
		ws := WorkerStatus{ID: i, Restarts: s.restarts[i], Wedges: s.wedges[i], Pipeline: s.prior[i]}
		switch p := s.pipes[i]; {
		case p == nil:
			ws.State = "restarting"
		case p.Wedged():
			ws.State = "wedged"
			ws.Pipeline = mergeStats(ws.Pipeline, p.Stats())
		default:
			ws.State = "running"
			ws.Pipeline = mergeStats(ws.Pipeline, p.Stats())
		}
		out.Workers = append(out.Workers, ws)
		out.Restarts += s.restarts[i]
		out.Wedges += s.wedges[i]
		out.Aggregate = mergeStats(out.Aggregate, ws.Pipeline)
	}
	return out
}

// mergeStats folds two pipeline snapshots: counters add, worst cases take
// the max, averages re-weight by emitted frames, the wedged flag ORs (an
// aggregate containing any wedged incarnation reports it), and the ladder
// position reports the more degraded of the two (an aggregate is only as
// healthy as its worst worker).
func mergeStats(a, b rt.Stats) rt.Stats {
	out := a
	out.FramesIn += b.FramesIn
	out.FramesOut += b.FramesOut
	out.FramesDropped += b.FramesDropped
	out.InFlight += b.InFlight
	out.DeadlineMisses += b.DeadlineMisses
	out.Errors += b.Errors
	out.Panics += b.Panics
	out.FramesHung += b.FramesHung
	out.Wedged = a.Wedged || b.Wedged
	out.DegradeEvents += b.DegradeEvents
	out.RecoverEvents += b.RecoverEvents
	out.ROIScans += b.ROIScans
	out.ROIFullScans += b.ROIFullScans
	out.ROIRegions += b.ROIRegions
	if b.Rung > out.Rung {
		out.Rung = b.Rung
		out.SkipFinest = b.SkipFinest
		out.Workers = b.Workers
		out.ROIRung = b.ROIRung
	}
	if b.Rungs > out.Rungs {
		out.Rungs = b.Rungs
	}
	if b.Deadline > out.Deadline {
		out.Deadline = b.Deadline
	}
	if b.MaxWait > out.MaxWait {
		out.MaxWait = b.MaxWait
	}
	if b.MaxLatency > out.MaxLatency {
		out.MaxLatency = b.MaxLatency
	}
	if n := a.FramesOut + b.FramesOut; n > 0 {
		out.AvgWait = (a.AvgWait*time.Duration(a.FramesOut) + b.AvgWait*time.Duration(b.FramesOut)) / time.Duration(n)
		out.AvgLatency = (a.AvgLatency*time.Duration(a.FramesOut) + b.AvgLatency*time.Duration(b.FramesOut)) / time.Duration(n)
	}
	return out
}
