package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 80, TN: 90, FP: 10, FN: 20}
	if c.Total() != 200 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); got != 0.85 {
		t.Errorf("Accuracy = %v, want 0.85", got)
	}
	if got := c.TPR(); got != 0.8 {
		t.Errorf("TPR = %v, want 0.8", got)
	}
	if got := c.FPR(); got != 0.1 {
		t.Errorf("FPR = %v, want 0.1", got)
	}
	if got := c.MissRate(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("MissRate = %v, want 0.2", got)
	}
	if got := c.Precision(); math.Abs(got-80.0/90) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	// Degenerate cases return 0, not NaN.
	var z Confusion
	if z.Accuracy() != 0 || z.TPR() != 0 || z.FPR() != 0 || z.Precision() != 0 || z.MissRate() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestConfuse(t *testing.T) {
	scores := []float64{2, 1, -1, -2}
	labels := []int{1, -1, 1, -1}
	c, err := Confuse(scores, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("confusion = %+v", c)
	}
	// Threshold shifts the split.
	c2, _ := Confuse(scores, labels, 1.5)
	if c2.TP != 1 || c2.FP != 0 || c2.TN != 2 || c2.FN != 1 {
		t.Errorf("thresholded confusion = %+v", c2)
	}
	if _, err := Confuse(scores, labels[:2], 0); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Confuse([]float64{1}, []int{3}, 0); err == nil {
		t.Error("bad label should error")
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{3, 2, 1, -1, -2, -3}
	labels := []int{1, 1, 1, -1, -1, -1}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); auc != 1 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	if eer := roc.EER(); eer > 1e-12 {
		t.Errorf("EER = %v, want 0", eer)
	}
}

func TestROCRandomScoresNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var scores []float64
	var labels []int
	for i := 0; i < 4000; i++ {
		scores = append(scores, rng.Float64())
		if i%2 == 0 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
	if eer := roc.EER(); math.Abs(eer-0.5) > 0.05 {
		t.Errorf("random EER = %v, want ~0.5", eer)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{-3, -2, -1, 1, 2, 3}
	labels := []int{1, 1, 1, -1, -1, -1}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc := roc.AUC(); auc != 0 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
	if eer := roc.EER(); math.Abs(eer-1) > 1e-9 {
		t.Errorf("inverted EER = %v, want 1", eer)
	}
}

func TestROCEndpointsAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var scores []float64
	var labels []int
	for i := 0; i < 500; i++ {
		l := 1
		mean := 0.5
		if i%2 == 1 {
			l = -1
			mean = -0.5
		}
		scores = append(scores, mean+rng.NormFloat64())
		labels = append(labels, l)
	}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	first, last := roc.Points[0], roc.Points[len(roc.Points)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve must start at (0,0), got (%v,%v)", first.FPR, first.TPR)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve must end at (1,1), got (%v,%v)", last.FPR, last.TPR)
	}
	for i := 1; i < len(roc.Points); i++ {
		if roc.Points[i].FPR < roc.Points[i-1].FPR || roc.Points[i].TPR < roc.Points[i-1].TPR {
			t.Fatal("ROC must be monotone in both axes")
		}
		if roc.Points[i].Threshold > roc.Points[i-1].Threshold {
			t.Fatal("thresholds must decrease along the curve")
		}
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ComputeROC(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ComputeROC([]float64{1}, []int{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ComputeROC([]float64{1, 2}, []int{1, 1}); err == nil {
		t.Error("single class should error")
	}
	if _, err := ComputeROC([]float64{1, 2}, []int{1, 0}); err == nil {
		t.Error("bad label should error")
	}
}

func TestTPRAtFPRAndThreshold(t *testing.T) {
	scores := []float64{4, 3, 2, 1}
	labels := []int{1, -1, 1, -1}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// At FPR 0 only the first positive is caught: TPR 0.5.
	if got := roc.TPRAtFPR(0); got != 0.5 {
		t.Errorf("TPR@FPR0 = %v, want 0.5", got)
	}
	if got := roc.TPRAtFPR(1); got != 1 {
		t.Errorf("TPR@FPR1 = %v, want 1", got)
	}
	thr := roc.ThresholdAtFPR(0)
	if thr < 3 {
		t.Errorf("threshold@FPR0 = %v, want >= 3 to exclude the top negative", thr)
	}
}

// Property: AUC is always within [0,1] and flipping all scores gives 1-AUC.
func TestAUCFlipProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if rng.Intn(2) == 0 {
				labels[i] = 1
			} else {
				labels[i] = -1
			}
		}
		// Guarantee both classes.
		labels[0], labels[1] = 1, -1
		roc, err := ComputeROC(scores, labels)
		if err != nil {
			return false
		}
		auc := roc.AUC()
		flipped := make([]float64, n)
		for i, s := range scores {
			flipped[i] = -s
		}
		roc2, err := ComputeROC(flipped, labels)
		if err != nil {
			return false
		}
		return auc >= 0 && auc <= 1 && math.Abs(auc+roc2.AUC()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatchDetectionsBasic(t *testing.T) {
	truth := []geom.Rect{geom.XYWH(10, 10, 20, 40), geom.XYWH(100, 10, 20, 40)}
	dets := []Detection{
		{Box: geom.XYWH(11, 11, 20, 40), Score: 0.9},  // matches GT 0
		{Box: geom.XYWH(12, 12, 20, 40), Score: 0.8},  // duplicate -> FP
		{Box: geom.XYWH(200, 10, 20, 40), Score: 0.7}, // no GT -> FP
	}
	m := MatchDetections(dets, truth, 0.5)
	if m.TP != 1 || m.FP != 2 || m.FN != 1 {
		t.Errorf("match = %+v", m)
	}
	if m.Matched[0] != 0 || m.Matched[1] != -1 || m.Matched[2] != -1 {
		t.Errorf("matched indices = %v", m.Matched)
	}
}

func TestMatchDetectionsScoreOrderWins(t *testing.T) {
	truth := []geom.Rect{geom.XYWH(10, 10, 20, 40)}
	// Lower-scored detection listed first; the higher-scored one must win
	// the ground-truth match.
	dets := []Detection{
		{Box: geom.XYWH(12, 12, 20, 40), Score: 0.5},
		{Box: geom.XYWH(10, 10, 20, 40), Score: 0.9},
	}
	m := MatchDetections(dets, truth, 0.5)
	if m.Matched[1] != 0 {
		t.Errorf("high scorer should match: %v", m.Matched)
	}
	if m.Matched[0] != -1 {
		t.Error("low scorer should be the duplicate FP")
	}
}

func TestMatchDetectionsEmpty(t *testing.T) {
	m := MatchDetections(nil, nil, 0.5)
	if m.TP != 0 || m.FP != 0 || m.FN != 0 {
		t.Errorf("empty match = %+v", m)
	}
	m2 := MatchDetections(nil, []geom.Rect{geom.XYWH(0, 0, 5, 5)}, 0.5)
	if m2.FN != 1 {
		t.Error("unmatched truth should be FN")
	}
}

func TestMissRateFPPI(t *testing.T) {
	truth := [][]geom.Rect{
		{geom.XYWH(10, 10, 20, 40)},
		{geom.XYWH(50, 10, 20, 40)},
	}
	dets := [][]Detection{
		{{Box: geom.XYWH(10, 10, 20, 40), Score: 0.9}, {Box: geom.XYWH(200, 10, 20, 40), Score: 0.3}},
		{{Box: geom.XYWH(50, 10, 20, 40), Score: 0.8}},
	}
	pts, err := MissRateFPPI(dets, truth, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no curve points")
	}
	// At the loosest threshold: both GT matched, one FP over two frames.
	last := pts[len(pts)-1]
	if last.MissRate != 0 {
		t.Errorf("loosest miss rate = %v, want 0", last.MissRate)
	}
	if last.FPPI != 0.5 {
		t.Errorf("loosest FPPI = %v, want 0.5", last.FPPI)
	}
	// Errors.
	if _, err := MissRateFPPI(dets, truth[:1], 0.5); err == nil {
		t.Error("frame mismatch should error")
	}
	if _, err := MissRateFPPI(nil, nil, 0.5); err == nil {
		t.Error("no frames should error")
	}
	if _, err := MissRateFPPI([][]Detection{{}}, [][]geom.Rect{{}}, 0.5); err == nil {
		t.Error("no ground truth should error")
	}
}

func TestEERBetweenSamplesInterpolates(t *testing.T) {
	// Construct scores where EER falls between curve samples.
	scores := []float64{5, 4, 3, 2, 1, 0}
	labels := []int{1, 1, -1, 1, -1, -1}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	eer := roc.EER()
	if eer < 0 || eer > 1 {
		t.Fatalf("EER = %v out of range", eer)
	}
	// For this arrangement FPR=1/3 when TPR=2/3: EER = 1/3.
	if math.Abs(eer-1.0/3) > 1e-9 {
		t.Errorf("EER = %v, want 1/3", eer)
	}
}

// Property: matching conserves counts — TP+FP equals the detection count
// and TP+FN equals the truth count, for arbitrary inputs.
func TestMatchDetectionsCountProperty(t *testing.T) {
	f := func(seed int64, nd, nt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dets := make([]Detection, int(nd)%12)
		for i := range dets {
			dets[i] = Detection{
				Box:   geom.XYWH(rng.Intn(100), rng.Intn(100), rng.Intn(40)+5, rng.Intn(40)+5),
				Score: rng.Float64(),
			}
		}
		truth := make([]geom.Rect, int(nt)%8)
		for i := range truth {
			truth[i] = geom.XYWH(rng.Intn(100), rng.Intn(100), rng.Intn(40)+5, rng.Intn(40)+5)
		}
		m := MatchDetections(dets, truth, 0.5)
		return m.TP+m.FP == len(dets) && m.TP+m.FN == len(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
