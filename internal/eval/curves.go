package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// This file adds the complementary detector-evaluation curves the
// pedestrian-detection literature uses alongside ROC: precision-recall
// with average precision (PASCAL-style), and the DET curve (log-log miss
// rate versus false positives) popularized by Dollar et al.'s benchmark —
// the evaluation the paper's references [4][6] report.

// PRPoint is one operating point of a precision-recall curve.
type PRPoint struct {
	Threshold         float64
	Precision, Recall float64
}

// PRCurve is a precision-recall curve ordered by increasing recall.
type PRCurve struct {
	Points []PRPoint
	Pos    int
}

// ComputePR builds the precision-recall curve over scored examples with
// +1/-1 labels by sweeping the threshold across every distinct score.
func ComputePR(scores []float64, labels []int) (*PRCurve, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, errors.New("eval: empty score set")
	}
	type sl struct {
		s float64
		y int
	}
	data := make([]sl, len(scores))
	pos := 0
	for i := range scores {
		switch labels[i] {
		case 1:
			pos++
		case -1:
		default:
			return nil, fmt.Errorf("eval: label %d at index %d not in {-1,+1}", labels[i], i)
		}
		data[i] = sl{scores[i], labels[i]}
	}
	if pos == 0 {
		return nil, errors.New("eval: PR curve needs positive examples")
	}
	sort.Slice(data, func(i, j int) bool { return data[i].s > data[j].s })
	curve := &PRCurve{Pos: pos}
	tp, fp := 0, 0
	for i := 0; i < len(data); {
		s := data[i].s
		for i < len(data) && data[i].s == s {
			if data[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve.Points = append(curve.Points, PRPoint{
			Threshold: s,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(pos),
		})
	}
	return curve, nil
}

// AP returns the average precision: the area under the precision-recall
// curve computed with the standard interpolated (monotone-envelope) rule.
func (c *PRCurve) AP() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	// Monotone non-increasing precision envelope from the right.
	n := len(c.Points)
	prec := make([]float64, n)
	best := 0.0
	for i := n - 1; i >= 0; i-- {
		if c.Points[i].Precision > best {
			best = c.Points[i].Precision
		}
		prec[i] = best
	}
	ap := 0.0
	prevRecall := 0.0
	for i := 0; i < n; i++ {
		ap += (c.Points[i].Recall - prevRecall) * prec[i]
		prevRecall = c.Points[i].Recall
	}
	return ap
}

// PrecisionAtRecall returns the highest precision achievable at or above
// the given recall, or 0 if the recall is never reached.
func (c *PRCurve) PrecisionAtRecall(minRecall float64) float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Recall >= minRecall && p.Precision > best {
			best = p.Precision
		}
	}
	return best
}

// DETPoint is one point of a DET curve: false positive rate (or FPPI in
// the detector setting) against miss rate, both usually drawn on log axes.
type DETPoint struct {
	Threshold float64
	FPR       float64
	MissRate  float64
}

// ComputeDET derives the DET curve from classification scores (the
// window-level analogue; frame-level FPPI curves come from MissRateFPPI).
func ComputeDET(scores []float64, labels []int) ([]DETPoint, error) {
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		return nil, err
	}
	out := make([]DETPoint, 0, len(roc.Points))
	for _, p := range roc.Points {
		out = append(out, DETPoint{Threshold: p.Threshold, FPR: p.FPR, MissRate: 1 - p.TPR})
	}
	return out, nil
}

// LogAvgMissRate computes the log-average miss rate over nine FPR
// reference points log-spaced in [1e-2, 1] (the Caltech benchmark
// convention adapted to window-level FPR): the geometric mean of the miss
// rates at those operating points.
func LogAvgMissRate(det []DETPoint) float64 {
	if len(det) == 0 {
		return 1
	}
	// det is ordered by increasing FPR (it derives from the ROC sweep).
	// The miss rate at a reference FPR is the value at the first operating
	// point whose FPR reaches the reference — i.e. where the sweep crosses
	// it. (Taking a minimum over FPR <= ref would wrongly credit every
	// classifier with the trivial accept-everything point.)
	missAt := func(fpr float64) float64 {
		for _, p := range det {
			if p.FPR >= fpr {
				return p.MissRate
			}
		}
		return det[len(det)-1].MissRate
	}
	sum := 0.0
	n := 9
	for i := 0; i < n; i++ {
		f := math.Pow(10, -2+2*float64(i)/float64(n-1)) // 1e-2 .. 1e0
		m := missAt(f)
		if m < 1e-10 {
			m = 1e-10
		}
		sum += math.Log(m)
	}
	return math.Exp(sum / float64(n))
}
