// Package eval implements the classifier and detector evaluation metrics of
// the paper: confusion counts, detection accuracy (Table 1), ROC curves
// with AUC and EER (Figure 4), and miss-rate/FPPI curves plus ground-truth
// matching for full-frame detector evaluation.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Confusion holds binary classification counts.
type Confusion struct {
	TP, TN, FP, FN int
}

// Total returns the number of evaluated examples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns (TP+TN)/total, the metric of the paper's Table 1.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// TPR returns the true positive rate (recall, detection rate).
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// MissRate returns FN/(TP+FN), the pedestrian-detection convention.
func (c Confusion) MissRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

// String implements fmt.Stringer.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d acc=%.4f", c.TP, c.TN, c.FP, c.FN, c.Accuracy())
}

// Confuse classifies scored examples at the given decision threshold:
// scores above the threshold predict positive. Labels are +1/-1.
func Confuse(scores []float64, labels []int, threshold float64) (Confusion, error) {
	if len(scores) != len(labels) {
		return Confusion{}, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	var c Confusion
	for i, s := range scores {
		pos := s > threshold
		switch {
		case labels[i] == 1 && pos:
			c.TP++
		case labels[i] == 1 && !pos:
			c.FN++
		case labels[i] == -1 && pos:
			c.FP++
		case labels[i] == -1 && !pos:
			c.TN++
		default:
			return Confusion{}, fmt.Errorf("eval: label %d at index %d not in {-1,+1}", labels[i], i)
		}
	}
	return c, nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROC is a receiver operating characteristic curve, ordered by increasing
// FPR (decreasing threshold).
type ROC struct {
	Points []ROCPoint
	// Pos and Neg are the class sizes the curve was computed from.
	Pos, Neg int
}

// ComputeROC builds the ROC curve by sweeping the decision threshold over
// every distinct score. The curve always includes the (0,0) and (1,1)
// endpoints.
func ComputeROC(scores []float64, labels []int) (*ROC, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, errors.New("eval: empty score set")
	}
	type sl struct {
		s float64
		y int
	}
	data := make([]sl, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		switch labels[i] {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("eval: label %d at index %d not in {-1,+1}", labels[i], i)
		}
		data[i] = sl{scores[i], labels[i]}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("eval: ROC needs both classes")
	}
	// Sort by descending score; sweep the threshold downwards.
	sort.Slice(data, func(i, j int) bool { return data[i].s > data[j].s })
	roc := &ROC{Pos: pos, Neg: neg}
	roc.Points = append(roc.Points, ROCPoint{Threshold: math.Inf(1), FPR: 0, TPR: 0})
	tp, fp := 0, 0
	for i := 0; i < len(data); {
		// Consume ties together so the curve is a function of threshold.
		s := data[i].s
		for i < len(data) && data[i].s == s {
			if data[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		roc.Points = append(roc.Points, ROCPoint{
			Threshold: s,
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
		})
	}
	return roc, nil
}

// AUC returns the area under the curve by trapezoidal integration; 1.0 is a
// perfect classifier, 0.5 is chance.
func (r *ROC) AUC() float64 {
	var auc float64
	for i := 1; i < len(r.Points); i++ {
		a, b := r.Points[i-1], r.Points[i]
		auc += (b.FPR - a.FPR) * (a.TPR + b.TPR) / 2
	}
	return auc
}

// EER returns the equal error rate: the error value at the operating point
// where the false positive rate equals the false negative rate (1-TPR),
// linearly interpolating between curve samples.
func (r *ROC) EER() float64 {
	// Walk the curve for the sign change of f(p) = FPR - (1 - TPR).
	prev := r.Points[0]
	fPrev := prev.FPR - (1 - prev.TPR) // starts at -1
	for _, p := range r.Points[1:] {
		f := p.FPR - (1 - p.TPR)
		if f >= 0 {
			// Interpolate between prev and p.
			if f == fPrev {
				return p.FPR
			}
			t := -fPrev / (f - fPrev)
			fpr := prev.FPR + t*(p.FPR-prev.FPR)
			fnr := (1 - prev.TPR) + t*((1-p.TPR)-(1-prev.TPR))
			return (fpr + fnr) / 2
		}
		prev, fPrev = p, f
	}
	return 1
}

// TPRAtFPR returns the highest TPR achievable at or below the given false
// positive rate.
func (r *ROC) TPRAtFPR(maxFPR float64) float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.FPR <= maxFPR && p.TPR > best {
			best = p.TPR
		}
	}
	return best
}

// ThresholdAtFPR returns the decision threshold whose operating point has
// the highest TPR subject to FPR <= maxFPR.
func (r *ROC) ThresholdAtFPR(maxFPR float64) float64 {
	best := math.Inf(1)
	bestTPR := -1.0
	for _, p := range r.Points {
		if p.FPR <= maxFPR && p.TPR > bestTPR {
			bestTPR = p.TPR
			best = p.Threshold
		}
	}
	return best
}

// Detection is a scored detector output box in frame coordinates.
type Detection struct {
	Box   geom.Rect
	Score float64
}

// MatchResult summarizes matching detections against ground truth.
type MatchResult struct {
	TP, FP, FN int
	// Matched[i] is the index of the ground-truth box matched by
	// detection i, or -1 for false positives.
	Matched []int
}

// MatchDetections greedily matches detections (processed in descending
// score order) to ground-truth boxes at the given IoU threshold, the
// standard PASCAL protocol: each ground-truth box may be matched at most
// once, later overlapping detections count as false positives.
func MatchDetections(dets []Detection, truth []geom.Rect, iouThresh float64) MatchResult {
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dets[order[a]].Score > dets[order[b]].Score })

	res := MatchResult{Matched: make([]int, len(dets))}
	for i := range res.Matched {
		res.Matched[i] = -1
	}
	used := make([]bool, len(truth))
	for _, di := range order {
		bestIoU := iouThresh
		bestGT := -1
		for gi, gt := range truth {
			if used[gi] {
				continue
			}
			if iou := geom.IoU(dets[di].Box, gt); iou >= bestIoU {
				bestIoU = iou
				bestGT = gi
			}
		}
		if bestGT >= 0 {
			used[bestGT] = true
			res.Matched[di] = bestGT
			res.TP++
		} else {
			res.FP++
		}
	}
	for _, u := range used {
		if !u {
			res.FN++
		}
	}
	return res
}

// MissRateFPPIPoint is one point of a miss-rate versus false-positives-per-
// image curve (the standard pedestrian benchmark plot).
type MissRateFPPIPoint struct {
	Threshold float64
	FPPI      float64
	MissRate  float64
}

// MissRateFPPI sweeps the detection score threshold over per-frame
// detections and ground truth, returning the miss-rate/FPPI curve. dets and
// truth are parallel per-frame slices.
func MissRateFPPI(dets [][]Detection, truth [][]geom.Rect, iouThresh float64) ([]MissRateFPPIPoint, error) {
	if len(dets) != len(truth) {
		return nil, fmt.Errorf("eval: %d detection frames but %d truth frames", len(dets), len(truth))
	}
	if len(dets) == 0 {
		return nil, errors.New("eval: no frames")
	}
	// Collect all scores as candidate thresholds.
	var scores []float64
	totalGT := 0
	for _, frame := range dets {
		for _, d := range frame {
			scores = append(scores, d.Score)
		}
	}
	for _, frame := range truth {
		totalGT += len(frame)
	}
	if totalGT == 0 {
		return nil, errors.New("eval: no ground truth boxes")
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	// Thin to at most ~64 thresholds for tractability.
	stride := len(scores)/64 + 1
	var points []MissRateFPPIPoint
	for i := 0; i < len(scores); i += stride {
		thr := scores[i]
		tp, fp := 0, 0
		for f := range dets {
			var kept []Detection
			for _, d := range dets[f] {
				if d.Score >= thr {
					kept = append(kept, d)
				}
			}
			m := MatchDetections(kept, truth[f], iouThresh)
			tp += m.TP
			fp += m.FP
		}
		points = append(points, MissRateFPPIPoint{
			Threshold: thr,
			FPPI:      float64(fp) / float64(len(dets)),
			MissRate:  1 - float64(tp)/float64(totalGT),
		})
	}
	return points, nil
}
