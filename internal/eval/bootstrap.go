package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Bootstrap confidence intervals: since the reproduction's accuracies come
// from synthetic samples, intervals make paper-versus-measured comparisons
// honest (a 0.3% accuracy difference on 5656 windows may be noise).

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point, Lo, Hi float64
	Level         float64 // e.g. 0.95
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] @%.0f%%", iv.Point, iv.Lo, iv.Hi, iv.Level*100)
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// BootstrapAccuracy resamples (score, label) pairs with replacement and
// returns the percentile confidence interval of the accuracy at the given
// threshold. reps controls the number of bootstrap replicates; seed makes
// the interval deterministic.
func BootstrapAccuracy(scores []float64, labels []int, threshold float64,
	level float64, reps int, seed int64) (Interval, error) {
	if len(scores) != len(labels) {
		return Interval{}, fmt.Errorf("eval: %d scores but %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return Interval{}, errors.New("eval: empty sample")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("eval: confidence level %g out of (0,1)", level)
	}
	if reps < 10 {
		return Interval{}, fmt.Errorf("eval: need at least 10 replicates, got %d", reps)
	}
	point, err := Confuse(scores, labels, threshold)
	if err != nil {
		return Interval{}, err
	}
	n := len(scores)
	rng := rand.New(rand.NewSource(seed))
	accs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		correct := 0
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			pos := scores[j] > threshold
			if (labels[j] == 1) == pos {
				correct++
			}
		}
		accs[r] = float64(correct) / float64(n)
	}
	sort.Float64s(accs)
	alpha := (1 - level) / 2
	lo := accs[int(alpha*float64(reps))]
	hiIdx := int((1 - alpha) * float64(reps))
	if hiIdx >= reps {
		hiIdx = reps - 1
	}
	return Interval{Point: point.Accuracy(), Lo: lo, Hi: accs[hiIdx], Level: level}, nil
}

// BootstrapAccuracyDiff bootstraps the PAIRED accuracy difference between
// two methods scored on the same examples (method A minus method B). A
// confidence interval excluding zero indicates a significant difference —
// the right test for Table 1's image-versus-HOG comparisons, since both
// methods see identical windows.
func BootstrapAccuracyDiff(scoresA, scoresB []float64, labels []int, threshold float64,
	level float64, reps int, seed int64) (Interval, error) {
	if len(scoresA) != len(scoresB) || len(scoresA) != len(labels) {
		return Interval{}, fmt.Errorf("eval: mismatched lengths %d/%d/%d",
			len(scoresA), len(scoresB), len(labels))
	}
	if len(scoresA) == 0 {
		return Interval{}, errors.New("eval: empty sample")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("eval: confidence level %g out of (0,1)", level)
	}
	if reps < 10 {
		return Interval{}, fmt.Errorf("eval: need at least 10 replicates, got %d", reps)
	}
	ca, err := Confuse(scoresA, labels, threshold)
	if err != nil {
		return Interval{}, err
	}
	cb, err := Confuse(scoresB, labels, threshold)
	if err != nil {
		return Interval{}, err
	}
	n := len(labels)
	rng := rand.New(rand.NewSource(seed))
	diffs := make([]float64, reps)
	for r := 0; r < reps; r++ {
		okA, okB := 0, 0
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			posA := scoresA[j] > threshold
			posB := scoresB[j] > threshold
			if (labels[j] == 1) == posA {
				okA++
			}
			if (labels[j] == 1) == posB {
				okB++
			}
		}
		diffs[r] = float64(okA-okB) / float64(n)
	}
	sort.Float64s(diffs)
	alpha := (1 - level) / 2
	lo := diffs[int(alpha*float64(reps))]
	hiIdx := int((1 - alpha) * float64(reps))
	if hiIdx >= reps {
		hiIdx = reps - 1
	}
	return Interval{
		Point: ca.Accuracy() - cb.Accuracy(),
		Lo:    lo,
		Hi:    diffs[hiIdx],
		Level: level,
	}, nil
}
