package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputePRPerfect(t *testing.T) {
	scores := []float64{3, 2, 1, -1, -2}
	labels := []int{1, 1, 1, -1, -1}
	pr, err := ComputePR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ap := pr.AP(); ap != 1 {
		t.Errorf("perfect AP = %v, want 1", ap)
	}
	// First point: highest threshold, precision 1.
	if pr.Points[0].Precision != 1 {
		t.Errorf("first precision = %v", pr.Points[0].Precision)
	}
	last := pr.Points[len(pr.Points)-1]
	if last.Recall != 1 {
		t.Errorf("final recall = %v, want 1", last.Recall)
	}
}

func TestComputePRRandomNearPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var scores []float64
	var labels []int
	for i := 0; i < 4000; i++ {
		scores = append(scores, rng.Float64())
		if i%4 == 0 { // 25% positives
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	pr, err := ComputePR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ap := pr.AP(); math.Abs(ap-0.25) > 0.05 {
		t.Errorf("random AP = %v, want ~prior 0.25", ap)
	}
}

func TestComputePRErrors(t *testing.T) {
	if _, err := ComputePR(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := ComputePR([]float64{1}, []int{1, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ComputePR([]float64{1, 2}, []int{-1, -1}); err == nil {
		t.Error("no positives should error")
	}
	if _, err := ComputePR([]float64{1}, []int{2}); err == nil {
		t.Error("bad label should error")
	}
}

func TestAPBoundsAndMonotoneEnvelope(t *testing.T) {
	// A zig-zag precision curve: the interpolated AP uses the envelope.
	scores := []float64{5, 4, 3, 2, 1}
	labels := []int{1, -1, 1, 1, -1}
	pr, err := ComputePR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	ap := pr.AP()
	if ap <= 0 || ap > 1 {
		t.Fatalf("AP = %v out of bounds", ap)
	}
	// At recall 1/3 the top-scoring positive alone gives precision 1.
	if got := pr.PrecisionAtRecall(1.0 / 3); got != 1 {
		t.Errorf("precision@recall(1/3) = %v, want 1", got)
	}
	// At recall 2/3 the best operating point is tp=3/fp=1: 0.75.
	if got := pr.PrecisionAtRecall(2.0 / 3); got != 0.75 {
		t.Errorf("precision@recall(2/3) = %v, want 0.75", got)
	}
	if got := pr.PrecisionAtRecall(2); got != 0 {
		t.Errorf("unreachable recall should give 0, got %v", got)
	}
}

func TestComputeDETComplementsROC(t *testing.T) {
	scores := []float64{3, 2, 1, -1, -2, -3}
	labels := []int{1, 1, -1, 1, -1, -1}
	det, err := ComputeDET(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	roc, err := ComputeROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != len(roc.Points) {
		t.Fatal("DET/ROC point counts differ")
	}
	for i := range det {
		if math.Abs(det[i].MissRate-(1-roc.Points[i].TPR)) > 1e-12 {
			t.Fatal("miss rate != 1 - TPR")
		}
	}
}

func TestLogAvgMissRate(t *testing.T) {
	// Perfect classifier: miss rate 0 (floored) everywhere -> tiny LAMR.
	scores := []float64{2, 1, -1, -2}
	labels := []int{1, 1, -1, -1}
	det, err := ComputeDET(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if lamr := LogAvgMissRate(det); lamr > 1e-9 {
		t.Errorf("perfect LAMR = %v, want ~0", lamr)
	}
	// Inverted classifier: misses everything at low FPR -> LAMR near 1.
	for i := range scores {
		scores[i] = -scores[i]
	}
	det, err = ComputeDET(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if lamr := LogAvgMissRate(det); lamr < 0.5 {
		t.Errorf("inverted LAMR = %v, want near 1", lamr)
	}
	// Empty curve degrades gracefully.
	if LogAvgMissRate(nil) != 1 {
		t.Error("empty DET should give LAMR 1")
	}
}

func TestBetterClassifierLowerLAMR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(sep float64) []DETPoint {
		var scores []float64
		var labels []int
		for i := 0; i < 2000; i++ {
			l, mean := 1, sep/2
			if i%2 == 1 {
				l, mean = -1, -sep/2
			}
			scores = append(scores, mean+rng.NormFloat64())
			labels = append(labels, l)
		}
		det, err := ComputeDET(scores, labels)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	strong := LogAvgMissRate(mk(4))
	weak := LogAvgMissRate(mk(1))
	if strong >= weak {
		t.Errorf("LAMR: strong %v should beat weak %v", strong, weak)
	}
}
