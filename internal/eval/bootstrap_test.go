package eval

import (
	"math/rand"
	"testing"
)

func bootstrapFixture(n int, acc float64, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		labels[i] = 1
		if i%2 == 1 {
			labels[i] = -1
		}
		correct := rng.Float64() < acc
		if (labels[i] == 1) == correct {
			scores[i] = 1
		} else {
			scores[i] = -1
		}
	}
	return scores, labels
}

func TestBootstrapAccuracyCoversPoint(t *testing.T) {
	scores, labels := bootstrapFixture(1000, 0.9, 1)
	iv, err := BootstrapAccuracy(scores, labels, 0, 0.95, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Point) {
		t.Errorf("interval %v does not contain its own point", iv)
	}
	if iv.Point < 0.85 || iv.Point > 0.95 {
		t.Errorf("point %.3f far from designed 0.9", iv.Point)
	}
	// ~0.9 accuracy on 1000 samples: sd ~ 0.0095, so a 95% interval spans
	// roughly +-2sd.
	width := iv.Hi - iv.Lo
	if width < 0.01 || width > 0.08 {
		t.Errorf("interval width %.4f implausible", width)
	}
	if iv.String() == "" {
		t.Error("empty interval string")
	}
}

func TestBootstrapIntervalNarrowsWithN(t *testing.T) {
	s1, l1 := bootstrapFixture(200, 0.85, 3)
	s2, l2 := bootstrapFixture(5000, 0.85, 4)
	small, err := BootstrapAccuracy(s1, l1, 0, 0.95, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := BootstrapAccuracy(s2, l2, 0, 0.95, 400, 6)
	if err != nil {
		t.Fatal(err)
	}
	if (big.Hi - big.Lo) >= (small.Hi - small.Lo) {
		t.Errorf("interval did not narrow: n=200 width %.4f vs n=5000 width %.4f",
			small.Hi-small.Lo, big.Hi-big.Lo)
	}
}

func TestBootstrapAccuracyErrors(t *testing.T) {
	s, l := bootstrapFixture(50, 0.9, 7)
	if _, err := BootstrapAccuracy(nil, nil, 0, 0.95, 100, 1); err == nil {
		t.Error("empty should error")
	}
	if _, err := BootstrapAccuracy(s, l[:10], 0, 0.95, 100, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BootstrapAccuracy(s, l, 0, 1.5, 100, 1); err == nil {
		t.Error("bad level should error")
	}
	if _, err := BootstrapAccuracy(s, l, 0, 0.95, 3, 1); err == nil {
		t.Error("too few reps should error")
	}
}

func TestBootstrapDiffDetectsRealGap(t *testing.T) {
	// Method A strictly dominates on 8% of examples.
	n := 2000
	rng := rand.New(rand.NewSource(8))
	scoresA := make([]float64, n)
	scoresB := make([]float64, n)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = 1
		if i%2 == 1 {
			labels[i] = -1
		}
		right := float64(labels[i])
		scoresA[i] = right // A always correct
		if rng.Float64() < 0.08 {
			scoresB[i] = -right // B wrong 8% of the time
		} else {
			scoresB[i] = right
		}
	}
	iv, err := BootstrapAccuracyDiff(scoresA, scoresB, labels, 0, 0.95, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo <= 0 {
		t.Errorf("real 8%% gap not significant: %v", iv)
	}
	if iv.Point < 0.06 || iv.Point > 0.10 {
		t.Errorf("point diff %.3f far from designed 0.08", iv.Point)
	}
}

func TestBootstrapDiffNoGapStraddlesZero(t *testing.T) {
	// Two methods with identical error processes but independent errors.
	n := 800
	rng := rand.New(rand.NewSource(10))
	scoresA := make([]float64, n)
	scoresB := make([]float64, n)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = 1
		if i%2 == 1 {
			labels[i] = -1
		}
		right := float64(labels[i])
		scoresA[i], scoresB[i] = right, right
		if rng.Float64() < 0.1 {
			scoresA[i] = -right
		}
		if rng.Float64() < 0.1 {
			scoresB[i] = -right
		}
	}
	iv, err := BootstrapAccuracyDiff(scoresA, scoresB, labels, 0, 0.95, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0) {
		t.Errorf("equal methods produced a significant interval: %v", iv)
	}
}

func TestBootstrapDiffErrors(t *testing.T) {
	s, l := bootstrapFixture(20, 0.9, 12)
	if _, err := BootstrapAccuracyDiff(s, s[:5], l, 0, 0.95, 100, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BootstrapAccuracyDiff(nil, nil, nil, 0, 0.95, 100, 1); err == nil {
		t.Error("empty should error")
	}
	if _, err := BootstrapAccuracyDiff(s, s, l, 0, 0, 100, 1); err == nil {
		t.Error("bad level should error")
	}
	if _, err := BootstrapAccuracyDiff(s, s, l, 0, 0.95, 2, 1); err == nil {
		t.Error("too few reps should error")
	}
}
