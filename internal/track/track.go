// Package track provides the temporal layer a driver-assistance system
// puts on top of the per-frame detector: greedy IoU data association with
// track confirmation and coasting, plus the latency metrics that connect
// detector throughput to the paper's perception-reaction-time analysis
// (how many frames until a newly visible pedestrian is a confirmed track).
package track

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/geom"
)

// Config tunes the tracker.
type Config struct {
	// MatchIoU is the minimum IoU for associating a detection with a track.
	MatchIoU float64
	// ConfirmHits is how many associated detections promote a tentative
	// track to confirmed.
	ConfirmHits int
	// MaxMisses is how many consecutive unmatched frames a track survives
	// (coasting) before deletion.
	MaxMisses int
}

// DefaultConfig returns a conservative 2-of-N confirmation tracker.
func DefaultConfig() Config {
	return Config{MatchIoU: 0.3, ConfirmHits: 2, MaxMisses: 3}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MatchIoU <= 0 || c.MatchIoU > 1 {
		return fmt.Errorf("track: match IoU %g out of (0,1]", c.MatchIoU)
	}
	if c.ConfirmHits < 1 || c.MaxMisses < 0 {
		return fmt.Errorf("track: invalid confirm/miss thresholds %d/%d", c.ConfirmHits, c.MaxMisses)
	}
	return nil
}

// State is a track's lifecycle stage.
type State int

const (
	// Tentative tracks have been seen but not yet confirmed.
	Tentative State = iota
	// Confirmed tracks have accumulated ConfirmHits associations.
	Confirmed
	// Deleted tracks exceeded MaxMisses and are kept only for bookkeeping.
	Deleted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Confirmed:
		return "confirmed"
	case Deleted:
		return "deleted"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Track is one tracked pedestrian.
type Track struct {
	ID    int
	Box   geom.Rect // last associated (or coasted) box
	Score float64   // last detection score
	State State
	Hits  int // total associated detections
	Miss  int // consecutive misses
	// BornFrame and ConfirmedFrame record latency: frames are indexed from
	// the tracker's first Update call.
	BornFrame      int
	ConfirmedFrame int // -1 until confirmed
	velX, velY     float64
}

// Tracker maintains the track set across frames.
type Tracker struct {
	cfg    Config
	nextID int
	frame  int
	tracks []*Track
}

// New returns an empty tracker. It panics on an invalid configuration (a
// programming error, caught by Validate in tests).
func New(cfg Config) *Tracker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Tracker{cfg: cfg}
}

// Tracks returns the live (non-deleted) tracks.
func (t *Tracker) Tracks() []*Track {
	var out []*Track
	for _, tr := range t.tracks {
		if tr.State != Deleted {
			out = append(out, tr)
		}
	}
	return out
}

// Confirmed returns only the confirmed tracks — what a DAS would act on.
func (t *Tracker) Confirmed() []*Track {
	var out []*Track
	for _, tr := range t.tracks {
		if tr.State == Confirmed {
			out = append(out, tr)
		}
	}
	return out
}

// Frame returns the number of Update calls so far.
func (t *Tracker) Frame() int { return t.frame }

// AppendLiveBoxes appends the current boxes of every live (non-deleted)
// track to dst and returns it. Tentative tracks are included: the ROI
// scheduler must keep scanning a candidate or it can never confirm. The
// append-style signature lets a per-frame caller reuse one backing slice
// (dst[:0]) and stay off the heap.
func (t *Tracker) AppendLiveBoxes(dst []geom.Rect) []geom.Rect {
	for _, tr := range t.tracks {
		if tr.State != Deleted {
			dst = append(dst, tr.Box)
		}
	}
	return dst
}

// Update associates one frame's detections with the track set: greedy
// best-IoU matching in descending detection-score order, with constant-
// velocity coasting of the predicted box for unmatched tracks.
func (t *Tracker) Update(dets []eval.Detection) {
	// Predict: move each live track by its velocity.
	for _, tr := range t.tracks {
		if tr.State == Deleted {
			continue
		}
		tr.Box = tr.Box.Translate(geom.Pt{X: int(tr.velX), Y: int(tr.velY)})
	}
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	// Tie-break equal scores by detection index: sort.Slice is unstable, so
	// without it two same-score detections could associate in either order
	// and steal each other's track run to run.
	sort.Slice(order, func(a, b int) bool {
		if dets[order[a]].Score != dets[order[b]].Score {
			return dets[order[a]].Score > dets[order[b]].Score
		}
		return order[a] < order[b]
	})

	matched := make(map[*Track]bool)
	usedDet := make([]bool, len(dets))
	for _, di := range order {
		best := t.cfg.MatchIoU
		var bestTrack *Track
		for _, tr := range t.tracks {
			if tr.State == Deleted || matched[tr] {
				continue
			}
			if iou := geom.IoU(dets[di].Box, tr.Box); iou >= best {
				best = iou
				bestTrack = tr
			}
		}
		if bestTrack == nil {
			continue
		}
		// Associate: update box, velocity, lifecycle.
		old := bestTrack.Box
		bestTrack.velX = 0.6*bestTrack.velX + 0.4*float64(dets[di].Box.Min.X-old.Min.X)
		bestTrack.velY = 0.6*bestTrack.velY + 0.4*float64(dets[di].Box.Min.Y-old.Min.Y)
		bestTrack.Box = dets[di].Box
		bestTrack.Score = dets[di].Score
		bestTrack.Hits++
		bestTrack.Miss = 0
		if bestTrack.State == Tentative && bestTrack.Hits >= t.cfg.ConfirmHits {
			bestTrack.State = Confirmed
			bestTrack.ConfirmedFrame = t.frame
		}
		matched[bestTrack] = true
		usedDet[di] = true
	}
	// Unmatched tracks coast or die.
	for _, tr := range t.tracks {
		if tr.State == Deleted || matched[tr] {
			continue
		}
		tr.Miss++
		if tr.Miss > t.cfg.MaxMisses {
			tr.State = Deleted
		}
	}
	// Unmatched detections start tentative tracks.
	for di, used := range usedDet {
		if used {
			continue
		}
		tr := &Track{
			ID:             t.nextID,
			Box:            dets[di].Box,
			Score:          dets[di].Score,
			State:          Tentative,
			Hits:           1,
			BornFrame:      t.frame,
			ConfirmedFrame: -1,
		}
		if t.cfg.ConfirmHits == 1 {
			tr.State = Confirmed
			tr.ConfirmedFrame = t.frame
		}
		t.nextID++
		t.tracks = append(t.tracks, tr)
	}
	t.frame++
}

// Metrics summarizes tracking quality against ground truth with stable
// identities (a MOTA-style accounting).
type Metrics struct {
	Frames      int
	Matches     int // confirmed-track-to-truth matches summed over frames
	Misses      int // truth boxes with no confirmed track
	FalseTracks int // confirmed tracks with no truth box
	IDSwitches  int // truth identity re-assigned to a different track ID
	// MeanConfirmLatency is the average frames from a track's birth to its
	// confirmation.
	MeanConfirmLatency float64
}

// MOTA returns the multi-object tracking accuracy:
// 1 - (misses + false tracks + switches) / total truth boxes.
func (m Metrics) MOTA() float64 {
	total := m.Matches + m.Misses
	if total == 0 {
		return 0
	}
	return 1 - float64(m.Misses+m.FalseTracks+m.IDSwitches)/float64(total)
}

// Evaluate replays a clip through a fresh tracker fed by detector outputs
// and scores it against ground truth. dets[f] are the detections of frame
// f; truth/ids carry the ground truth with stable identities.
func Evaluate(cfg Config, dets [][]eval.Detection, truth [][]geom.Rect, ids [][]int) (Metrics, error) {
	if len(dets) != len(truth) || len(truth) != len(ids) {
		return Metrics{}, fmt.Errorf("track: dets/truth/ids lengths differ: %d/%d/%d",
			len(dets), len(truth), len(ids))
	}
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	tk := New(cfg)
	var m Metrics
	lastAssign := map[int]int{} // truth identity -> track ID
	var confirmLatencies []int
	seenConfirmed := map[int]bool{}
	for f := range dets {
		tk.Update(dets[f])
		m.Frames++
		confirmed := tk.Confirmed()
		for _, tr := range confirmed {
			if !seenConfirmed[tr.ID] {
				seenConfirmed[tr.ID] = true
				confirmLatencies = append(confirmLatencies, tr.ConfirmedFrame-tr.BornFrame)
			}
		}
		// Greedy truth-to-track matching by IoU.
		usedTrack := make(map[int]bool)
		for gi, gt := range truth[f] {
			best := cfg.MatchIoU
			bestTrack := -1
			for _, tr := range confirmed {
				if usedTrack[tr.ID] {
					continue
				}
				if iou := geom.IoU(gt, tr.Box); iou >= best {
					best = iou
					bestTrack = tr.ID
				}
			}
			if bestTrack < 0 {
				m.Misses++
				continue
			}
			usedTrack[bestTrack] = true
			m.Matches++
			identity := ids[f][gi]
			if prev, ok := lastAssign[identity]; ok && prev != bestTrack {
				m.IDSwitches++
			}
			lastAssign[identity] = bestTrack
		}
		for _, tr := range confirmed {
			if !usedTrack[tr.ID] {
				m.FalseTracks++
			}
		}
	}
	if len(confirmLatencies) > 0 {
		sum := 0
		for _, l := range confirmLatencies {
			sum += l
		}
		m.MeanConfirmLatency = float64(sum) / float64(len(confirmLatencies))
	}
	return m, nil
}
