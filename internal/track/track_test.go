package track

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/geom"
)

func det(x, y int, score float64) eval.Detection {
	return eval.Detection{Box: geom.XYWH(x, y, 64, 128), Score: score}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MatchIoU: 0, ConfirmHits: 2, MaxMisses: 3},
		{MatchIoU: 1.5, ConfirmHits: 2, MaxMisses: 3},
		{MatchIoU: 0.3, ConfirmHits: 0, MaxMisses: 3},
		{MatchIoU: 0.3, ConfirmHits: 2, MaxMisses: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{})
}

func TestTrackLifecycle(t *testing.T) {
	tk := New(DefaultConfig()) // confirm after 2 hits, survive 3 misses
	tk.Update([]eval.Detection{det(100, 100, 1)})
	if got := tk.Tracks(); len(got) != 1 || got[0].State != Tentative {
		t.Fatalf("after 1 hit: %+v", got)
	}
	if len(tk.Confirmed()) != 0 {
		t.Fatal("confirmed too early")
	}
	tk.Update([]eval.Detection{det(102, 101, 1)})
	conf := tk.Confirmed()
	if len(conf) != 1 {
		t.Fatalf("not confirmed after 2 hits: %d", len(conf))
	}
	if conf[0].ConfirmedFrame != 1 || conf[0].BornFrame != 0 {
		t.Errorf("latency bookkeeping wrong: born %d confirmed %d",
			conf[0].BornFrame, conf[0].ConfirmedFrame)
	}
	// Coast for MaxMisses frames, still alive...
	for i := 0; i < 3; i++ {
		tk.Update(nil)
	}
	if len(tk.Tracks()) != 1 {
		t.Fatal("track died during allowed coasting")
	}
	// ...one more miss deletes it.
	tk.Update(nil)
	if len(tk.Tracks()) != 0 {
		t.Fatal("track survived past MaxMisses")
	}
}

func TestTrackIdentityStability(t *testing.T) {
	tk := New(DefaultConfig())
	// A walker moving right 5 px per frame.
	var id int
	for f := 0; f < 10; f++ {
		tk.Update([]eval.Detection{det(100+5*f, 100, 1)})
		tracks := tk.Tracks()
		if len(tracks) != 1 {
			t.Fatalf("frame %d: %d tracks", f, len(tracks))
		}
		if f == 0 {
			id = tracks[0].ID
		} else if tracks[0].ID != id {
			t.Fatalf("frame %d: identity changed %d -> %d", f, id, tracks[0].ID)
		}
	}
}

func TestVelocityCoastingBridgesGaps(t *testing.T) {
	tk := New(DefaultConfig())
	// Establish motion: 10 px/frame rightwards.
	for f := 0; f < 4; f++ {
		tk.Update([]eval.Detection{det(100+10*f, 100, 1)})
	}
	id := tk.Tracks()[0].ID
	// Two missed frames, then the walker reappears where physics put it.
	tk.Update(nil)
	tk.Update(nil)
	tk.Update([]eval.Detection{det(100+10*6, 100, 1)})
	tracks := tk.Confirmed()
	if len(tracks) != 1 || tracks[0].ID != id {
		t.Fatalf("coasting failed to re-associate: %+v", tracks)
	}
}

func TestTwoTargetsNoSwap(t *testing.T) {
	tk := New(DefaultConfig())
	for f := 0; f < 6; f++ {
		tk.Update([]eval.Detection{
			det(100, 100, 0.9),
			det(400, 100, 0.8),
		})
	}
	tracks := tk.Confirmed()
	if len(tracks) != 2 {
		t.Fatalf("want 2 confirmed tracks, got %d", len(tracks))
	}
	if tracks[0].ID == tracks[1].ID {
		t.Fatal("identical track IDs")
	}
}

func TestConfirmHitsOneConfirmsImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfirmHits = 1
	tk := New(cfg)
	tk.Update([]eval.Detection{det(10, 10, 1)})
	if len(tk.Confirmed()) != 1 {
		t.Fatal("ConfirmHits=1 should confirm on first sight")
	}
}

func TestEvaluatePerfectDetector(t *testing.T) {
	// Ground truth: one walker drifting right; a perfect detector reports
	// exactly the truth.
	var dets [][]eval.Detection
	var truth [][]geom.Rect
	var ids [][]int
	for f := 0; f < 10; f++ {
		b := geom.XYWH(100+4*f, 100, 64, 128)
		dets = append(dets, []eval.Detection{{Box: b, Score: 1}})
		truth = append(truth, []geom.Rect{b})
		ids = append(ids, []int{0})
	}
	m, err := Evaluate(DefaultConfig(), dets, truth, ids)
	if err != nil {
		t.Fatal(err)
	}
	// Frame 0 is tentative (not yet confirmed): one miss, then matches.
	if m.Matches != 9 || m.Misses != 1 {
		t.Errorf("matches/misses = %d/%d, want 9/1", m.Matches, m.Misses)
	}
	if m.IDSwitches != 0 || m.FalseTracks != 0 {
		t.Errorf("switches/false = %d/%d", m.IDSwitches, m.FalseTracks)
	}
	if m.MOTA() < 0.8 {
		t.Errorf("MOTA %.3f too low for a perfect detector", m.MOTA())
	}
	if m.MeanConfirmLatency != 1 {
		t.Errorf("confirm latency %.1f frames, want 1", m.MeanConfirmLatency)
	}
}

func TestEvaluateFlakyDetectorWorse(t *testing.T) {
	var full, flaky [][]eval.Detection
	var truth [][]geom.Rect
	var ids [][]int
	for f := 0; f < 20; f++ {
		b := geom.XYWH(100+4*f, 100, 64, 128)
		truth = append(truth, []geom.Rect{b})
		ids = append(ids, []int{0})
		full = append(full, []eval.Detection{{Box: b, Score: 1}})
		if f%3 == 0 {
			flaky = append(flaky, nil) // drops every third frame
		} else {
			flaky = append(flaky, []eval.Detection{{Box: b, Score: 1}})
		}
	}
	mFull, err := Evaluate(DefaultConfig(), full, truth, ids)
	if err != nil {
		t.Fatal(err)
	}
	mFlaky, err := Evaluate(DefaultConfig(), flaky, truth, ids)
	if err != nil {
		t.Fatal(err)
	}
	if mFlaky.MOTA() >= mFull.MOTA() {
		t.Errorf("flaky detector MOTA %.3f not worse than full %.3f",
			mFlaky.MOTA(), mFull.MOTA())
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(DefaultConfig(), make([][]eval.Detection, 2), make([][]geom.Rect, 1), make([][]int, 2)); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(Config{}, nil, nil, nil); err == nil {
		t.Error("invalid config should error")
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Tentative, Confirmed, Deleted, State(9)} {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
}

func TestMOTAZeroTruth(t *testing.T) {
	var m Metrics
	if m.MOTA() != 0 {
		t.Error("MOTA with no truth should be 0")
	}
}
