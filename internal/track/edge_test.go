package track

import (
	"testing"

	"repro/internal/eval"
)

// TestCoastingExpiryBoundary pins the off-by-one in coasting: a track
// survives exactly MaxMisses consecutive unmatched frames and is deleted
// on the next one (Miss > MaxMisses), not at Miss == MaxMisses.
func TestCoastingExpiryBoundary(t *testing.T) {
	for _, maxMisses := range []int{0, 1, 3} {
		tk := New(Config{MatchIoU: 0.3, ConfirmHits: 1, MaxMisses: maxMisses})
		tk.Update([]eval.Detection{det(100, 100, 1)})
		// The track coasts for exactly maxMisses empty frames...
		for i := 1; i <= maxMisses; i++ {
			tk.Update(nil)
			live := tk.Tracks()
			if len(live) != 1 || live[0].Miss != i {
				t.Fatalf("MaxMisses=%d: after %d misses live=%+v, want one track with Miss=%d",
					maxMisses, i, live, i)
			}
		}
		// ...and dies on miss maxMisses+1, no earlier and no later.
		tk.Update(nil)
		if live := tk.Tracks(); len(live) != 0 {
			t.Fatalf("MaxMisses=%d: track survived %d misses: %+v", maxMisses, maxMisses+1, live)
		}
	}
}

// TestMissCountResetsOnMatch verifies a re-association clears the miss
// streak entirely: after coasting MaxMisses-1 frames and rematching, the
// track again survives a full MaxMisses misses.
func TestMissCountResetsOnMatch(t *testing.T) {
	tk := New(Config{MatchIoU: 0.3, ConfirmHits: 1, MaxMisses: 2})
	tk.Update([]eval.Detection{det(100, 100, 1)})
	tk.Update(nil)
	tk.Update(nil) // Miss == MaxMisses: one frame from deletion
	tk.Update([]eval.Detection{det(100, 100, 1)})
	if live := tk.Tracks(); len(live) != 1 || live[0].Miss != 0 {
		t.Fatalf("after rematch: %+v, want one track with Miss=0", live)
	}
	// The full coasting budget is available again.
	tk.Update(nil)
	tk.Update(nil)
	if live := tk.Tracks(); len(live) != 1 {
		t.Fatalf("rematched track did not get a fresh coasting budget: %+v", live)
	}
	tk.Update(nil)
	if live := tk.Tracks(); len(live) != 0 {
		t.Fatalf("rematched track outlived its coasting budget: %+v", live)
	}
}

// TestConfirmAndDeleteSameFrame drives one Update in which track A receives
// its confirming hit while track B simultaneously exceeds MaxMisses: the
// confirmation must not resurrect or shield the dying track, and the
// deletion must not eat the confirmation.
func TestConfirmAndDeleteSameFrame(t *testing.T) {
	tk := New(Config{MatchIoU: 0.3, ConfirmHits: 2, MaxMisses: 1})
	a := det(0, 0, 1)
	b := det(400, 0, 1) // far away: never associates with a
	c := det(200, 0, 1) // far from both: always a fresh track
	tk.Update([]eval.Detection{a, b})
	tk.Update(nil) // both coast: Miss == MaxMisses
	// This frame does all three lifecycle transitions at once: b gets its
	// confirming second hit, a exceeds MaxMisses and is deleted, and c is
	// born tentative.
	tk.Update([]eval.Detection{b, c})
	live := tk.Tracks()
	if len(live) != 2 {
		t.Fatalf("live tracks = %+v, want confirmed b + new tentative c", live)
	}
	var conf, tent *Track
	for _, tr := range live {
		switch tr.State {
		case Confirmed:
			conf = tr
		case Tentative:
			tent = tr
		}
	}
	if conf == nil || tent == nil {
		t.Fatalf("want one confirmed and one tentative, got %+v", live)
	}
	if conf.Box != b.Box {
		t.Errorf("confirmed track box %v, want %v", conf.Box, b.Box)
	}
	if conf.ConfirmedFrame != 2 {
		t.Errorf("confirmed at frame %d, want 2", conf.ConfirmedFrame)
	}
	// The dying track at a's location must not capture c's detection: the
	// new track is born this frame with a fresh ID.
	if tent.Box != c.Box || tent.BornFrame != 2 || tent.Hits != 1 {
		t.Errorf("tentative track %+v, want c's box born at frame 2 with 1 hit", tent)
	}
	if tent.ID != 2 {
		t.Errorf("new tentative has ID %d, want fresh ID 2", tent.ID)
	}
	// AppendLiveBoxes sees exactly the live pair — deleted tracks excluded,
	// tentative included.
	boxes := tk.AppendLiveBoxes(nil)
	if len(boxes) != 2 {
		t.Fatalf("AppendLiveBoxes = %v, want 2 boxes", boxes)
	}
}

// TestGreedyTieBreakDeterminism pins the association order for equal-score
// detections: sort.Slice is unstable, so the comparator's index tie-break
// is what keeps two same-score detections associating identically run to
// run. Geometry is chosen so processing order is observable: both
// detections prefer track A; whichever goes first wins A, and only the
// index-0 detection leaves the other enough overlap (IoU 0.33 vs 0.28
// around the 0.3 gate) to still claim track B instead of spawning a third
// track.
func TestGreedyTieBreakDeterminism(t *testing.T) {
	d0 := det(4, 0, 0.7)
	d1 := det(8, 0, 0.7)
	for trial := 0; trial < 100; trial++ {
		tk := New(Config{MatchIoU: 0.3, ConfirmHits: 1, MaxMisses: 0})
		tk.Update([]eval.Detection{det(0, 0, 1), det(40, 0, 0.9)}) // tracks A, B
		tk.Update([]eval.Detection{d0, d1})
		live := tk.Tracks()
		if len(live) != 2 {
			t.Fatalf("trial %d: %d live tracks %+v, want A and B rematched with no third",
				trial, len(live), live)
		}
		if live[0].Box != d0.Box || live[1].Box != d1.Box {
			t.Fatalf("trial %d: boxes (%v, %v), want d0->A (%v) and d1->B (%v)",
				trial, live[0].Box, live[1].Box, d0.Box, d1.Box)
		}
	}
}

// TestTrackTieBreakLastWins documents the track-side tie: when a detection
// overlaps two tracks with exactly equal IoU, the >= comparison hands it
// to the later track in insertion order — deterministic because insertion
// order is.
func TestTrackTieBreakLastWins(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		tk := New(Config{MatchIoU: 0.1, ConfirmHits: 1, MaxMisses: 0})
		// Two tracks symmetric about x=32; a centered detection ties exactly.
		tk.Update([]eval.Detection{det(0, 0, 1), det(64, 0, 0.9)})
		tk.Update([]eval.Detection{det(32, 0, 1)})
		live := tk.Tracks()
		if len(live) != 1 {
			t.Fatalf("trial %d: live=%+v, want only the tie-winner (other expired)", trial, live)
		}
		if live[0].ID != 1 {
			t.Fatalf("trial %d: tie went to track %d, want the later track 1", trial, live[0].ID)
		}
	}
}
