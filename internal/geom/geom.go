// Package geom provides the small geometric primitives used throughout the
// detector: integer points and rectangles, intersection-over-union, and
// sliding-window grids.
//
// Rectangles follow the image convention: the origin is the top-left corner,
// X grows rightwards, Y grows downwards, and the Max edge is exclusive.
package geom

import "fmt"

// Pt is an integer point in image coordinates.
type Pt struct {
	X, Y int
}

// Add returns the vector sum p+q.
func (p Pt) Add(q Pt) Pt { return Pt{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Pt) Sub(q Pt) Pt { return Pt{p.X - q.X, p.Y - q.Y} }

// String implements fmt.Stringer.
func (p Pt) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a half-open axis-aligned rectangle: it contains points (x, y) with
// Min.X <= x < Max.X and Min.Y <= y < Max.Y.
type Rect struct {
	Min, Max Pt
}

// R is shorthand for constructing a Rect from edge coordinates.
func R(x0, y0, x1, y1 int) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{Pt{x0, y0}, Pt{x1, y1}}
}

// XYWH constructs a Rect from a top-left corner and a size.
func XYWH(x, y, w, h int) Rect { return R(x, y, x+w, y+h) }

// W returns the width of r.
func (r Rect) W() int { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() int { return r.Max.Y - r.Min.Y }

// Area returns the number of integer points contained in r.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r. The empty rectangle
// is contained in every rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersect returns the largest rectangle contained in both r and s. If the
// two do not overlap, the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	if r.Min.X < s.Min.X {
		r.Min.X = s.Min.X
	}
	if r.Min.Y < s.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if r.Max.X > s.Max.X {
		r.Max.X = s.Max.X
	}
	if r.Max.Y > s.Max.Y {
		r.Max.Y = s.Max.Y
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	if r.Min.X > s.Min.X {
		r.Min.X = s.Min.X
	}
	if r.Min.Y > s.Min.Y {
		r.Min.Y = s.Min.Y
	}
	if r.Max.X < s.Max.X {
		r.Max.X = s.Max.X
	}
	if r.Max.Y < s.Max.Y {
		r.Max.Y = s.Max.Y
	}
	return r
}

// Translate returns r shifted by p.
func (r Rect) Translate(p Pt) Rect {
	return Rect{r.Min.Add(p), r.Max.Add(p)}
}

// Scale returns r with both corners multiplied by the scale factor s and
// rounded to the nearest integer. Scaling by 1 is the identity.
func (r Rect) Scale(s float64) Rect {
	round := func(v float64) int {
		if v >= 0 {
			return int(v + 0.5)
		}
		return -int(-v + 0.5)
	}
	return R(round(float64(r.Min.X)*s), round(float64(r.Min.Y)*s),
		round(float64(r.Max.X)*s), round(float64(r.Max.Y)*s))
}

// ScaleXY returns r with X coordinates multiplied by sx and Y coordinates by
// sy, rounded to the nearest integer. Pyramid levels are rounded to integer
// grids per axis, so mapping level coordinates back to the frame generally
// needs distinct horizontal and vertical factors; Scale is the isotropic
// special case.
func (r Rect) ScaleXY(sx, sy float64) Rect {
	round := func(v float64) int {
		if v >= 0 {
			return int(v + 0.5)
		}
		return -int(-v + 0.5)
	}
	return R(round(float64(r.Min.X)*sx), round(float64(r.Min.Y)*sy),
		round(float64(r.Max.X)*sx), round(float64(r.Max.Y)*sy))
}

// Center returns the integer center of r (rounded towards Min).
func (r Rect) Center() Pt {
	return Pt{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d;%dx%d]", r.Min.X, r.Min.Y, r.W(), r.H())
}

// IoU returns the intersection-over-union of the two rectangles, in [0, 1].
// Two empty rectangles have IoU 0.
func IoU(a, b Rect) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	return float64(inter) / float64(union)
}

// Windows enumerates the top-left corners of every wxh window that fits
// inside bounds when sliding with the given stride in both directions.
// The stride must be positive. Corners are produced row-major.
func Windows(bounds Rect, w, h, stride int) []Pt {
	if stride <= 0 || w <= 0 || h <= 0 || bounds.W() < w || bounds.H() < h {
		return nil
	}
	var pts []Pt
	for y := bounds.Min.Y; y+h <= bounds.Max.Y; y += stride {
		for x := bounds.Min.X; x+w <= bounds.Max.X; x += stride {
			pts = append(pts, Pt{x, y})
		}
	}
	return pts
}

// WindowGrid returns the number of window positions horizontally and
// vertically for a wxh window sliding with the given stride inside a
// boundsW x boundsH area. Either count may be zero if the window does not fit.
func WindowGrid(boundsW, boundsH, w, h, stride int) (nx, ny int) {
	if stride <= 0 || w <= 0 || h <= 0 {
		return 0, 0
	}
	if boundsW >= w {
		nx = (boundsW-w)/stride + 1
	}
	if boundsH >= h {
		ny = (boundsH-h)/stride + 1
	}
	if nx == 0 || ny == 0 {
		return 0, 0
	}
	return nx, ny
}
