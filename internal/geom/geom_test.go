package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectConstructors(t *testing.T) {
	r := R(3, 4, 7, 10)
	if r.W() != 4 || r.H() != 6 {
		t.Fatalf("R: got %dx%d, want 4x6", r.W(), r.H())
	}
	if got := XYWH(3, 4, 4, 6); got != r {
		t.Fatalf("XYWH: got %v, want %v", got, r)
	}
	// Swapped corners are normalized.
	if got := R(7, 10, 3, 4); got != r {
		t.Fatalf("R with swapped corners: got %v, want %v", got, r)
	}
}

func TestRectEmptyAndArea(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
		area  int
	}{
		{R(0, 0, 0, 0), true, 0},
		{R(0, 0, 1, 1), false, 1},
		{R(5, 5, 5, 9), true, 0},
		{R(-2, -2, 2, 2), false, 16},
	}
	for _, c := range cases {
		if c.r.Empty() != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, c.r.Empty(), c.empty)
		}
		if c.r.Area() != c.area {
			t.Errorf("%v.Area() = %d, want %d", c.r, c.r.Area(), c.area)
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got, want := a.Intersect(b), R(5, 5, 10, 10); got != want {
		t.Errorf("Intersect: got %v, want %v", got, want)
	}
	if got, want := a.Union(b), R(0, 0, 15, 15); got != want {
		t.Errorf("Union: got %v, want %v", got, want)
	}
	// Disjoint intersection is empty.
	c := R(20, 20, 30, 30)
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect: got %v, want empty", got)
	}
	// Union with empty is identity.
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty: got %v, want %v", got, a)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Errorf("empty Union: got %v, want %v", got, a)
	}
}

func TestContains(t *testing.T) {
	r := R(0, 0, 4, 4)
	if !r.Contains(Pt{0, 0}) {
		t.Error("Min corner should be contained")
	}
	if r.Contains(Pt{4, 4}) {
		t.Error("Max corner should be excluded (half-open)")
	}
	if !r.ContainsRect(R(1, 1, 3, 3)) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(R(1, 1, 5, 3)) {
		t.Error("overhanging rect should not be contained")
	}
	if !r.ContainsRect(Rect{}) {
		t.Error("empty rect is contained in everything")
	}
}

func TestIoU(t *testing.T) {
	a := R(0, 0, 10, 10)
	if got := IoU(a, a); got != 1 {
		t.Errorf("IoU(a,a) = %v, want 1", got)
	}
	if got := IoU(a, R(10, 10, 20, 20)); got != 0 {
		t.Errorf("disjoint IoU = %v, want 0", got)
	}
	// Half overlap: inter 50, union 150 -> 1/3.
	b := R(5, 0, 15, 10)
	if got, want := IoU(a, b), 50.0/150.0; got != want {
		t.Errorf("IoU = %v, want %v", got, want)
	}
}

func TestScaleIdentityAndRounding(t *testing.T) {
	r := R(3, 4, 67, 132)
	if got := r.Scale(1); got != r {
		t.Errorf("Scale(1) = %v, want %v", got, r)
	}
	got := R(0, 0, 3, 3).Scale(0.5)
	// 3*0.5 = 1.5 rounds to 2.
	if want := R(0, 0, 2, 2); got != want {
		t.Errorf("Scale(0.5) = %v, want %v", got, want)
	}
	neg := R(-4, -4, 4, 4).Scale(0.5)
	if want := R(-2, -2, 2, 2); neg != want {
		t.Errorf("negative Scale = %v, want %v", neg, want)
	}
}

func TestScaleXY(t *testing.T) {
	r := R(8, 16, 72, 144)
	if got := r.ScaleXY(1, 1); got != r {
		t.Errorf("ScaleXY(1,1) = %v, want %v", got, r)
	}
	// Each axis uses its own factor.
	got := r.ScaleXY(1.5, 2)
	if want := R(12, 32, 108, 288); got != want {
		t.Errorf("ScaleXY(1.5,2) = %v, want %v", got, want)
	}
	// Isotropic ScaleXY agrees with Scale, including negative rounding.
	for _, s := range []float64{0.5, 1.1, 2.75} {
		a := R(-7, -3, 9, 13)
		if x, y := a.Scale(s), a.ScaleXY(s, s); x != y {
			t.Errorf("Scale(%g) = %v but ScaleXY = %v", s, x, y)
		}
	}
}

func TestWindows(t *testing.T) {
	pts := Windows(R(0, 0, 10, 10), 4, 4, 2)
	// x in {0,2,4,6}, y in {0,2,4,6} -> 16 windows.
	if len(pts) != 16 {
		t.Fatalf("got %d windows, want 16", len(pts))
	}
	if pts[0] != (Pt{0, 0}) || pts[len(pts)-1] != (Pt{6, 6}) {
		t.Errorf("unexpected corner windows: %v .. %v", pts[0], pts[len(pts)-1])
	}
	if got := Windows(R(0, 0, 3, 3), 4, 4, 1); got != nil {
		t.Errorf("window larger than bounds: got %v, want nil", got)
	}
	if got := Windows(R(0, 0, 10, 10), 4, 4, 0); got != nil {
		t.Errorf("zero stride: got %v, want nil", got)
	}
}

func TestWindowGrid(t *testing.T) {
	nx, ny := WindowGrid(240, 135, 8, 16, 1)
	if nx != 233 || ny != 120 {
		t.Errorf("HDTV cell grid: got %dx%d, want 233x120", nx, ny)
	}
	nx, ny = WindowGrid(7, 10, 8, 16, 1)
	if nx != 0 || ny != 0 {
		t.Errorf("non-fitting window: got %dx%d, want 0x0", nx, ny)
	}
}

func TestWindowGridMatchesWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		bw, bh := rng.Intn(50)+1, rng.Intn(50)+1
		w, h := rng.Intn(20)+1, rng.Intn(20)+1
		stride := rng.Intn(5) + 1
		nx, ny := WindowGrid(bw, bh, w, h, stride)
		pts := Windows(R(0, 0, bw, bh), w, h, stride)
		if nx*ny != len(pts) {
			t.Fatalf("grid %dx%d=%d but %d windows (b=%dx%d w=%dx%d s=%d)",
				nx, ny, nx*ny, len(pts), bw, bh, w, h, stride)
		}
	}
}

// Property: IoU is symmetric and bounded in [0,1].
func TestIoUPropertySymmetricBounded(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh int16) bool {
		a := XYWH(int(ax0)%100, int(ay0)%100, abs(int(aw))%50, abs(int(ah))%50)
		b := XYWH(int(bx0)%100, int(by0)%100, abs(int(bw))%50, abs(int(bh))%50)
		u, v := IoU(a, b), IoU(b, a)
		return u == v && u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both operands; both operands are
// contained in the union.
func TestIntersectUnionProperty(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh int16) bool {
		a := XYWH(int(ax0)%100, int(ay0)%100, abs(int(aw))%50, abs(int(ah))%50)
		b := XYWH(int(bx0)%100, int(by0)%100, abs(int(bw))%50, abs(int(bh))%50)
		i := a.Intersect(b)
		u := a.Union(b)
		return a.ContainsRect(i) && b.ContainsRect(i) &&
			u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestTranslateAndCenter(t *testing.T) {
	r := R(0, 0, 10, 20)
	moved := r.Translate(Pt{5, -3})
	if moved != R(5, -3, 15, 17) {
		t.Errorf("Translate = %v", moved)
	}
	if c := r.Center(); c != (Pt{5, 10}) {
		t.Errorf("Center = %v", c)
	}
	if got := (Pt{1, 2}).Add(Pt{3, 4}); got != (Pt{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := (Pt{1, 2}).Sub(Pt{3, 4}); got != (Pt{-2, -2}) {
		t.Errorf("Sub = %v", got)
	}
	if r.String() == "" || (Pt{}).String() == "" {
		t.Error("empty stringers")
	}
}
