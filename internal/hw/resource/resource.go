// Package resource provides the FPGA resource model used to reproduce the
// paper's Table 2 (utilization of the two-scale accelerator on a Zynq
// ZC7020). Every module of the design contributes a parameterized cost in
// LUTs, flip-flops, LUTRAM, block RAM, DSP slices and clock buffers; the
// whole-design rollup is compared against the published numbers.
//
// Cost coefficients are calibrated once, from first principles where
// possible (BRAM from bit capacity, DSPs from multiplier allocation) and
// against Table 2 for the per-unit LUT/FF constants; the calibration is
// documented next to each constant. The model's purpose is the same as any
// architectural cost model: relative comparisons (ablation over MACBAR
// count, memory depth, scale count) anchored to one published design point.
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Usage is one module's (or the whole design's) resource footprint.
type Usage struct {
	LUT    float64
	FF     float64
	LUTRAM float64
	BRAM   float64 // 36-kb block equivalents (halves allowed, as in Table 2)
	DSP    float64 // DSP48 slices
	BUFG   float64
}

// Add returns the element-wise sum.
func (u Usage) Add(v Usage) Usage {
	return Usage{
		LUT:    u.LUT + v.LUT,
		FF:     u.FF + v.FF,
		LUTRAM: u.LUTRAM + v.LUTRAM,
		BRAM:   u.BRAM + v.BRAM,
		DSP:    u.DSP + v.DSP,
		BUFG:   u.BUFG + v.BUFG,
	}
}

// Scale returns the footprint multiplied by k.
func (u Usage) Scale(k float64) Usage {
	return Usage{
		LUT:    u.LUT * k,
		FF:     u.FF * k,
		LUTRAM: u.LUTRAM * k,
		BRAM:   u.BRAM * k,
		DSP:    u.DSP * k,
		BUFG:   u.BUFG * k,
	}
}

// String implements fmt.Stringer.
func (u Usage) String() string {
	return fmt.Sprintf("LUT %.0f  FF %.0f  LUTRAM %.0f  BRAM %.1f  DSP48 %.0f  BUFG %.0f",
		u.LUT, u.FF, u.LUTRAM, u.BRAM, u.DSP, u.BUFG)
}

// ZC7020 capacity, for utilization percentages (Zynq XC7Z020: 53,200 LUTs,
// 106,400 FFs, 17,400 LUTRAM-capable LUTs, 140 BRAM36, 220 DSP48E1, 32 BUFG).
var ZC7020 = Usage{LUT: 53200, FF: 106400, LUTRAM: 17400, BRAM: 140, DSP: 220, BUFG: 32}

// Percent returns the utilization of u against a device capacity.
func (u Usage) Percent(device Usage) Usage {
	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * a / b
	}
	return Usage{
		LUT:    pct(u.LUT, device.LUT),
		FF:     pct(u.FF, device.FF),
		LUTRAM: pct(u.LUTRAM, device.LUTRAM),
		BRAM:   pct(u.BRAM, device.BRAM),
		DSP:    pct(u.DSP, device.DSP),
		BUFG:   pct(u.BUFG, device.BUFG),
	}
}

// Table2 is the paper's published utilization of the whole accelerator.
var Table2 = Usage{LUT: 26051, FF: 40190, LUTRAM: 383, BRAM: 98.5, DSP: 18, BUFG: 1}

// DesignParams describes an accelerator configuration to cost.
type DesignParams struct {
	// Frame geometry.
	CellsX int // cells per frame row (240 for HDTV)
	// NHOGMem depth in cell rows (18).
	MemRows int
	// FeatureBits is the feature word width (16).
	FeatureBits int
	// Scales is the number of detection scales (2 in the paper).
	Scales int
	// Classes is the number of object classes; each scale hosts one SVM
	// classifier instance per class (the paper's "several instances of SVM
	// classifiers ... multiple object detection"). 0 means 1.
	Classes int
	// MACBARs and MACsPerBar size each SVM classifier instance (8, 16).
	MACBARs, MACsPerBar int
	// BlockLen is the words per block (36).
	BlockLen int
	// ScalerPhases is the number of distinct interpolation phases per
	// scaler stage (shift-add networks instantiated).
	ScalerPhases int
	// ScaleStep is the ratio between adjacent scales; it sizes each scaled
	// level's temporary feature memory. The paper never states its second
	// scale's ratio; 2.25 reproduces both the ~1.2M-cycle classifier count
	// and the BRAM budget (see the accel package and EXPERIMENTS.md).
	ScaleStep float64
}

// PaperParams returns the published design point.
func PaperParams() DesignParams {
	return DesignParams{
		CellsX:       240,
		MemRows:      18,
		FeatureBits:  16,
		Scales:       2,
		MACBARs:      8,
		MACsPerBar:   16,
		BlockLen:     36,
		ScalerPhases: 8,
		ScaleStep:    2.25,
	}
}

// Module is one named line of the utilization breakdown.
type Module struct {
	Name  string
	Usage Usage
}

// Breakdown is the per-module cost report.
type Breakdown struct {
	Modules []Module
	Total   Usage
}

// Calibrated per-unit constants. Derivations:
//
//   - A 16x16-bit LUT-based multiply-accumulate lane costs ~150 LUTs and
//     ~120 FFs in 7-series fabric (the design implements its 128 MACs in
//     fabric — Table 2 shows only 18 DSPs, far fewer than the MAC count, so
//     the MACs cannot be DSP-mapped).
//   - The 18 DSP48s are allocated to the HOG pipeline's wide arithmetic:
//     CORDIC/gain stages, the two L2-norm square/accumulate paths, and the
//     normalization dividers.
//   - BRAM is computed exactly from bit capacity: one BRAM36 holds 36 kb.
//   - Line buffers (2 rows x 1920 x 8 bit = 30.7 kb) and the SVM column
//     buffers are sized from geometry.
//   - Control/AXI overhead absorbs the remainder to the published totals;
//     its constants are the calibration residue.
const (
	// A fabric-mapped 16-bit serial-booth MAC lane: Table 2 shows only 18
	// DSP48s against 256 MAC lanes (two scales), so the MACs must live in
	// LUTs; ~60 LUTs and ~95 FFs per lane closes the published totals.
	lutPerMAC = 60.0
	ffPerMAC  = 95.0

	lutPerShiftAddPhase = 220.0 // 4 CSD networks + combine tree per phase
	ffPerShiftAddPhase  = 180.0

	lutHOGPipe = 3600.0 // gradient, CORDIC, binning, accumulation control
	ffHOGPipe  = 6200.0
	dspHOGPipe = 12.0 // CORDIC gain stage, norm square/accumulate

	lutNormalizer = 1500.0 // isqrt + two divider pipelines
	ffNormalizer  = 2400.0
	dspNormalizer = 6.0

	lutControlBase = 1400.0 // frame control, address generators, result collation
	ffControlBase  = 2200.0
	lutramControl  = 383.0 // small distributed FIFOs (from Table 2)

	ffPerClassifierPipe = 1400.0 // column buffers + partial-sum pipeline regs
	lutPerClassifierCtl = 900.0
)

// bitsToBRAM converts a bit capacity to BRAM36 blocks, allowing half
// blocks (RAMB18) like Table 2's 98.5.
func bitsToBRAM(bits float64) float64 {
	return math.Ceil(bits/18432) / 2 // count RAMB18s, report as halves of BRAM36
}

// Estimate produces the per-module breakdown for a design point.
func Estimate(p DesignParams) (*Breakdown, error) {
	if p.CellsX < 8 || p.MemRows < 2 || p.Scales < 1 || p.MACBARs < 1 ||
		p.MACsPerBar < 1 || p.BlockLen < 1 || p.FeatureBits < 4 {
		return nil, fmt.Errorf("resource: implausible design params %+v", p)
	}
	b := &Breakdown{}
	add := func(name string, u Usage) {
		b.Modules = append(b.Modules, Module{Name: name, Usage: u})
		b.Total = b.Total.Add(u)
	}

	// HOG extractor: two pixel-row line buffers (cellsX*8 px @ 8bpp) plus
	// the gradient/CORDIC/binning pipeline.
	lineBufBits := float64(2 * p.CellsX * 8 * 8)
	add("hog-extractor", Usage{
		LUT:  lutHOGPipe,
		FF:   ffHOGPipe,
		BRAM: bitsToBRAM(lineBufBits),
		DSP:  dspHOGPipe,
	})

	// Block normalizer.
	cellRowBits := float64(p.CellsX * 9 * 24) // one cell row of 9 24-bit bins
	add("block-normalizer", Usage{
		LUT:  lutNormalizer,
		FF:   ffNormalizer,
		BRAM: bitsToBRAM(cellRowBits),
		DSP:  dspNormalizer,
	})

	// NHOGMem: CellsX x MemRows blocks of BlockLen x FeatureBits.
	memBits := float64(p.CellsX*p.MemRows) * float64(p.BlockLen*p.FeatureBits)
	add("nhogmem", Usage{
		LUT:  600, // bank address decode and arbitration
		FF:   900,
		BRAM: bitsToBRAM(memBits),
	})

	// Scaler chain: one stage per extra scale. Each scaled level also has
	// its temporary feature memory (Figure 6), sized by that level's
	// cell-column count at the same 18-row depth.
	step := p.ScaleStep
	if step <= 1 {
		step = 2.25
	}
	for s := 1; s < p.Scales; s++ {
		scaledCells := float64(p.CellsX) / math.Pow(step, float64(s))
		stageBits := scaledCells * float64(p.MemRows) * float64(p.BlockLen*p.FeatureBits)
		add(fmt.Sprintf("scaler-stage-%d", s), Usage{
			LUT:  lutPerShiftAddPhase * float64(p.ScalerPhases),
			FF:   ffPerShiftAddPhase * float64(p.ScalerPhases),
			BRAM: bitsToBRAM(stageBits),
		})
	}

	// SVM classifier instances: one per scale per object class.
	classes := p.Classes
	if classes < 1 {
		classes = 1
	}
	macs := float64(p.MACBARs * p.MACsPerBar)
	for s := 0; s < p.Scales; s++ {
		for c := 0; c < classes; c++ {
			name := fmt.Sprintf("svm-classifier-%d", s)
			if classes > 1 {
				name = fmt.Sprintf("svm-classifier-%d-class%d", s, c)
			}
			add(name, Usage{
				LUT: lutPerMAC*macs + lutPerClassifierCtl,
				FF:  ffPerMAC*macs + ffPerClassifierPipe,
				// Model memory: one weight vector + column buffers.
				BRAM: bitsToBRAM(float64(p.MACBARs*p.MACsPerBar*p.BlockLen*p.FeatureBits) +
					float64(2*p.MACsPerBar*p.BlockLen*p.FeatureBits)),
			})
		}
	}

	// Global control, result collation, clocking.
	add("control", Usage{
		LUT:    lutControlBase,
		FF:     ffControlBase,
		LUTRAM: lutramControl,
		BUFG:   1,
	})
	return b, nil
}

// CompareTable2 reports the relative error of an estimate against the
// published Table 2 totals, per resource class.
func CompareTable2(total Usage) map[string]float64 {
	rel := func(got, want float64) float64 {
		if want == 0 {
			return 0
		}
		return (got - want) / want
	}
	return map[string]float64{
		"LUT":    rel(total.LUT, Table2.LUT),
		"FF":     rel(total.FF, Table2.FF),
		"LUTRAM": rel(total.LUTRAM, Table2.LUTRAM),
		"BRAM":   rel(total.BRAM, Table2.BRAM),
		"DSP":    rel(total.DSP, Table2.DSP),
		"BUFG":   rel(total.BUFG, Table2.BUFG),
	}
}

// Render formats the breakdown as a fixed-width table with a device
// utilization footer, in the style of Table 2.
func (b *Breakdown) Render(device Usage) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %8s %7s %6s %5s\n",
		"module", "LUT", "FF", "LUTRAM", "BRAM", "DSP48", "BUFG")
	for _, m := range b.Modules {
		u := m.Usage
		fmt.Fprintf(&sb, "%-20s %8.0f %8.0f %8.0f %7.1f %6.0f %5.0f\n",
			m.Name, u.LUT, u.FF, u.LUTRAM, u.BRAM, u.DSP, u.BUFG)
	}
	fmt.Fprintf(&sb, "%-20s %8.0f %8.0f %8.0f %7.1f %6.0f %5.0f\n",
		"TOTAL", b.Total.LUT, b.Total.FF, b.Total.LUTRAM, b.Total.BRAM, b.Total.DSP, b.Total.BUFG)
	p := b.Total.Percent(device)
	fmt.Fprintf(&sb, "%-20s %7.1f%% %7.1f%% %7.1f%% %6.1f%% %5.1f%% %4.1f%%\n",
		"utilization", p.LUT, p.FF, p.LUTRAM, p.BRAM, p.DSP, p.BUFG)
	return sb.String()
}
