package resource

import (
	"math"
	"strings"
	"testing"
)

func TestUsageArithmetic(t *testing.T) {
	a := Usage{LUT: 10, FF: 20, LUTRAM: 1, BRAM: 2, DSP: 3, BUFG: 1}
	b := Usage{LUT: 5, FF: 5, BRAM: 0.5}
	sum := a.Add(b)
	if sum.LUT != 15 || sum.FF != 25 || sum.BRAM != 2.5 || sum.DSP != 3 {
		t.Errorf("Add = %+v", sum)
	}
	double := a.Scale(2)
	if double.LUT != 20 || double.BUFG != 2 {
		t.Errorf("Scale = %+v", double)
	}
	if a.String() == "" {
		t.Error("empty usage string")
	}
}

func TestPercent(t *testing.T) {
	u := Usage{LUT: 26600, FF: 53200}
	p := u.Percent(ZC7020)
	if p.LUT != 50 {
		t.Errorf("LUT%% = %v, want 50", p.LUT)
	}
	if p.FF != 50 {
		t.Errorf("FF%% = %v, want 50", p.FF)
	}
	// Zero-capacity classes do not divide by zero.
	z := u.Percent(Usage{})
	if z.LUT != 0 {
		t.Error("zero-device percent should be 0")
	}
}

// TestEstimateReproducesTable2 is experiment E3: the per-module cost model
// rolled up over the paper's design point must land on the published
// utilization. LUT/FF/LUTRAM/DSP/BUFG are calibrated within 2%; BRAM is a
// first-principles bit-capacity computation and lands within 10% (the
// residual comes from the unknown second-scale ratio; see EXPERIMENTS.md).
func TestEstimateReproducesTable2(t *testing.T) {
	b, err := Estimate(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	diffs := CompareTable2(b.Total)
	tolerance := map[string]float64{
		"LUT": 0.02, "FF": 0.02, "LUTRAM": 0.01, "BRAM": 0.10, "DSP": 0.001, "BUFG": 0.001,
	}
	for class, diff := range diffs {
		if math.Abs(diff) > tolerance[class] {
			t.Errorf("%s off by %+.1f%% (tolerance %.0f%%)", class, diff*100, tolerance[class]*100)
		}
	}
	t.Logf("\n%s", b.Render(ZC7020))
}

// TestEstimateFitsZC7020: the design must fit its published device.
func TestEstimateFitsZC7020(t *testing.T) {
	b, err := Estimate(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	p := b.Total.Percent(ZC7020)
	for name, v := range map[string]float64{
		"LUT": p.LUT, "FF": p.FF, "LUTRAM": p.LUTRAM, "BRAM": p.BRAM, "DSP": p.DSP, "BUFG": p.BUFG,
	} {
		if v > 100 {
			t.Errorf("%s exceeds the ZC7020: %.1f%%", name, v)
		}
	}
}

// TestScalingTrends: the model must move in the right direction for the
// design knobs the paper discusses.
func TestScalingTrends(t *testing.T) {
	base, err := Estimate(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	// More scales -> strictly more of everything the classifier and scaler
	// consume ("by employing a larger device ... extended to cover several
	// scales").
	p3 := PaperParams()
	p3.Scales = 3
	b3, err := Estimate(p3)
	if err != nil {
		t.Fatal(err)
	}
	if b3.Total.LUT <= base.Total.LUT || b3.Total.BRAM <= base.Total.BRAM {
		t.Error("third scale should cost LUTs and BRAM")
	}
	// The [DSD'14] 135-row memory must cost far more BRAM than 18 rows.
	pOld := PaperParams()
	pOld.MemRows = 135
	bOld, err := Estimate(pOld)
	if err != nil {
		t.Fatal(err)
	}
	if bOld.Total.BRAM < 4*base.Total.BRAM {
		t.Errorf("135-row memory BRAM %.1f should dwarf 18-row %.1f",
			bOld.Total.BRAM, base.Total.BRAM)
	}
	// And it must NOT fit the ZC7020 together with two scales — the
	// paper's motivation for shrinking NHOGMem.
	if bOld.Total.Percent(ZC7020).BRAM <= 100 {
		t.Errorf("135-row design unexpectedly fits: %.1f%% BRAM",
			bOld.Total.Percent(ZC7020).BRAM)
	}
	// Halving MACBARs sheds LUTs.
	pHalf := PaperParams()
	pHalf.MACBARs = 4
	bHalf, err := Estimate(pHalf)
	if err != nil {
		t.Fatal(err)
	}
	if bHalf.Total.LUT >= base.Total.LUT {
		t.Error("halving MACBARs should shed LUTs")
	}
}

func TestEstimateRejectsBadParams(t *testing.T) {
	bad := PaperParams()
	bad.CellsX = 0
	if _, err := Estimate(bad); err == nil {
		t.Error("zero cells should error")
	}
	bad = PaperParams()
	bad.Scales = 0
	if _, err := Estimate(bad); err == nil {
		t.Error("zero scales should error")
	}
}

func TestBitsToBRAM(t *testing.T) {
	// One RAMB18 (18,432 bits) is half a BRAM36.
	if got := bitsToBRAM(18432); got != 0.5 {
		t.Errorf("one RAMB18 = %v BRAM36, want 0.5", got)
	}
	if got := bitsToBRAM(18433); got != 1.0 {
		t.Errorf("just over one RAMB18 = %v, want 1.0", got)
	}
	if got := bitsToBRAM(0); got != 0 {
		t.Errorf("zero bits = %v", got)
	}
}

func TestRenderContainsModules(t *testing.T) {
	b, err := Estimate(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	out := b.Render(ZC7020)
	for _, want := range []string{"hog-extractor", "nhogmem", "svm-classifier-0", "svm-classifier-1", "scaler-stage-1", "TOTAL", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSingleScaleHasNoScaler(t *testing.T) {
	p := PaperParams()
	p.Scales = 1
	b, err := Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range b.Modules {
		if strings.HasPrefix(m.Name, "scaler-stage") {
			t.Error("single-scale design should have no scaler stage")
		}
	}
}
