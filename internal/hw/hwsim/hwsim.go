// Package hwsim is a small cycle-driven simulation kernel for modelling the
// paper's FPGA accelerator. Components are ticked once per clock cycle and
// exchange data through bounded FIFOs with backpressure, which is how the
// real design's pipeline stages communicate through their temporary
// storage elements (Section 5).
//
// The kernel is deliberately minimal: a deterministic single-clock
// synchronous model, sufficient to reproduce the paper's cycle counts and
// to check functional equivalence against the software pipeline.
package hwsim

import (
	"errors"
	"fmt"
)

// Component is a synchronous hardware block. Tick is called exactly once
// per clock cycle, in registration order; a component reads its inputs and
// writes its outputs within the tick (two-phase semantics are the
// component's responsibility where ordering matters).
type Component interface {
	// Name identifies the component in reports.
	Name() string
	// Tick advances the component by one clock cycle.
	Tick(cycle int64)
}

// Sim drives a set of components from a single clock.
type Sim struct {
	comps []Component
	cycle int64
}

// NewSim returns an empty simulation at cycle 0.
func NewSim() *Sim { return &Sim{} }

// Add registers components in tick order.
func (s *Sim) Add(cs ...Component) {
	s.comps = append(s.comps, cs...)
}

// Cycle returns the number of cycles elapsed.
func (s *Sim) Cycle() int64 { return s.cycle }

// Step advances the simulation by n cycles.
func (s *Sim) Step(n int64) {
	for i := int64(0); i < n; i++ {
		for _, c := range s.comps {
			c.Tick(s.cycle)
		}
		s.cycle++
	}
}

// ErrTimeout reports that RunUntil hit its cycle budget.
var ErrTimeout = errors.New("hwsim: cycle budget exhausted")

// RunUntil steps the clock until done() reports true (checked after each
// cycle) or max cycles elapse. It returns the cycle count at completion.
func (s *Sim) RunUntil(done func() bool, max int64) (int64, error) {
	for i := int64(0); i < max; i++ {
		s.Step(1)
		if done() {
			return s.cycle, nil
		}
	}
	return s.cycle, fmt.Errorf("%w (after %d cycles)", ErrTimeout, max)
}

// FIFO is a bounded synchronous queue between pipeline stages. A zero
// capacity is invalid. Push and Pop within the same cycle are permitted
// (forwarding through the buffer).
type FIFO[T any] struct {
	name string
	buf  []T
	cap  int

	// Stats.
	pushes, pops int64
	fullStalls   int64
	emptyStalls  int64
	maxOccupancy int
}

// NewFIFO returns a FIFO with the given capacity. It panics on non-positive
// capacity.
func NewFIFO[T any](name string, capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic("hwsim: FIFO capacity must be positive")
	}
	return &FIFO[T]{name: name, cap: capacity}
}

// Name returns the FIFO's label.
func (f *FIFO[T]) Name() string { return f.name }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return len(f.buf) }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// CanPush reports whether a push would succeed this cycle.
func (f *FIFO[T]) CanPush() bool { return len(f.buf) < f.cap }

// Push enqueues v, reporting success. A failed push is recorded as a
// full-stall.
func (f *FIFO[T]) Push(v T) bool {
	if len(f.buf) >= f.cap {
		f.fullStalls++
		return false
	}
	f.buf = append(f.buf, v)
	f.pushes++
	if len(f.buf) > f.maxOccupancy {
		f.maxOccupancy = len(f.buf)
	}
	return true
}

// Pop dequeues the oldest element. A failed pop is recorded as an
// empty-stall.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		f.emptyStalls++
		return zero, false
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.pops++
	return v, true
}

// Peek returns the oldest element without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		return zero, false
	}
	return f.buf[0], true
}

// Stats summarizes FIFO traffic for throughput analysis.
type Stats struct {
	Name         string
	Pushes, Pops int64
	FullStalls   int64
	EmptyStalls  int64
	MaxOccupancy int
}

// Stats returns a snapshot of the FIFO counters.
func (f *FIFO[T]) Stats() Stats {
	return Stats{
		Name:         f.name,
		Pushes:       f.pushes,
		Pops:         f.pops,
		FullStalls:   f.fullStalls,
		EmptyStalls:  f.emptyStalls,
		MaxOccupancy: f.maxOccupancy,
	}
}

// Throughput describes a block's processing rate at a given clock.
type Throughput struct {
	CyclesPerFrame int64
	ClockHz        float64
}

// FrameTime returns the seconds needed per frame.
func (t Throughput) FrameTime() float64 {
	if t.ClockHz <= 0 {
		return 0
	}
	return float64(t.CyclesPerFrame) / t.ClockHz
}

// FPS returns the frames per second the block sustains.
func (t Throughput) FPS() float64 {
	ft := t.FrameTime()
	if ft <= 0 {
		return 0
	}
	return 1 / ft
}

// String implements fmt.Stringer.
func (t Throughput) String() string {
	return fmt.Sprintf("%d cycles/frame = %.2f ms = %.1f fps @ %.0f MHz",
		t.CyclesPerFrame, t.FrameTime()*1e3, t.FPS(), t.ClockHz/1e6)
}
