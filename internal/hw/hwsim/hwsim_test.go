package hwsim

import (
	"errors"
	"testing"
	"testing/quick"
)

// counter is a trivial component that increments once per tick.
type counter struct {
	n     int64
	ticks []int64
}

func (c *counter) Name() string { return "counter" }
func (c *counter) Tick(cycle int64) {
	c.n++
	c.ticks = append(c.ticks, cycle)
}

func TestSimStep(t *testing.T) {
	s := NewSim()
	c := &counter{}
	s.Add(c)
	s.Step(10)
	if c.n != 10 || s.Cycle() != 10 {
		t.Fatalf("ticks %d, cycle %d, want 10", c.n, s.Cycle())
	}
	// Cycles are passed in order starting at 0.
	for i, cyc := range c.ticks {
		if cyc != int64(i) {
			t.Fatalf("tick %d saw cycle %d", i, cyc)
		}
	}
}

func TestSimTickOrder(t *testing.T) {
	s := NewSim()
	var order []string
	mk := func(name string) Component { return tickFunc{name, func(int64) { order = append(order, name) }} }
	s.Add(mk("a"), mk("b"), mk("c"))
	s.Step(2)
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
}

type tickFunc struct {
	name string
	f    func(int64)
}

func (t tickFunc) Name() string     { return t.name }
func (t tickFunc) Tick(cycle int64) { t.f(cycle) }

func TestRunUntil(t *testing.T) {
	s := NewSim()
	c := &counter{}
	s.Add(c)
	cycles, err := s.RunUntil(func() bool { return c.n >= 5 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 5 {
		t.Errorf("completed at cycle %d, want 5", cycles)
	}
	_, err = s.RunUntil(func() bool { return false }, 10)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("expected timeout, got %v", err)
	}
}

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO[int]("x", 2)
	if f.Name() != "x" || f.Cap() != 2 || f.Len() != 0 {
		t.Fatal("constructor fields wrong")
	}
	if !f.Push(1) || !f.Push(2) {
		t.Fatal("pushes into empty FIFO failed")
	}
	if f.Push(3) {
		t.Fatal("push into full FIFO succeeded")
	}
	if v, ok := f.Peek(); !ok || v != 1 {
		t.Fatal("peek wrong")
	}
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Fatal("pop order wrong")
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Fatal("pop order wrong")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
	st := f.Stats()
	if st.Pushes != 2 || st.Pops != 2 || st.FullStalls != 1 || st.EmptyStalls != 1 || st.MaxOccupancy != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestFIFOPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity FIFO should panic")
		}
	}()
	NewFIFO[int]("bad", 0)
}

// Property: a FIFO preserves order for any push/pop interleaving.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		fifo := NewFIFO[int]("p", 8)
		next := 0
		expect := 0
		for _, push := range ops {
			if push {
				if fifo.Push(next) {
					next++
				}
			} else if v, ok := fifo.Pop(); ok {
				if v != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	// The paper's headline: 2,073,600 cycles (HDTV pixels at 1 px/cycle)
	// at 125 MHz is 16.6 ms, i.e. 60 fps.
	tp := Throughput{CyclesPerFrame: 1920 * 1080, ClockHz: 125e6}
	if ft := tp.FrameTime() * 1e3; ft < 16.5 || ft > 16.7 {
		t.Errorf("frame time %.3f ms, want ~16.6", ft)
	}
	if fps := tp.FPS(); fps < 60 || fps > 60.5 {
		t.Errorf("fps %.2f, want ~60.3", fps)
	}
	if tp.String() == "" {
		t.Error("empty throughput string")
	}
	var zero Throughput
	if zero.FrameTime() != 0 || zero.FPS() != 0 {
		t.Error("zero throughput should not divide by zero")
	}
}
