// Package svmpipe models the parallel, deeply pipelined SVM classification
// engine of the accelerator (Section 5, Figures 7-8): 8 MACBAR units, each
// holding 16 multiply-accumulate lanes, evaluate the dot product of
// Equation 4 for every 64x128 sliding window.
//
// Data flow, exactly as the paper describes it:
//
//   - one block column (16 blocks x 36 words) streams from NHOGMem over 36
//     cycles, one word per block per cycle;
//   - all 8 MACBARs consume the same column simultaneously, each against a
//     different column of the weight vector (the column's role in the 8
//     windows it belongs to);
//   - a window's score is the chained sum of 8 MACBAR partials, so after
//     the initial 288-cycle fill of a window row, one window verdict
//     emerges every 36 cycles;
//   - a frame row of C block columns therefore takes exactly 36*C cycles,
//     and a frame with R window rows takes R*36*C classifier cycles.
package svmpipe

import (
	"fmt"

	"repro/internal/hw/hwsim"
)

// Config fixes the engine geometry. The paper's values are the defaults:
// 8x16-cell windows, 36-word blocks, 8 MACBARs of 16 MACs.
type Config struct {
	WindowCellsX int // window width in cells/blocks (8)
	WindowCellsY int // window height in cells/blocks (16)
	BlockLen     int // words per block vector (36)
}

// DefaultConfig returns the paper's geometry.
func DefaultConfig() Config {
	return Config{WindowCellsX: 8, WindowCellsY: 16, BlockLen: 36}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.WindowCellsX < 1 || c.WindowCellsY < 1 || c.BlockLen < 1 {
		return fmt.Errorf("svmpipe: invalid config %+v", c)
	}
	return nil
}

// NumMACBARs returns the pipeline depth (one MACBAR per window column).
func (c Config) NumMACBARs() int { return c.WindowCellsX }

// MACsPerBar returns the lanes per MACBAR (one per block row).
func (c Config) MACsPerBar() int { return c.WindowCellsY }

// TotalMACs returns the multiplier count of the engine (128 for the paper).
func (c Config) TotalMACs() int { return c.NumMACBARs() * c.MACsPerBar() }

// WeightLen returns the required model length.
func (c Config) WeightLen() int { return c.WindowCellsX * c.WindowCellsY * c.BlockLen }

// FillCycles returns the initial pipeline fill per window row
// (288 = 8 columns x 36 cycles for the paper's geometry).
func (c Config) FillCycles() int { return c.NumMACBARs() * c.BlockLen }

// CyclesPerWindow returns the steady-state cycles per window verdict (36).
func (c Config) CyclesPerWindow() int { return c.BlockLen }

// RowCycles returns the cycles to classify one window row over a frame that
// is `cols` block columns wide: fill + one window per BlockLen cycles,
// which telescopes to cols*BlockLen.
func (c Config) RowCycles(cols int) int64 {
	if cols < c.WindowCellsX {
		return 0
	}
	return int64(cols) * int64(c.BlockLen)
}

// FrameCycles returns the classifier cycles for a frame of cols x rows
// block columns/rows at one scale.
func (c Config) FrameCycles(cols, rows int) int64 {
	windowRows := rows - c.WindowCellsY + 1
	if windowRows < 1 || cols < c.WindowCellsX {
		return 0
	}
	return int64(windowRows) * c.RowCycles(cols)
}

// FeatureSource supplies fixed-point block vectors, decoupling the engine
// from whether features come from the extractor model, the scaler chain or
// a test fixture.
type FeatureSource interface {
	// Block returns the feature words of block (bx, by).
	Block(bx, by int) []int64
	// Dims returns the block grid size.
	Dims() (bx, by int)
}

// Score is one window verdict.
type Score struct {
	Bx, By int   // window anchor in blocks
	Acc    int64 // raw accumulated dot product (feature x weight scale)
}

// Engine is the cycle-level classifier model. It scans every window row of
// the feature source, streaming block columns through the MACBAR pipeline
// one word per lane per cycle, and collects raw scores.
type Engine struct {
	cfg     Config
	weights []int64 // model, software Window order: ((row*X)+col)*BlockLen+e
	feat    FeatureSource
	out     *hwsim.FIFO[Score]

	cols, rows int

	// Scan state.
	wy      int     // current window row
	col     int     // current frame block column within the row
	elem    int     // current word within the column
	partial []int64 // per-MACBAR accumulator for the current column
	pending []int64 // per-window-in-flight partial sums, indexed by window start column
	done    bool

	// Stats.
	Cycles  int64
	MACOps  int64
	Idle    int64 // MAC lanes idled by pipeline bubbles (row edges)
	Emitted int64
}

// NewEngine builds the classifier over a feature source. weights must have
// the model length of cfg (the fixed-point weight vector; bias is applied
// by the caller when interpreting scores).
func NewEngine(cfg Config, weights []int64, feat FeatureSource, out *hwsim.FIFO[Score]) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != cfg.WeightLen() {
		return nil, fmt.Errorf("svmpipe: %d weights, want %d", len(weights), cfg.WeightLen())
	}
	bx, by := feat.Dims()
	e := &Engine{
		cfg:     cfg,
		weights: weights,
		feat:    feat,
		out:     out,
		cols:    bx,
		rows:    by,
		partial: make([]int64, cfg.NumMACBARs()),
		pending: make([]int64, bx),
	}
	if bx < cfg.WindowCellsX || by < cfg.WindowCellsY {
		e.done = true // nothing fits; a no-op engine
	}
	return e, nil
}

// Name implements hwsim.Component.
func (e *Engine) Name() string { return "svm-classifier" }

// Done reports whether every window of the frame has been scored.
func (e *Engine) Done() bool { return e.done }

// WindowsPerRow returns the number of window positions per row.
func (e *Engine) WindowsPerRow() int { return e.cols - e.cfg.WindowCellsX + 1 }

// WindowRows returns the number of window rows.
func (e *Engine) WindowRows() int { return e.rows - e.cfg.WindowCellsY + 1 }

// Tick advances one clock cycle: every MACBAR lane consumes one word of the
// current block column.
func (e *Engine) Tick(cycle int64) {
	if e.done {
		return
	}
	if !e.out.CanPush() {
		// Downstream full: the engine stalls wholesale (the hardware's
		// result FIFO never fills; in the model we simply wait).
		return
	}
	e.Cycles++
	nBars := e.cfg.NumMACBARs()
	lanes := e.cfg.MACsPerBar()
	// One word per lane per MACBAR this cycle.
	for k := 0; k < nBars; k++ {
		p := e.col - k // window this MACBAR serves for this column
		if p < 0 || p > e.cols-nBars {
			e.Idle += int64(lanes)
			continue
		}
		for r := 0; r < lanes; r++ {
			f := e.feat.Block(e.col, e.wy+r)[e.elem]
			w := e.weights[(r*nBars+k)*e.cfg.BlockLen+e.elem]
			e.partial[k] += f * w
			e.MACOps++
		}
	}
	e.elem++
	if e.elem < e.cfg.BlockLen {
		return
	}
	// Column complete: commit partials into their windows and emit any
	// finished window.
	e.elem = 0
	for k := 0; k < nBars; k++ {
		p := e.col - k
		if p >= 0 && p <= e.cols-nBars {
			e.pending[p] += e.partial[k]
		}
		e.partial[k] = 0
	}
	if fin := e.col - nBars + 1; fin >= 0 {
		e.out.Push(Score{Bx: fin, By: e.wy, Acc: e.pending[fin]})
		e.pending[fin] = 0
		e.Emitted++
	}
	e.col++
	if e.col < e.cols {
		return
	}
	// Row complete: next window row, pipeline refills from scratch
	// (the paper's per-row 288-cycle fill).
	e.col = 0
	e.wy++
	if e.wy > e.rows-e.cfg.WindowCellsY {
		e.done = true
	}
}

// MapSource adapts a fixed-point feature map (BlocksX x BlocksY x BlockLen
// int64 words, row-major) as a FeatureSource.
type MapSource struct {
	BlocksX, BlocksY int
	BlockLen         int
	Feat             []int64
}

// Block implements FeatureSource.
func (m *MapSource) Block(bx, by int) []int64 {
	i := (by*m.BlocksX + bx) * m.BlockLen
	return m.Feat[i : i+m.BlockLen]
}

// Dims implements FeatureSource.
func (m *MapSource) Dims() (int, int) { return m.BlocksX, m.BlocksY }
