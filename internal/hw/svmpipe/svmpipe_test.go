package svmpipe

import (
	"math/rand"
	"testing"

	"repro/internal/hw/hwsim"
)

func TestConfigNumbersMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumMACBARs() != 8 {
		t.Errorf("MACBARs = %d, want 8 (Figure 8)", cfg.NumMACBARs())
	}
	if cfg.MACsPerBar() != 16 {
		t.Errorf("MACs per bar = %d, want 16 (Figure 7)", cfg.MACsPerBar())
	}
	if cfg.TotalMACs() != 128 {
		t.Errorf("total MACs = %d, want 128", cfg.TotalMACs())
	}
	if cfg.WeightLen() != 4608 {
		t.Errorf("weight length = %d, want 4608 (16x8 blocks x 36)", cfg.WeightLen())
	}
	if cfg.FillCycles() != 288 {
		t.Errorf("fill = %d cycles, want 288 (paper Section 5)", cfg.FillCycles())
	}
	if cfg.CyclesPerWindow() != 36 {
		t.Errorf("steady-state window = %d cycles, want 36", cfg.CyclesPerWindow())
	}
}

func TestFrameCyclesHDTV(t *testing.T) {
	cfg := DefaultConfig()
	// HDTV: 240x135 cells -> 120 window rows x 240 columns x 36 cycles.
	got := cfg.FrameCycles(240, 135)
	if want := int64(120 * 240 * 36); got != want {
		t.Errorf("HDTV frame cycles = %d, want %d", got, want)
	}
	// Too-small frames yield zero.
	if cfg.FrameCycles(7, 135) != 0 || cfg.FrameCycles(240, 15) != 0 {
		t.Error("non-fitting frames should cost 0 cycles")
	}
}

// randomSource builds a small random fixed-point feature map.
func randomSource(cols, rows, blockLen int, seed int64) *MapSource {
	rng := rand.New(rand.NewSource(seed))
	m := &MapSource{BlocksX: cols, BlocksY: rows, BlockLen: blockLen,
		Feat: make([]int64, cols*rows*blockLen)}
	for i := range m.Feat {
		m.Feat[i] = int64(rng.Intn(1 << 12)) // Q0.15-ish positive features
	}
	return m
}

func randomWeights(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(rng.Intn(1<<13) - 1<<12)
	}
	return w
}

// swScore computes the reference dot product in software with the same
// window layout as hog.FeatureMap.Window.
func swScore(src *MapSource, w []int64, cfg Config, bx, by int) int64 {
	var acc int64
	for r := 0; r < cfg.WindowCellsY; r++ {
		for c := 0; c < cfg.WindowCellsX; c++ {
			blk := src.Block(bx+c, by+r)
			base := (r*cfg.WindowCellsX + c) * cfg.BlockLen
			for e := 0; e < cfg.BlockLen; e++ {
				acc += blk[e] * w[base+e]
			}
		}
	}
	return acc
}

func runEngine(t *testing.T, cfg Config, src *MapSource, w []int64) ([]Score, *Engine) {
	t.Helper()
	out := hwsim.NewFIFO[Score]("scores", 4096)
	eng, err := NewEngine(cfg, w, src, out)
	if err != nil {
		t.Fatal(err)
	}
	sim := hwsim.NewSim()
	sim.Add(eng)
	if _, err := sim.RunUntil(eng.Done, 10_000_000); err != nil {
		t.Fatal(err)
	}
	var scores []Score
	for {
		s, ok := out.Pop()
		if !ok {
			break
		}
		scores = append(scores, s)
	}
	return scores, eng
}

// TestEngineMatchesSoftwareExactly: every window verdict from the MACBAR
// pipeline must equal the software dot product bit for bit.
func TestEngineMatchesSoftwareExactly(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(12, 20, cfg.BlockLen, 1)
	w := randomWeights(cfg.WeightLen(), 2)
	scores, eng := runEngine(t, cfg, src, w)

	wantCount := eng.WindowsPerRow() * eng.WindowRows() // 5 x 5
	if len(scores) != wantCount {
		t.Fatalf("emitted %d scores, want %d", len(scores), wantCount)
	}
	for _, s := range scores {
		want := swScore(src, w, cfg, s.Bx, s.By)
		if s.Acc != want {
			t.Fatalf("window (%d,%d): hw %d, sw %d", s.Bx, s.By, s.Acc, want)
		}
	}
}

// TestEngineCycleCount: a frame of C columns and R rows takes exactly
// WindowRows * C * 36 cycles.
func TestEngineCycleCount(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(12, 18, cfg.BlockLen, 3)
	w := randomWeights(cfg.WeightLen(), 4)
	_, eng := runEngine(t, cfg, src, w)
	want := cfg.FrameCycles(12, 18) // 3 rows x 12 cols x 36
	if eng.Cycles != want {
		t.Errorf("cycles = %d, want %d", eng.Cycles, want)
	}
	// First score of each row appears after the 288-cycle fill: with 12
	// columns, 5 scores per row over (12*36 - 288) remaining cycles.
	if eng.Emitted != int64(eng.WindowsPerRow()*eng.WindowRows()) {
		t.Errorf("emitted = %d", eng.Emitted)
	}
}

// TestEngineFirstScoreAfterFill confirms the 288-cycle pipeline fill: no
// score can exist before FillCycles cycles have elapsed.
func TestEngineFirstScoreAfterFill(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(10, 16, cfg.BlockLen, 5)
	w := randomWeights(cfg.WeightLen(), 6)
	out := hwsim.NewFIFO[Score]("scores", 1024)
	eng, err := NewEngine(cfg, w, src, out)
	if err != nil {
		t.Fatal(err)
	}
	sim := hwsim.NewSim()
	sim.Add(eng)
	sim.Step(int64(cfg.FillCycles()) - 1)
	if out.Len() != 0 {
		t.Errorf("score emitted before the %d-cycle fill", cfg.FillCycles())
	}
	sim.Step(1)
	if out.Len() != 1 {
		t.Errorf("first score not emitted exactly at fill time (got %d)", out.Len())
	}
}

func TestEngineUtilization(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(24, 16, cfg.BlockLen, 7)
	w := randomWeights(cfg.WeightLen(), 8)
	_, eng := runEngine(t, cfg, src, w)
	// Total MAC slots = cycles * 128; ops + idle must account for all.
	slots := eng.Cycles * int64(cfg.TotalMACs())
	if eng.MACOps+eng.Idle != slots {
		t.Errorf("ops %d + idle %d != slots %d", eng.MACOps, eng.Idle, slots)
	}
	// With 24 columns, utilization = windows-contributions / slots. Each
	// of the 17 windows uses 8 columns x 16 lanes x 36 = full slots; check
	// utilization is high (> 60%) since edges idle 7 columns' worth.
	util := float64(eng.MACOps) / float64(slots)
	if util < 0.6 || util > 1 {
		t.Errorf("MAC utilization %.2f implausible", util)
	}
}

func TestEngineErrors(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(10, 16, cfg.BlockLen, 9)
	if _, err := NewEngine(cfg, make([]int64, 7), src, hwsim.NewFIFO[Score]("s", 4)); err == nil {
		t.Error("short weight vector should error")
	}
	bad := Config{}
	if _, err := NewEngine(bad, nil, src, hwsim.NewFIFO[Score]("s", 4)); err == nil {
		t.Error("invalid config should error")
	}
}

func TestEngineTooSmallFrameIsNoop(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(4, 4, cfg.BlockLen, 10)
	out := hwsim.NewFIFO[Score]("s", 4)
	eng, err := NewEngine(cfg, randomWeights(cfg.WeightLen(), 11), src, out)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Done() {
		t.Error("engine over a too-small frame should be immediately done")
	}
}

func TestEngineBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	src := randomSource(10, 16, cfg.BlockLen, 12)
	w := randomWeights(cfg.WeightLen(), 13)
	out := hwsim.NewFIFO[Score]("tiny", 1)
	eng, err := NewEngine(cfg, w, src, out)
	if err != nil {
		t.Fatal(err)
	}
	sim := hwsim.NewSim()
	sim.Add(eng)
	// Run long enough that without backpressure more than 1 score would
	// have been emitted and lost.
	sim.Step(int64(cfg.FillCycles()) + 36*4)
	if out.Len() != 1 {
		t.Fatalf("FIFO holds %d, want 1", out.Len())
	}
	// Drain and continue: all scores must still arrive, none lost.
	var got []Score
	for !eng.Done() {
		if s, ok := out.Pop(); ok {
			got = append(got, s)
		}
		sim.Step(1)
	}
	for {
		s, ok := out.Pop()
		if !ok {
			break
		}
		got = append(got, s)
	}
	want := eng.WindowsPerRow() * eng.WindowRows()
	if len(got) != want {
		t.Fatalf("recovered %d scores, want %d", len(got), want)
	}
	for _, s := range got {
		if s.Acc != swScore(src, w, cfg, s.Bx, s.By) {
			t.Fatalf("stalled engine corrupted window (%d,%d)", s.Bx, s.By)
		}
	}
}

func TestMapSourceDims(t *testing.T) {
	src := randomSource(5, 6, 36, 14)
	bx, by := src.Dims()
	if bx != 5 || by != 6 {
		t.Errorf("dims %dx%d", bx, by)
	}
}

// Property: for random frame geometries the engine emits exactly
// WindowsPerRow*WindowRows scores, all bit-equal to the software dot
// product, in FrameCycles cycles.
func TestEngineGeometryProperty(t *testing.T) {
	cfg := DefaultConfig()
	geoms := [][2]int{{8, 16}, {9, 17}, {16, 16}, {11, 20}, {20, 18}}
	for gi, g := range geoms {
		cols, rows := g[0], g[1]
		src := randomSource(cols, rows, cfg.BlockLen, int64(100+gi))
		w := randomWeights(cfg.WeightLen(), int64(200+gi))
		scores, eng := runEngine(t, cfg, src, w)
		wantN := eng.WindowsPerRow() * eng.WindowRows()
		if len(scores) != wantN {
			t.Fatalf("%dx%d: %d scores, want %d", cols, rows, len(scores), wantN)
		}
		if eng.Cycles != cfg.FrameCycles(cols, rows) {
			t.Fatalf("%dx%d: %d cycles, want %d", cols, rows, eng.Cycles, cfg.FrameCycles(cols, rows))
		}
		for _, s := range scores {
			if s.Acc != swScore(src, w, cfg, s.Bx, s.By) {
				t.Fatalf("%dx%d: window (%d,%d) mismatch", cols, rows, s.Bx, s.By)
			}
		}
	}
}
