package hogpipe

import (
	"fmt"

	"repro/internal/hog"
	"repro/internal/hw/hwsim"
	"repro/internal/imgproc"
)

// Config parameterizes the extractor datapath.
type Config struct {
	CellSize int // cell side in pixels (8)
	Bins     int // orientation bins (9)
	// FeatFrac is the fractional precision of normalized features (Q0.15
	// for the default 15).
	FeatFrac int
	// HysClipQ15 is the L2-Hys clipping threshold in Q0.15 (0.2 * 2^15 by
	// default, matching the software pipeline).
	HysClipQ15 int64
	// AlphaFrac is the precision of the two-bin vote split (8).
	AlphaFrac int
}

// DefaultConfig matches the software hog.DefaultConfig in fixed point.
func DefaultConfig() Config {
	return Config{
		CellSize:   8,
		Bins:       9,
		FeatFrac:   15,
		HysClipQ15: 6554, // round(0.2 * 2^15), the software's 0.2 clip
		AlphaFrac:  8,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CellSize < 2 || c.Bins < 2 || c.FeatFrac < 4 || c.FeatFrac > 30 ||
		c.AlphaFrac < 2 || c.AlphaFrac > 16 || c.HysClipQ15 <= 0 {
		return fmt.Errorf("hogpipe: invalid config %+v", c)
	}
	return nil
}

// CellRow is one row of raw per-cell orientation histograms (integer votes)
// emitted by the extractor after each band of CellSize pixel rows.
type CellRow struct {
	Y    int       // cell row index
	Hist [][]int64 // [cellsX][bins] integer votes
}

// BlockRow is one row of normalized per-cell blocks (the per-cell layout of
// the paper: each cell owns the 2x2-cell block anchored at it).
type BlockRow struct {
	Y      int
	Blocks [][]int64 // [cellsX][4*bins] features in Q0.FeatFrac
}

// Extractor is the pixel-per-cycle gradient + histogram stage. It consumes
// one pixel per cycle from In (when available) and pushes a CellRow after
// every completed band.
type Extractor struct {
	cfg  Config
	w, h int

	In  *hwsim.FIFO[uint8]
	Out *hwsim.FIFO[CellRow]

	// rows holds the last three pixel rows (rolling): the gradient of row
	// y-1 is computed as row y streams in, exactly like the line-buffer
	// structure of the hardware.
	rows    [3][]uint8
	nPixels int64 // pixels consumed
	flushX  int   // columns flushed for the last row's gradients

	cellsX, cellsY int
	acc            [][]int64 // accumulators for the current cell band
	pending        *CellRow  // finished band awaiting FIFO space
	emittedRows    int

	// Stats.
	BusyCycles  int64
	IdleCycles  int64
	StallCycles int64 // output FIFO full
	doneAt      int64
}

// NewExtractor builds the extractor for a w x h frame.
func NewExtractor(cfg Config, w, h int, in *hwsim.FIFO[uint8], out *hwsim.FIFO[CellRow]) (*Extractor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w < cfg.CellSize || h < cfg.CellSize {
		return nil, fmt.Errorf("hogpipe: frame %dx%d smaller than a cell", w, h)
	}
	e := &Extractor{
		cfg: cfg, w: w, h: h,
		In: in, Out: out,
		cellsX: w / cfg.CellSize,
		cellsY: h / cfg.CellSize,
		doneAt: -1,
	}
	for i := range e.rows {
		e.rows[i] = make([]uint8, w)
	}
	e.resetAcc()
	return e, nil
}

func (e *Extractor) resetAcc() {
	e.acc = make([][]int64, e.cellsX)
	for i := range e.acc {
		e.acc[i] = make([]int64, e.cfg.Bins)
	}
}

// Name implements hwsim.Component.
func (e *Extractor) Name() string { return "hog-extractor" }

// Done reports whether the whole frame (including the bottom-border flush)
// has been processed and emitted.
func (e *Extractor) Done() bool { return e.emittedRows >= e.cellsY }

// DoneAt returns the cycle at which Done first became true, or -1.
func (e *Extractor) DoneAt() int64 { return e.doneAt }

// CellsX returns the width of the cell grid.
func (e *Extractor) CellsX() int { return e.cellsX }

// CellsY returns the height of the cell grid.
func (e *Extractor) CellsY() int { return e.cellsY }

// Tick implements hwsim.Component: consume at most one pixel, produce
// gradients for the row above, and emit a CellRow at each band boundary.
// While a finished band waits for FIFO space the pipeline stalls
// (backpressure), exactly as the RTL would.
func (e *Extractor) Tick(cycle int64) {
	if e.Done() {
		return
	}
	if e.pending != nil {
		if !e.Out.Push(*e.pending) {
			e.StallCycles++
			return
		}
		e.pending = nil
		e.emittedRows++
		if e.emittedRows >= e.cellsY && e.doneAt < 0 {
			e.doneAt = cycle
		}
		if e.Done() {
			return
		}
	}
	total := int64(e.w) * int64(e.h)
	switch {
	case e.nPixels < total:
		px, ok := e.In.Pop()
		if !ok {
			e.IdleCycles++
			return
		}
		e.BusyCycles++
		x := int(e.nPixels % int64(e.w))
		y := int(e.nPixels / int64(e.w))
		if x == 0 {
			// Rotate line buffers at the start of each row.
			e.rows[0], e.rows[1], e.rows[2] = e.rows[1], e.rows[2], e.rows[0]
		}
		e.rows[2][x] = px
		e.nPixels++
		if y >= 1 {
			e.gradient(x, y-1)
			if x == e.w-1 {
				e.maybeEmitBand(y-1, cycle)
			}
		}
	default:
		// Flush: compute the last row's gradients with a replicated
		// bottom border, one column per cycle (the pipeline drain).
		if e.flushX >= e.w {
			// Fully drained; only a pending emission (handled above)
			// remains.
			e.IdleCycles++
			return
		}
		e.BusyCycles++
		x := e.flushX
		e.gradient(x, e.h-1)
		e.flushX++
		if e.flushX == e.w {
			// A partial bottom band (height not divisible by the cell
			// size) was never accumulated past cellsY rows, so either
			// this call stages/emits the final full band or every row is
			// already out.
			e.maybeEmitBand(e.h-1, cycle)
		}
	}
}

// gradient computes the centered gradient at (x, gy), runs CORDIC, splits
// the vote across the two nearest bins and accumulates into the cell band.
func (e *Extractor) gradient(x, gy int) {
	// During streaming: rows[1] = row gy, rows[2] = row gy+1, rows[0] = gy-1.
	// During flush (gy == h-1): rows[2] = last row, rows[1] = gy-1... the
	// rotation stopped, so rows[2] is row gy and rows[1] is gy-1.
	var rowUp, rowMid, rowDown []uint8
	if gy == e.h-1 && e.nPixels == int64(e.w)*int64(e.h) {
		rowMid = e.rows[2]
		rowUp = e.rows[1]
		rowDown = e.rows[2] // replicate bottom border
		if e.h == 1 {
			rowUp = e.rows[2]
		}
	} else {
		rowUp = e.rows[0]
		rowMid = e.rows[1]
		rowDown = e.rows[2]
		if gy == 0 {
			rowUp = rowMid // replicate top border
		}
	}
	xm, xp := x-1, x+1
	if xm < 0 {
		xm = 0
	}
	if xp > e.w-1 {
		xp = e.w - 1
	}
	gx := int64(rowMid[xp]) - int64(rowMid[xm])
	gyv := int64(rowDown[x]) - int64(rowUp[x])
	if gx == 0 && gyv == 0 {
		return
	}
	mag, angle := CORDICVector(gx, gyv)
	if mag == 0 {
		return
	}
	// Unsigned orientation in [0, pi).
	if angle < 0 {
		angle += PiFixed
	}
	if angle >= PiFixed {
		angle -= PiFixed
	}
	// Two-nearest-bin split: bins centered at (b+0.5)*binWidth.
	binWidth := PiFixed / int64(e.cfg.Bins)
	num := angle - binWidth/2
	var b0 int
	var rem int64
	if num < 0 {
		b0 = e.cfg.Bins - 1
		rem = num + binWidth
	} else {
		b0 = int(num / binWidth)
		rem = num % binWidth
		if b0 >= e.cfg.Bins {
			b0 = e.cfg.Bins - 1
		}
	}
	b1 := b0 + 1
	if b1 >= e.cfg.Bins {
		b1 = 0
	}
	one := int64(1) << uint(e.cfg.AlphaFrac)
	alpha := (rem << uint(e.cfg.AlphaFrac)) / binWidth
	if alpha > one {
		alpha = one
	}
	cx := x / e.cfg.CellSize
	if cx >= e.cellsX {
		return // partial right cell dropped
	}
	// Accumulate the split votes in AlphaFrac sub-LSB precision; the
	// normalizer divides the common scale out.
	e.acc[cx][b0] += mag * (one - alpha)
	e.acc[cx][b1] += mag * alpha
}

// maybeEmitBand stages the finished cell row for emission if gy closed a
// band. Emission happens at the top of Tick, so a full output FIFO stalls
// the pixel pipeline rather than dropping the row.
func (e *Extractor) maybeEmitBand(gy int, cycle int64) {
	if (gy+1)%e.cfg.CellSize != 0 {
		return
	}
	cellY := gy / e.cfg.CellSize
	if cellY >= e.cellsY {
		return
	}
	row := CellRow{Y: cellY, Hist: e.acc}
	e.resetAcc()
	if e.Out.Push(row) {
		e.emittedRows++
		if e.emittedRows >= e.cellsY && e.doneAt < 0 {
			e.doneAt = cycle
		}
		return
	}
	e.pending = &row
}

// PixelSource feeds a frame into a FIFO at one pixel per cycle.
type PixelSource struct {
	img  *imgproc.Gray
	Out  *hwsim.FIFO[uint8]
	next int64
}

// NewPixelSource wraps img as a streaming source.
func NewPixelSource(img *imgproc.Gray, out *hwsim.FIFO[uint8]) *PixelSource {
	return &PixelSource{img: img, Out: out}
}

// Name implements hwsim.Component.
func (p *PixelSource) Name() string { return "pixel-source" }

// Done reports whether every pixel has been pushed.
func (p *PixelSource) Done() bool { return p.next >= int64(len(p.img.Pix)) }

// Tick pushes one pixel per cycle while the FIFO accepts.
func (p *PixelSource) Tick(cycle int64) {
	if p.Done() {
		return
	}
	if p.Out.Push(p.img.Pix[p.next]) {
		p.next++
	}
}

// blockLen returns the per-cell block vector length.
func (c Config) blockLen() int { return 4 * c.Bins }

// Normalizer is the block normalization stage: it consumes cell rows,
// holds one row of history, and emits normalized per-cell block rows
// (L2-Hys, matching the software pipeline bit-approximately).
type Normalizer struct {
	cfg    Config
	cellsX int
	cellsY int

	In  *hwsim.FIFO[CellRow]
	Out *hwsim.FIFO[BlockRow]

	prev        *CellRow
	pendingLast bool
	emitted     int
}

// NewNormalizer builds the normalizer for a cellsX x cellsY grid.
func NewNormalizer(cfg Config, cellsX, cellsY int, in *hwsim.FIFO[CellRow], out *hwsim.FIFO[BlockRow]) (*Normalizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cellsX < 1 || cellsY < 1 {
		return nil, fmt.Errorf("hogpipe: empty cell grid %dx%d", cellsX, cellsY)
	}
	return &Normalizer{cfg: cfg, cellsX: cellsX, cellsY: cellsY, In: in, Out: out}, nil
}

// Name implements hwsim.Component.
func (n *Normalizer) Name() string { return "block-normalizer" }

// Done reports whether all block rows have been emitted.
func (n *Normalizer) Done() bool { return n.emitted >= n.cellsY }

// Tick consumes at most one cell row per cycle and emits the block row it
// completes. (The real unit pipelines at cell granularity; row granularity
// is equivalent for throughput accounting because the extractor produces at
// most one row per CellSize*W cycles.)
func (n *Normalizer) Tick(cycle int64) {
	if n.Done() {
		return
	}
	if !n.Out.CanPush() {
		return
	}
	if n.pendingLast {
		// Final block row: the bottom neighbour clamps to the last row.
		n.Out.Push(n.normalizeRow(n.prev, n.prev))
		n.emitted++
		n.pendingLast = false
		return
	}
	row, ok := n.In.Pop()
	if !ok {
		return
	}
	if n.prev == nil {
		// First row: buffer it.
		r := row
		n.prev = &r
		if n.cellsY == 1 {
			n.pendingLast = true
		}
		return
	}
	// Emit the block row anchored at prev using prev+row.
	n.Out.Push(n.normalizeRow(n.prev, &row))
	n.emitted++
	r := row
	n.prev = &r
	if n.emitted == n.cellsY-1 {
		n.pendingLast = true
	}
}

// normalizeRow assembles and L2-Hys-normalizes every block of one cell row.
func (n *Normalizer) normalizeRow(top, bottom *CellRow) BlockRow {
	out := BlockRow{Y: top.Y, Blocks: make([][]int64, n.cellsX)}
	bins := n.cfg.Bins
	for cx := 0; cx < n.cellsX; cx++ {
		cxr := cx + 1
		if cxr >= n.cellsX {
			cxr = n.cellsX - 1 // clamp right edge
		}
		raw := make([]int64, 0, n.cfg.blockLen())
		raw = append(raw, top.Hist[cx][:bins]...)
		raw = append(raw, top.Hist[cxr][:bins]...)
		raw = append(raw, bottom.Hist[cx][:bins]...)
		raw = append(raw, bottom.Hist[cxr][:bins]...)
		out.Blocks[cx] = n.normalizeBlock(raw)
	}
	return out
}

// normalizeBlock runs the two-pass L2-Hys in integer arithmetic: divide by
// the integer square root of the sum of squares, clip, renormalize.
func (n *Normalizer) normalizeBlock(raw []int64) []int64 {
	one := int64(1) << uint(n.cfg.FeatFrac)
	var ss uint64
	for _, v := range raw {
		ss += uint64(v * v)
	}
	norm := int64(ISqrt(ss)) + 1 // +1 regularizes the all-zero block
	q := make([]int64, len(raw))
	for i, v := range raw {
		f := v * one / norm
		if f > n.cfg.HysClipQ15 {
			f = n.cfg.HysClipQ15
		}
		q[i] = f
	}
	// Renormalize after clipping.
	var ss2 uint64
	for _, v := range q {
		ss2 += uint64(v * v)
	}
	norm2 := int64(ISqrt(ss2)) + 1
	for i, v := range q {
		q[i] = v * one / norm2
		if q[i] >= one {
			q[i] = one - 1
		}
	}
	return q
}

// Result is the collected fixed-point feature map of one frame.
type Result struct {
	BlocksX, BlocksY int
	BlockLen         int
	FeatFrac         int
	Feat             []int64 // Q0.FeatFrac, row-major blocks
}

// Block returns the feature slice of block (bx, by), aliasing the result.
func (r *Result) Block(bx, by int) []int64 {
	i := (by*r.BlocksX + bx) * r.BlockLen
	return r.Feat[i : i+r.BlockLen]
}

// ToFeatureMap dequantizes into the software FeatureMap type (per-cell
// layout) for direct comparison with hog.Compute.
func (r *Result) ToFeatureMap(cfg hog.Config) *hog.FeatureMap {
	fm := &hog.FeatureMap{
		BlocksX:  r.BlocksX,
		BlocksY:  r.BlocksY,
		BlockLen: r.BlockLen,
		Feat:     make([]float64, len(r.Feat)),
		Cfg:      cfg,
	}
	scale := 1 / float64(int64(1)<<uint(r.FeatFrac))
	for i, v := range r.Feat {
		fm.Feat[i] = float64(v) * scale
	}
	return fm
}

// Collector drains BlockRows into a Result.
type Collector struct {
	In     *hwsim.FIFO[BlockRow]
	res    *Result
	gotRow int
}

// NewCollector allocates the result for a cellsX x cellsY grid.
func NewCollector(cfg Config, cellsX, cellsY int, in *hwsim.FIFO[BlockRow]) *Collector {
	return &Collector{
		In: in,
		res: &Result{
			BlocksX:  cellsX,
			BlocksY:  cellsY,
			BlockLen: cfg.blockLen(),
			FeatFrac: cfg.FeatFrac,
			Feat:     make([]int64, cellsX*cellsY*cfg.blockLen()),
		},
	}
}

// Name implements hwsim.Component.
func (c *Collector) Name() string { return "collector" }

// Done reports whether every block row has arrived.
func (c *Collector) Done() bool { return c.gotRow >= c.res.BlocksY }

// Result returns the collected map (valid once Done).
func (c *Collector) Result() *Result { return c.res }

// Tick drains at most one row per cycle.
func (c *Collector) Tick(cycle int64) {
	row, ok := c.In.Pop()
	if !ok {
		return
	}
	for cx, blk := range row.Blocks {
		copy(c.res.Block(cx, row.Y), blk)
	}
	c.gotRow++
}

// Report summarizes one frame extraction run.
type Report struct {
	Cycles     int64
	PixelRate  float64 // pixels per cycle (should be ~1)
	Throughput hwsim.Throughput
}

// RunFrame streams img through the full extractor pipeline and returns the
// fixed-point feature map plus cycle accounting at the given clock.
func RunFrame(img *imgproc.Gray, cfg Config, clockHz float64) (*Result, Report, error) {
	pxFIFO := hwsim.NewFIFO[uint8]("pixels", 4)
	cellFIFO := hwsim.NewFIFO[CellRow]("cell-rows", 2)
	blockFIFO := hwsim.NewFIFO[BlockRow]("block-rows", 2)

	src := NewPixelSource(img, pxFIFO)
	ext, err := NewExtractor(cfg, img.W, img.H, pxFIFO, cellFIFO)
	if err != nil {
		return nil, Report{}, err
	}
	norm, err := NewNormalizer(cfg, ext.CellsX(), ext.CellsY(), cellFIFO, blockFIFO)
	if err != nil {
		return nil, Report{}, err
	}
	col := NewCollector(cfg, ext.CellsX(), ext.CellsY(), blockFIFO)

	sim := hwsim.NewSim()
	sim.Add(src, ext, norm, col)
	budget := int64(img.W)*int64(img.H)*2 + 10000
	cycles, err := sim.RunUntil(col.Done, budget)
	if err != nil {
		return nil, Report{}, err
	}
	rep := Report{
		Cycles:     cycles,
		PixelRate:  float64(int64(img.W)*int64(img.H)) / float64(cycles),
		Throughput: hwsim.Throughput{CyclesPerFrame: cycles, ClockHz: clockHz},
	}
	return col.Result(), rep, nil
}
