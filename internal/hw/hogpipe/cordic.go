// Package hogpipe models the streaming HOG feature extractor of Hemmati et
// al. [DSD'14] that the paper reuses (Figure 5, left half): a pixel-per-cycle
// pipeline of line buffers, a gradient unit, a CORDIC magnitude/angle stage,
// per-cell histogram accumulation and a block normalizer, all in integer
// arithmetic, emitting the normalized HOG feature stream consumed by
// NHOGMem and the classifier.
package hogpipe

import "math"

// AngleFrac is the fixed-point precision of CORDIC angles: angles are
// integers in units of 2^-AngleFrac radians.
const AngleFrac = 16

// angleScale converts radians to the fixed-point angle unit.
const angleScale = 1 << AngleFrac

// cordicIters is the number of CORDIC micro-rotations. 16 iterations give
// ~0.002 degrees of angular resolution, far below one histogram bin.
const cordicIters = 16

// atanTable[i] = round(atan(2^-i) * 2^AngleFrac), the micro-rotation angles.
var atanTable = func() [cordicIters]int64 {
	var t [cordicIters]int64
	for i := range t {
		t[i] = int64(math.Round(math.Atan(math.Pow(2, float64(-i))) * angleScale))
	}
	return t
}()

// cordicGainRecip is the reciprocal of the CORDIC gain K = prod sqrt(1+2^-2i)
// in Q1.15 (K ~ 1.64676, 1/K ~ 0.60725), applied with a shift-add multiply.
var cordicGainRecip = func() int64 {
	k := 1.0
	for i := 0; i < cordicIters; i++ {
		k *= math.Sqrt(1 + math.Pow(2, float64(-2*i)))
	}
	return int64(math.Round((1 / k) * (1 << 15)))
}()

// PiFixed is pi in the fixed-point angle unit (rounded to nearest).
var PiFixed = int64(math.Round(math.Pi * angleScale))

// CORDICVector runs vectoring-mode CORDIC on the integer vector (x, y),
// returning the magnitude sqrt(x^2+y^2) (gain-compensated, same unit as the
// inputs) and the angle atan2(y, x) in fixed-point radians (range
// (-pi, pi]). This is the standard multiplier-free FPGA idiom for the
// magnitude/orientation stage of Equation 1-2.
func CORDICVector(x, y int64) (mag, angle int64) {
	if x == 0 && y == 0 {
		return 0, 0
	}
	var acc int64
	// Bring the vector into the right half-plane first.
	switch {
	case x < 0 && y >= 0: // second quadrant -> rotate by -pi/2
		x, y = y, -x
		acc = PiFixed / 2
	case x < 0 && y < 0: // third quadrant -> rotate by +pi/2
		x, y = -y, x
		acc = -PiFixed / 2
	}
	// Pre-scale for precision: CORDIC shifts right, so small inputs lose
	// bits. Inputs are <= ~512 in magnitude; shift left by 14 to use the
	// headroom of int64.
	const pre = 14
	x <<= pre
	y <<= pre
	// All iterations always run so the rotation gain is exactly K (a
	// data-dependent early exit would change the gain).
	for i := 0; i < cordicIters; i++ {
		xs, ys := x>>uint(i), y>>uint(i)
		if y > 0 {
			x, y = x+ys, y-xs
			acc += atanTable[i]
		} else {
			x, y = x-ys, y+xs
			acc -= atanTable[i]
		}
	}
	// x now holds K*|v| << pre; compensate the gain and the pre-shift.
	mag = (x * cordicGainRecip) >> (15 + pre)
	// Second-quadrant corrections can push acc slightly past pi; wrap.
	if acc > PiFixed {
		acc -= 2 * PiFixed
	}
	if acc < -PiFixed {
		acc += 2 * PiFixed
	}
	return mag, acc
}

// ISqrt returns the integer square root floor(sqrt(v)) for v >= 0 using the
// classic bitwise (non-restoring) algorithm, the structure a hardware
// square-root unit implements.
func ISqrt(v uint64) uint64 {
	var res uint64
	// Highest power of four <= v.
	bit := uint64(1) << 62
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}
