package hogpipe

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hog"
	"repro/internal/imgproc"
)

func TestCORDICAgainstMath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := int64(rng.Intn(511) - 255)
		y := int64(rng.Intn(511) - 255)
		if x == 0 && y == 0 {
			continue
		}
		mag, angle := CORDICVector(x, y)
		wantMag := math.Hypot(float64(x), float64(y))
		wantAng := math.Atan2(float64(y), float64(x))
		if math.Abs(float64(mag)-wantMag) > wantMag*0.01+1.5 {
			t.Fatalf("CORDIC mag(%d,%d) = %d, want %.2f", x, y, mag, wantMag)
		}
		gotAng := float64(angle) / angleScale
		diff := math.Abs(gotAng - wantAng)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		if diff > 0.002 {
			t.Fatalf("CORDIC angle(%d,%d) = %.5f, want %.5f", x, y, gotAng, wantAng)
		}
	}
}

func TestCORDICZeroVector(t *testing.T) {
	mag, angle := CORDICVector(0, 0)
	if mag != 0 || angle != 0 {
		t.Errorf("CORDIC(0,0) = %d, %d", mag, angle)
	}
}

func TestCORDICAxes(t *testing.T) {
	cases := []struct {
		x, y    int64
		wantMag float64
		wantAng float64
	}{
		{100, 0, 100, 0},
		{0, 100, 100, math.Pi / 2},
		{-100, 0, 100, math.Pi},
		{0, -100, 100, -math.Pi / 2},
		{100, 100, 141.42, math.Pi / 4},
	}
	for _, c := range cases {
		mag, angle := CORDICVector(c.x, c.y)
		if math.Abs(float64(mag)-c.wantMag) > 2 {
			t.Errorf("mag(%d,%d) = %d, want %.1f", c.x, c.y, mag, c.wantMag)
		}
		gotAng := float64(angle) / angleScale
		diff := math.Abs(gotAng - c.wantAng)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		if diff > 0.01 {
			t.Errorf("angle(%d,%d) = %.4f, want %.4f", c.x, c.y, gotAng, c.wantAng)
		}
	}
}

// Property: ISqrt is the exact floor square root.
func TestISqrtProperty(t *testing.T) {
	f := func(v uint64) bool {
		v %= 1 << 52
		r := ISqrt(v)
		return r*r <= v && (r+1)*(r+1) > v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Edge values.
	for _, v := range []uint64{0, 1, 2, 3, 4, 15, 16, 1 << 40} {
		r := ISqrt(v)
		if r*r > v || (r+1)*(r+1) <= v {
			t.Errorf("ISqrt(%d) = %d", v, r)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.CellSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("cell size 1 should fail")
	}
	bad = DefaultConfig()
	bad.HysClipQ15 = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clip should fail")
	}
}

func randomImage(w, h int, seed int64) *imgproc.Gray {
	img := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	return imgproc.BoxBlur(img, 1)
}

func TestRunFramePixelRate(t *testing.T) {
	img := randomImage(64, 64, 2)
	_, rep, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	// One pixel per cycle plus the one-row flush and small pipeline skew.
	minCycles := int64(64 * 64)
	maxCycles := minCycles + 64 + 64 // flush row + scheduling slack
	if rep.Cycles < minCycles || rep.Cycles > maxCycles {
		t.Errorf("cycles = %d, want in [%d, %d]", rep.Cycles, minCycles, maxCycles)
	}
	if rep.PixelRate < 0.95 {
		t.Errorf("pixel rate %.3f, want ~1", rep.PixelRate)
	}
}

func TestRunFrameMatchesSoftwareHOG(t *testing.T) {
	img := randomImage(64, 128, 3)
	res, _, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	swCfg := hog.DefaultConfig()
	sw, err := hog.Compute(img, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	hw := res.ToFeatureMap(swCfg)
	if hw.BlocksX != sw.BlocksX || hw.BlocksY != sw.BlocksY || hw.BlockLen != sw.BlockLen {
		t.Fatalf("dims: hw %dx%dx%d, sw %dx%dx%d",
			hw.BlocksX, hw.BlocksY, hw.BlockLen, sw.BlocksX, sw.BlocksY, sw.BlockLen)
	}
	// Cosine similarity per block: the fixed-point pipeline must track the
	// float pipeline closely.
	var worst float64 = 1
	for by := 0; by < sw.BlocksY; by++ {
		for bx := 0; bx < sw.BlocksX; bx++ {
			a, b := hw.Block(bx, by), sw.Block(bx, by)
			var dot, na, nb float64
			for i := range a {
				dot += a[i] * b[i]
				na += a[i] * a[i]
				nb += b[i] * b[i]
			}
			if na == 0 || nb == 0 {
				continue
			}
			cos := dot / math.Sqrt(na*nb)
			if cos < worst {
				worst = cos
			}
		}
	}
	if worst < 0.98 {
		t.Errorf("worst per-block cosine similarity hw/sw = %.4f, want >= 0.98", worst)
	}
}

func TestRunFrameFeatureRange(t *testing.T) {
	img := randomImage(64, 64, 4)
	cfg := DefaultConfig()
	res, _, err := RunFrame(img, cfg, 125e6)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(1) << uint(cfg.FeatFrac)
	for i, v := range res.Feat {
		if v < 0 || v >= one {
			t.Fatalf("feature %d = %d outside [0, %d)", i, v, one)
		}
	}
}

func TestRunFrameDeterministic(t *testing.T) {
	img := randomImage(64, 64, 5)
	a, _, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Feat {
		if a.Feat[i] != b.Feat[i] {
			t.Fatal("extraction is not deterministic")
		}
	}
}

func TestRunFrameConstantImage(t *testing.T) {
	img := imgproc.NewGray(64, 64)
	img.Fill(128)
	res, _, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Feat {
		if v != 0 {
			t.Fatalf("constant image produced non-zero feature %d = %d", i, v)
		}
	}
}

func TestRunFrameRejectsTinyImage(t *testing.T) {
	img := imgproc.NewGray(4, 4)
	if _, _, err := RunFrame(img, DefaultConfig(), 125e6); err == nil {
		t.Error("sub-cell image should error")
	}
}

// TestHDTVExtractorThroughput checks the headline claim: at one pixel per
// cycle and 125 MHz, an HDTV frame takes ~16.6 ms, i.e. 60 fps.
func TestHDTVExtractorThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("full HDTV extraction is slow")
	}
	img := randomImage(1920, 1080, 6)
	_, rep, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	ms := rep.Throughput.FrameTime() * 1e3
	if ms < 16.4 || ms > 16.8 {
		t.Errorf("HDTV frame time %.3f ms, want ~16.6 (paper Section 5)", ms)
	}
	fps := rep.Throughput.FPS()
	if fps < 59.5 || fps > 61 {
		t.Errorf("fps %.2f, want ~60", fps)
	}
	t.Logf("HDTV extraction: %v", rep.Throughput)
}

func TestResultBlockIndexing(t *testing.T) {
	img := randomImage(32, 32, 7)
	res, _, err := RunFrame(img, DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksX != 4 || res.BlocksY != 4 || res.BlockLen != 36 {
		t.Fatalf("result dims %dx%dx%d", res.BlocksX, res.BlocksY, res.BlockLen)
	}
	b := res.Block(1, 2)
	if len(b) != 36 {
		t.Fatal("block slice length wrong")
	}
	// Aliasing: writing through the slice is visible.
	old := b[0]
	b[0] = old + 1
	if res.Block(1, 2)[0] != old+1 {
		t.Error("Block does not alias the result")
	}
}

// TestRunFrameSizesProperty: the streaming extractor matches the software
// pipeline dimensionally and numerically across frame geometries, including
// sizes that are not multiples of the cell size.
func TestRunFrameSizesProperty(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {72, 56}, {65, 71}, {129, 130}, {96, 200}} {
		w, h := dims[0], dims[1]
		img := randomImage(w, h, int64(w*1000+h))
		res, rep, err := RunFrame(img, DefaultConfig(), 125e6)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		sw, err := hog.Compute(img, hog.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.BlocksX != sw.BlocksX || res.BlocksY != sw.BlocksY {
			t.Fatalf("%dx%d: hw grid %dx%d vs sw %dx%d", w, h,
				res.BlocksX, res.BlocksY, sw.BlocksX, sw.BlocksY)
		}
		// Cycle accounting stays ~1 px/cycle. A partial bottom band (h not
		// a multiple of the cell size) completes as soon as the last full
		// band is emitted, so the lower bound is the consumed rows.
		consumed := int64(sw.BlocksY*8) * int64(w)
		if rep.Cycles < consumed || rep.Cycles > int64(w*h)+int64(w)+256 {
			t.Fatalf("%dx%d: cycles %d outside [%d, %d]", w, h, rep.Cycles,
				consumed, int64(w*h)+int64(w)+256)
		}
		// Spot-check feature agreement on the center block.
		hw := res.ToFeatureMap(hog.DefaultConfig())
		bx, by := sw.BlocksX/2, sw.BlocksY/2
		a, b := hw.Block(bx, by), sw.Block(bx, by)
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na > 0 && nb > 0 && dot/math.Sqrt(na*nb) < 0.97 {
			t.Fatalf("%dx%d: center block cosine %.4f", w, h, dot/math.Sqrt(na*nb))
		}
	}
}
