package timemux

import (
	"testing"

	"repro/internal/hw/accel"
	"repro/internal/hw/resource"
)

func TestConfigValidate(t *testing.T) {
	if err := Hahnle2013().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Hahnle2013()
	bad.Scales = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scales should fail")
	}
	bad = Hahnle2013()
	bad.ScaleStep = 1
	if err := bad.Validate(); err == nil {
		t.Error("unit step should fail")
	}
	bad = Hahnle2013()
	bad.FrameW = 8
	if err := bad.Validate(); err == nil {
		t.Error("tiny frame should fail")
	}
}

func TestAnalyzePassGeometry(t *testing.T) {
	rep, err := Analyze(Hahnle2013())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) == 0 {
		t.Fatal("no passes")
	}
	// Native scale first, full HDTV extraction cost.
	if rep.Passes[0].ExtractCycles != 1920*1080 {
		t.Errorf("native extraction = %d", rep.Passes[0].ExtractCycles)
	}
	// Passes shrink monotonically until the window no longer fits.
	for i := 1; i < len(rep.Passes); i++ {
		if rep.Passes[i].W >= rep.Passes[i-1].W {
			t.Fatal("passes must shrink")
		}
		if rep.Passes[i].W < 64 || rep.Passes[i].H < 128 {
			t.Fatal("pass smaller than the window was kept")
		}
	}
	// Geometric series: total extraction well below Scales * native but
	// far above a single native pass.
	if rep.TotalExtract <= rep.Passes[0].ExtractCycles {
		t.Error("multi-scale extraction should exceed one native pass")
	}
	if rep.TotalExtract >= int64(len(rep.Passes))*rep.Passes[0].ExtractCycles {
		t.Error("extraction total exceeds the trivial bound")
	}
}

// TestExtractionCostDominatesFeaturePyramid quantifies the paper's core
// argument: the image-pyramid architecture re-extracts features per scale,
// paying ~3x the extraction cycles of the feature-pyramid design.
func TestExtractionCostDominatesFeaturePyramid(t *testing.T) {
	rep, err := Analyze(Hahnle2013())
	if err != nil {
		t.Fatal(err)
	}
	featRep, err := accel.AnalyticReport(accel.DefaultConfig(), 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rep.TotalExtract) / float64(featRep.ExtractorCycles)
	// 1.2-step geometric series over 18 scales: sum ~ 1/(1-1/1.44) ~ 3.3x.
	if ratio < 2 || ratio > 4 {
		t.Errorf("extraction ratio = %.2f, want ~3x", ratio)
	}
	t.Logf("extraction cycles: time-mux %d vs feature-pyramid %d (%.2fx)",
		rep.TotalExtract, featRep.ExtractorCycles, ratio)
}

// TestSixInstancesReachRealTime reproduces [9]'s design point: with six
// instances the multiplexed design sustains >= 30 fps on HDTV (Hahnle et
// al. report 64 fps at their clock; the exact figure depends on scaling
// details — the reproduction target is that 6 instances are enough for
// real time while 1 instance is not).
func TestSixInstancesReachRealTime(t *testing.T) {
	six := Hahnle2013()
	repSix, err := Analyze(six)
	if err != nil {
		t.Fatal(err)
	}
	if fps := repSix.Throughput.FPS(); fps < 30 {
		t.Errorf("6 instances: %.1f fps, want >= 30", fps)
	}
	one := Hahnle2013()
	one.Instances = 1
	repOne, err := Analyze(one)
	if err != nil {
		t.Fatal(err)
	}
	if fps := repOne.Throughput.FPS(); fps >= 30 {
		t.Errorf("1 instance: %.1f fps should NOT reach real time", fps)
	}
	if repOne.FrameCycles <= repSix.FrameCycles {
		t.Error("multiplexing must shorten the frame interval")
	}
}

// TestResourceCostOfReplication: six replicated HOG+SVM instances cost far
// more fabric than the DAC'17 two-scale feature-pyramid design — the
// paper's resource argument.
func TestResourceCostOfReplication(t *testing.T) {
	res, err := Resources(Hahnle2013())
	if err != nil {
		t.Fatal(err)
	}
	dac, err := resource.Estimate(resource.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LUT <= 2*dac.Total.LUT {
		t.Errorf("6-instance LUT %f should dwarf the feature-pyramid design's %f",
			res.Total.LUT, dac.Total.LUT)
	}
	// And it does not fit the ZC7020.
	if res.Total.Percent(resource.ZC7020).LUT <= 100 {
		t.Errorf("replicated design unexpectedly fits a ZC7020: %.0f%% LUT",
			res.Total.Percent(resource.ZC7020).LUT)
	}
}

func TestCompareWith(t *testing.T) {
	featRep, err := accel.AnalyticReport(accel.DefaultConfig(), 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	dac, err := resource.Estimate(resource.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareWith(Hahnle2013(), featRep.Throughput.FPS(),
		featRep.ExtractorCycles, dac.Total.LUT)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ExtractionRatio <= 1 {
		t.Errorf("extraction ratio %.2f should exceed 1", cmp.ExtractionRatio)
	}
	if cmp.TimeMuxLUT <= cmp.FeaturePyrLUT {
		t.Error("time-mux should cost more fabric")
	}
	// Both reach real time; the win is fabric, not speed.
	if cmp.TimeMuxFPS < 30 || cmp.FeaturePyrFPS < 30 {
		t.Errorf("fps: timemux %.1f, featpyr %.1f", cmp.TimeMuxFPS, cmp.FeaturePyrFPS)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := Hahnle2013()
	bad.Instances = 0
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := Resources(bad); err == nil {
		t.Error("invalid config should error in Resources too")
	}
}
