// Package timemux models the main prior hardware architecture the paper
// compares against: Hahnle et al., "FPGA-Based Real-Time Pedestrian
// Detection on High-Resolution Images" (CVPRW 2013, the paper's reference
// [9]). That design covers eighteen pedestrian scales with an image
// pyramid, time-multiplexing six parallel HOG+SVM instances whose scaling
// modules are reconfigured between passes — i.e. it re-runs the expensive
// gradient/histogram extraction for every scale, which is precisely the
// cost the DAC'17 paper's feature-pyramid removes.
//
// The model mirrors the accel package's cycle accounting so the two
// architectures can be compared per frame on equal terms: extraction at
// one pixel per cycle per instance, classification at the MACBAR schedule,
// and a resource estimate per replicated instance.
package timemux

import (
	"fmt"
	"math"

	"repro/internal/hw/hwsim"
	"repro/internal/hw/resource"
	"repro/internal/hw/svmpipe"
)

// Config describes a time-multiplexed image-pyramid detector.
type Config struct {
	// ClockHz is the design clock.
	ClockHz float64
	// FrameW, FrameH are the input dimensions.
	FrameW, FrameH int
	// Scales is the number of pyramid scales to cover ([9] uses 18).
	Scales int
	// ScaleStep is the pyramid ratio between scales ([9] uses ~1.09-1.2;
	// 1.2 covers 18 scales down to ~1/26 area).
	ScaleStep float64
	// Instances is the number of parallel HOG+SVM engines the scales are
	// multiplexed over ([9] uses 6).
	Instances int
	// CellSize and window geometry, matching the DAC'17 design for
	// comparability.
	CellSize int
	SVM      svmpipe.Config
}

// Hahnle2013 returns the configuration of the paper's reference [9] on
// HDTV input: 18 scales over 6 instances.
func Hahnle2013() Config {
	return Config{
		ClockHz:   125e6,
		FrameW:    1920,
		FrameH:    1080,
		Scales:    18,
		ScaleStep: 1.2,
		Instances: 6,
		CellSize:  8,
		SVM:       svmpipe.DefaultConfig(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ClockHz <= 0 || c.FrameW < 64 || c.FrameH < 128 {
		return fmt.Errorf("timemux: invalid frame/clock %+v", c)
	}
	if c.Scales < 1 || c.Instances < 1 {
		return fmt.Errorf("timemux: need at least one scale and instance")
	}
	if c.ScaleStep <= 1 {
		return fmt.Errorf("timemux: scale step %g must exceed 1", c.ScaleStep)
	}
	if c.CellSize < 2 {
		return fmt.Errorf("timemux: cell size %d too small", c.CellSize)
	}
	return c.SVM.Validate()
}

// ScalePass is the cycle accounting of one pyramid scale.
type ScalePass struct {
	Scale            float64
	W, H             int // scaled image dimensions
	ExtractCycles    int64
	ClassifierCycles int64
}

// Report is the frame-level accounting of the time-multiplexed design.
type Report struct {
	Passes []ScalePass
	// TotalExtract sums extraction cycles over every scale — the cost the
	// feature-pyramid approach eliminates for all but the native scale.
	TotalExtract int64
	// TotalClassify sums classifier cycles over every scale.
	TotalClassify int64
	// FrameCycles is the frame interval: the per-instance workload after
	// multiplexing the scales over Instances engines (ceil partitioning of
	// the heaviest-first assignment).
	FrameCycles int64
	Throughput  hwsim.Throughput
}

// Analyze computes the per-frame cycle accounting.
func Analyze(c Config) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{}
	for s := 0; s < c.Scales; s++ {
		f := math.Pow(c.ScaleStep, float64(s))
		w := int(math.Round(float64(c.FrameW) / f))
		h := int(math.Round(float64(c.FrameH) / f))
		if w < c.CellSize*c.SVM.WindowCellsX || h < c.CellSize*c.SVM.WindowCellsY {
			break
		}
		bx, by := w/c.CellSize, h/c.CellSize
		pass := ScalePass{
			Scale: f,
			W:     w,
			H:     h,
			// Each scale streams its resized image through an extractor
			// at 1 px/cycle (the resizer runs in line with the stream).
			ExtractCycles:    int64(w) * int64(h),
			ClassifierCycles: c.SVM.FrameCycles(bx, by),
		}
		rep.Passes = append(rep.Passes, pass)
		rep.TotalExtract += pass.ExtractCycles
		rep.TotalClassify += pass.ClassifierCycles
	}
	if len(rep.Passes) == 0 {
		return nil, fmt.Errorf("timemux: no scale fits the %dx%d frame", c.FrameW, c.FrameH)
	}
	// Multiplex: assign passes to instances greedily, heaviest first
	// (LPT); the frame interval is the most loaded instance. Extraction
	// and classification pipeline within a pass, so a pass costs
	// max(extract, classify) ~ extract.
	loads := make([]int64, c.Instances)
	// Passes are already in decreasing cost order (scale shrinks).
	for _, p := range rep.Passes {
		cost := p.ExtractCycles
		if p.ClassifierCycles > cost {
			cost = p.ClassifierCycles
		}
		// Least-loaded instance.
		min := 0
		for i := range loads {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += cost
	}
	for _, l := range loads {
		if l > rep.FrameCycles {
			rep.FrameCycles = l
		}
	}
	rep.Throughput = hwsim.Throughput{CyclesPerFrame: rep.FrameCycles, ClockHz: c.ClockHz}
	return rep, nil
}

// Resources estimates the fabric cost: each instance replicates the HOG
// pipeline, normalizer and classifier of the DAC'17 design, plus an image
// scaling module; NHOGMem is per-instance but shallow (one window of rows).
func Resources(c Config) (*resource.Breakdown, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := resource.PaperParams()
	p.CellsX = c.FrameW / c.CellSize
	p.MemRows = c.SVM.WindowCellsY + 2
	p.Scales = 1 // no feature scaler chain in this architecture
	p.MACBARs = c.SVM.NumMACBARs()
	p.MACsPerBar = c.SVM.MACsPerBar()
	single, err := resource.Estimate(p)
	if err != nil {
		return nil, err
	}
	b := &resource.Breakdown{}
	for i := 0; i < c.Instances; i++ {
		u := single.Total
		b.Modules = append(b.Modules, resource.Module{
			Name:  fmt.Sprintf("hog-svm-instance-%d", i),
			Usage: u,
		})
		b.Total = b.Total.Add(u)
	}
	// One shared image resizer pipeline (bilinear, reconfigurable ratio).
	resizer := resource.Usage{LUT: 1800, FF: 2100, BRAM: 2, DSP: 4}
	b.Modules = append(b.Modules, resource.Module{Name: "image-resizer", Usage: resizer})
	b.Total = b.Total.Add(resizer)
	return b, nil
}

// Compare summarizes this architecture against a feature-pyramid report on
// the throughput-per-resource axis the paper argues on.
type Compare struct {
	TimeMuxFPS      float64
	FeaturePyrFPS   float64
	TimeMuxLUT      float64
	FeaturePyrLUT   float64
	ExtractionRatio float64 // time-mux total extraction / feature-pyr extraction
}

// CompareWith builds the comparison given the feature-pyramid design's
// frame report values.
func CompareWith(c Config, featFPS float64, featExtractCycles int64, featLUT float64) (*Compare, error) {
	rep, err := Analyze(c)
	if err != nil {
		return nil, err
	}
	res, err := Resources(c)
	if err != nil {
		return nil, err
	}
	cmp := &Compare{
		TimeMuxFPS:    rep.Throughput.FPS(),
		FeaturePyrFPS: featFPS,
		TimeMuxLUT:    res.Total.LUT,
		FeaturePyrLUT: featLUT,
	}
	if featExtractCycles > 0 {
		cmp.ExtractionRatio = float64(rep.TotalExtract) / float64(featExtractCycles)
	}
	return cmp, nil
}
