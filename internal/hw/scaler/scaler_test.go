package scaler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/hw/hogpipe"
	"repro/internal/imgproc"
)

func nativeMap(t *testing.T, w, h int, seed int64) *hogpipe.Result {
	t.Helper()
	img := imgproc.NewGray(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range img.Pix {
		img.Pix[i] = uint8(rng.Intn(256))
	}
	img = imgproc.BoxBlur(img, 1)
	res, _, err := hogpipe.RunFrame(img, hogpipe.DefaultConfig(), 125e6)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Step = 1
	if err := bad.Validate(); err == nil {
		t.Error("unit step should fail")
	}
	bad = DefaultConfig()
	bad.NumScales = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scales should fail")
	}
	bad = DefaultConfig()
	bad.MinBlocksX = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero min grid should fail")
	}
}

func TestBuildTwoScaleChain(t *testing.T) {
	native := nativeMap(t, 256, 256, 1) // 32x32 blocks
	cfg := DefaultConfig()
	ch, err := Build(native, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Stages) != 1 {
		t.Fatalf("two-scale chain has %d stages, want 1", len(ch.Stages))
	}
	s := ch.Stages[0]
	if s.Out.BlocksX != 29 || s.Out.BlocksY != 29 { // 32/1.1 rounds to 29
		t.Errorf("stage grid %dx%d, want 29x29", s.Out.BlocksX, s.Out.BlocksY)
	}
	if math.Abs(s.Scale-1.1) > 1e-12 {
		t.Errorf("stage scale %v, want 1.1", s.Scale)
	}
	if s.Cycles != int64(29*29) {
		t.Errorf("stage cycles %d, want %d", s.Cycles, 29*29)
	}
	levels := ch.Levels()
	if len(levels) != 2 || levels[0].Scale != 1 {
		t.Errorf("levels wrong: %d entries", len(levels))
	}
	if ch.TotalCycles() != s.Cycles {
		t.Error("TotalCycles mismatch")
	}
}

func TestChainStopsAtWindow(t *testing.T) {
	native := nativeMap(t, 128, 192, 2) // 16x24 blocks
	cfg := Config{Step: 2, NumScales: 10, MinBlocksX: 8, MinBlocksY: 16}
	ch, err := Build(native, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16x24 -> 8x12 < window height: chain must stop at 0 stages.
	if len(ch.Stages) != 0 {
		t.Errorf("chain should stop before violating the window, got %d stages", len(ch.Stages))
	}
}

// TestChainMatchesFixedScaler: the chain stage must agree with applying the
// fixed scaler directly (same arithmetic path).
func TestChainMatchesFixedScaler(t *testing.T) {
	native := nativeMap(t, 256, 384, 3)
	cfg := DefaultConfig()
	ch, err := Build(native, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Stages) == 0 {
		t.Fatal("no stages built")
	}
	s := ch.Stages[0]

	fs := featpyr.NewFixedScaler()
	ref, _, err := fs.ScaleMap(toFloatMap(native), s.Out.BlocksX, s.Out.BlocksY)
	if err != nil {
		t.Fatal(err)
	}
	refQ := fromFloatMap(ref, native.FeatFrac)
	for i := range s.Out.Feat {
		if s.Out.Feat[i] != refQ.Feat[i] {
			t.Fatalf("stage output differs from direct fixed scaler at %d: %d vs %d",
				i, s.Out.Feat[i], refQ.Feat[i])
		}
	}
}

// TestChainApproximatesFloatPyramid: the chained fixed-point levels must
// track the float feature pyramid.
func TestChainApproximatesFloatPyramid(t *testing.T) {
	native := nativeMap(t, 256, 384, 4)
	cfg := Config{Step: 1.3, NumScales: 3, MinBlocksX: 8, MinBlocksY: 16}
	ch, err := Build(native, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Stages) < 2 {
		t.Fatalf("want 2 stages, got %d", len(ch.Stages))
	}
	floatBase := toFloatMap(native)
	p, err := featpyr.BuildChained(floatBase, 1.3, 8, 16, 3, featpyr.ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ch.Stages {
		ref := p.Levels[i+1].Map
		if ref.BlocksX != s.Out.BlocksX || ref.BlocksY != s.Out.BlocksY {
			t.Fatalf("stage %d grid %dx%d vs float %dx%d", i,
				s.Out.BlocksX, s.Out.BlocksY, ref.BlocksX, ref.BlocksY)
		}
		q := toFloatMap(s.Out)
		var maxErr float64
		for j := range q.Feat {
			if e := math.Abs(q.Feat[j] - ref.Feat[j]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 0.03 {
			t.Errorf("stage %d max error vs float pyramid %.4f", i, maxErr)
		}
	}
}

func TestQuantizationHelpersRoundTrip(t *testing.T) {
	native := nativeMap(t, 64, 128, 5)
	fm := toFloatMap(native)
	back := fromFloatMap(fm, native.FeatFrac)
	for i := range native.Feat {
		if back.Feat[i] != native.Feat[i] {
			t.Fatalf("quantization round trip broke at %d: %d vs %d",
				i, back.Feat[i], native.Feat[i])
		}
	}
}

func TestStageStatsPopulated(t *testing.T) {
	native := nativeMap(t, 256, 256, 6)
	ch, err := Build(native, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := ch.Stages[0]
	if s.Stats.OutputBlocks != s.Out.BlocksX*s.Out.BlocksY {
		t.Error("stats output blocks wrong")
	}
	if s.Stats.MaxAdders <= 0 {
		t.Error("adder cost not tracked")
	}
}

func TestFloatMapConversionUsesConfigLayout(t *testing.T) {
	// toFloatMap must produce maps compatible with the software feature
	// type (dims and lengths).
	native := nativeMap(t, 64, 128, 7)
	fm := toFloatMap(native)
	var _ *hog.FeatureMap = fm
	if fm.BlocksX != 8 || fm.BlocksY != 16 || fm.BlockLen != 36 {
		t.Errorf("converted dims %dx%dx%d", fm.BlocksX, fm.BlocksY, fm.BlockLen)
	}
}
