// Package scaler models the pipelined HOG-feature down-scaling modules of
// the accelerator (Section 5, Figure 6): a chain in which each stage
// resizes the normalized feature stream of the previous scale with
// shift-and-add arithmetic (no multipliers) and stores it in a temporary
// feature memory that feeds both that scale's SVM classifier and the next
// stage of the chain.
package scaler

import (
	"fmt"
	"math"

	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/hw/hogpipe"
)

// Stage is one down-scaling module of the chain.
type Stage struct {
	// Index is the position in the chain (1 = first scaled level).
	Index int
	// Scale is the cumulative scale of the stage's output relative to the
	// native feature map.
	Scale float64
	// Out is the stage's output feature map (fixed point).
	Out *hogpipe.Result
	// Stats holds the shift-add cost bookkeeping of this stage.
	Stats featpyr.ScaleStats
	// Cycles models the stage's processing time for the frame: one output
	// block per cycle (36 shift-add lanes work on a block's words in
	// parallel, mirroring the paper's "temporary data storage and
	// pipelined structure").
	Cycles int64
}

// Chain is the multi-scale scaler chain plus its per-stage outputs.
type Chain struct {
	// Step is the scale ratio between adjacent stages.
	Step float64
	// Levels holds the native map (index 0) and each scaled stage.
	Native *hogpipe.Result
	Stages []*Stage
}

// Config parameterizes the chain.
type Config struct {
	// Step is the per-stage scale ratio (the paper's hardware uses one
	// fixed ratio per stage so the shift-add networks are constants).
	Step float64
	// NumScales is the total number of scales including the native one
	// (the paper's implementation: 2).
	NumScales int
	// MinBlocksX/Y stop the chain when a stage would drop below the
	// window size.
	MinBlocksX, MinBlocksY int
	// Scaler is the shift-and-add implementation; nil uses defaults.
	Scaler *featpyr.FixedScaler
}

// DefaultConfig returns the paper's two-scale configuration with a 1.1-like
// step... The paper never states its second-scale ratio; Build accepts any.
func DefaultConfig() Config {
	return Config{Step: 1.1, NumScales: 2, MinBlocksX: 8, MinBlocksY: 16}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Step <= 1 {
		return fmt.Errorf("scaler: step %g must exceed 1", c.Step)
	}
	if c.NumScales < 1 {
		return fmt.Errorf("scaler: need at least one scale")
	}
	if c.MinBlocksX < 1 || c.MinBlocksY < 1 {
		return fmt.Errorf("scaler: invalid minimum grid %dx%d", c.MinBlocksX, c.MinBlocksY)
	}
	return nil
}

// Build runs the chain over a native fixed-point feature map, producing
// every scaled level. Each stage consumes the previous stage's output,
// exactly like the cascaded modules of Figure 6 (so interpolation error
// compounds down the chain — the trade the hardware makes for constant
// per-stage coefficients).
func Build(native *hogpipe.Result, cfg Config) (*Chain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := cfg.Scaler
	if fs == nil {
		fs = featpyr.NewFixedScaler()
	}
	ch := &Chain{Step: cfg.Step, Native: native}
	prev := native
	for i := 1; i < cfg.NumScales; i++ {
		outBX := int(math.Round(float64(prev.BlocksX) / cfg.Step))
		outBY := int(math.Round(float64(prev.BlocksY) / cfg.Step))
		if outBX < cfg.MinBlocksX || outBY < cfg.MinBlocksY {
			break
		}
		fm := toFloatMap(prev)
		scaled, stats, err := fs.ScaleMap(fm, outBX, outBY)
		if err != nil {
			return nil, fmt.Errorf("scaler: stage %d: %w", i, err)
		}
		res := fromFloatMap(scaled, prev.FeatFrac)
		ch.Stages = append(ch.Stages, &Stage{
			Index:  i,
			Scale:  math.Pow(cfg.Step, float64(i)),
			Out:    res,
			Stats:  *stats,
			Cycles: int64(outBX) * int64(outBY),
		})
		prev = res
	}
	return ch, nil
}

// Levels returns all feature maps of the chain, native first, with their
// cumulative scales.
func (c *Chain) Levels() []struct {
	Scale float64
	Map   *hogpipe.Result
} {
	out := []struct {
		Scale float64
		Map   *hogpipe.Result
	}{{1, c.Native}}
	for _, s := range c.Stages {
		out = append(out, struct {
			Scale float64
			Map   *hogpipe.Result
		}{s.Scale, s.Out})
	}
	return out
}

// TotalCycles returns the summed stage cycles (the chain is pipelined with
// the extractor in hardware, so this is bookkeeping, not added latency —
// see the accel package for how frame time is assembled).
func (c *Chain) TotalCycles() int64 {
	var t int64
	for _, s := range c.Stages {
		t += s.Cycles
	}
	return t
}

// toFloatMap wraps a fixed Result as a float FeatureMap for the scaler.
func toFloatMap(r *hogpipe.Result) *hog.FeatureMap {
	fm := &hog.FeatureMap{
		BlocksX:  r.BlocksX,
		BlocksY:  r.BlocksY,
		BlockLen: r.BlockLen,
		Feat:     make([]float64, len(r.Feat)),
	}
	scale := 1 / float64(int64(1)<<uint(r.FeatFrac))
	for i, v := range r.Feat {
		fm.Feat[i] = float64(v) * scale
	}
	return fm
}

// fromFloatMap requantizes a float map into a fixed Result.
func fromFloatMap(fm *hog.FeatureMap, featFrac int) *hogpipe.Result {
	r := &hogpipe.Result{
		BlocksX:  fm.BlocksX,
		BlocksY:  fm.BlocksY,
		BlockLen: fm.BlockLen,
		FeatFrac: featFrac,
		Feat:     make([]int64, len(fm.Feat)),
	}
	one := float64(int64(1) << uint(featFrac))
	max := int64(1)<<uint(featFrac) - 1
	for i, v := range fm.Feat {
		q := int64(math.Floor(v*one + 0.5))
		if q < 0 {
			q = 0
		}
		if q > max {
			q = max
		}
		r.Feat[i] = q
	}
	return r
}
