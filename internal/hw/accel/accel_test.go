package accel

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

var (
	modelOnce sync.Once
	modelDet  *core.Detector
	modelErr  error
	modelGen  *dataset.Generator
)

// testModel trains one small shared detector model.
func testModel(t *testing.T) (*svm.Model, *dataset.Generator) {
	t.Helper()
	modelOnce.Do(func() {
		modelGen = dataset.New(555)
		set, err := modelGen.RenderAt(modelGen.NewSpecSet(120, 360), 1.0)
		if err != nil {
			modelErr = err
			return
		}
		modelDet, modelErr = core.Train(set, core.DefaultConfig(), core.DefaultTrainOptions())
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelDet.Model(), modelGen
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ClockHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock should fail")
	}
	bad = DefaultConfig()
	bad.ScaleStep = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("sub-unit step should fail")
	}
	bad = DefaultConfig()
	bad.NumScales = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scales should fail")
	}
	bad = DefaultConfig()
	bad.WeightFmt = fixed.Format{Width: 1}
	if err := bad.Validate(); err == nil {
		t.Error("bad weight format should fail")
	}
}

func TestNewChecksModelLength(t *testing.T) {
	short := &svm.Model{W: make([]float64, 7)}
	if _, err := New(short, DefaultConfig()); err == nil {
		t.Error("short model should be rejected")
	}
}

// TestAnalyticHDTVReproducesPaperNumbers is experiment E4: the closed-form
// cycle accounting must land on the paper's Section 5 claims.
func TestAnalyticHDTVReproducesPaperNumbers(t *testing.T) {
	cfg := DefaultConfig()
	rep, err := AnalyticReport(cfg, 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	// Extractor: 1 px/cycle over 1920x1080 -> 16.6 ms at 125 MHz.
	extMs := float64(rep.ExtractorCycles) / cfg.ClockHz * 1e3
	if extMs < 16.5 || extMs > 16.8 {
		t.Errorf("extractor %.3f ms, want ~16.6", extMs)
	}
	// Native-scale classifier: 120 window rows x 240 columns x 36 cycles.
	if got, want := rep.Scales[0].ClassifierCycles, int64(120*240*36); got != want {
		t.Errorf("native classifier cycles %d, want %d", got, want)
	}
	// Two-scale total within 1.5%% of the paper's 1,200,420 cycles.
	paper := 1200420.0
	relErr := math.Abs(float64(rep.ClassifierSum)-paper) / paper
	if relErr > 0.015 {
		t.Errorf("two-scale classifier cycles %d, want within 1.5%% of %d (err %.2f%%)",
			rep.ClassifierSum, int64(paper), relErr*100)
	}
	// Classifier stage under 10 ms (paper: "each frame of image is
	// processed within less than 10ms").
	clsMs := float64(rep.ClassifierSum) / cfg.ClockHz * 1e3
	if clsMs >= 10 {
		t.Errorf("classifier %.2f ms, want < 10", clsMs)
	}
	// End-to-end: extractor-bound at 60 fps.
	fps := rep.Throughput.FPS()
	if fps < 59.5 || fps > 61 {
		t.Errorf("frame rate %.2f fps, want ~60", fps)
	}
	t.Logf("HDTV: extractor %d cyc (%.2f ms), classifier sum %d cyc (%.2f ms), %s",
		rep.ExtractorCycles, extMs, rep.ClassifierSum, clsMs, rep.Throughput)
}

func TestAnalyticClassifierFasterThanExtractor(t *testing.T) {
	// The design premise: the classifier keeps up with the extractor so
	// the 18-row buffer never overflows.
	rep, err := AnalyticReport(DefaultConfig(), 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClassifierSum >= rep.ExtractorCycles {
		t.Errorf("classifier (%d) must be faster than extractor (%d)",
			rep.ClassifierSum, rep.ExtractorCycles)
	}
}

func TestAnalyticSequentialVsParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SequentialClassifiers = false
	par, err := AnalyticReport(cfg, 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SequentialClassifiers = true
	seq, err := AnalyticReport(cfg, 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	// Both remain extractor-bound on HDTV, but the classifier-stage bound
	// differs: max vs sum.
	if par.ClassifierMax >= par.ClassifierSum {
		t.Error("max should be below sum with two scales")
	}
	if seq.FrameCycles < par.FrameCycles {
		t.Error("sequential classification cannot be faster")
	}
}

func TestAnalyticErrors(t *testing.T) {
	if _, err := AnalyticReport(DefaultConfig(), 32, 32); err == nil {
		t.Error("tiny frame should error")
	}
	bad := DefaultConfig()
	bad.NumScales = 0
	if _, err := AnalyticReport(bad, 1920, 1080); err == nil {
		t.Error("invalid config should error")
	}
}

// TestProcessFrameDetectsPedestrian: the full cycle-level accelerator must
// find a native-scale pedestrian.
func TestProcessFrameDetectsPedestrian(t *testing.T) {
	model, g := testModel(t)
	cfg := DefaultConfig()
	cfg.ScaleStep = 1.3 // tighter ladder for a small test frame
	a, err := New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build a small frame with one pedestrian.
	spec := g.NewSpec(false)
	frame := g.Render(spec, 256, 256)
	pspec := g.NewSpec(true)
	pspec.Pose.CenterXFrac = 0.5
	win := g.Render(pspec, 64, 128)
	imgproc.Paste(frame, win, 96, 64, -1)
	truth := geom.XYWH(96, 64, 64, 128)

	dets, rep, err := a.ProcessFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("accelerator found nothing")
	}
	if geom.IoU(dets[0].Box, truth) < 0.4 {
		t.Errorf("best hardware detection %v far from truth %v", dets[0].Box, truth)
	}
	// Cycle accounting sanity: extractor ~= pixels, classifier matches the
	// analytic closed form.
	if rep.ExtractorCycles < 256*256 || rep.ExtractorCycles > 256*256+1024 {
		t.Errorf("extractor cycles %d", rep.ExtractorCycles)
	}
	wantNative := cfg.SVM.FrameCycles(32, 32)
	if rep.Scales[0].ClassifierCycles != wantNative {
		t.Errorf("native classifier cycles %d, want %d", rep.Scales[0].ClassifierCycles, wantNative)
	}
	if len(rep.Scales) < 2 {
		t.Errorf("expected 2 scales, got %d", len(rep.Scales))
	}
	if rep.MACOps == 0 {
		t.Error("MAC ops not tracked")
	}
}

// TestProcessFrameAgreesWithSoftwareDetector: hardware and software
// detectors must agree on the clear case (same top detection).
func TestProcessFrameAgreesWithSoftwareDetector(t *testing.T) {
	model, g := testModel(t)
	cfg := DefaultConfig()
	cfg.NumScales = 1
	a, err := New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := g.NewSpec(false)
	frame := g.Render(spec, 192, 192)
	pspec := g.NewSpec(true)
	win := g.Render(pspec, 64, 128)
	imgproc.Paste(frame, win, 64, 32, -1)

	hwDets, _, err := a.ProcessFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	swCfg := core.DefaultConfig()
	swCfg.MaxScales = 1
	sw, err := core.NewDetector(model, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	swDets, err := sw.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(hwDets) == 0 || len(swDets) == 0 {
		t.Fatalf("hw %d dets, sw %d dets", len(hwDets), len(swDets))
	}
	if geom.IoU(hwDets[0].Box, swDets[0].Box) < 0.6 {
		t.Errorf("hw top %v and sw top %v disagree", hwDets[0].Box, swDets[0].Box)
	}
	if math.Abs(hwDets[0].Score-swDets[0].Score) > 0.3*math.Max(1, math.Abs(swDets[0].Score)) {
		t.Errorf("scores diverge: hw %.3f sw %.3f", hwDets[0].Score, swDets[0].Score)
	}
}

func TestResourcesBreakdown(t *testing.T) {
	model, _ := testModel(t)
	a, err := New(model, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.Resources(1920)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total.LUT <= 0 || b.Total.BRAM <= 0 {
		t.Error("empty resource breakdown")
	}
}

// TestMultiClassAccounting: extra object classes add classifier instances
// (hardware) but not frame time when instances run in parallel — the
// paper's multiple-object claim in cycle/resource terms.
func TestMultiClassAccounting(t *testing.T) {
	one := DefaultConfig()
	two := DefaultConfig()
	two.NumClasses = 2
	r1, err := AnalyticReport(one, 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyticReport(two, 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ClassifierMax != r1.ClassifierMax {
		t.Errorf("parallel classes changed the max-latency: %d vs %d",
			r2.ClassifierMax, r1.ClassifierMax)
	}
	if r2.ClassifierSum != 2*r1.ClassifierSum {
		t.Errorf("sequential accounting: %d, want %d", r2.ClassifierSum, 2*r1.ClassifierSum)
	}
	if r2.Throughput.FPS() < 59 {
		t.Errorf("two parallel classes should stay extractor-bound: %.1f fps", r2.Throughput.FPS())
	}
	// Resources: two classes double the classifier fabric.
	model, _ := testModel(t)
	a1, err := New(model, one)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := New(model, two)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a1.Resources(1920)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a2.Resources(1920)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Total.LUT <= b1.Total.LUT {
		t.Error("second class should cost fabric")
	}
}

// TestProcessSequenceSustainedThroughput: over a clip the sustained frame
// interval equals the per-frame steady state, with only a one-frame
// classifier fill on top.
func TestProcessSequenceSustainedThroughput(t *testing.T) {
	model, g := testModel(t)
	cfg := DefaultConfig()
	cfg.ScaleStep = 1.5
	a, err := New(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.MakeSequence(dataset.SequenceConfig{
		W: 192, H: 160, Frames: 3, Pedestrians: 1, FPS: 10,
		ApproachRate: 0.05, WalkSpeedPx: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.ProcessSequence(seq.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 3 || len(rep.PerFrame) != 3 || len(rep.Detections) != 3 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	var steady int64
	for _, fr := range rep.PerFrame {
		steady += fr.FrameCycles
	}
	if rep.TotalCycles <= steady {
		t.Error("total must include the pipeline fill")
	}
	if rep.Sustained.CyclesPerFrame != steady/3 {
		t.Errorf("sustained interval %d, want %d", rep.Sustained.CyclesPerFrame, steady/3)
	}
	// Errors.
	if _, err := a.ProcessSequence(nil); err == nil {
		t.Error("empty sequence should error")
	}
	bad := []*imgproc.Gray{seq.Frames[0], imgproc.NewGray(64, 128)}
	if _, err := a.ProcessSequence(bad); err == nil {
		t.Error("mixed geometry should error")
	}
}

func TestSustainedFPSAnalyticHDTV(t *testing.T) {
	fps, err := SustainedFPSAnalytic(DefaultConfig(), 1920, 1080)
	if err != nil {
		t.Fatal(err)
	}
	if fps < 59.5 || fps > 61 {
		t.Errorf("sustained HDTV fps %.1f, want ~60", fps)
	}
}
