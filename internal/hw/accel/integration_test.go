package accel

import (
	"testing"

	"repro/internal/hw/hogpipe"
	"repro/internal/hw/nhogmem"
	"repro/internal/hw/svmpipe"
	"repro/internal/imgproc"
)

// TestStreamingMemoryIntegration wires the real pieces together the way
// Figure 5 does: the streaming extractor's block rows are written into an
// actual 18-row NHOGMem ring while the classifier drains block columns via
// the 72-cycle pair schedules, under the true producer/consumer timing:
//
//   - the extractor produces one cell row per CellSize*W cycles
//     (1 px/cycle), and
//   - the classifier consumes one window row per 36*cols cycles,
//     which is faster, so it always waits on the producer and the 18-row
//     ring never underruns or overruns.
//
// The test executes every read through the Mem's residency checks, so an
// eviction-before-read or read-before-write fails loudly, and verifies the
// fetched features are the extractor's own.
func TestStreamingMemoryIntegration(t *testing.T) {
	g := newTestImage(640, 480, 99)
	cfg := hogpipe.DefaultConfig()
	res, _, err := hogpipe.RunFrame(g, cfg, 125e6)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := res.BlocksX, res.BlocksY // 80 x 60
	svmCfg := svmpipe.DefaultConfig()
	windowRows := rows - svmCfg.WindowCellsY + 1

	memCfg := nhogmem.Config{CellsX: cols, Rows: 18, BlockLen: res.BlockLen, WordBits: 16}
	mem, err := nhogmem.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Timing model (cycles): cell row r is available once pixel row
	// (r+1)*CellSize has streamed, i.e. cycle ~ ((r+1)*CellSize+1) * W.
	writeTime := func(r int) int64 {
		return int64((r+1)*cfg.CellSize+1) * int64(g.W)
	}
	// The classifier starts window row wy only when its last cell row
	// (wy+15) is resident, then spends 36*cols cycles on the row.
	rowCost := int64(svmCfg.BlockLen) * int64(cols)

	writeRow := func(r int) {
		blocks := make([][]int64, cols)
		for cx := 0; cx < cols; cx++ {
			b := make([]int64, res.BlockLen)
			copy(b, res.Block(cx, r))
			blocks[cx] = b
		}
		if err := mem.WriteRow(r, blocks); err != nil {
			t.Fatalf("write row %d: %v", r, err)
		}
	}

	written := 0
	now := int64(0)
	for wy := 0; wy < windowRows; wy++ {
		need := wy + svmCfg.WindowCellsY // rows 0..need-1 must be written
		for written < need {
			// Advance time to the producer if the consumer got ahead.
			if wt := writeTime(written); wt > now {
				now = wt
			}
			writeRow(written)
			written++
		}
		// While this window row classifies, the producer keeps writing
		// every row whose time has come (the overrun hazard the 18-row
		// ring must absorb).
		rowEnd := now + rowCost
		for written < rows && writeTime(written) <= rowEnd {
			writeRow(written)
			written++
		}
		// Drain the row's block columns through pair schedules, verifying
		// contents against the extractor output.
		for cx := 0; cx+1 < cols; cx += 2 {
			sched, err := nhogmem.PairSchedule(cx, wy, svmCfg.WindowCellsY, res.BlockLen)
			if err != nil {
				t.Fatalf("window row %d col %d: %v", wy, cx, err)
			}
			blocks, err := mem.ExecuteSchedule(sched)
			if err != nil {
				t.Fatalf("window row %d col %d: %v (18-row ring violated)", wy, cx, err)
			}
			for key, vec := range blocks {
				ref := res.Block(key[0], key[1])
				for e := range vec {
					if vec[e] != ref[e] {
						t.Fatalf("block (%d,%d) word %d: mem %d != extractor %d",
							key[0], key[1], e, vec[e], ref[e])
					}
				}
			}
		}
		now = rowEnd
	}
	if mem.Reads == 0 {
		t.Fatal("no reads executed")
	}
	t.Logf("integration: %d rows written, %d evictions, %d reads, final cycle %d",
		written, mem.Evictions, mem.Reads, now)
}

// TestStreamingMemory16RowsFails shows the converse: with a 16-row ring the
// same schedule hits an eviction-before-read, demonstrating why the paper
// sizes NHOGMem at 18 rows.
func TestStreamingMemory16RowsFails(t *testing.T) {
	g := newTestImage(640, 480, 100)
	cfg := hogpipe.DefaultConfig()
	res, _, err := hogpipe.RunFrame(g, cfg, 125e6)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := res.BlocksX, res.BlocksY
	svmCfg := svmpipe.DefaultConfig()
	memCfg := nhogmem.Config{CellsX: cols, Rows: 16, BlockLen: res.BlockLen, WordBits: 16}
	mem, err := nhogmem.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	writeRow := func(r int) {
		blocks := make([][]int64, cols)
		for cx := 0; cx < cols; cx++ {
			blocks[cx] = append([]int64(nil), res.Block(cx, r)...)
		}
		if err := mem.WriteRow(r, blocks); err != nil {
			t.Fatal(err)
		}
	}
	// Write 17 rows (producer one row ahead of a full window) — already
	// more than a 16-row ring holds.
	for r := 0; r < 17 && r < rows; r++ {
		writeRow(r)
	}
	sched, err := nhogmem.PairSchedule(0, 0, svmCfg.WindowCellsY, res.BlockLen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ExecuteSchedule(sched); err == nil {
		t.Fatal("16-row ring should have evicted row 0 before the window read")
	}
}

// newTestImage builds a deterministic pseudo-random test frame.
func newTestImage(w, h int, seed int64) *imgproc.Gray {
	img := imgproc.NewGray(w, h)
	s := uint64(seed)
	for i := range img.Pix {
		s = s*6364136223846793005 + 1442695040888963407
		img.Pix[i] = uint8(s >> 56)
	}
	return imgproc.BoxBlur(img, 1)
}
