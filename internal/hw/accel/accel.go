// Package accel assembles the full pedestrian-detection accelerator of the
// paper (Figure 5): the streaming HOG extractor, the NHOGMem-backed feature
// storage, the shift-and-add scaler chain, and one SVM classifier instance
// per detection scale, with cycle accounting that reproduces the paper's
// throughput claims (Section 5):
//
//   - the extractor consumes one pixel per cycle: an HDTV frame takes
//     ~2,073,600 cycles = 16.6 ms at 125 MHz = 60 fps;
//   - each classifier scores one window every 36 cycles after a 288-cycle
//     per-row fill, so a frame row of C block columns costs 36*C cycles and
//     the whole HDTV frame ~1.2M classifier cycles over two scales
//     (< 10 ms at 125 MHz);
//   - the frame rate of the pipelined whole is set by its slowest stage,
//     which is the extractor — hence 60 fps end to end.
package accel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fixed"
	"repro/internal/geom"
	"repro/internal/hw/hogpipe"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/resource"
	"repro/internal/hw/scaler"
	"repro/internal/hw/svmpipe"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// Config parameterizes the accelerator.
type Config struct {
	// ClockHz is the design clock (125 MHz in the paper).
	ClockHz float64
	// HOG configures the extractor datapath.
	HOG hogpipe.Config
	// SVM configures the classifier geometry.
	SVM svmpipe.Config
	// ScaleStep is the ratio between detection scales. The paper does not
	// state its second scale; 2.25 reproduces the published cycle count
	// (see AnalyticHDTV and EXPERIMENTS.md).
	ScaleStep float64
	// NumScales is the number of detection scales (2 in the paper).
	NumScales int
	// NumClasses is the number of object classes, each with its own SVM
	// instance per scale sharing the feature stream (the paper's multiple
	// object detection capability). 0 means 1. It scales the sequential
	// classifier accounting and the resource estimate; ProcessFrame runs
	// the primary class.
	NumClasses int
	// WeightFmt is the fixed-point format of SVM weights in model memory.
	WeightFmt fixed.Format
	// Threshold is the decision threshold in float score units.
	Threshold float64
	// NMSOverlap is applied to the pooled detections; <= 0 disables NMS.
	NMSOverlap float64
	// SequentialClassifiers makes one classifier handle all scales in
	// sequence (time-multiplexed) instead of one instance per scale; this
	// changes the classifier-stage latency from max to sum.
	SequentialClassifiers bool
}

// DefaultConfig returns the paper's configuration: 125 MHz, two scales.
func DefaultConfig() Config {
	return Config{
		ClockHz:    125e6,
		HOG:        hogpipe.DefaultConfig(),
		SVM:        svmpipe.DefaultConfig(),
		ScaleStep:  2.25,
		NumScales:  2,
		WeightFmt:  fixed.Q(3, 12),
		Threshold:  0,
		NMSOverlap: 0.3,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("accel: non-positive clock %g", c.ClockHz)
	}
	if err := c.HOG.Validate(); err != nil {
		return err
	}
	if err := c.SVM.Validate(); err != nil {
		return err
	}
	if c.ScaleStep <= 1 {
		return fmt.Errorf("accel: scale step %g must exceed 1", c.ScaleStep)
	}
	if c.NumScales < 1 {
		return fmt.Errorf("accel: need at least one scale")
	}
	return c.WeightFmt.Validate()
}

// Accel is a configured accelerator instance.
type Accel struct {
	cfg    Config
	model  *svm.QuantizedModel
	fmodel *svm.Model
}

// New quantizes the model into the weight memory format and validates
// dimensions.
func New(model *svm.Model, cfg Config) (*Accel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(model.W) != cfg.SVM.WeightLen() {
		return nil, fmt.Errorf("accel: model has %d weights, classifier needs %d",
			len(model.W), cfg.SVM.WeightLen())
	}
	q, err := svm.Quantize(model, cfg.WeightFmt)
	if err != nil {
		return nil, err
	}
	return &Accel{cfg: cfg, model: q, fmodel: model}, nil
}

// ScaleReport is the per-scale cycle accounting of one frame.
type ScaleReport struct {
	Scale            float64
	BlocksX, BlocksY int
	Windows          int
	ClassifierCycles int64
	ScalerCycles     int64 // 0 for the native scale
}

// FrameReport aggregates a frame's simulation results.
type FrameReport struct {
	ExtractorCycles int64
	Scales          []ScaleReport
	// ClassifierSum and ClassifierMax are the time-multiplexed and
	// parallel-instance latencies of the classification stage.
	ClassifierSum, ClassifierMax int64
	// FrameCycles is the end-to-end steady-state frame interval: the
	// slowest pipeline stage.
	FrameCycles int64
	Throughput  hwsim.Throughput
	MACOps      int64
}

// pipelineBound returns the frame interval from stage latencies.
func (c Config) pipelineBound(extractor, clsSum, clsMax int64) int64 {
	cls := clsMax
	if c.SequentialClassifiers {
		cls = clsSum
	}
	if cls > extractor {
		return cls
	}
	return extractor
}

// ProcessFrame runs the full cycle-level accelerator on a frame: extraction,
// scaler chain, per-scale classification, thresholding and NMS. It returns
// the detections in frame coordinates plus the cycle report.
func (a *Accel) ProcessFrame(img *imgproc.Gray) ([]eval.Detection, *FrameReport, error) {
	native, extRep, err := hogpipe.RunFrame(img, a.cfg.HOG, a.cfg.ClockHz)
	if err != nil {
		return nil, nil, err
	}
	wbx, wby := a.cfg.SVM.WindowCellsX, a.cfg.SVM.WindowCellsY
	ch, err := scaler.Build(native, scaler.Config{
		Step:       a.cfg.ScaleStep,
		NumScales:  a.cfg.NumScales,
		MinBlocksX: wbx,
		MinBlocksY: wby,
	})
	if err != nil {
		return nil, nil, err
	}

	rep := &FrameReport{ExtractorCycles: extRep.Cycles}
	var dets []eval.Detection
	featFrac := native.FeatFrac
	scoreScale := 1 / float64(int64(1)<<uint(featFrac+a.cfg.WeightFmt.Frac))
	cell := a.cfg.HOG.CellSize

	for _, level := range ch.Levels() {
		src := &svmpipe.MapSource{
			BlocksX:  level.Map.BlocksX,
			BlocksY:  level.Map.BlocksY,
			BlockLen: level.Map.BlockLen,
			Feat:     level.Map.Feat,
		}
		out := hwsim.NewFIFO[svmpipe.Score]("scores", 1<<20)
		eng, err := svmpipe.NewEngine(a.cfg.SVM, a.model.W, src, out)
		if err != nil {
			return nil, nil, err
		}
		sim := hwsim.NewSim()
		sim.Add(eng)
		budget := a.cfg.SVM.FrameCycles(level.Map.BlocksX, level.Map.BlocksY) + 1000
		if budget < 1000 {
			budget = 1000
		}
		if _, err := sim.RunUntil(eng.Done, budget); err != nil {
			return nil, nil, err
		}
		// Effective pixel scale of this level.
		ps := float64(native.BlocksX) / float64(level.Map.BlocksX)
		wins := 0
		for {
			s, ok := out.Pop()
			if !ok {
				break
			}
			wins++
			score := float64(s.Acc)*scoreScale + a.model.Fmt.ToFloat(a.model.B)
			if score <= a.cfg.Threshold {
				continue
			}
			box := geom.XYWH(s.Bx*cell, s.By*cell, wbx*cell, wby*cell).Scale(ps)
			dets = append(dets, eval.Detection{Box: box, Score: score})
		}
		sr := ScaleReport{
			Scale:            level.Scale,
			BlocksX:          level.Map.BlocksX,
			BlocksY:          level.Map.BlocksY,
			Windows:          wins,
			ClassifierCycles: eng.Cycles,
		}
		rep.MACOps += eng.MACOps
		rep.Scales = append(rep.Scales, sr)
	}
	for i, st := range ch.Stages {
		if i+1 < len(rep.Scales) {
			rep.Scales[i+1].ScalerCycles = st.Cycles
		}
	}
	for _, sr := range rep.Scales {
		rep.ClassifierSum += sr.ClassifierCycles
		if sr.ClassifierCycles > rep.ClassifierMax {
			rep.ClassifierMax = sr.ClassifierCycles
		}
	}
	rep.FrameCycles = a.cfg.pipelineBound(rep.ExtractorCycles, rep.ClassifierSum, rep.ClassifierMax)
	rep.Throughput = hwsim.Throughput{CyclesPerFrame: rep.FrameCycles, ClockHz: a.cfg.ClockHz}

	if a.cfg.NMSOverlap > 0 {
		dets = core.NMS(dets, a.cfg.NMSOverlap)
	}
	return dets, rep, nil
}

// AnalyticReport computes the cycle accounting of a frame without
// simulating it — the closed forms behind the paper's Section 5 numbers.
func AnalyticReport(cfg Config, frameW, frameH int) (*FrameReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cellsX := frameW / cfg.HOG.CellSize
	cellsY := frameH / cfg.HOG.CellSize
	if cellsX < cfg.SVM.WindowCellsX || cellsY < cfg.SVM.WindowCellsY {
		return nil, fmt.Errorf("accel: frame %dx%d smaller than the detection window", frameW, frameH)
	}
	rep := &FrameReport{
		// 1 px/cycle plus the one-row bottom-border flush.
		ExtractorCycles: int64(frameW)*int64(frameH) + int64(frameW),
	}
	bx, by := cellsX, cellsY
	for s := 0; s < cfg.NumScales; s++ {
		if bx < cfg.SVM.WindowCellsX || by < cfg.SVM.WindowCellsY {
			break
		}
		cc := cfg.SVM.FrameCycles(bx, by)
		sr := ScaleReport{
			Scale:            math.Pow(cfg.ScaleStep, float64(s)),
			BlocksX:          bx,
			BlocksY:          by,
			Windows:          (bx - cfg.SVM.WindowCellsX + 1) * (by - cfg.SVM.WindowCellsY + 1),
			ClassifierCycles: cc,
		}
		if s > 0 {
			sr.ScalerCycles = int64(bx) * int64(by)
		}
		rep.Scales = append(rep.Scales, sr)
		bx = int(math.Round(float64(bx) / cfg.ScaleStep))
		by = int(math.Round(float64(by) / cfg.ScaleStep))
	}
	classes := int64(cfg.NumClasses)
	if classes < 1 {
		classes = 1
	}
	for _, sr := range rep.Scales {
		rep.ClassifierSum += sr.ClassifierCycles * classes
		if sr.ClassifierCycles > rep.ClassifierMax {
			// Parallel instances: extra classes add hardware, not cycles.
			rep.ClassifierMax = sr.ClassifierCycles
		}
	}
	rep.FrameCycles = cfg.pipelineBound(rep.ExtractorCycles, rep.ClassifierSum, rep.ClassifierMax)
	rep.Throughput = hwsim.Throughput{CyclesPerFrame: rep.FrameCycles, ClockHz: cfg.ClockHz}
	return rep, nil
}

// Resources returns the resource-model breakdown of this configuration for
// a frame of the given width.
func (a *Accel) Resources(frameW int) (*resource.Breakdown, error) {
	p := resource.PaperParams()
	p.CellsX = frameW / a.cfg.HOG.CellSize
	p.Scales = a.cfg.NumScales
	p.Classes = a.cfg.NumClasses
	p.MACBARs = a.cfg.SVM.NumMACBARs()
	p.MACsPerBar = a.cfg.SVM.MACsPerBar()
	p.BlockLen = a.cfg.SVM.BlockLen
	p.FeatureBits = 1 + a.cfg.HOG.FeatFrac
	p.ScaleStep = a.cfg.ScaleStep
	return resource.Estimate(p)
}
