package accel

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/hw/hwsim"
	"repro/internal/imgproc"
)

// Sequence processing: the DAS workload is a video stream, not stills. The
// accelerator pipelines across frames — while frame n classifies, frame
// n+1 streams through the extractor — so the sustained frame interval is
// the slowest stage (the extractor), plus a one-frame fill at stream start.

// SequenceReport aggregates a clip's cycle accounting.
type SequenceReport struct {
	Frames int
	// PerFrame holds each frame's report.
	PerFrame []*FrameReport
	// TotalCycles covers the whole clip including the initial pipeline
	// fill: fill + sum of per-frame steady-state intervals.
	TotalCycles int64
	// Sustained is the steady-state throughput once the pipeline is full.
	Sustained hwsim.Throughput
	// Detections per frame.
	Detections [][]eval.Detection
}

// ProcessSequence runs the cycle-level accelerator over a clip and reports
// the sustained throughput. Frames must share one geometry.
func (a *Accel) ProcessSequence(frames []*imgproc.Gray) (*SequenceReport, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("accel: empty sequence")
	}
	w, h := frames[0].W, frames[0].H
	rep := &SequenceReport{Frames: len(frames)}
	var steadySum int64
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("accel: frame %d is %dx%d, first frame %dx%d",
				i, f.W, f.H, w, h)
		}
		dets, fr, err := a.ProcessFrame(f)
		if err != nil {
			return nil, fmt.Errorf("accel: frame %d: %w", i, err)
		}
		rep.PerFrame = append(rep.PerFrame, fr)
		rep.Detections = append(rep.Detections, dets)
		steadySum += fr.FrameCycles
	}
	// Pipeline fill: the first frame's classifier tail extends past its
	// extraction; afterwards every frame costs one steady-state interval.
	first := rep.PerFrame[0]
	fill := first.ClassifierMax
	if a.cfg.SequentialClassifiers {
		fill = first.ClassifierSum
	}
	rep.TotalCycles = steadySum + fill
	rep.Sustained = hwsim.Throughput{
		CyclesPerFrame: steadySum / int64(len(frames)),
		ClockHz:        a.cfg.ClockHz,
	}
	return rep, nil
}

// SustainedFPSAnalytic returns the steady-state frame rate for a frame
// geometry without simulating pixels (the closed form used for the 60 fps
// HDTV claim over continuous video).
func SustainedFPSAnalytic(cfg Config, frameW, frameH int) (float64, error) {
	rep, err := AnalyticReport(cfg, frameW, frameH)
	if err != nil {
		return 0, err
	}
	return rep.Throughput.FPS(), nil
}
