// Package nhogmem models the banked normalized-HOG feature memory of the
// accelerator (NHOGMem). Hemmati et al. [DSD'14] store normalized block
// features in 16 memory banks, with cells divided into four parity groups
// (LU, RU, LB, RB); this paper reuses the structure but shrinks the buffer
// from 135 cell rows to an 18-row ring, just deep enough to cover the
// 16-cell-row detection window plus write-ahead slack (Section 5).
//
// The bank mapping implemented here — bank = group*4 + (cy/2) mod 4 with
// group = (cx mod 2) + 2*(cy mod 2) — is a concrete instantiation
// consistent with the published description, and it reproduces the paper's
// headline schedule: the features of two adjacent block columns (32 blocks,
// 1152 words) are read conflict-free in exactly 72 cycles by circling
// through the four groups, saturating all 16 banks at one word per cycle.
package nhogmem

import (
	"fmt"
)

// Group identifies the four cell parity groups of [DSD'14].
type Group int

// The four parity groups: left/right x upper/bottom.
const (
	LU Group = iota // even cx, even cy
	RU              // odd cx, even cy
	LB              // even cx, odd cy
	RB              // odd cx, odd cy
)

// String implements fmt.Stringer.
func (g Group) String() string {
	switch g {
	case LU:
		return "LU"
	case RU:
		return "RU"
	case LB:
		return "LB"
	case RB:
		return "RB"
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// GroupOf returns the parity group of cell (cx, cy).
func GroupOf(cx, cy int) Group {
	return Group((cx & 1) | ((cy & 1) << 1))
}

// NumBanks is the number of physical memory banks (16, per the paper).
const NumBanks = 16

// BankOf returns the bank holding the block vector of cell (cx, cy): four
// banks per parity group, striped by (cy/2) mod 4.
func BankOf(cx, cy int) int {
	return int(GroupOf(cx, cy))*4 + ((cy >> 1) & 3)
}

// Config sizes the memory.
type Config struct {
	CellsX   int // cells per frame row
	Rows     int // cell rows buffered (18 in this paper, 135 in [DSD'14])
	BlockLen int // words per block vector (36)
	WordBits int // bits per feature word (16)
}

// DefaultConfig returns the paper's 18-row HDTV configuration.
func DefaultConfig() Config {
	return Config{CellsX: 240, Rows: 18, BlockLen: 36, WordBits: 16}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CellsX < 2 || c.Rows < 2 || c.BlockLen < 1 || c.WordBits < 1 {
		return fmt.Errorf("nhogmem: invalid config %+v", c)
	}
	return nil
}

// BitsPerBank returns the storage capacity one bank must provide.
func (c Config) BitsPerBank() int {
	words := (c.CellsX*c.Rows + NumBanks - 1) / NumBanks * c.BlockLen
	return words * c.WordBits
}

// TotalBits returns the whole memory's capacity in bits.
func (c Config) TotalBits() int { return c.BitsPerBank() * NumBanks }

// Mem is the behavioural model: a ring buffer of cell rows, each cell
// holding one BlockLen-word vector, with bank-accurate address mapping and
// per-cycle port-conflict accounting.
type Mem struct {
	cfg Config
	// rows[r mod Rows] holds cell row r while resident.
	data    [][]int64 // [Rows][CellsX*BlockLen]
	rowTag  []int     // which absolute row currently occupies each slot (-1 empty)
	headRow int       // next absolute row to be written

	// Stats.
	Writes, Reads int64
	Evictions     int64
}

// New allocates the memory model.
func New(cfg Config) (*Mem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mem{cfg: cfg}
	m.data = make([][]int64, cfg.Rows)
	m.rowTag = make([]int, cfg.Rows)
	for i := range m.data {
		m.data[i] = make([]int64, cfg.CellsX*cfg.BlockLen)
		m.rowTag[i] = -1
	}
	return m, nil
}

// Config returns the memory geometry.
func (m *Mem) Config() Config { return m.cfg }

// WriteRow stores a full cell row of block vectors (the unit the normalizer
// emits), evicting the oldest resident row if the ring is full. Rows must
// arrive in order.
func (m *Mem) WriteRow(cy int, blocks [][]int64) error {
	if cy != m.headRow {
		return fmt.Errorf("nhogmem: row %d written out of order (want %d)", cy, m.headRow)
	}
	if len(blocks) != m.cfg.CellsX {
		return fmt.Errorf("nhogmem: row has %d cells, want %d", len(blocks), m.cfg.CellsX)
	}
	slot := cy % m.cfg.Rows
	if m.rowTag[slot] >= 0 {
		m.Evictions++
	}
	for cx, b := range blocks {
		if len(b) != m.cfg.BlockLen {
			return fmt.Errorf("nhogmem: cell %d has %d words, want %d", cx, len(b), m.cfg.BlockLen)
		}
		copy(m.data[slot][cx*m.cfg.BlockLen:(cx+1)*m.cfg.BlockLen], b)
	}
	m.rowTag[slot] = cy
	m.headRow++
	m.Writes += int64(m.cfg.CellsX * m.cfg.BlockLen)
	return nil
}

// Resident reports whether cell row cy is currently buffered.
func (m *Mem) Resident(cy int) bool {
	if cy < 0 {
		return false
	}
	return m.rowTag[cy%m.cfg.Rows] == cy
}

// Read fetches word elem of the block vector of cell (cx, cy). It fails if
// the row has been evicted (read too late) or not yet written (read too
// early) — the timing errors the 18-row sizing must avoid.
func (m *Mem) Read(cx, cy, elem int) (int64, error) {
	if cx < 0 || cx >= m.cfg.CellsX {
		return 0, fmt.Errorf("nhogmem: cx %d out of range", cx)
	}
	if elem < 0 || elem >= m.cfg.BlockLen {
		return 0, fmt.Errorf("nhogmem: element %d out of range", elem)
	}
	if !m.Resident(cy) {
		return 0, fmt.Errorf("nhogmem: cell row %d not resident (head %d, depth %d)",
			cy, m.headRow, m.cfg.Rows)
	}
	m.Reads++
	return m.data[cy%m.cfg.Rows][cx*m.cfg.BlockLen+elem], nil
}

// Access describes one bank read in a schedule.
type Access struct {
	Cycle int // cycle offset within the schedule
	Bank  int
	Cx    int // cell x of the block
	Cy    int // cell y of the block
	Elem  int // word index within the block vector
}

// PairSchedule builds the conflict-free 72-cycle read schedule for the two
// adjacent block columns (cx0, cx0+1) of a window whose top cell row is
// cyTop and whose height is windowCells rows (16). Each of the 32 blocks
// belongs to exactly one bank; every bank serves exactly two blocks,
// streaming one word per cycle for 36 cycles each.
func PairSchedule(cx0, cyTop, windowCells, blockLen int) ([]Access, error) {
	if windowCells%2 != 0 {
		return nil, fmt.Errorf("nhogmem: window height %d cells must be even", windowCells)
	}
	type blockRef struct{ cx, cy int }
	perBank := make(map[int][]blockRef)
	for dx := 0; dx < 2; dx++ {
		for dy := 0; dy < windowCells; dy++ {
			cx, cy := cx0+dx, cyTop+dy
			b := BankOf(cx, cy)
			perBank[b] = append(perBank[b], blockRef{cx, cy})
		}
	}
	// Feasibility: the mapping must give every bank the same load.
	want := 2 * windowCells / NumBanks
	for b := 0; b < NumBanks; b++ {
		if len(perBank[b]) != want {
			return nil, fmt.Errorf("nhogmem: bank %d serves %d blocks, want %d (mapping imbalance)",
				b, len(perBank[b]), want)
		}
	}
	var sched []Access
	for b := 0; b < NumBanks; b++ {
		for slot, ref := range perBank[b] {
			for e := 0; e < blockLen; e++ {
				sched = append(sched, Access{
					Cycle: slot*blockLen + e,
					Bank:  b,
					Cx:    ref.cx,
					Cy:    ref.cy,
					Elem:  e,
				})
			}
		}
	}
	return sched, nil
}

// CheckConflictFree verifies that no bank is read twice in the same cycle.
func CheckConflictFree(sched []Access) error {
	seen := make(map[[2]int]bool, len(sched))
	for _, a := range sched {
		key := [2]int{a.Cycle, a.Bank}
		if seen[key] {
			return fmt.Errorf("nhogmem: bank %d read twice in cycle %d", a.Bank, a.Cycle)
		}
		seen[key] = true
	}
	return nil
}

// ScheduleCycles returns the makespan of a schedule (last cycle + 1).
func ScheduleCycles(sched []Access) int {
	max := -1
	for _, a := range sched {
		if a.Cycle > max {
			max = a.Cycle
		}
	}
	return max + 1
}

// ExecuteSchedule runs a schedule against the memory, returning the words
// grouped by block (keyed "cx,cy") in element order. It fails on any
// non-resident access, making eviction bugs loud.
func (m *Mem) ExecuteSchedule(sched []Access) (map[[2]int][]int64, error) {
	out := make(map[[2]int][]int64)
	for _, a := range sched {
		v, err := m.Read(a.Cx, a.Cy, a.Elem)
		if err != nil {
			return nil, err
		}
		key := [2]int{a.Cx, a.Cy}
		if out[key] == nil {
			out[key] = make([]int64, m.cfg.BlockLen)
		}
		out[key][a.Elem] = v
	}
	return out, nil
}
