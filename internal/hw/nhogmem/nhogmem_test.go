package nhogmem

import (
	"testing"
	"testing/quick"
)

func TestGroupOf(t *testing.T) {
	cases := []struct {
		cx, cy int
		want   Group
	}{
		{0, 0, LU}, {1, 0, RU}, {0, 1, LB}, {1, 1, RB},
		{2, 2, LU}, {3, 5, RB},
	}
	for _, c := range cases {
		if got := GroupOf(c.cx, c.cy); got != c.want {
			t.Errorf("GroupOf(%d,%d) = %v, want %v", c.cx, c.cy, got, c.want)
		}
	}
	for _, g := range []Group{LU, RU, LB, RB, Group(9)} {
		if g.String() == "" {
			t.Error("empty group name")
		}
	}
}

func TestBankOfRange(t *testing.T) {
	seen := make(map[int]bool)
	for cy := 0; cy < 8; cy++ {
		for cx := 0; cx < 2; cx++ {
			b := BankOf(cx, cy)
			if b < 0 || b >= NumBanks {
				t.Fatalf("bank %d out of range", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 16 {
		t.Errorf("a 2x8 cell tile hits %d banks, want all 16", len(seen))
	}
}

// Property: any two adjacent columns over any 16 consecutive cell rows give
// every bank exactly two blocks — the invariant behind the 72-cycle pair
// schedule.
func TestBankBalanceProperty(t *testing.T) {
	f := func(cx0u, cyu uint8) bool {
		cx0, cy := int(cx0u), int(cyu)
		count := make(map[int]int)
		for dx := 0; dx < 2; dx++ {
			for dy := 0; dy < 16; dy++ {
				count[BankOf(cx0+dx, cy+dy)]++
			}
		}
		if len(count) != NumBanks {
			return false
		}
		for _, c := range count {
			if c != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestConfigBits(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// 240 cells x 18 rows / 16 banks = 270 blocks/bank x 36 words x 16 bits.
	if got, want := cfg.BitsPerBank(), 270*36*16; got != want {
		t.Errorf("BitsPerBank = %d, want %d", got, want)
	}
	if cfg.TotalBits() != cfg.BitsPerBank()*16 {
		t.Error("TotalBits inconsistent")
	}
	bad := cfg
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rows should fail validation")
	}
}

// Test18RowsVsDSD14: the paper's memory reduction claim. 18 rows cost
// ~7.5x less than the 135 rows of [DSD'14].
func Test18RowsVsDSD14(t *testing.T) {
	this := DefaultConfig()
	old := DefaultConfig()
	old.Rows = 135
	ratio := float64(old.TotalBits()) / float64(this.TotalBits())
	if ratio < 7 || ratio > 8 {
		t.Errorf("135/18 row memory ratio = %.2f, want 7.5", ratio)
	}
}

func mkRow(cfg Config, cy int) [][]int64 {
	row := make([][]int64, cfg.CellsX)
	for cx := range row {
		b := make([]int64, cfg.BlockLen)
		for e := range b {
			b[e] = int64(cy*1000000 + cx*100 + e)
		}
		row[cx] = b
	}
	return row
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := Config{CellsX: 8, Rows: 4, BlockLen: 36, WordBits: 16}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cy := 0; cy < 3; cy++ {
		if err := m.WriteRow(cy, mkRow(cfg, cy)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.Read(5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2000507 {
		t.Errorf("read %d, want 2000507", v)
	}
}

func TestWriteRowErrors(t *testing.T) {
	cfg := Config{CellsX: 4, Rows: 4, BlockLen: 4, WordBits: 16}
	m, _ := New(cfg)
	if err := m.WriteRow(1, mkRow(cfg, 1)); err == nil {
		t.Error("out-of-order write should fail")
	}
	if err := m.WriteRow(0, mkRow(cfg, 0)[:2]); err == nil {
		t.Error("short row should fail")
	}
	bad := mkRow(cfg, 0)
	bad[0] = bad[0][:1]
	if err := m.WriteRow(0, bad); err == nil {
		t.Error("short block should fail")
	}
}

func TestRingEviction(t *testing.T) {
	cfg := Config{CellsX: 4, Rows: 3, BlockLen: 4, WordBits: 16}
	m, _ := New(cfg)
	for cy := 0; cy < 5; cy++ {
		if err := m.WriteRow(cy, mkRow(cfg, cy)); err != nil {
			t.Fatal(err)
		}
	}
	// Rows 0 and 1 are evicted; 2..4 resident.
	if m.Resident(0) || m.Resident(1) {
		t.Error("old rows should be evicted")
	}
	for cy := 2; cy <= 4; cy++ {
		if !m.Resident(cy) {
			t.Errorf("row %d should be resident", cy)
		}
	}
	if _, err := m.Read(0, 0, 0); err == nil {
		t.Error("reading an evicted row should fail")
	}
	if m.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", m.Evictions)
	}
}

func TestReadBoundsErrors(t *testing.T) {
	cfg := Config{CellsX: 4, Rows: 3, BlockLen: 4, WordBits: 16}
	m, _ := New(cfg)
	m.WriteRow(0, mkRow(cfg, 0))
	if _, err := m.Read(-1, 0, 0); err == nil {
		t.Error("negative cx should fail")
	}
	if _, err := m.Read(0, 0, 99); err == nil {
		t.Error("element out of range should fail")
	}
	if _, err := m.Read(0, 7, 0); err == nil {
		t.Error("not-yet-written row should fail")
	}
}

// TestPairSchedule72Cycles is experiment E8: the features of two adjacent
// block columns are read in exactly 72 conflict-free cycles.
func TestPairSchedule72Cycles(t *testing.T) {
	sched, err := PairSchedule(3, 1, 16, 36)
	if err != nil {
		t.Fatal(err)
	}
	if got := ScheduleCycles(sched); got != 72 {
		t.Errorf("pair schedule takes %d cycles, want 72 (paper Section 5)", got)
	}
	if err := CheckConflictFree(sched); err != nil {
		t.Error(err)
	}
	// 32 blocks x 36 words.
	if len(sched) != 1152 {
		t.Errorf("schedule has %d accesses, want 1152", len(sched))
	}
}

// Property: the pair schedule is conflict-free for every window position.
func TestPairScheduleConflictFreeProperty(t *testing.T) {
	f := func(cxu, cyu uint8) bool {
		sched, err := PairSchedule(int(cxu), int(cyu), 16, 36)
		if err != nil {
			return false
		}
		return CheckConflictFree(sched) == nil && ScheduleCycles(sched) == 72
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairScheduleOddWindowRejected(t *testing.T) {
	if _, err := PairSchedule(0, 0, 15, 36); err == nil {
		t.Error("odd window height should be rejected")
	}
}

func TestExecuteScheduleMatchesContents(t *testing.T) {
	cfg := Config{CellsX: 8, Rows: 18, BlockLen: 36, WordBits: 16}
	m, _ := New(cfg)
	for cy := 0; cy < 17; cy++ {
		if err := m.WriteRow(cy, mkRow(cfg, cy)); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := PairSchedule(2, 0, 16, 36)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := m.ExecuteSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 32 {
		t.Fatalf("fetched %d blocks, want 32", len(blocks))
	}
	for key, vec := range blocks {
		cx, cy := key[0], key[1]
		for e, v := range vec {
			want := int64(cy*1000000 + cx*100 + e)
			if v != want {
				t.Fatalf("block (%d,%d) elem %d = %d, want %d", cx, cy, e, v, want)
			}
		}
	}
}

// Test18RowsSufficientForWindow: the paper's core memory claim — an 18-row
// ring supports reading a full 16-row window while 2 rows of write-ahead
// continue.
func Test18RowsSufficientForWindow(t *testing.T) {
	cfg := Config{CellsX: 8, Rows: 18, BlockLen: 36, WordBits: 16}
	m, _ := New(cfg)
	// Fill 18 rows (0..17).
	for cy := 0; cy < 18; cy++ {
		if err := m.WriteRow(cy, mkRow(cfg, cy)); err != nil {
			t.Fatal(err)
		}
	}
	// A window over rows 2..17 must be fully readable...
	sched, err := PairSchedule(0, 2, 16, 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteSchedule(sched); err != nil {
		t.Fatalf("window over last 16 rows failed: %v", err)
	}
	// ...and writing 2 more rows evicts rows 0-1 but keeps 4..19 readable.
	for cy := 18; cy < 20; cy++ {
		if err := m.WriteRow(cy, mkRow(cfg, cy)); err != nil {
			t.Fatal(err)
		}
	}
	sched, err = PairSchedule(0, 4, 16, 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExecuteSchedule(sched); err != nil {
		t.Fatalf("window after write-ahead failed: %v", err)
	}
	// A 16-row ring would NOT support the same pattern.
	small := Config{CellsX: 8, Rows: 16, BlockLen: 36, WordBits: 16}
	ms, _ := New(small)
	for cy := 0; cy < 18; cy++ {
		if err := ms.WriteRow(cy, mkRow(small, cy)); err != nil {
			t.Fatal(err)
		}
	}
	sched, _ = PairSchedule(0, 1, 16, 36)
	if _, err := ms.ExecuteSchedule(sched); err == nil {
		t.Error("16-row ring should fail the overlapped read pattern")
	}
}
