package core

import (
	"fmt"
	"math"

	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/imgproc"
)

// ScoreMap is the dense grid of SVM decision values of one pyramid level:
// entry (x, y) is the score of the window anchored at block (x, y). It is
// the intermediate the sliding-window detector thresholds, exposed for
// heat-map inspection and custom post-processing.
type ScoreMap struct {
	Scale  float64 // level scale relative to the frame
	W, H   int     // anchor grid dimensions
	Scores []float64
}

// At returns the score of anchor (x, y).
func (sm *ScoreMap) At(x, y int) float64 { return sm.Scores[y*sm.W+x] }

// Max returns the peak score and its anchor.
func (sm *ScoreMap) Max() (x, y int, score float64) {
	score = math.Inf(-1)
	for i, v := range sm.Scores {
		if v > score {
			score = v
			x, y = i%sm.W, i/sm.W
		}
	}
	return x, y, score
}

// ToImage renders the map as an 8-bit heat image, linearly mapping
// [min, max] to [0, 255]. A constant map renders mid-grey.
func (sm *ScoreMap) ToImage() *imgproc.Gray {
	img := imgproc.NewGray(sm.W, sm.H)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range sm.Scores {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		for i := range img.Pix {
			img.Pix[i] = 128
		}
		return img
	}
	for i, v := range sm.Scores {
		img.Pix[i] = uint8(255 * (v - lo) / (hi - lo))
	}
	return img
}

// ScoreMaps computes the dense decision values of every feature-pyramid
// level for the frame (no thresholding, no NMS). Levels follow the
// detector's configuration (ScaleStep, MaxScales).
func (d *Detector) ScoreMaps(frame *imgproc.Gray) ([]*ScoreMap, error) {
	base, err := hog.Compute(frame, d.cfg.HOG)
	if err != nil {
		return nil, err
	}
	wbx, wby := d.cfg.windowBlocks()
	p, err := featpyr.Build(base, d.cfg.ScaleStep, wbx, wby, d.maxLevels(), d.cfg.Scale)
	if err != nil {
		return nil, err
	}
	var out []*ScoreMap
	for _, level := range p.Levels {
		fm := level.Map
		nx := fm.BlocksX - wbx + 1
		ny := fm.BlocksY - wby + 1
		if nx < 1 || ny < 1 {
			continue
		}
		sm := &ScoreMap{
			Scale:  float64(base.BlocksX) / float64(fm.BlocksX),
			W:      nx,
			H:      ny,
			Scores: make([]float64, nx*ny),
		}
		buf := make([]float64, wbx*wby*fm.BlockLen)
		for by := 0; by < ny; by++ {
			for bx := 0; bx < nx; bx++ {
				if !fm.WindowInto(buf, bx, by, wbx, wby) {
					return nil, fmt.Errorf("core: window (%d,%d) extraction failed", bx, by)
				}
				sm.Scores[by*nx+bx] = d.model.Score(buf)
			}
		}
		out = append(out, sm)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
	}
	return out, nil
}
