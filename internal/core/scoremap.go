package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/imgproc"
)

// ScoreMap is the dense grid of SVM decision values of one pyramid level:
// entry (x, y) is the score of the window anchored at block (x, y). It is
// the intermediate the sliding-window detector thresholds, exposed for
// heat-map inspection and custom post-processing.
type ScoreMap struct {
	// Scale and ScaleY map level pixel coordinates back to the frame
	// horizontally and vertically; they differ in general because level
	// grids are rounded to integers independently per axis.
	Scale  float64
	ScaleY float64
	W, H   int // anchor grid dimensions
	Scores []float64
}

// At returns the score of anchor (x, y).
func (sm *ScoreMap) At(x, y int) float64 { return sm.Scores[y*sm.W+x] }

// Max returns the peak score and its anchor.
func (sm *ScoreMap) Max() (x, y int, score float64) {
	score = math.Inf(-1)
	for i, v := range sm.Scores {
		if v > score {
			score = v
			x, y = i%sm.W, i/sm.W
		}
	}
	return x, y, score
}

// ToImage renders the map as an 8-bit heat image, linearly mapping
// [min, max] to [0, 255]. A constant map renders mid-grey.
func (sm *ScoreMap) ToImage() *imgproc.Gray {
	img := imgproc.NewGray(sm.W, sm.H)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range sm.Scores {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		for i := range img.Pix {
			img.Pix[i] = 128
		}
		return img
	}
	for i, v := range sm.Scores {
		img.Pix[i] = uint8(255 * (v - lo) / (hi - lo))
	}
	return img
}

// ScoreMaps computes the dense decision values of every pyramid level for
// the frame (no thresholding, no NMS). Levels come from the same builder as
// DetectRaw, so the maps correspond exactly to the windows the configured
// Mode scans — image-pyramid, feature-pyramid, chained and fixed detectors
// all get heat maps of their own pyramid. Scoring is zero-copy and sharded
// across window rows over the configured worker pool. An active
// Config.Regions set restricts scoring to the region anchor spans exactly
// like DetectRaw; anchors outside the regions read as -Inf.
func (d *Detector) ScoreMaps(frame *imgproc.Gray) ([]*ScoreMap, error) {
	return d.ScoreMapsCtx(context.Background(), frame)
}

// ScoreMapsCtx is ScoreMaps with cooperative cancellation (see DetectCtx).
func (d *Detector) ScoreMapsCtx(ctx context.Context, frame *imgproc.Gray) ([]*ScoreMap, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	levels, release, err := d.buildLevels(ctx, frame)
	if err != nil {
		return nil, err
	}
	defer release()
	d.applyRegions(levels)
	wbx, wby := d.cfg.windowBlocks()
	rows := d.scanRows(levels)
	maps := make([]*ScoreMap, len(levels))
	for i, l := range levels {
		if rows[i] < 1 {
			continue
		}
		nx := l.fm.BlocksX - wbx + 1
		maps[i] = &ScoreMap{
			Scale:  l.sx,
			ScaleY: l.sy,
			W:      nx,
			H:      rows[i],
			Scores: make([]float64, nx*rows[i]),
		}
		// An active region set restricts scoring exactly like DetectRaw:
		// anchors outside the spans are never evaluated and read as -Inf,
		// so thresholding a restricted map selects exactly the restricted
		// detections.
		if l.spans != nil {
			for j := range maps[i].Scores {
				maps[i].Scores[j] = math.Inf(-1)
			}
		}
	}
	// With a cascade enabled the maps stay thresholding-equivalent rather
	// than value-identical: a pruned anchor records the cascade's upper
	// bound on its score (+ bias), which is <= Threshold by construction of
	// the rejection test, so thresholding a cascade score map selects the
	// same anchors as thresholding a dense one; heat maps just flatten in
	// the pruned (deeply negative) regions. Accepted anchors record their
	// exact, bit-identical score.
	w := d.model.W
	thr := d.cfg.Threshold - d.model.B
	err = runShards(ctx, shardLevels(rows, d.cfg.workers()), d.cfg.workers(), func(_ int, s rowShard) error {
		l := levels[s.level]
		fm := l.fm
		sm := maps[s.level]
		fullSpan := [1]anchorSpan{{bx0: 0, bx1: sm.W, by0: 0, by1: sm.H}}
		spans := l.spans
		if spans == nil {
			spans = fullSpan[:]
		} else if len(spans) == 0 {
			return nil // active region set touches no anchor of this level
		}
		plan := d.plan
		if plan != nil && d.cfg.Cascade == CascadeExact && l.normCap <= 0 {
			plan = nil
		}
		if plan == nil {
			for by := s.row0; by < s.row1; by++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				for si := range spans {
					sp := spans[si]
					if by < sp.by0 || by >= sp.by1 {
						continue
					}
					for bx := sp.bx0; bx < sp.bx1; bx++ {
						score, _ := fm.ScoreWindow(w, bx, by, wbx, wby)
						sm.Scores[by*sm.W+bx] = score + d.model.B
					}
				}
			}
			return nil
		}
		var rowBuf [64]float64
		rowDots := rowBuf[:]
		if wby > len(rowBuf) {
			rowDots = make([]float64, wby)
		}
		var tally cascadeTally
		for by := s.row0; by < s.row1; by++ {
			if err := ctx.Err(); err != nil {
				tally.fold(d.cfg.Metrics.Metrics(), wbx)
				return err
			}
			for si := range spans {
				sp := spans[si]
				if by < sp.by0 || by >= sp.by1 {
					continue
				}
				for bx := sp.bx0; bx < sp.bx1; bx++ {
					score, rowsEval, accepted, ok := fm.ScoreWindowStaged(w, bx, by, wbx, wby, plan, thr, l.normCap, rowDots)
					if !ok {
						continue
					}
					tally.windows++
					tally.rows += uint64(rowsEval)
					if accepted {
						tally.accepted++
					} else {
						tally.reject(rowsEval)
					}
					sm.Scores[by*sm.W+bx] = score + d.model.B
				}
			}
		}
		tally.fold(d.cfg.Metrics.Metrics(), wbx)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := maps[:0]
	for _, sm := range maps {
		if sm != nil {
			out = append(out, sm)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: frame %dx%d smaller than detection window", frame.W, frame.H)
	}
	return out, nil
}
