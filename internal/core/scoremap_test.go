package core

import (
	"math"
	"testing"

	"repro/internal/imgproc"
)

func TestScoreMapsPeakAtPedestrian(t *testing.T) {
	det, g := testDetector(t)
	frame, truth := sceneWithPedestrian(g, 256, 256, 128)
	maps, err := det.ScoreMaps(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) == 0 {
		t.Fatal("no score maps")
	}
	// The native level's peak must sit at the pedestrian's anchor cell.
	sm := maps[0]
	if sm.Scale != 1 {
		t.Fatalf("first level scale %v", sm.Scale)
	}
	x, y, score := sm.Max()
	cell := det.Config().HOG.CellSize
	wantX, wantY := truth.Min.X/cell, truth.Min.Y/cell
	if abs(x-wantX) > 1 || abs(y-wantY) > 1 {
		t.Errorf("peak at (%d,%d), want near (%d,%d)", x, y, wantX, wantY)
	}
	if score <= 0 {
		t.Errorf("peak score %.3f should be positive", score)
	}
	// Levels shrink with scale.
	for i := 1; i < len(maps); i++ {
		if maps[i].W >= maps[i-1].W && maps[i].H >= maps[i-1].H {
			t.Fatal("levels must shrink")
		}
	}
}

func TestScoreMapToImage(t *testing.T) {
	sm := &ScoreMap{W: 2, H: 2, Scores: []float64{-1, 0, 0, 1}}
	img := sm.ToImage()
	if img.At(0, 0) != 0 || img.At(1, 1) != 255 {
		t.Errorf("heat extremes = %d, %d", img.At(0, 0), img.At(1, 1))
	}
	// Constant maps render grey, not NaN garbage.
	flat := &ScoreMap{W: 2, H: 1, Scores: []float64{3, 3}}
	fi := flat.ToImage()
	if fi.At(0, 0) != 128 {
		t.Errorf("flat map pixel %d, want 128", fi.At(0, 0))
	}
}

func TestScoreMapsTinyFrameErrors(t *testing.T) {
	det, _ := testDetector(t)
	if _, err := det.ScoreMaps(imgproc.NewGray(16, 16)); err == nil {
		t.Error("tiny frame should error")
	}
}

func TestScoreMapMaxAgainstBruteForce(t *testing.T) {
	sm := &ScoreMap{W: 3, H: 2, Scores: []float64{0.1, -2, 3.5, 0, 3.5, 1}}
	x, y, s := sm.Max()
	if s != 3.5 {
		t.Errorf("max score %v", s)
	}
	// First occurrence in scan order wins.
	if x != 2 || y != 0 {
		t.Errorf("max at (%d,%d), want (2,0)", x, y)
	}
	if math.IsInf(s, -1) {
		t.Error("empty-like max")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
