package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/imgproc"
	"repro/internal/svm"
)

// vehicleConfig returns the 64x64 vehicle detector configuration.
func vehicleConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowW = dataset.VehicleWindowW
	cfg.WindowH = dataset.VehicleWindowH
	return cfg
}

var (
	vehOnce sync.Once
	vehDet  *Detector
	vehErr  error
)

// vehicleDetector trains the shared vehicle model from its own fresh
// generator (not the shared one): the shared generator's RNG position
// depends on which tests ran before, and with -shuffle=on that would make
// the training set — and the model — vary with test order.
func vehicleDetector(t *testing.T) *Detector {
	t.Helper()
	vehOnce.Do(func() {
		g := dataset.New(2002)
		set, err := g.RenderVehicleAt(g.NewVehicleSpecSet(120, 360), 1.0)
		if err != nil {
			vehErr = err
			return
		}
		vehDet, vehErr = Train(set, vehicleConfig(), DefaultTrainOptions())
	})
	if vehErr != nil {
		t.Fatal(vehErr)
	}
	return vehDet
}

func TestVehicleClassSeparable(t *testing.T) {
	det := vehicleDetector(t)
	g := dataset.New(2003)
	test, err := g.RenderVehicleAt(g.NewVehicleSpecSet(40, 120), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ExtractDescriptors(test, vehicleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(det.Model(), x, test.Labels); acc < 0.85 {
		t.Errorf("vehicle test accuracy %.3f < 0.85", acc)
	}
}

func TestVehicleDescriptorLength(t *testing.T) {
	// 64x64 window -> 8x8 cells -> 8x8 per-cell blocks x 36 = 2304.
	if got := vehicleConfig().DescriptorLen(); got != 2304 {
		t.Errorf("vehicle descriptor = %d, want 2304", got)
	}
}

func TestNewMultiDetectorValidation(t *testing.T) {
	det, _ := testDetector(t)
	veh := vehicleDetector(t)
	if _, err := NewMultiDetector(); err == nil {
		t.Error("empty class list should error")
	}
	if _, err := NewMultiDetector(Class{Name: "", Detector: det}); err == nil {
		t.Error("empty class name should error")
	}
	if _, err := NewMultiDetector(Class{Name: "p", Detector: nil}); err == nil {
		t.Error("nil detector should error")
	}
	if _, err := NewMultiDetector(
		Class{Name: "p", Detector: det}, Class{Name: "p", Detector: veh}); err == nil {
		t.Error("duplicate class should error")
	}
	m, err := NewMultiDetector(
		Class{Name: "pedestrian", Detector: det},
		Class{Name: "vehicle", Detector: veh})
	if err != nil {
		t.Fatal(err)
	}
	names := m.Classes()
	if len(names) != 2 || names[0] != "pedestrian" || names[1] != "vehicle" {
		t.Errorf("classes = %v", names)
	}
}

// TestMultiDetectorFindsBothClasses: one frame with a pedestrian and a
// car; the multi-detector must tag each with the right class.
func TestMultiDetectorFindsBothClasses(t *testing.T) {
	det, _ := testDetector(t)
	veh := vehicleDetector(t)
	m, err := NewMultiDetector(
		Class{Name: "pedestrian", Detector: det},
		Class{Name: "vehicle", Detector: veh})
	if err != nil {
		t.Fatal(err)
	}

	// Render the scene from a fresh generator so the frame is identical
	// regardless of test order (see vehicleDetector).
	g := dataset.New(2004)
	frame := g.Render(g.NewSpec(false), 320, 256)
	pw := g.Render(g.NewSpec(true), 64, 128)
	imgproc.Paste(frame, pw, 32, 64, -1)
	pedBox := geom.XYWH(32, 64, 64, 128)

	vspec := g.NewSpec(false)
	vspec.Hard = nil
	vv := dataset.RandomVehicle(rand.New(rand.NewSource(5)))
	vspec.VehicleSpec = &vv
	vwin := g.Render(vspec, 64, 64)
	imgproc.Paste(frame, vwin, 200, 128, -1)
	vehBox := geom.XYWH(200, 128, 64, 64)

	dets, err := m.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	foundPed, foundVeh := false, false
	for _, d := range dets {
		switch d.Class {
		case "pedestrian":
			if geom.IoU(d.Box, pedBox) >= 0.4 {
				foundPed = true
			}
		case "vehicle":
			if geom.IoU(d.Box, vehBox) >= 0.4 {
				foundVeh = true
			}
		}
	}
	if !foundPed {
		t.Error("pedestrian not found by its class")
	}
	if !foundVeh {
		t.Error("vehicle not found by its class")
	}
	// Merged results are sorted by score.
	for i := 1; i < len(dets); i++ {
		if dets[i].Score > dets[i-1].Score {
			t.Fatal("merged detections not sorted")
		}
	}
}

// TestMultiDetectorReportsEveryFailure: when several class detectors fail on
// the same frame, the joined error names each failed class — one poison
// model must not mask another's diagnosis.
func TestMultiDetectorReportsEveryFailure(t *testing.T) {
	ped := DefaultConfig()
	pedDet, err := NewDetector(&svm.Model{W: make([]float64, ped.DescriptorLen())}, ped)
	if err != nil {
		t.Fatal(err)
	}
	veh := vehicleConfig()
	vehDet, err := NewDetector(&svm.Model{W: make([]float64, veh.DescriptorLen())}, veh)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiDetector(
		Class{Name: "pedestrian", Detector: pedDet},
		Class{Name: "vehicle", Detector: vehDet})
	if err != nil {
		t.Fatal(err)
	}
	// A frame smaller than both windows fails every class.
	if _, err := m.Detect(imgproc.NewGray(32, 32)); err == nil {
		t.Fatal("undersized frame succeeded")
	} else {
		for _, class := range []string{`"pedestrian"`, `"vehicle"`} {
			if !strings.Contains(err.Error(), class) {
				t.Errorf("joined error %q does not mention class %s", err, class)
			}
		}
	}
}

// TestMultiDetectorStableMergeOrder: the merge is a stable sort, so equal
// scores keep the configured class order instead of an arbitrary one.
func TestMultiDetectorStableMergeOrder(t *testing.T) {
	// Zero-weight models score every window at exactly the bias, so both
	// classes emit nothing but score-1.0 detections.
	ped := DefaultConfig()
	pedDet, err := NewDetector(&svm.Model{W: make([]float64, ped.DescriptorLen()), B: 1}, ped)
	if err != nil {
		t.Fatal(err)
	}
	veh := vehicleConfig()
	vehDet, err := NewDetector(&svm.Model{W: make([]float64, veh.DescriptorLen()), B: 1}, veh)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiDetector(
		Class{Name: "pedestrian", Detector: pedDet},
		Class{Name: "vehicle", Detector: vehDet})
	if err != nil {
		t.Fatal(err)
	}
	dets, err := m.Detect(imgproc.NewGray(64, 128))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) < 2 {
		t.Fatalf("expected detections from both classes, got %d", len(dets))
	}
	// All scores tie at 1.0, so every pedestrian detection must precede
	// every vehicle detection.
	sawVehicle := false
	for i, d := range dets {
		if d.Score != 1.0 {
			t.Fatalf("detection %d score %v, want exactly 1.0", i, d.Score)
		}
		switch d.Class {
		case "vehicle":
			sawVehicle = true
		case "pedestrian":
			if sawVehicle {
				t.Fatal("pedestrian detection after a vehicle one: merge not stable")
			}
		}
	}
	if !sawVehicle {
		t.Fatal("no vehicle detections merged")
	}
}
