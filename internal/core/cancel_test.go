package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/imgproc"
	"repro/internal/svm"
)

// cancelModes are the pyramid modes the cancellation contract must hold in.
var cancelModes = []struct {
	name string
	mode PyramidMode
}{
	{"image", ImagePyramid},
	{"feature", FeaturePyramid},
	{"chained", FeaturePyramidChained},
	{"fixed", FeaturePyramidFixed},
}

func cancelDetector(t *testing.T, mode PyramidMode, workers int) (*Detector, *imgproc.Gray) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.ScaleStep = 1.3
	cfg.Workers = workers
	d := constScoreDetector(t, cfg)
	return d, imgproc.NewGray(160, 320)
}

// settleGoroutines polls until the goroutine count drops back to the
// baseline (worker goroutines unwind asynchronously after a cancelled scan
// returns, so a single instantaneous reading would flake).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, baseline %d", n, baseline)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDetectRawCtxPreCancelled: a detector handed an already-cancelled
// context must return promptly with the context error at every worker count
// and in every pyramid mode, without leaking scan goroutines.
func TestDetectRawCtxPreCancelled(t *testing.T) {
	for _, m := range cancelModes {
		for _, workers := range []int{1, 2, 4, 8} {
			d, frame := cancelDetector(t, m.mode, workers)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			baseline := runtime.NumGoroutine()
			start := time.Now()
			dets, err := d.DetectRawCtx(ctx, frame)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s/w%d: err = %v, want context.Canceled", m.name, workers, err)
			}
			if dets != nil {
				t.Fatalf("%s/w%d: got %d detections from a cancelled scan", m.name, workers, len(dets))
			}
			if elapsed > 2*time.Second {
				t.Errorf("%s/w%d: cancelled scan took %v", m.name, workers, elapsed)
			}
			settleGoroutines(t, baseline)
		}
	}
}

// TestDetectCtxMidScanCancellation cancels while the scan is in flight (the
// probe blocks on the context, so the cancel always lands mid-frame) and
// asserts the error surfaces and no worker goroutines outlive the call.
func TestDetectCtxMidScanCancellation(t *testing.T) {
	for _, m := range cancelModes {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Mode = m.mode
			cfg.ScaleStep = 1.3
			cfg.Workers = workers
			entered := make(chan struct{})
			cfg.LevelProbe = func(ctx context.Context, level int) error {
				select {
				case entered <- struct{}{}:
				default:
				}
				<-ctx.Done() // hold the scan until the test cancels
				return ctx.Err()
			}
			d := constScoreDetector(t, cfg)
			frame := imgproc.NewGray(160, 320)

			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := d.DetectCtx(ctx, frame)
				done <- err
			}()
			select {
			case <-entered:
			case <-time.After(10 * time.Second):
				t.Fatalf("%s/w%d: scan never reached the probe", m.name, workers)
			}
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s/w%d: err = %v, want context.Canceled", m.name, workers, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s/w%d: cancelled scan never returned", m.name, workers)
			}
			settleGoroutines(t, baseline)
		}
	}
}

// TestDetectRawDeadlineCutsLongScan: a deadline that expires mid-scan
// surfaces context.DeadlineExceeded rather than hanging.
func TestDetectRawDeadlineCutsLongScan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = FeaturePyramid
	cfg.ScaleStep = 1.3
	cfg.Workers = 2
	cfg.LevelProbe = func(ctx context.Context, level int) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Minute):
			return nil
		}
	}
	d := constScoreDetector(t, cfg)
	frame := imgproc.NewGray(160, 320)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.DetectRawCtx(ctx, frame)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline ignored: scan ran %v", elapsed)
	}
}

// TestImagePyramidWorkerPanicBecomesError: in image-pyramid mode the
// per-level HOG extraction runs on pool goroutines; a poison frame (pixel
// buffer shorter than the header claims) must surface as an error from the
// recovered worker, not crash the process.
func TestImagePyramidWorkerPanicBecomesError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ImagePyramid
	cfg.ScaleStep = 1.3
	cfg.Workers = 4
	model := &svm.Model{W: make([]float64, cfg.DescriptorLen()), B: 1}
	d, err := NewDetector(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := imgproc.NewGray(160, 320)
	poison := &imgproc.Gray{W: good.W, H: good.H, Pix: good.Pix[:len(good.Pix)/2]}
	if _, err := d.DetectRaw(poison); err == nil {
		t.Fatal("poison frame scanned without error in image-pyramid mode")
	}
	// The detector remains usable afterwards.
	if _, err := d.DetectRaw(good); err != nil {
		t.Fatalf("detector dead after poison frame: %v", err)
	}
}
