package core

import (
	"sort"

	"repro/internal/eval"
	"repro/internal/geom"
)

// NMS performs greedy non-maximum suppression: detections are visited in
// descending score order and any later detection overlapping a kept one by
// more than iouThresh IoU is discarded. The result is sorted by descending
// score. The input slice is not modified.
func NMS(dets []eval.Detection, iouThresh float64) []eval.Detection {
	if len(dets) == 0 {
		return nil
	}
	sorted := append([]eval.Detection(nil), dets...)
	sortByScore(sorted)
	kept := sorted[:0]
	for _, d := range sorted {
		ok := true
		for _, k := range kept {
			if geom.IoU(d.Box, k.Box) > iouThresh {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	out := make([]eval.Detection, len(kept))
	copy(out, kept)
	return out
}

// sortByScore orders detections by descending score (stable so equal-score
// detections keep raster order, which keeps runs deterministic).
func sortByScore(dets []eval.Detection) {
	sort.SliceStable(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
}
