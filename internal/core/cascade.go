package core

import (
	"fmt"

	"repro/internal/featpyr"
	"repro/internal/hog"
	"repro/internal/obs"
	"repro/internal/svm"
)

// CascadeMode selects the early-rejection strategy of the window scan.
type CascadeMode int

const (
	// CascadeOff scans every window dense (the pre-cascade behaviour).
	CascadeOff CascadeMode = iota
	// CascadeExact evaluates windows stage by stage and rejects on the
	// Cauchy-Schwarz bound: detections (boxes and scores) are bit-identical
	// to CascadeOff at every worker count, only faster. Levels without a
	// block-norm bound (octave scans, lambda-scaled float pyramids) fall
	// back to the dense scan automatically.
	CascadeExact
	// CascadeCalibrated additionally rejects below per-stage floors fitted
	// on training positives (soft cascade, pdtrain -cascade-calibrate):
	// faster than exact with a measured, reported miss bound. Requires a
	// model carrying a calibration with one floor per window block row.
	CascadeCalibrated
)

// String implements fmt.Stringer.
func (m CascadeMode) String() string {
	switch m {
	case CascadeOff:
		return "off"
	case CascadeExact:
		return "exact"
	case CascadeCalibrated:
		return "calibrated"
	}
	return fmt.Sprintf("CascadeMode(%d)", int(m))
}

// buildStagePlan derives the kernel-side stage schedule for the detector's
// model and window geometry, validating the mode's requirements. Returns
// nil for CascadeOff.
func buildStagePlan(model *svm.Model, cfg Config) (*hog.StagePlan, error) {
	if cfg.Cascade == CascadeOff {
		return nil, nil
	}
	wbx, wby := cfg.windowBlocks()
	casc, err := svm.NewCascade(model, wbx, wby, cfg.HOG.BlockLen())
	if err != nil {
		return nil, err
	}
	plan := &hog.StagePlan{
		Order:  casc.Order,
		Suffix: casc.Suffix,
		Slack:  casc.Slack,
	}
	switch cfg.Cascade {
	case CascadeExact:
	case CascadeCalibrated:
		if model.Calib == nil {
			return nil, fmt.Errorf("core: calibrated cascade needs a model with a cascade calibration (pdtrain -cascade-calibrate)")
		}
		if err := casc.AttachCalibration(model.Calib); err != nil {
			return nil, err
		}
		plan.Calib = casc.Calib
	default:
		return nil, fmt.Errorf("core: unknown cascade mode %v", cfg.Cascade)
	}
	return plan, nil
}

// levelNormCap returns the upper bound on the L2 norm of any block vector
// of a pyramid level, the scale factor of the cascade's Cauchy-Schwarz
// suffix bounds. A return of 0 means "no bound available": exact mode
// scans such levels dense (calibrated floors still apply, they do not
// depend on the bound).
//
//   - Image-pyramid levels are directly normalized maps: every scheme
//     (L2, L2-Hys, L1-sqrt) yields block norm < 1, so the cap is 1.
//   - Float feature-pyramid levels (direct or chained) are convex bilinear
//     or nearest-neighbour combinations of normalized blocks, which cannot
//     exceed the largest input norm: cap 1. Renormalize restores norms
//     < 1 explicitly. A non-zero Lambda without renormalization multiplies
//     features by s^-Lambda, which exceeds 1 for Lambda < 0 and compounds
//     per chained level — no cheap tight bound, so no cap (0).
//   - Fixed-point levels compound quantized-weight excess and rounding per
//     chained scale; the scaler knows its own error model
//     (FixedScaler.BlockNormCap).
func (d *Detector) levelNormCap(levelIndex int) float64 {
	switch d.cfg.Mode {
	case ImagePyramid:
		return 1
	case FeaturePyramid, FeaturePyramidChained:
		if d.cfg.Scale.Lambda != 0 && !d.cfg.Scale.Renormalize {
			return 0
		}
		return 1
	case FeaturePyramidFixed:
		scaler := d.cfg.Fixed
		if scaler == nil {
			scaler = featpyr.NewFixedScaler()
		}
		return scaler.BlockNormCap(levelIndex, d.cfg.HOG.BlockLen())
	}
	return 0
}

// cascadeTally is the per-shard cascade counter scratch: the scan loop
// bumps plain stack integers and folds them into the shared atomic
// registry once per shard, so the per-window path has no atomic traffic.
type cascadeTally struct {
	windows, accepted, rows uint64
	stageRejects            [obs.CascadeStages]uint64
}

// fold adds the tally to the registry (blocks = rows * window block width).
func (t *cascadeTally) fold(m *obs.Metrics, wbx int) {
	if m == nil || t.windows == 0 {
		return
	}
	m.CascadeWindows.Add(t.windows)
	m.CascadeAccepted.Add(t.accepted)
	m.CascadeBlocks.Add(t.rows * uint64(wbx))
	for i := range t.stageRejects {
		if t.stageRejects[i] != 0 {
			m.CascadeStageRejects[i].Add(t.stageRejects[i])
		}
	}
}

// reject records an early rejection after rowsEval stages.
func (t *cascadeTally) reject(rowsEval int) {
	k := rowsEval - 1
	if k >= obs.CascadeStages {
		k = obs.CascadeStages - 1
	}
	if k >= 0 {
		t.stageRejects[k]++
	}
}
